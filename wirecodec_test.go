package pier

import (
	"math/rand"
	"testing"

	"pier/internal/env"
	"pier/internal/wire/wiretest"
)

func TestSchemaPayloadWireRoundTrip(t *testing.T) {
	wiretest.RoundTrip(t, 19, 300, []wiretest.Gen{
		{Name: "schemaPayload", Make: func(r *rand.Rand) env.Message {
			s := &schemaPayload{Key: wiretest.Str(r, 10)}
			if n := r.Intn(6); n > 0 {
				s.Cols = make([]string, n)
				for i := range s.Cols {
					s.Cols[i] = wiretest.Str(r, 10)
				}
			}
			return s
		}},
	})
}
