package pier

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/topology"
	"pier/internal/workload"
)

// loadWorkload distributes the synthetic tables over the DHT: base
// tuples are stored under their primary key (§3.2.3: "Our query
// processor by default assigns the resourceID to be the value of the
// primary key for base tuples").
func loadWorkload(sn *SimNetwork, t *workload.Tables) {
	for i, r := range t.R {
		sn.Load("R", core.ValueString(r.Vals[workload.RPkey]), int64(i), r, 0)
	}
	for i, s := range t.S {
		sn.Load("S", core.ValueString(s.Vals[workload.SPkey]), int64(i), s, 0)
	}
}

func pairSet(tuples []*Tuple) map[[2]int64]int {
	m := make(map[[2]int64]int)
	for _, t := range tuples {
		m[[2]int64{t.Vals[0].(int64), t.Vals[1].(int64)}]++
	}
	return m
}

func runJoinTest(t *testing.T, strategy Strategy, opts Options) {
	t.Helper()
	sn := NewSimNetwork(24, topology.NewFullMeshInfinite(), 42, opts)
	tables := workload.Generate(workload.Config{STuples: 40, Seed: 7})
	loadWorkload(sn, tables)

	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	want := tables.ReferenceJoin(c1, c2, c3)

	plan := workload.JoinPlan(strategy, c1, c2, c3)
	plan.BloomWait = 3 * time.Second
	got, _, err := sn.Collect(0, plan, len(want), 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	wantSet := make(map[[2]int64]int)
	for _, p := range want {
		wantSet[p]++
	}
	gotSet := pairSet(got)
	if len(gotSet) != len(wantSet) || len(got) != len(want) {
		t.Fatalf("%v: got %d results (%d distinct), want %d (%d distinct)",
			strategy, len(got), len(gotSet), len(want), len(wantSet))
	}
	for p, n := range wantSet {
		if gotSet[p] != n {
			t.Fatalf("%v: pair %v appeared %d times, want %d", strategy, p, gotSet[p], n)
		}
	}
	// Result tuples carry the 1 KB pad (§5.1).
	if len(got) > 0 && got[0].WireSize() < 900 {
		t.Fatalf("result tuple only %d bytes; R.pad must ride along", got[0].WireSize())
	}
}

func TestSymmetricHashJoinMatchesReference(t *testing.T) {
	runJoinTest(t, SymmetricHash, DefaultOptions())
}

func TestFetchMatchesJoinMatchesReference(t *testing.T) {
	runJoinTest(t, FetchMatches, DefaultOptions())
}

func TestSymmetricSemiJoinMatchesReference(t *testing.T) {
	runJoinTest(t, SymmetricSemiJoin, DefaultOptions())
}

func TestBloomJoinMatchesReference(t *testing.T) {
	runJoinTest(t, BloomJoin, DefaultOptions())
}

func TestJoinsOverChord(t *testing.T) {
	// The paper's validation exercise: the same engine over Chord
	// (§3.2) — "a fairly minimal integration effort".
	opts := DefaultOptions()
	opts.DHT = Chord
	for _, s := range []Strategy{SymmetricHash, FetchMatches} {
		runJoinTest(t, s, opts)
	}
}

func TestJoinSelectivityZeroGivesNoResults(t *testing.T) {
	sn := NewSimNetwork(12, topology.NewFullMeshInfinite(), 3, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 20, Seed: 9})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.0, 0.5, 0.5) // R predicate passes nothing
	plan := workload.JoinPlan(SymmetricHash, c1, c2, c3)
	got, _, err := sn.Collect(0, plan, 0, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d results, want 0", len(got))
	}
}

func TestSingleTableSelection(t *testing.T) {
	sn := NewSimNetwork(8, topology.NewFullMeshInfinite(), 5, DefaultOptions())
	for i := 0; i < 50; i++ {
		tu := &Tuple{Rel: "T", Vals: []Value{int64(i), int64(i % 10)}}
		sn.Load("T", fmt.Sprint(i), int64(i), tu, 0)
	}
	plan := &Plan{
		Tables: []TableRef{{
			NS:     "T",
			Filter: &core.Cmp{Op: core.LT, L: &core.Col{Idx: 1}, R: &core.Const{V: int64(3)}},
		}},
	}
	got, _, err := sn.Collect(2, plan, 15, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Fatalf("selection returned %d rows, want 15", len(got))
	}
	for _, tu := range got {
		if tu.Vals[1].(int64) >= 3 {
			t.Fatalf("predicate violated: %v", tu)
		}
	}
}

func TestGroupByCountHaving(t *testing.T) {
	// The paper's §2.1 summary query:
	//   SELECT I.fingerprint, count(*) AS cnt FROM intrusions I
	//   GROUP BY I.fingerprint HAVING cnt > 10
	sn := NewSimNetwork(16, topology.NewFullMeshInfinite(), 8, DefaultOptions())
	counts := map[string]int64{"fpA": 14, "fpB": 10, "fpC": 25, "fpD": 3}
	iid := int64(0)
	for fp, n := range counts {
		for i := int64(0); i < n; i++ {
			iid++
			tu := &Tuple{Rel: "intrusions", Vals: []Value{fp, fmt.Sprintf("10.0.0.%d", iid%250)}}
			sn.Load("intrusions", fmt.Sprintf("%s/%d", fp, iid), iid, tu, 0)
		}
	}
	plan := &Plan{
		Tables:  []TableRef{{NS: "intrusions"}},
		GroupBy: []int{0},
		Aggs:    []Aggregate{{Kind: Count, Col: -1}},
		Having:  &core.Cmp{Op: core.GT, L: &core.Col{Idx: 1}, R: &core.Const{V: int64(10)}},
		AggWait: 5 * time.Second,
	}
	got, _, err := sn.Collect(0, plan, 2, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	res := map[string]int64{}
	for _, tu := range got {
		res[tu.Vals[0].(string)] = tu.Vals[1].(int64)
	}
	want := map[string]int64{"fpA": 14, "fpC": 25}
	if len(res) != len(want) {
		t.Fatalf("groups = %v, want %v", res, want)
	}
	for k, v := range want {
		if res[k] != v {
			t.Fatalf("group %s = %d, want %d", k, res[k], v)
		}
	}
}

func TestAggregatesSumMinMaxAvg(t *testing.T) {
	sn := NewSimNetwork(8, topology.NewFullMeshInfinite(), 6, DefaultOptions())
	vals := []int64{5, 1, 9, 4, 11}
	var sum int64
	for i, v := range vals {
		sum += v
		tu := &Tuple{Rel: "m", Vals: []Value{"g", v}}
		sn.Load("m", fmt.Sprint(i), int64(i), tu, 0)
	}
	plan := &Plan{
		Tables:  []TableRef{{NS: "m"}},
		GroupBy: []int{0},
		Aggs: []Aggregate{
			{Kind: Sum, Col: 1}, {Kind: Min, Col: 1}, {Kind: Max, Col: 1}, {Kind: Avg, Col: 1}, {Kind: Count, Col: -1},
		},
		AggWait: 5 * time.Second,
	}
	got, _, err := sn.Collect(1, plan, 1, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d groups, want 1", len(got))
	}
	row := got[0].Vals
	if row[1].(int64) != sum || row[2].(int64) != 1 || row[3].(int64) != 11 {
		t.Fatalf("sum/min/max = %v/%v/%v", row[1], row[2], row[3])
	}
	if avg := row[4].(float64); avg < 5.9 || avg > 6.1 {
		t.Fatalf("avg = %v, want 6", avg)
	}
	if row[5].(int64) != int64(len(vals)) {
		t.Fatalf("count = %v, want %d", row[5], len(vals))
	}
}

func TestJoinWithAggregation(t *testing.T) {
	// §2.1's weighted-reputation query shape: join + group by + having
	// with a computed output column:
	//   SELECT I.fingerprint, count(*) * sum(R.weight) AS wcnt
	//   FROM intrusions I, reputation R WHERE R.address = I.address
	//   GROUP BY I.fingerprint HAVING wcnt > 10
	sn := NewSimNetwork(16, topology.NewFullMeshInfinite(), 10, DefaultOptions())
	// reputation: address -> weight; published hashed on address.
	weights := map[string]int64{"a1": 2, "a2": 1, "a3": 5}
	i := int64(0)
	for addr, w := range weights {
		i++
		sn.Load("reputation", addr, i, &Tuple{Rel: "reputation", Vals: []Value{addr, w}}, 0)
	}
	// intrusions: (fingerprint, address)
	events := []struct {
		fp, addr string
		n        int
	}{{"fpX", "a1", 3}, {"fpX", "a2", 1}, {"fpY", "a3", 1}, {"fpZ", "a2", 2}}
	for _, e := range events {
		for k := 0; k < e.n; k++ {
			i++
			sn.Load("intrusions", fmt.Sprintf("%d", i), i, &Tuple{Rel: "intrusions", Vals: []Value{e.fp, e.addr}}, 0)
		}
	}
	// Join row: [I.fingerprint, I.address, R.address, R.weight]
	plan := &Plan{
		Tables: []TableRef{
			{NS: "intrusions", JoinCols: []int{1}, RIDCol: 1},
			{NS: "reputation", JoinCols: []int{0}, RIDCol: 0},
		},
		Strategy: SymmetricHash,
		GroupBy:  []int{0},
		Aggs:     []Aggregate{{Kind: Count, Col: -1}, {Kind: Sum, Col: 3}},
		// row seen by Having/Output: [fp, count, sum]
		Having: &core.Cmp{Op: core.GT,
			L: &core.Arith{Op: core.Mul, L: &core.Col{Idx: 1}, R: &core.Col{Idx: 2}},
			R: &core.Const{V: int64(10)}},
		Output: []core.Expr{&core.Col{Idx: 0},
			&core.Arith{Op: core.Mul, L: &core.Col{Idx: 1}, R: &core.Col{Idx: 2}}},
		AggWait: 8 * time.Second,
	}
	got, _, err := sn.Collect(0, plan, 2, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	res := map[string]int64{}
	for _, tu := range got {
		res[tu.Vals[0].(string)] = tu.Vals[1].(int64)
	}
	// fpX: count 4 × sum(2+2+2+1=7) = 28; fpY: 1×5=5 (filtered); fpZ: 2×2=4 (filtered).
	want := map[string]int64{"fpX": 28}
	if len(res) != 1 || res["fpX"] != want["fpX"] {
		t.Fatalf("weighted groups = %v, want %v", res, want)
	}
}

func TestContinuousWindowedAggregation(t *testing.T) {
	// §7 "Continuous queries over streams": tumbling windows over a
	// stream of published tuples.
	sn := NewSimNetwork(8, topology.NewFullMeshInfinite(), 12, DefaultOptions())
	plan := &Plan{
		Tables:     []TableRef{{NS: "pkts"}},
		GroupBy:    []int{0},
		Aggs:       []Aggregate{{Kind: Count, Col: -1}, {Kind: Sum, Col: 1}},
		Continuous: true,
		Every:      10 * time.Second,
		Windows:    2,
		AggWait:    4 * time.Second,
		TTL:        2 * time.Minute,
	}
	type res struct {
		window int
		src    string
		count  int64
	}
	var results []res
	_, err := sn.Nodes[0].Query(plan, func(t *core.Tuple, w int) {
		results = append(results, res{w, t.Vals[0].(string), t.Vals[1].(int64)})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Window 0: 3 packets from h1; window 1: 2 from h1, 1 from h2.
	publish := func(at time.Duration, src string, bytes int64, iid int64) {
		node := sn.Nodes[3]
		sn.Net.Node(3).After(at, func() {
			node.Publish("pkts", fmt.Sprintf("%s/%d", src, iid), iid, &Tuple{Rel: "pkts", Vals: []Value{src, bytes}}, time.Minute)
		})
	}
	publish(1*time.Second, "h1", 100, 1)
	publish(2*time.Second, "h1", 100, 2)
	publish(3*time.Second, "h1", 100, 3)
	publish(12*time.Second, "h1", 100, 4)
	publish(13*time.Second, "h1", 100, 5)
	publish(14*time.Second, "h2", 700, 6)
	sn.RunFor(40 * time.Second)

	byWindow := map[int]map[string]int64{}
	for _, r := range results {
		if byWindow[r.window] == nil {
			byWindow[r.window] = map[string]int64{}
		}
		byWindow[r.window][r.src] += r.count
	}
	if byWindow[0]["h1"] != 3 {
		t.Fatalf("window 0 h1 count = %d, want 3 (results: %v)", byWindow[0]["h1"], results)
	}
	if byWindow[1]["h1"] != 2 || byWindow[1]["h2"] != 1 {
		t.Fatalf("window 1 = %v, want h1:2 h2:1", byWindow[1])
	}
}

func TestQueryFromAnyNodeSameAnswer(t *testing.T) {
	sn := NewSimNetwork(16, topology.NewFullMeshInfinite(), 20, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 20, Seed: 4})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	want := tables.ReferenceJoin(c1, c2, c3)
	for _, origin := range []int{0, 7, 15} {
		got, _, err := sn.Collect(origin, workload.JoinPlan(SymmetricHash, c1, c2, c3), len(want), 10*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("origin %d: got %d results, want %d", origin, len(got), len(want))
		}
	}
}

func TestRecallIsPerfectWithoutFailures(t *testing.T) {
	sn := NewSimNetwork(32, topology.NewFullMesh(), 1, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 30, Seed: 2, PadBytes: 64})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	want := tables.ReferenceJoin(c1, c2, c3)
	got, _, err := sn.Collect(0, workload.JoinPlan(SymmetricHash, c1, c2, c3), len(want), 20*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recall %d/%d != 100%% on a healthy network", len(got), len(want))
	}
}

func TestResultTimesAreMonotonic(t *testing.T) {
	sn := NewSimNetwork(16, topology.NewFullMesh(), 33, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 30, Seed: 5, PadBytes: 64})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	want := tables.ReferenceJoin(c1, c2, c3)
	_, times, err := sn.Collect(0, workload.JoinPlan(SymmetricHash, c1, c2, c3), len(want), 20*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i].Before(times[j]) }) {
		t.Fatal("result arrival times not monotonic")
	}
	if len(times) > 0 && times[0].Sub(sn.Net.Now()) > 0 {
		t.Fatal("future timestamps")
	}
}
