package pier

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestAdminHandlerOverRealNode drives the full admin plane against a
// live TCP cluster: schema registration, publish, and a SQL query all
// over HTTP, then a /metrics scrape asserting the counter families the
// deployment must export.
func TestAdminHandlerOverRealNode(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a TCP cluster")
	}
	nodes := startCluster(t, 3)
	srv := httptest.NewServer(AdminHandler(nodes[0]))
	defer srv.Close()

	post := func(path, body string) (*http.Response, error) {
		return http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	}

	resp, err := post("/api/tables", `{"name":"fish","key":"name","cols":["name","size"]}`)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register table = %d", resp.StatusCode)
	}

	// Publish retries until the schema's catalog entry lands (the
	// registration put is async).
	publish := func(body string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := post("/api/publish", body)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("publish never succeeded: last status %d", resp.StatusCode)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	publish(`{"table":"fish","values":["salmon",7]}`)
	publish(`{"table":"fish","values":["tuna",140]}`)
	publish(`{"table":"fish","values":["cod",9]}`)

	// Query over HTTP until all three rows come back (puts are async).
	type result struct {
		rows    int
		dropped int
	}
	runQuery := func() result {
		t.Helper()
		resp, err := post("/api/queries", `{"sql":"SELECT name, size FROM fish","wait_ms":3000}`)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query = %d", resp.StatusCode)
		}
		var lines []string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		if len(lines) < 2 {
			t.Fatalf("stream too short: %v", lines)
		}
		var meta struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil || meta.ID == "" {
			t.Fatalf("bad stream meta %q", lines[0])
		}
		var trailer struct {
			Rows    int `json:"rows"`
			Dropped int `json:"dropped"`
		}
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
			t.Fatalf("bad stream trailer %q", lines[len(lines)-1])
		}
		return result{rows: trailer.Rows, dropped: trailer.Dropped}
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		r := runQuery()
		if r.rows >= 3 {
			if r.dropped != 0 {
				t.Fatalf("stream dropped %d rows with a tiny result", r.dropped)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query over HTTP returned %d/3 rows", r.rows)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// After the streams closed their queries, none should linger.
	var queries struct {
		Queries []any `json:"queries"`
	}
	qresp, err := http.Get(srv.URL + "/api/queries")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(qresp.Body).Decode(&queries); err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	for _, q := range queries.Queries {
		t.Logf("lingering query: %v", q)
	}

	// The scrape must carry the deployment's counter families with real
	// traffic behind them.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var scrape strings.Builder
	sc := bufio.NewScanner(mresp.Body)
	for sc.Scan() {
		scrape.WriteString(sc.Text())
		scrape.WriteString("\n")
	}
	body := scrape.String()
	for _, family := range []string{
		"pier_transport_frames_sent_total",
		"pier_transport_bytes_sent_total",
		"pier_query_result_batches_total",
		"pier_query_credit_grants_total",
		"pier_catalog_cached_tables",
		"pier_softstate_stored_items",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("scrape missing %s:\n%s", family, body)
		}
	}
	// A real node moved frames during the cluster join alone.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "pier_transport_frames_sent_total ") {
			if strings.TrimPrefix(line, "pier_transport_frames_sent_total ") == "0" {
				t.Errorf("no transport traffic counted: %q", line)
			}
		}
	}
}
