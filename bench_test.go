package pier_test

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark runs its experiment once per iteration
// and prints the same rows/series the paper reports; absolute numbers
// come from the simulator (or loopback TCP for Figure 8), so the point
// of comparison is the shape — who wins, by what factor, where the
// crossovers fall. See EXPERIMENTS.md for paper-vs-measured notes.
//
// Defaults are scaled down to finish in minutes. Set PIER_FULL=1 for
// paper-scale runs (n=1024 .. 10,000).

import (
	"fmt"
	"os"
	"testing"
	"time"

	"pier"
	"pier/internal/experiments"
	"pier/internal/topology"
)

func fullScale() bool { return os.Getenv("PIER_FULL") != "" }

// BenchmarkS53CentralizedVsDistributed regenerates the §5.3 analysis:
// inbound bandwidth needed at the computation nodes as their number
// varies.
func BenchmarkS53CentralizedVsDistributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.CentralizedVsDistributed(experiments.DefaultCentralized(fullScale()))
		t.Print(os.Stdout)
	}
}

// BenchmarkFig3Scalability regenerates Figure 3: time to the 30th result
// tuple as network size and load scale together, for 1/2/8/16/N
// computation nodes on the fully connected topology.
func BenchmarkFig3Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Scalability(experiments.DefaultScalability(fullScale()))
		t.Print(os.Stdout)
	}
}

// BenchmarkTable4JoinLatency regenerates Table 4: average time to the
// last result tuple for the four join strategies with infinite
// bandwidth, next to the paper's closed-form model.
func BenchmarkTable4JoinLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table4(experiments.DefaultTable4(fullScale()))
		t.Print(os.Stdout)
	}
}

// BenchmarkFig4Fig5Selectivity regenerates Figures 4 and 5 from one
// sweep: per-strategy aggregate traffic and time-to-last-tuple as the
// selectivity of the predicate on S varies.
func BenchmarkFig4Fig5Selectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig4, fig5 := experiments.Selectivity(experiments.DefaultSelectivity(fullScale()))
		fig4.Print(os.Stdout)
		fig5.Print(os.Stdout)
	}
}

// BenchmarkFig6Recall regenerates Figure 6: average recall under node
// failures for several soft-state refresh periods.
func BenchmarkFig6Recall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Recall(experiments.DefaultRecall(fullScale()))
		t.Print(os.Stdout)
	}
}

// BenchmarkFig7TransitStub regenerates Figure 7: the Figure-3 sweep on
// the GT-ITM-style transit-stub topology.
func BenchmarkFig7TransitStub(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultScalability(fullScale())
		cfg.TransitStub = true
		cfg.ComputeSeries = []int{1, 0} // the paper plots 1 and N
		if fullScale() {
			// §5.7: the transit-stub simulator tops out at 4096 nodes.
			sizes := cfg.Sizes[:0]
			for _, n := range cfg.Sizes {
				if n <= 4096 {
					sizes = append(sizes, n)
				}
			}
			cfg.Sizes = sizes
		}
		t := experiments.Scalability(cfg)
		t.Print(os.Stdout)
	}
}

// BenchmarkFig8Cluster regenerates Figure 8: the same code base deployed
// over real TCP (loopback standing in for the paper's 1 Gbps cluster),
// 2..64 nodes, time to the 30th result tuple.
func BenchmarkFig8Cluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Cluster(experiments.DefaultCluster(fullScale()))
		t.Print(os.Stdout)
	}
}

// BenchmarkAblationCANDims sweeps CAN dimensionality against the
// (d/4)·n^(1/d) hop model (§3.1.1, §5.4).
func BenchmarkAblationCANDims(b *testing.B) {
	nodes := 256
	if fullScale() {
		nodes = 1024
	}
	for i := 0; i < b.N; i++ {
		t := experiments.CANDims(nodes, []int{2, 3, 4, 6}, 300, 9)
		t.Print(os.Stdout)
	}
}

// BenchmarkAblationChordVsCAN runs the workload join over both DHTs —
// the §3.2 validation port.
func BenchmarkAblationChordVsCAN(b *testing.B) {
	nodes, s := 128, 256
	if fullScale() {
		nodes, s = 1024, 1024
	}
	for i := 0; i < b.N; i++ {
		t := experiments.ChordVsCAN(nodes, s, 17)
		t.Print(os.Stdout)
	}
}

// BenchmarkAblationHierarchicalAgg compares flat and two-level
// aggregation trees (§7 "Hierarchical aggregation and DHTs"): the
// hierarchy cuts the root collector's inbound load.
func BenchmarkAblationHierarchicalAgg(b *testing.B) {
	nodes, rows := 128, 1280
	if fullScale() {
		nodes, rows = 1024, 10240
	}
	for i := 0; i < b.N; i++ {
		t := experiments.HierarchicalAgg(nodes, rows, []int{0, 4, 16}, 29)
		t.Print(os.Stdout)
	}
}

// BenchmarkAnalysisJoinModel reprints §5.5.1's analytic decomposition at
// several network sizes (multicast + lookups + direct hops per
// strategy), for comparison with Table 4's measurements.
func BenchmarkAnalysisJoinModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.StrategyTraffic(64, 200, 23)
		t.Print(os.Stdout)
	}
}

// Example of a quick sanity run, kept as a benchmark so `-bench=.`
// exercises the whole stack end to end at a small size.
func BenchmarkEndToEndSymmetricHash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunJoin(experiments.JoinConfig{
			Nodes:    64,
			Topo:     topology.NewFullMesh(),
			Seed:     int64(i) + 1,
			Strategy: pier.SymmetricHash,
			STuples:  128,
			Limit:    time.Hour,
		})
		if res.Received != res.Expected {
			b.Fatalf("recall %d/%d", res.Received, res.Expected)
		}
		b.ReportMetric(res.TimeToLast.Seconds(), "virtsec/query")
		b.ReportMetric(res.TrafficMB, "MB/query")
	}
	_ = fmt.Sprint()
}

// BenchmarkAdaptivePlanner regenerates the adaptive-vs-fixed strategy
// comparison: three workloads engineered so a different join strategy
// wins each, with the statistics catalog choosing automatically.
func BenchmarkAdaptivePlanner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, _ := experiments.Adaptive(experiments.DefaultAdaptive(fullScale()))
		t.Print(os.Stdout)
	}
}

// BenchmarkRangeSelectivity regenerates the PHT-index-vs-full-scan
// sweep: nodes contacted, bytes, and time to last result per
// selectivity, for both access paths over the same deployment.
func BenchmarkRangeSelectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, _ := experiments.RangeSelectivity(experiments.DefaultRangeSel(fullScale()))
		t.Print(os.Stdout)
	}
}
