package pier

import (
	"time"

	"pier/internal/env"
	"pier/internal/realnet"
)

// RealNode is a PIER node bound to a real TCP transport — the same
// stack the simulator runs, deployed (§5.8).
type RealNode struct {
	*Node
	transport *realnet.Node
}

// StartNode launches a PIER node listening on addr (e.g. "127.0.0.1:0")
// and joins the overlay through landmark; pass env.NilAddr ("") to
// start a new network.
//
// Real deployments churn: nodes join and leave while queries run, and
// directed-flood pruning assumes stabilized neighbor state. Real nodes
// therefore always use robust (full) flooding; the directed optimization
// is for stabilized simulation experiments.
func StartNode(addr string, landmark env.Addr, seed int64, opts Options) (*RealNode, error) {
	opts.ProviderConfig.RobustMulticast = true
	tr, err := realnet.Listen(addr, seed)
	if err != nil {
		return nil, err
	}
	n := buildNode(tr, opts)
	rn := &RealNode{Node: n, transport: tr}
	tr.Do(func() { n.router.Join(landmark) })
	return rn, nil
}

// Do runs f on the node's event loop and waits — required for any access
// to node state from application goroutines.
func (rn *RealNode) Do(f func()) { rn.transport.Do(f) }

// WaitReady blocks until the node has joined the overlay or the timeout
// expires, reporting success.
func (rn *RealNode) WaitReady(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ready := false
		rn.Do(func() { ready = rn.router.Ready() })
		if ready {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// Close shuts the transport down.
func (rn *RealNode) Close() { rn.transport.Close() }

// PublishSync publishes a tuple from the node's event loop.
func (rn *RealNode) PublishSync(table, rid string, iid int64, t *Tuple, lifetime time.Duration) {
	rn.Do(func() { rn.Publish(table, rid, iid, t, lifetime) })
}

// QuerySync starts a query from the node's event loop and returns its
// id. Results stream into fn on the event loop.
func (rn *RealNode) QuerySync(p *Plan, fn ResultFunc) (uint64, error) {
	var id uint64
	var err error
	rn.Do(func() { id, err = rn.Query(p, fn) })
	return id, err
}

// ExecSync runs a DDL statement (CREATE INDEX) from the node's event
// loop. See Node.Exec.
func (rn *RealNode) ExecSync(src string, cat Catalog) error {
	var err error
	rn.Do(func() { err = rn.Exec(src, cat) })
	return err
}
