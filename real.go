package pier

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/realnet"
)

// RealNode is a PIER node bound to a real TCP transport — the same
// stack the simulator runs, deployed (§5.8).
//
// RealNode implements Session by marshalling every call onto the
// node's single-threaded event loop, so the whole surface is safe from
// any application goroutine. The embedded *Node's methods remain
// reachable but must only run on the event loop (via Do); prefer the
// Session methods.
type RealNode struct {
	*Node
	transport *realnet.Node
	landmark  env.Addr
}

// ErrJoinTimeout marks a join that did not complete within its
// deadline; WaitJoin wraps it with the node and landmark addresses.
var ErrJoinTimeout = errors.New("pier: join timed out")

// StartNode launches a PIER node listening on addr (e.g. "127.0.0.1:0")
// and joins the overlay through landmark; pass env.NilAddr ("") to
// start a new network.
//
// Real deployments churn: nodes join and leave while queries run, and
// directed-flood pruning assumes stabilized neighbor state. Real nodes
// therefore always use robust (full) flooding; the directed optimization
// is for stabilized simulation experiments.
func StartNode(addr string, landmark env.Addr, seed int64, opts Options) (*RealNode, error) {
	opts.ProviderConfig.RobustMulticast = true
	if opts.EngineConfig.DispatchShards == 0 {
		// Real nodes spread result-channel processing across the
		// cores; the simulator keeps the single-shard inline mode its
		// determinism depends on.
		opts.EngineConfig.DispatchShards = runtime.GOMAXPROCS(0)
	}
	tr, err := realnet.Listen(addr, seed)
	if err != nil {
		return nil, err
	}
	if opts.SpillDir != "" && opts.ProviderConfig.Store == nil {
		sp, err := storage.NewSpill(tr.Now, opts.ProviderConfig.Quota, opts.SpillDir)
		if err != nil {
			tr.Close()
			return nil, err
		}
		opts.ProviderConfig.Store = sp
	}
	n := buildNode(tr, opts)
	rn := &RealNode{Node: n, transport: tr, landmark: landmark}
	tr.Do(func() { n.router.Join(landmark) })
	return rn, nil
}

// Do runs f on the node's event loop and waits — required for any access
// to embedded *Node state from application goroutines. Never call Do
// (or any Session method of this node) from inside a callback already
// running on the event loop: the loop cannot wait on itself.
func (rn *RealNode) Do(f func()) { rn.transport.Do(f) }

// Landmark returns the address this node was asked to join through
// (env.NilAddr when it started a new network).
func (rn *RealNode) Landmark() env.Addr { return rn.landmark }

// WaitReady blocks until the node has joined the overlay or the timeout
// expires, reporting success.
func (rn *RealNode) WaitReady(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ready := false
		rn.Do(func() { ready = rn.router.Ready() })
		if ready {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// WaitJoin blocks until the node has joined the overlay, or returns an
// error wrapping ErrJoinTimeout that names this node and the landmark
// it was joining through.
func (rn *RealNode) WaitJoin(timeout time.Duration) error {
	if rn.WaitReady(timeout) {
		return nil
	}
	return fmt.Errorf("node %s: no overlay membership via landmark %q after %v: %w",
		rn.Addr(), rn.landmark, timeout, ErrJoinTimeout)
}

// Close shuts the transport down, then stops the engine's dispatch
// shards (transport first, so no new work arrives while they drain)
// and closes the disk-spill store if one is attached (after the
// transport, so no event-loop callback can touch the log mid-close).
func (rn *RealNode) Close() {
	rn.transport.Close()
	rn.engine.Close()
	if c, ok := rn.provider.Store().(interface{ Close() error }); ok {
		_ = c.Close()
	}
}

// Session implementation: each method shadows the embedded *Node's and
// runs it on the event loop.

// Publish stores a tuple in the DHT from the node's event loop. See
// Node.Publish.
func (rn *RealNode) Publish(table, resourceID string, instanceID int64, t *Tuple, lifetime time.Duration) {
	rn.Do(func() { rn.Node.Publish(table, resourceID, instanceID, t, lifetime) })
}

// Renew refreshes a published tuple's lifetime from the node's event
// loop. See Node.Renew.
func (rn *RealNode) Renew(table, resourceID string, instanceID int64, t *Tuple, lifetime time.Duration) {
	rn.Do(func() { rn.Node.Renew(table, resourceID, instanceID, t, lifetime) })
}

// Query starts a query from the node's event loop and returns its id.
// Results stream into fn on the event loop. See Node.Query.
func (rn *RealNode) Query(p *Plan, fn ResultFunc) (uint64, error) {
	var id uint64
	var err error
	rn.Do(func() { id, err = rn.Node.Query(p, fn) })
	return id, err
}

// QuerySQL plans src against the DHT catalog from the node's event
// loop; done and fn fire on the event loop. See Node.QuerySQL.
func (rn *RealNode) QuerySQL(src string, tables []string, fn ResultFunc, done func(id uint64, err error)) {
	rn.Do(func() { rn.Node.QuerySQL(src, tables, fn, done) })
}

// Exec runs a DDL statement (CREATE INDEX) from the node's event loop.
// See Node.Exec.
func (rn *RealNode) Exec(src string, cat Catalog) error {
	var err error
	rn.Do(func() { err = rn.Node.Exec(src, cat) })
	return err
}

// RegisterTable publishes a table schema into the DHT catalog from the
// node's event loop. See Node.RegisterTable.
func (rn *RealNode) RegisterTable(t SQLTable, lifetime time.Duration) {
	rn.Do(func() { rn.Node.RegisterTable(t, lifetime) })
}

// LookupTable resolves a table schema from the DHT catalog; cb fires
// on the event loop. See Node.LookupTable.
func (rn *RealNode) LookupTable(name string, cb func(*SQLTable)) {
	rn.Do(func() { rn.Node.LookupTable(name, cb) })
}

// Cancel stops a query started on this node from the event loop,
// reporting whether it was found. See Node.Cancel.
func (rn *RealNode) Cancel(id uint64) bool {
	found := false
	rn.Do(func() { found = rn.Node.Cancel(id) })
	return found
}

// Trace fetches the distributed trace of a traced query from the
// node's event loop. See Node.Trace.
func (rn *RealNode) Trace(id uint64) (*QueryTrace, bool) {
	var tr *QueryTrace
	ok := false
	rn.Do(func() { tr, ok = rn.Node.Trace(id) })
	return tr, ok
}

// Leave departs the overlay gracefully from the node's event loop. The
// zone-transfer messages are queued to a peer before this returns;
// give them a moment on the wire before Close. See Node.Leave.
func (rn *RealNode) Leave() { rn.Do(func() { rn.Node.Leave() }) }

// Snapshot captures the node's observable state from the event loop.
// See Node.Snapshot.
func (rn *RealNode) Snapshot() Snapshot {
	var s Snapshot
	rn.Do(func() { s = rn.Node.Snapshot() })
	return s
}

// LiveQueries lists live queries from the node's event loop. See
// Node.LiveQueries.
func (rn *RealNode) LiveQueries() []QueryInfo {
	var qs []QueryInfo
	rn.Do(func() { qs = rn.Node.LiveQueries() })
	return qs
}

// QueryStats snapshots the engine's result-channel counters from the
// event loop. See Node.QueryStats.
func (rn *RealNode) QueryStats() QueryStats {
	var qs QueryStats
	rn.Do(func() { qs = rn.Node.QueryStats() })
	return qs
}

// StorageStats snapshots the node's storage pressure counters from the
// event loop. See Node.StorageStats.
func (rn *RealNode) StorageStats() StorageStats {
	var ss StorageStats
	rn.Do(func() { ss = rn.Node.StorageStats() })
	return ss
}

// RefreshStats runs one catalog maintenance tick from the event loop.
// See Node.RefreshStats.
func (rn *RealNode) RefreshStats() { rn.Do(func() { rn.Node.RefreshStats() }) }

// Deprecated aliases for the pre-Session surface, kept for one release.

// PublishSync publishes a tuple from the node's event loop.
//
// Deprecated: Publish is now event-loop-safe on RealNode; call it
// directly.
func (rn *RealNode) PublishSync(table, rid string, iid int64, t *Tuple, lifetime time.Duration) {
	rn.Publish(table, rid, iid, t, lifetime)
}

// QuerySync starts a query from the node's event loop and returns its
// id.
//
// Deprecated: Query is now event-loop-safe on RealNode; call it
// directly.
func (rn *RealNode) QuerySync(p *Plan, fn ResultFunc) (uint64, error) {
	return rn.Query(p, fn)
}

// ExecSync runs a DDL statement from the node's event loop.
//
// Deprecated: Exec is now event-loop-safe on RealNode; call it
// directly.
func (rn *RealNode) ExecSync(src string, cat Catalog) error {
	return rn.Exec(src, cat)
}
