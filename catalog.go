package pier

import (
	"encoding/gob"
	"fmt"
	"time"

	"pier/internal/dht/storage"
	"pier/internal/env"
)

// The DHT-backed catalog: the paper notes that once added, "the catalog
// facility will reuse the DHT and query processor" (§3.3). Schemas are
// soft state like everything else — published under the CatalogNS
// namespace keyed by table name, renewed by whoever owns the schema
// definition.

// CatalogNS is the namespace holding table schemas.
const CatalogNS = "pier.catalog"

// schemaPayload is the stored form of a table schema: columns, primary
// key, and any PHT indexes declared over its columns.
type schemaPayload struct {
	Cols    []string
	Key     string
	Indexes []SQLIndex
}

// WireSize implements env.Message.
func (s *schemaPayload) WireSize() int {
	n := env.StringSize(s.Key) + 3
	for _, c := range s.Cols {
		n += env.StringSize(c)
	}
	for _, ix := range s.Indexes {
		n += env.StringSize(ix.Name) + env.StringSize(ix.Col)
	}
	return n
}

func init() { gob.Register(&schemaPayload{}) }

// RegisterTable publishes a table schema into the DHT catalog with the
// given lifetime (zero = a long default). Any node can then plan SQL
// against the table by name.
func (n *Node) RegisterTable(t SQLTable, lifetime time.Duration) {
	if lifetime <= 0 {
		lifetime = time.Hour
	}
	n.provider.Put(CatalogNS, t.Name, 1, &schemaPayload{Cols: t.Cols, Key: t.Key, Indexes: t.Indexes}, lifetime)
}

// LookupTable resolves a table schema from the DHT catalog; cb receives
// nil if the schema is unknown (or unreachable).
func (n *Node) LookupTable(name string, cb func(*SQLTable)) {
	n.provider.Get(CatalogNS, name, func(items []*storage.Item) {
		for _, it := range items {
			if sp, ok := it.Payload.(*schemaPayload); ok {
				cb(&SQLTable{Name: name, Cols: sp.Cols, Key: sp.Key, Indexes: sp.Indexes})
				return
			}
		}
		cb(nil)
	})
}

// QuerySQL plans src against schemas fetched from the DHT catalog and
// runs it. tables lists the referenced table names (the FROM clause);
// done receives the query id or the first error. Results stream into fn.
func (n *Node) QuerySQL(src string, tables []string, fn ResultFunc, done func(id uint64, err error)) {
	cat := Catalog{}
	remaining := len(tables)
	if remaining == 0 {
		done(0, fmt.Errorf("pier: QuerySQL requires the referenced table names"))
		return
	}
	failed := false
	for _, name := range tables {
		name := name
		n.LookupTable(name, func(t *SQLTable) {
			if failed {
				return
			}
			if t == nil {
				failed = true
				done(0, fmt.Errorf("pier: table %q not in the DHT catalog", name))
				return
			}
			cat[name] = *t
			remaining--
			if remaining > 0 {
				return
			}
			plan, err := ParseSQL(src, cat)
			if err != nil {
				done(0, err)
				return
			}
			id, err := n.Query(plan, fn)
			done(id, err)
		})
	}
}
