// Package pier is the public API of this reproduction of "Querying the
// Internet with PIER" (Huebsch, Hellerstein, Lanham, Loo, Shenker,
// Stoica — VLDB 2003): a massively distributed relational query engine
// layered on a DHT.
//
// A PIER deployment is a set of Nodes. Each node stacks, bottom-up
// (Figure 1 of the paper):
//
//   - a routing layer (CAN by default, Chord as the validation
//     alternative),
//   - a storage manager holding soft state,
//   - a provider exposing get/put/renew/multicast/lscan/newData,
//   - the relational query processor executing boxes-and-arrows plans.
//
// Nodes run either inside the discrete-event simulator (NewSimNetwork)
// or over real TCP sockets (StartNode) — from the same code base, as in
// the paper (§5.2).
package pier

import (
	"time"

	"pier/internal/core"
	"pier/internal/dht"
	"pier/internal/dht/can"
	"pier/internal/dht/chord"
	"pier/internal/dht/provider"
	"pier/internal/env"
	"pier/internal/index"
	"pier/internal/stats"
	"pier/internal/trace"
)

// Re-exported query-construction types. Plans are built either directly
// or with ParseSQL.
type (
	// Tuple is a relational row.
	Tuple = core.Tuple
	// Value is a column value (int64, float64, string, bool, nil).
	Value = core.Value
	// Plan is a serializable query plan.
	Plan = core.Plan
	// TableRef names one input relation of a plan.
	TableRef = core.TableRef
	// Aggregate is one aggregate function application.
	Aggregate = core.Aggregate
	// Expr is a scalar expression.
	Expr = core.Expr
	// ResultFunc receives result tuples at the initiator.
	ResultFunc = core.ResultFunc
	// Strategy selects the distributed join algorithm.
	Strategy = core.Strategy
	// QueryStats is the engine's result-channel counter snapshot
	// (result frames/tuples shipped, credit grants and stalls, Bloom
	// combine fallbacks). See Node.QueryStats.
	QueryStats = core.QueryStats
	// QueryTrace is an assembled distributed query trace: the span
	// events recorded by every participating node, causally ordered.
	// See Node.Trace.
	QueryTrace = trace.Trace
	// TraceSpan is one recorded span event inside a QueryTrace.
	TraceSpan = trace.Span
	// TraceStage identifies the instrumented pipeline stage a TraceSpan
	// covers (multicast arrival, executor start, result flush, ...).
	TraceStage = trace.Stage
)

// Join strategies (§4).
const (
	SymmetricHash     = core.SymmetricHash
	FetchMatches      = core.FetchMatches
	SymmetricSemiJoin = core.SymmetricSemiJoin
	BloomJoin         = core.BloomJoin
)

// Aggregate kinds.
const (
	Count = core.Count
	Sum   = core.Sum
	Avg   = core.Avg
	Min   = core.Min
	Max   = core.Max
)

// RegisterFunc installs a scalar function usable in plans (e.g. the
// workload's f(R.num3, S.num3)). Register the same functions on every
// node of a deployment.
func RegisterFunc(name string, fn func(args []Value) Value) { core.RegisterFunc(name, fn) }

// DHTKind selects the overlay implementation.
type DHTKind int

// Available DHTs.
const (
	// CAN is the paper's primary DHT (§3.1.1).
	CAN DHTKind = iota
	// Chord is the validation alternative (§3.2).
	Chord
)

// Options configures the per-node stack.
type Options struct {
	// DHT picks the routing layer; default CAN.
	DHT DHTKind
	// CANConfig configures CAN routers.
	CANConfig can.Config
	// ChordConfig configures Chord routers.
	ChordConfig chord.Config
	// ProviderConfig configures the provider layer.
	ProviderConfig provider.Config
	// EngineConfig configures the query processor.
	EngineConfig core.Config
	// Stats configures the self-maintaining statistics catalog. The
	// zero value leaves the maintenance loop off (the catalog then only
	// answers explicit refreshes); set Stats.Interval to enable
	// periodic sampling, publication, and the deployment probe.
	Stats stats.Config
	// Index configures the Prefix Hash Tree range-index agent. The zero
	// value leaves the trie maintenance loop off (indexes still answer
	// lookups and accept entries; set Index.Interval to enable the
	// periodic split/merge/heal pass that keeps them balanced).
	Index index.Config
	// SpillDir, when non-empty, backs the quota-bounded store with a
	// disk-spill tier rooted at this directory: quota evictions append
	// to a compacting log instead of being discarded, and reads merge
	// both tiers. Real nodes only (StartNode); simulated networks
	// ignore it — the simulator's byte-charging model counts memory.
	// Pair it with ProviderConfig.Quota, which defines the pressure the
	// spill tier absorbs.
	SpillDir string
}

// DefaultOptions returns the paper's simulation defaults.
func DefaultOptions() Options {
	return Options{
		CANConfig:      can.DefaultConfig(),
		ChordConfig:    chord.DefaultConfig(),
		ProviderConfig: provider.DefaultConfig(),
		EngineConfig:   core.DefaultConfig(),
	}
}

// Node is one PIER participant: environment, router, provider, and
// query processor, with messages dispatched layer by layer.
type Node struct {
	env      env.Env
	router   dht.Router
	provider *provider.Provider
	engine   *core.Engine
	stats    *stats.Catalog
	indexes  *index.Manager
	started  time.Time
}

// buildNode assembles the stack over an environment and registers the
// message dispatch chain.
func buildNode(e interface {
	env.Env
	SetHandler(env.Handler)
}, opts Options) *Node {
	var rt dht.Router
	switch opts.DHT {
	case Chord:
		rt = chord.New(e, opts.ChordConfig)
	default:
		rt = can.New(e, opts.CANConfig)
	}
	prov := provider.New(e, rt, opts.ProviderConfig)
	eng := core.New(e, prov, opts.EngineConfig)
	cat := stats.New(e, prov, opts.Stats)
	eng.SetObserver(cat.Observe)
	cat.Start()
	idx := index.New(e, prov, opts.Index)
	eng.SetIndexRanger(idx)
	idx.Start()
	n := &Node{env: e, router: rt, provider: prov, engine: eng, stats: cat, indexes: idx, started: e.Now()}
	e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
		if rt.HandleMessage(from, m) {
			return
		}
		if prov.HandleMessage(from, m) {
			return
		}
		eng.HandleMessage(from, m)
	}))
	return n
}

// Addr returns the node's address.
func (n *Node) Addr() env.Addr { return n.env.Addr() }

// Router exposes the routing layer (lookup/join/leave, Table 1).
func (n *Node) Router() dht.Router { return n.router }

// Provider exposes the provider layer (get/put/renew/multicast/lscan/
// newData, Table 3).
func (n *Node) Provider() *provider.Provider { return n.provider }

// Engine exposes the query processor.
func (n *Node) Engine() *core.Engine { return n.engine }

// Stats exposes the node's statistics catalog: cached table statistics,
// deployment estimates, learned corrections, and explicit refresh
// control. Enabled (periodic) maintenance is configured through
// Options.Stats.
func (n *Node) Stats() *stats.Catalog { return n.stats }

// RefreshStats runs one catalog maintenance tick immediately: sample
// local tables, publish summaries, combine owned rollup buckets, and
// re-probe the deployment. Useful to warm a catalog without waiting for
// the periodic loop.
func (n *Node) RefreshStats() { n.stats.Refresh() }

// StorageStats is a node's soft-state pressure counter family: quota
// evictions, disk spill, and put-path throttling. All-zero on nodes
// without a storage quota. See Node.StorageStats.
type StorageStats = provider.StorageStats

// StorageStats reports this node's storage pressure counters: items
// and bytes evicted to hold namespace quotas, items diverted to the
// disk-spill tier, and puts throttled, delayed, or dropped by the
// put-path admission control. Counters are monotone; diff two
// snapshots to attribute pressure to a workload.
func (n *Node) StorageStats() StorageStats { return n.provider.StorageStats() }

// QueryStats reports the node engine's result-channel counters:
// result frames and tuples shipped toward initiators, credit grants
// issued by collectors here, executor credit stalls, and Bloom-join
// combines degraded by mismatched peer filters. Counters are monotone;
// diff two snapshots to attribute activity to a workload.
func (n *Node) QueryStats() QueryStats { return n.engine.QueryStats() }

// TransportStats reports the node's transport link counters (frames,
// batches, bytes, drops). ok is false on environments without real
// links (the simulator charges WireSize instead of sending bytes).
func (n *Node) TransportStats() (s env.LinkStats, ok bool) {
	if lp, isReal := n.env.(env.LinkStatsProvider); isReal {
		return lp.LinkStats(), true
	}
	return env.LinkStats{}, false
}

// Publish stores a tuple in the DHT under (table, resourceID) with the
// given lifetime; wrappers publish and periodically renew this way
// (§2.2c, §3.2.3). instanceID separates same-key items. Tables covered
// by a Prefix Hash Tree index additionally get an index entry per
// publish, with the same lifetime.
func (n *Node) Publish(table, resourceID string, instanceID int64, t *Tuple, lifetime time.Duration) {
	n.provider.Put(table, resourceID, instanceID, t, lifetime)
	n.indexes.OnPublish(table, resourceID, instanceID, t, lifetime)
}

// Renew refreshes a previously published tuple's lifetime (and, for
// indexed tables, its index entries').
func (n *Node) Renew(table, resourceID string, instanceID int64, t *Tuple, lifetime time.Duration) {
	n.provider.Renew(table, resourceID, instanceID, t, lifetime)
	n.indexes.OnPublish(table, resourceID, instanceID, t, lifetime)
}

// Query validates and disseminates a plan from this node and streams
// result tuples into fn. It returns the query id for Cancel.
//
// Join plans marked AutoStrategy (SQL without a USING STRATEGY clause,
// or set explicitly) consult this node's statistics catalog first: with
// a warmed catalog the cost-based choice replaces the default strategy;
// a cold catalog leaves the default and triggers an async fetch so the
// next query finds it warm.
//
// In simulated networks, call Query between simulation Run calls (all
// node code runs on the simulation goroutine).
func (n *Node) Query(p *Plan, fn ResultFunc) (uint64, error) {
	if p.AutoStrategy && len(p.Tables) == 2 {
		if s, _, ok := n.stats.ChooseStrategy(p); ok {
			p.Strategy = s
		}
	}
	if p.AutoAccess && len(p.Tables) == 1 && p.Tables[0].IndexScan != nil {
		// The SQL planner attached an index candidate; drop it when the
		// catalog prices the range too broad for the index to beat a
		// full scan. A cold catalog keeps the index.
		if useIndex, ok := n.stats.ChooseAccess(p, n.indexes.Config().SplitThreshold); ok && !useIndex {
			p.Tables[0].IndexScan = nil
		}
	}
	return n.engine.Run(p, fn)
}

// Cancel stops result delivery for a query started on this node,
// reporting whether a live query with that id existed here (the admin
// plane's DELETE /api/queries/{id} turns false into a 404).
func (n *Node) Cancel(id uint64) bool { return n.engine.Cancel(id) }

// Trace returns the distributed trace of a traced query initiated on
// this node: partial (Finished == 0) while the query is live, complete
// and retained for the last few queries after Cancel closes it. ok is
// false for unknown, untraced, or evicted ids. A query is traced when
// its plan sets Trace — EXPLAIN TRACE and the admin plane do — or when
// the engine's TraceSample policy samples it in.
func (n *Node) Trace(id uint64) (*QueryTrace, bool) { return n.engine.Trace(id) }

// Leave departs the overlay gracefully: the node's zone and its stored
// soft state transfer to a peer, so a clean shutdown (unlike a crash,
// §5.6) loses nothing.
func (n *Node) Leave() { n.provider.Leave() }
