package pier

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/workload"
)

// startCluster launches n real-transport nodes on loopback, joined into
// one CAN overlay.
func startCluster(t *testing.T, n int) []*RealNode {
	t.Helper()
	return startClusterOpts(t, n, DefaultOptions())
}

func startClusterOpts(t *testing.T, n int, opts Options) []*RealNode {
	t.Helper()
	nodes := make([]*RealNode, 0, n)
	first, err := StartNode("127.0.0.1:0", env.NilAddr, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	nodes = append(nodes, first)
	for i := 1; i < n; i++ {
		nd, err := StartNode("127.0.0.1:0", first.Addr(), int64(i+2), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !nd.WaitReady(10 * time.Second) {
			t.Fatalf("node %d did not join", i)
		}
		nodes = append(nodes, nd)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes
}

func TestRealNetPutGet(t *testing.T) {
	nodes := startCluster(t, 4)
	nodes[1].Publish("T", "k1", 1, &Tuple{Rel: "T", Vals: []Value{int64(7), "x"}}, time.Minute)

	// Put is async (lookup + direct send); poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ch := make(chan []*storage.Item, 1)
		nodes[3].Do(func() {
			nodes[3].Provider().Get("T", "k1", func(items []*storage.Item) {
				select {
				case ch <- items:
				default:
				}
			})
		})
		select {
		case items := <-ch:
			if len(items) == 1 {
				tu := items[0].Payload.(*Tuple)
				if tu.Vals[0].(int64) != 7 || tu.Vals[1].(string) != "x" {
					t.Fatalf("wrong tuple over the wire: %v", tu)
				}
				return
			}
		case <-time.After(5 * time.Second):
		}
		if time.Now().After(deadline) {
			t.Fatal("item never became visible over realnet")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestRealNetEndToEndJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a TCP cluster")
	}
	nodes := startCluster(t, 5)
	tables := workload.Generate(workload.Config{STuples: 12, Seed: 31, PadBytes: 32})
	for i, r := range tables.R {
		nodes[i%len(nodes)].Publish("R", core.ValueString(r.Vals[workload.RPkey]), int64(i), r, time.Minute)
	}
	for i, s := range tables.S {
		nodes[i%len(nodes)].Publish("S", core.ValueString(s.Vals[workload.SPkey]), int64(i), s, time.Minute)
	}
	time.Sleep(500 * time.Millisecond) // let puts land

	c1, c2, c3 := workload.Constants(1, 1, 1) // no filtering: every matched pair
	want := tables.ReferenceJoin(c1, c2, c3)

	var mu sync.Mutex
	var got []*Tuple
	plan := workload.JoinPlan(SymmetricHash, c1, c2, c3)
	if _, err := nodes[0].Query(plan, func(tu *core.Tuple, _ int) {
		mu.Lock()
		got = append(got, tu)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= len(want) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("real deployment returned %d results, want %d", len(got), len(want))
	}
	var gotPairs, wantPairs []string
	for _, tu := range got {
		gotPairs = append(gotPairs, fmt.Sprintf("%v-%v", tu.Vals[0], tu.Vals[1]))
	}
	for _, p := range want {
		wantPairs = append(wantPairs, fmt.Sprintf("%d-%d", p[0], p[1]))
	}
	sort.Strings(gotPairs)
	sort.Strings(wantPairs)
	for i := range wantPairs {
		if gotPairs[i] != wantPairs[i] {
			t.Fatalf("result mismatch at %d: %s vs %s", i, gotPairs[i], wantPairs[i])
		}
	}
}

func TestRealNetMulticastQueryDissemination(t *testing.T) {
	nodes := startCluster(t, 3)
	var mu sync.Mutex
	seen := 0
	for _, nd := range nodes {
		nd := nd
		nd.Do(func() {
			nd.Provider().OnMulticast(func(origin env.Addr, ns string, m env.Message) {
				if ns == "hello" {
					mu.Lock()
					seen++
					mu.Unlock()
				}
			})
		})
	}
	nodes[1].Do(func() {
		nodes[1].Provider().Multicast("hello", &Tuple{Rel: "x", Vals: []Value{int64(1)}})
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := seen
		mu.Unlock()
		if n == 3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("multicast reached %d/3 nodes", seen)
}

// TestRealNodeTransportStats: the transport's batching counters
// (frames/batches/bytes/drops) must be readable through the node-level
// accessor — the NetStats probe and operators consume them there.
func TestRealNodeTransportStats(t *testing.T) {
	nodes := startCluster(t, 3)
	ls, ok := nodes[0].TransportStats()
	if !ok {
		t.Fatal("real node must expose link counters")
	}
	// The CAN join protocol alone moves frames.
	deadline := time.Now().Add(10 * time.Second)
	for ls.FramesSent == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		ls, _ = nodes[0].TransportStats()
	}
	if ls.FramesSent == 0 || ls.BytesSent == 0 {
		t.Fatalf("no traffic counted after cluster join: %+v", ls)
	}
	if ls.BatchesSent == 0 || ls.BatchesSent > ls.FramesSent {
		t.Fatalf("batch accounting inconsistent: %+v", ls)
	}
}

// TestRealNetAdaptiveStrategyChoice runs the statistics catalog over
// real TCP sockets: nodes publish summaries on the refresh loop, the
// initiator warms its cache, and an AutoStrategy query picks Fetch
// Matches (the inner table is hashed on the join attribute) — the same
// adaptive behavior the simnet benchmark demonstrates, deployed.
func TestRealNetAdaptiveStrategyChoice(t *testing.T) {
	opts := DefaultOptions()
	opts.Stats.Interval = 200 * time.Millisecond
	nodes := startClusterOpts(t, 4, opts)

	tables := workload.Generate(workload.Config{STuples: 24, Seed: 9})
	for i, r := range tables.R {
		nodes[i%4].Publish("R", core.ValueString(r.Vals[workload.RPkey]), int64(i), r, time.Minute)
	}
	for i, s := range tables.S {
		nodes[i%4].Publish("S", core.ValueString(s.Vals[workload.SPkey]), int64(i), s, time.Minute)
	}

	// Let the refresh loop publish, then warm the initiator's cache.
	warmed := func() bool {
		ch := make(chan int, 2)
		nodes[0].Do(func() {
			nodes[0].Stats().Fetch("R", func(_ TableStats, ok bool) {
				if ok {
					ch <- 1
				} else {
					ch <- 0
				}
			})
			nodes[0].Stats().Fetch("S", func(_ TableStats, ok bool) {
				if ok {
					ch <- 1
				} else {
					ch <- 0
				}
			})
		})
		got := 0
		for i := 0; i < 2; i++ {
			select {
			case v := <-ch:
				got += v
			case <-time.After(5 * time.Second):
				return false
			}
		}
		return got == 2
	}
	deadline := time.Now().Add(15 * time.Second)
	for !warmed() {
		if time.Now().After(deadline) {
			t.Fatal("catalog never warmed over TCP")
		}
		time.Sleep(100 * time.Millisecond)
	}

	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	expected := len(tables.ReferenceJoin(c1, c2, c3))
	plan := workload.JoinPlan(SymmetricHash, c1, c2, c3)
	plan.AutoStrategy = true
	plan.TTL = time.Minute

	var mu sync.Mutex
	rows := 0
	id, err := nodes[0].Query(plan, func(*core.Tuple, int) {
		mu.Lock()
		rows++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodes[0].Cancel(id)

	if plan.Strategy != FetchMatches {
		t.Fatalf("warm catalog chose %v over TCP, want fetch matches", plan.Strategy)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		n := rows
		mu.Unlock()
		if n >= expected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("adaptive query returned %d/%d rows", n, expected)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
