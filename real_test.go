package pier

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/workload"
)

// startCluster launches n real-transport nodes on loopback, joined into
// one CAN overlay.
func startCluster(t *testing.T, n int) []*RealNode {
	t.Helper()
	opts := DefaultOptions()
	nodes := make([]*RealNode, 0, n)
	first, err := StartNode("127.0.0.1:0", env.NilAddr, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	nodes = append(nodes, first)
	for i := 1; i < n; i++ {
		nd, err := StartNode("127.0.0.1:0", first.Addr(), int64(i+2), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !nd.WaitReady(10 * time.Second) {
			t.Fatalf("node %d did not join", i)
		}
		nodes = append(nodes, nd)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes
}

func TestRealNetPutGet(t *testing.T) {
	nodes := startCluster(t, 4)
	nodes[1].PublishSync("T", "k1", 1, &Tuple{Rel: "T", Vals: []Value{int64(7), "x"}}, time.Minute)

	// Put is async (lookup + direct send); poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ch := make(chan []*storage.Item, 1)
		nodes[3].Do(func() {
			nodes[3].Provider().Get("T", "k1", func(items []*storage.Item) {
				select {
				case ch <- items:
				default:
				}
			})
		})
		select {
		case items := <-ch:
			if len(items) == 1 {
				tu := items[0].Payload.(*Tuple)
				if tu.Vals[0].(int64) != 7 || tu.Vals[1].(string) != "x" {
					t.Fatalf("wrong tuple over the wire: %v", tu)
				}
				return
			}
		case <-time.After(5 * time.Second):
		}
		if time.Now().After(deadline) {
			t.Fatal("item never became visible over realnet")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestRealNetEndToEndJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a TCP cluster")
	}
	nodes := startCluster(t, 5)
	tables := workload.Generate(workload.Config{STuples: 12, Seed: 31, PadBytes: 32})
	for i, r := range tables.R {
		nodes[i%len(nodes)].PublishSync("R", core.ValueString(r.Vals[workload.RPkey]), int64(i), r, time.Minute)
	}
	for i, s := range tables.S {
		nodes[i%len(nodes)].PublishSync("S", core.ValueString(s.Vals[workload.SPkey]), int64(i), s, time.Minute)
	}
	time.Sleep(500 * time.Millisecond) // let puts land

	c1, c2, c3 := workload.Constants(1, 1, 1) // no filtering: every matched pair
	want := tables.ReferenceJoin(c1, c2, c3)

	var mu sync.Mutex
	var got []*Tuple
	plan := workload.JoinPlan(SymmetricHash, c1, c2, c3)
	if _, err := nodes[0].QuerySync(plan, func(tu *core.Tuple, _ int) {
		mu.Lock()
		got = append(got, tu)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= len(want) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("real deployment returned %d results, want %d", len(got), len(want))
	}
	var gotPairs, wantPairs []string
	for _, tu := range got {
		gotPairs = append(gotPairs, fmt.Sprintf("%v-%v", tu.Vals[0], tu.Vals[1]))
	}
	for _, p := range want {
		wantPairs = append(wantPairs, fmt.Sprintf("%d-%d", p[0], p[1]))
	}
	sort.Strings(gotPairs)
	sort.Strings(wantPairs)
	for i := range wantPairs {
		if gotPairs[i] != wantPairs[i] {
			t.Fatalf("result mismatch at %d: %s vs %s", i, gotPairs[i], wantPairs[i])
		}
	}
}

func TestRealNetMulticastQueryDissemination(t *testing.T) {
	nodes := startCluster(t, 3)
	var mu sync.Mutex
	seen := 0
	for _, nd := range nodes {
		nd := nd
		nd.Do(func() {
			nd.Provider().OnMulticast(func(origin env.Addr, ns string, m env.Message) {
				if ns == "hello" {
					mu.Lock()
					seen++
					mu.Unlock()
				}
			})
		})
	}
	nodes[1].Do(func() {
		nodes[1].Provider().Multicast("hello", &Tuple{Rel: "x", Vals: []Value{int64(1)}})
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := seen
		mu.Unlock()
		if n == 3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("multicast reached %d/3 nodes", seen)
}
