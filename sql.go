package pier

import "pier/internal/sql"

// SQLTable describes a relation's schema to the SQL planner: column
// names and the primary-key column used as the base resourceID.
type SQLTable = sql.Table

// Catalog maps table names to schemas for ParseSQL.
type Catalog = sql.Catalog

// ParseSQL parses a single-block SELECT over one or two tables and
// lowers it to an executable Plan. The paper lists declarative query
// parsing as future work layered above the query processor (§3.3); this
// front end covers all of §2.1's example queries, including joins,
// GROUP BY / HAVING with aliases, and an optional
// `USING STRATEGY '<name>'` clause to pick the join algorithm.
//
// Sargable predicates (col ⊙ literal conjuncts, any of the six
// comparison operators in either orientation) on columns the catalog
// declares an index for lower to an IndexRangeScan access path; see
// Node.Exec for the CREATE INDEX statement that declares one.
//
// An `EXPLAIN TRACE <select>` prefix lowers the inner SELECT with the
// plan's Trace flag forced on: every participating node records span
// events and the initiator assembles them into a trace tree (see
// Node.Trace).
func ParseSQL(src string, cat Catalog) (*Plan, error) {
	return sql.Plan(src, cat)
}
