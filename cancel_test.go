package pier

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/topology"
)

// TestCancelStopsContinuousQuery: Cancel must kill a continuous query
// before its TTL — no more windows are delivered, the distributed
// executors stop their window timers, and the query's soft state stops
// being renewed so it ages out instead of living to the TTL.
func TestCancelStopsContinuousQuery(t *testing.T) {
	opts := DefaultOptions()
	opts.ProviderConfig.ActiveExpiry = true
	sn := NewSimNetwork(12, topology.NewFullMeshInfinite(), 31, opts)

	plan := &Plan{
		Tables:     []TableRef{{NS: "evts"}},
		GroupBy:    []int{0},
		Aggs:       []Aggregate{{Kind: core.Count, Col: -1}},
		Continuous: true,
		Every:      10 * time.Second,
		AggWait:    4 * time.Second,
		TTL:        10 * time.Minute, // far beyond the cancel point
	}
	windows := map[int]bool{}
	id, err := sn.Nodes[0].Query(plan, func(_ *core.Tuple, w int) { windows[w] = true })
	if err != nil {
		t.Fatal(err)
	}

	// A steady stream of arrivals across the whole run: without the
	// cancel, every window would produce results.
	for i := 0; i < 30; i++ {
		i := i
		node := sn.Nodes[(i+2)%12]
		sn.Net.Node((i+2)%12).After(time.Duration(2+4*i)*time.Second, func() {
			node.Publish("evts", fmt.Sprint(i), int64(i),
				&Tuple{Rel: "evts", Vals: []Value{"e"}}, 5*time.Minute)
		})
	}

	sn.RunFor(25 * time.Second) // windows 0 and 1 complete
	if !windows[0] || !windows[1] {
		t.Fatalf("expected windows 0 and 1 before cancel, got %v", windows)
	}
	sn.Nodes[0].Cancel(id)
	seenAtCancel := len(windows)

	sn.RunFor(2 * time.Minute) // stream continues; query must not
	if len(windows) != seenAtCancel {
		t.Fatalf("windows kept arriving after cancel: %v", windows)
	}

	// The aggregation namespace stops being renewed once the flushers
	// die; with active expiry the partials are gone well before the TTL.
	aggNS := fmt.Sprintf("q%x.agg", id)
	left := 0
	for _, nd := range sn.Nodes {
		left += nd.Provider().Store().Len(aggNS)
	}
	if left != 0 {
		t.Fatalf("%d partial-aggregate items still alive after cancel", left)
	}
}

// TestCancelOneShotStopsDelivery: cancelling a long one-shot query
// stops result delivery at the initiator even if stragglers arrive.
func TestCancelOneShotStopsDelivery(t *testing.T) {
	sn := NewSimNetwork(8, topology.NewFullMesh(), 32, DefaultOptions())
	for i := 0; i < 50; i++ {
		sn.Load("T", fmt.Sprint(i), int64(i), &Tuple{Rel: "T", Vals: []Value{int64(i)}}, 0)
	}
	plan := &Plan{Tables: []TableRef{{NS: "T"}}, TTL: 10 * time.Minute}
	rows := 0
	id, err := sn.Nodes[0].Query(plan, func(*core.Tuple, int) { rows++ })
	if err != nil {
		t.Fatal(err)
	}
	sn.Nodes[0].Cancel(id) // cancel before running the network at all
	sn.RunFor(2 * time.Minute)
	if rows != 0 {
		t.Fatalf("%d rows delivered after cancel", rows)
	}
}

// TestHostileColumnIndexesDoNotPanic: plans travel over the network and
// Validate cannot know row widths, so out-of-range column references
// anywhere in a plan (filters, projections, join keys, aggregates,
// output) must evaluate to nil — never index-panic the event loop.
func TestHostileColumnIndexesDoNotPanic(t *testing.T) {
	sn := NewSimNetwork(8, topology.NewFullMesh(), 33, DefaultOptions())
	for i := 0; i < 20; i++ {
		sn.Load("T", fmt.Sprint(i), int64(i),
			&Tuple{Rel: "T", Vals: []Value{int64(i), int64(i % 3)}}, 0)
	}
	plans := []*Plan{
		{Tables: []TableRef{{NS: "T",
			Filter: &core.Cmp{Op: core.GT, L: &core.Col{Idx: 99}, R: &core.Const{V: int64(0)}}}}},
		{Tables: []TableRef{{NS: "T", Project: []int{0, 99, -7}}}},
		{Tables: []TableRef{{NS: "T"}},
			Output: []core.Expr{&core.Col{Idx: -1}, &core.Col{Idx: 42}}},
		{Tables: []TableRef{{NS: "T"}},
			GroupBy: []int{88}, Aggs: []Aggregate{{Kind: core.Sum, Col: 77}},
			AggWait: 5 * time.Second},
		{Tables: []TableRef{
			{NS: "T", JoinCols: []int{55}, RIDCol: 66},
			{NS: "T", JoinCols: []int{44}, RIDCol: 33},
		}, Strategy: SymmetricSemiJoin},
	}
	for i, p := range plans {
		p.TTL = time.Minute
		if _, err := sn.Nodes[i%8].Query(p, func(*core.Tuple, int) {}); err != nil {
			t.Fatalf("plan %d rejected: %v", i, err)
		}
	}
	// A panic anywhere would kill the simulation goroutine.
	sn.RunFor(2 * time.Minute)
}
