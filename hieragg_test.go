package pier

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/topology"
)

// loadCounterData spreads count/sum fodder over the network: every node
// contributes rows to a handful of groups.
func loadCounterData(sn *SimNetwork, rows int) map[string][2]int64 {
	want := map[string][2]int64{} // group -> {count, sum}
	groups := []string{"gA", "gB", "gC"}
	for i := 0; i < rows; i++ {
		g := groups[i%len(groups)]
		v := int64(i % 17)
		w := want[g]
		want[g] = [2]int64{w[0] + 1, w[1] + v}
		sn.Load("m", fmt.Sprintf("%s/%d", g, i), int64(i),
			&Tuple{Rel: "m", Vals: []Value{g, v}}, 0)
	}
	return want
}

func aggPlan(fanout int) *Plan {
	return &Plan{
		Tables:    []TableRef{{NS: "m"}},
		GroupBy:   []int{0},
		Aggs:      []Aggregate{{Kind: Count, Col: -1}, {Kind: Sum, Col: 1}},
		AggWait:   10 * time.Second,
		AggFanout: fanout,
	}
}

func runAgg(t *testing.T, sn *SimNetwork, fanout int) map[string][2]int64 {
	t.Helper()
	got := map[string][2]int64{}
	id, err := sn.Nodes[0].Query(aggPlan(fanout), func(tu *core.Tuple, _ int) {
		got[tu.Vals[0].(string)] = [2]int64{tu.Vals[1].(int64), tu.Vals[2].(int64)}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Nodes[0].Cancel(id)
	sn.RunFor(time.Minute)
	return got
}

func TestHierarchicalAggregationMatchesFlat(t *testing.T) {
	// §7 extension: the two-level hierarchy must compute identical
	// aggregates.
	for _, fanout := range []int{0, 2, 8} {
		sn := NewSimNetwork(48, topology.NewFullMesh(), 81, DefaultOptions())
		want := loadCounterData(sn, 480)
		got := runAgg(t, sn, fanout)
		if len(got) != len(want) {
			t.Fatalf("fanout %d: %d groups, want %d", fanout, len(got), len(want))
		}
		for g, w := range want {
			if got[g] != w {
				t.Fatalf("fanout %d: group %s = %v, want %v", fanout, g, got[g], w)
			}
		}
	}
}

func TestHierarchicalAggregationReducesRootLoad(t *testing.T) {
	// The point of the hierarchy (§7): the group root receives
	// O(fanout) combined partials instead of O(n) per-node partials, so
	// the hottest node's inbound traffic drops.
	measure := func(fanout int) float64 {
		sn := NewSimNetwork(96, topology.NewFullMesh(), 82, DefaultOptions())
		// One global group maximizes root concentration.
		for i := 0; i < 960; i++ {
			sn.Load("m", fmt.Sprint(i), int64(i), &Tuple{Rel: "m", Vals: []Value{"g", int64(1)}}, 0)
		}
		sn.Net.ResetStats()
		plan := aggPlan(fanout)
		total := int64(0)
		id, err := sn.Nodes[0].Query(plan, func(tu *core.Tuple, _ int) {
			total = tu.Vals[1].(int64)
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sn.Nodes[0].Cancel(id)
		sn.RunFor(time.Minute)
		if total != 960 {
			t.Fatalf("fanout %d: count = %d, want 960", fanout, total)
		}
		stats := sn.Net.Stats()
		return float64(stats.MaxInbound())
	}
	flat := measure(0)
	hier := measure(8)
	if hier >= flat {
		t.Fatalf("hierarchy did not reduce the hottest inbound load: flat=%.0fB hier=%.0fB", flat, hier)
	}
}

func TestHierarchicalContinuousWindows(t *testing.T) {
	sn := NewSimNetwork(24, topology.NewFullMesh(), 83, DefaultOptions())
	plan := &Plan{
		Tables:     []TableRef{{NS: "st"}},
		GroupBy:    []int{0},
		Aggs:       []Aggregate{{Kind: Count, Col: -1}},
		Continuous: true,
		Every:      10 * time.Second,
		Windows:    1,
		AggWait:    6 * time.Second,
		AggFanout:  4,
		TTL:        time.Minute,
	}
	got := int64(0)
	if _, err := sn.Nodes[0].Query(plan, func(tu *core.Tuple, w int) {
		if w == 0 {
			got += tu.Vals[1].(int64)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		i := i
		node := sn.Nodes[i%24]
		sn.Net.Node(i%24).After(time.Duration(i)*100*time.Millisecond, func() {
			node.Publish("st", fmt.Sprint(i), int64(i), &Tuple{Rel: "st", Vals: []Value{"g"}}, time.Minute)
		})
	}
	sn.RunFor(40 * time.Second)
	if got != 40 {
		t.Fatalf("hierarchical windowed count = %d, want 40", got)
	}
}
