package pier

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/topology"
	"pier/internal/workload"
)

// TestExplainTraceJoin64 is the tentpole acceptance test: an EXPLAIN
// TRACE over a 64-node simulated join must yield a trace tree with
// spans from at least three distinct stages (multicast fan-out,
// executor start, result flush) recorded on at least two distinct
// nodes; the same trace must be retrievable over the admin plane's
// GET /api/queries/{id}/trace; and /metrics must export
// pier_query_duration_seconds as a self-consistent Prometheus
// histogram.
func TestExplainTraceJoin64(t *testing.T) {
	sn := NewSimNetwork(64, topology.NewFullMeshInfinite(), 171, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 60, Seed: 19})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	want := tables.ReferenceJoin(c1, c2, c3)
	if len(want) == 0 {
		t.Fatal("workload produced an empty reference join")
	}

	src := fmt.Sprintf(`EXPLAIN TRACE
		SELECT R.pkey, S.pkey
		FROM R, S
		WHERE R.num1 = S.pkey AND R.num2 > %d AND S.num2 > %d
		  AND f(R.num3, S.num3) > %d`, c1, c2, c3)
	plan, err := ParseSQL(src, e2eCat)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Trace {
		t.Fatal("EXPLAIN TRACE plan is not marked traced")
	}

	var rows []*Tuple
	id, err := sn.Nodes[0].Query(plan, func(tp *core.Tuple, window int) { rows = append(rows, tp) })
	if err != nil {
		t.Fatal(err)
	}
	if !sn.RunUntil(10*time.Minute, func() bool { return len(rows) >= len(want) }) {
		t.Fatalf("join returned %d/%d rows", len(rows), len(want))
	}

	// While the query is live, Trace serves a partial assembly.
	live, ok := sn.Nodes[0].Trace(id)
	if !ok {
		t.Fatal("no live trace for a traced query")
	}
	if live.Finished != 0 {
		t.Fatal("live trace claims to be finished")
	}

	// Cancel closes the collector and retains the completed trace.
	if !sn.Nodes[0].Cancel(id) {
		t.Fatal("cancel reported query not found")
	}
	tr, ok := sn.Nodes[0].Trace(id)
	if !ok {
		t.Fatal("no retained trace after cancel")
	}
	if tr.Finished == 0 {
		t.Fatal("retained trace is not finished")
	}
	if tr.QueryID != id || string(tr.Root) != string(sn.Nodes[0].Addr()) {
		t.Fatalf("trace identity: query %x root %s", tr.QueryID, tr.Root)
	}

	stages := map[string]bool{}
	nodes := map[string]bool{}
	for _, s := range tr.Spans {
		stages[s.Stage.String()] = true
		nodes[string(s.Node)] = true
	}
	for _, st := range []string{"multicast", "executor", "result_flush"} {
		if !stages[st] {
			t.Errorf("trace has no %s span; stages seen: %v", st, stages)
		}
	}
	if len(stages) < 3 {
		t.Fatalf("trace covers %d stages, want >= 3: %v", len(stages), stages)
	}
	if len(nodes) < 2 {
		t.Fatalf("trace covers %d nodes, want >= 2: %v", len(nodes), nodes)
	}

	rendered := tr.RenderString()
	for _, wantSub := range []string{"multicast", "result_flush", "initiator"} {
		if !strings.Contains(rendered, wantSub) {
			t.Errorf("rendered trace missing %q:\n%s", wantSub, rendered)
		}
	}

	// The same trace over the admin plane. The simulation is idle, so
	// serving HTTP over the simulated node is a safe single-threaded
	// inspection.
	srv := httptest.NewServer(AdminHandler(sn.Nodes[0]))
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("%s/api/queries/%d/trace", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d", resp.StatusCode)
	}
	var rest struct {
		ID       string `json:"id"`
		Root     string `json:"root"`
		Finished int64  `json:"finished_unix_nano"`
		Spans    []struct {
			Stage string `json:"stage"`
			Node  string `json:"node"`
		} `json:"spans"`
		Rendered string `json:"rendered"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rest); err != nil {
		t.Fatal(err)
	}
	if rest.ID != fmt.Sprintf("%d", id) || len(rest.Spans) != len(tr.Spans) {
		t.Fatalf("REST trace mismatch: id %s, %d spans (want %d)", rest.ID, len(rest.Spans), len(tr.Spans))
	}
	if rest.Rendered == "" {
		t.Fatal("REST trace lost the rendered text")
	}

	// /metrics must export the query-duration histogram and it must be
	// internally consistent.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	checkHistogramFamily(t, mresp, "pier_query_duration_seconds")
}

// TestSpanBuffersBoundedUnderFlood pins the tracing memory bound: a
// traced fetch-matches join records one dht_get span per probe, so a
// tiny TraceBuf must overflow. Overflow may only drop spans (counted
// in the assembled trace), never grow the buffer or disturb results.
func TestSpanBuffersBoundedUnderFlood(t *testing.T) {
	opts := DefaultOptions()
	opts.EngineConfig.TraceBuf = 2
	sn := NewSimNetwork(16, topology.NewFullMeshInfinite(), 99, opts)
	tables := workload.Generate(workload.Config{STuples: 40, Seed: 23})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	want := tables.ReferenceJoin(c1, c2, c3)

	src := fmt.Sprintf(`EXPLAIN TRACE
		SELECT R.pkey, S.pkey
		FROM R, S
		WHERE R.num1 = S.pkey AND R.num2 > %d AND S.num2 > %d
		  AND f(R.num3, S.num3) > %d
		USING STRATEGY 'fetch matches'`, c1, c2, c3)
	plan, err := ParseSQL(src, e2eCat)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	id, err := sn.Nodes[0].Query(plan, func(*core.Tuple, int) { rows++ })
	if err != nil {
		t.Fatal(err)
	}
	if !sn.RunUntil(10*time.Minute, func() bool { return rows >= len(want) }) {
		t.Fatalf("flooded traced join returned %d/%d rows", rows, len(want))
	}
	sn.Nodes[0].Cancel(id)
	tr, ok := sn.Nodes[0].Trace(id)
	if !ok {
		t.Fatal("no retained trace")
	}
	if tr.Drops == 0 {
		t.Fatalf("TraceBuf=2 under %d probes dropped no spans (%d kept)", len(tables.R), len(tr.Spans))
	}
	if len(tr.Spans) > 4096 {
		t.Fatalf("trace kept %d spans; collector bound breached", len(tr.Spans))
	}
	if rows != len(want) {
		t.Fatalf("tracing overflow changed recall: %d != %d", rows, len(want))
	}
}

// checkHistogramFamily asserts the named family appears as a valid
// Prometheus histogram in the scrape: cumulative non-decreasing
// buckets, +Inf bucket equal to _count, and a count of at least 1.
func checkHistogramFamily(t *testing.T, resp *http.Response, family string) {
	t.Helper()
	var body strings.Builder
	if _, err := fmt.Fprint(&body, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	scrape := body.String()
	if !strings.Contains(scrape, "# TYPE "+family+" histogram") {
		t.Fatalf("scrape does not TYPE %s as histogram", family)
	}
	var last, inf, count float64
	var sawInf, sawCount bool
	for _, line := range strings.Split(scrape, "\n") {
		switch {
		case strings.HasPrefix(line, family+"_bucket{"):
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < last {
				t.Fatalf("bucket counts regressed at %q (%g after %g)", line, v, last)
			}
			last = v
			if strings.Contains(line, `le="+Inf"`) {
				inf, sawInf = v, true
			}
		case strings.HasPrefix(line, family+"_count "):
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &count); err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			sawCount = true
		}
	}
	if !sawInf || !sawCount {
		t.Fatalf("%s histogram incomplete: +Inf=%v count=%v", family, sawInf, sawCount)
	}
	if inf != count {
		t.Fatalf("%s: +Inf bucket %g != count %g", family, inf, count)
	}
	if count < 1 {
		t.Fatalf("%s: count %g, want >= 1 after a completed query", family, count)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
