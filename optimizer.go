package pier

import "pier/internal/opt"

// Cost-based strategy selection (§7 "Catalogs and Query Optimization"):
// classic distributed-database cost models with DHT-aware terms.
type (
	// TableStats summarizes a relation for the optimizer.
	TableStats = opt.TableStats
	// NetStats summarizes the deployment for the optimizer.
	NetStats = opt.NetStats
	// JoinStats couples two inputs with their match rate.
	JoinStats = opt.JoinStats
	// Estimate is a predicted per-strategy cost.
	Estimate = opt.Estimate
	// Objective selects what ChooseStrategy minimizes.
	Objective = opt.Objective
)

// Optimizer objectives.
const (
	// MinTraffic minimizes bytes moved.
	MinTraffic = opt.MinTraffic
	// MinLatency minimizes the propagation-delay estimate.
	MinLatency = opt.MinLatency
)

// ChooseStrategy picks a join strategy from catalog statistics and
// deployment parameters, returning the ranked estimates. Apply the
// result to Plan.Strategy (or let SQL's USING STRATEGY override it).
func ChooseStrategy(j JoinStats, net NetStats, obj Objective) (Strategy, []Estimate) {
	return opt.Choose(j, net, obj)
}
