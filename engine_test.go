package pier

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/dht/storage"
	"pier/internal/topology"
	"pier/internal/workload"
)

func TestCancelStopsResultDelivery(t *testing.T) {
	sn := NewSimNetwork(16, topology.NewFullMesh(), 71, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 40, Seed: 71, PadBytes: 64})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)

	got := 0
	id, err := sn.Nodes[0].Query(workload.JoinPlan(SymmetricHash, c1, c2, c3), func(*core.Tuple, int) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	// Cancel before any result can arrive (first results need >= 300ms
	// of virtual time: multicast + rehash + delivery).
	sn.RunFor(50 * time.Millisecond)
	sn.Nodes[0].Cancel(id)
	sn.RunFor(10 * time.Minute)
	if got != 0 {
		t.Fatalf("received %d results after cancel", got)
	}
}

func TestQueryStateAgesOutAfterTTL(t *testing.T) {
	sn := NewSimNetwork(8, topology.NewFullMesh(), 72, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 20, Seed: 72, PadBytes: 64})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	plan := workload.JoinPlan(SymmetricHash, c1, c2, c3)
	plan.TTL = 30 * time.Second

	want := len(tables.ReferenceJoin(c1, c2, c3))
	got, _, err := sn.Collect(0, plan, want, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("got %d/%d", len(got), want)
	}
	// After the TTL, the temporary NQ state must have expired
	// everywhere (lazily with default options), leaving only the base
	// tables live.
	sn.RunFor(2 * time.Minute)
	for i, n := range sn.Nodes {
		for _, ns := range n.Provider().Store().Namespaces() {
			if ns == "R" || ns == "S" {
				continue
			}
			live := 0
			n.Provider().Scan(ns, func(*storage.Item) bool {
				live++
				return true
			})
			if live != 0 {
				t.Fatalf("node %d still has %d live items in %q after TTL", i, live, ns)
			}
		}
	}
}

func TestDuplicateQueryDeliveryIgnored(t *testing.T) {
	// The engine must not instantiate the same query twice even though
	// flooding could deliver duplicates under churn.
	sn := NewSimNetwork(8, topology.NewFullMesh(), 73, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 20, Seed: 73, PadBytes: 64})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(1, 1, 1)
	want := tables.ReferenceJoin(c1, c2, c3)

	plan := workload.JoinPlan(SymmetricHash, c1, c2, c3)
	got := 0
	id, err := sn.Nodes[0].Query(plan, func(*core.Tuple, int) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	_ = id
	sn.RunFor(20 * time.Minute)
	if got != len(want) {
		t.Fatalf("got %d results, want %d (duplicates or losses)", got, len(want))
	}
}

func TestNodeFailureMidQueryLosesOnlyItsShare(t *testing.T) {
	// Kill one node right after dissemination: its base tuples and NQ
	// share vanish, everything else must still arrive (best-effort
	// dilated snapshot, §3.3.1).
	sn := NewSimNetwork(24, topology.NewFullMesh(), 74, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 80, Seed: 74, PadBytes: 64})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	want := len(tables.ReferenceJoin(c1, c2, c3))

	plan := workload.JoinPlan(SymmetricHash, c1, c2, c3)
	got := 0
	if _, err := sn.Nodes[0].Query(plan, func(*core.Tuple, int) { got++ }); err != nil {
		t.Fatal(err)
	}
	sn.RunFor(400 * time.Millisecond) // query disseminated, rehash in flight

	// CAN zone volumes are skewed, so "one node's share" can be much
	// more than 1/n; bound the loss by the victim's actual share of the
	// stored data plus a margin for its NQ bucket and in-flight drops.
	victim := 7
	victimItems := sn.Nodes[victim].Provider().Store().TotalLen()
	total := 0
	for _, n := range sn.Nodes {
		total += n.Provider().Store().TotalLen()
	}
	share := float64(victimItems) / float64(total)

	sn.Kill(victim)
	sn.RunFor(30 * time.Minute)
	if got == 0 {
		t.Fatal("query produced nothing after a single failure")
	}
	if got > want {
		t.Fatalf("more results (%d) than reference (%d)", got, want)
	}
	recall := float64(got) / float64(want)
	if floor := 1 - 3*share - 0.10; recall < floor {
		t.Fatalf("recall %.2f after one failure (victim share %.2f); floor %.2f", recall, share, floor)
	}
}

func TestComputeNodesBucketingStaysCorrect(t *testing.T) {
	// Constraining the join namespace must not change the answer, for
	// any strategy that rehashes.
	sn := NewSimNetwork(16, topology.NewFullMeshInfinite(), 75, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 40, Seed: 75, PadBytes: 64})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	want := tables.ReferenceJoin(c1, c2, c3)
	for _, k := range []int{1, 2, 5} {
		for _, strat := range []Strategy{SymmetricHash, SymmetricSemiJoin} {
			plan := workload.JoinPlan(strat, c1, c2, c3)
			plan.ComputeNodes = k
			got, _, err := sn.Collect(0, plan, len(want), 20*time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			gotSet := pairSet(got)
			if len(got) != len(want) || len(gotSet) != len(want) {
				t.Fatalf("%v with %d computation nodes: %d results (%d distinct), want %d",
					strat, k, len(got), len(gotSet), len(want))
			}
		}
	}
}

func TestEmptyTablesYieldNoResultsQuickly(t *testing.T) {
	sn := NewSimNetwork(8, topology.NewFullMesh(), 76, DefaultOptions())
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	for _, strat := range []Strategy{SymmetricHash, FetchMatches, SymmetricSemiJoin, BloomJoin} {
		plan := workload.JoinPlan(strat, c1, c2, c3)
		plan.BloomWait = time.Second
		got, _, err := sn.Collect(0, plan, 0, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("%v produced %d rows from empty tables", strat, len(got))
		}
	}
}

func TestManyConcurrentQueries(t *testing.T) {
	sn := NewSimNetwork(16, topology.NewFullMesh(), 77, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 30, Seed: 77, PadBytes: 64})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	want := len(tables.ReferenceJoin(c1, c2, c3))

	counts := make([]int, 6)
	for q := 0; q < 6; q++ {
		q := q
		origin := q % len(sn.Nodes)
		if _, err := sn.Nodes[origin].Query(workload.JoinPlan(SymmetricHash, c1, c2, c3),
			func(*core.Tuple, int) { counts[q]++ }); err != nil {
			t.Fatal(err)
		}
	}
	sn.RunFor(30 * time.Minute)
	for q, c := range counts {
		if c != want {
			t.Fatalf("concurrent query %d got %d/%d", q, c, want)
		}
	}
}

func TestPublishThroughDHTThenQuery(t *testing.T) {
	// End-to-end without the bulk-load shortcut: publish via normal
	// puts from scattered nodes, then query.
	sn := NewSimNetwork(12, topology.NewFullMesh(), 78, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 15, Seed: 78, PadBytes: 64})
	for i, r := range tables.R {
		node := sn.Nodes[i%len(sn.Nodes)]
		node.Publish("R", core.ValueString(r.Vals[workload.RPkey]), int64(i), r, time.Hour)
	}
	for i, s := range tables.S {
		node := sn.Nodes[i%len(sn.Nodes)]
		node.Publish("S", core.ValueString(s.Vals[workload.SPkey]), int64(i), s, time.Hour)
	}
	sn.RunFor(30 * time.Second) // puts land
	c1, c2, c3 := workload.Constants(1, 1, 1)
	want := tables.ReferenceJoin(c1, c2, c3)
	got, _, err := sn.Collect(3, workload.JoinPlan(FetchMatches, c1, c2, c3), len(want), 20*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d/%d", len(got), len(want))
	}
}

var _ = fmt.Sprint
