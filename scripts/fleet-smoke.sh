#!/usr/bin/env bash
# fleet-smoke.sh — multi-process smoke test of the pier-node daemon.
#
# Launches three pier-node daemons over real TCP on loopback, drives
# them entirely through the HTTP admin plane (register a schema,
# publish rows, run a SQL query across the fleet, run an EXPLAIN TRACE
# query and re-fetch its distributed trace by id), asserts a clean
# /metrics scrape with the transport / query-channel / catalog counter
# families and the latency histogram families, and finally exercises
# graceful SIGTERM shutdown with a live query draining.
set -euo pipefail

BIN=${BIN:-./pier-node}
CURL="curl -sS --max-time 15"
DIR=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  for n in 1 2 3; do
    echo "--- node$n log ---" >&2
    cat "$DIR/node$n.log" >&2 || true
  done
  exit 1
}

wait_http() { # wait_http <url> — poll until the endpoint answers
  for _ in $(seq 1 100); do
    if $CURL "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "$1 never came up"
}

P1=7301 P2=7302 P3=7303     # overlay TCP ports
A1=7391 A2=7392 A3=7393     # admin HTTP ports

# Node 1 starts the network and takes its settings from a config file
# (exercising the -config path); 2 and 3 join through it via flags.
cat > "$DIR/node1.json" <<EOF
{
  "listen": "127.0.0.1:$P1",
  "admin": "127.0.0.1:$A1",
  "join_timeout": "20s",
  "drain_timeout": "5s"
}
EOF
"$BIN" -config "$DIR/node1.json" > "$DIR/node1.log" 2>&1 &
PIDS+=($!)
wait_http "http://127.0.0.1:$A1/api/status"

"$BIN" -listen 127.0.0.1:$P2 -join 127.0.0.1:$P1 -join-timeout 20s -admin 127.0.0.1:$A2 -drain-timeout 2s > "$DIR/node2.log" 2>&1 &
PIDS+=($!)
"$BIN" -listen 127.0.0.1:$P3 -join 127.0.0.1:$P1 -join-timeout 20s -admin 127.0.0.1:$A3 > "$DIR/node3.log" 2>&1 &
PIDS+=($!)
wait_http "http://127.0.0.1:$A2/api/status"
wait_http "http://127.0.0.1:$A3/api/status"

# All three must report ready (joined, owning key space).
for a in $A1 $A2 $A3; do
  for _ in $(seq 1 100); do
    ready=$($CURL "http://127.0.0.1:$a/api/status" | grep -o '"ready":true' || true)
    [ -n "$ready" ] && break
    sleep 0.1
  done
  [ -n "$ready" ] || fail "node on admin port $a never became ready"
done
echo "ok: 3-node fleet up and ready"

# Register a schema on node 1, publish rows from two different nodes.
$CURL -X POST "http://127.0.0.1:$A1/api/tables" \
  -d '{"name":"fish","key":"name","cols":["name","size"]}' | grep -q '"registered"' \
  || fail "table registration"

publish() { # publish <admin-port> <json-body>
  for _ in $(seq 1 100); do
    if $CURL -X POST "http://127.0.0.1:$1/api/publish" -d "$2" | grep -q '"rid"'; then
      return 0
    fi
    sleep 0.1  # catalog put is async; retry until the schema resolves
  done
  fail "publish to port $1: $2"
}
publish $A1 '{"table":"fish","values":["salmon",7]}'
publish $A2 '{"table":"fish","values":["tuna",140]}'
publish $A3 '{"table":"fish","values":["cod",9]}'
echo "ok: schema registered and 3 rows published via REST"

# SQL over HTTP from node 3: all three rows must come back, meaning the
# query fanned out over real TCP and results flowed through the
# credit-based channel back to the initiator.
rows=0
for _ in $(seq 1 60); do
  out=$($CURL -X POST "http://127.0.0.1:$A3/api/queries" \
    -d '{"sql":"SELECT name, size FROM fish","wait_ms":3000}')
  rows=$(printf '%s\n' "$out" | grep -c '"values"' || true)
  [ "$rows" -ge 3 ] && break
  sleep 0.2
done
[ "$rows" -ge 3 ] || fail "query over HTTP returned $rows/3 rows: $out"
printf '%s\n' "$out" | tail -n 1 | grep -q '"dropped":0' || fail "stream dropped rows: $out"
echo "ok: SQL over HTTP returned $rows rows across the fleet"

# EXPLAIN TRACE over HTTP: the traced query must answer rows plus an
# assembled trace with per-stage spans, and the same trace must stay
# re-fetchable by id over REST.
tout=$($CURL -X POST "http://127.0.0.1:$A3/api/queries" \
  -d '{"sql":"EXPLAIN TRACE SELECT name, size FROM fish","wait_ms":3000}')
printf '%s\n' "$tout" | grep -q '"rows"' || fail "EXPLAIN TRACE answered no row count: $tout"
printf '%s\n' "$tout" | grep -q '"rendered"' || fail "EXPLAIN TRACE trace not rendered: $tout"
tid=$(printf '%s\n' "$tout" | grep -o '"id":"[0-9]*"' | head -n 1 | grep -o '[0-9]*')
[ -n "$tid" ] || fail "no trace id in EXPLAIN TRACE answer: $tout"
ttrace=$($CURL "http://127.0.0.1:$A3/api/queries/$tid/trace")
printf '%s\n' "$ttrace" | grep -q '"spans"' || fail "GET trace for query $tid: $ttrace"
printf '%s\n' "$ttrace" | grep -q '"stage":"multicast"' || fail "trace $tid has no multicast span: $ttrace"
printf '%s\n' "$ttrace" | grep -q '"stage":"result_flush"' || fail "trace $tid has no result_flush span: $ttrace"
echo "ok: EXPLAIN TRACE answered and trace $tid re-fetched over REST"

# /metrics must expose the transport, query-channel, and catalog
# families, with actual traffic counted.
scrape=$($CURL "http://127.0.0.1:$A3/metrics")
for family in \
  pier_transport_frames_sent_total \
  pier_transport_bytes_sent_total \
  pier_query_result_batches_total \
  pier_query_result_tuples_total \
  pier_query_credit_grants_total \
  pier_catalog_cached_tables \
  pier_softstate_stored_items \
  pier_query_duration_seconds_bucket \
  pier_query_duration_seconds_count \
  pier_result_flush_latency_seconds_bucket \
  pier_trace_span_duration_seconds_bucket \
  pier_ready; do
  printf '%s\n' "$scrape" | grep -q "^$family" || fail "/metrics missing $family"
done
frames=$(printf '%s\n' "$scrape" | awk '/^pier_transport_frames_sent_total /{print $2}')
[ "${frames:-0}" -gt 0 ] || fail "no transport frames counted: $frames"
tuples=$(printf '%s\n' "$scrape" | awk '/^pier_query_result_tuples_total /{print $2}')
[ "${tuples:-0}" -gt 0 ] || fail "no result tuples counted: $tuples"
qdur=$(printf '%s\n' "$scrape" | awk '/^pier_query_duration_seconds_count /{print $2}')
[ "${qdur:-0}" -gt 0 ] || fail "no query durations observed: $qdur"
printf '%s\n' "$scrape" | grep -q '^pier_query_duration_seconds_bucket{le="+Inf"}' \
  || fail "query duration histogram has no +Inf bucket"
echo "ok: /metrics scrape clean (frames=$frames tuples=$tuples query-durations=$qdur)"

# Graceful shutdown: start a long-running query on node 2, SIGTERM it
# mid-flight, and require a drain + clean exit.
$CURL -X POST "http://127.0.0.1:$A2/api/queries" \
  -d '{"sql":"SELECT name, size FROM fish","wait_ms":30000}' > "$DIR/longquery.out" 2>&1 &
LONGQ=$!
sleep 1
kill -TERM "${PIDS[1]}"
for _ in $(seq 1 100); do
  kill -0 "${PIDS[1]}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${PIDS[1]}" 2>/dev/null; then
  fail "node 2 still running 10s after SIGTERM"
fi
rc=0
wait "${PIDS[1]}" 2>/dev/null || rc=$?
[ "$rc" -eq 0 ] || fail "node 2 exited with status $rc after SIGTERM"
grep -q "drained" "$DIR/node2.log" || fail "node 2 log shows no query drain"
grep -q "shutdown complete" "$DIR/node2.log" || fail "node 2 did not complete shutdown"
wait "$LONGQ" 2>/dev/null || true
echo "ok: SIGTERM drained live queries and exited cleanly"

# The survivors still answer after the departure.
$CURL "http://127.0.0.1:$A1/api/status" | grep -q '"ready":true' || fail "node 1 unhealthy after peer left"
$CURL "http://127.0.0.1:$A3/api/status" | grep -q '"ready":true' || fail "node 3 unhealthy after peer left"
echo "ok: survivors healthy after graceful leave"

echo "PASS: fleet smoke"
