package pier

import (
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/topology"
	"pier/internal/workload"
)

// TestRehashBeforeQueryArrivalStillJoins pins the dissemination race:
// on large networks, nodes near the initiator receive the query and
// start rehashing while the multicast is still propagating, so NQ items
// can arrive at a join node before that node instantiates the query.
// The catch-up pass in the probe operators must pair them. (Observed at
// n=2048 with these seeds before the fix: exactly one lost pair.)
func TestRehashBeforeQueryArrivalStillJoins(t *testing.T) {
	if testing.Short() {
		t.Skip("2048-node simulation")
	}
	n := 2048
	sn := NewSimNetwork(n, topology.NewFullMesh(), 1, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 2 * n, Seed: 2})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	expected := tables.ReferenceJoin(c1, c2, c3)

	for _, strat := range []Strategy{SymmetricHash, SymmetricSemiJoin} {
		got := 0
		id, err := sn.Nodes[0].Query(workload.JoinPlan(strat, c1, c2, c3),
			func(*core.Tuple, int) { got++ })
		if err != nil {
			t.Fatal(err)
		}
		deadline := sn.Net.Now().Add(time.Hour)
		sn.Net.RunWhile(deadline, func() bool { return got < len(expected) })
		sn.Nodes[0].Cancel(id)
		if got != len(expected) {
			t.Fatalf("%v: %d/%d results — dissemination race lost tuples", strat, got, len(expected))
		}
	}
}
