package pier

import (
	"fmt"
	"time"

	"pier/internal/index"
	"pier/internal/sql"
)

// Prefix Hash Tree range indexes (internal/index): the paper concedes
// that a DHT offers only exact-match lookups (§4.3), so every range
// predicate runs as a full scan multicast to all nodes. A PHT index —
// a trie over order-preserving key encodings, maintained as soft state
// in the DHT itself — lets a single node answer a range query by
// contacting only the leaves the range covers.

// SQLIndex declares a PHT index on a table schema for the SQL planner;
// sargable predicates on the indexed column then lower to an index
// range scan automatically.
type SQLIndex = sql.Index

// IndexManager is the per-node index agent: definition registry, entry
// publisher, trie maintenance, and range-scan reader.
type IndexManager = index.Manager

// Indexes exposes the node's index agent (definition cache, reader
// counters, explicit Tick control). Periodic trie maintenance is
// configured through Options.Index.
func (n *Node) Indexes() *IndexManager { return n.indexes }

// CreateIndex builds a PHT index named name over column col of the
// registered table schema t, announcing it deployment-wide: every live
// node backfills entries for the base tuples it stores (with their
// remaining lifetimes) and indexes every subsequent Publish/Renew of
// the table. The trie balances itself over the next maintenance ticks.
//
// The definition is soft state: it lives in the DHT for lifetime (zero
// = one hour) and this node's index agent renews it while running, so
// an index whose creator disappears ages out like everything else.
func (n *Node) CreateIndex(t SQLTable, name, col string, lifetime time.Duration) error {
	ci := t.Col(col)
	if ci < 0 {
		return fmt.Errorf("pier: table %s has no column %s", t.Name, col)
	}
	return n.indexes.Create(index.Def{Name: name, Table: t.Name, Col: col, ColIdx: ci}, lifetime)
}

// Exec runs a DDL statement against the deployment. The supported
// vocabulary is CREATE INDEX name ON table (col); the table's schema
// comes from cat, and the created index is also recorded in the DHT
// schema catalog so QuerySQL planners pick it up. SELECT statements
// belong to ParseSQL/Query.
func (n *Node) Exec(src string, cat Catalog) error {
	st, err := sql.ParseStatement(src)
	if err != nil {
		return err
	}
	ci, ok := st.(*sql.CreateIndexStmt)
	if !ok {
		return fmt.Errorf("pier: Exec supports CREATE INDEX; use Query for SELECT")
	}
	t, known := cat[ci.Table]
	if !known {
		return fmt.Errorf("pier: unknown table %q", ci.Table)
	}
	// Idempotent re-run is fine; the same name over a different column
	// is not (the trie stays keyed on the first column, so planners
	// would prune by the wrong encoding and silently drop rows).
	for _, ix := range t.Indexes {
		if ix.Name == ci.Name {
			if ix.Col == ci.Col {
				return n.CreateIndex(t, ci.Name, ci.Col, 0) // refresh the announce
			}
			return fmt.Errorf("pier: index %q already covers %s(%s)", ci.Name, t.Name, ix.Col)
		}
	}
	if err := n.CreateIndex(t, ci.Name, ci.Col, 0); err != nil {
		return err
	}
	// Re-register the schema with the index declared — in the caller's
	// catalog and in the DHT schema catalog — so both local ParseSQL and
	// remote QuerySQL planners see it.
	t.Indexes = append(t.Indexes, SQLIndex{Name: ci.Name, Col: ci.Col})
	cat[ci.Table] = t
	n.RegisterTable(t, 0)
	return nil
}
