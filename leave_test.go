package pier

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/dht/storage"
	"pier/internal/topology"
)

func totalStored(sn *SimNetwork, ns string, skip int) int {
	n := 0
	for i, node := range sn.Nodes {
		if i == skip {
			continue
		}
		node.Provider().Scan(ns, func(*storage.Item) bool {
			n++
			return true
		})
	}
	return n
}

func TestGracefulLeavePreservesData(t *testing.T) {
	sn := NewSimNetwork(10, topology.NewFullMesh(), 95, DefaultOptions())
	for i := 0; i < 200; i++ {
		sn.Load("t", fmt.Sprint(i), int64(i), &Tuple{Rel: "t", Vals: []Value{int64(i)}}, 0)
	}
	leaver := 4
	if sn.Nodes[leaver].Provider().Store().TotalLen() == 0 {
		// Ensure the leaver holds something for the test to mean
		// anything; with 200 keys over 10 nodes it always should.
		t.Fatal("leaver holds no items; pick another seed")
	}
	sn.Nodes[leaver].Leave()
	sn.RunFor(time.Minute)
	sn.Kill(leaver) // the process is gone after leaving

	if got := totalStored(sn, "t", leaver); got != 200 {
		t.Fatalf("after graceful leave %d/200 items survive", got)
	}
	// And they are queryable: every item reachable through gets.
	missing := 0
	for i := 0; i < 200; i += 17 {
		rid := fmt.Sprint(i)
		var got []*storage.Item
		sn.Nodes[0].Provider().Get("t", rid, func(items []*storage.Item) { got = items })
		sn.RunFor(30 * time.Second)
		if len(got) != 1 {
			missing++
		}
	}
	if missing != 0 {
		t.Fatalf("%d sampled keys unreachable after graceful leave", missing)
	}
}

func TestCrashLosesDataUntilRenewed(t *testing.T) {
	// The contrast with the graceful path: a crash drops the node's
	// items (§5.6) until producers renew them.
	sn := NewSimNetwork(10, topology.NewFullMesh(), 96, DefaultOptions())
	for i := 0; i < 200; i++ {
		sn.Load("t", fmt.Sprint(i), int64(i), &Tuple{Rel: "t", Vals: []Value{int64(i)}}, 0)
	}
	victim := 4
	held := sn.Nodes[victim].Provider().Store().TotalLen()
	if held == 0 {
		t.Fatal("victim holds nothing")
	}
	sn.Kill(victim)
	if got := totalStored(sn, "t", victim); got != 200-held {
		t.Fatalf("crash should lose exactly the victim's %d items; %d survive", held, got)
	}
}
