package pier

import (
	"fmt"
	"time"

	"pier/internal/core"
	"pier/internal/dht"
	"pier/internal/dht/can"
	"pier/internal/dht/chord"
	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/simnet"
	"pier/internal/topology"
)

// SimNetwork is a simulated PIER deployment: n nodes over a discrete-
// event network, with the overlay pre-stabilized ("All measurements ...
// are performed after the CAN routing stabilizes", §5.2).
type SimNetwork struct {
	// Net is the underlying simulator (clock, Run, Kill, Stats).
	Net   *simnet.Network
	Nodes []*Node

	opts   Options
	canSM  *can.SpaceMap
	chords []*chord.Router
	cans   []*can.Router
}

// NewSimNetwork builds a stabilized n-node simulated deployment over the
// given topology.
func NewSimNetwork(n int, topo topology.Topology, seed int64, opts Options) *SimNetwork {
	sn := &SimNetwork{Net: simnet.New(topo, seed), opts: opts}
	for i := 0; i < n; i++ {
		sn.addNode()
	}
	switch opts.DHT {
	case Chord:
		chord.Bootstrap(sn.chords)
	default:
		sn.canSM = can.Bootstrap(sn.cans, seed^0x51ca90)
	}
	return sn
}

func (sn *SimNetwork) addNode() *Node {
	e := sn.Net.AddNode()
	node := buildNode(e, sn.opts)
	sn.Nodes = append(sn.Nodes, node)
	switch rt := node.router.(type) {
	case *can.Router:
		sn.cans = append(sn.cans, rt)
	case *chord.Router:
		sn.chords = append(sn.chords, rt)
	}
	return node
}

// AddNode joins one extra node to the running network through the given
// landmark node index (protocol join, used by churn experiments).
func (sn *SimNetwork) AddNode(landmark int) *Node {
	node := sn.addNode()
	lm := sn.Nodes[landmark].Addr()
	node.router.Join(lm)
	return node
}

// Join is AddNode under the lifecycle vocabulary of the chaos harness:
// a fresh node enters the overlay through the landmark. It returns the
// new node's index.
func (sn *SimNetwork) Join(landmark int) int {
	sn.AddNode(landmark)
	return len(sn.Nodes) - 1
}

// Leave departs node i gracefully: its zone and stored soft state
// transfer to a peer (§5.6's clean-shutdown contrast to a crash), then
// the process goes away — pending timers are reclaimed and later
// messages to it drop. The transfer messages are already in flight
// before the kill, so nothing the node owned is lost.
func (sn *SimNetwork) Leave(i int) {
	sn.Nodes[i].Leave()
	sn.Net.Kill(i)
}

// Crash fails node i abruptly: its tuples are lost and messages to it
// are dropped (§5.6). Alias of Kill, named for the chaos vocabulary.
func (sn *SimNetwork) Crash(i int) { sn.Net.Kill(i) }

// Restart models a node that crashes and comes back: the process at
// index i dies and a fresh identity rejoins through the landmark —
// rejoining nodes get new addresses and empty stores, exactly like a
// new participant (DHT identities are not durable). It returns the new
// node's index.
func (sn *SimNetwork) Restart(i, landmark int) int {
	sn.Crash(i)
	return sn.Join(landmark)
}

// Partition splits the network into islands (see simnet.Network.
// Partition); Heal removes it. Messages across islands are dropped.
func (sn *SimNetwork) Partition(groups ...[]int) { sn.Net.Partition(groups...) }

// Heal removes the current partition.
func (sn *SimNetwork) Heal() { sn.Net.Heal() }

// SetLoss sets the global per-message loss probability of the
// underlying simulated network.
func (sn *SimNetwork) SetLoss(p float64) { sn.Net.SetLoss(p) }

// Owner returns the index of the node responsible for
// (namespace, resourceID).
func (sn *SimNetwork) Owner(namespace, resourceID string) int {
	if sn.canSM != nil {
		return sn.canSM.OwnerOf(namespace, resourceID)
	}
	k := dht.KeyOf(namespace, resourceID)
	for i, node := range sn.Nodes {
		if node.router.Owns(k) {
			return i
		}
	}
	return -1
}

// Load bulk-inserts a tuple directly at its responsible node, bypassing
// the network: the paper's experiments begin after tables are loaded
// into the DHT (§5.2). lifetime zero means no expiry.
func (sn *SimNetwork) Load(table, resourceID string, instanceID int64, t *Tuple, lifetime time.Duration) {
	owner := sn.Owner(table, resourceID)
	if owner < 0 {
		panic(fmt.Sprintf("pier: no owner for %s/%s", table, resourceID))
	}
	it := &storage.Item{Namespace: table, ResourceID: resourceID, InstanceID: instanceID, Payload: t}
	if lifetime > 0 {
		it.Expires = sn.Net.Now().Add(lifetime)
	}
	sn.Nodes[owner].provider.StoreLocal(it)
}

// RunFor advances the simulation by d of virtual time.
func (sn *SimNetwork) RunFor(d time.Duration) { sn.Net.RunFor(d) }

// RunUntil processes events until done() reports true or the deadline
// elapses; it returns whether done() was reached.
func (sn *SimNetwork) RunUntil(limit time.Duration, done func() bool) bool {
	deadline := sn.Net.Now().Add(limit)
	sn.Net.RunWhile(deadline, func() bool { return !done() })
	return done()
}

// Kill fails node i (crash: its tuples are lost and messages to it are
// dropped, §5.6).
func (sn *SimNetwork) Kill(i int) { sn.Net.Kill(i) }

// Alive reports whether node i is up.
func (sn *SimNetwork) Alive(i int) bool { return sn.Net.Alive(i) }

// QueryFrom runs a plan from node i. See Node.Query.
func (sn *SimNetwork) QueryFrom(i int, p *Plan, fn ResultFunc) (uint64, error) {
	return sn.Nodes[i].Query(p, fn)
}

// Collect runs a plan from node i, drives the simulation until either
// want results arrived (want > 0) or no further progress is possible
// within limit, and returns the collected tuples with their virtual
// arrival times.
func (sn *SimNetwork) Collect(i int, p *Plan, want int, limit time.Duration) ([]*Tuple, []time.Time, error) {
	var tuples []*Tuple
	var times []time.Time
	id, err := sn.Nodes[i].Query(p, func(t *core.Tuple, window int) {
		tuples = append(tuples, t)
		times = append(times, sn.Net.Now())
	})
	if err != nil {
		return nil, nil, err
	}
	defer sn.Nodes[i].Cancel(id)
	sn.RunUntil(limit, func() bool { return want > 0 && len(tuples) >= want })
	return tuples, times, nil
}

var _ = env.NilAddr
