// Filesharing index: the application that motivates the paper's opening
// (§2.1 — P2P filesharing "truly run[s] queries across the Internet").
// This example runs PIER over *real TCP sockets* on localhost: five
// nodes join a CAN overlay, each publishes an index of its shared
// files (name, size, node), and a selection query finds files matching
// a predicate — with full recall, unlike Gnutella-style flooding
// (§3.1: unstructured schemes "can ... even fail to locate a key that
// is indeed available").
package main

import (
	"fmt"
	"sync"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/env"
)

func main() {
	opts := pier.DefaultOptions()

	// Boot a five-node overlay on loopback; the first node creates the
	// network, the rest join through it as a landmark.
	first, err := pier.StartNode("127.0.0.1:0", env.NilAddr, 1, opts)
	must(err)
	nodes := []*pier.RealNode{first}
	for i := 1; i < 5; i++ {
		n, err := pier.StartNode("127.0.0.1:0", first.Addr(), int64(i+1), opts)
		must(err)
		if !n.WaitReady(10 * time.Second) {
			panic("node failed to join the overlay")
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	fmt.Println("5-node CAN overlay up on loopback TCP")

	// Each node publishes its local file index. The data of record (the
	// files) stays in its natural habitat; only extracted metadata
	// enters the DHT, with a lifetime the wrapper would keep renewing
	// (§2.2c).
	libraries := [][]struct {
		name string
		size int64
	}{
		{{"ubuntu-24.04.iso", 5_900_000}, {"notes.txt", 12}},
		{{"go1.22.tar.gz", 68_000}, {"ubuntu-24.04.iso", 5_900_000}},
		{{"paper-pier.pdf", 820}, {"holiday.jpg", 4_100}},
		{{"go1.22.tar.gz", 68_000}, {"backup.tar", 9_300_000}},
		{{"lecture.mp4", 1_200_000}},
	}
	iid := int64(0)
	for i, lib := range libraries {
		for _, f := range lib {
			iid++
			t := &pier.Tuple{Rel: "files", Vals: []pier.Value{f.name, f.size, string(nodes[i].Addr())}}
			// resourceID = filename: equality search is one DHT get.
			nodes[i].Publish("files", f.name, iid, t, 5*time.Minute)
		}
	}
	time.Sleep(500 * time.Millisecond) // puts are async

	cat := pier.Catalog{"files": {Name: "files", Cols: []string{"name", "size", "host"}, Key: "name"}}
	query := func(label, src string, want int) {
		plan, err := pier.ParseSQL(src, cat)
		must(err)
		var mu sync.Mutex
		var rows []*pier.Tuple
		_, err = nodes[2].Query(plan, func(t *core.Tuple, _ int) {
			mu.Lock()
			rows = append(rows, t)
			mu.Unlock()
		})
		must(err)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			n := len(rows)
			mu.Unlock()
			if n >= want {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		mu.Lock()
		defer mu.Unlock()
		fmt.Printf("== %s ==\n", label)
		for _, r := range rows {
			fmt.Printf("  %-20v %10v bytes @ %v\n", r.Vals[0], r.Vals[1], r.Vals[2])
		}
	}

	// Full-recall search across all peers' indexes.
	query("all copies of ubuntu-24.04.iso", `
		SELECT name, size, host FROM files WHERE name = 'ubuntu-24.04.iso'`, 2)
	query("large files (> 1 MB) anywhere on the network", `
		SELECT name, size, host FROM files WHERE size > 1000000`, 4)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
