// Network monitoring: continuous queries over packet-header streams —
// the paper's driving application class (§2.1: "network tools like
// tcpdump can be used to generate traces of packet headers, supporting
// queries on bandwidth utilization by source, by port, etc."), using
// the continuous/windowed execution the paper sketches as future work
// (§7: "Continuous queries over streams").
//
// Every node wraps a synthetic tcpdump feed and publishes one tuple per
// observed packet; a monitoring station asks for per-source bandwidth,
// aggregated in 10-second tumbling windows.
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/topology"
)

func main() {
	sn := pier.NewSimNetwork(32, topology.NewFullMesh(), 3, pier.DefaultOptions())

	// The continuous plan: per-source packet and byte counts per
	// 10-second window, three windows.
	plan := &pier.Plan{
		Tables:     []pier.TableRef{{NS: "packets"}},
		GroupBy:    []int{0}, // src
		Aggs:       []pier.Aggregate{{Kind: pier.Count, Col: -1}, {Kind: pier.Sum, Col: 2}},
		Continuous: true,
		Every:      10 * time.Second,
		Windows:    3,
		AggWait:    4 * time.Second,
		TTL:        2 * time.Minute,
	}

	type row struct {
		src   string
		pkts  int64
		bytes int64
	}
	perWindow := map[int][]row{}
	_, err := sn.Nodes[0].Query(plan, func(t *core.Tuple, w int) {
		perWindow[w] = append(perWindow[w], row{t.Vals[0].(string), t.Vals[1].(int64), t.Vals[2].(int64)})
	})
	if err != nil {
		panic(err)
	}

	// Synthetic traffic: a handful of sources with different rates;
	// src "10.0.0.9" goes loud in window 1 — the anomaly the monitor
	// should surface. Each wrapper publishes packets as they happen.
	rng := rand.New(rand.NewSource(9))
	sources := []string{"10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.9"}
	iid := int64(0)
	for at := 250 * time.Millisecond; at < 30*time.Second; at += 250 * time.Millisecond {
		at := at
		node := rng.Intn(len(sn.Nodes))
		src := sources[rng.Intn(3)] // background traffic
		if at > 10*time.Second && at < 20*time.Second && rng.Intn(2) == 0 {
			src = "10.0.0.9" // burst in the second window
		}
		iid++
		id := iid
		size := int64(64 + rng.Intn(1400))
		n := sn.Nodes[node]
		sn.Net.Node(node).After(at, func() {
			pkt := &pier.Tuple{Rel: "packets", Vals: []pier.Value{src, int64(80), size}}
			n.Publish("packets", fmt.Sprintf("%s/%d", src, id), id, pkt, time.Minute)
		})
	}

	// Run long enough for all three windows to be emitted.
	sn.RunFor(50 * time.Second)

	for w := 0; w < 3; w++ {
		fmt.Printf("== window %d (t=%ds..%ds): bandwidth by source ==\n", w, w*10, (w+1)*10)
		rows := perWindow[w]
		sort.Slice(rows, func(i, j int) bool { return rows[i].bytes > rows[j].bytes })
		for _, r := range rows {
			bar := ""
			for i := int64(0); i < r.bytes/2000; i++ {
				bar += "#"
			}
			fmt.Printf("  %-10s %4d pkts %7d bytes %s\n", r.src, r.pkts, r.bytes, bar)
		}
	}
	fmt.Println("note: 10.0.0.9 should spike in window 1 — the monitoring signal")
}
