// Quickstart: bring up a simulated 16-node PIER deployment, publish two
// small relations into the DHT, and run a distributed join expressed in
// SQL — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"time"

	"pier"
	"pier/internal/topology"
)

func main() {
	// A 16-node overlay on the paper's fully connected topology
	// (100 ms latency, 10 Mbps inbound links). The CAN is already
	// stabilized when NewSimNetwork returns.
	sn := pier.NewSimNetwork(16, topology.NewFullMesh(), 1, pier.DefaultOptions())

	// Two toy relations: employees(id, dept, salary) and depts(dept,
	// name). Base tuples are published under their primary key.
	type emp struct {
		id     int64
		dept   string
		salary int64
	}
	emps := []emp{
		{1, "db", 95}, {2, "db", 80}, {3, "net", 70},
		{4, "net", 120}, {5, "os", 65},
	}
	for i, e := range emps {
		t := &pier.Tuple{Rel: "employees", Vals: []pier.Value{e.id, e.dept, e.salary}}
		sn.Load("employees", fmt.Sprint(e.id), int64(i), t, 0)
	}
	for i, d := range [][2]string{{"db", "Databases"}, {"net", "Networking"}, {"os", "Systems"}} {
		t := &pier.Tuple{Rel: "depts", Vals: []pier.Value{d[0], d[1]}}
		sn.Load("depts", d[0], int64(i), t, 0)
	}

	// The schema catalog the SQL front end plans against.
	cat := pier.Catalog{
		"employees": {Name: "employees", Cols: []string{"id", "dept", "salary"}, Key: "id"},
		"depts":     {Name: "depts", Cols: []string{"dept", "name"}, Key: "dept"},
	}
	plan, err := pier.ParseSQL(`
		SELECT e.id, d.name, e.salary
		FROM employees AS e, depts AS d
		WHERE e.dept = d.dept AND e.salary > 60
		USING STRATEGY 'symmetric hash'`, cat)
	if err != nil {
		panic(err)
	}

	// Run the query from node 0 and drive the simulation until all five
	// results arrive.
	results, times, err := sn.Collect(0, plan, len(emps), time.Minute)
	if err != nil {
		panic(err)
	}
	fmt.Println("distributed join results:")
	for i, t := range results {
		fmt.Printf("  id=%v dept=%v salary=%v  (virtual t=%v)\n",
			t.Vals[0], t.Vals[1], t.Vals[2], times[i].Sub(times[0]))
	}
	stats := sn.Net.Stats()
	fmt.Printf("network: %d messages, %.1f KB total\n", stats.Messages, float64(stats.Bytes)/1024)
}
