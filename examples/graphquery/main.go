// Graph reachability: the paper's §7 research thrust "Recursive Queries
// on Network Graphs" — "in the Gnutella filesharing network it is
// useful to compute the set of nodes reachable within k hops of each
// node. A twist here is that the data is the network: the graph being
// queried is in fact the communication network used in execution."
//
// Every node publishes its own CAN overlay links into a "links"
// relation (src, dst), hashed on src. Reachability from a source is
// then k rounds of a distributed semi-naive join: the initiator
// publishes the current frontier as a temporary relation and joins it
// against "links" with the Fetch Matches strategy — one DHT get per
// frontier member, exactly an index lookup on the edge table.
package main

import (
	"fmt"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/topology"
)

func main() {
	const n = 64
	sn := pier.NewSimNetwork(n, topology.NewFullMesh(), 17, pier.DefaultOptions())

	// Each node wraps its own routing state: one (src, dst) tuple per
	// overlay link, published under src so gets by source stay cheap.
	iid := int64(0)
	edges := 0
	for _, node := range sn.Nodes {
		src := string(node.Addr())
		for _, nb := range node.Router().Neighbors() {
			iid++
			edges++
			t := &pier.Tuple{Rel: "links", Vals: []pier.Value{src, string(nb)}}
			sn.Load("links", src, iid, t, 0)
		}
	}
	fmt.Printf("published %d overlay links from %d nodes\n", edges, n)

	source := string(sn.Nodes[0].Addr())
	visited := map[string]bool{source: true}
	frontier := []string{source}

	for hop := 1; hop <= 4 && len(frontier) > 0; hop++ {
		// Publish the frontier as a temporary soft-state relation.
		fns := fmt.Sprintf("frontier%d", hop)
		for i, f := range frontier {
			sn.Load(fns, f, int64(i), &pier.Tuple{Rel: fns, Vals: []pier.Value{f}}, 10*time.Minute)
		}
		// frontier ⋈ links on addr = src, via Fetch Matches: the links
		// table is already hashed on the join attribute (§4.1).
		plan := &pier.Plan{
			Tables: []pier.TableRef{
				{NS: fns, JoinCols: []int{0}, RIDCol: 0},
				{NS: "links", JoinCols: []int{0}, RIDCol: 0},
			},
			Strategy: pier.FetchMatches,
			Output:   []core.Expr{&core.Col{Idx: 2}}, // links.dst
		}
		rows, _, err := sn.Collect(0, plan, 0, 2*time.Minute)
		if err != nil {
			panic(err)
		}
		var next []string
		for _, r := range rows {
			dst := r.Vals[0].(string)
			if !visited[dst] {
				visited[dst] = true
				next = append(next, dst)
			}
		}
		frontier = next
		fmt.Printf("hop %d: +%d newly reachable, %d/%d total\n", hop, len(next), len(visited), n)
	}

	if len(visited) == n {
		fmt.Println("the whole overlay is reachable — the CAN neighbor graph is connected")
	} else {
		fmt.Printf("reached %d of %d nodes within 4 hops\n", len(visited), n)
	}
}
