// Intrusion detection: the paper's §2.1 motivating application. Nodes
// publish attack fingerprints into PIER's distributed index with a
// soft-state lifetime, and organizations run the paper's three example
// queries over the live data:
//
//  1. a join finding compromised hosts (spam gateway + web robot in the
//     same domain),
//  2. a global fingerprint summary with HAVING,
//  3. a reputation-weighted summary (join + group by + computed column).
package main

import (
	"fmt"
	"math/rand"
	"time"

	"pier"
	"pier/internal/topology"
)

var cat = pier.Catalog{
	"spamGateways": {Name: "spamGateways", Cols: []string{"source", "smtpGWDomain"}, Key: "source"},
	"robots":       {Name: "robots", Cols: []string{"clientDomain"}, Key: "clientDomain"},
	"intrusions":   {Name: "intrusions", Cols: []string{"fingerprint", "address"}, Key: "fingerprint"},
	"reputation":   {Name: "reputation", Cols: []string{"address", "weight"}, Key: "address"},
}

func main() {
	sn := pier.NewSimNetwork(64, topology.NewFullMesh(), 7, pier.DefaultOptions())
	rng := rand.New(rand.NewSource(7))
	publishFingerprints(sn, rng)

	// Query 1 (§2.1): unrestricted email gateways in the same subnet as
	// a web robot — likely compromised hosts.
	q1, err := pier.ParseSQL(`
		SELECT S.source
		FROM spamGateways AS S, robots AS R
		WHERE S.smtpGWDomain = R.clientDomain`, cat)
	must(err)
	rows, _, err := sn.Collect(0, q1, 0, 2*time.Minute)
	must(err)
	fmt.Println("== compromised hosts (spam gateway + robot in one domain) ==")
	for _, r := range rows {
		fmt.Printf("  %v\n", r.Vals[0])
	}

	// Query 2 (§2.1): widespread attacks.
	q2, err := pier.ParseSQL(`
		SELECT I.fingerprint, count(*) AS cnt
		FROM intrusions AS I
		GROUP BY I.fingerprint
		HAVING cnt > 10`, cat)
	must(err)
	q2.AggWait = 5 * time.Second
	rows, _, err = sn.Collect(0, q2, 0, 2*time.Minute)
	must(err)
	fmt.Println("== widespread attack fingerprints (count > 10) ==")
	for _, r := range rows {
		fmt.Printf("  %-12v reports=%v\n", r.Vals[0], r.Vals[1])
	}

	// Query 3 (§2.1): weight reports by the reporters' reputations.
	q3, err := pier.ParseSQL(`
		SELECT I.fingerprint, count(*) * sum(R.weight) AS wcnt
		FROM intrusions AS I, reputation AS R
		WHERE R.address = I.address
		GROUP BY I.fingerprint
		HAVING wcnt > 10`, cat)
	must(err)
	q3.AggWait = 8 * time.Second
	rows, _, err = sn.Collect(0, q3, 0, 2*time.Minute)
	must(err)
	fmt.Println("== reputation-weighted fingerprints (wcnt > 10) ==")
	for _, r := range rows {
		fmt.Printf("  %-12v wcnt=%v\n", r.Vals[0], r.Vals[1])
	}
}

// publishFingerprints stands in for the paper's wrappers around mail
// servers, Snort, and web logs: every node publishes what it observed,
// with a lifetime, directly through the provider API.
func publishFingerprints(sn *pier.SimNetwork, rng *rand.Rand) {
	domains := []string{"campus.edu", "isp.net", "cloud.io", "corp.example"}
	// Spam gateways and robots: overlapping domains are the signal.
	iid := int64(0)
	for i, d := range domains {
		iid++
		sn.Load("spamGateways", fmt.Sprintf("gw%d", i), iid,
			&pier.Tuple{Rel: "spamGateways", Vals: []pier.Value{fmt.Sprintf("gw%d.%s", i, d), d}}, 0)
	}
	for _, d := range []string{"campus.edu", "cloud.io"} {
		iid++
		sn.Load("robots", d, iid, &pier.Tuple{Rel: "robots", Vals: []pier.Value{d}}, 0)
	}
	// Attack fingerprints from many reporters: fpSlammer is widespread,
	// fpProbe is rare.
	reporters := make([]string, 24)
	for i := range reporters {
		reporters[i] = fmt.Sprintf("10.1.%d.%d", rng.Intn(256), rng.Intn(256))
	}
	for i := 0; i < 18; i++ {
		iid++
		addr := reporters[rng.Intn(len(reporters))]
		sn.Load("intrusions", fmt.Sprintf("fpSlammer/%d", iid), iid,
			&pier.Tuple{Rel: "intrusions", Vals: []pier.Value{"fpSlammer", addr}}, 0)
	}
	for i := 0; i < 4; i++ {
		iid++
		addr := reporters[rng.Intn(len(reporters))]
		sn.Load("intrusions", fmt.Sprintf("fpProbe/%d", iid), iid,
			&pier.Tuple{Rel: "intrusions", Vals: []pier.Value{"fpProbe", addr}}, 0)
	}
	// Reputations: every reporter is known with weight 1..3.
	for _, addr := range reporters {
		iid++
		sn.Load("reputation", addr, iid,
			&pier.Tuple{Rel: "reputation", Vals: []pier.Value{addr, int64(1 + rng.Intn(3))}}, 0)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
