// Rangequery: CREATE INDEX plus a range query on the simulator. A
// plain DHT only answers exact-match lookups, so PIER normally executes
// a range predicate by multicasting the query to every node for a full
// scan. This example builds a Prefix Hash Tree index over one column
// (`CREATE INDEX` through Node.Exec), lets the trie settle, and runs
// `WHERE size < ...` through the index — the initiator traverses only
// the trie nodes the range covers instead of contacting the whole
// overlay.
package main

import (
	"fmt"
	"sort"
	"time"

	"pier"
	"pier/internal/topology"
)

// run builds the deployment, indexes it, and returns the matching file
// names in order plus how many trie nodes the range traversal
// contacted (out of a 32-node overlay).
func run() (names []string, contacted int) {
	opts := pier.DefaultOptions()
	// The index agent's maintenance loop splits overflowing trie
	// leaves, merges underflowing ones, and heals lost interior nodes.
	opts.Index.Interval = 10 * time.Second
	sn := pier.NewSimNetwork(32, topology.NewFullMesh(), 1, opts)

	// One relation: files(name, size). Base tuples are published under
	// their primary key, as usual.
	type file struct {
		name string
		size int64
	}
	files := []file{
		{"kernel.iso", 700}, {"notes.txt", 1}, {"paper.pdf", 2},
		{"backup.tar", 900}, {"song.mp3", 5}, {"photo.raw", 40},
		{"video.mkv", 1400}, {"readme.md", 1},
	}
	for i, f := range files {
		t := &pier.Tuple{Rel: "files", Vals: []pier.Value{f.name, f.size}}
		sn.Load("files", f.name, int64(i), t, 0)
	}

	cat := pier.Catalog{
		"files": {Name: "files", Cols: []string{"name", "size"}, Key: "name"},
	}
	node := sn.Nodes[0]
	node.RegisterTable(cat["files"], time.Hour)

	// CREATE INDEX announces the definition deployment-wide: every node
	// backfills entries for the tuples it stores, and the maintenance
	// ticks shape the trie. Exec also records the index in cat, so the
	// planner below sees it.
	if err := node.Exec(`CREATE INDEX files_size ON files (size)`, cat); err != nil {
		panic(err)
	}
	sn.RunFor(2 * time.Minute)

	// A sargable predicate on the indexed column lowers to an
	// IndexRangeScan automatically; the filter itself stays on the
	// plan as the exact residual check.
	plan, err := pier.ParseSQL(`SELECT name, size FROM files WHERE size < 50`, cat)
	if err != nil {
		panic(err)
	}
	plan.TTL = 5 * time.Minute

	id, err := node.Query(plan, func(t *pier.Tuple, _ int) {
		names = append(names, fmt.Sprintf("%v (%v KB)", t.Vals[0], t.Vals[1]))
	})
	if err != nil {
		panic(err)
	}
	sn.RunFor(time.Minute)
	contacted, _ = node.Engine().IndexContacts(id)
	node.Cancel(id)
	sort.Strings(names)
	return names, contacted
}

func main() {
	names, contacted := run()
	for _, n := range names {
		fmt.Println(n)
	}
	fmt.Printf("index traversal contacted %d trie nodes (overlay: 32 nodes)\n", contacted)
}
