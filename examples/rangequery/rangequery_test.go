package main

import "fmt"

// Example pins the deterministic end-to-end behavior of CREATE INDEX
// plus a range query on the simulator: the range returns exactly the
// files under the cutoff, and the traversal touches the trie — not the
// overlay. With this toy relation the whole index fits in one leaf, so
// one trie-node get answers the query where a full scan would have
// multicast to all 32 nodes.
func Example() {
	names, contacted := run()
	for _, n := range names {
		fmt.Println(n)
	}
	fmt.Printf("index traversal contacted %d trie nodes (overlay: 32 nodes)\n", contacted)
	// Output:
	// notes.txt (1 KB)
	// paper.pdf (2 KB)
	// photo.raw (40 KB)
	// readme.md (1 KB)
	// song.mp3 (5 KB)
	// index traversal contacted 1 trie nodes (overlay: 32 nodes)
}
