package pier

// Disk-spill smoke over a real node: publish past a namespace quota so
// the expiring items overflow to the spill log, restart the node on the
// same directory, and verify the replay semantics — items that expired
// while the node was down are dropped, the still-live control survives,
// and a renew of it promotes it back off the disk tier. This is the CI
// gate for the StartNode + SpillDir wiring (the store's own behavior is
// pinned by the storage conformance and spill suites).

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/dht/storage"
	"pier/internal/env"
)

func waitStorage(t *testing.T, nd *RealNode, timeout time.Duration, what string, ok func(StorageStats) bool) StorageStats {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ss := nd.StorageStats()
		if ok(ss) {
			return ss
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: still waiting at %+v", what, ss)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestSpillSmokeRestartExpiryAndPromotion(t *testing.T) {
	if testing.Short() {
		t.Skip("starts and restarts a TCP node")
	}
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.ProviderConfig.Quota = storage.BoundedConfig{Quotas: map[string]int64{"K": 2 << 10}}
	opts.ProviderConfig.ThrottleDelay = 50 * time.Millisecond
	opts.SpillDir = dir

	nd, err := StartNode("127.0.0.1:0", env.NilAddr, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			nd.Close()
		}
	}()

	tup := func(i int) *Tuple {
		return &Tuple{Rel: "K", Vals: []Value{int64(i)}, Pad: 80}
	}
	// Short-lived batch, then a longer-lived control, then enough
	// immortal filler to blow the quota: eviction takes nearest-to-
	// expiry first, so the batch and the control are what lands on disk.
	const shortN = 6
	shortLife := 6 * time.Second
	shortDeadline := time.Now().Add(shortLife)
	for i := 0; i < shortN; i++ {
		nd.Publish("K", fmt.Sprintf("gone%d", i), int64(i), tup(i), shortLife)
	}
	nd.Publish("K", "ctl", 100, tup(100), 10*time.Minute)
	for i := 0; i < 40; i++ {
		nd.Publish("K", fmt.Sprintf("fill%02d", i), int64(200+i), tup(200+i), 0)
	}

	ss := waitStorage(t, nd, 5*time.Second, "expiring items never spilled",
		func(ss StorageStats) bool { return ss.SpilledLive >= shortN+1 })
	// On a one-node deployment every put is local, so backpressure shows
	// up as publisher-side self-throttle delays rather than wire
	// throttle replies.
	if ss.PutsDelayed == 0 {
		t.Errorf("quota pressure never engaged put backpressure: %+v", ss)
	}

	nd.Close()
	closed = true
	if d := time.Until(shortDeadline.Add(time.Second)); d > 0 {
		time.Sleep(d) // let the short-lived batch expire while down
	}

	nd2, err := StartNode("127.0.0.1:0", env.NilAddr, 2, opts)
	if err != nil {
		t.Fatalf("restart on the spill dir: %v", err)
	}
	defer nd2.Close()

	retrieve := func(rid string) int {
		n := 0
		nd2.Do(func() { n = len(nd2.Provider().Store().Retrieve("K", rid)) })
		return n
	}
	after := nd2.StorageStats()
	if after.SpilledLive == 0 {
		t.Fatalf("replay recovered no live spilled items: %+v", after)
	}
	for i := 0; i < shortN; i++ {
		if got := retrieve(fmt.Sprintf("gone%d", i)); got != 0 {
			t.Fatalf("item gone%d expired while down but survived the replay", i)
		}
	}
	if got := retrieve("ctl"); got != 1 {
		t.Fatalf("live control did not survive the restart: %d copies", got)
	}

	// A renew of the spilled control promotes it back to memory: the
	// disk copy is tombstoned and nothing needs evicting (memory is
	// nearly empty after the restart), so the disk population shrinks
	// by exactly one.
	nd2.Renew("K", "ctl", 100, tup(100), 10*time.Minute)
	waitStorage(t, nd2, 5*time.Second, "renew never promoted the control",
		func(ss StorageStats) bool {
			return ss.SpilledLive == after.SpilledLive-1 &&
				ss.ItemsSpilled == after.ItemsSpilled
		})
	if got := retrieve("ctl"); got != 1 {
		t.Fatalf("promotion left %d copies of the control, want exactly 1", got)
	}
}
