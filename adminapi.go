package pier

import (
	"fmt"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"pier/internal/admin"
	"pier/internal/core"
	"pier/internal/sql"
)

// AdminHandler builds the node's HTTP admin plane over any Session: a
// REST API (status, routing, soft state, indexes, live queries with
// run/cancel, schema registration, publish, graceful leave) plus a
// Prometheus-text /metrics endpoint exporting every counter family the
// node collects. Mount it on any mux, an httptest server, or serve it
// directly:
//
//	srv := &http.Server{Addr: "127.0.0.1:7080", Handler: pier.AdminHandler(node)}
//	go srv.ListenAndServe()
//
// The handler is safe for concurrent requests when the Session is (a
// *RealNode); mounting it over a simulated *Node is only sensible for
// single-threaded inspection.
func AdminHandler(s Session) http.Handler {
	b := &adminBackend{s: s}
	b.iid.Store(time.Now().UnixNano())
	return admin.New(b)
}

// catalogWait bounds how long the admin adapter waits for DHT catalog
// lookups before reporting the deployment unavailable.
const catalogWait = 10 * time.Second

// adminBackend adapts a Session to the admin plane's Backend interface.
// All methods run on HTTP handler goroutines and never call Session
// methods from inside event-loop callbacks (which would deadlock a
// RealNode); callback payloads cross back over channels instead.
type adminBackend struct {
	s   Session
	iid atomic.Int64
}

func (b *adminBackend) Snapshot() admin.Snapshot { return b.s.Snapshot() }

func (b *adminBackend) Queries() []admin.QueryInfo {
	var out []admin.QueryInfo
	for _, q := range b.s.LiveQueries() {
		out = append(out, admin.QueryInfo{
			ID:         q.ID,
			Initiator:  q.Initiator,
			Executor:   q.Executor,
			Tables:     q.Tables,
			Continuous: q.Continuous,
			Started:    q.Started,
		})
	}
	return out
}

func (b *adminBackend) Cancel(id uint64) bool { return b.s.Cancel(id) }

func (b *adminBackend) Leave() { b.s.Leave() }

// lookupTable resolves one schema from the DHT catalog, waiting at
// most catalogWait.
func (b *adminBackend) lookupTable(name string) (*SQLTable, error) {
	ch := make(chan *SQLTable, 1)
	b.s.LookupTable(name, func(t *SQLTable) { ch <- t })
	select {
	case t := <-ch:
		if t == nil {
			return nil, fmt.Errorf("table %q not in the DHT catalog", name)
		}
		return t, nil
	case <-time.After(catalogWait):
		return nil, fmt.Errorf("catalog lookup for %q timed out: %w", name, admin.ErrUnavailable)
	}
}

func (b *adminBackend) RunSQL(src string, each func(admin.Row)) (uint64, admin.SQLKind, error) {
	st, err := sql.ParseStatement(src)
	if err != nil {
		return 0, admin.SQLDDL, err
	}
	var sel *sql.Stmt
	kind := admin.SQLQuery
	switch s := st.(type) {
	case *sql.CreateIndexStmt:
		t, err := b.lookupTable(s.Table)
		if err != nil {
			return 0, admin.SQLDDL, err
		}
		return 0, admin.SQLDDL, b.s.Exec(src, Catalog{s.Table: *t})
	case *sql.ExplainStmt:
		// QuerySQL re-plans the full src; sql.Plan forces Trace on for
		// the EXPLAIN TRACE form, so the query runs traced.
		sel, kind = s.Select, admin.SQLExplain
	case *sql.Stmt:
		sel = s
	default:
		return 0, admin.SQLDDL, fmt.Errorf("unsupported statement")
	}
	var tables []string
	for _, ti := range sel.From {
		tables = append(tables, ti.Name)
	}
	type outcome struct {
		id  uint64
		err error
	}
	done := make(chan outcome, 1)
	fn := func(t *Tuple, window int) {
		each(admin.Row{Window: window, Values: append([]any(nil), t.Vals...)})
	}
	b.s.QuerySQL(src, tables, fn, func(id uint64, err error) {
		select {
		case done <- outcome{id, err}:
		default:
		}
	})
	select {
	case o := <-done:
		return o.id, kind, o.err
	case <-time.After(catalogWait):
		return 0, kind, fmt.Errorf("query planning timed out: %w", admin.ErrUnavailable)
	}
}

// Trace adapts the Session's trace surface to the admin DTOs.
func (b *adminBackend) Trace(id uint64) (admin.QueryTrace, bool) {
	tr, ok := b.s.Trace(id)
	if !ok {
		return admin.QueryTrace{}, false
	}
	out := admin.QueryTrace{
		ID:       tr.QueryID,
		Root:     string(tr.Root),
		Started:  tr.Started,
		Finished: tr.Finished,
		Drops:    tr.Drops,
		Rendered: tr.RenderString(),
	}
	for _, s := range tr.Spans {
		out.Spans = append(out.Spans, admin.TraceSpan{
			Stage: s.Stage.String(),
			Node:  string(s.Node),
			Start: s.Start,
			DurNS: int64(s.Dur),
			Note:  s.Note,
			Seq:   s.Seq,
		})
	}
	return out, true
}

func (b *adminBackend) RegisterTable(name, key string, cols []string) error {
	t := SQLTable{Name: name, Cols: cols, Key: key}
	if t.Col(key) < 0 {
		return fmt.Errorf("key column %q is not one of the table's columns", key)
	}
	b.s.RegisterTable(t, 0)
	return nil
}

func (b *adminBackend) Publish(table string, values []any, lifetime time.Duration) (string, error) {
	t, err := b.lookupTable(table)
	if err != nil {
		return "", err
	}
	if len(values) != len(t.Cols) {
		return "", fmt.Errorf("table %s takes %d columns, got %d", table, len(t.Cols), len(values))
	}
	vals := make([]Value, len(values))
	for i, v := range values {
		vals[i] = normalizeValue(v)
	}
	rid := core.ValueString(vals[t.Col(t.Key)])
	b.s.Publish(table, rid, b.iid.Add(1), &Tuple{Rel: table, Vals: vals}, lifetime)
	return rid, nil
}

// normalizeValue maps a decoded JSON value onto the engine's Value
// vocabulary: integral floats become int64 (JSON has no integer type,
// but joins and predicates compare int64s), everything else passes
// through.
func normalizeValue(v any) Value {
	if f, ok := v.(float64); ok && f == math.Trunc(f) && math.Abs(f) < 1<<53 {
		return int64(f)
	}
	return v
}
