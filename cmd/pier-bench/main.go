// pier-bench regenerates every table and figure of the paper's
// evaluation (§5) and prints them as text tables. By default it runs
// the scaled-down configurations (minutes); -full restores paper scale
// (n = 1024 .. 10,000 — hours).
//
// Scenarios that support it also emit machine-readable records;
// -json FILE collects them into a JSON array (BENCH_*.json style) so
// per-PR performance trajectories can be tracked.
//
// The chaos scenario runs the pinned-seed fault-injection harness
// (churn + partition + loss under the full query mix) and exits
// non-zero if any invariant fails, so CI can gate on it; -seed replays
// a different schedule.
//
// -baseline FILE compares this run's records against a committed
// BENCH_*.json snapshot and exits non-zero on a >25% regression in any
// deterministic metric (traffic bytes, result frames/tuples, nodes
// contacted, recall) — the bench-smoke CI gate. -trace runs one traced
// join and prints its EXPLAIN TRACE span tree.
//
// Usage:
//
//	pier-bench [-full] [-only adaptive,chaos,fig3,table4,...] [-json out.json] [-baseline BENCH_0.json] [-trace] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pier/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "paper-scale runs (slow)")
	only := flag.String("only", "", "comma-separated subset: adaptive,incast,range,tuplepath,s53,fig3,table4,fig45,fig6,fig7,fig8,candims,chord; chaos,rangechaos,flood,churn,simscale,fig3xl,churnxl run only when named here")
	jsonPath := flag.String("json", "", "write machine-readable benchmark records to this file")
	seed := flag.Int64("seed", 1, "seed for the chaos scenario (replays the exact fault schedule)")
	baselinePath := flag.String("baseline", "",
		"BENCH_*.json baseline; exit non-zero on >25% regression in deterministic metrics")
	traceDemo := flag.Bool("trace", false,
		"run one traced simulated join and print its EXPLAIN TRACE span tree")
	flag.Parse()

	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[k] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	run := func(key, label string, f func()) {
		if !sel(key) {
			return
		}
		start := time.Now()
		fmt.Printf("\n### %s (%s)\n", label, key)
		f()
		fmt.Printf("    [%s took %v]\n", key, time.Since(start).Round(time.Millisecond))
	}

	var records []experiments.BenchRecord
	chaosFailed := false

	if *traceDemo {
		fmt.Println("\n### Distributed query trace — EXPLAIN TRACE over a simulated join")
		out, err := experiments.TraceDemo(*seed, *full)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pier-bench: trace demo: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
	}

	// The chaos scenarios run only when explicitly selected (-only
	// chaos,churn): they are invariant gates with an exit-1 path, not
	// paper figures, and must not turn the documented no-flag/-full
	// figure-regeneration sweeps into hours-long fault-injection runs.
	if want["chaos"] {
		run("chaos", "Chaos harness — pinned-seed fault-injection scenario", func() {
			rep := experiments.ChaosScenario(*seed, *full)
			rep.Print(os.Stdout)
			if !rep.AllPass() {
				chaosFailed = true
			}
		})
	}
	if want["rangechaos"] {
		run("rangechaos", "Chaos harness — pinned-seed scenario with PHT range queries", func() {
			rep := experiments.RangeChaosScenario(*seed, *full)
			rep.Print(os.Stdout)
			if !rep.AllPass() {
				chaosFailed = true
			}
		})
	}
	if want["flood"] {
		run("flood", "Chaos harness — publish flood against quota-bounded storage", func() {
			rep, rec := experiments.FloodScenario(*seed, *full)
			rep.Print(os.Stdout)
			records = append(records, rec)
			if !rep.AllPass() {
				chaosFailed = true
			}
		})
	}
	if want["churn"] {
		run("churn", "Chaos churn matrix — recall vs churn with rejoin", func() {
			experiments.ChurnMatrix(experiments.DefaultChurnMatrix(*full)).Print(os.Stdout)
		})
	}
	// The scale scenarios also run only when named: they build 100k+
	// node simulations (gigabyte-class heaps, minutes of wall clock).
	if want["simscale"] {
		run("simscale", "Simulation core at scale — heap per node and event throughput", func() {
			tbl, recs := experiments.SimScale(experiments.DefaultSimScale(*full))
			tbl.Print(os.Stdout)
			records = append(records, recs...)
		})
	}
	if want["fig3xl"] {
		run("fig3xl", "Figure 3 at n=100k — scalability beyond paper scale", func() {
			experiments.Scalability(experiments.XLScalability()).Print(os.Stdout)
		})
	}
	if want["churnxl"] {
		run("churnxl", "Churn matrix point at n=100k", func() {
			experiments.ChurnMatrix(experiments.XLChurnMatrix(*seed)).Print(os.Stdout)
		})
	}
	run("adaptive", "Adaptive planner vs fixed join strategies", func() {
		_, tbl, recs := experiments.Adaptive(experiments.DefaultAdaptive(*full))
		tbl.Print(os.Stdout)
		records = append(records, recs...)
	})
	run("incast", "Initiator incast — per-tuple vs batched+credit result delivery", func() {
		_, tbl, recs := experiments.Incast(experiments.DefaultIncast(*full))
		tbl.Print(os.Stdout)
		records = append(records, recs...)
	})
	run("tuplepath", "Tuple path — codec allocs/op and loopback TCP throughput", func() {
		tbl, recs := experiments.TuplePath(experiments.DefaultTuplePath(*full))
		tbl.Print(os.Stdout)
		records = append(records, recs...)
	})
	run("range", "Range selectivity — PHT index scan vs multicast full scan", func() {
		_, tbl, recs := experiments.RangeSelectivity(experiments.DefaultRangeSel(*full))
		tbl.Print(os.Stdout)
		records = append(records, recs...)
	})
	run("s53", "Section 5.3 — centralized vs distributed", func() {
		experiments.CentralizedVsDistributed(experiments.DefaultCentralized(*full)).Print(os.Stdout)
	})
	run("fig3", "Figure 3 — scalability, fully connected topology", func() {
		experiments.Scalability(experiments.DefaultScalability(*full)).Print(os.Stdout)
	})
	run("table4", "Table 4 — join strategies, infinite bandwidth", func() {
		experiments.Table4(experiments.DefaultTable4(*full)).Print(os.Stdout)
	})
	run("fig45", "Figures 4 & 5 — traffic and latency vs selectivity", func() {
		fig4, fig5 := experiments.Selectivity(experiments.DefaultSelectivity(*full))
		fig4.Print(os.Stdout)
		fig5.Print(os.Stdout)
	})
	run("fig6", "Figure 6 — recall under churn", func() {
		experiments.Recall(experiments.DefaultRecall(*full)).Print(os.Stdout)
	})
	run("fig7", "Figure 7 — scalability, transit-stub topology", func() {
		cfg := experiments.DefaultScalability(*full)
		cfg.TransitStub = true
		cfg.ComputeSeries = []int{1, 0}
		experiments.Scalability(cfg).Print(os.Stdout)
	})
	run("fig8", "Figure 8 — real deployment over loopback TCP", func() {
		experiments.Cluster(experiments.DefaultCluster(*full)).Print(os.Stdout)
	})
	run("candims", "Ablation — CAN dimensionality", func() {
		n := 256
		if *full {
			n = 1024
		}
		experiments.CANDims(n, []int{2, 3, 4, 6}, 300, 9).Print(os.Stdout)
	})
	run("chord", "Ablation — CAN vs Chord", func() {
		n, s := 128, 256
		if *full {
			n, s = 1024, 1024
		}
		experiments.ChordVsCAN(n, s, 17).Print(os.Stdout)
	})

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pier-bench: %v\n", err)
			os.Exit(1)
		}
		err = experiments.WriteBenchJSON(f, records)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pier-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d benchmark records to %s\n", len(records), *jsonPath)
	}
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pier-bench: %v\n", err)
			os.Exit(1)
		}
		base, err := experiments.ReadBenchJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pier-bench: reading %s: %v\n", *baselinePath, err)
			os.Exit(1)
		}
		regs, compared := experiments.CompareBaseline(base, records, 0.25)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "pier-bench: regression:", r)
			}
			os.Exit(1)
		}
		fmt.Printf("baseline %s: %d record(s) compared, all within the 25%% budget\n", *baselinePath, compared)
	}
	if chaosFailed {
		fmt.Fprintln(os.Stderr, "pier-bench: chaos invariants failed")
		os.Exit(1)
	}
}
