// pier-node runs one real PIER node over TCP, as an operable daemon:
// an HTTP admin plane (REST + /metrics) for inspection, publishing,
// and querying, a JSON config file with flag overrides, and graceful
// drain on SIGINT/SIGTERM (cancel live queries, leave the overlay
// handing soft state to a peer, close the transport).
//
// Start the first node with no -join flag; point further nodes at any
// running one:
//
//	pier-node -listen 127.0.0.1:7001 -admin 127.0.0.1:7080
//	pier-node -listen 127.0.0.1:7002 -join 127.0.0.1:7001 -admin 127.0.0.1:7081
//
// then operate it over HTTP:
//
//	curl localhost:7080/api/status
//	curl localhost:7080/metrics
//	curl -X POST localhost:7080/api/tables -d '{"name":"fish","key":"name","cols":["name","size"]}'
//	curl -X POST localhost:7080/api/publish -d '{"table":"fish","values":["salmon",7]}'
//	curl -X POST localhost:7081/api/queries -d '{"sql":"SELECT name, size FROM fish","wait_ms":3000}'
//
// The interactive shell of earlier releases is behind -interactive:
//
//	table <name> <keycol> <col> [col...]   register a schema
//	publish <table> <val> [val...]         publish a tuple (key = first col)
//	sql <SELECT ...>                       run a query, print results
//	sql EXPLAIN TRACE <SELECT ...>         run it traced, print the span tree
//	sql CREATE INDEX <n> ON <t> (<col>)    build a PHT range index
//	stats [table]                          node counters (the /api/status struct)
//	info                                   node status (same struct)
//	quit
//
// Daemon lifecycle events go to stderr as structured logs (log/slog);
// -log-format json switches them from logfmt-style text to JSON lines,
// with query ids carried as attributes. Shell output stays on stdout.
//
// -debug mounts net/http/pprof under /debug/pprof/ on the admin
// listener. The admin plane is unauthenticated; pprof exposes heap and
// goroutine internals, so the flag is off by default and should stay
// off unless the admin address is loopback or otherwise trusted.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/sql"
)

// config is the daemon's effective configuration: defaults, overlaid
// by the -config file, overlaid by explicitly set flags.
type config struct {
	Listen        string
	Join          string
	Admin         string
	Lifetime      time.Duration
	Wait          time.Duration
	StatsInterval time.Duration
	JoinTimeout   time.Duration
	DrainTimeout  time.Duration
	LogFormat     string
	Debug         bool
	Quota         int64
	SpillDir      string
}

func defaultConfig() config {
	return config{
		Listen:        "127.0.0.1:0",
		Lifetime:      10 * time.Minute,
		Wait:          5 * time.Second,
		StatsInterval: 10 * time.Second,
		JoinTimeout:   15 * time.Second,
		DrainTimeout:  10 * time.Second,
		LogFormat:     "text",
	}
}

// fileConfig is the JSON shape of a -config file; durations are
// strings in time.ParseDuration syntax. Every field is optional.
type fileConfig struct {
	Listen        *string `json:"listen"`
	Join          *string `json:"join"`
	Admin         *string `json:"admin"`
	Lifetime      *string `json:"lifetime"`
	Wait          *string `json:"wait"`
	StatsInterval *string `json:"stats_interval"`
	JoinTimeout   *string `json:"join_timeout"`
	DrainTimeout  *string `json:"drain_timeout"`
	LogFormat     *string `json:"log_format"`
	Debug         *bool   `json:"debug"`
	Quota         *int64  `json:"quota"`
	SpillDir      *string `json:"spill_dir"`
}

func loadConfigFile(path string, cfg *config) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var fc fileConfig
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	setStr := func(dst *string, src *string) {
		if src != nil {
			*dst = *src
		}
	}
	setDur := func(dst *time.Duration, src *string, field string) error {
		if src == nil {
			return nil
		}
		d, err := time.ParseDuration(*src)
		if err != nil {
			return fmt.Errorf("%s: field %s: %w", path, field, err)
		}
		*dst = d
		return nil
	}
	setStr(&cfg.Listen, fc.Listen)
	setStr(&cfg.Join, fc.Join)
	setStr(&cfg.Admin, fc.Admin)
	setStr(&cfg.LogFormat, fc.LogFormat)
	setStr(&cfg.SpillDir, fc.SpillDir)
	if fc.Debug != nil {
		cfg.Debug = *fc.Debug
	}
	if fc.Quota != nil {
		cfg.Quota = *fc.Quota
	}
	for _, f := range []struct {
		dst   *time.Duration
		src   *string
		field string
	}{
		{&cfg.Lifetime, fc.Lifetime, "lifetime"},
		{&cfg.Wait, fc.Wait, "wait"},
		{&cfg.StatsInterval, fc.StatsInterval, "stats_interval"},
		{&cfg.JoinTimeout, fc.JoinTimeout, "join_timeout"},
		{&cfg.DrainTimeout, fc.DrainTimeout, "drain_timeout"},
	} {
		if err := setDur(f.dst, f.src, f.field); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	def := defaultConfig()
	listen := flag.String("listen", def.Listen, "address to listen on")
	join := flag.String("join", "", "landmark node to join through (empty = new network)")
	adminAddr := flag.String("admin", "", "HTTP admin/metrics listen address (empty = admin plane off)")
	configPath := flag.String("config", "", "JSON config file; explicitly set flags override it")
	interactive := flag.Bool("interactive", false, "run the interactive shell on stdin")
	lifetime := flag.Duration("lifetime", def.Lifetime, "soft-state lifetime of published tuples")
	wait := flag.Duration("wait", def.Wait, "how long shell queries collect results")
	statsEvery := flag.Duration("stats", def.StatsInterval,
		"statistics-catalog refresh interval (0 disables the maintenance loop)")
	joinTimeout := flag.Duration("join-timeout", def.JoinTimeout, "how long to wait for the overlay join")
	drainTimeout := flag.Duration("drain-timeout", def.DrainTimeout,
		"how long graceful shutdown waits for in-flight admin requests")
	logFormat := flag.String("log-format", def.LogFormat, "daemon log format: text or json")
	debug := flag.Bool("debug", def.Debug,
		"mount net/http/pprof on the admin listener (unauthenticated; off by default)")
	quota := flag.Int64("quota", def.Quota,
		"per-namespace soft-state byte quota (0 = unbounded); over-quota namespaces evict and throttle publishers")
	spillDir := flag.String("spill-dir", def.SpillDir,
		"directory for the disk-spill tier; quota evictions append to a compacting log there instead of being discarded")
	flag.Parse()

	cfg := def
	if *configPath != "" {
		if err := loadConfigFile(*configPath, &cfg); err != nil {
			fmt.Fprintln(os.Stderr, "config:", err)
			os.Exit(1)
		}
	}
	// Explicitly set flags win over the config file.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "listen":
			cfg.Listen = *listen
		case "join":
			cfg.Join = *join
		case "admin":
			cfg.Admin = *adminAddr
		case "lifetime":
			cfg.Lifetime = *lifetime
		case "wait":
			cfg.Wait = *wait
		case "stats":
			cfg.StatsInterval = *statsEvery
		case "join-timeout":
			cfg.JoinTimeout = *joinTimeout
		case "drain-timeout":
			cfg.DrainTimeout = *drainTimeout
		case "log-format":
			cfg.LogFormat = *logFormat
		case "debug":
			cfg.Debug = *debug
		case "quota":
			cfg.Quota = *quota
		case "spill-dir":
			cfg.SpillDir = *spillDir
		}
	})

	var handler slog.Handler
	switch cfg.LogFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "config: log format %q is not text or json\n", cfg.LogFormat)
		os.Exit(1)
	}
	logger := slog.New(handler)

	opts := pier.DefaultOptions()
	opts.Stats.Interval = cfg.StatsInterval
	if cfg.Quota > 0 {
		opts.ProviderConfig.Quota = storage.BoundedConfig{DefaultQuota: cfg.Quota}
	}
	if cfg.SpillDir != "" {
		if cfg.Quota <= 0 {
			fmt.Fprintln(os.Stderr, "config: -spill-dir needs -quota; without one nothing ever spills")
			os.Exit(1)
		}
		opts.SpillDir = cfg.SpillDir
	}
	node, err := pier.StartNode(cfg.Listen, env.Addr(cfg.Join), time.Now().UnixNano(), opts)
	if err != nil {
		logger.Error("node start failed", "err", err)
		os.Exit(1)
	}
	if cfg.Join != "" {
		if err := node.WaitJoin(cfg.JoinTimeout); err != nil {
			logger.Error("overlay join failed", "err", err)
			node.Close()
			os.Exit(1)
		}
	}
	logger.Info("node up", "addr", string(node.Addr()), "join", cfg.Join)

	var adminSrv *http.Server
	adminErr := make(chan error, 1)
	if cfg.Admin != "" {
		adminSrv = &http.Server{Addr: cfg.Admin, Handler: adminMux(node, cfg.Debug)}
		go func() {
			logger.Info("admin plane listening", "url", "http://"+cfg.Admin, "pprof", cfg.Debug)
			if err := adminSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				adminErr <- err
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	shellDone := make(chan struct{})
	if *interactive {
		go func() {
			defer close(shellDone)
			runShell(node, cfg.Lifetime, cfg.Wait)
		}()
	}

	select {
	case sig := <-sigs:
		logger.Info("signal received, shutting down", "signal", sig.String())
	case <-shellDone:
		logger.Info("shell exited, shutting down")
	case err := <-adminErr:
		logger.Error("admin server failed", "err", err)
		node.Close()
		os.Exit(1)
	}
	shutdown(node, adminSrv, cfg.DrainTimeout, logger)
}

// adminMux wraps the admin plane, optionally mounting net/http/pprof
// under /debug/pprof/ when -debug is set. The pprof handlers are
// registered explicitly (not via the package's init side effect on
// http.DefaultServeMux) so a non-debug daemon exposes nothing.
func adminMux(node *pier.RealNode, debug bool) http.Handler {
	api := pier.AdminHandler(node)
	if !debug {
		return api
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", api)
	return mux
}

// shutdown drains the node gracefully: stop accepting admin requests
// and let in-flight query streams finish, cancel the queries still
// live on this node, hand the zone and soft state to a peer with
// Leave, and close the transport.
func shutdown(node *pier.RealNode, adminSrv *http.Server, drain time.Duration, logger *slog.Logger) {
	if adminSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		if err := adminSrv.Shutdown(ctx); err != nil {
			adminSrv.Close()
		}
		cancel()
	}
	cancelled := 0
	for _, q := range node.LiveQueries() {
		if q.Initiator && node.Cancel(q.ID) {
			logger.Info("cancelled live query", "query_id", q.ID)
			cancelled++
		}
	}
	logger.Info("drained live queries", "cancelled", cancelled)
	node.Leave()
	// Leave queues zone-transfer puts to a peer; give the writer
	// goroutines a moment to flush before the sockets close.
	time.Sleep(200 * time.Millisecond)
	node.Close()
	logger.Info("left overlay, shutdown complete")
}

// runShell is the interactive operator console; it returns on EOF or
// quit, and the caller runs the normal graceful shutdown.
func runShell(node *pier.RealNode, lifetime, wait time.Duration) {
	cat := pier.Catalog{}
	var iid atomic.Int64
	iid.Store(time.Now().UnixNano())
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		switch {
		case line == "":
		case line == "quit" || line == "exit":
			return
		case line == "info":
			printInfo(node.Snapshot())
		case fields[0] == "table" && len(fields) >= 4:
			name, key := fields[1], fields[2]
			t := pier.SQLTable{Name: name, Cols: fields[3:], Key: key}
			cat[name] = t
			// Also into the DHT catalog, so the admin plane and remote
			// QuerySQL planners see the schema.
			node.RegisterTable(t, 0)
			fmt.Printf("registered %s(%s) key=%s\n", name, strings.Join(fields[3:], ","), key)
		case fields[0] == "publish" && len(fields) >= 3:
			table := fields[1]
			tb, ok := cat[table]
			if !ok {
				fmt.Println("unknown table; register with `table` first")
				break
			}
			if len(fields)-2 != len(tb.Cols) {
				fmt.Printf("%s takes %d columns\n", table, len(tb.Cols))
				break
			}
			vals := make([]pier.Value, 0, len(tb.Cols))
			for _, f := range fields[2:] {
				vals = append(vals, parseVal(f))
			}
			rid := core.ValueString(vals[tb.Col(tb.Key)])
			node.Publish(table, rid, iid.Add(1), &pier.Tuple{Rel: table, Vals: vals}, lifetime)
			fmt.Printf("published %s/%s\n", table, rid)
		case fields[0] == "sql":
			runSQL(node, cat, strings.TrimSpace(strings.TrimPrefix(line, "sql")), wait)
		case fields[0] == "stats":
			showStats(node, fields[1:])
		default:
			fmt.Println("commands: table, publish, sql, stats, info, quit")
		}
		fmt.Print("> ")
	}
}

// printInfo renders the status slice of the snapshot — the same struct
// GET /api/status serves.
func printInfo(s pier.Snapshot) {
	fmt.Printf("addr=%s ready=%v uptime=%.0fs neighbors=%d overlay≈%d stored-items=%d live-queries=%d/%d\n",
		s.Addr, s.Ready, s.UptimeSeconds, len(s.Neighbors), s.OverlayNodes,
		s.StoredItems, s.OpenCollectors, s.ActiveExecs)
}

// showStats prints the snapshot's counter families and — given a table
// name — the catalog's rolled-up statistics for it.
func showStats(node *pier.RealNode, args []string) {
	s := node.Snapshot()
	fmt.Printf("deployment: nodes≈%d hop=%.1fms lookup-hops=%.2f cached-stats-tables=%d\n",
		s.OverlayNodes, s.HopLatencyMS, s.LookupHops, s.CachedStatsTables)
	fmt.Printf("queries: collectors=%d executors=%d result-batches=%d result-tuples=%d credit-grants=%d stalls=%d\n",
		s.OpenCollectors, s.ActiveExecs, s.Query.ResultBatches, s.Query.ResultTuples,
		s.Query.CreditGrants, s.Query.CreditStalls)
	fmt.Printf("indexes: defs=%d scans=%d visits=%d\n", len(s.Indexes), s.IndexScans, s.IndexVisits)
	if s.Transport != nil {
		fmt.Printf("link: frames=%d batches=%d bytes=%d recv-frames=%d recv-bytes=%d drops=%d\n",
			s.Transport.FramesSent, s.Transport.BatchesSent, s.Transport.BytesSent,
			s.Transport.FramesRecv, s.Transport.BytesRecv, s.Transport.Drops)
	}
	if len(args) == 0 {
		return
	}
	table := args[0]
	done := make(chan struct{})
	node.Do(func() {
		node.Stats().Fetch(table, func(ts pier.TableStats, ok bool) {
			if !ok {
				fmt.Printf("%s: no statistics in the catalog (yet)\n", table)
			} else {
				fmt.Printf("%s: tuples=%.0f avg-bytes=%.0f distinct-keys≈%.0f\n",
					table, ts.Tuples, ts.TupleBytes, ts.DistinctJoinKeys)
			}
			close(done)
		})
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		fmt.Println("stats fetch timed out")
	}
}

func parseVal(s string) pier.Value {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

func runSQL(node *pier.RealNode, cat pier.Catalog, src string, wait time.Duration) {
	st, err := sql.ParseStatement(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, isDDL := st.(*sql.CreateIndexStmt); isDDL {
		// CREATE INDEX name ON table (col): announced deployment-wide;
		// the local catalog picks up the index so subsequent sargable
		// queries plan index scans.
		if err := node.Exec(src, cat); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("index created")
		return
	}
	_, explain := st.(*sql.ExplainStmt)
	plan, err := pier.ParseSQL(src, cat)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	results := make(chan *core.Tuple, 1024)
	id, err := node.Query(plan, func(t *core.Tuple, _ int) {
		select {
		case results <- t:
		default:
		}
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if plan.AutoStrategy && len(plan.Tables) == 2 {
		// Query resolved the strategy on the event loop (catalog
		// choice, or the default if the catalog is cold).
		fmt.Printf("(strategy: %v)\n", plan.Strategy)
	}
	if len(plan.Tables) == 1 && plan.Tables[0].IndexScan != nil {
		// Still set after Query: the access choice kept the index.
		fmt.Printf("(access: %s)\n", plan.Tables[0].IndexScan)
	}
	deadline := time.After(wait)
	n := 0
	for {
		select {
		case t := <-results:
			n++
			fmt.Printf("  %s\n", t)
		case <-deadline:
			node.Cancel(id)
			fmt.Printf("(%d rows)\n", n)
			if explain {
				// Cancel closed the collector and retained the finished
				// trace; print the assembled span tree.
				if tr, ok := node.Trace(id); ok {
					fmt.Print(tr.RenderString())
				} else {
					fmt.Println("(no trace retained)")
				}
			}
			return
		}
	}
}
