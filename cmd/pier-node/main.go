// pier-node runs one real PIER node over TCP and offers a small
// interactive shell: publish tuples, register schemas, and run SQL
// queries against the live overlay. Start the first node with no
// -join flag; point further nodes at any running one:
//
//	pier-node -listen 127.0.0.1:7001
//	pier-node -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//
// Shell commands:
//
//	table <name> <keycol> <col> [col...]   register a schema
//	publish <table> <val> [val...]         publish a tuple (key = first col)
//	sql <SELECT ...>                       run a query, print results
//	sql CREATE INDEX <n> ON <t> (<col>)    build a PHT range index
//	stats [table]                          catalog/deployment/link stats
//	info                                   node status
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/env"
	"pier/internal/sql"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on")
	join := flag.String("join", "", "landmark node to join through (empty = new network)")
	lifetime := flag.Duration("lifetime", 10*time.Minute, "soft-state lifetime of published tuples")
	wait := flag.Duration("wait", 5*time.Second, "how long queries collect results")
	statsEvery := flag.Duration("stats", 10*time.Second,
		"statistics-catalog refresh interval (0 disables the maintenance loop)")
	flag.Parse()

	opts := pier.DefaultOptions()
	opts.Stats.Interval = *statsEvery
	node, err := pier.StartNode(*listen, env.Addr(*join), time.Now().UnixNano(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "start:", err)
		os.Exit(1)
	}
	defer node.Close()
	if *join != "" && !node.WaitReady(15*time.Second) {
		fmt.Fprintln(os.Stderr, "failed to join the overlay via", *join)
		os.Exit(1)
	}
	fmt.Printf("pier node up at %s", node.Addr())
	if *join != "" {
		fmt.Printf(" (joined via %s)", *join)
	}
	fmt.Println()

	cat := pier.Catalog{}
	var iid atomic.Int64
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		switch {
		case line == "":
		case line == "quit" || line == "exit":
			return
		case line == "info":
			node.Do(func() {
				fmt.Printf("addr=%s ready=%v neighbors=%d stored-items=%d\n",
					node.Addr(), node.Router().Ready(),
					len(node.Router().Neighbors()), node.Provider().Store().TotalLen())
			})
		case fields[0] == "table" && len(fields) >= 4:
			name, key := fields[1], fields[2]
			cat[name] = pier.SQLTable{Name: name, Cols: fields[3:], Key: key}
			fmt.Printf("registered %s(%s) key=%s\n", name, strings.Join(fields[3:], ","), key)
		case fields[0] == "publish" && len(fields) >= 3:
			table := fields[1]
			tb, ok := cat[table]
			if !ok {
				fmt.Println("unknown table; register with `table` first")
				break
			}
			if len(fields)-2 != len(tb.Cols) {
				fmt.Printf("%s takes %d columns\n", table, len(tb.Cols))
				break
			}
			vals := make([]pier.Value, 0, len(tb.Cols))
			for _, f := range fields[2:] {
				vals = append(vals, parseVal(f))
			}
			rid := core.ValueString(vals[tb.Col(tb.Key)])
			node.PublishSync(table, rid, iid.Add(1), &pier.Tuple{Rel: table, Vals: vals}, *lifetime)
			fmt.Printf("published %s/%s\n", table, rid)
		case fields[0] == "sql":
			runSQL(node, cat, strings.TrimSpace(strings.TrimPrefix(line, "sql")), *wait)
		case fields[0] == "stats":
			showStats(node, fields[1:])
		default:
			fmt.Println("commands: table, publish, sql, stats, info, quit")
		}
		fmt.Print("> ")
	}
}

// showStats prints deployment estimates, link counters, and — given a
// table name — the catalog's rolled-up statistics for it.
func showStats(node *pier.RealNode, args []string) {
	node.Do(func() {
		net := node.Stats().NetStats()
		fmt.Printf("deployment: nodes≈%d hop=%v lookup-hops=%.2f\n",
			net.Nodes, net.HopLatency, net.LookupHops)
	})
	if ls, ok := node.TransportStats(); ok {
		fmt.Printf("link: frames=%d batches=%d bytes=%d recv-frames=%d recv-bytes=%d drops=%d\n",
			ls.FramesSent, ls.BatchesSent, ls.BytesSent, ls.FramesRecv, ls.BytesRecv, ls.Drops)
	}
	if len(args) == 0 {
		return
	}
	table := args[0]
	done := make(chan struct{})
	node.Do(func() {
		node.Stats().Fetch(table, func(ts pier.TableStats, ok bool) {
			if !ok {
				fmt.Printf("%s: no statistics in the catalog (yet)\n", table)
			} else {
				fmt.Printf("%s: tuples=%.0f avg-bytes=%.0f distinct-keys≈%.0f\n",
					table, ts.Tuples, ts.TupleBytes, ts.DistinctJoinKeys)
			}
			close(done)
		})
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		fmt.Println("stats fetch timed out")
	}
}

func parseVal(s string) pier.Value {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

func runSQL(node *pier.RealNode, cat pier.Catalog, src string, wait time.Duration) {
	st, err := sql.ParseStatement(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, isDDL := st.(*sql.CreateIndexStmt); isDDL {
		// CREATE INDEX name ON table (col): announced deployment-wide;
		// the local catalog picks up the index so subsequent sargable
		// queries plan index scans.
		if err := node.ExecSync(src, cat); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("index created")
		return
	}
	plan, err := pier.ParseSQL(src, cat)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	results := make(chan *core.Tuple, 1024)
	id, err := node.QuerySync(plan, func(t *core.Tuple, _ int) {
		select {
		case results <- t:
		default:
		}
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if plan.AutoStrategy && len(plan.Tables) == 2 {
		// QuerySync resolved the strategy on the event loop (catalog
		// choice, or the default if the catalog is cold).
		fmt.Printf("(strategy: %v)\n", plan.Strategy)
	}
	if len(plan.Tables) == 1 && plan.Tables[0].IndexScan != nil {
		// Still set after QuerySync: the access choice kept the index.
		fmt.Printf("(access: %s)\n", plan.Tables[0].IndexScan)
	}
	deadline := time.After(wait)
	n := 0
	for {
		select {
		case t := <-results:
			n++
			fmt.Printf("  %s\n", t)
		case <-deadline:
			node.Do(func() { node.Cancel(id) })
			fmt.Printf("(%d rows)\n", n)
			return
		}
	}
}
