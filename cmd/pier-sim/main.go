// pier-sim runs one simulated PIER query with every knob exposed —
// the workbench for exploring the design space beyond the paper's
// configurations.
//
// Usage:
//
//	pier-sim -nodes 512 -s 1024 -strategy bloom -topology transit \
//	         -sel-s 0.3 -compute 16 -dht chord
package main

import (
	"flag"
	"fmt"
	"os"

	"pier"
	"pier/internal/core"
	"pier/internal/experiments"
	"pier/internal/topology"
)

func main() {
	nodes := flag.Int("nodes", 128, "network size")
	sTuples := flag.Int("s", 256, "|S| (|R| = 10x)")
	strategy := flag.String("strategy", "symhash", "symhash | fetch | semijoin | bloom")
	topo := flag.String("topology", "mesh", "mesh | mesh-inf | transit | cluster")
	selR := flag.Float64("sel-r", 0.5, "selectivity of the predicate on R")
	selS := flag.Float64("sel-s", 0.5, "selectivity of the predicate on S")
	compute := flag.Int("compute", 0, "computation nodes (0 = all)")
	dhtKind := flag.String("dht", "can", "can | chord")
	pad := flag.Int("pad", 964, "R.pad bytes (result tuples ~1KB)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	var s core.Strategy
	switch *strategy {
	case "symhash":
		s = core.SymmetricHash
	case "fetch":
		s = core.FetchMatches
	case "semijoin":
		s = core.SymmetricSemiJoin
	case "bloom":
		s = core.BloomJoin
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	var tp topology.Topology
	switch *topo {
	case "mesh":
		tp = topology.NewFullMesh()
	case "mesh-inf":
		tp = topology.NewFullMeshInfinite()
	case "transit":
		tp = topology.NewTransitStub(*seed)
	case "cluster":
		tp = topology.NewCluster()
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topo)
		os.Exit(2)
	}
	kind := pier.CAN
	if *dhtKind == "chord" {
		kind = pier.Chord
	}

	res := experiments.RunJoin(experiments.JoinConfig{
		Nodes:        *nodes,
		Topo:         tp,
		Seed:         *seed,
		Strategy:     s,
		STuples:      *sTuples,
		PadBytes:     *pad,
		SelR:         *selR,
		SelS:         *selS,
		ComputeNodes: *compute,
		DHT:          kind,
	})
	fmt.Printf("query:            %v over %d nodes (%s, dht=%s)\n", s, *nodes, *topo, *dhtKind)
	fmt.Printf("results:          %d / %d expected (recall %.3f)\n",
		res.Received, res.Expected, float64(res.Received)/float64(max(1, res.Expected)))
	fmt.Printf("time to 30th:     %.3fs\n", res.TimeToKth.Seconds())
	fmt.Printf("time to last:     %.3fs\n", res.TimeToLast.Seconds())
	fmt.Printf("total traffic:    %.2f MB (strategy only: %.2f MB)\n", res.TrafficMB, res.StrategyMB)
	fmt.Printf("max node inbound: %.2f MB\n", res.MaxInMB)
	if res.AvgHops > 0 {
		fmt.Printf("avg lookup hops:  %.2f\n", res.AvgHops)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
