package pier

import (
	"fmt"
	"math"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/opt"
	"pier/internal/topology"
	"pier/internal/workload"
)

// statsOptions enables the catalog with a short refresh interval.
func statsOptions(interval time.Duration) Options {
	opts := DefaultOptions()
	opts.Stats.Interval = interval
	return opts
}

// TestStatsCatalogConvergesAcross50Nodes is the tentpole's convergence
// check: after a bulk load into a 50-node network, the rolled-up
// catalog statistics must be queryable from an arbitrary node within
// one refresh interval — exact tuple and byte totals, distinct keys
// within sketch error.
func TestStatsCatalogConvergesAcross50Nodes(t *testing.T) {
	const interval = 30 * time.Second
	sn := NewSimNetwork(50, topology.NewFullMesh(), 71, statsOptions(interval))

	const rows = 500
	wantBytes := 0
	for i := 0; i < rows; i++ {
		tu := &Tuple{Rel: "R", Vals: []Value{int64(i), int64(i % 97)}}
		wantBytes += tu.WireSize()
		sn.Load("R", fmt.Sprint(i), int64(i), tu, 0)
	}

	// One refresh interval (plus network slack for the puts to land).
	sn.RunFor(interval + 5*time.Second)

	var got opt.TableStats
	fetched := false
	sn.Nodes[37].Stats().Fetch("R", func(ts opt.TableStats, ok bool) {
		got, fetched = ts, ok
	})
	sn.RunFor(30 * time.Second)

	if !fetched {
		t.Fatal("catalog returned nothing for R one interval after the bulk load")
	}
	if got.Tuples != rows {
		t.Fatalf("catalog tuples = %.0f, want exactly %d", got.Tuples, rows)
	}
	if want := float64(wantBytes) / rows; math.Abs(got.TupleBytes-want) > 0.5 {
		t.Fatalf("catalog tuple bytes = %.1f, want %.1f", got.TupleBytes, want)
	}
	if err := math.Abs(got.DistinctJoinKeys-rows) / rows; err > 0.25 {
		t.Fatalf("distinct keys = %.0f, want ≈%d (%.0f%% error)", got.DistinctJoinKeys, rows, 100*err)
	}

	// The same must hold through the hierarchical rollup.
	optsH := statsOptions(interval)
	optsH.Stats.Fanout = 8
	snH := NewSimNetwork(50, topology.NewFullMesh(), 72, optsH)
	for i := 0; i < rows; i++ {
		snH.Load("R", fmt.Sprint(i), int64(i),
			&Tuple{Rel: "R", Vals: []Value{int64(i), int64(i % 97)}}, 0)
	}
	// Leaves publish at the first tick, bucket owners combine at the
	// next: two intervals end to end.
	snH.RunFor(2*interval + 5*time.Second)
	fetched = false
	snH.Nodes[11].Stats().Fetch("R", func(ts opt.TableStats, ok bool) {
		got, fetched = ts, ok
	})
	snH.RunFor(30 * time.Second)
	if !fetched || got.Tuples != rows {
		t.Fatalf("hierarchical rollup: fetched=%v tuples=%.0f, want %d", fetched, got.Tuples, rows)
	}
}

// TestStatsCatalogAgesOut: a node's contribution is soft state; without
// renewal (the loop stopped) it must disappear after its lifetime.
func TestStatsCatalogAgesOut(t *testing.T) {
	opts := statsOptions(20 * time.Second)
	opts.ProviderConfig.ActiveExpiry = true
	sn := NewSimNetwork(16, topology.NewFullMesh(), 73, opts)
	for i := 0; i < 100; i++ {
		sn.Load("T", fmt.Sprint(i), int64(i), &Tuple{Rel: "T", Vals: []Value{int64(i)}}, 0)
	}
	sn.RunFor(25 * time.Second)
	found := false
	sn.Nodes[3].Stats().Fetch("T", func(_ opt.TableStats, ok bool) { found = ok })
	sn.RunFor(10 * time.Second)
	if !found {
		t.Fatal("summaries should be live while the loop renews them")
	}
	for _, nd := range sn.Nodes {
		nd.Stats().Stop()
	}
	// Past the 3×interval lifetime with no renewals.
	sn.RunFor(2 * time.Minute)
	found = false
	sn.Nodes[3].Stats().Fetch("T", func(_ opt.TableStats, ok bool) { found = ok })
	sn.RunFor(10 * time.Second)
	if found {
		t.Fatal("unrenewed summaries survived their lifetime")
	}
}

// loadWorkloadTables loads the §5.1 tables and returns the SQL catalog
// describing them.
func loadWorkloadTables(sn *SimNetwork, sTuples int, seed int64) Catalog {
	tables := workload.Generate(workload.Config{STuples: sTuples, Seed: seed})
	for i, r := range tables.R {
		sn.Load("R", core.ValueString(r.Vals[workload.RPkey]), int64(i), r, 0)
	}
	for i, s := range tables.S {
		sn.Load("S", core.ValueString(s.Vals[workload.SPkey]), int64(i), s, 0)
	}
	return Catalog{
		"R": SQLTable{Name: "R", Cols: []string{"pkey", "num1", "num2", "num3"}, Key: "pkey"},
		"S": SQLTable{Name: "S", Cols: []string{"pkey", "num2", "num3"}, Key: "pkey"},
	}
}

const workloadJoinSQL = `SELECT R.pkey, S.pkey FROM R, S WHERE R.num1 = S.pkey AND R.num2 > 49 AND S.num2 > 49`

// TestAutoStrategyWithWarmCatalog: SQL with no USING STRATEGY over a
// warmed catalog must run with a catalog-chosen strategy — here Fetch
// Matches, since S is hashed on the join attribute — and return the
// right rows.
func TestAutoStrategyWithWarmCatalog(t *testing.T) {
	sn := NewSimNetwork(24, topology.NewFullMesh(), 74, statsOptions(30*time.Second))
	cat := loadWorkloadTables(sn, 80, 75)
	sn.RunFor(40 * time.Second)
	warm := 0
	sn.Nodes[0].Stats().Fetch("R", func(opt.TableStats, bool) { warm++ })
	sn.Nodes[0].Stats().Fetch("S", func(opt.TableStats, bool) { warm++ })
	sn.RunFor(20 * time.Second)
	if warm != 2 {
		t.Fatal("catalog failed to warm")
	}

	plan, err := ParseSQL(workloadJoinSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.AutoStrategy {
		t.Fatal("SQL without USING STRATEGY must mark the plan AutoStrategy")
	}
	rows := 0
	if _, err := sn.Nodes[0].Query(plan, func(*core.Tuple, int) { rows++ }); err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != FetchMatches {
		t.Fatalf("warm catalog chose %v, want fetch matches at this operating point", plan.Strategy)
	}
	sn.RunFor(3 * time.Minute)
	if rows == 0 {
		t.Fatal("auto-strategy query returned no rows")
	}
}

// TestAutoStrategyFallsBackOnColdCatalog: with no statistics published
// at all, the planner must keep the default strategy and still answer
// correctly — and an explicit USING STRATEGY must never consult the
// catalog.
func TestAutoStrategyFallsBackOnColdCatalog(t *testing.T) {
	sn := NewSimNetwork(16, topology.NewFullMesh(), 76, DefaultOptions()) // catalog disabled: nothing published
	cat := loadWorkloadTables(sn, 40, 77)
	sn.RunFor(10 * time.Second)

	plan, err := ParseSQL(workloadJoinSQL, cat)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	if _, err := sn.Nodes[0].Query(plan, func(*core.Tuple, int) { rows++ }); err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != SymmetricHash {
		t.Fatalf("cold catalog changed the default strategy to %v", plan.Strategy)
	}
	sn.RunFor(3 * time.Minute)
	if rows == 0 {
		t.Fatal("fallback query returned no rows")
	}

	explicit, err := ParseSQL(workloadJoinSQL+` USING STRATEGY 'semijoin'`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if explicit.AutoStrategy || explicit.Strategy != SymmetricSemiJoin {
		t.Fatalf("USING STRATEGY must pin the plan: auto=%v strategy=%v",
			explicit.AutoStrategy, explicit.Strategy)
	}
}

// TestObservedCardinalityFeedback: after a join's results are
// delivered, the engine reports the observed cardinality and the
// catalog learns a match-fraction correction for the table pair.
func TestObservedCardinalityFeedback(t *testing.T) {
	sn := NewSimNetwork(24, topology.NewFullMesh(), 78, statsOptions(30*time.Second))
	loadWorkloadTables(sn, 80, 79)
	sn.RunFor(40 * time.Second)
	warm := 0
	sn.Nodes[0].Stats().Fetch("R", func(opt.TableStats, bool) { warm++ })
	sn.Nodes[0].Stats().Fetch("S", func(opt.TableStats, bool) { warm++ })
	sn.RunFor(20 * time.Second)
	if warm != 2 {
		t.Fatal("catalog failed to warm")
	}

	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	plan := workload.JoinPlan(SymmetricHash, c1, c2, c3)
	plan.TTL = 10 * time.Minute
	id, err := sn.Nodes[0].Query(plan, func(*core.Tuple, int) {})
	if err != nil {
		t.Fatal(err)
	}
	sn.RunFor(2 * time.Minute)
	sn.Nodes[0].Cancel(id) // closes the collector and reports the window

	if _, ok := sn.Nodes[0].Stats().MatchCorrection("R", "S"); !ok {
		t.Fatal("no correction learned from the observed cardinality")
	}
	m, _ := sn.Nodes[0].Stats().MatchCorrection("R", "S")
	if m <= 0 || m > 1 {
		t.Fatalf("correction %v out of range", m)
	}
}

// TestTransportStatsAccessor: the simulator has no link counters; the
// accessor must say so rather than report zeros as truth.
func TestTransportStatsAccessor(t *testing.T) {
	sn := NewSimNetwork(4, topology.NewFullMesh(), 80, DefaultOptions())
	if _, ok := sn.Nodes[0].TransportStats(); ok {
		t.Fatal("simulated node claims real link counters")
	}
}
