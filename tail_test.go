package pier

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/topology"
	"pier/internal/workload"
)

// TestContinuousTailQuery exercises the non-aggregating continuous
// path: a standing selection over a stream of arrivals, like tailing a
// distributed log.
func TestContinuousTailQuery(t *testing.T) {
	sn := NewSimNetwork(12, topology.NewFullMesh(), 55, DefaultOptions())
	plan := &Plan{
		Tables: []TableRef{{
			NS:     "log",
			Filter: &core.Cmp{Op: core.EQ, L: &core.Col{Idx: 0}, R: &core.Const{V: "ERROR"}},
		}},
		Continuous: true,
		Every:      10 * time.Second,
		TTL:        2 * time.Minute,
	}
	var got []string
	if _, err := sn.Nodes[0].Query(plan, func(tu *core.Tuple, _ int) {
		got = append(got, tu.Vals[1].(string))
	}); err != nil {
		t.Fatal(err)
	}
	lines := []struct {
		level, msg string
	}{
		{"INFO", "boot"}, {"ERROR", "disk full"}, {"WARN", "slow"},
		{"ERROR", "oom"}, {"INFO", "ok"},
	}
	for i, l := range lines {
		i, l := i, l
		node := sn.Nodes[(i+3)%12]
		sn.Net.Node((i+3)%12).After(time.Duration(i+1)*time.Second, func() {
			node.Publish("log", fmt.Sprint(i), int64(i),
				&Tuple{Rel: "log", Vals: []Value{l.level, l.msg}}, time.Minute)
		})
	}
	sn.RunFor(30 * time.Second)
	if len(got) != 2 {
		t.Fatalf("tail matched %d lines, want 2: %v", len(got), got)
	}
	if got[0] != "disk full" || got[1] != "oom" {
		t.Fatalf("tail rows: %v", got)
	}
}

// TestStrategyChoiceIsUsableInPlans wires the optimizer's pick into a
// real plan and runs it.
func TestStrategyChoiceIsUsableInPlans(t *testing.T) {
	strategy, ests := ChooseStrategy(JoinStats{
		Left:          TableStats{Tuples: 200, TupleBytes: 1024, Selectivity: 0.5, DistinctJoinKeys: 40},
		Right:         TableStats{Tuples: 20, TupleBytes: 40, Selectivity: 0.5, HashedOnJoinAttr: true},
		MatchFraction: 0.9,
	}, NetStats{Nodes: 16, HopLatency: 100 * time.Millisecond}, MinTraffic)
	if len(ests) != 4 {
		t.Fatalf("estimates = %d", len(ests))
	}
	sn := NewSimNetwork(16, topology.NewFullMesh(), 56, DefaultOptions())
	tables := loadSmallWorkload(sn)
	plan := tables.plan
	plan.Strategy = strategy
	got, _, err := sn.Collect(0, plan, tables.want, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != tables.want {
		t.Fatalf("optimizer-chosen %v returned %d/%d", strategy, len(got), tables.want)
	}
}

type smallWorkload struct {
	plan *Plan
	want int
}

// loadSmallWorkload loads a small §5.1 workload instance and returns
// its plan skeleton and expected result count.
func loadSmallWorkload(sn *SimNetwork) smallWorkload {
	tables := workload.Generate(workload.Config{STuples: 20, Seed: 57})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	return smallWorkload{
		plan: workload.JoinPlan(SymmetricHash, c1, c2, c3),
		want: len(tables.ReferenceJoin(c1, c2, c3)),
	}
}
