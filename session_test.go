package pier

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/env"
	"pier/internal/topology"
)

// runSessionConformance drives one workflow through the Session surface:
// publish, schema registration and catalog lookup, a plan query with
// results, live-query listing, cancel semantics, DDL, and snapshot
// invariants. settle(d, cond) makes progress for up to d (virtual time
// in the simulator, wall clock over TCP) and reports whether cond held.
func runSessionConformance(t *testing.T, s Session, settle func(time.Duration, func() bool) bool) {
	t.Helper()

	if s.Addr() == env.NilAddr {
		t.Fatal("session has no address")
	}
	first := s.Snapshot()
	if first.Addr != string(s.Addr()) {
		t.Fatalf("snapshot addr %q != session addr %q", first.Addr, s.Addr())
	}

	// Publish a small table, then register its schema in the DHT catalog.
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		s.Publish("conf", k, int64(i+1), &Tuple{Rel: "conf", Vals: []Value{k, int64(i)}}, 10*time.Minute)
	}
	s.RegisterTable(SQLTable{Name: "conf", Cols: []string{"k", "v"}, Key: "k"}, 0)

	// The catalog put is async; retry the lookup until the schema lands.
	var schema atomic.Pointer[SQLTable]
	deadline := time.Now().Add(15 * time.Second)
	for schema.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("registered schema never became resolvable")
		}
		s.LookupTable("conf", func(tp *SQLTable) {
			if tp != nil {
				schema.Store(tp)
			}
		})
		settle(500*time.Millisecond, func() bool { return schema.Load() != nil })
	}
	if got := schema.Load(); got.Key != "k" || len(got.Cols) != 2 {
		t.Fatalf("catalog returned wrong schema: %+v", got)
	}

	// Let the published tuples finish landing before the query snapshots
	// the table.
	settle(2*time.Second, func() bool { return false })

	// Query through an explicit plan.
	cat := Catalog{"conf": *schema.Load()}
	plan, err := ParseSQL("SELECT k, v FROM conf", cat)
	if err != nil {
		t.Fatal(err)
	}
	plan.TTL = 10 * time.Minute
	var rows atomic.Int64
	id, err := s.Query(plan, func(*core.Tuple, int) { rows.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if !settle(20*time.Second, func() bool { return rows.Load() >= 4 }) {
		t.Fatalf("plan query returned %d/4 rows", rows.Load())
	}

	// The query is live: listed, cancellable exactly once.
	live := s.LiveQueries()
	found := false
	for _, q := range live {
		if q.ID == id {
			found = true
			if !q.Initiator {
				t.Fatalf("query %d listed without the initiator role: %+v", id, q)
			}
		}
	}
	if !found {
		t.Fatalf("live query %d not in listing %+v", id, live)
	}
	if !s.Cancel(id) {
		t.Fatalf("cancel of live query %d reported not found", id)
	}
	if s.Cancel(id) {
		t.Fatalf("second cancel of query %d reported found", id)
	}

	// The same query through the catalog-planning path.
	var (
		sqlID   atomic.Uint64
		sqlErr  atomic.Pointer[error]
		sqlDone atomic.Bool
		sqlRows atomic.Int64
	)
	s.QuerySQL("SELECT k, v FROM conf", []string{"conf"},
		func(*core.Tuple, int) { sqlRows.Add(1) },
		func(id uint64, err error) {
			sqlID.Store(id)
			if err != nil {
				sqlErr.Store(&err)
			}
			sqlDone.Store(true)
		})
	if !settle(20*time.Second, func() bool { return sqlDone.Load() }) {
		t.Fatal("QuerySQL never planned")
	}
	if ep := sqlErr.Load(); ep != nil {
		t.Fatalf("QuerySQL: %v", *ep)
	}
	if !settle(20*time.Second, func() bool { return sqlRows.Load() >= 4 }) {
		t.Fatalf("QuerySQL returned %d/4 rows", sqlRows.Load())
	}
	s.Cancel(sqlID.Load())

	// DDL through Exec, visible in the snapshot's index section.
	if err := s.Exec("CREATE INDEX conf_v ON conf (v)", cat); err != nil {
		t.Fatal(err)
	}
	if !settle(10*time.Second, func() bool {
		for _, ix := range s.Snapshot().Indexes {
			if ix.Name == "conf_v" && ix.Table == "conf" && ix.Col == "v" {
				return true
			}
		}
		return false
	}) {
		t.Fatalf("CREATE INDEX never appeared in the snapshot: %+v", s.Snapshot().Indexes)
	}

	// Snapshot invariants: uptime advanced, monotone counters never
	// regressed, and the query work above was counted.
	last := s.Snapshot()
	if last.UptimeSeconds < first.UptimeSeconds {
		t.Fatalf("uptime went backwards: %v -> %v", first.UptimeSeconds, last.UptimeSeconds)
	}
	if last.Query.ResultTuples < first.Query.ResultTuples {
		t.Fatalf("result-tuple counter regressed: %v -> %v", first.Query.ResultTuples, last.Query.ResultTuples)
	}
	if !last.Ready {
		t.Fatal("node not ready after serving queries")
	}
}

// TestSessionConformanceSim runs the conformance workflow against a
// simulated *Node: same application code as the TCP deployment, with
// settle pumping the discrete-event network.
func TestSessionConformanceSim(t *testing.T) {
	sn := NewSimNetwork(4, topology.NewFullMeshInfinite(), 11, DefaultOptions())
	var s Session = sn.Nodes[0]
	runSessionConformance(t, s, func(d time.Duration, cond func() bool) bool {
		return sn.RunUntil(d, cond)
	})
}

// TestSessionConformanceReal runs the identical workflow against a
// *RealNode over loopback TCP, with settle polling wall clock.
func TestSessionConformanceReal(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a TCP cluster")
	}
	nodes := startCluster(t, 3)
	var s Session = nodes[0]
	runSessionConformance(t, s, func(d time.Duration, cond func() bool) bool {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			if cond() {
				return true
			}
			time.Sleep(20 * time.Millisecond)
		}
		return cond()
	})
}
