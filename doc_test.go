package pier_test

// Godoc coverage gate: every exported identifier of the public root
// package must carry a doc comment. CI runs this test by name, so a
// new exported symbol without documentation fails the build rather
// than silently eroding the API docs.

import (
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

func TestGodocCoverage(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing package: %v", err)
	}
	astPkg, ok := pkgs["pier"]
	if !ok {
		t.Fatalf("root package 'pier' not found (got %v)", keys(pkgs))
	}
	// doc.New mutates the AST; that is fine in a throwaway parse.
	d := doc.New(astPkg, "pier", doc.PreserveAST)

	var missing []string
	report := func(kind, name, comment string) {
		if strings.TrimSpace(comment) == "" {
			missing = append(missing, kind+" "+name)
		}
	}
	if strings.TrimSpace(d.Doc) == "" {
		missing = append(missing, "package pier")
	}
	for _, f := range d.Funcs {
		report("func", f.Name, f.Doc)
	}
	for _, v := range d.Vars {
		reportValue(report, "var", v)
	}
	for _, c := range d.Consts {
		reportValue(report, "const", c)
	}
	for _, typ := range d.Types {
		report("type", typ.Name, typ.Doc)
		for _, f := range typ.Funcs {
			report("func", f.Name, f.Doc)
		}
		for _, m := range typ.Methods {
			report("method", typ.Name+"."+m.Name, m.Doc)
		}
		for _, v := range typ.Consts {
			reportValue(report, "const", v)
		}
		for _, v := range typ.Vars {
			reportValue(report, "var", v)
		}
	}
	if len(missing) > 0 {
		t.Errorf("exported root-package identifiers without doc comments:\n  %s",
			strings.Join(missing, "\n  "))
	}
}

// reportValue checks one const/var declaration group: a group comment
// covers all of its exported names; otherwise each exported name needs
// its own comment.
func reportValue(report func(kind, name, comment string), kind string, v *doc.Value) {
	if strings.TrimSpace(v.Doc) != "" {
		return
	}
	for _, spec := range v.Decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if vs.Doc != nil || vs.Comment != nil {
			continue
		}
		for _, n := range vs.Names {
			if ast.IsExported(n.Name) {
				report(kind, n.Name, "")
			}
		}
	}
}

func keys[M map[string]V, V any](m M) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
