package pier

import (
	"pier/internal/admin"
	"pier/internal/core"
	"pier/internal/trace"
)

// Re-exported operational-state types. Snapshot is the one serializable
// struct behind the admin plane's GET /api/status, the /metrics
// exporter, and the pier-node shell's info/stats commands; QueryInfo
// describes one live query.
type (
	// Snapshot aggregates one node's observable state (see
	// Node.Snapshot).
	Snapshot = admin.Snapshot
	// NamespaceCount is one namespace's soft-state summary inside a
	// Snapshot.
	NamespaceCount = admin.NamespaceCount
	// IndexInfo describes one PHT index definition inside a Snapshot.
	IndexInfo = admin.IndexInfo
	// QueryChannelStats is the Snapshot form of the engine's
	// result-channel counters (QueryStats with JSON names).
	QueryChannelStats = admin.QueryChannelStats
	// QueryInfo describes one query alive on a node (see
	// Node.LiveQueries).
	QueryInfo = core.QueryInfo
	// HistogramData is one latency histogram inside a Snapshot,
	// exported on /metrics as a Prometheus histogram family.
	HistogramData = admin.HistogramData
)

// Snapshot aggregates this node's observable state into one
// serializable struct: identity and uptime, routing (readiness,
// neighbors, the statistics catalog's overlay estimates), soft state
// per namespace, index definitions and reader counters, live-query
// gauges, and the engine and transport counter families. It replaces
// ad-hoc walks over Router()/Provider()/Stats()/QueryStats()/
// TransportStats() with a single consistent read; the admin plane and
// the daemon shell both serve exactly this struct.
func (n *Node) Snapshot() Snapshot {
	now := n.env.Now()
	snap := Snapshot{
		Addr:          string(n.env.Addr()),
		StartedAt:     n.started,
		UptimeSeconds: now.Sub(n.started).Seconds(),
		Ready:         n.router.Ready(),
	}
	for _, a := range n.router.Neighbors() {
		snap.Neighbors = append(snap.Neighbors, string(a))
	}
	net := n.stats.NetStats()
	snap.OverlayNodes = net.Nodes
	snap.HopLatencyMS = float64(net.HopLatency.Microseconds()) / 1e3
	snap.LookupHops = net.LookupHops
	store := n.provider.Store()
	usage := store.Usage()
	for _, ns := range store.Namespaces() {
		snap.SoftState = append(snap.SoftState, NamespaceCount{
			Namespace: ns,
			Items:     store.Len(ns),
			Bytes:     usage.ByNamespace[ns],
		})
	}
	snap.StoredItems = store.TotalLen()
	snap.StoredBytes = usage.Bytes
	ss := n.StorageStats()
	snap.Storage = admin.StorageStats{
		ItemsEvicted:     ss.ItemsEvicted,
		BytesEvicted:     ss.BytesEvicted,
		ItemsSpilled:     ss.ItemsSpilled,
		BytesSpilled:     ss.BytesSpilled,
		SpilledLiveItems: ss.SpilledLive,
		PutsThrottled:    ss.PutsThrottled,
		PutsDelayed:      ss.PutsDelayed,
		PutsDropped:      ss.PutsDropped,
	}
	for _, d := range n.indexes.AllDefs() {
		snap.Indexes = append(snap.Indexes, IndexInfo{Name: d.Name, Table: d.Table, Col: d.Col})
	}
	snap.IndexScans, snap.IndexVisits = n.indexes.Stats()
	snap.CachedStatsTables = len(n.stats.CachedTables())
	snap.ActiveExecs = n.engine.ActiveExecs()
	snap.OpenCollectors = n.engine.OpenCollectors()
	qs := n.engine.QueryStats()
	snap.Query = QueryChannelStats{
		ResultBatches:  qs.ResultBatches,
		ResultTuples:   qs.ResultTuples,
		CreditGrants:   qs.CreditGrants,
		CreditStalls:   qs.CreditStalls,
		BloomFallbacks: qs.BloomFallbacks,
	}
	snap.Histograms = histogramData(n.engine)
	if ls, ok := n.TransportStats(); ok {
		snap.Transport = &ls
	}
	return snap
}

// histogramData snapshots the engine's latency distributions into the
// admin plane's histogram DTOs: end-to-end query duration, result-flush
// latency, and span durations per trace stage (every stage is emitted,
// observed or not, so the /metrics families are stable across scrapes).
func histogramData(eng *core.Engine) []HistogramData {
	hist := func(name, help, stage string, s trace.HistogramSnapshot) HistogramData {
		return HistogramData{Name: name, Help: help, Stage: stage,
			Bounds: s.Bounds, Counts: s.Counts, Sum: s.Sum, Count: s.Count}
	}
	out := []HistogramData{
		hist("pier_query_duration_seconds",
			"End-to-end duration of queries initiated on this node.", "", eng.QueryDurations()),
		hist("pier_result_flush_latency_seconds",
			"Executor latency from first buffered tuple to its result frame.", "", eng.FlushLatencies()),
	}
	for _, ns := range eng.SpanDurations() {
		out = append(out, hist("pier_trace_span_duration_seconds",
			"Durations of trace spans recorded on this node, by pipeline stage.", ns.Name, ns.Hist))
	}
	return out
}

// LiveQueries lists the queries currently alive on this node — one
// entry per id, merging this node's collector (initiator) and executor
// roles — sorted by id.
func (n *Node) LiveQueries() []QueryInfo { return n.engine.LiveQueries() }
