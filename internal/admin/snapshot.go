// Package admin is the operational plane of a PIER node: an embeddable
// HTTP server (stdlib only) exposing a REST API over one node's state —
// status, routing table, soft state, indexes, live queries (list, run,
// cancel), publish, graceful leave — plus a Prometheus-text /metrics
// endpoint exporting every counter family the node already collects.
//
// The package is deliberately below the public pier package: it defines
// the serializable Snapshot contract and a small Backend interface, and
// the root package adapts its Session implementations (simulated and
// real nodes) onto Backend. Handlers never touch node internals — every
// read goes through one Snapshot() call, so the REST surface, the
// /metrics exporter, and the daemon shell all serve the same struct.
package admin

import (
	"time"

	"pier/internal/env"
)

// Snapshot aggregates one node's observable state at a point in time.
// It is the single serializable struct behind GET /api/status, the
// /metrics exporter, and the pier-node shell's info/stats commands;
// field names (via the JSON tags) are the REST contract.
type Snapshot struct {
	// Addr is the node's transport address.
	Addr string `json:"addr"`
	// StartedAt is when the node stack was assembled; UptimeSeconds is
	// derived from it at snapshot time. Simulated nodes report virtual
	// time.
	StartedAt     time.Time `json:"started_at"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	// Ready reports whether the node has joined the overlay and owns a
	// portion of the key space.
	Ready bool `json:"ready"`

	// Neighbors lists the overlay neighbor addresses (the routing
	// table's links, GET /api/routing).
	Neighbors []string `json:"neighbors"`
	// OverlayNodes is the statistics catalog's deployment-size
	// estimate; HopLatency and LookupHops are its probe results.
	OverlayNodes int     `json:"overlay_nodes"`
	HopLatencyMS float64 `json:"hop_latency_ms"`
	LookupHops   float64 `json:"lookup_hops"`

	// SoftState summarizes the stored soft state per namespace;
	// StoredItems and StoredBytes are the totals across namespaces
	// (bytes charged at the wire-size model, memory tier only).
	SoftState   []NamespaceCount `json:"soft_state"`
	StoredItems int              `json:"stored_items"`
	StoredBytes int64            `json:"stored_bytes"`

	// Storage is the soft-state pressure counter family: evictions,
	// disk spill, and put-path throttling.
	Storage StorageStats `json:"storage"`

	// Indexes lists the PHT index definitions this node's agent knows;
	// IndexScans/IndexVisits are the reader's traversal counters.
	Indexes     []IndexInfo `json:"indexes"`
	IndexScans  int64       `json:"index_scans"`
	IndexVisits int64       `json:"index_visits"`

	// CachedStatsTables counts tables with fresh summaries in the
	// statistics catalog's reader cache.
	CachedStatsTables int `json:"cached_stats_tables"`

	// ActiveExecs and OpenCollectors are the engine's live-query
	// gauges (executors running here; queries initiated here).
	ActiveExecs    int `json:"active_execs"`
	OpenCollectors int `json:"open_collectors"`

	// Query is the engine's monotone result-channel counter family.
	Query QueryChannelStats `json:"query_channel"`

	// Histograms are the node's latency distributions (query duration,
	// result-flush latency, per-stage span durations), exported on
	// /metrics as Prometheus histogram families. Entries sharing a Name
	// must be adjacent: they render as one family distinguished by the
	// Stage label.
	Histograms []HistogramData `json:"histograms,omitempty"`

	// Transport is the TCP link counter family; nil on environments
	// without real links (the simulator).
	Transport *env.LinkStats `json:"transport,omitempty"`
}

// HistogramData is one latency histogram in snapshot form: per-bucket
// (non-cumulative) counts over the upper Bounds, plus an implicit
// overflow bucket. The /metrics exporter derives the cumulative le
// series, _sum, and _count from it.
type HistogramData struct {
	// Name and Help are the Prometheus family name and description.
	Name string `json:"name"`
	Help string `json:"help"`
	// Stage is the optional stage label value ("" renders unlabeled).
	Stage string `json:"stage,omitempty"`
	// Bounds are the inclusive bucket upper bounds in seconds; Counts
	// has len(Bounds)+1 entries, the last counting observations above
	// every bound.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	// Sum and Count aggregate all observations.
	Sum   float64 `json:"sum"`
	Count uint64  `json:"count"`
}

// TraceSpan is the REST form of one recorded span event.
type TraceSpan struct {
	// Stage names the instrumented pipeline stage (multicast, executor,
	// result_flush, ...).
	Stage string `json:"stage"`
	// Node is the address of the node that recorded the span.
	Node string `json:"node"`
	// Start is the span's start in UnixNano of the deployment clock
	// (virtual time on simulated nodes); DurNS is its length.
	Start int64 `json:"start_unix_nano"`
	DurNS int64 `json:"duration_ns"`
	// Note is a short human-readable annotation.
	Note string `json:"note,omitempty"`
	// Seq orders spans recorded by the same node at the same instant.
	Seq uint32 `json:"seq"`
}

// QueryTrace is the REST form of an assembled distributed query trace,
// served by GET /api/queries/{id}/trace and the EXPLAIN TRACE answer.
type QueryTrace struct {
	// ID serializes as a decimal string like QueryInfo.ID.
	ID uint64 `json:"id,string"`
	// Root is the initiator's address.
	Root string `json:"root"`
	// Started/Finished bound the query in UnixNano of the deployment
	// clock; Finished is 0 while the query is still live.
	Started  int64 `json:"started_unix_nano"`
	Finished int64 `json:"finished_unix_nano"`
	// Spans are the collected span events in causal order.
	Spans []TraceSpan `json:"spans"`
	// Drops counts spans lost to bounded buffers.
	Drops uint64 `json:"dropped_spans"`
	// Rendered is the human-readable trace tree (the EXPLAIN TRACE
	// text), so curl users need no client-side formatter.
	Rendered string `json:"rendered"`
}

// NamespaceCount is one namespace's soft-state summary.
type NamespaceCount struct {
	// Namespace is the DHT namespace (a table, or an internal family
	// like pier.catalog / pier.index).
	Namespace string `json:"namespace"`
	// Items counts live stored items in it on this node.
	Items int `json:"items"`
	// Bytes is the namespace's in-memory occupancy under the wire-size
	// charging model (spilled items excluded).
	Bytes int64 `json:"bytes"`
}

// StorageStats is the soft-state pressure counter family: what a
// quota-bounded node has evicted, spilled to disk, or throttled at the
// put path. All-zero on unbounded nodes.
type StorageStats struct {
	// ItemsEvicted and BytesEvicted count quota evictions (lifetime
	// expiry is not an eviction).
	ItemsEvicted int64 `json:"items_evicted"`
	BytesEvicted int64 `json:"bytes_evicted"`
	// ItemsSpilled and BytesSpilled count evictions diverted to the
	// disk tier; SpilledLiveItems is the current on-disk gauge.
	ItemsSpilled     int64 `json:"items_spilled"`
	BytesSpilled     int64 `json:"bytes_spilled"`
	SpilledLiveItems int   `json:"spilled_live_items"`
	// PutsThrottled counts puts this node bounced with a throttle
	// message; PutsDelayed counts puts it deferred after being
	// throttled (or self-throttled); PutsDropped counts stores whose
	// incoming item was its own eviction victim.
	PutsThrottled int64 `json:"puts_throttled"`
	PutsDelayed   int64 `json:"puts_delayed"`
	PutsDropped   int64 `json:"puts_dropped"`
}

// IndexInfo describes one PHT index definition.
type IndexInfo struct {
	// Name is the deployment-unique index name.
	Name string `json:"name"`
	// Table and Col identify what the index covers.
	Table string `json:"table"`
	Col   string `json:"col"`
}

// QueryChannelStats mirrors core.QueryStats with JSON names: the
// monotone counters of the batched, credit-based result channel.
type QueryChannelStats struct {
	// ResultBatches and ResultTuples count result frames shipped to
	// initiators and the tuples they carried.
	ResultBatches uint64 `json:"result_batches"`
	ResultTuples  uint64 `json:"result_tuples"`
	// CreditGrants and CreditStalls count collector-side grants and
	// executor-side stall episodes of the flow-control window.
	CreditGrants uint64 `json:"credit_grants"`
	CreditStalls uint64 `json:"credit_stalls"`
	// BloomFallbacks counts Bloom-join combines degraded by mismatched
	// peer filter geometry.
	BloomFallbacks uint64 `json:"bloom_fallbacks"`
}

// QueryInfo is the REST form of one live query (GET /api/queries).
type QueryInfo struct {
	// ID is the query id, the handle DELETE /api/queries/{id} takes.
	// It serializes as a decimal string: ids are full uint64s, beyond
	// what JSON consumers can hold in a float64.
	ID uint64 `json:"id,string"`
	// Initiator and Executor report this node's roles in the query.
	Initiator bool `json:"initiator"`
	Executor  bool `json:"executor"`
	// Tables names the plan's input relations.
	Tables []string `json:"tables"`
	// Continuous marks a windowed continuous query.
	Continuous bool `json:"continuous"`
	// Started is when this node first saw the query.
	Started time.Time `json:"started"`
}

// Row is one result tuple as streamed by POST /api/queries (NDJSON).
type Row struct {
	// Window is 0 for one-shot queries, the window index otherwise.
	Window int `json:"window"`
	// Values are the emitted column values.
	Values []any `json:"values"`
}
