package admin

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMetrics renders a Snapshot in the Prometheus text exposition
// format (version 0.0.4): every counter family the node collects —
// transport link counters, the query result channel, index traversal —
// plus the operational gauges (soft state per namespace, overlay
// estimates, live-query counts). Families appear in a fixed order so
// scrapes diff cleanly.
func WriteMetrics(w io.Writer, s Snapshot) {
	m := &metricsWriter{w: w}

	m.gauge("pier_up", "Whether the node process is serving.", 1)
	m.gauge("pier_ready", "Whether the node has joined the overlay and owns key space.", b2f(s.Ready))
	m.gauge("pier_uptime_seconds", "Seconds since the node stack was assembled.", s.UptimeSeconds)

	m.gauge("pier_overlay_nodes", "Statistics catalog's deployment-size estimate.", float64(s.OverlayNodes))
	m.gauge("pier_overlay_neighbors", "Overlay routing-table neighbor count.", float64(len(s.Neighbors)))
	m.gauge("pier_overlay_lookup_hops", "Probed average DHT lookup path length.", s.LookupHops)
	m.gauge("pier_overlay_hop_latency_seconds", "Probed one-way overlay hop latency.", s.HopLatencyMS/1e3)

	m.typ("pier_softstate_items", "Live soft-state items stored on this node, per namespace.", "gauge")
	for _, ns := range s.SoftState {
		m.sample(fmt.Sprintf(`pier_softstate_items{namespace="%s"}`, escapeLabel(ns.Namespace)), float64(ns.Items))
	}
	m.typ("pier_softstate_bytes", "In-memory soft-state bytes on this node under the wire-size model, per namespace.", "gauge")
	for _, ns := range s.SoftState {
		m.sample(fmt.Sprintf(`pier_softstate_bytes{namespace="%s"}`, escapeLabel(ns.Namespace)), float64(ns.Bytes))
	}
	m.gauge("pier_softstate_stored_items", "Live soft-state items stored on this node, all namespaces.", float64(s.StoredItems))
	m.gauge("pier_softstate_stored_bytes", "In-memory soft-state bytes on this node, all namespaces.", float64(s.StoredBytes))

	m.counter("pier_storage_evictions_total", "Items evicted to hold storage quotas (expiry is not an eviction).", float64(s.Storage.ItemsEvicted))
	m.counter("pier_storage_evicted_bytes_total", "Bytes evicted to hold storage quotas.", float64(s.Storage.BytesEvicted))
	m.counter("pier_storage_spilled_items_total", "Evicted items diverted to the disk-spill tier.", float64(s.Storage.ItemsSpilled))
	m.counter("pier_storage_spilled_bytes_total", "Bytes diverted to the disk-spill tier.", float64(s.Storage.BytesSpilled))
	m.gauge("pier_storage_spilled_live_items", "Live items currently resident in the disk-spill tier.", float64(s.Storage.SpilledLiveItems))
	m.counter("pier_storage_puts_throttled_total", "Puts this node bounced with a throttle message (over-quota namespace).", float64(s.Storage.PutsThrottled))
	m.counter("pier_storage_puts_delayed_total", "Puts this node deferred after a throttle (including self-throttles).", float64(s.Storage.PutsDelayed))
	m.counter("pier_storage_puts_dropped_total", "Stores whose incoming item was its own eviction victim.", float64(s.Storage.PutsDropped))

	m.gauge("pier_catalog_cached_tables", "Tables with fresh summaries in the statistics catalog's reader cache.", float64(s.CachedStatsTables))

	m.gauge("pier_index_defs", "PHT index definitions known to this node's agent.", float64(len(s.Indexes)))
	m.counter("pier_index_scans_total", "PHT range scans started by this node's reader.", float64(s.IndexScans))
	m.counter("pier_index_visits_total", "Trie nodes visited by this node's PHT reader.", float64(s.IndexVisits))

	m.gauge("pier_queries_active_executors", "Query executors currently running on this node.", float64(s.ActiveExecs))
	m.gauge("pier_queries_open_collectors", "Queries initiated on this node with live collectors.", float64(s.OpenCollectors))

	m.counter("pier_query_result_batches_total", "Result frames shipped toward query initiators.", float64(s.Query.ResultBatches))
	m.counter("pier_query_result_tuples_total", "Result tuples shipped toward query initiators.", float64(s.Query.ResultTuples))
	m.counter("pier_query_credit_grants_total", "Flow-control credit grants issued by collectors on this node.", float64(s.Query.CreditGrants))
	m.counter("pier_query_credit_stalls_total", "Executor flushes stalled on an exhausted credit window.", float64(s.Query.CreditStalls))
	m.counter("pier_query_bloom_fallbacks_total", "Bloom-join combines degraded by mismatched filter geometry.", float64(s.Query.BloomFallbacks))

	m.histograms(s.Histograms)

	if s.Transport != nil {
		t := s.Transport
		m.counter("pier_transport_frames_sent_total", "Messages handed to the socket layer.", float64(t.FramesSent))
		m.counter("pier_transport_batches_sent_total", "Socket writes issued (frames/batches is the coalescing factor).", float64(t.BatchesSent))
		m.counter("pier_transport_bytes_sent_total", "Bytes written, framing included.", float64(t.BytesSent))
		m.counter("pier_transport_frames_recv_total", "Frames received and decoded.", float64(t.FramesRecv))
		m.counter("pier_transport_bytes_recv_total", "Bytes received.", float64(t.BytesRecv))
		m.counter("pier_transport_drops_total", "Messages discarded: full queues, encode failures, dead connections.", float64(t.Drops))
	}
}

// metricsWriter accumulates exposition-format lines.
type metricsWriter struct {
	w io.Writer
}

func (m *metricsWriter) typ(name, help, kind string) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

func (m *metricsWriter) sample(series string, v float64) {
	fmt.Fprintf(m.w, "%s %s\n", series, formatValue(v))
}

func (m *metricsWriter) gauge(name, help string, v float64) {
	m.typ(name, help, "gauge")
	m.sample(name, v)
}

func (m *metricsWriter) counter(name, help string, v float64) {
	m.typ(name, help, "counter")
	m.sample(name, v)
}

// histograms renders HistogramData entries as Prometheus histogram
// families: cumulative le buckets, a +Inf bucket equal to _count, and
// _sum/_count series. Adjacent entries sharing a Name become one
// family whose series differ by the stage label.
func (m *metricsWriter) histograms(hs []HistogramData) {
	for i := 0; i < len(hs); {
		j := i + 1
		for j < len(hs) && hs[j].Name == hs[i].Name {
			j++
		}
		m.typ(hs[i].Name, hs[i].Help, "histogram")
		for _, h := range hs[i:j] {
			stage := ""
			if h.Stage != "" {
				stage = fmt.Sprintf(`stage="%s",`, escapeLabel(h.Stage))
			}
			var cum uint64
			for k, bound := range h.Bounds {
				if k < len(h.Counts) {
					cum += h.Counts[k]
				}
				m.sample(fmt.Sprintf(`%s_bucket{%sle="%s"}`, h.Name, stage, formatBound(bound)), float64(cum))
			}
			// The +Inf bucket is the total by definition; using Count
			// (not cum + overflow) keeps the scrape consistent even if
			// a snapshot arrives with mismatched bucket slices.
			m.sample(fmt.Sprintf(`%s_bucket{%sle="+Inf"}`, h.Name, stage), float64(h.Count))
			suffix := ""
			if h.Stage != "" {
				suffix = fmt.Sprintf(`{stage="%s"}`, escapeLabel(h.Stage))
			}
			m.sample(h.Name+"_sum"+suffix, h.Sum)
			m.sample(h.Name+"_count"+suffix, float64(h.Count))
		}
		i = j
	}
}

// formatBound prints a bucket bound the way Prometheus clients expect
// (shortest float form, no stray exponent for typical bounds).
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatValue prints integral values without an exponent so scrapes
// stay human-readable; everything else falls back to %g.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// b2f renders a boolean as a 0/1 gauge value.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
