package admin

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Backend is the node surface the admin plane serves. The public pier
// package adapts its Session implementations (simulated and real
// nodes) onto it; handlers call nothing else.
//
// Errors returned by RunSQL, RegisterTable, and Publish are classified
// by wrapping: ErrUnavailable maps to 503, everything else to 400 (the
// inputs arrived over HTTP, so a failure to apply them is the client's
// problem unless the deployment itself is unreachable). Handlers never
// answer 5xx for malformed input.
type Backend interface {
	// Snapshot captures the node's observable state.
	Snapshot() Snapshot

	// Queries lists the queries currently alive on the node.
	Queries() []QueryInfo

	// RunSQL runs one SQL statement against the deployment's DHT
	// catalog. DDL (CREATE INDEX) completes before returning, with
	// kind SQLDDL. For SELECT, kind is SQLQuery, id is the live query
	// id, and result rows stream into each — called on the node's
	// event loop, so it must never block — until Cancel(id). EXPLAIN
	// TRACE runs the inner SELECT with tracing forced on and reports
	// SQLExplain; the handler collects rows, cancels, then fetches the
	// assembled trace via Trace.
	RunSQL(src string, each func(Row)) (id uint64, kind SQLKind, err error)

	// Cancel stops a query initiated on this node, reporting whether
	// it was found.
	Cancel(id uint64) bool

	// Trace returns the distributed trace of a query initiated on this
	// node: live (partial) while the query runs, retained for a while
	// after it closes. ok is false when the query is unknown, untraced,
	// or evicted.
	Trace(id uint64) (tr QueryTrace, ok bool)

	// RegisterTable publishes a table schema into the DHT catalog.
	RegisterTable(name, key string, cols []string) error

	// Publish stores one row under the table's key column, returning
	// the resourceID it landed on.
	Publish(table string, values []any, lifetime time.Duration) (rid string, err error)

	// Leave departs the overlay gracefully (soft state hands off to a
	// peer).
	Leave()
}

// SQLKind classifies what RunSQL did with a statement.
type SQLKind int

// Statement kinds.
const (
	// SQLDDL is a synchronous definition statement (CREATE INDEX).
	SQLDDL SQLKind = iota
	// SQLQuery is a live SELECT streaming rows until cancelled.
	SQLQuery
	// SQLExplain is an EXPLAIN TRACE: a live SELECT with tracing
	// forced on, answered with the assembled trace instead of rows.
	SQLExplain
)

// ErrUnavailable marks a Backend error caused by the deployment being
// unreachable (a catalog lookup that timed out, a node mid-shutdown)
// rather than by the request; handlers answer it with 503.
var ErrUnavailable = errors.New("admin: deployment unavailable")

// Limits bound what one HTTP request may ask of the node.
type Limits struct {
	// MaxWait caps how long POST /api/queries collects results
	// (default 60s); DefaultWait applies when the request names none
	// (default 5s).
	MaxWait     time.Duration
	DefaultWait time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// RowBuffer is the per-stream result buffer between the node's
	// event loop and the HTTP writer; rows beyond it are dropped and
	// counted in the stream trailer (default 4096).
	RowBuffer int
}

func (l Limits) withDefaults() Limits {
	if l.MaxWait <= 0 {
		l.MaxWait = 60 * time.Second
	}
	if l.DefaultWait <= 0 {
		l.DefaultWait = 5 * time.Second
	}
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = 1 << 20
	}
	if l.RowBuffer <= 0 {
		l.RowBuffer = 4096
	}
	return l
}

// Server is the embeddable admin-plane handler. It is a plain
// http.Handler: mount it on any mux or serve it directly.
type Server struct {
	b   Backend
	lim Limits
	mux *http.ServeMux
}

// New builds the admin handler over a backend with default Limits.
func New(b Backend) *Server { return NewWithLimits(b, Limits{}) }

// NewWithLimits builds the admin handler with explicit request bounds.
func NewWithLimits(b Backend, lim Limits) *Server {
	s := &Server{b: b, lim: lim.withDefaults(), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/status", s.handleStatus)
	s.mux.HandleFunc("GET /api/routing", s.handleRouting)
	s.mux.HandleFunc("GET /api/softstate", s.handleSoftState)
	s.mux.HandleFunc("GET /api/indexes", s.handleIndexes)
	s.mux.HandleFunc("GET /api/queries", s.handleQueries)
	s.mux.HandleFunc("POST /api/queries", s.handleRunQuery)
	s.mux.HandleFunc("DELETE /api/queries/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /api/queries/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("POST /api/tables", s.handleRegisterTable)
	s.mux.HandleFunc("POST /api/publish", s.handlePublish)
	s.mux.HandleFunc("POST /api/leave", s.handleLeave)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON serves v with the proper content type.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// errorBody is the JSON error envelope every non-2xx answer carries.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// backendStatus maps a Backend error to its HTTP status.
func backendStatus(err error) int {
	if errors.Is(err, ErrUnavailable) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// decodeBody parses a bounded JSON request body into v, rejecting
// trailing garbage.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.lim.MaxBodyBytes))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "bad request body: trailing data")
		return false
	}
	return true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.b.Snapshot())
}

// routingView is the GET /api/routing projection of the snapshot.
type routingView struct {
	Addr         string   `json:"addr"`
	Ready        bool     `json:"ready"`
	Neighbors    []string `json:"neighbors"`
	OverlayNodes int      `json:"overlay_nodes"`
	LookupHops   float64  `json:"lookup_hops"`
	HopLatencyMS float64  `json:"hop_latency_ms"`
}

func (s *Server) handleRouting(w http.ResponseWriter, r *http.Request) {
	snap := s.b.Snapshot()
	writeJSON(w, http.StatusOK, routingView{
		Addr:         snap.Addr,
		Ready:        snap.Ready,
		Neighbors:    snap.Neighbors,
		OverlayNodes: snap.OverlayNodes,
		LookupHops:   snap.LookupHops,
		HopLatencyMS: snap.HopLatencyMS,
	})
}

// softStateView is the GET /api/softstate projection of the snapshot.
type softStateView struct {
	StoredItems int              `json:"stored_items"`
	StoredBytes int64            `json:"stored_bytes"`
	Namespaces  []NamespaceCount `json:"namespaces"`
	Storage     StorageStats     `json:"storage"`
}

func (s *Server) handleSoftState(w http.ResponseWriter, r *http.Request) {
	snap := s.b.Snapshot()
	writeJSON(w, http.StatusOK, softStateView{
		StoredItems: snap.StoredItems,
		StoredBytes: snap.StoredBytes,
		Namespaces:  snap.SoftState,
		Storage:     snap.Storage,
	})
}

// indexesView is the GET /api/indexes projection of the snapshot.
type indexesView struct {
	Indexes []IndexInfo `json:"indexes"`
	Scans   int64       `json:"scans"`
	Visits  int64       `json:"visits"`
}

func (s *Server) handleIndexes(w http.ResponseWriter, r *http.Request) {
	snap := s.b.Snapshot()
	writeJSON(w, http.StatusOK, indexesView{Indexes: snap.Indexes, Scans: snap.IndexScans, Visits: snap.IndexVisits})
}

// queriesView wraps the live-query listing.
type queriesView struct {
	Queries []QueryInfo `json:"queries"`
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, queriesView{Queries: s.b.Queries()})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "query id must be a decimal uint64: %q", r.PathValue("id"))
		return
	}
	if !s.b.Cancel(id) {
		writeError(w, http.StatusNotFound, "no live query %d initiated on this node", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"cancelled": strconv.FormatUint(id, 10)})
}

// handleTrace serves the assembled distributed trace of a query
// initiated on this node (live or recently closed).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "query id must be a decimal uint64: %q", r.PathValue("id"))
		return
	}
	tr, ok := s.b.Trace(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no trace for query %d on this node (untraced, unknown, or evicted)", id)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// runQueryRequest is the POST /api/queries body.
type runQueryRequest struct {
	// SQL is the statement: a SELECT (results stream back as NDJSON)
	// or CREATE INDEX (completes synchronously).
	SQL string `json:"sql"`
	// WaitMS bounds how long the stream collects results; 0 uses the
	// server default, values above the server cap are clamped.
	WaitMS int `json:"wait_ms"`
	// Limit stops the stream after this many rows (0 = no limit).
	Limit int `json:"limit"`
}

// streamMeta is the first NDJSON line of a query stream.
type streamMeta struct {
	ID string `json:"id"`
}

// streamTrailer is the last NDJSON line of a query stream.
type streamTrailer struct {
	Rows    int `json:"rows"`
	Dropped int `json:"dropped"`
}

// handleRunQuery runs SQL and streams results as NDJSON: one meta line
// carrying the query id, one line per result row, and a trailer with
// the row count and how many rows overflowed the stream buffer. DDL
// answers a plain JSON object instead of a stream.
func (s *Server) handleRunQuery(w http.ResponseWriter, r *http.Request) {
	var req runQueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, "missing sql")
		return
	}
	wait := s.lim.DefaultWait
	if req.WaitMS > 0 {
		wait = time.Duration(req.WaitMS) * time.Millisecond
	}
	if wait > s.lim.MaxWait {
		wait = s.lim.MaxWait
	}
	if req.Limit < 0 {
		writeError(w, http.StatusBadRequest, "limit must be non-negative")
		return
	}

	// The row channel decouples the node's event loop from the HTTP
	// writer: each never blocks, overflow is dropped and reported.
	rows := make(chan Row, s.lim.RowBuffer)
	dropped := 0
	var droppedCh = make(chan struct{}, 1)
	each := func(row Row) {
		select {
		case rows <- row:
		default:
			select {
			case droppedCh <- struct{}{}:
			default:
			}
		}
	}
	id, kind, err := s.b.RunSQL(req.SQL, each)
	if err != nil {
		writeError(w, backendStatus(err), "%v", err)
		return
	}
	if kind == SQLDDL {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "ddl": true})
		return
	}
	if kind == SQLExplain {
		s.answerExplain(w, r, id, wait, rows, droppedCh)
		return
	}
	defer s.b.Cancel(id)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(streamMeta{ID: strconv.FormatUint(id, 10)})
	flush()

	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	n := 0
stream:
	for {
		select {
		case row := <-rows:
			if err := enc.Encode(row); err != nil {
				return // client gone
			}
			flush()
			n++
			if req.Limit > 0 && n >= req.Limit {
				break stream
			}
		case <-droppedCh:
			dropped++
		case <-deadline.C:
			break stream
		case <-r.Context().Done():
			return
		}
	}
	// Rows that raced the deadline into the channel count as dropped:
	// the stream is over.
	for {
		select {
		case <-rows:
			dropped++
		case <-droppedCh:
			dropped++
		default:
			_ = enc.Encode(streamTrailer{Rows: n, Dropped: dropped})
			flush()
			return
		}
	}
}

// answerExplain finishes an EXPLAIN TRACE request: let the traced
// query run for the wait window (counting but not streaming its rows),
// cancel it — which closes the collector and retains the complete
// trace — then answer with the assembled trace as one JSON document.
func (s *Server) answerExplain(w http.ResponseWriter, r *http.Request, id uint64, wait time.Duration, rows chan Row, droppedCh chan struct{}) {
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	n := 0
collect:
	for {
		select {
		case <-rows:
			n++
		case <-droppedCh:
		case <-deadline.C:
			break collect
		case <-r.Context().Done():
			s.b.Cancel(id)
			return
		}
	}
	s.b.Cancel(id)
	tr, ok := s.b.Trace(id)
	if !ok {
		writeError(w, http.StatusNotFound, "query %d left no trace", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rows": n, "trace": tr})
}

// registerTableRequest is the POST /api/tables body.
type registerTableRequest struct {
	// Name and Cols describe the relation; Key names the column used
	// as the base resourceID.
	Name string   `json:"name"`
	Key  string   `json:"key"`
	Cols []string `json:"cols"`
}

func (s *Server) handleRegisterTable(w http.ResponseWriter, r *http.Request) {
	var req registerTableRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" || req.Key == "" || len(req.Cols) == 0 {
		writeError(w, http.StatusBadRequest, "name, key, and cols are all required")
		return
	}
	if err := s.b.RegisterTable(req.Name, req.Key, req.Cols); err != nil {
		writeError(w, backendStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"registered": req.Name})
}

// publishRequest is the POST /api/publish body.
type publishRequest struct {
	// Table names a registered relation; Values is one row in column
	// order (numbers, strings, bools).
	Table  string `json:"table"`
	Values []any  `json:"values"`
	// LifetimeMS bounds the soft-state lifetime (0 uses the node's
	// default).
	LifetimeMS int `json:"lifetime_ms"`
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req publishRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Table == "" || len(req.Values) == 0 {
		writeError(w, http.StatusBadRequest, "table and values are required")
		return
	}
	if req.LifetimeMS < 0 {
		writeError(w, http.StatusBadRequest, "lifetime_ms must be non-negative")
		return
	}
	rid, err := s.b.Publish(req.Table, req.Values, time.Duration(req.LifetimeMS)*time.Millisecond)
	if err != nil {
		writeError(w, backendStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"table": req.Table, "rid": rid})
}

func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	s.b.Leave()
	writeJSON(w, http.StatusOK, map[string]any{"left": true})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, s.b.Snapshot())
}
