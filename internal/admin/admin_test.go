package admin

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pier/internal/env"
)

// fakeBackend is an in-memory Backend for handler tests.
type fakeBackend struct {
	mu        sync.Mutex
	snap      Snapshot
	queries   []QueryInfo
	cancelled []uint64
	liveIDs   map[uint64]bool
	rows      []Row
	sqlErr    error
	left      bool
	published []string
	trace     *QueryTrace
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		snap: Snapshot{
			Addr:          "127.0.0.1:7001",
			StartedAt:     time.Unix(1700000000, 0),
			UptimeSeconds: 12.5,
			Ready:         true,
			Neighbors:     []string{"127.0.0.1:7002", "127.0.0.1:7003"},
			OverlayNodes:  3,
			HopLatencyMS:  1.25,
			LookupHops:    1.5,
			SoftState:     []NamespaceCount{{Namespace: "R", Items: 4, Bytes: 2048}, {Namespace: `we"ird\ns`, Items: 1, Bytes: 512}},
			StoredItems:   5,
			StoredBytes:   2560,
			Storage: StorageStats{
				ItemsEvicted: 6, BytesEvicted: 3072,
				ItemsSpilled: 2, BytesSpilled: 1024, SpilledLiveItems: 1,
				PutsThrottled: 9, PutsDelayed: 8, PutsDropped: 3,
			},
			Indexes:           []IndexInfo{{Name: "r_num1", Table: "R", Col: "num1"}},
			IndexScans:        7,
			IndexVisits:       21,
			CachedStatsTables: 2,
			ActiveExecs:       1,
			OpenCollectors:    1,
			Query: QueryChannelStats{
				ResultBatches: 10, ResultTuples: 100, CreditGrants: 5, CreditStalls: 1, BloomFallbacks: 0,
			},
			Transport: &env.LinkStats{FramesSent: 40, BatchesSent: 30, BytesSent: 9000, FramesRecv: 38, BytesRecv: 8800, Drops: 2},
		},
		liveIDs: map[uint64]bool{42: true, math.MaxUint64: true},
		queries: []QueryInfo{
			{ID: math.MaxUint64, Initiator: true, Tables: []string{"R", "S"}, Started: time.Unix(1700000100, 0)},
		},
	}
}

func (f *fakeBackend) Snapshot() Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snap
}

func (f *fakeBackend) Queries() []QueryInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]QueryInfo(nil), f.queries...)
}

func (f *fakeBackend) RunSQL(src string, each func(Row)) (uint64, SQLKind, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sqlErr != nil {
		return 0, SQLDDL, f.sqlErr
	}
	up := strings.ToUpper(strings.TrimSpace(src))
	if strings.HasPrefix(up, "CREATE") {
		return 0, SQLDDL, nil
	}
	for _, r := range f.rows {
		each(r)
	}
	if strings.HasPrefix(up, "EXPLAIN") {
		return 43, SQLExplain, nil
	}
	return 42, SQLQuery, nil
}

func (f *fakeBackend) Trace(id uint64) (QueryTrace, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.trace == nil || f.trace.ID != id {
		return QueryTrace{}, false
	}
	return *f.trace, true
}

func (f *fakeBackend) Cancel(id uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cancelled = append(f.cancelled, id)
	return f.liveIDs[id]
}

func (f *fakeBackend) RegisterTable(name, key string, cols []string) error {
	for _, c := range cols {
		if c == key {
			return nil
		}
	}
	return fmt.Errorf("key column %q is not one of the table's columns", key)
}

func (f *fakeBackend) Publish(table string, values []any, lifetime time.Duration) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if table == "missing" {
		return "", fmt.Errorf("table %q not in the DHT catalog", table)
	}
	if table == "offline" {
		return "", fmt.Errorf("catalog lookup timed out: %w", ErrUnavailable)
	}
	f.published = append(f.published, table)
	return "rid-0", nil
}

func (f *fakeBackend) Leave() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.left = true
}

func newTestServer(t *testing.T, f *fakeBackend) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(f))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestStatusServesSnapshot(t *testing.T) {
	f := newFakeBackend()
	srv := newTestServer(t, f)

	var got Snapshot
	resp := getJSON(t, srv.URL+"/api/status", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got.Addr != f.snap.Addr || !got.Ready || got.StoredItems != 5 {
		t.Fatalf("snapshot mismatch: %+v", got)
	}
	if got.Transport == nil || got.Transport.FramesSent != 40 {
		t.Fatalf("transport counters lost in serialization: %+v", got.Transport)
	}
	if got.Query.ResultTuples != 100 {
		t.Fatalf("query-channel counters lost: %+v", got.Query)
	}
}

func TestRoutingSoftStateIndexViews(t *testing.T) {
	srv := newTestServer(t, newFakeBackend())

	var routing map[string]any
	getJSON(t, srv.URL+"/api/routing", &routing)
	if routing["addr"] != "127.0.0.1:7001" || routing["overlay_nodes"].(float64) != 3 {
		t.Fatalf("routing view: %v", routing)
	}
	if n := len(routing["neighbors"].([]any)); n != 2 {
		t.Fatalf("neighbors = %d", n)
	}

	var soft map[string]any
	getJSON(t, srv.URL+"/api/softstate", &soft)
	if soft["stored_items"].(float64) != 5 || soft["stored_bytes"].(float64) != 2560 {
		t.Fatalf("softstate view: %v", soft)
	}
	storage := soft["storage"].(map[string]any)
	if storage["items_evicted"].(float64) != 6 || storage["puts_throttled"].(float64) != 9 {
		t.Fatalf("softstate storage counters: %v", storage)
	}
	ns := soft["namespaces"].([]any)[0].(map[string]any)
	if ns["bytes"].(float64) != 2048 {
		t.Fatalf("namespace bytes: %v", ns)
	}

	var idx map[string]any
	getJSON(t, srv.URL+"/api/indexes", &idx)
	if idx["scans"].(float64) != 7 || idx["visits"].(float64) != 21 {
		t.Fatalf("indexes view: %v", idx)
	}
}

// TestQueryIDsSurviveJSON: query ids are full uint64s; they must round-
// trip as decimal strings, not float64-mangled numbers.
func TestQueryIDsSurviveJSON(t *testing.T) {
	srv := newTestServer(t, newFakeBackend())
	resp, err := http.Get(srv.URL + "/api/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	want := `"id":"18446744073709551615"`
	if !strings.Contains(string(body), want) {
		t.Fatalf("query listing must carry string ids, got %s", body)
	}
	var view struct {
		Queries []QueryInfo `json:"queries"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Queries) != 1 || view.Queries[0].ID != math.MaxUint64 {
		t.Fatalf("round-trip lost the id: %+v", view.Queries)
	}
}

func TestCancelQuery(t *testing.T) {
	f := newFakeBackend()
	srv := newTestServer(t, f)
	del := func(path string) *http.Response {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := del("/api/queries/42"); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel live query = %d", resp.StatusCode)
	}
	if resp := del("/api/queries/41"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown query = %d, want 404", resp.StatusCode)
	}
	// Hostile ids must be 4xx, never 5xx.
	for _, bad := range []string{"/api/queries/zebra", "/api/queries/-1", "/api/queries/1e9", "/api/queries/18446744073709551616"} {
		if resp := del(bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("DELETE %s = %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestRunQueryStreamsNDJSON(t *testing.T) {
	f := newFakeBackend()
	f.rows = []Row{
		{Window: 0, Values: []any{"a", float64(1)}},
		{Window: 0, Values: []any{"b", float64(2)}},
	}
	srv := newTestServer(t, f)

	resp, err := http.Post(srv.URL+"/api/queries", "application/json",
		strings.NewReader(`{"sql":"SELECT x FROM T","wait_ms":100}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 4 { // meta, 2 rows, trailer
		t.Fatalf("stream had %d lines: %v", len(lines), lines)
	}
	var meta streamMeta
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil || meta.ID != "42" {
		t.Fatalf("meta line: %q (%v)", lines[0], err)
	}
	var row Row
	if err := json.Unmarshal([]byte(lines[1]), &row); err != nil || row.Values[0] != "a" {
		t.Fatalf("row line: %q", lines[1])
	}
	var tr streamTrailer
	if err := json.Unmarshal([]byte(lines[3]), &tr); err != nil || tr.Rows != 2 || tr.Dropped != 0 {
		t.Fatalf("trailer line: %q", lines[3])
	}
	// The stream handler must cancel the query when the stream ends.
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.cancelled) == 0 || f.cancelled[len(f.cancelled)-1] != 42 {
		t.Fatalf("stream end did not cancel the query: %v", f.cancelled)
	}
}

func TestRunQueryLimitStopsStream(t *testing.T) {
	f := newFakeBackend()
	for i := 0; i < 50; i++ {
		f.rows = append(f.rows, Row{Values: []any{float64(i)}})
	}
	srv := newTestServer(t, f)
	resp, err := http.Post(srv.URL+"/api/queries", "application/json",
		strings.NewReader(`{"sql":"SELECT x FROM T","wait_ms":5000,"limit":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 5 { // meta, 3 rows, trailer
		t.Fatalf("limit=3 streamed %d lines", len(lines))
	}
}

func TestRunQueryDDL(t *testing.T) {
	srv := newTestServer(t, newFakeBackend())
	resp, err := http.Post(srv.URL+"/api/queries", "application/json",
		strings.NewReader(`{"sql":"CREATE INDEX r1 ON R (num1)"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["ddl"] != true || out["ok"] != true {
		t.Fatalf("DDL answer: %v", out)
	}
}

// TestHostileInputsNever5xx: malformed bodies and bad SQL are client
// errors; only an unreachable deployment may answer 5xx.
func TestHostileInputsNever5xx(t *testing.T) {
	f := newFakeBackend()
	srv := newTestServer(t, f)
	post := func(path, body string) *http.Response {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	cases := []struct{ path, body string }{
		{"/api/queries", `{not json`},
		{"/api/queries", `{"sql":""}`},
		{"/api/queries", `{"sql":"SELECT x FROM T"} trailing`},
		{"/api/queries", `{"sql":"SELECT x FROM T","limit":-4}`},
		{"/api/tables", `{"name":"","key":"k","cols":["k"]}`},
		{"/api/tables", `{"name":"T","key":"missing","cols":["a","b"]}`},
		{"/api/publish", `{"table":"","values":[1]}`},
		{"/api/publish", `{"table":"T","values":[]}`},
		{"/api/publish", `{"table":"T","values":[1],"lifetime_ms":-5}`},
		{"/api/publish", `{"table":"missing","values":[1]}`},
	}
	for _, c := range cases {
		if resp := post(c.path, c.body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q = %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}

	// Malformed SQL surfaces the parser error as a 400.
	f.mu.Lock()
	f.sqlErr = errors.New("parse error at SELEKT")
	f.mu.Unlock()
	if resp := post("/api/queries", `{"sql":"SELEKT"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad SQL = %d, want 400", resp.StatusCode)
	}

	// Unreachable deployment is the one 5xx: 503 via ErrUnavailable.
	f.mu.Lock()
	f.sqlErr = fmt.Errorf("catalog timed out: %w", ErrUnavailable)
	f.mu.Unlock()
	if resp := post("/api/queries", `{"sql":"SELECT x FROM T"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unavailable deployment = %d, want 503", resp.StatusCode)
	}
	if resp := post("/api/publish", `{"table":"offline","values":[1]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unavailable publish = %d, want 503", resp.StatusCode)
	}
}

func TestPublishAndRegisterTable(t *testing.T) {
	f := newFakeBackend()
	srv := newTestServer(t, f)
	resp, err := http.Post(srv.URL+"/api/tables", "application/json",
		strings.NewReader(`{"name":"fish","key":"name","cols":["name","size"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register = %d", resp.StatusCode)
	}
	var pub map[string]any
	resp2, err := http.Post(srv.URL+"/api/publish", "application/json",
		strings.NewReader(`{"table":"fish","values":["salmon",7]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&pub); err != nil {
		t.Fatal(err)
	}
	if pub["rid"] != "rid-0" {
		t.Fatalf("publish answer: %v", pub)
	}
}

func TestLeave(t *testing.T) {
	f := newFakeBackend()
	srv := newTestServer(t, f)
	resp, err := http.Post(srv.URL+"/api/leave", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.left {
		t.Fatal("POST /api/leave did not reach the backend")
	}
}

func sampleTrace() *QueryTrace {
	return &QueryTrace{
		ID:       43,
		Root:     "127.0.0.1:7001",
		Started:  1000,
		Finished: 9000,
		Spans: []TraceSpan{
			{Stage: "collect", Node: "127.0.0.1:7001", Start: 1000, DurNS: 8000},
			{Stage: "multicast", Node: "127.0.0.1:7002", Start: 2000, Note: "query arrived: R"},
			{Stage: "result_flush", Node: "127.0.0.1:7002", Start: 5000, DurNS: 100, Seq: 1},
		},
		Rendered: "trace query=2b ...",
	}
}

// TestTraceEndpoint: GET /api/queries/{id}/trace serves the assembled
// trace for a traced query and proper 4xx for everything else.
func TestTraceEndpoint(t *testing.T) {
	f := newFakeBackend()
	f.trace = sampleTrace()
	srv := newTestServer(t, f)

	var got QueryTrace
	resp := getJSON(t, srv.URL+"/api/queries/43/trace", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	if got.ID != 43 || len(got.Spans) != 3 || got.Spans[1].Stage != "multicast" {
		t.Fatalf("trace mismatch: %+v", got)
	}
	if resp := getJSON(t, srv.URL+"/api/queries/41/trace", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/api/queries/zebra/trace", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id = %d, want 400", resp.StatusCode)
	}
}

// TestExplainTraceAnswersTrace: an EXPLAIN TRACE statement answers one
// JSON document carrying the trace (not an NDJSON row stream), and the
// handler cancels the query before fetching it so the retained trace
// is complete.
func TestExplainTraceAnswersTrace(t *testing.T) {
	f := newFakeBackend()
	f.rows = []Row{{Values: []any{"a"}}, {Values: []any{"b"}}}
	f.trace = sampleTrace()
	f.liveIDs[43] = true
	srv := newTestServer(t, f)

	resp, err := http.Post(srv.URL+"/api/queries", "application/json",
		strings.NewReader(`{"sql":"EXPLAIN TRACE SELECT x FROM T","wait_ms":50}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q, want plain JSON", ct)
	}
	var out struct {
		Rows  int        `json:"rows"`
		Trace QueryTrace `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Rows != 2 || out.Trace.ID != 43 || len(out.Trace.Spans) != 3 {
		t.Fatalf("explain answer: %+v", out)
	}
	if out.Trace.Rendered == "" {
		t.Fatal("explain answer lost the rendered text")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.cancelled) == 0 || f.cancelled[len(f.cancelled)-1] != 43 {
		t.Fatalf("explain did not cancel the traced query: %v", f.cancelled)
	}
}

// parseMetrics reads an exposition-format scrape into name→value
// (labeled series keep their label string in the name).
func parseMetrics(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndex(line, " ")
		if i < 0 {
			t.Fatalf("unparseable metrics line: %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func TestMetricsScrape(t *testing.T) {
	f := newFakeBackend()
	srv := newTestServer(t, f)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	m := parseMetrics(t, body)

	// Every family the acceptance criteria name must be present:
	// transport, query channel (batches/credits), catalog, plus the
	// operational gauges.
	wantSeries := map[string]float64{
		"pier_up":                             1,
		"pier_ready":                          1,
		"pier_overlay_nodes":                  3,
		"pier_softstate_stored_items":         5,
		`pier_softstate_items{namespace="R"}`: 4,
		"pier_softstate_stored_bytes":         2560,
		`pier_softstate_bytes{namespace="R"}`: 2048,
		"pier_storage_evictions_total":        6,
		"pier_storage_evicted_bytes_total":    3072,
		"pier_storage_spilled_items_total":    2,
		"pier_storage_spilled_bytes_total":    1024,
		"pier_storage_spilled_live_items":     1,
		"pier_storage_puts_throttled_total":   9,
		"pier_storage_puts_delayed_total":     8,
		"pier_storage_puts_dropped_total":     3,
		"pier_catalog_cached_tables":          2,
		"pier_index_scans_total":              7,
		"pier_index_visits_total":             21,
		"pier_queries_active_executors":       1,
		"pier_query_result_batches_total":     10,
		"pier_query_result_tuples_total":      100,
		"pier_query_credit_grants_total":      5,
		"pier_query_credit_stalls_total":      1,
		"pier_transport_frames_sent_total":    40,
		"pier_transport_batches_sent_total":   30,
		"pier_transport_bytes_sent_total":     9000,
		"pier_transport_frames_recv_total":    38,
		"pier_transport_bytes_recv_total":     8800,
		"pier_transport_drops_total":          2,
	}
	for series, want := range wantSeries {
		got, ok := m[series]
		if !ok {
			t.Errorf("scrape missing %s", series)
		} else if got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	// Label values must be escaped per the exposition format.
	if !strings.Contains(body, `pier_softstate_items{namespace="we\"ird\\ns"}`) {
		t.Errorf("label escaping broken; scrape:\n%s", body)
	}
	// Counters must be TYPEd counter, gauges gauge.
	for _, want := range []string{
		"# TYPE pier_query_result_batches_total counter",
		"# TYPE pier_transport_frames_sent_total counter",
		"# TYPE pier_softstate_items gauge",
		"# TYPE pier_queries_active_executors gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestMetricsHistograms: histogram families must satisfy the
// exposition-format invariants — cumulative le buckets, +Inf equal to
// _count, one TYPE header per family even when stage-labeled entries
// share a name.
func TestMetricsHistograms(t *testing.T) {
	f := newFakeBackend()
	f.snap.Histograms = []HistogramData{
		{Name: "pier_query_duration_seconds", Help: "End-to-end query duration.",
			Bounds: []float64{0.01, 0.1, 1}, Counts: []uint64{2, 1, 0, 1}, Sum: 3.52, Count: 4},
		{Name: "pier_trace_span_duration_seconds", Help: "Span durations by stage.", Stage: "multicast",
			Bounds: []float64{0.01}, Counts: []uint64{3, 0}, Sum: 0.003, Count: 3},
		{Name: "pier_trace_span_duration_seconds", Stage: "executor",
			Bounds: []float64{0.01}, Counts: []uint64{1, 1}, Sum: 1.001, Count: 2},
	}
	var buf bytes.Buffer
	WriteMetrics(&buf, f.Snapshot())
	body := buf.String()
	m := parseMetrics(t, body)

	checks := map[string]float64{
		`pier_query_duration_seconds_bucket{le="0.01"}`:                        2,
		`pier_query_duration_seconds_bucket{le="0.1"}`:                         3,
		`pier_query_duration_seconds_bucket{le="1"}`:                           3,
		`pier_query_duration_seconds_bucket{le="+Inf"}`:                        4,
		"pier_query_duration_seconds_sum":                                      3.52,
		"pier_query_duration_seconds_count":                                    4,
		`pier_trace_span_duration_seconds_bucket{stage="multicast",le="0.01"}`: 3,
		`pier_trace_span_duration_seconds_bucket{stage="multicast",le="+Inf"}`: 3,
		`pier_trace_span_duration_seconds_bucket{stage="executor",le="0.01"}`:  1,
		`pier_trace_span_duration_seconds_bucket{stage="executor",le="+Inf"}`:  2,
		`pier_trace_span_duration_seconds_count{stage="executor"}`:             2,
	}
	for series, want := range checks {
		got, ok := m[series]
		if !ok {
			t.Errorf("scrape missing %s", series)
		} else if got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	if got := strings.Count(body, "# TYPE pier_trace_span_duration_seconds histogram"); got != 1 {
		t.Errorf("stage-labeled family emitted %d TYPE headers, want 1:\n%s", got, body)
	}
	if !strings.Contains(body, "# TYPE pier_query_duration_seconds histogram") {
		t.Error("query duration family not TYPEd histogram")
	}
}

// TestMetricsMonotonicity: counters must not regress between scrapes as
// the node makes progress.
func TestMetricsMonotonicity(t *testing.T) {
	f := newFakeBackend()
	srv := newTestServer(t, f)

	scrape := func() map[string]float64 {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return parseMetrics(t, string(raw))
	}

	first := scrape()
	f.mu.Lock()
	f.snap.Query.ResultBatches += 3
	f.snap.Query.ResultTuples += 30
	f.snap.Query.CreditGrants += 2
	f.snap.Transport.FramesSent += 12
	f.snap.Transport.BytesSent += 4096
	f.snap.IndexScans++
	f.mu.Unlock()
	second := scrape()

	for name := range first {
		if !strings.HasSuffix(name, "_total") {
			continue
		}
		if second[name] < first[name] {
			t.Errorf("counter %s regressed: %v -> %v", name, first[name], second[name])
		}
	}
	if second["pier_query_result_batches_total"] != first["pier_query_result_batches_total"]+3 {
		t.Errorf("result batches did not advance: %v -> %v",
			first["pier_query_result_batches_total"], second["pier_query_result_batches_total"])
	}
}

// TestMetricsOmitsTransportWithoutLinks: simulated nodes have no link
// counters; the scrape must omit the family rather than export zeros.
func TestMetricsOmitsTransportWithoutLinks(t *testing.T) {
	f := newFakeBackend()
	f.snap.Transport = nil
	var buf bytes.Buffer
	WriteMetrics(&buf, f.Snapshot())
	if strings.Contains(buf.String(), "pier_transport_") {
		t.Fatalf("transport family exported without real links:\n%s", buf.String())
	}
}

// TestMethodRouting: wrong-method hits answer 405 through the ServeMux
// method patterns.
func TestMethodRouting(t *testing.T) {
	srv := newTestServer(t, newFakeBackend())
	resp, err := http.Post(srv.URL+"/api/status", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /api/status = %d, want 405", resp.StatusCode)
	}
}
