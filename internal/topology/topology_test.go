package topology

import (
	"testing"
	"time"
)

func TestFullMeshDefaults(t *testing.T) {
	m := NewFullMesh()
	if got := m.Latency(0, 1); got != 100*time.Millisecond {
		t.Errorf("Latency = %v, want 100ms", got)
	}
	if got := m.Latency(3, 3); got != 0 {
		t.Errorf("self latency = %v, want 0", got)
	}
	if got := m.InboundBandwidth(0); got != 10e6 {
		t.Errorf("bandwidth = %v, want 10e6", got)
	}
}

func TestFullMeshInfinite(t *testing.T) {
	m := NewFullMeshInfinite()
	if got := m.InboundBandwidth(5); got != 0 {
		t.Errorf("bandwidth = %v, want 0 (unlimited)", got)
	}
}

func TestClusterDefaults(t *testing.T) {
	c := NewCluster()
	if c.Latency(0, 1) >= time.Millisecond {
		t.Errorf("cluster latency %v too large", c.Latency(0, 1))
	}
	if c.InboundBandwidth(0) != 1e9 {
		t.Errorf("cluster bandwidth = %v, want 1e9", c.InboundBandwidth(0))
	}
}

func TestTransitStubSymmetryAndSelf(t *testing.T) {
	ts := NewTransitStub(7)
	for a := 0; a < 50; a++ {
		if ts.Latency(a, a) != 0 {
			t.Fatalf("self latency nonzero for %d", a)
		}
		for b := a + 1; b < 50; b++ {
			if ts.Latency(a, b) != ts.Latency(b, a) {
				t.Fatalf("asymmetric latency %d<->%d", a, b)
			}
		}
	}
}

func TestTransitStubLatencyClasses(t *testing.T) {
	ts := NewTransitStub(7)
	sawIntra, sawInter := false, false
	for a := 0; a < 200 && !(sawIntra && sawInter); a++ {
		for b := a + 1; b < 200; b++ {
			l := ts.Latency(a, b)
			switch {
			case l == 2*time.Millisecond:
				sawIntra = true
			case l >= 20*time.Millisecond:
				sawInter = true
			default:
				t.Fatalf("unexpected latency %v between %d and %d", l, a, b)
			}
		}
	}
	if !sawIntra || !sawInter {
		t.Fatalf("latency classes missing: intra=%v inter=%v", sawIntra, sawInter)
	}
}

func TestTransitStubMeanNearPaper(t *testing.T) {
	// §5.7: "the average end-to-end delay between two nodes in the
	// transit stub topology is about 170 ms".
	ts := NewTransitStub(7)
	mean := ts.MeanLatency(4096, 20000, 1)
	if mean < 120*time.Millisecond || mean > 220*time.Millisecond {
		t.Fatalf("mean latency %v outside [120ms,220ms]", mean)
	}
}

func TestTransitStubDeterministic(t *testing.T) {
	a, b := NewTransitStub(3), NewTransitStub(3)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if a.Latency(i, j) != b.Latency(i, j) {
				t.Fatalf("same seed differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransitStubBoundedLatency(t *testing.T) {
	ts := NewTransitStub(11)
	// Clique domains + gateways: at most a few transit hops.
	for a := 0; a < 128; a++ {
		for b := 0; b < 128; b++ {
			if l := ts.Latency(a, b); l > 500*time.Millisecond {
				t.Fatalf("latency %v between %d,%d implausibly large", l, a, b)
			}
		}
	}
}
