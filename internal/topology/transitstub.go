package topology

import (
	"math/rand"
	"time"
)

// TransitStub is a GT-ITM-style transit-stub topology with the paper's
// §5.7 parameters: four transit domains, ten transit nodes per domain,
// three stub domains per transit node, transit-to-transit latency 50 ms,
// transit-to-stub latency 10 ms, and 2 ms between two nodes in the same
// stub domain. Simulated nodes are distributed uniformly among the stub
// domains.
//
// The GT-ITM package itself is unavailable; this generator reproduces the
// topology class directly. Transit nodes within a domain form a clique
// and each pair of domains is joined by a small number of random gateway
// links, which yields an average end-to-end delay close to the ~170 ms
// the paper reports.
type TransitStub struct {
	TransitDomains     int
	TransitNodesPerDom int
	StubsPerTransit    int
	TransitTransit     time.Duration
	TransitStubDelay   time.Duration
	IntraStub          time.Duration
	BitsPerSec         float64

	numTransit int
	numStubs   int
	// dist[a][b] is the hop count between transit nodes a and b over the
	// generated transit graph.
	dist [][]int
	// stubPerm maps node index to a stub domain pseudo-randomly but
	// deterministically.
	seed int64
}

// NewTransitStub builds the paper's transit-stub configuration with
// 10 Mbps inbound links. The seed controls gateway-link placement and
// node-to-stub assignment.
func NewTransitStub(seed int64) *TransitStub {
	t := &TransitStub{
		TransitDomains:     4,
		TransitNodesPerDom: 10,
		StubsPerTransit:    3,
		TransitTransit:     50 * time.Millisecond,
		TransitStubDelay:   10 * time.Millisecond,
		IntraStub:          2 * time.Millisecond,
		BitsPerSec:         10e6,
		seed:               seed,
	}
	t.build()
	return t
}

func (t *TransitStub) build() {
	t.numTransit = t.TransitDomains * t.TransitNodesPerDom
	t.numStubs = t.numTransit * t.StubsPerTransit
	rng := rand.New(rand.NewSource(t.seed))

	const inf = 1 << 20
	n := t.numTransit
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = inf
			}
		}
	}
	edge := func(a, b int) {
		if a != b {
			dist[a][b] = 1
			dist[b][a] = 1
		}
	}
	// Clique within each transit domain.
	for d := 0; d < t.TransitDomains; d++ {
		base := d * t.TransitNodesPerDom
		for i := 0; i < t.TransitNodesPerDom; i++ {
			for j := i + 1; j < t.TransitNodesPerDom; j++ {
				edge(base+i, base+j)
			}
		}
	}
	// Two random gateway links between every pair of domains.
	for a := 0; a < t.TransitDomains; a++ {
		for b := a + 1; b < t.TransitDomains; b++ {
			for k := 0; k < 2; k++ {
				na := a*t.TransitNodesPerDom + rng.Intn(t.TransitNodesPerDom)
				nb := b*t.TransitNodesPerDom + rng.Intn(t.TransitNodesPerDom)
				edge(na, nb)
			}
		}
	}
	// Floyd-Warshall all-pairs shortest hop counts (40 transit nodes).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := dist[i][k]
			if dik == inf {
				continue
			}
			for j := 0; j < n; j++ {
				if d := dik + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}
	t.dist = dist
}

// stubOf deterministically assigns node n to a stub domain, approximating
// the paper's uniform distribution of nodes among stub domains.
func (t *TransitStub) stubOf(n int) int {
	// splitmix64-style hash of (seed, n) for a stable pseudo-random
	// uniform assignment independent of join order.
	x := uint64(t.seed)*0x9e3779b97f4a7c15 + uint64(n)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(t.numStubs))
}

// Latency implements Topology.
func (t *TransitStub) Latency(a, b int) time.Duration {
	if a == b {
		return 0
	}
	sa, sb := t.stubOf(a), t.stubOf(b)
	if sa == sb {
		return t.IntraStub
	}
	ta, tb := sa/t.StubsPerTransit, sb/t.StubsPerTransit
	hops := t.dist[ta][tb]
	return 2*t.TransitStubDelay + time.Duration(hops)*t.TransitTransit
}

// InboundBandwidth implements Topology.
func (t *TransitStub) InboundBandwidth(int) float64 { return t.BitsPerSec }

// MeanLatency estimates the average end-to-end delay over random pairs
// drawn from the first n node indices. The paper reports ~170 ms (§5.7).
func (t *TransitStub) MeanLatency(n int, samples int, seed int64) time.Duration {
	rng := rand.New(rand.NewSource(seed))
	var sum time.Duration
	for i := 0; i < samples; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		for b == a {
			b = rng.Intn(n)
		}
		sum += t.Latency(a, b)
	}
	return sum / time.Duration(samples)
}
