// Package topology provides the network models used by the simulator:
// the paper's fully-connected topology (100 ms latency, 10 Mbps inbound
// links, §5.2), a GT-ITM-style transit-stub topology (§5.7), and a
// cluster topology approximating the 64-PC 1 Gbps testbed (§5.8).
package topology

import "time"

// Topology answers latency and bandwidth questions about pairs of
// simulated nodes, identified by their simulator index. Implementations
// must be deterministic functions of the indices so that simulations are
// reproducible.
type Topology interface {
	// Latency is the one-way propagation delay between nodes a and b.
	Latency(a, b int) time.Duration

	// InboundBandwidth is the capacity of node n's inbound link in bits
	// per second. Zero means unlimited (the paper's "infinite bandwidth"
	// scenario, §5.5.1).
	InboundBandwidth(n int) float64
}

// FullMesh is the paper's baseline topology: every pair of nodes is
// connected with a fixed latency, and congestion occurs only on each
// node's inbound access link ("the network congestion occurs at the last
// hop", §5.2).
type FullMesh struct {
	// Delay is the one-way latency between any two distinct nodes.
	Delay time.Duration
	// BitsPerSec is the inbound link capacity; zero = unlimited.
	BitsPerSec float64
}

// NewFullMesh returns the paper's default configuration: 100 ms latency
// and 10 Mbps inbound links.
func NewFullMesh() *FullMesh {
	return &FullMesh{Delay: 100 * time.Millisecond, BitsPerSec: 10e6}
}

// NewFullMeshInfinite returns the 100 ms topology with unlimited
// bandwidth, used for the propagation-delay analysis of Table 4.
func NewFullMeshInfinite() *FullMesh {
	return &FullMesh{Delay: 100 * time.Millisecond}
}

// Latency implements Topology.
func (t *FullMesh) Latency(a, b int) time.Duration {
	if a == b {
		return 0
	}
	return t.Delay
}

// InboundBandwidth implements Topology.
func (t *FullMesh) InboundBandwidth(int) float64 { return t.BitsPerSec }

// Cluster models the paper's experimental platform for Figure 8: a shared
// cluster of PCs on a 1 Gbps switched network with sub-millisecond
// latency.
type Cluster struct {
	Delay      time.Duration
	BitsPerSec float64
}

// NewCluster returns the Figure-8 configuration.
func NewCluster() *Cluster {
	return &Cluster{Delay: 200 * time.Microsecond, BitsPerSec: 1e9}
}

// Latency implements Topology.
func (t *Cluster) Latency(a, b int) time.Duration {
	if a == b {
		return 0
	}
	return t.Delay
}

// InboundBandwidth implements Topology.
func (t *Cluster) InboundBandwidth(int) float64 { return t.BitsPerSec }
