package stats

// Binary wire codec for the statistics catalog's summary payload — the
// one message type this package puts into the DHT (it rides inside the
// provider's put/get/transfer envelopes on real networks).

import (
	"pier/internal/env"
	"pier/internal/wire"
)

// Wire tag owned by package stats (see the tag table in package wire).
const tagSummary byte = 100

func init() {
	wire.Register(tagSummary, &Summary{},
		func(e *wire.Encoder, m env.Message) {
			s := m.(*Summary)
			e.String(s.Table)
			e.Varint(s.Nodes)
			e.Varint(s.Tuples)
			e.Varint(s.Bytes)
			if s.Keys == nil {
				e.Bool(false)
				return
			}
			e.Bool(true)
			e.Int(s.Keys.K)
			e.Len(len(s.Keys.Hashes))
			for _, h := range s.Keys.Hashes {
				// Hashes are high-entropy: fixed words beat varints.
				e.Fixed64(h)
			}
		},
		func(d *wire.Decoder) env.Message {
			s := &Summary{
				Table:  d.String(),
				Nodes:  d.Varint(),
				Tuples: d.Varint(),
				Bytes:  d.Varint(),
			}
			// Summaries feed the optimizer: a frame no honest publisher
			// can produce (negative counters, hashes out of KMV order)
			// must fail here, not skew every reader's cost estimates.
			if d.Err() == nil && (s.Nodes < 0 || s.Tuples < 0 || s.Bytes < 0) {
				d.Fail("negative summary counter")
				return s
			}
			if !d.Bool() {
				return s
			}
			s.Keys = &Sketch{K: d.Int()}
			if d.Err() == nil && (s.Keys.K < 1 || s.Keys.K > 1<<20) {
				d.Fail("sketch capacity out of range")
				return s
			}
			// Fixed 8-byte words: LenMin bounds the allocation exactly.
			if n := d.LenMin(8); n > 0 {
				if n > s.Keys.K {
					d.Fail("sketch holds more hashes than its capacity")
					return s
				}
				s.Keys.Hashes = make([]uint64, n)
				for i := range s.Keys.Hashes {
					h := d.Fixed64()
					if i > 0 && d.Err() == nil && h <= s.Keys.Hashes[i-1] {
						d.Fail("sketch hashes out of order")
						return s
					}
					s.Keys.Hashes[i] = h
				}
			}
			return s
		})
}
