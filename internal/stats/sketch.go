package stats

import (
	"hash/fnv"
	"math"
	"sort"
)

// Sketch is a K-minimum-values (KMV) distinct-value estimator: it keeps
// the K smallest 64-bit hashes of the values fed to it. The k-th
// smallest hash of n distinct uniform values sits near k/n of the hash
// space, so n ≈ (K-1) / (kth / 2^64). KMV sketches merge by set union
// (keeping the K smallest), which is exactly what the catalog's rollup
// needs: per-node sketches combine into a table-wide distinct-key
// estimate without double-counting keys stored on several nodes.
type Sketch struct {
	// K is the sketch capacity; estimates carry ~1/sqrt(K-2) relative
	// error.
	K int
	// Hashes holds the up-to-K smallest distinct value hashes, sorted
	// ascending.
	Hashes []uint64
}

// DefaultSketchK gives ~13% standard error at 17 words of state.
const DefaultSketchK = 64

// NewSketch creates an empty sketch of capacity k (DefaultSketchK when
// k <= 0).
func NewSketch(k int) *Sketch {
	if k <= 0 {
		k = DefaultSketchK
	}
	return &Sketch{K: k}
}

// WireSize implements env.Message (sketches ride inside summaries).
func (s *Sketch) WireSize() int { return 4 + 8*len(s.Hashes) }

// Add feeds one value.
func (s *Sketch) Add(v string) {
	h := fnv.New64a()
	h.Write([]byte(v))
	s.insert(fmix64(h.Sum64()))
}

// fmix64 is the murmur3 finalizer. KMV reads order statistics off the
// hash values, so they must be uniform; raw FNV over short, similar
// strings (sequential keys) is visibly biased, and the extra avalanche
// pass fixes that.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (s *Sketch) insert(x uint64) {
	i := sort.Search(len(s.Hashes), func(i int) bool { return s.Hashes[i] >= x })
	if i < len(s.Hashes) && s.Hashes[i] == x {
		return
	}
	if len(s.Hashes) >= s.K {
		if i >= s.K {
			return
		}
		s.Hashes = s.Hashes[:s.K-1]
	}
	s.Hashes = append(s.Hashes, 0)
	copy(s.Hashes[i+1:], s.Hashes[i:])
	s.Hashes[i] = x
}

// Merge unions another sketch into this one, keeping the K smallest.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil {
		return
	}
	for _, x := range o.Hashes {
		s.insert(x)
	}
}

// Estimate returns the estimated number of distinct values.
func (s *Sketch) Estimate() float64 {
	n := len(s.Hashes)
	if n < s.K || n == 0 {
		return float64(n) // saw fewer than K distinct values: exact
	}
	kth := float64(s.Hashes[n-1])
	if kth == 0 {
		return float64(n)
	}
	return float64(n-1) * math.Exp2(64) / kth
}

// Clone returns an independent copy. A nil sketch clones to nil:
// summaries travel the network and may legally carry no sketch, so
// merge paths must not have to nil-check before cloning.
func (s *Sketch) Clone() *Sketch {
	if s == nil {
		return nil
	}
	return &Sketch{K: s.K, Hashes: append([]uint64(nil), s.Hashes...)}
}
