// Package stats is PIER's self-maintaining distributed statistics
// catalog — the missing half of the paper's §7 "Catalogs and Query
// Optimization" challenge. The cost-based optimizer (internal/opt) can
// rank the four join strategies, but only if someone supplies table
// cardinalities, tuple widths, distinct-key counts, and deployment
// parameters. This package makes the system supply them itself:
//
//   - each node periodically samples its local soft-state store and
//     publishes a per-table Summary (tuple count, total payload bytes,
//     KMV distinct-key sketch) into the reserved CatalogNS namespace of
//     the DHT, as soft state with a lifetime a few refresh intervals
//     long — stale nodes simply age out, exactly like any other PIER
//     data;
//   - summaries roll up hierarchically: with Fanout > 0 each node
//     publishes into one of Fanout per-table buckets, and the bucket
//     owners merge their bucket into a single summary at the table's
//     root key, bounding the root's inbound load (the same idea as the
//     engine's AggFanout hierarchy);
//   - readers Get the root key and merge what they find into live
//     opt.TableStats, cached per table;
//   - a deployment probe estimates the overlay size from routing-layer
//     geometry and the per-hop latency from timed lookups, completing
//     the opt.NetStats inputs;
//   - observed query cardinalities reported by the engine feed back
//     into per-table-pair match-fraction corrections, so estimates that
//     start wrong converge instead of staying wrong.
//
// Everything is best-effort soft state: a cold catalog answers nothing
// and callers fall back to the default strategy; a warmed catalog makes
// opt.Choose automatic.
package stats

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/gob"
	"hash/fnv"
	"strconv"
	"strings"
	"time"

	"pier/internal/core"
	"pier/internal/dht"
	"pier/internal/dht/provider"
	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/opt"
)

// CatalogNS is the reserved DHT namespace holding statistics summaries.
const CatalogNS = "pier.stats"

// bucketSep separates the table name from the rollup bucket in leaf
// resourceIDs (the same separator the aggregation hierarchy uses).
const bucketSep = "\x1e"

// Config controls one node's catalog agent.
type Config struct {
	// Interval is the refresh period: how often the node samples its
	// local store, republishes summaries, combines rollup buckets it
	// owns, and re-probes the network. Zero disables the maintenance
	// loop (the catalog then only answers from explicit refreshes).
	Interval time.Duration

	// Lifetime bounds published summaries; zero defaults to 3×Interval
	// so a node must miss several refreshes before its contribution
	// ages out.
	Lifetime time.Duration

	// Fanout spreads each table's node summaries over this many rollup
	// buckets, whose owners forward one merged summary to the table's
	// root key. Zero publishes directly to the root (fine up to a few
	// hundred nodes; the hierarchy caps the root's inbound load beyond
	// that).
	Fanout int

	// SketchK is the distinct-key sketch capacity (DefaultSketchK when
	// zero).
	SketchK int

	// SampleLimit caps how many local tuples a choose-time selectivity
	// sample evaluates per table. Default 256.
	SampleLimit int

	// Objective is what automatic strategy choice minimizes (default
	// MinTraffic, the paper's wide-area concern).
	Objective opt.Objective

	// CacheTTL bounds how long a fetched TableStats entry answers
	// lookups before it must be re-fetched; zero defaults to Interval
	// (or a minute if the loop is disabled).
	CacheTTL time.Duration
}

// Enabled reports whether the maintenance loop should run.
func (c Config) Enabled() bool { return c.Interval > 0 }

// lifetime is the effective published-summary lifetime: the explicit
// setting, 3× the refresh interval, or a 3-minute floor when the loop
// is disabled (explicit-refresh mode) — never zero, which storage
// would treat as immortal.
func (c Config) lifetime() time.Duration {
	if c.Lifetime > 0 {
		return c.Lifetime
	}
	if c.Interval > 0 {
		return 3 * c.Interval
	}
	return 3 * time.Minute
}

func (c Config) cacheTTL() time.Duration {
	if c.CacheTTL > 0 {
		return c.CacheTTL
	}
	if c.Interval > 0 {
		return c.Interval
	}
	return time.Minute
}

func (c Config) sampleLimit() int {
	if c.SampleLimit > 0 {
		return c.SampleLimit
	}
	return 256
}

// Summary is one (partial) statistics record for a table: a leaf holds
// one node's local view; rollup and lookup merge leaves into a
// table-wide view.
type Summary struct {
	// Table is the namespace the summary describes.
	Table string
	// Nodes counts the node summaries merged in (1 at a leaf).
	Nodes int64
	// Tuples is the (summed) stored tuple count.
	Tuples int64
	// Bytes is the (summed) payload bytes, WireSize-accounted.
	Bytes int64
	// Keys sketches the distinct resourceIDs (≈ distinct primary keys).
	Keys *Sketch
}

// WireSize implements env.Message.
func (s *Summary) WireSize() int {
	n := env.StringSize(s.Table) + 3*env.IntSize
	if s.Keys != nil {
		n += s.Keys.WireSize()
	}
	return n
}

// Merge folds another summary into this one.
func (s *Summary) Merge(o *Summary) {
	s.Nodes += o.Nodes
	s.Tuples += o.Tuples
	s.Bytes += o.Bytes
	if o.Keys != nil {
		if s.Keys == nil {
			s.Keys = o.Keys.Clone()
		} else {
			s.Keys.Merge(o.Keys)
		}
	}
}

// TableStats converts the merged summary into optimizer inputs.
// Selectivity and HashedOnJoinAttr are query-specific and left for the
// caller.
func (s *Summary) TableStats() opt.TableStats {
	ts := opt.TableStats{Tuples: float64(s.Tuples)}
	if s.Tuples > 0 {
		ts.TupleBytes = float64(s.Bytes) / float64(s.Tuples)
	}
	if s.Keys != nil {
		ts.DistinctJoinKeys = s.Keys.Estimate()
	}
	return ts
}

func init() {
	gob.Register(&Summary{})
}

// Measurable reports whether a namespace is covered by the catalog:
// reserved pier.* namespaces and query-temporary namespaces (q<hex>,
// q<hex>.agg, q<hex>.bloomN) are not. Application tables whose name is
// "q" followed only by hex digits collide with the query-namespace
// convention and are skipped too.
func Measurable(ns string) bool {
	if strings.HasPrefix(ns, "pier.") {
		return false
	}
	if len(ns) < 2 || ns[0] != 'q' {
		return true
	}
	i := 1
	for i < len(ns) && isHex(ns[i]) {
		i++
	}
	if i == 1 {
		return true // "q" followed by a non-hex rune: a real table
	}
	return !(i == len(ns) || ns[i] == '.')
}

func isHex(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f'
}

// nodeEstimator is the optional routing-layer refinement the deployment
// probe uses: DHTs whose geometry encodes the network size (CAN zone
// volume, Chord successor density) report an estimate of n.
type nodeEstimator interface {
	EstimateNodes() int
}

// lookupCounter matches the routers' LookupStats introspection.
type lookupCounter interface {
	LookupStats() (count, hops int64)
}

type cacheEntry struct {
	stats opt.TableStats
	at    time.Time
}

// Catalog is one node's statistics agent: publisher of the node's local
// summaries, combiner for rollup buckets the node owns, reader cache,
// deployment probe, and feedback sink. Like all node state it runs on
// the node's single-threaded event loop.
type Catalog struct {
	env  env.Env
	prov *provider.Provider
	cfg  Config

	nodeIID int64
	stop    func()

	cache    map[string]cacheEntry
	fetching map[string]bool

	// match holds per-table-pair match-fraction corrections learned
	// from observed query cardinalities ("t0\x00t1" keys).
	match map[string]float64

	// hopEWMA is the probed one-hop latency estimate.
	hopEWMA  time.Duration
	probing  bool
	lastCnt  int64
	lastHops int64
}

// New builds a catalog agent over the node's provider. Call Start to
// run the maintenance loop (when cfg.Interval > 0).
func New(e env.Env, prov *provider.Provider, cfg Config) *Catalog {
	h := sha1.Sum([]byte("stats:" + string(e.Addr())))
	// The cache/fetching/match maps are allocated lazily at first
	// insert: nodes that never plan a query keep them nil.
	return &Catalog{
		env:     e,
		prov:    prov,
		cfg:     cfg,
		nodeIID: int64(binary.BigEndian.Uint64(h[:8]) >> 1),
	}
}

// Config returns the agent's configuration.
func (c *Catalog) Config() Config { return c.cfg }

// Start launches the periodic maintenance loop; a no-op when the
// catalog is disabled or already running.
func (c *Catalog) Start() {
	if !c.cfg.Enabled() || c.stop != nil {
		return
	}
	c.stop = env.Every(c.env, c.cfg.Interval, c.Refresh)
}

// Stop halts the maintenance loop (published summaries age out on
// their own). Safe to call repeatedly.
func (c *Catalog) Stop() {
	if c.stop != nil {
		c.stop()
		c.stop = nil
	}
}

// Running reports whether the maintenance loop is active.
func (c *Catalog) Running() bool { return c.stop != nil }

// Refresh runs one maintenance tick immediately: publish local
// summaries, combine owned rollup buckets, re-probe the deployment,
// and re-fetch cached tables. Tests and operators can call it directly
// to warm the catalog without waiting for the loop.
func (c *Catalog) Refresh() {
	c.publishLocal()
	c.combineBuckets()
	c.probeHop()
	for _, table := range env.SortedKeys(c.cache) {
		c.Fetch(table, nil)
	}
}

// publishLocal summarizes every measurable local namespace and puts the
// summaries into the catalog namespace.
func (c *Catalog) publishLocal() {
	lifetime := c.cfg.lifetime()
	for _, ns := range c.prov.Store().Namespaces() {
		if !Measurable(ns) {
			continue
		}
		sum := c.localSummary(ns)
		if sum.Tuples == 0 {
			continue
		}
		rid := ns
		if f := c.cfg.Fanout; f > 0 {
			rid = ns + bucketSep + strconv.FormatInt(c.nodeIID%int64(f), 10)
		}
		c.prov.Put(CatalogNS, rid, c.nodeIID, sum, lifetime)
	}
}

// localSummary scans one namespace's local items.
func (c *Catalog) localSummary(ns string) *Summary {
	sum := &Summary{Table: ns, Nodes: 1, Keys: NewSketch(c.cfg.SketchK)}
	c.prov.Scan(ns, func(it *storage.Item) bool {
		sum.Tuples++
		if it.Payload != nil {
			sum.Bytes += int64(it.Payload.WireSize())
		}
		sum.Keys.Add(it.ResourceID)
		return true
	})
	return sum
}

// combineBuckets runs the rollup role: merge the leaf summaries of
// every bucket key this node stores and forward one combined summary
// per bucket to the table's root key. Running it everywhere is
// harmless — only bucket owners hold leaf items.
func (c *Catalog) combineBuckets() {
	if c.cfg.Fanout <= 0 {
		return
	}
	lifetime := c.cfg.lifetime()
	combined := map[string]*Summary{}
	c.prov.Scan(CatalogNS, func(it *storage.Item) bool {
		sum, ok := it.Payload.(*Summary)
		if !ok || !strings.Contains(it.ResourceID, bucketSep) {
			return true
		}
		if cur, ok := combined[it.ResourceID]; ok {
			cur.Merge(sum)
		} else {
			cp := *sum
			cp.Keys = sum.Keys.Clone()
			combined[it.ResourceID] = &cp
		}
		return true
	})
	for _, rid := range env.SortedKeys(combined) {
		root := rid[:strings.Index(rid, bucketSep)]
		// A stable per-bucket instanceID keeps distinct buckets (and
		// re-combines) from colliding at the root.
		c.prov.Put(CatalogNS, root, ridIID(rid), combined[rid], lifetime)
	}
}

// ridIID derives a stable instanceID from a bucket resourceID.
func ridIID(rid string) int64 {
	h := fnv.New64a()
	h.Write([]byte(rid))
	return int64(h.Sum64() >> 1)
}

// Fetch resolves a table's merged statistics from the DHT, fills the
// cache, and invokes cb (which may be nil) with the result; ok is false
// when the catalog holds nothing for the table.
func (c *Catalog) Fetch(table string, cb func(ts opt.TableStats, ok bool)) {
	if c.fetching[table] && cb == nil {
		return
	}
	if c.fetching == nil {
		c.fetching = make(map[string]bool)
	}
	c.fetching[table] = true
	c.prov.Get(CatalogNS, table, func(items []*storage.Item) {
		delete(c.fetching, table)
		var merged *Summary
		for _, it := range items {
			sum, ok := it.Payload.(*Summary)
			if !ok {
				continue
			}
			if merged == nil {
				cp := *sum
				cp.Keys = sum.Keys.Clone()
				merged = &cp
			} else {
				merged.Merge(sum)
			}
		}
		if merged == nil || merged.Tuples == 0 {
			if cb != nil {
				cb(opt.TableStats{}, false)
			}
			return
		}
		ts := merged.TableStats()
		if c.cache == nil {
			c.cache = make(map[string]cacheEntry)
		}
		c.cache[table] = cacheEntry{stats: ts, at: c.env.Now()}
		if cb != nil {
			cb(ts, true)
		}
	})
}

// Cached returns the table's statistics if a fresh fetch is in cache.
func (c *Catalog) Cached(table string) (opt.TableStats, bool) {
	e, ok := c.cache[table]
	if !ok || c.env.Now().Sub(e.at) > c.cfg.cacheTTL() {
		return opt.TableStats{}, false
	}
	return e.stats, true
}

// CachedTables returns the names of tables whose summaries are fresh in
// this node's reader cache, sorted — the admin plane's catalog gauge.
func (c *Catalog) CachedTables() []string {
	var out []string
	for _, table := range env.SortedKeys(c.cache) {
		if _, ok := c.Cached(table); ok {
			out = append(out, table)
		}
	}
	return out
}

// probeHop times one lookup of a random key and updates the hop-latency
// estimate using the router's measured average path length.
func (c *Catalog) probeHop() {
	if c.probing {
		return
	}
	rt := c.prov.Router()
	k := dht.KeyOf(CatalogNS, strconv.FormatInt(c.env.Rand().Int63(), 16))
	start := c.env.Now()
	c.probing = true
	rt.Lookup(k, func(owner env.Addr) {
		c.probing = false
		if owner == env.NilAddr {
			return
		}
		elapsed := c.env.Now().Sub(start)
		hops := 1.0
		if lc, ok := rt.(lookupCounter); ok {
			cnt, h := lc.LookupStats()
			if dc, dh := cnt-c.lastCnt, h-c.lastHops; dc > 0 && dh > 0 {
				hops = float64(dh) / float64(dc)
			}
			c.lastCnt, c.lastHops = cnt, h
		}
		per := time.Duration(float64(elapsed) / (hops + 1)) // +1: the reply hop
		if per <= 0 {
			return
		}
		if c.hopEWMA == 0 {
			c.hopEWMA = per
		} else {
			c.hopEWMA = (7*c.hopEWMA + 3*per) / 10
		}
	})
}

// NetStats assembles the optimizer's deployment inputs from the routing
// layer (overlay size, measured path length), the hop probe, and — on a
// real transport — the link counters. Zero fields fall back to
// opt.NetStats.norm defaults.
func (c *Catalog) NetStats() opt.NetStats {
	var ns opt.NetStats
	rt := c.prov.Router()
	if est, ok := rt.(nodeEstimator); ok {
		ns.Nodes = est.EstimateNodes()
	}
	if lc, ok := rt.(lookupCounter); ok {
		if cnt, hops := lc.LookupStats(); cnt > 0 && hops > 0 {
			ns.LookupHops = float64(hops) / float64(cnt)
		}
	}
	ns.HopLatency = c.hopEWMA
	return ns
}

// HopLatency reports the probed per-hop latency estimate (zero before
// the first probe completes).
func (c *Catalog) HopLatency() time.Duration { return c.hopEWMA }

// --- automatic strategy choice -----------------------------------------

// hashedOnJoin reports the Fetch Matches precondition: the table's
// resourceID is exactly the join attribute.
func hashedOnJoin(tr core.TableRef) bool {
	return len(tr.JoinCols) == 1 && tr.RIDCol >= 0 && tr.JoinCols[0] == tr.RIDCol
}

// sampleSelectivity estimates a table filter's selectivity from the
// node's local items. Uniform hashing makes the local fraction of a
// relation an unbiased sample of the whole, so even one node's slice
// calibrates the predicate.
func (c *Catalog) sampleSelectivity(tr core.TableRef) float64 {
	sel, _ := c.sampleSelectivityOK(tr)
	return sel
}

// sampleSelectivityOK is sampleSelectivity with the sample size made
// visible: sampled is false when this node stores no tuples of the
// table at all, in which case the returned 1 is a worst-case
// placeholder, not an estimate. Callers that would make a pessimizing
// decision on it (ChooseAccess) should decline to answer instead.
func (c *Catalog) sampleSelectivityOK(tr core.TableRef) (sel float64, sampled bool) {
	if tr.Filter == nil {
		return 1, true
	}
	limit := c.cfg.sampleLimit()
	seen, passed := 0, 0
	c.prov.Scan(tr.NS, func(it *storage.Item) bool {
		t, ok := it.Payload.(*core.Tuple)
		if !ok {
			return true
		}
		seen++
		if core.Truthy(tr.Filter.Eval(t.Vals)) {
			passed++
		}
		return seen < limit
	})
	if seen == 0 {
		return 1, false // no local sample: assume nothing
	}
	sel = float64(passed) / float64(seen)
	if sel <= 0 {
		// Clamp away from zero: a small local sample missing every
		// match must not convince the optimizer the table is empty.
		sel = 0.5 / float64(seen)
	}
	return sel, true
}

func pairKey(p *core.Plan) string {
	return p.Tables[0].NS + "\x00" + p.Tables[1].NS
}

// JoinStats assembles the optimizer's join inputs for a two-table plan
// from cached table statistics, local selectivity samples, and learned
// match-fraction corrections. ok is false while either table is
// missing from the cache (an async Fetch is kicked off so a later
// query finds it warm).
func (c *Catalog) JoinStats(p *core.Plan) (opt.JoinStats, bool) {
	if len(p.Tables) != 2 {
		return opt.JoinStats{}, false
	}
	left, okL := c.Cached(p.Tables[0].NS)
	right, okR := c.Cached(p.Tables[1].NS)
	if !okL || !okR {
		if !okL {
			c.Fetch(p.Tables[0].NS, nil)
		}
		if !okR {
			c.Fetch(p.Tables[1].NS, nil)
		}
		return opt.JoinStats{}, false
	}
	left.Selectivity = c.sampleSelectivity(p.Tables[0])
	right.Selectivity = c.sampleSelectivity(p.Tables[1])
	left.HashedOnJoinAttr = hashedOnJoin(p.Tables[0])
	right.HashedOnJoinAttr = hashedOnJoin(p.Tables[1])
	j := opt.JoinStats{Left: left, Right: right}
	if m, ok := c.match[pairKey(p)]; ok {
		j.MatchFraction = m
	}
	return j, true
}

// ChooseStrategy picks the cheapest feasible join strategy for the plan
// under the configured objective, or ok=false when the catalog cannot
// answer yet (cold cache) — the caller then keeps the plan's default.
// Strategies whose plan-level preconditions fail (semi-join without
// RIDCols) are skipped even if the cost model ranks them first.
func (c *Catalog) ChooseStrategy(p *core.Plan) (core.Strategy, []opt.Estimate, bool) {
	j, ok := c.JoinStats(p)
	if !ok {
		return 0, nil, false
	}
	net := c.NetStats()
	if p.BloomBits > 0 {
		net.BloomBits = float64(p.BloomBits)
	}
	if p.BloomWait > 0 {
		net.BloomWait = p.BloomWait
	}
	_, ests := opt.Choose(j, net, c.cfg.Objective)
	for _, e := range ests {
		if !e.Feasible {
			continue
		}
		if e.Strategy == core.SymmetricSemiJoin &&
			(p.Tables[0].RIDCol < 0 || p.Tables[1].RIDCol < 0) {
			continue
		}
		return e.Strategy, ests, true
	}
	return 0, ests, false
}

// ChooseAccess decides whether a single-table plan carrying an
// index-scan candidate should actually use the index, by pricing both
// access paths (opt.ChooseScan) with the cached table cardinality and
// a local selectivity sample of the plan's filter. leafCapacity is the
// index's split threshold (opt.DefaultLeafCapacity when zero). ok is
// false while the catalog cannot answer (no index candidate, or the
// table missing from the cache — an async Fetch is kicked off so the
// next query finds it warm); the caller then keeps the plan as is.
func (c *Catalog) ChooseAccess(p *core.Plan, leafCapacity int) (useIndex bool, ok bool) {
	if len(p.Tables) != 1 || p.Tables[0].IndexScan == nil {
		return false, false
	}
	ts, cached := c.Cached(p.Tables[0].NS)
	if !cached {
		c.Fetch(p.Tables[0].NS, nil)
		return false, false
	}
	sel, sampled := c.sampleSelectivityOK(p.Tables[0])
	if !sampled {
		// No local fragment of the table to calibrate against: the
		// worst-case placeholder would always strip the index, so
		// decline (the caller keeps the plan as written) rather than
		// pessimize on no evidence.
		return false, false
	}
	ts.Selectivity = sel
	useIndex, _, _ = opt.ChooseScan(ts, c.NetStats(), leafCapacity)
	return useIndex, true
}

// --- feedback ----------------------------------------------------------

// Observe receives the engine's per-window observed result cardinality
// for a query initiated on this node and folds the observed/predicted
// ratio into the table pair's match-fraction correction. Post-join
// predicate losses fold in too — the correction is a calibration knob
// for the whole residual, not a clean match-rate measurement, which is
// exactly what repeated choices need.
func (c *Catalog) Observe(p *core.Plan, window, count int) {
	if p == nil || len(p.Tables) != 2 || count < 0 {
		return
	}
	// A continuous window's count covers only that window's arrivals;
	// comparing it against the full-table prediction would collapse the
	// correction toward its floor. Only one-shot joins calibrate.
	if p.Continuous {
		return
	}
	j, ok := c.JoinStats(p)
	if !ok {
		return
	}
	jn := j
	jn.MatchFraction = 1
	predicted := jn.Left.Tuples * jn.Left.Selectivity * jn.Right.Selectivity
	if predicted <= 0 {
		return
	}
	ratio := float64(count) / predicted
	prev, ok := c.match[pairKey(p)]
	if !ok {
		prev = 1
	}
	proposed := clamp(ratio, 0.01, 1)
	if c.match == nil {
		c.match = make(map[string]float64)
	}
	c.match[pairKey(p)] = clamp(0.5*prev+0.5*proposed, 0.01, 1)
}

// MatchCorrection reports the learned match-fraction correction for a
// table pair (1 and false before any feedback).
func (c *Catalog) MatchCorrection(left, right string) (float64, bool) {
	m, ok := c.match[left+"\x00"+right]
	if !ok {
		return 1, false
	}
	return m, true
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
