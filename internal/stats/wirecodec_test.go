package stats

import (
	"math/rand"
	"testing"

	"pier/internal/env"
	"pier/internal/wire"
	"pier/internal/wire/wiretest"
)

func randSketch(r *rand.Rand) *Sketch {
	s := NewSketch(8 + r.Intn(56))
	for i, n := 0, r.Intn(2*s.K); i < n; i++ {
		s.Add(wiretest.Str(r, 16))
	}
	return s
}

func TestWireRoundTrip(t *testing.T) {
	wiretest.RoundTrip(t, 11, 300, []wiretest.Gen{
		{Name: "summary", Make: func(r *rand.Rand) env.Message {
			return &Summary{
				Table:  wiretest.Str(r, 12),
				Nodes:  int64(r.Intn(1000)),
				Tuples: int64(r.Int31()),
				Bytes:  int64(r.Int31()),
				Keys:   randSketch(r),
			}
		}},
		{Name: "summary-nil-sketch", Make: func(r *rand.Rand) env.Message {
			return &Summary{
				Table:  wiretest.Str(r, 12),
				Nodes:  1,
				Tuples: int64(r.Int31()),
				Bytes:  int64(r.Int31()),
			}
		}},
	})
}

// TestHostileSummaryRejected: frames no honest publisher produces —
// negative counters, out-of-order or over-capacity sketches — must fail
// decode rather than skew every reader's optimizer inputs.
func TestHostileSummaryRejected(t *testing.T) {
	cases := map[string]*Summary{
		"negative tuples": {Table: "R", Nodes: 1, Tuples: -5000, Bytes: 1},
		"negative nodes":  {Table: "R", Nodes: -1, Tuples: 1, Bytes: 1},
		"negative bytes":  {Table: "R", Nodes: 1, Tuples: 1, Bytes: -1},
		"sketch K=0":      {Table: "R", Nodes: 1, Tuples: 1, Bytes: 1, Keys: &Sketch{K: 0}},
		"unsorted hashes": {Table: "R", Nodes: 1, Tuples: 1, Bytes: 1,
			Keys: &Sketch{K: 4, Hashes: []uint64{^uint64(0), 1}}},
		"over capacity": {Table: "R", Nodes: 1, Tuples: 1, Bytes: 1,
			Keys: &Sketch{K: 1, Hashes: []uint64{1, 2}}},
	}
	for name, s := range cases {
		b, err := wire.Marshal(s)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", name, err)
		}
		if _, err := wire.Unmarshal(b); err == nil {
			t.Errorf("%s: hostile summary accepted", name)
		}
	}
}

// TestCorruptSketchLengthRejected: a hostile hash count larger than the
// frame must fail decode instead of committing a huge allocation.
func TestCorruptSketchLengthRejected(t *testing.T) {
	good, err := wire.Marshal(&Summary{Table: "R", Nodes: 1, Tuples: 1, Bytes: 1, Keys: NewSketch(4)})
	if err != nil {
		t.Fatal(err)
	}
	// The final two bytes are the sketch K varint and the zero hash
	// count; replace the count with a large one.
	bad := append(append([]byte(nil), good[:len(good)-1]...), 0xFF, 0xFF, 0x7F)
	if _, err := wire.Unmarshal(bad); err == nil {
		t.Fatal("oversized sketch count accepted")
	}
}
