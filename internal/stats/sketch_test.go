package stats

import (
	"fmt"
	"math"
	"testing"
)

func TestSketchExactBelowK(t *testing.T) {
	s := NewSketch(64)
	for i := 0; i < 40; i++ {
		s.Add(fmt.Sprintf("key-%d", i))
		s.Add(fmt.Sprintf("key-%d", i)) // duplicates must not count
	}
	if got := s.Estimate(); got != 40 {
		t.Fatalf("estimate below capacity = %v, want exactly 40", got)
	}
}

func TestSketchEstimateAccuracy(t *testing.T) {
	for _, n := range []int{500, 5000, 50000} {
		s := NewSketch(256)
		for i := 0; i < n; i++ {
			s.Add(fmt.Sprintf("value/%d", i))
		}
		got := s.Estimate()
		if err := math.Abs(got-float64(n)) / float64(n); err > 0.15 {
			t.Errorf("n=%d: estimate %.0f (%.1f%% error)", n, got, 100*err)
		}
	}
}

func TestSketchMergeMatchesUnion(t *testing.T) {
	// Partition one key set over 10 "nodes"; merging their sketches
	// must estimate the union, not the sum (overlapping keys included).
	const n = 8000
	parts := make([]*Sketch, 10)
	for i := range parts {
		parts[i] = NewSketch(256)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("item-%d", i)
		parts[i%10].Add(key)
		parts[(i+1)%10].Add(key) // every key stored on two nodes
	}
	merged := NewSketch(256)
	for _, p := range parts {
		merged.Merge(p)
	}
	got := merged.Estimate()
	if err := math.Abs(got-n) / n; err > 0.15 {
		t.Fatalf("merged estimate %.0f for %d distinct keys (%.1f%% error)", got, n, 100*err)
	}
}

func TestSketchMergeNilAndClone(t *testing.T) {
	s := NewSketch(8)
	s.Add("a")
	s.Merge(nil)
	c := s.Clone()
	c.Add("b")
	if len(s.Hashes) != 1 || len(c.Hashes) != 2 {
		t.Fatalf("clone aliases parent: %d/%d", len(s.Hashes), len(c.Hashes))
	}
}

func TestMeasurable(t *testing.T) {
	cases := map[string]bool{
		"R":            true,
		"S":            true,
		"quotes":       true, // 'u' is not hex
		"q":            true,
		"qzzz":         true,
		"q1a2b":        false, // query rehash namespace
		"qdeadbeef":    false,
		"q1a2b.agg":    false,
		"q1a2b.bloom":  false,
		"pier.stats":   false,
		"pier.catalog": false,
	}
	for ns, want := range cases {
		if got := Measurable(ns); got != want {
			t.Errorf("Measurable(%q) = %v, want %v", ns, got, want)
		}
	}
}

func TestSummaryMergeAndTableStats(t *testing.T) {
	a := &Summary{Table: "R", Nodes: 1, Tuples: 100, Bytes: 6400, Keys: NewSketch(64)}
	b := &Summary{Table: "R", Nodes: 1, Tuples: 300, Bytes: 19200, Keys: NewSketch(64)}
	for i := 0; i < 100; i++ {
		a.Keys.Add(fmt.Sprint(i))
	}
	for i := 50; i < 350; i++ {
		b.Keys.Add(fmt.Sprint(i))
	}
	a.Merge(b)
	if a.Nodes != 2 || a.Tuples != 400 || a.Bytes != 25600 {
		t.Fatalf("merged counters: %+v", a)
	}
	ts := a.TableStats()
	if ts.Tuples != 400 || ts.TupleBytes != 64 {
		t.Fatalf("TableStats: %+v", ts)
	}
	if ts.DistinctJoinKeys < 280 || ts.DistinctJoinKeys > 420 {
		t.Fatalf("distinct keys estimate %.0f, want ≈350", ts.DistinctJoinKeys)
	}
}
