package realnet

// Loopback throughput of the codec × batching combinations, for the
// small soft-state messages (miniTuple-shaped renews) that dominate
// PIER's traffic. The acceptance bar for the binary codec + batching is
// >= 2x the frames/sec of the unbatched gob baseline:
//
//	go test ./internal/realnet -bench BenchmarkRealnetThroughput -benchtime 100000x

import (
	"encoding/gob"
	"sync/atomic"
	"testing"
	"time"

	"pier/internal/env"
	"pier/internal/wire"
)

// renewMsg mirrors core's miniTuple: the semi-join projection that §4.2
// rehashes in bulk (core's own types are unexported).
type renewMsg struct {
	Side     int
	RID, Key string
}

func (m *renewMsg) WireSize() int {
	return 1 + env.StringSize(m.RID) + env.StringSize(m.Key)
}

func init() {
	gob.Register(&renewMsg{})
	wire.Register(202, &renewMsg{},
		func(e *wire.Encoder, m env.Message) {
			t := m.(*renewMsg)
			e.Int(t.Side)
			e.String(t.RID)
			e.String(t.Key)
		},
		func(d *wire.Decoder) env.Message {
			return &renewMsg{Side: d.Int(), RID: d.String(), Key: d.String()}
		})
}

func benchThroughput(b *testing.B, cfg Config) {
	const window = 4096
	cfg.OutboxLen = 4 * window
	cfg.InboxLen = 4 * window
	src, err := ListenConfig("127.0.0.1:0", 1, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	dst, err := ListenConfig("127.0.0.1:0", 2, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer dst.Close()

	var got atomic.Int64
	dst.SetHandler(env.HandlerFunc(func(env.Addr, env.Message) { got.Add(1) }))
	m := &renewMsg{Side: 1, RID: "resource-4711", Key: "join-key-42"}

	// Warm the connection so dialing is outside the timed region.
	src.Send(dst.Addr(), m)
	waitAtLeast(b, &got, 1)

	b.ResetTimer()
	start := time.Now()
	sent := int64(1)
	for i := 0; i < b.N; i++ {
		// Cap the in-flight window so the fire-and-forget queue never
		// overflows: a throughput benchmark must not measure drops.
		if sent-got.Load() >= window {
			waitAtLeast(b, &got, sent-window/2)
		}
		src.Send(dst.Addr(), m)
		sent++
	}
	waitAtLeast(b, &got, sent)
	elapsed := time.Since(start)
	b.StopTimer()

	s := src.Stats()
	if s.Drops > 0 {
		b.Fatalf("benchmark dropped %d frames; results meaningless", s.Drops)
	}
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "frames/sec")
	if s.BatchesSent > 0 {
		b.ReportMetric(float64(s.FramesSent)/float64(s.BatchesSent), "frames/batch")
	}
	b.ReportMetric(float64(s.BytesSent)/float64(s.FramesSent), "bytes/frame")
}

func waitAtLeast(b *testing.B, got *atomic.Int64, n int64) {
	b.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for got.Load() < n {
		if time.Now().After(deadline) {
			b.Fatalf("receiver stuck at %d/%d frames", got.Load(), n)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// BenchmarkRealnetThroughput compares frames/sec on loopback TCP.
// "gob/frame-per-write" is the pre-codec transport: a fresh reflection
// walk per message and one syscall per frame.
func BenchmarkRealnetThroughput(b *testing.B) {
	b.Run("gob/frame-per-write", func(b *testing.B) {
		benchThroughput(b, Config{Codec: CodecGob, NoBatch: true})
	})
	b.Run("gob/batched", func(b *testing.B) {
		benchThroughput(b, Config{Codec: CodecGob})
	})
	b.Run("binary/frame-per-write", func(b *testing.B) {
		benchThroughput(b, Config{NoBatch: true})
	})
	b.Run("binary/batched", func(b *testing.B) {
		benchThroughput(b, Config{})
	})
}
