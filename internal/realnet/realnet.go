// Package realnet runs PIER nodes over real TCP sockets. It implements
// the same env.Env contract as the simulator, so the node stack is
// byte-for-byte the code the simulator executes — the paper's deployment
// story (§5.2: "The simulator and the implementation use the same code
// base", §5.8).
//
// Frames are encoded with the binary wire codec (pier/internal/wire):
// a uvarint length prefix, the sender's address, and one tagged message.
// The per-peer writer goroutine coalesces its outbound queue into
// batches — it keeps draining the queue into one buffer and issues a
// single write when the queue goes empty, the batch reaches
// MaxBatchBytes, or MaxBatchDelay elapses — so a burst of small
// soft-state messages (renews, miniTuples, partial aggregates) costs one
// syscall instead of one per frame. The legacy gob codec is retained
// behind Config.Codec as the benchmark baseline.
//
// Each node owns one listener, one event-loop goroutine that serializes
// all node logic, and one writer goroutine per peer connection. Sends
// are fire-and-forget: connection errors, full outbound queues, and
// malformed or oversized inbound frames drop messages (or connections),
// exactly the behavior the soft-state design tolerates.
package realnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pier/internal/env"
	"pier/internal/wire"
)

// Codec selects the frame encoding.
type Codec int

const (
	// CodecBinary is the length-prefixed binary wire protocol (default).
	CodecBinary Codec = iota
	// CodecGob is the legacy reflection-driven gob stream, kept as the
	// baseline for transport benchmarks and fallback tests.
	CodecGob
)

// Config tunes the transport. The zero value gives the production
// defaults: binary codec, batching with a 64 KiB flush threshold and no
// added delay, 16 MiB frame cap.
type Config struct {
	// Codec selects the frame encoding. All nodes of a deployment must
	// agree.
	Codec Codec

	// MaxFrameBytes rejects inbound frames larger than this; the
	// connection carrying one is dropped (binary codec only — gob has no
	// framing to enforce). Default 16 MiB.
	MaxFrameBytes int

	// MaxBatchBytes flushes the write batch once it holds at least this
	// many bytes. Default 64 KiB.
	MaxBatchBytes int

	// MaxBatchDelay, when positive, lets the writer wait up to this long
	// after the first frame of a batch for more traffic before flushing
	// a batch smaller than MaxBatchBytes. Zero (the default) flushes as
	// soon as the outbound queue drains — coalescing without added
	// latency.
	MaxBatchDelay time.Duration

	// NoBatch flushes every frame with its own write (the syscall-per-
	// frame baseline the batching benchmarks compare against).
	NoBatch bool

	// OutboxLen is the per-peer outbound queue; sends beyond it drop.
	// Default 1024.
	OutboxLen int

	// InboxLen is the event-loop queue. Default 4096.
	InboxLen int
}

func (c Config) withDefaults() Config {
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = 16 << 20
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 64 << 10
	}
	if c.OutboxLen <= 0 {
		c.OutboxLen = 1024
	}
	if c.InboxLen <= 0 {
		c.InboxLen = 4096
	}
	return c
}

// Stats is a snapshot of the transport counters. It is exactly the
// env.LinkStats shape so the layers above can read it without an
// internal/realnet import (self-sends are delivered in-process and not
// counted in FramesSent).
type Stats = env.LinkStats

// frame is the on-wire unit: the sender's address and one message.
type frame struct {
	From env.Addr
	Msg  env.Message
}

// Node implements env.Env over TCP.
type Node struct {
	addr    env.Addr
	cfg     Config
	ln      net.Listener
	inbox   chan func()
	handler env.Handler
	rng     *rand.Rand
	rngMu   sync.Mutex

	mu       sync.Mutex
	peers    map[env.Addr]*peer
	accepted map[net.Conn]bool
	done     chan struct{}
	ctx      context.Context // canceled on Close; aborts in-flight dials
	cancel   context.CancelFunc
	wg       sync.WaitGroup

	framesSent  atomic.Uint64
	batchesSent atomic.Uint64
	bytesSent   atomic.Uint64
	framesRecv  atomic.Uint64
	bytesRecv   atomic.Uint64
	drops       atomic.Uint64

	closeOnce sync.Once
}

// peer is one outbound connection. The writer goroutine dials lazily,
// so sends enqueue without ever blocking on the network. conn is set by
// the writer (under Node.mu, for Close) once the dial succeeds. dead is
// closed at teardown so racing sends count their frames as drops
// instead of enqueueing into an abandoned channel.
type peer struct {
	out  chan *frame
	dead chan struct{}
	conn net.Conn
}

// Listen starts a node with the default Config listening on addr (e.g.
// "127.0.0.1:0"). The returned node's event loop runs until Close.
func Listen(addr string, seed int64) (*Node, error) {
	return ListenConfig(addr, seed, Config{})
}

// ListenConfig starts a node with an explicit transport configuration.
func ListenConfig(addr string, seed int64, cfg Config) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		addr:     env.Addr(ln.Addr().String()),
		cfg:      cfg,
		ln:       ln,
		inbox:    make(chan func(), cfg.InboxLen),
		rng:      rand.New(rand.NewSource(seed)),
		peers:    make(map[env.Addr]*peer),
		accepted: make(map[net.Conn]bool),
		done:     make(chan struct{}),
		ctx:      ctx,
		cancel:   cancel,
	}
	n.wg.Add(2)
	go n.loop()
	go n.accept()
	return n, nil
}

// SetHandler registers the message handler; call before traffic flows.
func (n *Node) SetHandler(h env.Handler) { n.handler = h }

// Addr implements env.Env.
func (n *Node) Addr() env.Addr { return n.addr }

// Now implements env.Env.
func (n *Node) Now() time.Time { return time.Now() }

// Rand implements env.Env. Unlike the simulator, callbacks can race with
// the application goroutine, so access is serialized.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Stats returns a snapshot of the transport counters.
func (n *Node) Stats() Stats {
	return Stats{
		FramesSent:  n.framesSent.Load(),
		BatchesSent: n.batchesSent.Load(),
		BytesSent:   n.bytesSent.Load(),
		FramesRecv:  n.framesRecv.Load(),
		BytesRecv:   n.bytesRecv.Load(),
		Drops:       n.drops.Load(),
	}
}

// LinkStats implements env.LinkStatsProvider, exposing the transport
// counters to the layers above (pier.Node's accessor, the statistics
// catalog's deployment probe) without an internal/realnet import.
func (n *Node) LinkStats() env.LinkStats { return n.Stats() }

// After implements env.Env: the callback is posted to the node's event
// loop.
func (n *Node) After(d time.Duration, f func()) env.Timer {
	t := time.AfterFunc(d, func() { n.Post(f) })
	return realTimer{t}
}

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() { t.t.Stop() }

// Post implements env.Env.
func (n *Node) Post(f func()) {
	select {
	case n.inbox <- f:
	case <-n.done:
	}
}

// Do runs f on the node's event loop and waits for it — the safe way for
// application goroutines to touch node state.
func (n *Node) Do(f func()) {
	ch := make(chan struct{})
	n.Post(func() {
		defer close(ch)
		f()
	})
	select {
	case <-ch:
	case <-n.done:
	}
}

// Send implements env.Env: fire-and-forget delivery over a lazily
// dialed, cached TCP connection.
func (n *Node) Send(to env.Addr, m env.Message) {
	if to == n.addr {
		// Loopback without a socket, like the simulator's 0-latency self
		// path.
		n.Post(func() {
			if n.handler != nil {
				n.handler.HandleMessage(n.addr, m)
			}
		})
		return
	}
	p, err := n.peer(to)
	if err != nil {
		n.drops.Add(1)
		return
	}
	select {
	case <-p.dead:
		// Teardown already drained the queue; enqueueing now would lose
		// the frame uncounted.
		n.drops.Add(1)
	case p.out <- &frame{From: n.addr, Msg: m}:
		// The enqueue can race teardown: if dead was already closed the
		// drain may have finished before our frame landed. Pull one
		// frame back and count it; if the queue is empty the drain saw
		// ours and counted it. Either way every frame is accounted.
		select {
		case <-p.dead:
			select {
			case <-p.out:
				n.drops.Add(1)
			default:
			}
		default:
		}
	default:
		// Queue full: drop, as a congested datagram network would.
		n.drops.Add(1)
	}
}

// peer returns the cached peer for to, creating it (and its writer
// goroutine, which dials asynchronously) on first use. It never blocks
// on the network: frames queue while the dial is in flight.
func (n *Node) peer(to env.Addr) (*peer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.peers[to]; ok {
		return p, nil
	}
	select {
	case <-n.done:
		return nil, errors.New("realnet: node closed")
	default:
	}
	p := &peer{out: make(chan *frame, n.cfg.OutboxLen), dead: make(chan struct{})}
	n.peers[to] = p
	n.wg.Add(1)
	go n.writer(to, p)
	return p, nil
}

// frameWriter buffers encoded frames and flushes them as one write.
// appendFrame reports ok=false for a frame that could not be encoded
// (dropped); a non-nil error poisons the stream and kills the
// connection.
type frameWriter interface {
	appendFrame(f *frame) (ok bool, err error)
	buffered() int
	flush() (bytes int, err error)
	// release returns pooled buffers; the writer must not be used after.
	release()
}

// retainBytes caps how much buffer capacity the per-peer writer and
// per-connection reader keep between frames: one near-MaxFrameBytes
// message must not pin tens of megabytes per peer for the lifetime of a
// connection that otherwise carries tiny soft-state traffic.
const retainBytes = 1 << 20

// shrink returns the buffer emptied, dropping it entirely when its
// high-water capacity exceeds retainBytes.
func shrink(buf []byte) []byte {
	if cap(buf) > retainBytes {
		return nil
	}
	return buf[:0]
}

// bufPool recycles frame buffers across every connection and peer of
// the process: readers borrow one per inbound frame, writers hold one
// as their batch buffer and one as their encode scratch. Pointer-shaped
// entries keep Put allocation-free.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// getBuf borrows a pooled buffer with length n (growing it if the
// pooled capacity is short).
func getBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// putBuf returns a buffer to the pool unless its high-water capacity
// exceeds retainBytes — one giant frame must not park megabytes in the
// pool for the lifetime of the process.
func putBuf(bp *[]byte) {
	if cap(*bp) > retainBytes {
		return
	}
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// binaryWriter frames with the wire codec: uvarint payload length, then
// sender address, then the tagged message. Its batch buffer and encode
// scratch come from bufPool, so short-lived peers do not each grow
// their own buffers from zero; every frame is encoded into the reused
// scratch — there is no intermediate Marshal allocation.
type binaryWriter struct {
	conn     net.Conn
	max      int
	bufp     *[]byte // pooled batch buffer
	scratchp *[]byte // pooled per-frame encode scratch
}

func newBinaryWriter(conn net.Conn, max int) *binaryWriter {
	return &binaryWriter{conn: conn, max: max, bufp: getBuf(0), scratchp: getBuf(0)}
}

func (w *binaryWriter) appendFrame(f *frame) (bool, error) {
	e := wire.NewEncoder((*w.scratchp)[:0])
	e.Addr(f.From)
	e.Message(f.Msg)
	payload := e.Bytes()
	*w.scratchp = shrink(payload) // recycle the buffer for the next frame
	if e.Err() != nil {
		return false, nil // unencodable message: drop the frame, keep the stream
	}
	if len(payload) > w.max {
		return false, nil // oversized: the receiver would reject it anyway
	}
	*w.bufp = binary.AppendUvarint(*w.bufp, uint64(len(payload)))
	*w.bufp = append(*w.bufp, payload...)
	return true, nil
}

func (w *binaryWriter) buffered() int { return len(*w.bufp) }

func (w *binaryWriter) flush() (int, error) {
	if len(*w.bufp) == 0 {
		return 0, nil
	}
	bytes, err := w.conn.Write(*w.bufp)
	*w.bufp = shrink(*w.bufp)
	return bytes, err
}

func (w *binaryWriter) release() {
	putBuf(w.bufp)
	putBuf(w.scratchp)
	w.bufp, w.scratchp = nil, nil
}

// gobWriter streams frames through one persistent gob encoder into a
// buffered writer; a flush per batch preserves the batching semantics.
type gobWriter struct {
	cw  *countingWriter
	bw  *bufio.Writer
	enc *gob.Encoder
	// last is cw.n at the previous flush; the delta per flush also
	// captures bytes bufio pushed out mid-batch when its buffer filled.
	last uint64
}

func newGobWriter(conn net.Conn) *gobWriter {
	cw := &countingWriter{w: conn}
	bw := bufio.NewWriter(cw)
	return &gobWriter{cw: cw, bw: bw, enc: gob.NewEncoder(bw)}
}

func (w *gobWriter) appendFrame(f *frame) (bool, error) {
	// A gob encode error may leave partial data in the stream, so it is
	// fatal to the connection — the pre-codec transport behaved the same.
	if err := w.enc.Encode(f); err != nil {
		return false, err
	}
	return true, nil
}

// buffered reports the bytes accumulated in the current batch,
// including what bufio already auto-flushed to the socket when its
// 4 KiB internal buffer filled — otherwise MaxBatchBytes could never
// trigger for gob and one batch could span the whole queue.
func (w *gobWriter) buffered() int {
	return int(w.cw.n-w.last) + w.bw.Buffered()
}

func (w *gobWriter) flush() (int, error) {
	err := w.bw.Flush()
	bytes := int(w.cw.n - w.last)
	w.last = w.cw.n
	return bytes, err
}

func (w *gobWriter) release() {} // no pooled buffers

type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

func (n *Node) newFrameWriter(conn net.Conn) frameWriter {
	if n.cfg.Codec == CodecGob {
		return newGobWriter(conn)
	}
	return newBinaryWriter(conn, n.cfg.MaxFrameBytes)
}

// writer dials the peer and drains its outbound queue into batched
// writes. On any exit it unregisters the peer and counts every frame
// still queued as a drop, so Stats reconcile.
func (n *Node) writer(to env.Addr, p *peer) {
	defer n.wg.Done()
	teardown := func() {
		n.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		if n.peers[to] == p {
			delete(n.peers, to)
		}
		n.mu.Unlock()
		close(p.dead)
		for {
			select {
			case <-p.out:
				n.drops.Add(1)
			default:
				return
			}
		}
	}
	d := net.Dialer{Timeout: 5 * time.Second}
	conn, err := d.DialContext(n.ctx, "tcp", string(to))
	if err != nil {
		teardown()
		return
	}
	n.mu.Lock()
	p.conn = conn
	n.mu.Unlock()
	select {
	case <-n.done:
		// Closed while dialing: Close() may have missed the conn.
		teardown()
		return
	default:
	}
	fw := n.newFrameWriter(conn)
	defer fw.release()
	for {
		select {
		case f := <-p.out:
			frames, fatal := n.fillBatch(fw, f, p)
			if fatal {
				// A poisoned stream (gob encode error) must not flush:
				// the batch's frames were never delivered, so they are
				// drops, and partial encoder output must not reach the
				// peer.
				n.drops.Add(uint64(frames))
				teardown()
				return
			}
			bytes, err := fw.flush()
			n.bytesSent.Add(uint64(bytes))
			if err != nil {
				// Frames of a failed batch may be partially on the wire;
				// count them all as drops — fire-and-forget either way.
				n.drops.Add(uint64(frames))
				teardown()
				return
			}
			if frames > 0 {
				n.framesSent.Add(uint64(frames))
				n.batchesSent.Add(1)
			}
		case <-n.done:
			teardown()
			return
		}
	}
}

// fillBatch encodes f and keeps draining the queue until the batch is
// full, the queue is empty (plus the optional MaxBatchDelay grace), or
// the node shuts down. It reports how many frames entered the batch and
// whether the stream was poisoned.
func (n *Node) fillBatch(fw frameWriter, f *frame, p *peer) (frames int, fatal bool) {
	appendOne := func(f *frame) bool {
		ok, err := fw.appendFrame(f)
		// Encoded (or dropped) either way, the writer held the last
		// reference to the outbound message: this is the recycle point
		// for pooled messages. The loopback self path never reaches
		// here — it delivers the pointer, and the consumer recycles.
		if rec, pooled := f.Msg.(env.Recycler); pooled {
			rec.Recycle()
		}
		if err != nil {
			// The frame that poisoned the stream is itself discarded;
			// frames already in the batch are counted by the caller.
			n.drops.Add(1)
			fatal = true
			return false
		}
		if !ok {
			n.drops.Add(1)
			return true
		}
		frames++
		return true
	}
	if !appendOne(f) || n.cfg.NoBatch {
		return frames, fatal
	}
	var deadline <-chan time.Time
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for fw.buffered() < n.cfg.MaxBatchBytes {
		select {
		case f2 := <-p.out:
			if !appendOne(f2) {
				return frames, fatal
			}
		default:
			if n.cfg.MaxBatchDelay <= 0 {
				return frames, fatal
			}
			if timer == nil {
				timer = time.NewTimer(n.cfg.MaxBatchDelay)
				deadline = timer.C
			}
			select {
			case f2 := <-p.out:
				if !appendOne(f2) {
					return frames, fatal
				}
			case <-deadline:
				return frames, fatal
			case <-n.done:
				return frames, fatal
			}
		}
	}
	return frames, fatal
}

// frameReader decodes one frame per call; any error ends the connection.
type frameReader interface {
	readFrame() (*frame, int, error)
}

type binaryReader struct {
	br  *bufio.Reader
	max int
	// dec persists across frames so its intern table accumulates the
	// connection's repeated strings (relation names, namespaces,
	// addresses) and decodes them allocation-free.
	dec wire.Decoder
}

func newBinaryReader(conn net.Conn, max int) *binaryReader {
	r := &binaryReader{br: bufio.NewReader(conn), max: max}
	r.dec.SetIntern(wire.NewIntern(0))
	return r
}

// readFrame reads and decodes one frame.
//
// Buffer ownership rule: the frame buffer is borrowed from bufPool for
// exactly the duration of this call. io.ReadFull fills it *before* any
// pool bookkeeping touches it (the previous code shrank the retained
// buffer while the frame slice still aliased it — harmless when the
// buffer was private to this connection, a corruption bug now that
// buffers are shared through a pool), and it goes back to the pool only
// after decode has detached everything it keeps: String/Value copy or
// intern, and StringBytes borrowers must wire.Detach anything retained.
// Nothing in the decoded message aliases the buffer once readFrame
// returns, so the handler downstream may run at any later time.
func (r *binaryReader) readFrame() (*frame, int, error) {
	length, err := binary.ReadUvarint(r.br)
	if err != nil {
		return nil, 0, err
	}
	if length > uint64(r.max) {
		return nil, 0, fmt.Errorf("realnet: frame of %d bytes exceeds cap %d", length, r.max)
	}
	bp := getBuf(int(length))
	defer putBuf(bp)
	buf := *bp
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, 0, err
	}
	d := &r.dec
	d.Reset(buf)
	f := &frame{From: d.Addr()}
	f.Msg = d.Message()
	if err := d.Err(); err != nil {
		return nil, 0, err
	}
	if left := d.Remaining(); left != 0 {
		// A valid message followed by garbage means the stream is
		// desynced or the sender is corrupt; delivering would mask it.
		return nil, 0, fmt.Errorf("realnet: %d trailing bytes in frame", left)
	}
	n := len(buf) + uvarintLen(length)
	return f, n, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

type gobReader struct {
	cr  *countingReader
	dec *gob.Decoder
}

type countingReader struct {
	r io.Reader
	n uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += uint64(n)
	return n, err
}

func (r *gobReader) readFrame() (*frame, int, error) {
	before := r.cr.n
	var f frame
	if err := r.dec.Decode(&f); err != nil {
		return nil, 0, err
	}
	return &f, int(r.cr.n - before), nil
}

func (n *Node) newFrameReader(conn net.Conn) frameReader {
	if n.cfg.Codec == CodecGob {
		cr := &countingReader{r: conn}
		return &gobReader{cr: cr, dec: gob.NewDecoder(bufio.NewReader(cr))}
	}
	return newBinaryReader(conn, n.cfg.MaxFrameBytes)
}

func (n *Node) accept() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		n.accepted[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.reader(conn)
	}
}

func (n *Node) reader(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	fr := n.newFrameReader(conn)
	for {
		f, bytes, err := fr.readFrame()
		if err != nil {
			// Truncated, malformed, or oversized input: drop the
			// connection. The peer re-dials; lost messages are soft
			// state.
			return
		}
		n.framesRecv.Add(1)
		n.bytesRecv.Add(uint64(bytes))
		n.Post(func() {
			if n.handler != nil {
				n.handler.HandleMessage(f.From, f.Msg)
			}
		})
	}
}

func (n *Node) loop() {
	defer n.wg.Done()
	for {
		select {
		case f := <-n.inbox:
			f()
		case <-n.done:
			// Drain whatever is already queued, then exit.
			for {
				select {
				case f := <-n.inbox:
					f()
				default:
					return
				}
			}
		}
	}
}

// Close shuts the node down: listener, connections, event loop.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.done)
		n.cancel() // abort in-flight dials
		n.ln.Close()
		n.mu.Lock()
		for _, p := range n.peers {
			if p.conn != nil {
				p.conn.Close()
			}
		}
		for c := range n.accepted {
			c.Close()
		}
		n.mu.Unlock()
	})
	n.wg.Wait()
}
