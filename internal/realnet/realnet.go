// Package realnet runs PIER nodes over real TCP sockets with
// gob-encoded frames. It implements the same env.Env contract as the
// simulator, so the node stack is byte-for-byte the code the simulator
// executes — the paper's deployment story (§5.2: "The simulator and the
// implementation use the same code base", §5.8).
//
// Each node owns one listener, one event-loop goroutine that serializes
// all node logic, and one writer goroutine per peer connection. Sends
// are fire-and-forget: connection errors and full outbound queues drop
// messages, exactly the behavior the soft-state design tolerates.
package realnet

import (
	"encoding/gob"
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"pier/internal/env"
)

// frame is the on-wire unit: the sender's address and one message.
type frame struct {
	From env.Addr
	Msg  env.Message
}

// Node implements env.Env over TCP.
type Node struct {
	addr    env.Addr
	ln      net.Listener
	inbox   chan func()
	handler env.Handler
	rng     *rand.Rand
	rngMu   sync.Mutex

	mu       sync.Mutex
	peers    map[env.Addr]*peer
	accepted map[net.Conn]bool
	done     chan struct{}
	wg       sync.WaitGroup

	closeOnce sync.Once
}

type peer struct {
	out  chan *frame
	conn net.Conn
}

// Listen starts a node listening on addr (e.g. "127.0.0.1:0"). The
// returned node's event loop runs until Close.
func Listen(addr string, seed int64) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		addr:     env.Addr(ln.Addr().String()),
		ln:       ln,
		inbox:    make(chan func(), 4096),
		rng:      rand.New(rand.NewSource(seed)),
		peers:    make(map[env.Addr]*peer),
		accepted: make(map[net.Conn]bool),
		done:     make(chan struct{}),
	}
	n.wg.Add(2)
	go n.loop()
	go n.accept()
	return n, nil
}

// SetHandler registers the message handler; call before traffic flows.
func (n *Node) SetHandler(h env.Handler) { n.handler = h }

// Addr implements env.Env.
func (n *Node) Addr() env.Addr { return n.addr }

// Now implements env.Env.
func (n *Node) Now() time.Time { return time.Now() }

// Rand implements env.Env. Unlike the simulator, callbacks can race with
// the application goroutine, so access is serialized.
func (n *Node) Rand() *rand.Rand { return n.rng }

// After implements env.Env: the callback is posted to the node's event
// loop.
func (n *Node) After(d time.Duration, f func()) env.Timer {
	t := time.AfterFunc(d, func() { n.Post(f) })
	return realTimer{t}
}

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() { t.t.Stop() }

// Post implements env.Env.
func (n *Node) Post(f func()) {
	select {
	case n.inbox <- f:
	case <-n.done:
	}
}

// Do runs f on the node's event loop and waits for it — the safe way for
// application goroutines to touch node state.
func (n *Node) Do(f func()) {
	ch := make(chan struct{})
	n.Post(func() {
		defer close(ch)
		f()
	})
	select {
	case <-ch:
	case <-n.done:
	}
}

// Send implements env.Env: fire-and-forget delivery over a lazily
// dialed, cached TCP connection.
func (n *Node) Send(to env.Addr, m env.Message) {
	if to == n.addr {
		// Loopback without a socket, like the simulator's 0-latency self
		// path.
		n.Post(func() {
			if n.handler != nil {
				n.handler.HandleMessage(n.addr, m)
			}
		})
		return
	}
	p, err := n.peer(to)
	if err != nil {
		return
	}
	select {
	case p.out <- &frame{From: n.addr, Msg: m}:
	default:
		// Queue full: drop, as a congested datagram network would.
	}
}

func (n *Node) peer(to env.Addr) (*peer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.peers[to]; ok {
		return p, nil
	}
	select {
	case <-n.done:
		return nil, errors.New("realnet: node closed")
	default:
	}
	conn, err := net.DialTimeout("tcp", string(to), 5*time.Second)
	if err != nil {
		return nil, err
	}
	p := &peer{out: make(chan *frame, 1024), conn: conn}
	n.peers[to] = p
	n.wg.Add(1)
	go n.writer(to, p)
	return p, nil
}

func (n *Node) writer(to env.Addr, p *peer) {
	defer n.wg.Done()
	enc := gob.NewEncoder(p.conn)
	for {
		select {
		case f := <-p.out:
			if err := enc.Encode(f); err != nil {
				p.conn.Close()
				n.mu.Lock()
				if n.peers[to] == p {
					delete(n.peers, to)
				}
				n.mu.Unlock()
				return
			}
		case <-n.done:
			p.conn.Close()
			return
		}
	}
}

func (n *Node) accept() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		n.accepted[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.reader(conn)
	}
}

func (n *Node) reader(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		n.Post(func() {
			if n.handler != nil {
				n.handler.HandleMessage(f.From, f.Msg)
			}
		})
	}
}

func (n *Node) loop() {
	defer n.wg.Done()
	for {
		select {
		case f := <-n.inbox:
			f()
		case <-n.done:
			// Drain whatever is already queued, then exit.
			for {
				select {
				case f := <-n.inbox:
					f()
				default:
					return
				}
			}
		}
	}
}

// Close shuts the node down: listener, connections, event loop.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.done)
		n.ln.Close()
		n.mu.Lock()
		for _, p := range n.peers {
			p.conn.Close()
		}
		for c := range n.accepted {
			c.Close()
		}
		n.mu.Unlock()
	})
	n.wg.Wait()
}
