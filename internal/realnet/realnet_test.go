package realnet

import (
	"encoding/gob"
	"sync"
	"testing"
	"time"

	"pier/internal/dht/can"
	"pier/internal/env"
	"pier/internal/wire"
)

type echoMsg struct{ N int }

func (m *echoMsg) WireSize() int { return 16 }

func init() {
	gob.Register(&echoMsg{})
	wire.Register(201, &echoMsg{},
		func(e *wire.Encoder, m env.Message) { e.Int(m.(*echoMsg).N) },
		func(d *wire.Decoder) env.Message { return &echoMsg{N: d.Int()} })
}

func TestFrameRoundTrip(t *testing.T) {
	a, err := Listen("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	got := make(chan int, 1)
	b.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
		if from != a.Addr() {
			t.Errorf("from = %v, want %v", from, a.Addr())
		}
		got <- m.(*echoMsg).N
	}))
	a.Send(b.Addr(), &echoMsg{N: 42})
	select {
	case n := <-got:
		if n != 42 {
			t.Fatalf("got %d", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived")
	}
}

func TestSelfSendLoopsBack(t *testing.T) {
	a, err := Listen("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	got := make(chan int, 1)
	a.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
		got <- m.(*echoMsg).N
	}))
	a.Send(a.Addr(), &echoMsg{N: 7})
	select {
	case n := <-got:
		if n != 7 {
			t.Fatalf("got %d", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("self-send never delivered")
	}
}

func TestAfterAndDo(t *testing.T) {
	a, err := Listen("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var mu sync.Mutex
	fired := false
	a.After(20*time.Millisecond, func() {
		mu.Lock()
		fired = true
		mu.Unlock()
	})
	time.Sleep(100 * time.Millisecond)
	ok := false
	a.Do(func() {
		mu.Lock()
		ok = fired
		mu.Unlock()
	})
	if !ok {
		t.Fatal("timer callback never ran on loop")
	}
	tm := a.After(10*time.Millisecond, func() { t.Error("stopped timer fired") })
	tm.Stop()
	time.Sleep(50 * time.Millisecond)
}

func TestCANJoinOverTCP(t *testing.T) {
	// The critical cross-package path: CAN protocol messages (with maps,
	// zones, nested types) must survive gob framing.
	mk := func(seed int64) (*Node, *can.Router) {
		n, err := Listen("127.0.0.1:0", seed)
		if err != nil {
			t.Fatal(err)
		}
		r := can.New(n, can.DefaultConfig())
		n.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
			r.HandleMessage(from, m)
		}))
		return n, r
	}
	n0, r0 := mk(1)
	defer n0.Close()
	n1, r1 := mk(2)
	defer n1.Close()

	n0.Do(func() { r0.Join(env.NilAddr) })
	n1.Do(func() { r1.Join(n0.Addr()) })

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ready := false
		n1.Do(func() { ready = r1.Ready() })
		if ready {
			vol := 0.0
			n0.Do(func() { vol += can.TotalVolume(r0.Zones()) })
			n1.Do(func() { vol += can.TotalVolume(r1.Zones()) })
			if vol < 0.99 || vol > 1.01 {
				t.Fatalf("zones cover %v after TCP join", vol)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("CAN join over TCP never completed")
}

func TestCloseIsIdempotentAndTerminates(t *testing.T) {
	a, err := Listen("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	b.SetHandler(env.HandlerFunc(func(env.Addr, env.Message) {}))
	a.Send(b.Addr(), &echoMsg{N: 1}) // open a connection pair
	time.Sleep(100 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		a.Close()
		a.Close() // idempotent
		b.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hangs (leaked reader/writer goroutines)")
	}
}

func TestSendToUnreachableAddressDoesNotBlock(t *testing.T) {
	a, err := Listen("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	start := time.Now()
	a.Send("127.0.0.1:1", &echoMsg{N: 1}) // port 1: refused immediately
	if time.Since(start) > 3*time.Second {
		t.Fatal("send blocked too long on unreachable peer")
	}
}
