package realnet

// Failure-path coverage for the transport's fire-and-forget semantics:
// the soft-state design tolerates dropped messages and dead connections,
// so every failure here must end in silent drops and live nodes — never
// blocked sends, panics, or delivered garbage.

import (
	"encoding/binary"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"pier/internal/env"
	"pier/internal/wire"
)

func listen(t *testing.T, cfg Config, seed int64) *Node {
	t.Helper()
	n, err := ListenConfig("127.0.0.1:0", seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

// TestPeerDropMidStream kills the receiving node while the sender keeps
// transmitting: sends must keep returning immediately and be accounted
// as drops once the connection error surfaces.
func TestPeerDropMidStream(t *testing.T) {
	a := listen(t, Config{}, 1)
	b := listen(t, Config{}, 2)
	var got atomic.Int64
	b.SetHandler(env.HandlerFunc(func(env.Addr, env.Message) { got.Add(1) }))

	a.Send(b.Addr(), &echoMsg{N: 0})
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() == 0 {
		t.Fatal("first message never arrived")
	}

	b.Close()
	start := time.Now()
	for i := 0; i < 1000; i++ {
		a.Send(b.Addr(), &echoMsg{N: i})
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("sends to a dead peer took %v", d)
	}
	// The writer tears the peer down on the first write error; later
	// sends re-dial, fail, and drop.
	deadline = time.Now().Add(5 * time.Second)
	for a.Stats().Drops == 0 && time.Now().Before(deadline) {
		a.Send(b.Addr(), &echoMsg{N: -1})
		time.Sleep(5 * time.Millisecond)
	}
	if a.Stats().Drops == 0 {
		t.Fatal("sends to a dead peer were never counted as drops")
	}
}

// TestTruncatedFrameDropsConnection feeds the node a frame whose length
// prefix promises more bytes than ever arrive: nothing may be delivered,
// the connection must die, and the node must keep serving others.
func TestTruncatedFrameDropsConnection(t *testing.T) {
	n := listen(t, Config{}, 1)
	var got atomic.Int64
	n.SetHandler(env.HandlerFunc(func(env.Addr, env.Message) { got.Add(1) }))

	conn, err := net.Dial("tcp", string(n.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Promise a 100-byte frame, deliver 3 bytes, half-close.
	frame := binary.AppendUvarint(nil, 100)
	frame = append(frame, 1, 2, 3)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	if !connClosedWithin(conn, 5*time.Second) {
		t.Fatal("node kept the connection after a truncated frame")
	}
	if got.Load() != 0 {
		t.Fatalf("truncated frame delivered %d messages", got.Load())
	}
	assertStillServing(t, n, &got)
}

// TestMalformedFrameDropsConnection sends a well-framed payload whose
// body is garbage (unknown message tag).
func TestMalformedFrameDropsConnection(t *testing.T) {
	n := listen(t, Config{}, 1)
	var got atomic.Int64
	n.SetHandler(env.HandlerFunc(func(env.Addr, env.Message) { got.Add(1) }))

	conn, err := net.Dial("tcp", string(n.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := []byte{1, 'x', 99} // addr "x", unknown tag 99
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	frame = append(frame, payload...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if !connClosedWithin(conn, 5*time.Second) {
		t.Fatal("node kept the connection after a malformed frame")
	}
	if got.Load() != 0 {
		t.Fatalf("malformed frame delivered %d messages", got.Load())
	}
	assertStillServing(t, n, &got)
}

// TestTrailingBytesInFrameDropsConnection frames a valid message plus
// trailing garbage: a desynced stream must not deliver, even when a
// prefix happens to decode.
func TestTrailingBytesInFrameDropsConnection(t *testing.T) {
	n := listen(t, Config{}, 1)
	var got atomic.Int64
	n.SetHandler(env.HandlerFunc(func(env.Addr, env.Message) { got.Add(1) }))

	conn, err := net.Dial("tcp", string(n.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	e := wire.NewEncoder(nil)
	e.Addr("x")
	e.Message(&echoMsg{N: 1})
	payload := append(e.Bytes(), 0xEE) // valid frame + one stray byte
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	frame = append(frame, payload...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if !connClosedWithin(conn, 5*time.Second) {
		t.Fatal("node kept the connection after a frame with trailing bytes")
	}
	if got.Load() != 0 {
		t.Fatalf("desynced frame delivered %d messages", got.Load())
	}
	assertStillServing(t, n, &got)
}

// TestCorruptCountDoesNotBalloonMemory frames a message whose container
// count claims far more elements than the frame carries: the decoder
// must fail on the length guard without committing large allocations,
// and the node must keep serving.
func TestCorruptCountDoesNotBalloonMemory(t *testing.T) {
	n := listen(t, Config{}, 1)
	var got atomic.Int64
	n.SetHandler(env.HandlerFunc(func(env.Addr, env.Message) { got.Add(1) }))

	conn, err := net.Dial("tcp", string(n.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	e := wire.NewEncoder(nil)
	e.Addr("x")
	e.Byte(52)           // can.neighborUpdate tag (linked via the can import)
	e.Uvarint(200 << 20) // hostile zone count, far beyond the payload
	payload := e.Bytes()
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	frame = append(frame, payload...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if !connClosedWithin(conn, 5*time.Second) {
		t.Fatal("node kept the connection after a hostile element count")
	}
	if got.Load() != 0 {
		t.Fatal("hostile frame delivered a message")
	}
	assertStillServing(t, n, &got)
}

// TestOversizedFrameRejected announces a frame beyond MaxFrameBytes:
// the node must drop the connection without buffering the body.
func TestOversizedFrameRejected(t *testing.T) {
	n := listen(t, Config{MaxFrameBytes: 1 << 10}, 1)
	var got atomic.Int64
	n.SetHandler(env.HandlerFunc(func(env.Addr, env.Message) { got.Add(1) }))

	conn, err := net.Dial("tcp", string(n.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(binary.AppendUvarint(nil, 1<<30)); err != nil {
		t.Fatal(err)
	}
	if !connClosedWithin(conn, 5*time.Second) {
		t.Fatal("node kept the connection after an oversized frame header")
	}
	if got.Load() != 0 {
		t.Fatal("oversized frame delivered a message")
	}
	assertStillServing(t, n, &got)
}

// TestReconnectAfterClose restarts the receiver on the same port: the
// sender's cached connection dies, and fresh sends must reach the
// replacement node.
func TestReconnectAfterClose(t *testing.T) {
	a := listen(t, Config{}, 1)
	b := listen(t, Config{}, 2)
	addr := b.Addr()
	var gotOld atomic.Int64
	b.SetHandler(env.HandlerFunc(func(env.Addr, env.Message) { gotOld.Add(1) }))

	a.Send(addr, &echoMsg{N: 1})
	deadline := time.Now().Add(5 * time.Second)
	for gotOld.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if gotOld.Load() == 0 {
		t.Fatal("message to original node never arrived")
	}
	b.Close()

	// Rebind the same port with a fresh node.
	var b2 *Node
	var err error
	for i := 0; i < 50; i++ {
		b2, err = Listen(string(addr), 3)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer b2.Close()
	var gotNew atomic.Int64
	b2.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) { gotNew.Add(1) }))

	// The first sends after the restart die on the stale connection;
	// fire-and-forget means we just keep renewing, like soft state does.
	deadline = time.Now().Add(10 * time.Second)
	for gotNew.Load() == 0 && time.Now().Before(deadline) {
		a.Send(addr, &echoMsg{N: 2})
		time.Sleep(10 * time.Millisecond)
	}
	if gotNew.Load() == 0 {
		t.Fatal("sender never reconnected to the restarted node")
	}
}

// TestDialFailureCountsAsDrop: a refused connection drops the queued
// message and accounts for it (asynchronously — dials happen on the
// writer goroutine, never on the Send path).
func TestDialFailureCountsAsDrop(t *testing.T) {
	a := listen(t, Config{}, 1)
	a.Send("127.0.0.1:1", &echoMsg{N: 1})
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Drops == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.Stats().Drops == 0 {
		t.Fatal("refused dial not counted as a drop")
	}
}

// TestBatchingCoalesces sends a burst and checks the writer folded many
// frames into few writes, and that the counters reconcile end-to-end.
func TestBatchingCoalesces(t *testing.T) {
	const burst = 400
	cfg := Config{MaxBatchDelay: 2 * time.Millisecond, OutboxLen: burst}
	a := listen(t, cfg, 1)
	b := listen(t, cfg, 2)
	var got atomic.Int64
	b.SetHandler(env.HandlerFunc(func(env.Addr, env.Message) { got.Add(1) }))

	for i := 0; i < burst; i++ {
		a.Send(b.Addr(), &echoMsg{N: i})
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := a.Stats()
		if got.Load()+int64(s.Drops) >= burst && s.FramesSent+s.Drops >= burst {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s := a.Stats()
	if s.FramesSent+s.Drops != burst {
		t.Fatalf("FramesSent %d + Drops %d != burst %d", s.FramesSent, s.Drops, burst)
	}
	if s.BatchesSent == 0 || s.BatchesSent >= s.FramesSent/2 {
		t.Fatalf("no coalescing: %d frames in %d batches", s.FramesSent, s.BatchesSent)
	}
	rs := b.Stats()
	if rs.FramesRecv != s.FramesSent || rs.BytesRecv != s.BytesSent {
		t.Fatalf("receiver saw %d frames / %d bytes, sender sent %d / %d",
			rs.FramesRecv, rs.BytesRecv, s.FramesSent, s.BytesSent)
	}
}

// TestUnencodableMessageDropped: a message type without a wire codec is
// dropped frame-by-frame without poisoning the connection.
func TestUnencodableMessageDropped(t *testing.T) {
	a := listen(t, Config{}, 1)
	b := listen(t, Config{}, 2)
	var got atomic.Int64
	b.SetHandler(env.HandlerFunc(func(env.Addr, env.Message) { got.Add(1) }))

	a.Send(b.Addr(), rawMsg{})        // no codec: dropped
	a.Send(b.Addr(), &echoMsg{N: 42}) // same connection still healthy
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 1 {
		t.Fatalf("got %d messages, want just the encodable one", got.Load())
	}
	if a.Stats().Drops == 0 {
		t.Fatal("unencodable message not counted as a drop")
	}
}

type rawMsg struct{}

func (rawMsg) WireSize() int { return 0 }

func connClosedWithin(conn net.Conn, d time.Duration) bool {
	conn.SetReadDeadline(time.Now().Add(d))
	_, err := conn.Read(make([]byte, 1))
	return err == io.EOF || (err != nil && !isTimeout(err))
}

func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

func assertStillServing(t *testing.T, n *Node, got *atomic.Int64) {
	t.Helper()
	peer, err := Listen("127.0.0.1:0", 9)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	before := got.Load()
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() == before && time.Now().Before(deadline) {
		peer.Send(n.Addr(), &echoMsg{N: 7})
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() == before {
		t.Fatal("node stopped serving after a bad connection")
	}
}
