package simnet

import (
	"testing"
	"time"

	"pier/internal/env"
	"pier/internal/topology"
)

func TestLossDropsDeterministically(t *testing.T) {
	run := func() (int, int64) {
		nw := New(topology.NewFullMeshInfinite(), 7)
		a, b := nw.AddNode(), nw.AddNode()
		got := collect(b)
		nw.SetLoss(0.5)
		for i := 0; i < 200; i++ {
			a.Send(b.Addr(), testMsg{n: i, size: 10})
		}
		nw.Drain()
		return len(*got), nw.Stats().LostLoss
	}
	n1, lost1 := run()
	n2, lost2 := run()
	if n1 != n2 || lost1 != lost2 {
		t.Fatalf("loss not deterministic: %d/%d delivered, %d/%d lost", n1, n2, lost1, lost2)
	}
	if n1+int(lost1) != 200 {
		t.Fatalf("delivered %d + lost %d != 200", n1, lost1)
	}
	if n1 < 50 || n1 > 150 {
		t.Fatalf("50%% loss delivered %d/200", n1)
	}
}

func TestLossNeverAppliesToSelfSends(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 7)
	a := nw.AddNode()
	got := collect(a)
	nw.SetLoss(1.0)
	for i := 0; i < 20; i++ {
		a.Send(a.Addr(), testMsg{n: i, size: 10})
	}
	nw.Drain()
	if len(*got) != 20 {
		t.Fatalf("self-sends lost under loss: %d/20 delivered", len(*got))
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a, b, c := nw.AddNode(), nw.AddNode(), nw.AddNode()
	gotB, gotC := collect(b), collect(c)

	nw.Partition([]int{b.Index()})
	a.Send(b.Addr(), testMsg{n: 1, size: 10}) // crosses the partition
	a.Send(c.Addr(), testMsg{n: 2, size: 10}) // same island (implicit 0)
	nw.Drain()
	if len(*gotB) != 0 {
		t.Fatalf("message crossed partition: %v", *gotB)
	}
	if len(*gotC) != 1 {
		t.Fatalf("same-island message lost: %v", *gotC)
	}
	if s := nw.Stats(); s.LostPartition != 1 {
		t.Fatalf("LostPartition = %d, want 1", s.LostPartition)
	}

	nw.Heal()
	a.Send(b.Addr(), testMsg{n: 3, size: 10})
	nw.Drain()
	if len(*gotB) != 1 || (*gotB)[0] != 3 {
		t.Fatalf("heal did not restore connectivity: %v", *gotB)
	}
}

func TestPartitionGroupsAreIslands(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	var envs []*NodeEnv
	for i := 0; i < 4; i++ {
		envs = append(envs, nw.AddNode())
	}
	got2 := collect(envs[2])
	got1 := collect(envs[1])
	// Islands: {0,1} and {2,3}.
	nw.Partition([]int{0, 1}, []int{2, 3})
	envs[0].Send(envs[1].Addr(), testMsg{n: 1, size: 1}) // within island
	envs[0].Send(envs[2].Addr(), testMsg{n: 2, size: 1}) // across
	envs[3].Send(envs[2].Addr(), testMsg{n: 3, size: 1}) // within island
	nw.Drain()
	if len(*got1) != 1 || len(*got2) != 1 || (*got2)[0] != 3 {
		t.Fatalf("island semantics wrong: got1=%v got2=%v", *got1, *got2)
	}
}

func TestLinkFaultOverridesGlobal(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a, b := nw.AddNode(), nw.AddNode()
	got := collect(b)
	nw.SetLoss(1.0)
	nw.SetLinkFault(a.Index(), b.Index(), 0, 0) // reliable link under global loss
	for i := 0; i < 10; i++ {
		a.Send(b.Addr(), testMsg{n: i, size: 1})
	}
	nw.Drain()
	if len(*got) != 10 {
		t.Fatalf("link override ignored: %d/10 delivered", len(*got))
	}
	nw.ClearLinkFault(a.Index(), b.Index())
	a.Send(b.Addr(), testMsg{n: 99, size: 1})
	nw.Drain()
	if len(*got) != 10 {
		t.Fatalf("cleared override still in effect: %d delivered", len(*got))
	}
}

func TestExtraDelayShiftsDelivery(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a, b := nw.AddNode(), nw.AddNode()
	var at time.Time
	b.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) { at = nw.Now() }))
	nw.SetExtraDelay(400 * time.Millisecond)
	a.Send(b.Addr(), testMsg{n: 1, size: 10})
	nw.Drain()
	if want := Epoch.Add(500 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("delivered at %v, want %v (100ms latency + 400ms extra)", at, want)
	}
}

// Regression for the Kill audit: killing a node must reclaim its queued
// timers and in-flight messages from the event heap, zero its
// inbound-stats slot, and release its handler so the node stack can be
// collected.
func TestKillReclaimsPendingEventsAndStats(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a, b := nw.AddNode(), nw.AddNode()
	collect(b)

	// Inbound traffic before the kill occupies b's stats slot.
	a.Send(b.Addr(), testMsg{n: 0, size: 500})
	nw.Drain()
	if nw.Stats().InboundByNode[b.Index()] != 500 {
		t.Fatal("setup: no inbound bytes recorded")
	}

	// Queue state owned by b: periodic timers and an in-flight message.
	fired := 0
	for i := 0; i < 8; i++ {
		b.After(time.Duration(i+1)*time.Second, func() { fired++ })
	}
	a.Send(b.Addr(), testMsg{n: 1, size: 10})
	if nw.Pending() == 0 {
		t.Fatal("setup: no pending events")
	}

	nw.Kill(b.Index())
	if nw.Pending() != 0 {
		t.Fatalf("Kill left %d events in the heap", nw.Pending())
	}
	s := nw.Stats()
	if s.Dropped != 1 {
		t.Fatalf("in-flight message not counted dropped: Dropped=%d", s.Dropped)
	}
	if s.InboundByNode[b.Index()] != 0 {
		t.Fatalf("inbound slot not reclaimed: %d", s.InboundByNode[b.Index()])
	}
	if b.handler != nil {
		t.Fatal("handler not released on Kill")
	}
	nw.Drain()
	if fired != 0 {
		t.Fatalf("%d timers of the killed node fired", fired)
	}
	if s := nw.Stats(); s.DeliveredToDead != 0 {
		t.Fatalf("DeliveredToDead = %d, want 0", s.DeliveredToDead)
	}

	// Sends to the dead node drop eagerly without queue growth.
	a.Send(b.Addr(), testMsg{n: 2, size: 10})
	if nw.Pending() != 0 {
		t.Fatal("send to dead node enqueued an event")
	}
	if s := nw.Stats(); s.Dropped != 2 {
		t.Fatalf("eager drop not counted: Dropped=%d", s.Dropped)
	}

	// Kill is idempotent and survivors keep working.
	nw.Kill(b.Index())
	gotA := collect(a)
	b2 := nw.AddNode()
	collect(b2)
	b2.Send(a.Addr(), testMsg{n: 9, size: 10})
	nw.Drain()
	if len(*gotA) != 1 || (*gotA)[0] != 9 {
		t.Fatalf("survivor traffic broken after kill: %v", *gotA)
	}
}

func TestKillInterleavedWithTrafficKeepsHeapConsistent(t *testing.T) {
	// Heap rebuild under load: kill nodes while many events are queued
	// and verify pop order stays monotonic (Step panics on time going
	// backwards) and all remaining events fire.
	nw := New(topology.NewFullMesh(), 3)
	var envs []*NodeEnv
	for i := 0; i < 8; i++ {
		envs = append(envs, nw.AddNode())
	}
	delivered := 0
	for _, e := range envs {
		e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) { delivered++ }))
	}
	for round := 0; round < 20; round++ {
		for i, e := range envs {
			e.Send(envs[(i+1)%len(envs)].Addr(), testMsg{n: round, size: 100})
			e.Send(envs[(i+3)%len(envs)].Addr(), testMsg{n: round, size: 100})
		}
	}
	nw.Kill(2)
	nw.RunFor(50 * time.Millisecond)
	nw.Kill(5)
	nw.Kill(7)
	nw.Drain()
	s := nw.Stats()
	if got := int64(delivered); got != s.Messages {
		t.Fatalf("delivered %d != Messages %d", delivered, s.Messages)
	}
	if s.Messages+s.Dropped != 8*2*20 {
		t.Fatalf("messages %d + dropped %d != sent %d", s.Messages, s.Dropped, 8*2*20)
	}
}
