package simnet

import (
	"testing"
	"time"

	"pier/internal/env"
	"pier/internal/topology"
)

type testMsg struct {
	n    int
	size int
}

func (m testMsg) WireSize() int { return m.size }

// collect registers a handler that appends received payloads.
func collect(n *NodeEnv) *[]int {
	var got []int
	n.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
		got = append(got, m.(testMsg).n)
	}))
	return &got
}

func TestLatencyOnlyDelivery(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a, b := nw.AddNode(), nw.AddNode()
	got := collect(b)
	var at time.Time
	b.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
		*got = append(*got, m.(testMsg).n)
		at = nw.Now()
	}))
	a.Send(b.Addr(), testMsg{n: 7, size: 1000})
	nw.Drain()
	if len(*got) != 1 || (*got)[0] != 7 {
		t.Fatalf("got %v, want [7]", *got)
	}
	if want := Epoch.Add(100 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 10 Mbps inbound: a 1.25 MB message serializes in exactly 1 s.
	nw := New(topology.NewFullMesh(), 1)
	a, b := nw.AddNode(), nw.AddNode()
	var times []time.Duration
	b.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
		times = append(times, nw.Now().Sub(Epoch))
	}))
	a.Send(b.Addr(), testMsg{size: 1250000})
	a.Send(b.Addr(), testMsg{size: 1250000})
	nw.Drain()
	if len(times) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(times))
	}
	if want := 1100 * time.Millisecond; times[0] != want {
		t.Errorf("first delivery at %v, want %v", times[0], want)
	}
	// Second message queues behind the first on the inbound link.
	if want := 2100 * time.Millisecond; times[1] != want {
		t.Errorf("second delivery at %v, want %v", times[1], want)
	}
}

func TestSendToDeadNodeDropped(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a, b := nw.AddNode(), nw.AddNode()
	got := collect(b)
	nw.Kill(b.Index())
	a.Send(b.Addr(), testMsg{n: 1, size: 10})
	nw.Drain()
	if len(*got) != 0 {
		t.Fatalf("dead node received %v", *got)
	}
	if s := nw.Stats(); s.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped)
	}
}

func TestDeadNodeTimersAndSendsSuppressed(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a, b := nw.AddNode(), nw.AddNode()
	got := collect(b)
	fired := false
	a.After(time.Second, func() { fired = true })
	nw.Kill(a.Index())
	a.Send(b.Addr(), testMsg{n: 1, size: 10})
	nw.Drain()
	if fired {
		t.Error("timer fired on dead node")
	}
	if len(*got) != 0 {
		t.Errorf("dead node's send was delivered: %v", *got)
	}
}

func TestTimerOrderingAndCancel(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a := nw.AddNode()
	var order []int
	a.After(2*time.Second, func() { order = append(order, 2) })
	a.After(1*time.Second, func() { order = append(order, 1) })
	tm := a.After(1500*time.Millisecond, func() { order = append(order, 99) })
	tm.Stop()
	a.After(1*time.Second, func() { order = append(order, 11) }) // FIFO at equal times
	nw.Drain()
	if len(order) != 3 || order[0] != 1 || order[1] != 11 || order[2] != 2 {
		t.Fatalf("order = %v, want [1 11 2]", order)
	}
}

func TestEverySchedulesPeriodically(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a := nw.AddNode()
	count := 0
	stop := env.Every(a, time.Second, func() { count++ })
	nw.RunFor(3500 * time.Millisecond)
	stop()
	nw.Drain()
	if count != 3 {
		t.Fatalf("periodic fired %d times, want 3", count)
	}
}

func TestStatsAccounting(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a, b := nw.AddNode(), nw.AddNode()
	collect(b)
	a.Send(b.Addr(), testMsg{size: 100})
	a.Send(b.Addr(), testMsg{size: 50})
	nw.Drain()
	s := nw.Stats()
	if s.Messages != 2 || s.Bytes != 150 {
		t.Fatalf("stats = %+v, want 2 msgs / 150 bytes", s)
	}
	if s.InboundByNode[b.Index()] != 150 || s.MaxInbound() != 150 {
		t.Fatalf("per-node inbound wrong: %+v", s.InboundByNode)
	}
	nw.ResetStats()
	if s := nw.Stats(); s.Bytes != 0 || s.MaxInbound() != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		nw := New(topology.NewFullMesh(), 42)
		a, b := nw.AddNode(), nw.AddNode()
		var got []int
		b.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
			got = append(got, m.(testMsg).n)
		}))
		for i := 0; i < 20; i++ {
			n := a.Rand().Intn(1000)
			a.Send(b.Addr(), testMsg{n: n, size: 64 + n})
		}
		nw.Drain()
		return got
	}
	x, y := run(), run()
	if len(x) != 20 || len(y) != 20 {
		t.Fatalf("lengths %d/%d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, x[i], y[i])
		}
	}
}

func TestPostRunsInOrderAtCurrentTime(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a := nw.AddNode()
	var order []int
	a.Post(func() { order = append(order, 1) })
	a.Post(func() { order = append(order, 2) })
	nw.Drain()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	if !nw.Now().Equal(Epoch) {
		t.Fatalf("time advanced to %v during Post", nw.Now())
	}
}

func TestRunDeadlineStopsBeforeEvent(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a := nw.AddNode()
	fired := false
	a.After(10*time.Second, func() { fired = true })
	nw.RunFor(5 * time.Second)
	if fired {
		t.Fatal("event past deadline fired")
	}
	if nw.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", nw.Pending())
	}
	nw.Drain()
	if !fired {
		t.Fatal("event lost")
	}
}
