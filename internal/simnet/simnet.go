// Package simnet is a discrete-event network simulator. It implements
// env.Env for thousands of in-process PIER nodes with a shared virtual
// clock, pairwise propagation latency from a topology model, and FIFO
// serialization of each message at the receiver's inbound access link —
// exactly the simplifications the paper's simulator makes (§5.2: the
// simulator "ignor[es] the cross-traffic in the network and the CPU and
// memory utilizations"; congestion occurs at the last hop).
//
// All node logic runs on the caller's goroutine inside Step/Run, so a
// seeded simulation is fully deterministic.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"pier/internal/env"
	"pier/internal/topology"
)

// Epoch is the virtual time at which every simulation starts.
var Epoch = time.Unix(0, 0).UTC()

// Network is a simulated network of nodes.
type Network struct {
	topo  topology.Topology
	seed  int64
	now   time.Time
	seq   uint64
	queue eventHeap
	nodes []*NodeEnv

	stats Stats
}

// Stats aggregates traffic over the lifetime of the network (or since the
// last ResetStats). Bytes are counted once per delivered message, at the
// receiver — multi-hop overlay routes therefore count each hop, matching
// the paper's "aggregate network traffic" metric (Figure 4).
type Stats struct {
	Messages       int64
	Bytes          int64
	Dropped        int64 // messages addressed to failed nodes
	InboundByNode  []int64
	MaxInboundNode int
}

// MaxInbound returns the largest per-node inbound byte count, the paper's
// "maximum inbound traffic at a node" metric (§5).
func (s *Stats) MaxInbound() int64 {
	var max int64
	for _, b := range s.InboundByNode {
		if b > max {
			max = b
		}
	}
	return max
}

// New creates an empty simulated network over the given topology. The
// seed drives every random choice made by nodes on this network.
func New(topo topology.Topology, seed int64) *Network {
	return &Network{topo: topo, seed: seed, now: Epoch}
}

// Now returns the current virtual time.
func (nw *Network) Now() time.Time { return nw.now }

// Len returns the number of nodes ever added (including failed ones).
func (nw *Network) Len() int { return len(nw.nodes) }

// AddNode creates a new node environment. The node starts alive with no
// handler; the caller builds the node stack against the returned env and
// then calls SetHandler.
func (nw *Network) AddNode() *NodeEnv {
	idx := len(nw.nodes)
	n := &NodeEnv{
		nw:    nw,
		index: idx,
		addr:  env.Addr(fmt.Sprintf("sim:%d", idx)),
		alive: true,
		rng:   rand.New(rand.NewSource(nw.seed ^ (0x5851f42d4c957f2d * int64(idx+1)))),
	}
	nw.nodes = append(nw.nodes, n)
	nw.stats.InboundByNode = append(nw.stats.InboundByNode, 0)
	return n
}

// Node returns the environment of node i.
func (nw *Network) Node(i int) *NodeEnv { return nw.nodes[i] }

// Kill marks node i failed: its pending timers never fire, messages to it
// are dropped silently (§5.6), and its sends are discarded.
func (nw *Network) Kill(i int) { nw.nodes[i].alive = false }

// Alive reports whether node i is up.
func (nw *Network) Alive(i int) bool { return nw.nodes[i].alive }

// Stats returns a snapshot of the traffic counters.
func (nw *Network) Stats() Stats {
	s := nw.stats
	s.InboundByNode = append([]int64(nil), nw.stats.InboundByNode...)
	return s
}

// ResetStats zeroes the traffic counters (node liveness is untouched).
func (nw *Network) ResetStats() {
	for i := range nw.stats.InboundByNode {
		nw.stats.InboundByNode[i] = 0
	}
	nw.stats.Messages, nw.stats.Bytes, nw.stats.Dropped = 0, 0, 0
}

// Step processes the next event. It returns false when the queue is
// empty.
func (nw *Network) Step() bool {
	for len(nw.queue) > 0 {
		ev := heap.Pop(&nw.queue).(*event)
		if ev.canceled {
			continue
		}
		if ev.at.Before(nw.now) {
			panic("simnet: time went backwards")
		}
		nw.now = ev.at
		nw.dispatch(ev)
		return true
	}
	return false
}

// Run processes events until the queue is empty or virtual time would
// exceed the deadline, then advances the virtual clock to the deadline
// (idle time passes too). It returns the number of events processed.
func (nw *Network) Run(deadline time.Time) int {
	n := 0
	for len(nw.queue) > 0 {
		if nw.queue[0].at.After(deadline) {
			break
		}
		if nw.Step() {
			n++
		}
	}
	if nw.now.Before(deadline) {
		nw.now = deadline
	}
	return n
}

// RunFor runs for d of virtual time from now.
func (nw *Network) RunFor(d time.Duration) int { return nw.Run(nw.now.Add(d)) }

// RunWhile processes events until the queue empties, the deadline passes,
// or cont() returns false (checked after every event). Unlike Run it
// leaves the clock at the last processed event when stopped early.
func (nw *Network) RunWhile(deadline time.Time, cont func() bool) int {
	n := 0
	for len(nw.queue) > 0 && cont() {
		if nw.queue[0].at.After(deadline) {
			break
		}
		if nw.Step() {
			n++
		}
	}
	return n
}

// Drain runs until the event queue is completely empty. Periodic node
// activities (keepalives, renewals) must be stopped first or Drain will
// not terminate; experiments normally use Run with a deadline instead.
func (nw *Network) Drain() int {
	n := 0
	for nw.Step() {
		n++
	}
	return n
}

// Pending returns the number of queued events (including canceled
// placeholders).
func (nw *Network) Pending() int { return len(nw.queue) }

func (nw *Network) dispatch(ev *event) {
	node := nw.nodes[ev.node]
	if !node.alive {
		if ev.msg != nil {
			nw.stats.Dropped++
		}
		return
	}
	if ev.fn != nil {
		ev.fn()
		return
	}
	nw.stats.Messages++
	nw.stats.Bytes += int64(ev.size)
	nw.stats.InboundByNode[ev.node] += int64(ev.size)
	if node.handler != nil {
		node.handler.HandleMessage(ev.from, ev.msg)
	}
}

func (nw *Network) schedule(at time.Time, node int, fn func(), from env.Addr, msg env.Message, size int) *event {
	ev := &event{at: at, seq: nw.seq, node: node, fn: fn, from: from, msg: msg, size: size}
	nw.seq++
	heap.Push(&nw.queue, ev)
	return ev
}

// event is either a callback (fn != nil) or a message delivery.
type event struct {
	at       time.Time
	seq      uint64
	node     int
	fn       func()
	from     env.Addr
	msg      env.Message
	size     int
	canceled bool
	index    int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
