// Package simnet is a discrete-event network simulator. It implements
// env.Env for thousands of in-process PIER nodes with a shared virtual
// clock, pairwise propagation latency from a topology model, and FIFO
// serialization of each message at the receiver's inbound access link —
// exactly the simplifications the paper's simulator makes (§5.2: the
// simulator "ignor[es] the cross-traffic in the network and the CPU and
// memory utilizations"; congestion occurs at the last hop).
//
// All node logic runs on the caller's goroutine inside Step/Run, so a
// seeded simulation is fully deterministic — including the fault layer:
// link loss, extra delay, and partitions (SetLoss, SetLinkFault,
// Partition) draw from a dedicated RNG derived from the network seed,
// so a chaos scenario replays event-for-event from its seed.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"pier/internal/env"
	"pier/internal/topology"
)

// Epoch is the virtual time at which every simulation starts.
var Epoch = time.Unix(0, 0).UTC()

// Network is a simulated network of nodes.
type Network struct {
	topo  topology.Topology
	seed  int64
	now   time.Time
	seq   uint64
	queue eventHeap
	nodes []*NodeEnv

	// Fault state: configured loss probability and extra delay (global
	// and per directed link), the current partition assignment, and the
	// dedicated fault RNG. The RNG is consumed only by sends a loss rule
	// applies to, so fault-free simulations reproduce pre-fault traces.
	faultRng  *rand.Rand
	loss      float64
	delay     time.Duration
	linkLoss  map[linkKey]float64
	linkDelay map[linkKey]time.Duration
	island    []int // partition island per node; all zero = no partition

	stats Stats
}

// linkKey identifies a directed src→dst link for per-link fault rules.
type linkKey struct{ src, dst int }

// Stats aggregates traffic over the lifetime of the network (or since the
// last ResetStats). Bytes are counted once per delivered message, at the
// receiver — multi-hop overlay routes therefore count each hop, matching
// the paper's "aggregate network traffic" metric (Figure 4).
type Stats struct {
	Messages int64
	Bytes    int64
	Dropped  int64 // messages addressed to failed nodes
	// LostLoss and LostPartition count messages discarded by the fault
	// layer: random link loss and partition rules respectively.
	LostLoss      int64
	LostPartition int64
	// DeliveredToDead counts deliveries dispatched to a node that was
	// dead at delivery time. Kill purges the dead node's pending events
	// and Send drops eagerly, so this must stay zero; the chaos
	// harness's no-delivery-to-dead invariant asserts on it.
	DeliveredToDead int64
	InboundByNode   []int64
}

// MaxInbound returns the largest per-node inbound byte count, the paper's
// "maximum inbound traffic at a node" metric (§5).
func (s *Stats) MaxInbound() int64 {
	var max int64
	for _, b := range s.InboundByNode {
		if b > max {
			max = b
		}
	}
	return max
}

// New creates an empty simulated network over the given topology. The
// seed drives every random choice made by nodes on this network,
// including the fault layer's loss rolls.
func New(topo topology.Topology, seed int64) *Network {
	return &Network{
		topo:     topo,
		seed:     seed,
		now:      Epoch,
		faultRng: rand.New(rand.NewSource(seed ^ 0x6a09e667f3bcc908)),
	}
}

// Now returns the current virtual time.
func (nw *Network) Now() time.Time { return nw.now }

// Len returns the number of nodes ever added (including failed ones).
func (nw *Network) Len() int { return len(nw.nodes) }

// AddNode creates a new node environment. The node starts alive with no
// handler; the caller builds the node stack against the returned env and
// then calls SetHandler.
func (nw *Network) AddNode() *NodeEnv {
	idx := len(nw.nodes)
	n := &NodeEnv{
		nw:    nw,
		index: idx,
		addr:  env.Addr(fmt.Sprintf("sim:%d", idx)),
		alive: true,
		rng:   rand.New(rand.NewSource(nw.seed ^ (0x5851f42d4c957f2d * int64(idx+1)))),
	}
	nw.nodes = append(nw.nodes, n)
	nw.stats.InboundByNode = append(nw.stats.InboundByNode, 0)
	nw.island = append(nw.island, 0)
	return n
}

// Node returns the environment of node i.
func (nw *Network) Node(i int) *NodeEnv { return nw.nodes[i] }

// Kill marks node i failed: messages to it are dropped (§5.6) and its
// sends are discarded. The node's pending events — timers as well as
// in-flight messages addressed to it — are reclaimed from the event
// queue immediately (in-flight messages count as Dropped), its handler
// reference is released so the node stack can be collected, and its
// inbound-stats slot is zeroed so churned-out nodes do not linger in
// MaxInbound. Kill is idempotent.
func (nw *Network) Kill(i int) {
	n := nw.nodes[i]
	if !n.alive {
		return
	}
	n.alive = false
	n.handler = nil
	n.linkFreeAt = time.Time{}
	nw.stats.InboundByNode[i] = 0
	nw.purgeEvents(i)
}

// purgeEvents removes every queued event belonging to node i, counting
// in-flight message deliveries as Dropped. The heap is rebuilt; pop
// order stays deterministic because (at, seq) totally orders events.
func (nw *Network) purgeEvents(i int) {
	keep := nw.queue[:0]
	for _, ev := range nw.queue {
		if ev.node == i {
			if ev.msg != nil && !ev.canceled {
				nw.stats.Dropped++
			}
			continue
		}
		keep = append(keep, ev)
	}
	for j := len(keep); j < len(nw.queue); j++ {
		nw.queue[j] = nil
	}
	nw.queue = keep
	heap.Init(&nw.queue)
}

// Alive reports whether node i is up.
func (nw *Network) Alive(i int) bool { return nw.nodes[i].alive }

// SetLoss sets the global probability in [0, 1] that any inter-node
// message is silently lost in transit. Self-sends are never lost.
func (nw *Network) SetLoss(p float64) { nw.loss = p }

// SetExtraDelay adds d to the propagation latency of every inter-node
// message (e.g. a congested backbone during a fault window).
func (nw *Network) SetExtraDelay(d time.Duration) { nw.delay = d }

// SetLinkFault overrides the loss probability and extra delay of the
// directed link src→dst, replacing the global rules on that link —
// loss 0 makes the link reliable even under global loss. Use
// ClearLinkFault to restore the global rules.
func (nw *Network) SetLinkFault(src, dst int, loss float64, extraDelay time.Duration) {
	k := linkKey{src, dst}
	if nw.linkLoss == nil {
		nw.linkLoss = make(map[linkKey]float64)
		nw.linkDelay = make(map[linkKey]time.Duration)
	}
	nw.linkLoss[k] = loss
	nw.linkDelay[k] = extraDelay
}

// ClearLinkFault removes the src→dst override; the global loss and
// delay rules apply to the link again.
func (nw *Network) ClearLinkFault(src, dst int) {
	delete(nw.linkLoss, linkKey{src, dst})
	delete(nw.linkDelay, linkKey{src, dst})
}

// Partition splits the network into islands: each listed group becomes
// one island and every node not listed stays in the implicit island 0.
// Messages between different islands are dropped (counted as
// LostPartition) until Heal. A node listed twice lands in the last
// group naming it. Nodes added after Partition join island 0.
func (nw *Network) Partition(groups ...[]int) {
	for i := range nw.island {
		nw.island[i] = 0
	}
	for g, members := range groups {
		for _, i := range members {
			if i >= 0 && i < len(nw.island) {
				nw.island[i] = g + 1
			}
		}
	}
}

// Heal removes the current partition: all nodes rejoin one island.
func (nw *Network) Heal() {
	for i := range nw.island {
		nw.island[i] = 0
	}
}

// Partitioned reports whether src→dst crosses the current partition.
func (nw *Network) Partitioned(src, dst int) bool {
	return nw.island[src] != nw.island[dst]
}

// linkFault resolves the effective loss probability and extra delay for
// one directed send.
func (nw *Network) linkFault(src, dst int) (loss float64, delay time.Duration) {
	loss, delay = nw.loss, nw.delay
	if p, ok := nw.linkLoss[linkKey{src, dst}]; ok {
		loss = p
	}
	if d, ok := nw.linkDelay[linkKey{src, dst}]; ok {
		delay = d
	}
	return loss, delay
}

// Stats returns a snapshot of the traffic counters.
func (nw *Network) Stats() Stats {
	s := nw.stats
	s.InboundByNode = append([]int64(nil), nw.stats.InboundByNode...)
	return s
}

// ResetStats zeroes the traffic counters (node liveness is untouched).
func (nw *Network) ResetStats() {
	for i := range nw.stats.InboundByNode {
		nw.stats.InboundByNode[i] = 0
	}
	nw.stats.Messages, nw.stats.Bytes, nw.stats.Dropped = 0, 0, 0
	nw.stats.LostLoss, nw.stats.LostPartition, nw.stats.DeliveredToDead = 0, 0, 0
}

// Step processes the next event. It returns false when the queue is
// empty.
func (nw *Network) Step() bool {
	for len(nw.queue) > 0 {
		ev := heap.Pop(&nw.queue).(*event)
		if ev.canceled {
			continue
		}
		if ev.at.Before(nw.now) {
			panic("simnet: time went backwards")
		}
		nw.now = ev.at
		nw.dispatch(ev)
		return true
	}
	return false
}

// Run processes events until the queue is empty or virtual time would
// exceed the deadline, then advances the virtual clock to the deadline
// (idle time passes too). It returns the number of events processed.
func (nw *Network) Run(deadline time.Time) int {
	n := 0
	for len(nw.queue) > 0 {
		if nw.queue[0].at.After(deadline) {
			break
		}
		if nw.Step() {
			n++
		}
	}
	if nw.now.Before(deadline) {
		nw.now = deadline
	}
	return n
}

// RunFor runs for d of virtual time from now.
func (nw *Network) RunFor(d time.Duration) int { return nw.Run(nw.now.Add(d)) }

// RunWhile processes events until the queue empties, the deadline passes,
// or cont() returns false (checked after every event). Unlike Run it
// leaves the clock at the last processed event when stopped early.
func (nw *Network) RunWhile(deadline time.Time, cont func() bool) int {
	n := 0
	for len(nw.queue) > 0 && cont() {
		if nw.queue[0].at.After(deadline) {
			break
		}
		if nw.Step() {
			n++
		}
	}
	return n
}

// Drain runs until the event queue is completely empty. Periodic node
// activities (keepalives, renewals) must be stopped first or Drain will
// not terminate; experiments normally use Run with a deadline instead.
func (nw *Network) Drain() int {
	n := 0
	for nw.Step() {
		n++
	}
	return n
}

// Pending returns the number of queued events (including canceled
// placeholders).
func (nw *Network) Pending() int { return len(nw.queue) }

func (nw *Network) dispatch(ev *event) {
	node := nw.nodes[ev.node]
	if !node.alive {
		// Kill purges pending events and Send drops eagerly, so a
		// delivery to a dead node indicates a lifecycle bug; surface it
		// through the counter the chaos invariants assert on.
		if ev.msg != nil {
			nw.stats.Dropped++
			nw.stats.DeliveredToDead++
		}
		return
	}
	if ev.fn != nil {
		ev.fn()
		return
	}
	nw.stats.Messages++
	nw.stats.Bytes += int64(ev.size)
	nw.stats.InboundByNode[ev.node] += int64(ev.size)
	if node.handler != nil {
		node.handler.HandleMessage(ev.from, ev.msg)
	}
}

func (nw *Network) schedule(at time.Time, node int, fn func(), from env.Addr, msg env.Message, size int) *event {
	ev := &event{at: at, seq: nw.seq, node: node, fn: fn, from: from, msg: msg, size: size}
	nw.seq++
	heap.Push(&nw.queue, ev)
	return ev
}

// event is either a callback (fn != nil) or a message delivery.
type event struct {
	at       time.Time
	seq      uint64
	node     int
	fn       func()
	from     env.Addr
	msg      env.Message
	size     int
	canceled bool
	index    int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
