// Package simnet is a discrete-event network simulator. It implements
// env.Env for hundreds of thousands of in-process PIER nodes with a
// shared virtual clock, pairwise propagation latency from a topology
// model, and FIFO serialization of each message at the receiver's
// inbound access link — exactly the simplifications the paper's
// simulator makes (§5.2: the simulator "ignor[es] the cross-traffic in
// the network and the CPU and memory utilizations"; congestion occurs
// at the last hop).
//
// All node logic runs on the caller's goroutine inside Step/Run, so a
// seeded simulation is fully deterministic — including the fault layer:
// link loss, extra delay, and partitions (SetLoss, SetLinkFault,
// Partition) draw from a dedicated RNG derived from the network seed,
// so a chaos scenario replays event-for-event from its seed.
//
// The event queue is value-typed for scale: events live in an arena
// with a free list and are addressed by index, and the heap orders
// 24-byte references rather than pointers, so the steady send/deliver
// path allocates nothing and Kill cancels lazily instead of rebuilding
// the heap (see ARCHITECTURE.md, "Scaling the simulator").
package simnet

import (
	"math/rand"
	"time"

	"pier/internal/env"
	"pier/internal/topology"
)

// Epoch is the virtual time at which every simulation starts. Event
// times are stored internally as int64 nanoseconds relative to Epoch.
var Epoch = time.Unix(0, 0).UTC()

// Network is a simulated network of nodes.
type Network struct {
	topo topology.Topology
	seed int64
	now  int64 // virtual nanoseconds since Epoch
	seq  uint64

	// The event store: a value-typed arena addressed by index, a free
	// list of reusable slots, and a binary heap of (at, seq, idx)
	// references. live counts schedulable events; tombstones counts
	// canceled placeholders still occupying heap slots (they are
	// reclaimed at pop, or wholesale by compact once they outnumber the
	// live events).
	events     []event
	free       []int32
	heap       []eventRef
	live       int
	tombstones int

	nodes []*NodeEnv

	// Fault state: configured loss probability and extra delay (global
	// and per directed link), the current partition assignment, and the
	// dedicated fault RNG. The RNG is consumed only by sends a loss rule
	// applies to, so fault-free simulations reproduce pre-fault traces.
	faultSrc  env.SplitMix64
	faultRng  *rand.Rand
	loss      float64
	delay     time.Duration
	linkLoss  map[linkKey]float64
	linkDelay map[linkKey]time.Duration
	island    []int32 // partition island per node; all zero = no partition

	stats Stats
}

// linkKey identifies a directed src→dst link for per-link fault rules.
type linkKey struct{ src, dst int }

// Stats aggregates traffic over the lifetime of the network (or since the
// last ResetStats). Bytes are counted once per delivered message, at the
// receiver — multi-hop overlay routes therefore count each hop, matching
// the paper's "aggregate network traffic" metric (Figure 4).
type Stats struct {
	Messages int64
	Bytes    int64
	Dropped  int64 // messages addressed to failed nodes
	// LostLoss and LostPartition count messages discarded by the fault
	// layer: random link loss and partition rules respectively.
	LostLoss      int64
	LostPartition int64
	// DeliveredToDead counts deliveries dispatched to a node that was
	// dead at delivery time. Kill tombstones the dead node's pending
	// events and Send drops eagerly, so this must stay zero; the chaos
	// harness's no-delivery-to-dead invariant asserts on it.
	DeliveredToDead int64
	InboundByNode   []int64
}

// MaxInbound returns the largest per-node inbound byte count, the paper's
// "maximum inbound traffic at a node" metric (§5).
func (s *Stats) MaxInbound() int64 {
	var max int64
	for _, b := range s.InboundByNode {
		if b > max {
			max = b
		}
	}
	return max
}

// New creates an empty simulated network over the given topology. The
// seed drives every random choice made by nodes on this network,
// including the fault layer's loss rolls.
func New(topo topology.Topology, seed int64) *Network {
	nw := &Network{topo: topo, seed: seed}
	nw.faultSrc.Seed(seed ^ 0x6a09e667f3bcc908)
	nw.faultRng = rand.New(&nw.faultSrc)
	return nw
}

// Now returns the current virtual time.
func (nw *Network) Now() time.Time { return Epoch.Add(time.Duration(nw.now)) }

// Len returns the number of nodes ever added (including failed ones).
func (nw *Network) Len() int { return len(nw.nodes) }

// AddNode creates a new node environment. The node starts alive with no
// handler; the caller builds the node stack against the returned env and
// then calls SetHandler.
func (nw *Network) AddNode() *NodeEnv {
	idx := len(nw.nodes)
	n := &NodeEnv{
		nw:    nw,
		index: int32(idx),
		addr:  simAddr(idx),
		alive: true,
		gen:   1,
	}
	n.src.Seed(nw.seed ^ (0x5851f42d4c957f2d * int64(idx+1)))
	n.rng = rand.New(&n.src)
	nw.nodes = append(nw.nodes, n)
	nw.stats.InboundByNode = append(nw.stats.InboundByNode, 0)
	nw.island = append(nw.island, 0)
	return n
}

// Node returns the environment of node i.
func (nw *Network) Node(i int) *NodeEnv { return nw.nodes[i] }

// Kill marks node i failed: messages to it are dropped (§5.6) and its
// sends are discarded. The node's pending events — timers as well as
// in-flight messages addressed to it — are canceled in O(1) by bumping
// the node's generation (in-flight messages count as Dropped
// immediately, from the node's pending-message counter); the stale
// queue entries are reclaimed lazily at pop or by the next compaction.
// The handler reference is released so the node stack can be collected,
// and the inbound-stats slot is zeroed so churned-out nodes do not
// linger in MaxInbound. Kill is idempotent.
func (nw *Network) Kill(i int) {
	n := nw.nodes[i]
	if !n.alive {
		return
	}
	n.alive = false
	n.handler = nil
	n.linkFreeAt = 0
	nw.stats.InboundByNode[i] = 0
	nw.stats.Dropped += int64(n.pendingMsgs)
	nw.live -= int(n.pendingEvents)
	nw.tombstones += int(n.pendingEvents)
	n.pendingEvents, n.pendingMsgs = 0, 0
	n.gen++
	nw.maybeCompact()
}

// Alive reports whether node i is up.
func (nw *Network) Alive(i int) bool { return nw.nodes[i].alive }

// SetLoss sets the global probability in [0, 1] that any inter-node
// message is silently lost in transit. Self-sends are never lost.
func (nw *Network) SetLoss(p float64) { nw.loss = p }

// SetExtraDelay adds d to the propagation latency of every inter-node
// message (e.g. a congested backbone during a fault window).
func (nw *Network) SetExtraDelay(d time.Duration) { nw.delay = d }

// SetLinkFault overrides the loss probability and extra delay of the
// directed link src→dst, replacing the global rules on that link —
// loss 0 makes the link reliable even under global loss. Use
// ClearLinkFault to restore the global rules.
func (nw *Network) SetLinkFault(src, dst int, loss float64, extraDelay time.Duration) {
	k := linkKey{src, dst}
	if nw.linkLoss == nil {
		nw.linkLoss = make(map[linkKey]float64)
		nw.linkDelay = make(map[linkKey]time.Duration)
	}
	nw.linkLoss[k] = loss
	nw.linkDelay[k] = extraDelay
}

// ClearLinkFault removes the src→dst override; the global loss and
// delay rules apply to the link again.
func (nw *Network) ClearLinkFault(src, dst int) {
	delete(nw.linkLoss, linkKey{src, dst})
	delete(nw.linkDelay, linkKey{src, dst})
}

// Partition splits the network into islands: each listed group becomes
// one island and every node not listed stays in the implicit island 0.
// Messages between different islands are dropped (counted as
// LostPartition) until Heal. A node listed twice lands in the last
// group naming it. Nodes added after Partition join island 0.
func (nw *Network) Partition(groups ...[]int) {
	for i := range nw.island {
		nw.island[i] = 0
	}
	for g, members := range groups {
		for _, i := range members {
			if i >= 0 && i < len(nw.island) {
				nw.island[i] = int32(g + 1)
			}
		}
	}
}

// Heal removes the current partition: all nodes rejoin one island.
func (nw *Network) Heal() {
	for i := range nw.island {
		nw.island[i] = 0
	}
}

// Partitioned reports whether src→dst crosses the current partition.
func (nw *Network) Partitioned(src, dst int) bool {
	return nw.island[src] != nw.island[dst]
}

// linkFault resolves the effective loss probability and extra delay for
// one directed send.
func (nw *Network) linkFault(src, dst int) (loss float64, delay time.Duration) {
	loss, delay = nw.loss, nw.delay
	if p, ok := nw.linkLoss[linkKey{src, dst}]; ok {
		loss = p
	}
	if d, ok := nw.linkDelay[linkKey{src, dst}]; ok {
		delay = d
	}
	return loss, delay
}

// Stats returns a snapshot of the traffic counters, including a copy of
// the full per-node inbound slice. The copy is O(nodes); probes that
// only need aggregates should use Totals, MaxInbound, or InboundOf.
func (nw *Network) Stats() Stats {
	s := nw.stats
	s.InboundByNode = append([]int64(nil), nw.stats.InboundByNode...)
	return s
}

// Totals returns the aggregate traffic counters without copying the
// per-node inbound slice (InboundByNode is nil in the result). At 100k+
// nodes the full Stats copy is ~1MB per snapshot; hot probe loops use
// this instead.
func (nw *Network) Totals() Stats {
	s := nw.stats
	s.InboundByNode = nil
	return s
}

// MaxInbound returns the largest per-node inbound byte count without
// copying the slice.
func (nw *Network) MaxInbound() int64 {
	var max int64
	for _, b := range nw.stats.InboundByNode {
		if b > max {
			max = b
		}
	}
	return max
}

// InboundOf returns node i's inbound byte count.
func (nw *Network) InboundOf(i int) int64 { return nw.stats.InboundByNode[i] }

// ResetStats zeroes the traffic counters (node liveness is untouched).
func (nw *Network) ResetStats() {
	for i := range nw.stats.InboundByNode {
		nw.stats.InboundByNode[i] = 0
	}
	nw.stats.Messages, nw.stats.Bytes, nw.stats.Dropped = 0, 0, 0
	nw.stats.LostLoss, nw.stats.LostPartition, nw.stats.DeliveredToDead = 0, 0, 0
}

// Step processes the next live event. It returns false when no live
// events remain.
func (nw *Network) Step() bool {
	r, ok := nw.peek()
	if !ok {
		return false
	}
	if r.at < nw.now {
		panic("simnet: time went backwards")
	}
	nw.popHead()
	ev := &nw.events[r.idx]
	node := nw.nodes[ev.node]
	node.pendingEvents--
	nw.live--
	fn, from, msg, size, nodeIdx := ev.fn, ev.from, ev.msg, ev.size, ev.node
	if msg != nil {
		node.pendingMsgs--
	}
	// Free the slot before dispatch: handlers frequently schedule new
	// events, and the copied fields above are all dispatch needs.
	nw.freeSlot(r.idx)
	nw.now = r.at
	nw.dispatch(nodeIdx, fn, from, msg, size)
	return true
}

// Run processes events until the queue is empty or virtual time would
// exceed the deadline, then advances the virtual clock to the deadline
// (idle time passes too). It returns the number of events processed.
func (nw *Network) Run(deadline time.Time) int {
	drel := deadline.Sub(Epoch).Nanoseconds()
	n := 0
	for {
		r, ok := nw.peek()
		if !ok || r.at > drel {
			break
		}
		if nw.Step() {
			n++
		}
	}
	if nw.now < drel {
		nw.now = drel
	}
	return n
}

// RunFor runs for d of virtual time from now.
func (nw *Network) RunFor(d time.Duration) int { return nw.Run(nw.Now().Add(d)) }

// RunWhile processes events until the queue empties, the deadline passes,
// or cont() returns false (checked after every event). Unlike Run it
// leaves the clock at the last processed event when stopped early.
func (nw *Network) RunWhile(deadline time.Time, cont func() bool) int {
	drel := deadline.Sub(Epoch).Nanoseconds()
	n := 0
	for cont() {
		r, ok := nw.peek()
		if !ok || r.at > drel {
			break
		}
		if nw.Step() {
			n++
		}
	}
	return n
}

// Drain runs until the event queue is completely empty. Periodic node
// activities (keepalives, renewals) must be stopped first or Drain will
// not terminate; experiments normally use Run with a deadline instead.
func (nw *Network) Drain() int {
	n := 0
	for nw.Step() {
		n++
	}
	return n
}

// Pending returns the number of live queued events. Canceled
// placeholders awaiting lazy reclamation are not counted; the same live
// count drives compaction.
func (nw *Network) Pending() int { return nw.live }

func (nw *Network) dispatch(nodeIdx int32, fn func(), from env.Addr, msg env.Message, size int32) {
	node := nw.nodes[nodeIdx]
	if !node.alive {
		// Kill tombstones pending events and Send drops eagerly, so a
		// delivery to a dead node indicates a lifecycle bug; surface it
		// through the counter the chaos invariants assert on.
		if msg != nil {
			nw.stats.Dropped++
			nw.stats.DeliveredToDead++
		}
		return
	}
	if fn != nil {
		fn()
		return
	}
	nw.stats.Messages++
	nw.stats.Bytes += int64(size)
	nw.stats.InboundByNode[nodeIdx] += int64(size)
	if node.handler != nil {
		node.handler.HandleMessage(from, msg)
	}
}

// schedule queues an event at the given virtual time (nanoseconds since
// Epoch) and returns its arena slot and the slot's generation, which
// together form a revocable handle. The slot comes from the free list
// on the steady path, so scheduling allocates only when the queue grows
// past its high-water mark.
func (nw *Network) schedule(at int64, node int32, fn func(), from env.Addr, msg env.Message, size int32) (int32, uint32) {
	var idx int32
	if n := len(nw.free); n > 0 {
		idx = nw.free[n-1]
		nw.free = nw.free[:n-1]
	} else {
		nw.events = append(nw.events, event{})
		idx = int32(len(nw.events) - 1)
	}
	nd := nw.nodes[node]
	ev := &nw.events[idx]
	slotGen := ev.slotGen
	*ev = event{
		at: at, seq: nw.seq, fn: fn, from: from, msg: msg,
		node: node, size: size, gen: nd.gen, slotGen: slotGen,
	}
	nw.seq++
	nw.heapPush(eventRef{at: at, seq: ev.seq, idx: idx})
	nw.live++
	nd.pendingEvents++
	if msg != nil {
		nd.pendingMsgs++
	}
	return idx, slotGen
}

// stale reports whether an event has been canceled — explicitly by a
// timer Stop, or implicitly because its node's generation advanced
// (Kill) after it was scheduled.
func (nw *Network) stale(ev *event) bool {
	return ev.canceled || ev.gen != nw.nodes[ev.node].gen
}

// peek returns the reference of the earliest live event, discarding and
// reclaiming any stale entries found at the head on the way.
func (nw *Network) peek() (eventRef, bool) {
	for len(nw.heap) > 0 {
		r := nw.heap[0]
		if !nw.stale(&nw.events[r.idx]) {
			return r, true
		}
		nw.popHead()
		nw.freeSlot(r.idx)
		nw.tombstones--
	}
	return eventRef{}, false
}

// freeSlot returns an arena slot to the free list, bumping its
// generation so outstanding timer handles to the old occupant go inert,
// and dropping reference-holding fields so the collector can reclaim
// handler closures and message payloads.
func (nw *Network) freeSlot(idx int32) {
	ev := &nw.events[idx]
	ev.slotGen++
	ev.fn, ev.msg, ev.from = nil, nil, ""
	nw.free = append(nw.free, idx)
}

// maybeCompact sweeps all stale entries out of the heap once tombstones
// outnumber live events (and there are enough of them to matter). The
// sweep is O(queue) but amortized: it halves the queue at least, and
// each tombstone is swept at most once. Pop order is unchanged because
// (at, seq) totally orders events — any valid heap over the same live
// set pops the same sequence.
func (nw *Network) maybeCompact() {
	const minTombstones = 64
	if nw.tombstones < minTombstones || nw.tombstones <= nw.live {
		return
	}
	keep := nw.heap[:0]
	for _, r := range nw.heap {
		if nw.stale(&nw.events[r.idx]) {
			nw.freeSlot(r.idx)
			continue
		}
		keep = append(keep, r)
	}
	nw.heap = keep
	nw.tombstones = 0
	for i := len(nw.heap)/2 - 1; i >= 0; i-- {
		nw.siftDown(i)
	}
}

// event is either a callback (fn != nil) or a message delivery. Events
// are value-typed and live in the Network's arena; at is virtual
// nanoseconds since Epoch.
type event struct {
	at   int64
	seq  uint64
	fn   func()
	from env.Addr
	msg  env.Message
	node int32
	size int32
	// gen is the owning node's generation at schedule time; Kill
	// advances the node's generation, instantly staling every scheduled
	// event without touching the queue. slotGen counts reuses of this
	// arena slot so a held timer handle can never cancel an unrelated
	// successor. canceled marks an explicit timer Stop.
	gen      uint32
	slotGen  uint32
	canceled bool
}

// eventRef is one heap entry: the (at, seq) ordering key plus the arena
// index it refers to. 24 bytes, moved by value during sifts.
type eventRef struct {
	at  int64
	seq uint64
	idx int32
}

func refLess(a, b eventRef) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (nw *Network) heapPush(r eventRef) {
	nw.heap = append(nw.heap, r)
	nw.siftUp(len(nw.heap) - 1)
}

// popHead removes the heap head (callers have already consumed it via
// peek or nw.heap[0]).
func (nw *Network) popHead() {
	last := len(nw.heap) - 1
	nw.heap[0] = nw.heap[last]
	nw.heap = nw.heap[:last]
	if last > 0 {
		nw.siftDown(0)
	}
}

func (nw *Network) siftUp(i int) {
	h := nw.heap
	r := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !refLess(r, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = r
}

func (nw *Network) siftDown(i int) {
	h := nw.heap
	n := len(h)
	r := h[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && refLess(h[c+1], h[c]) {
			c++
		}
		if !refLess(h[c], r) {
			break
		}
		h[i] = h[c]
		i = c
	}
	h[i] = r
}
