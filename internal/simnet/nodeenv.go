package simnet

import (
	"math/rand"
	"strconv"
	"strings"
	"time"

	"pier/internal/env"
)

// NodeEnv implements env.Env for one simulated node.
type NodeEnv struct {
	nw      *Network
	index   int
	addr    env.Addr
	alive   bool
	handler env.Handler
	rng     *rand.Rand

	// linkFreeAt is when this node's inbound link finishes serializing
	// the last queued message.
	linkFreeAt time.Time
}

// SetHandler registers the node's message handler. It must be called
// before any messages are delivered.
func (n *NodeEnv) SetHandler(h env.Handler) { n.handler = h }

// Index returns the node's simulator index.
func (n *NodeEnv) Index() int { return n.index }

// Addr implements env.Env.
func (n *NodeEnv) Addr() env.Addr { return n.addr }

// Now implements env.Env.
func (n *NodeEnv) Now() time.Time { return n.nw.now }

// Rand implements env.Env.
func (n *NodeEnv) Rand() *rand.Rand { return n.rng }

// After implements env.Env.
func (n *NodeEnv) After(d time.Duration, f func()) env.Timer {
	if d < 0 {
		d = 0
	}
	ev := n.nw.schedule(n.nw.now.Add(d), n.index, f, "", nil, 0)
	return (*simTimer)(ev)
}

// Post implements env.Env.
func (n *NodeEnv) Post(f func()) {
	n.nw.schedule(n.nw.now, n.index, f, "", nil, 0)
}

// Send implements env.Env. Delivery time is
//
//	send + latency(src,dst) + any configured extra delay, then
//	FIFO-queued behind the receiver's inbound link which drains at the
//	topology's inbound bandwidth.
//
// Messages from or to failed nodes are discarded, as are messages
// crossing a partition or rolled away by a loss rule (fault layer).
func (n *NodeEnv) Send(to env.Addr, m env.Message) {
	if !n.alive {
		return
	}
	dst, ok := n.nw.lookupAddr(to)
	if !ok {
		return
	}
	if !dst.alive {
		// Dropped at send time so dead nodes accumulate no queue state.
		n.nw.stats.Dropped++
		return
	}
	var extra time.Duration
	if dst.index != n.index {
		if n.nw.Partitioned(n.index, dst.index) {
			n.nw.stats.LostPartition++
			return
		}
		loss, d := n.nw.linkFault(n.index, dst.index)
		if loss > 0 && n.nw.faultRng.Float64() < loss {
			n.nw.stats.LostLoss++
			return
		}
		extra = d
	}
	size := m.WireSize()
	arrive := n.nw.now.Add(n.nw.topo.Latency(n.index, dst.index) + extra)
	deliver := arrive
	if bw := n.nw.topo.InboundBandwidth(dst.index); bw > 0 {
		start := arrive
		if dst.linkFreeAt.After(start) {
			start = dst.linkFreeAt
		}
		deliver = start.Add(time.Duration(float64(size*8) / bw * float64(time.Second)))
		dst.linkFreeAt = deliver
	}
	n.nw.schedule(deliver, dst.index, nil, n.addr, m, size)
}

// lookupAddr resolves a "sim:<i>" address to the node.
func (nw *Network) lookupAddr(a env.Addr) (*NodeEnv, bool) {
	s := string(a)
	if !strings.HasPrefix(s, "sim:") {
		return nil, false
	}
	i, err := strconv.Atoi(s[4:])
	if err != nil || i < 0 || i >= len(nw.nodes) {
		return nil, false
	}
	return nw.nodes[i], true
}

// simTimer adapts an event to env.Timer.
type simTimer event

// Stop implements env.Timer.
func (t *simTimer) Stop() { t.canceled = true }
