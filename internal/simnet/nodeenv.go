package simnet

import (
	"math/rand"
	"strconv"
	"strings"
	"time"

	"pier/internal/env"
)

// NodeEnv implements env.Env for one simulated node. The struct is kept
// compact — at 100k+ nodes it is a dominant per-node cost — and embeds
// its 8-byte SplitMix64 RNG state directly rather than pointing at a
// ~4.9KB math/rand rngSource.
type NodeEnv struct {
	nw      *Network
	handler env.Handler
	rng     *rand.Rand
	src     env.SplitMix64
	addr    env.Addr

	// linkFreeAt is when this node's inbound link finishes serializing
	// the last queued message, in nanoseconds since Epoch.
	linkFreeAt int64

	index int32
	// gen is the node's cancellation generation: Kill advances it,
	// instantly staling every event scheduled under the old value.
	// pendingEvents and pendingMsgs count this node's queued events and
	// the subset that are message deliveries, so Kill can adjust the
	// network's live count and Dropped stat in O(1).
	gen           uint32
	pendingEvents int32
	pendingMsgs   int32
	alive         bool
}

// SetHandler registers the node's message handler. It must be called
// before any messages are delivered.
func (n *NodeEnv) SetHandler(h env.Handler) { n.handler = h }

// Index returns the node's simulator index.
func (n *NodeEnv) Index() int { return int(n.index) }

// Addr implements env.Env.
func (n *NodeEnv) Addr() env.Addr { return n.addr }

// Now implements env.Env.
func (n *NodeEnv) Now() time.Time { return n.nw.Now() }

// Rand implements env.Env.
func (n *NodeEnv) Rand() *rand.Rand { return n.rng }

// After implements env.Env.
func (n *NodeEnv) After(d time.Duration, f func()) env.Timer {
	if d < 0 {
		d = 0
	}
	idx, slotGen := n.nw.schedule(n.nw.now+int64(d), n.index, f, "", nil, 0)
	return simTimer{nw: n.nw, idx: idx, slotGen: slotGen}
}

// Post implements env.Env.
func (n *NodeEnv) Post(f func()) {
	n.nw.schedule(n.nw.now, n.index, f, "", nil, 0)
}

// Send implements env.Env. Delivery time is
//
//	send + latency(src,dst) + any configured extra delay, then
//	FIFO-queued behind the receiver's inbound link which drains at the
//	topology's inbound bandwidth.
//
// Messages from or to failed nodes are discarded, as are messages
// crossing a partition or rolled away by a loss rule (fault layer).
func (n *NodeEnv) Send(to env.Addr, m env.Message) {
	if !n.alive {
		return
	}
	nw := n.nw
	dst, ok := nw.lookupAddr(to)
	if !ok {
		return
	}
	if !dst.alive {
		// Dropped at send time so dead nodes accumulate no queue state.
		nw.stats.Dropped++
		return
	}
	var extra time.Duration
	if dst.index != n.index {
		if nw.Partitioned(int(n.index), int(dst.index)) {
			nw.stats.LostPartition++
			return
		}
		loss, d := nw.linkFault(int(n.index), int(dst.index))
		if loss > 0 && nw.faultRng.Float64() < loss {
			nw.stats.LostLoss++
			return
		}
		extra = d
	}
	size := m.WireSize()
	arrive := nw.now + int64(nw.topo.Latency(int(n.index), int(dst.index))+extra)
	deliver := arrive
	if bw := nw.topo.InboundBandwidth(int(dst.index)); bw > 0 {
		start := arrive
		if dst.linkFreeAt > start {
			start = dst.linkFreeAt
		}
		deliver = start + int64(time.Duration(float64(size*8)/bw*float64(time.Second)))
		dst.linkFreeAt = deliver
	}
	nw.schedule(deliver, dst.index, nil, n.addr, m, int32(size))
}

// simAddr renders node i's simulator address.
func simAddr(i int) env.Addr { return env.Addr("sim:" + strconv.Itoa(i)) }

// lookupAddr resolves a "sim:<i>" address to the node.
func (nw *Network) lookupAddr(a env.Addr) (*NodeEnv, bool) {
	s := string(a)
	if !strings.HasPrefix(s, "sim:") {
		return nil, false
	}
	i, err := strconv.Atoi(s[4:])
	if err != nil || i < 0 || i >= len(nw.nodes) {
		return nil, false
	}
	return nw.nodes[i], true
}

// simTimer is a revocable handle to an arena event: the slot index plus
// the slot generation observed at schedule time. Stop goes inert once
// the timer fires, is stopped again, or its node is killed — the slot
// generation (and the event's node generation) arbitrate, so a held
// handle can never cancel an unrelated event that reused the slot.
type simTimer struct {
	nw      *Network
	idx     int32
	slotGen uint32
}

// Stop implements env.Timer.
func (t simTimer) Stop() {
	nw := t.nw
	ev := &nw.events[t.idx]
	if ev.slotGen != t.slotGen || ev.canceled {
		return
	}
	node := nw.nodes[ev.node]
	if ev.gen != node.gen {
		return // node killed since scheduling; Kill already tombstoned it
	}
	ev.canceled = true
	ev.fn, ev.msg, ev.from = nil, nil, ""
	node.pendingEvents--
	nw.live--
	nw.tombstones++
	nw.maybeCompact()
}
