package simnet

import (
	"hash/fnv"
	"math/rand"
	"testing"
	"time"

	"pier/internal/env"
	"pier/internal/topology"
)

// churnFingerprint builds an n-node network, drives random multi-hop
// traffic through it while killing nodes and churning timers, and
// returns a fingerprint folding every delivery (receiver, payload,
// virtual timestamp, order) plus the final counters. Two runs from the
// same seed must produce identical fingerprints: this is the replay-
// determinism gate for the value-typed event store, exercised through
// lazy cancellation and compaction rather than around them.
func churnFingerprint(t *testing.T, seed int64, n int) uint64 {
	t.Helper()
	nw := New(topology.NewFullMeshInfinite(), seed)
	h := fnv.New64a()
	mix := func(vs ...int64) {
		for _, v := range vs {
			var b [8]byte
			for i := range b {
				b[i] = byte(v >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	for i := 0; i < n; i++ {
		nd := nw.AddNode()
		i := i
		nd.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
			msg := m.(testMsg)
			mix(int64(i), int64(msg.n), nw.Now().Sub(Epoch).Nanoseconds())
			if msg.n > 0 {
				next := int(nd.Rand().Int63n(int64(n)))
				nd.Send(nw.Node(next).Addr(), testMsg{n: msg.n - 1, size: 64})
			}
		}))
	}

	// Traffic: 2000 walkers, 16 hops each, staggered starts.
	for i := 0; i < 2000; i++ {
		src := nw.Node((i * 5003) % n)
		delay := time.Duration(i%997) * time.Millisecond
		hops := 16
		src.After(delay, func() {
			if nw.Alive(src.Index()) {
				src.Send(src.Addr(), testMsg{n: hops, size: 64})
			}
		})
	}

	// Churn driven from outside the node population, all choices drawn
	// from the network seed: 300 staggered kills, and 3000 timers on
	// random nodes of which a third are stopped immediately (tombstone
	// pressure for the lazy-cancellation path).
	ctl := rand.New(env.NewSplitMix64(seed ^ 0x1234))
	controller := nw.Node(0)
	for k := 0; k < 300; k++ {
		victim := 1 + ctl.Intn(n-1)
		controller.After(time.Duration(40+k*37)*time.Millisecond, func() {
			nw.Kill(victim)
		})
	}
	for k := 0; k < 3000; k++ {
		nd := nw.Node(ctl.Intn(n))
		tm := nd.After(time.Duration(ctl.Intn(20000))*time.Millisecond, func() {})
		if k%3 == 0 {
			tm.Stop()
		}
	}

	nw.RunFor(40 * time.Second)
	s := nw.Stats()
	mix(s.Messages, s.Bytes, s.Dropped, s.LostLoss, s.LostPartition, s.DeliveredToDead)
	mix(s.InboundByNode...)
	mix(int64(nw.Pending()))
	return h.Sum64()
}

func TestReplayFingerprintAtScaleUnderChurn(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 1000
	}
	f1 := churnFingerprint(t, 42, n)
	f2 := churnFingerprint(t, 42, n)
	if f1 != f2 {
		t.Fatalf("same seed diverged: %016x vs %016x", f1, f2)
	}
	if f3 := churnFingerprint(t, 43, n); f3 == f1 {
		t.Fatalf("different seed reproduced fingerprint %016x", f1)
	}
}

// TestKillHeavyChurnNoEventLeak hammers Kill while traffic is in
// flight, then drains: every arena slot must come back to the free
// list, nothing may linger in the heap, and no delivery may reach a
// dead node.
func TestKillHeavyChurnNoEventLeak(t *testing.T) {
	const n = 2000
	nw := New(topology.NewFullMesh(), 7)
	for i := 0; i < n; i++ {
		nd := nw.AddNode()
		nd.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
			msg := m.(testMsg)
			if msg.n > 0 {
				next := int(nd.Rand().Int63n(int64(n)))
				nd.Send(nw.Node(next).Addr(), testMsg{n: msg.n - 1, size: 200})
			}
		}))
	}
	for i := 0; i < n; i++ {
		src := nw.Node(i)
		src.After(time.Duration(i%500)*time.Millisecond, func() {
			if nw.Alive(src.Index()) {
				src.Send(src.Addr(), testMsg{n: 12, size: 200})
			}
		})
	}
	// Kill half the population in waves while the walkers bounce, from
	// a controller that is never a victim.
	ctl := rand.New(env.NewSplitMix64(99))
	controller := nw.Node(0)
	for k := 0; k < n/2; k++ {
		victim := 1 + ctl.Intn(n-1)
		controller.After(time.Duration(10+k*7)*time.Millisecond, func() {
			nw.Kill(victim)
		})
	}
	nw.Drain()

	if nw.Pending() != 0 {
		t.Fatalf("Pending = %d after Drain", nw.Pending())
	}
	if len(nw.heap) != 0 {
		t.Fatalf("%d heap entries survived Drain", len(nw.heap))
	}
	if nw.live != 0 || nw.tombstones != 0 {
		t.Fatalf("live=%d tombstones=%d after Drain", nw.live, nw.tombstones)
	}
	if got, want := len(nw.free), len(nw.events); got != want {
		t.Fatalf("event leak: %d of %d arena slots free", got, want)
	}
	if s := nw.Totals(); s.DeliveredToDead != 0 {
		t.Fatalf("DeliveredToDead = %d, want 0", s.DeliveredToDead)
	}
}

// TestKillCompactsTombstoneMajority checks the amortized compaction
// protocol: killing a node that owns the overwhelming majority of the
// queue must shrink the heap to the live population immediately, not at
// the next 10k pops.
func TestKillCompactsTombstoneMajority(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	hog, quiet := nw.AddNode(), nw.AddNode()
	for i := 0; i < 10000; i++ {
		hog.After(time.Duration(i)*time.Second, func() {})
	}
	fired := 0
	for i := 0; i < 100; i++ {
		quiet.After(time.Duration(i)*time.Second, func() { fired++ })
	}
	nw.Kill(hog.Index())
	if nw.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100 live", nw.Pending())
	}
	if len(nw.heap) != 100 || nw.tombstones != 0 {
		t.Fatalf("compaction did not run: heap=%d tombstones=%d", len(nw.heap), nw.tombstones)
	}
	nw.Drain()
	if fired != 100 {
		t.Fatalf("%d survivor timers fired, want 100", fired)
	}
}

// TestTimerHandleSurvivesSlotReuse pins the ABA guard: a handle held
// across its timer's firing must not cancel an unrelated event that
// reused the arena slot.
func TestTimerHandleSurvivesSlotReuse(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a := nw.AddNode()
	stale := a.After(time.Millisecond, func() {})
	nw.RunFor(10 * time.Millisecond) // fires; slot returns to the free list
	fired := false
	a.After(time.Millisecond, func() { fired = true }) // reuses the slot
	stale.Stop()
	nw.RunFor(10 * time.Millisecond)
	if !fired {
		t.Fatal("stale handle canceled an unrelated reused slot")
	}
}
