package simnet

import (
	"testing"
	"time"

	"pier/internal/env"
	"pier/internal/topology"
)

func TestRunWhileStopsOnPredicate(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a := nw.AddNode()
	fired := 0
	for i := 1; i <= 10; i++ {
		a.After(time.Duration(i)*time.Second, func() { fired++ })
	}
	nw.RunWhile(nw.Now().Add(time.Hour), func() bool { return fired < 3 })
	if fired != 3 {
		t.Fatalf("fired = %d, want 3 (predicate checked per event)", fired)
	}
	if nw.Pending() == 0 {
		t.Fatal("remaining events must stay queued")
	}
}

func TestDrainProcessesEverything(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a := nw.AddNode()
	fired := 0
	a.After(time.Hour, func() { fired++ })
	a.After(24*time.Hour, func() { fired++ })
	n := nw.Drain()
	if fired != 2 || n != 2 {
		t.Fatalf("drain fired %d events (returned %d)", fired, n)
	}
	if nw.Now().Sub(Epoch) != 24*time.Hour {
		t.Fatalf("clock at %v, want +24h", nw.Now().Sub(Epoch))
	}
}

func TestKillMidFlightDropsDelivery(t *testing.T) {
	nw := New(topology.NewFullMesh(), 1)
	a, b := nw.AddNode(), nw.AddNode()
	got := 0
	b.SetHandler(env.HandlerFunc(func(env.Addr, env.Message) { got++ }))
	a.Send(b.Addr(), testMsg{size: 100})
	// The message is in flight (latency 100ms); kill the receiver now.
	nw.Kill(b.Index())
	nw.Drain()
	if got != 0 {
		t.Fatal("in-flight message delivered to a node that died first")
	}
	if s := nw.Stats(); s.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped)
	}
}

func TestSendToBogusAddressIgnored(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a := nw.AddNode()
	a.Send("sim:999", testMsg{size: 1}) // out of range
	a.Send("tcp:nope", testMsg{size: 1})
	a.Send("", testMsg{size: 1})
	if nw.Drain() != 0 {
		t.Fatal("bogus sends must not enqueue events")
	}
}

func TestRunReturnsEventCount(t *testing.T) {
	nw := New(topology.NewFullMeshInfinite(), 1)
	a := nw.AddNode()
	for i := 0; i < 5; i++ {
		a.After(time.Duration(i+1)*time.Second, func() {})
	}
	if n := nw.RunFor(3 * time.Second); n != 3 {
		t.Fatalf("RunFor processed %d events, want 3", n)
	}
}
