package chaos

import (
	"os"
	"testing"
	"time"

	"pier"
)

// TestBuildScheduleDeterministic pins the schedule generator: the same
// config yields the identical event list.
func TestBuildScheduleDeterministic(t *testing.T) {
	cfg := Default(42).Norm()
	a, b := BuildSchedule(cfg), BuildSchedule(cfg)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Sorted by time.
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not time-sorted at %d", i)
		}
	}
	// The default scenario has churn, a partition window, and a burst.
	kinds := map[EventKind]int{}
	for _, ev := range a {
		kinds[ev.Kind]++
	}
	if kinds[EvCrash]+kinds[EvLeave] == 0 || kinds[EvPartitionStart] != 1 || kinds[EvLossStart] != 1 {
		t.Fatalf("unexpected event mix: %v", kinds)
	}
}

// TestScheduleWindowValidation pins the config guards: same-type
// windows must not overlap or extend past the active phase, and
// back-to-back windows must execute End before Start at the shared
// instant so they compose.
func TestScheduleWindowValidation(t *testing.T) {
	base := Config{Queries: 4, QueryEvery: time.Minute}.Norm() // 4 min active phase

	mustPanic := func(name string, cfg Config) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid schedule accepted")
				}
			}()
			BuildSchedule(cfg)
		})
	}
	overlapping := base
	overlapping.Partitions = []PartitionWindow{
		{Start: 0, Duration: 2 * time.Minute, Frac: 0.2},
		{Start: time.Minute, Duration: 2 * time.Minute, Frac: 0.2},
	}
	mustPanic("overlapping partitions", overlapping)

	pastEnd := base
	pastEnd.LossBursts = []LossBurst{{Start: 3 * time.Minute, Duration: 2 * time.Minute, Prob: 0.1}}
	mustPanic("loss burst past active phase", pastEnd)

	adjacent := base
	adjacent.Partitions = []PartitionWindow{
		{Start: 0, Duration: time.Minute, Frac: 0.2},
		{Start: time.Minute, Duration: time.Minute, Frac: 0.3},
	}
	evs := BuildSchedule(adjacent)
	var atBoundary []EventKind
	for _, ev := range evs {
		if ev.At == time.Minute {
			atBoundary = append(atBoundary, ev.Kind)
		}
	}
	if len(atBoundary) != 2 || atBoundary[0] != EvPartitionEnd || atBoundary[1] != EvPartitionStart {
		t.Fatalf("adjacent windows must run End before Start at the boundary, got %v", atBoundary)
	}
}

func TestGenerateQueriesDeterministicAndMixed(t *testing.T) {
	a, b := GenerateQueries(16, 7), GenerateQueries(16, 7)
	kinds := map[QueryKind]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs across generations", i)
		}
		kinds[a[i].Kind]++
	}
	for _, k := range []QueryKind{QSelect, QJoin, QAggregate, QContinuous} {
		if kinds[k] == 0 {
			t.Errorf("no %v queries in a 16-query mix", k)
		}
	}
	if c := GenerateQueries(16, 8); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] && c[3] == a[3] {
		t.Error("different seeds produced the same prefix")
	}
}

// TestChaosPinnedSeed is the acceptance scenario: ≥64 nodes under
// churn, one partition window, and 1% link loss, running the full
// query mix. Every invariant must hold — including the replay
// determinism check, which re-runs the faulted scenario and compares
// trace fingerprints.
func TestChaosPinnedSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run chaos scenario is slow")
	}
	rep := Run(Default(1))
	rep.Print(os.Stderr)
	for _, iv := range rep.Failed() {
		t.Errorf("invariant %s failed: %s", iv.Name, iv.Detail)
	}
	if rep.Stats.Messages == 0 || rep.Stats.LostLoss == 0 || rep.Stats.LostPartition == 0 {
		t.Errorf("scenario exercised no faults: %+v", rep.Stats)
	}
	if len(rep.PerQueryRecall) != rep.Cfg.Queries {
		t.Errorf("recall recorded for %d/%d queries", len(rep.PerQueryRecall), rep.Cfg.Queries)
	}
}

// TestChaosTracedPinnedSeed runs a pinned-seed loss/churn scenario
// with distributed tracing forced on every query. All invariants must
// hold — including bit-for-bit replay determinism, proving the tracing
// path draws no extra randomness and shifts no schedules — plus the
// tracing invariant: every accepted query leaves a finished, non-empty
// retained trace on the driver.
func TestChaosTracedPinnedSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run chaos scenario is slow")
	}
	cfg := Config{
		Nodes:         48,
		Seed:          5,
		CrashesPerMin: 3,
		GracefulFrac:  0.3,
		LossBursts:    []LossBurst{{Start: 90 * time.Second, Duration: 30 * time.Second, Prob: 0.05}},
		BaseLoss:      0.01,
		STuples:       80,
		Queries:       6,
		QueryEvery:    45 * time.Second,
		RecallFloor:   0.4,
		TraceQueries:  true,
		VerifyReplay:  true,
	}
	rep := Run(cfg)
	rep.Print(os.Stderr)
	for _, iv := range rep.Failed() {
		t.Errorf("invariant %s failed: %s", iv.Name, iv.Detail)
	}
	found := false
	for _, iv := range rep.Invariants {
		if iv.Name == "traced-queries-leave-traces" {
			found = true
		}
	}
	if !found {
		t.Error("traced scenario reported no tracing invariant")
	}
}

// TestChaosFloodPinnedSeed is the flood-pressure acceptance scenario:
// a publish flood into a few hot keys against quota-bounded nodes,
// compared to an unbounded oracle of the same seed. The quota must
// hold at every probe, the backpressure protocol must engage, the
// bounded run may only be missing results it evicted or dropped, and
// the whole schedule — deterministic throttle backoffs included —
// must replay bit-for-bit.
func TestChaosFloodPinnedSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run chaos scenario is slow")
	}
	rep := Run(DefaultFlood(1))
	rep.Print(os.Stderr)
	for _, iv := range rep.Failed() {
		t.Errorf("invariant %s failed: %s", iv.Name, iv.Detail)
	}
	names := map[string]bool{}
	for _, iv := range rep.Invariants {
		names[iv.Name] = true
	}
	for _, want := range []string{"storage-within-budget", "flood-backpressure-engaged",
		"flood-recall-vs-evicted", "replay-deterministic"} {
		if !names[want] {
			t.Errorf("flood scenario reported no %s invariant", want)
		}
	}
	f := rep.Flood
	if f == nil {
		t.Fatal("flood scenario left no flood report")
	}
	if f.Evicted == 0 || f.Throttled == 0 {
		t.Errorf("flood never pressured storage: %+v", f)
	}
	if f.OracleLive == 0 || f.Matched >= f.OracleLive {
		t.Errorf("quota did not reduce the flood result set: kept %d of %d", f.Matched, f.OracleLive)
	}
	if len(rep.PerQueryRecall) != rep.Cfg.Queries+1 {
		t.Errorf("recall recorded for %d queries, want %d (mix + flood scan)",
			len(rep.PerQueryRecall), rep.Cfg.Queries+1)
	}
}

// TestChaosChordSmoke runs a lighter scenario over the Chord overlay:
// the harness must drive both DHTs.
func TestChaosChordSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenario is slow")
	}
	cfg := Config{
		Nodes:         32,
		Seed:          3,
		DHT:           pier.Chord,
		CrashesPerMin: 2,
		GracefulFrac:  0.5,
		BaseLoss:      0.005,
		STuples:       60,
		Queries:       4,
		QueryEvery:    45 * time.Second,
		RecallFloor:   0.3,
	}
	rep := Run(cfg)
	for _, iv := range rep.Failed() {
		t.Errorf("invariant %s failed: %s", iv.Name, iv.Detail)
	}
}
