package chaos

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"pier/internal/core"
	"pier/internal/simnet"
)

// Invariant is one checked property of a chaos run.
type Invariant struct {
	Name   string
	Pass   bool
	Detail string
}

// Report is the outcome of one chaos scenario: the invariant verdicts,
// the recall against the fault-free oracle, and the deterministic
// trace fingerprint used to assert seed replayability.
type Report struct {
	Cfg        Config
	Invariants []Invariant
	// Recall is total matched results over total oracle results across
	// the recallable queries; PerQueryRecall has one entry per query
	// (NaN-free: queries with an empty oracle result count as 1).
	Recall         float64
	PerQueryRecall []float64
	// Stats is the faulted run's final simulator counters; re-running
	// the same seed must reproduce them exactly.
	Stats simnet.Stats
	// TraceHash fingerprints the faulted run: simulator counters plus
	// every query's sorted result keys. Identical seeds must produce
	// identical hashes.
	TraceHash uint64
	// Channel sums the result-channel counters (frames, tuples,
	// grants, stalls, Bloom fallbacks) across the nodes alive at the
	// end of the faulted run — informational: non-zero stalls show the
	// loss/partition schedule actually exercised credit refresh.
	Channel core.QueryStats
	// Flood summarizes the flood-pressure leg; nil unless the scenario
	// set Config.PublishFlood.
	Flood *FloodReport
}

// FloodReport summarizes a PublishFlood scenario: how much the
// quota-bounded faulted run forgot versus the unbounded oracle, and
// what the eviction and backpressure machinery did to hold the budget.
type FloodReport struct {
	// Published is the configured flood size. OracleLive is how many
	// flood results the unbounded oracle's final scan returned; Matched
	// of them also surfaced in the bounded run's scan.
	Published  int
	OracleLive int
	Matched    int
	// Evicted and Dropped count the flood namespace's quota evictions
	// and incoming-item drops summed across live nodes; Throttled and
	// Delayed count the backpressure protocol's bounces and honored
	// deferrals.
	Evicted   int64
	Dropped   int64
	Throttled int64
	Delayed   int64
	// PeakBytes is the highest per-node flood-namespace occupancy any
	// budget probe observed; Quota is the configured per-node bound.
	PeakBytes int64
	Quota     int64
}

// AllPass reports whether every invariant held.
func (r *Report) AllPass() bool {
	for _, iv := range r.Invariants {
		if !iv.Pass {
			return false
		}
	}
	return true
}

// Failed returns the invariants that did not hold.
func (r *Report) Failed() []Invariant {
	var out []Invariant
	for _, iv := range r.Invariants {
		if !iv.Pass {
			out = append(out, iv)
		}
	}
	return out
}

// Print renders the report for humans: one line per invariant, then the
// recall and the replay fingerprint.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "chaos seed=%d nodes=%d churn=%.1f/min partitions=%d loss=%.2f%%\n",
		r.Cfg.Seed, r.Cfg.Nodes, r.Cfg.CrashesPerMin, len(r.Cfg.Partitions), 100*r.Cfg.BaseLoss)
	for _, iv := range r.Invariants {
		mark := "PASS"
		if !iv.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(w, "  [%s] %-24s %s\n", mark, iv.Name, iv.Detail)
	}
	fmt.Fprintf(w, "  recall %.1f%% (floor %.1f%%)   trace %016x   msgs=%d lost=%d+%d dropped=%d\n",
		100*r.Recall, 100*r.Cfg.RecallFloor, r.TraceHash,
		r.Stats.Messages, r.Stats.LostLoss, r.Stats.LostPartition, r.Stats.Dropped)
	fmt.Fprintf(w, "  result channel: frames=%d tuples=%d grants=%d stalls=%d bloom-fallbacks=%d\n",
		r.Channel.ResultBatches, r.Channel.ResultTuples, r.Channel.CreditGrants,
		r.Channel.CreditStalls, r.Channel.BloomFallbacks)
	if f := r.Flood; f != nil {
		fmt.Fprintf(w, "  flood: %d published, kept %d of %d oracle results; evicted=%d dropped=%d throttled=%d delayed=%d peak=%d/%dB\n",
			f.Published, f.Matched, f.OracleLive, f.Evicted, f.Dropped, f.Throttled, f.Delayed, f.PeakBytes, f.Quota)
	}
}

// traceHash fingerprints a run from its simulator counters and query
// outcomes. Everything folded in is deterministic for a seed; anything
// nondeterministic anywhere in the stack shows up as a changed hash.
func traceHash(stats simnet.Stats, queries []queryOutcome) uint64 {
	h := fnv.New64a()
	add := func(vs ...int64) {
		for _, v := range vs {
			var b [8]byte
			for i := range b {
				b[i] = byte(v >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	add(stats.Messages, stats.Bytes, stats.Dropped, stats.LostLoss, stats.LostPartition, stats.DeliveredToDead)
	add(stats.InboundByNode...)
	for _, q := range queries {
		keys := make([]string, 0, len(q.keys))
		for k := range q.keys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h.Write([]byte(k))
			h.Write([]byte{0})
		}
		h.Write([]byte{0xff})
	}
	return h.Sum64()
}
