package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// EventKind classifies one fault-schedule event.
type EventKind int

// Fault events.
const (
	// EvCrash fails a random live node abruptly; a fresh identity
	// rejoins through the driver so the population stays constant.
	EvCrash EventKind = iota
	// EvLeave departs a random live node gracefully (zone and soft
	// state hand off), followed by a fresh rejoin.
	EvLeave
	// EvPartitionStart isolates a random Frac of the live population
	// into a separate island until the matching EvPartitionEnd.
	EvPartitionStart
	EvPartitionEnd
	// EvLossStart raises the global link-loss probability to Prob until
	// the matching EvLossEnd restores the scenario's base loss.
	EvLossStart
	EvLossEnd
)

func (k EventKind) String() string {
	return [...]string{"crash", "leave", "partition-start", "partition-end", "loss-start", "loss-end"}[k]
}

// Event is one scheduled fault. Times are offsets from the start of the
// active phase (after warmup).
type Event struct {
	At   time.Duration
	Kind EventKind
	Prob float64 // EvLossStart: loss probability
	Frac float64 // EvPartitionStart: fraction of nodes isolated
}

// BuildSchedule expands a Config into the deterministic, time-sorted
// fault schedule for its seed. Churn events are spaced evenly at the
// configured rate, each drawn as a crash or a graceful leave; partition
// windows and loss bursts come straight from the config. The same
// Config always yields the same schedule — replaying a seed replays
// its faults.
//
// Windows of the same fault type must not overlap: Partition replaces
// the whole island assignment and a loss burst's end restores the base
// loss, so overlapping windows would silently corrupt each other
// instead of composing. Windows must also close inside the active
// phase — a Start firing after the harness's final Heal (or an End
// swallowed by teardown) would leave a fault installed forever.
// BuildSchedule panics on such a config — a schedule that does not
// mean what it says must not run.
func BuildSchedule(cfg Config) []Event {
	type window struct{ start, dur time.Duration }
	validate := func(kind string, ws []window) {
		for i, a := range ws {
			if a.start+a.dur > cfg.Duration() {
				panic(fmt.Sprintf("chaos: %s window %v+%v extends past the active phase (%v)",
					kind, a.start, a.dur, cfg.Duration()))
			}
			for _, b := range ws[i+1:] {
				if a.start < b.start+b.dur && b.start < a.start+a.dur {
					panic(fmt.Sprintf("chaos: %s windows overlap (%v+%v and %v+%v)",
						kind, a.start, a.dur, b.start, b.dur))
				}
			}
		}
	}
	pws := make([]window, len(cfg.Partitions))
	for i, p := range cfg.Partitions {
		pws[i] = window{p.Start, p.Duration}
	}
	validate("partition", pws)
	lws := make([]window, len(cfg.LossBursts))
	for i, l := range cfg.LossBursts {
		lws[i] = window{l.Start, l.Duration}
	}
	validate("loss", lws)

	var evs []Event
	if cfg.CrashesPerMin > 0 {
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed5c4ed))
		interval := time.Duration(float64(time.Minute) / cfg.CrashesPerMin)
		for at := interval; at <= cfg.Duration(); at += interval {
			kind := EvCrash
			if rng.Float64() < cfg.GracefulFrac {
				kind = EvLeave
			}
			evs = append(evs, Event{At: at, Kind: kind})
		}
	}
	for _, pw := range cfg.Partitions {
		evs = append(evs, Event{At: pw.Start, Kind: EvPartitionStart, Frac: pw.Frac})
		evs = append(evs, Event{At: pw.Start + pw.Duration, Kind: EvPartitionEnd})
	}
	for _, lb := range cfg.LossBursts {
		evs = append(evs, Event{At: lb.Start, Kind: EvLossStart, Prob: lb.Prob})
		evs = append(evs, Event{At: lb.Start + lb.Duration, Kind: EvLossEnd})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return tiePriority(evs[i].Kind) < tiePriority(evs[j].Kind)
	})
	return evs
}

// tiePriority orders equal-time events: a window's End executes before
// the next window's Start, so back-to-back same-type windows compose
// instead of the earlier End cancelling the later Start's effect.
func tiePriority(k EventKind) int {
	switch k {
	case EvPartitionEnd:
		return 0
	case EvLossEnd:
		return 1
	case EvCrash:
		return 2
	case EvLeave:
		return 3
	case EvPartitionStart:
		return 4
	case EvLossStart:
		return 5
	}
	return 6
}
