package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"pier/internal/core"
	"pier/internal/wire"
	"pier/internal/workload"
)

// RangeIndexName is the PHT index a RangeQueries scenario creates over
// S.num2.
const RangeIndexName = "s_num2"

// FloodNS is the hot namespace a PublishFlood scenario floods.
const FloodNS = "F"

// floodHotKeys is how many distinct resource keys the flood rotates
// through — few enough that a handful of owner nodes absorb the whole
// flood and their quotas come under real pressure.
const floodHotKeys = 8

// QueryKind classifies one generated workload query.
type QueryKind int

// Generated query kinds.
const (
	// QSelect scans one table with a selection predicate.
	QSelect QueryKind = iota
	// QJoin runs the §5.1 two-table equi-join under a random strategy.
	QJoin
	// QAggregate computes grouped aggregates over one table.
	QAggregate
	// QContinuous runs a windowed continuous aggregate over arrivals
	// (renewals keep feeding it). Excluded from recall comparison —
	// per-window arrival counts legitimately differ under loss — but it
	// must still terminate cleanly.
	QContinuous
	// QRange scans one table through the Prefix Hash Tree index
	// (initiator-side trie traversal instead of a query multicast),
	// exercising index lookups, entry renewal, and split/merge healing
	// under the same faults as everything else. Requires the scenario
	// to have created the index (Config.RangeQueries).
	QRange
	// QFlood is the flood scenario's final select-all scan over the
	// flood namespace. Excluded from the recall floor — a quota-bounded
	// run legitimately forgets flood items — the flood-recall-vs-evicted
	// invariant bounds the forgetting by the eviction counters instead.
	QFlood
)

func (k QueryKind) String() string {
	return [...]string{"select", "join", "aggregate", "continuous", "range", "flood"}[k]
}

// QuerySpec is one deterministic generated query.
type QuerySpec struct {
	Kind     QueryKind
	Strategy core.Strategy
	// SelR/SelS/SelF are the predicate selectivities (join) or the scan
	// selectivity (select, SelS).
	SelR, SelS, SelF float64
	// CancelEarly cancels the query halfway through its window instead
	// of letting the TTL tear it down, exercising the cancel-multicast
	// path under faults.
	CancelEarly bool
}

// Recallable reports whether the query participates in the recall
// comparison against the oracle run.
func (q QuerySpec) Recallable() bool {
	return q.Kind == QSelect || q.Kind == QJoin || q.Kind == QAggregate || q.Kind == QRange
}

// GenerateQueries derives n query specs from a seed: a deterministic
// mix of scans, joins across all four strategies, grouped aggregates,
// and continuous queries.
func GenerateQueries(n int, seed int64) []QuerySpec {
	return GenerateQueriesMix(n, seed, false)
}

// GenerateQueriesMix is GenerateQueries with an optional range-query
// flavor: when withRange is true, every other scan slot becomes an
// index-backed range query (the scenario must have created the index).
// The mix is a separate entry point so pinned-seed scenarios that
// predate the index keep their exact traces.
func GenerateQueriesMix(n int, seed int64, withRange bool) []QuerySpec {
	rng := rand.New(rand.NewSource(seed ^ 0x9127c3a5))
	sels := []float64{0.3, 0.5, 0.7}
	specs := make([]QuerySpec, n)
	joins := 0
	for i := range specs {
		q := QuerySpec{
			SelR:        sels[rng.Intn(len(sels))],
			SelS:        sels[rng.Intn(len(sels))],
			SelF:        sels[rng.Intn(len(sels))],
			CancelEarly: rng.Float64() < 0.3,
		}
		switch i % 4 {
		case 0, 2:
			q.Kind = QJoin
			// Cycle the strategies so every seed covers all four once
			// enough joins are generated; the selectivities stay random.
			q.Strategy = core.Strategy(joins % 4)
			joins++
		case 1:
			if withRange && i%8 == 1 {
				q.Kind = QRange
			} else {
				q.Kind = QSelect
			}
		default:
			if i%8 == 3 {
				q.Kind = QContinuous
			} else {
				q.Kind = QAggregate
			}
		}
		specs[i] = q
	}
	return specs
}

// Plan lowers the spec to an executable plan over the workload tables.
// window is the per-query result-collection window (the plan's TTL).
func (q QuerySpec) Plan(sTuples int, window time.Duration) *core.Plan {
	c1, c2, c3 := workload.Constants(q.SelR, q.SelS, q.SelF)
	var p *core.Plan
	switch q.Kind {
	case QJoin:
		p = workload.JoinPlan(q.Strategy, c1, c2, c3)
		p.BloomBits = 1 << 14
		p.BloomWait = 5 * time.Second
	case QSelect:
		p = &core.Plan{
			Tables: []core.TableRef{{
				NS:     "S",
				Filter: &core.Cmp{Op: core.GT, L: &core.Col{Idx: workload.SNum2}, R: &core.Const{V: c2}},
				RIDCol: workload.SPkey,
			}},
			Output: []core.Expr{&core.Col{Idx: workload.SPkey}, &core.Col{Idx: workload.SNum2}},
		}
	case QAggregate:
		p = &core.Plan{
			Tables: []core.TableRef{{
				NS:     "S",
				Filter: &core.Cmp{Op: core.GT, L: &core.Col{Idx: workload.SNum2}, R: &core.Const{V: c2}},
				RIDCol: workload.SPkey,
			}},
			GroupBy: []int{workload.SNum3},
			Aggs:    []core.Aggregate{{Kind: core.Count, Col: -1}, {Kind: core.Sum, Col: workload.SNum2}},
			AggWait: 8 * time.Second,
		}
	case QContinuous:
		p = &core.Plan{
			Tables:     []core.TableRef{{NS: "S", RIDCol: workload.SPkey}},
			Aggs:       []core.Aggregate{{Kind: core.Count, Col: -1}},
			Continuous: true,
			Every:      10 * time.Second,
			AggWait:    5 * time.Second,
		}
	case QRange:
		// The QSelect predicate, served through the PHT instead of a
		// multicast full scan. The encoded bound is inclusive (the
		// encoding is non-strictly monotone); the Filter is the exact
		// residual, as in planner-attached index scans.
		p = &core.Plan{
			Tables: []core.TableRef{{
				NS:     "S",
				Filter: &core.Cmp{Op: core.GT, L: &core.Col{Idx: workload.SNum2}, R: &core.Const{V: c2}},
				RIDCol: workload.SPkey,
				IndexScan: &core.IndexRangeScan{
					Index: RangeIndexName,
					Lo:    wire.OrderedKey(c2),
					Hi:    wire.OrderedMax,
				},
			}},
			Output: []core.Expr{&core.Col{Idx: workload.SPkey}, &core.Col{Idx: workload.SNum2}},
		}
	}
	p.TTL = window
	return p
}

// Key derives the recall-comparison key of one result tuple. Select and
// join results are identified by their full output row; aggregate
// results by their group keys only (aggregate values legitimately
// differ when tuples are lost, but a surviving group should still
// report).
func (q QuerySpec) Key(t *core.Tuple, window int) string {
	vals := t.Vals
	if q.Kind == QAggregate {
		vals = vals[:1] // the single group column
	}
	parts := make([]string, 0, len(vals)+1)
	for _, v := range vals {
		parts = append(parts, core.ValueString(v))
	}
	if window > 0 {
		parts = append(parts, fmt.Sprintf("w%d", window))
	}
	return strings.Join(parts, "\x1f")
}
