// Package chaos is the deterministic fault-injection harness for
// simulated PIER deployments. A Config describes a scenario — node
// churn (crashes and graceful leaves with rejoin), partition windows,
// link-loss bursts, and a randomized query workload — all derived from
// one seed. Run executes the scenario three ways:
//
//   - a fault-free oracle run (the same seed, workload, and timing with
//     every fault disabled), giving the reference result set of each
//     query;
//   - the faulted run, whose per-query results are compared against the
//     oracle's ("a best effort result", §1.2; Figure 6 measures exactly
//     this recall-under-churn);
//   - optionally a replay of the faulted run, asserting the event trace
//     reproduces bit-for-bit from the seed.
//
// Invariant checkers then hold the run to PIER's relaxed-consistency
// contract: every query terminates or times out cleanly, recall stays
// above a configurable floor, soft state expires once its producers
// stop renewing, the statistics catalog re-converges after churn, and
// no message is ever dispatched to a dead node's stack.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/index"
	"pier/internal/opt"
	"pier/internal/simnet"
	"pier/internal/topology"
	"pier/internal/workload"
)

// PartitionWindow isolates a random Frac of the live population into a
// separate island for Duration, starting Start into the active phase.
type PartitionWindow struct {
	Start    time.Duration
	Duration time.Duration
	Frac     float64
}

// LossBurst raises the global link-loss probability to Prob for
// Duration, starting Start into the active phase.
type LossBurst struct {
	Start    time.Duration
	Duration time.Duration
	Prob     float64
}

// Config describes one chaos scenario. Every random choice — fault
// times, victims, query parameters — derives from Seed, so a Config is
// a complete reproduction recipe.
type Config struct {
	// Nodes is the initial population; node 0 is the driver (it loads
	// and renews tuples and initiates queries, standing in for the
	// paper's wrappers) and is never failed or isolated.
	Nodes int
	Seed  int64
	DHT   pier.DHTKind

	// Warmup runs before any fault or query.
	Warmup time.Duration

	// CrashesPerMin is the churn rate during the active phase. Each
	// departure is followed by a fresh identity rejoining through the
	// driver, keeping the population constant (§5.6 fails nodes at a
	// constant rate). GracefulFrac of departures Leave cleanly instead
	// of crashing.
	CrashesPerMin float64
	GracefulFrac  float64

	// Partitions and LossBursts are fault windows inside the active
	// phase; BaseLoss applies outside the bursts.
	Partitions []PartitionWindow
	LossBursts []LossBurst
	BaseLoss   float64

	// STuples sizes the workload tables (|R| = 10 × |S|);
	// RefreshPeriod is the driver's renew period for every tuple.
	STuples       int
	RefreshPeriod time.Duration

	// Queries generated queries run back to back, each collecting
	// results for QueryEvery (also the query TTL).
	Queries    int
	QueryEvery time.Duration

	// RecallFloor is the invariant threshold for total recall against
	// the oracle run.
	RecallFloor float64

	// StatsInterval enables the per-node statistics catalog and its
	// re-convergence invariant; zero disables both.
	StatsInterval time.Duration

	// RangeQueries creates a PHT index over S.num2 before the warmup
	// (with per-node trie maintenance on IndexInterval) and swaps
	// index-backed range queries into the generated mix, so index
	// lookups, entry renewal, and split/merge healing run under the
	// same faults — and the same recall comparison — as everything
	// else.
	RangeQueries bool

	// IndexInterval is the trie maintenance period of RangeQueries
	// scenarios; zero follows StatsInterval (or 30s when that is off).
	IndexInterval time.Duration

	// PublishFlood publishes this many extra padded tuples into the hot
	// namespace FloodNS over the first half of the active phase — a few
	// hot resource keys, unique instance ids, no renewal — modeling a
	// misbehaving or misconfigured publisher. The faulted run bounds
	// FloodNS to FloodQuota bytes per node (the oracle stays unbounded),
	// so every flood result the bounded run loses is attributable to
	// eviction: the storage-within-budget invariant probes every live
	// node's occupancy through the run, flood-backpressure-engaged
	// requires the put-throttle protocol to have fired, and
	// flood-recall-vs-evicted bounds the oracle results missing from the
	// bounded run by the eviction and drop counters. Zero disables the
	// flood.
	PublishFlood int

	// FloodQuota is the faulted run's per-node byte quota for FloodNS;
	// zero with PublishFlood set defaults to 4 KiB.
	FloodQuota int64

	// TraceQueries forces distributed tracing on every generated
	// query, so span recording, piggybacked delivery, and trace
	// assembly run under the same faults as the queries themselves.
	// Combined with VerifyReplay it proves tracing never perturbs the
	// deterministic schedule (a forced Plan.Trace draws no sampling
	// randomness), and an extra invariant requires every accepted
	// query to leave a finished, non-empty retained trace on the
	// driver.
	TraceQueries bool

	// VerifyReplay re-runs the faulted scenario and asserts the trace
	// fingerprint is identical — the determinism invariant.
	VerifyReplay bool
}

// Norm fills defaults.
func (c Config) Norm() Config {
	if c.Nodes == 0 {
		c.Nodes = 64
	}
	if c.Warmup == 0 {
		c.Warmup = 30 * time.Second
	}
	if c.STuples == 0 {
		c.STuples = 100
	}
	if c.RefreshPeriod == 0 {
		c.RefreshPeriod = time.Minute
	}
	if c.Queries == 0 {
		c.Queries = 8
	}
	if c.QueryEvery == 0 {
		c.QueryEvery = time.Minute
	}
	if c.PublishFlood > 0 && c.FloodQuota == 0 {
		c.FloodQuota = 4 << 10
	}
	return c
}

// Duration returns the length of the active phase (faults are
// scheduled inside it): the workload's total collection time.
func (c Config) Duration() time.Duration {
	return time.Duration(c.Queries) * c.QueryEvery
}

// indexInterval is the effective trie maintenance period of a
// RangeQueries scenario.
func (c Config) indexInterval() time.Duration {
	if c.IndexInterval > 0 {
		return c.IndexInterval
	}
	if c.StatsInterval > 0 {
		return c.StatsInterval
	}
	return 30 * time.Second
}

// Default is the pinned reference scenario the acceptance criteria and
// the CI smoke run use: 64 nodes under 4 departures/min (30% graceful),
// one 60 s partition isolating a quarter of the network mid-run, 1%
// steady link loss with a 5% burst, and the full query mix.
func Default(seed int64) Config {
	return Config{
		Nodes:         64,
		Seed:          seed,
		CrashesPerMin: 4,
		GracefulFrac:  0.3,
		Partitions:    []PartitionWindow{{Start: 2 * time.Minute, Duration: time.Minute, Frac: 0.25}},
		LossBursts:    []LossBurst{{Start: 5 * time.Minute, Duration: 30 * time.Second, Prob: 0.05}},
		BaseLoss:      0.01,
		RecallFloor:   0.5,
		StatsInterval: time.Minute,
		VerifyReplay:  true,
	}
}

// DefaultFlood is the pinned flood-pressure scenario CI smokes: no
// churn, partitions, or loss — the only "fault" is the per-node byte
// quota on the flood namespace, so every difference against the
// unbounded oracle is attributable to eviction and the invariants can
// hold the byte budget and the forgetting bound exactly, on top of the
// usual termination, expiry, and replay-determinism checks.
func DefaultFlood(seed int64) Config {
	return Config{
		Nodes:         64,
		Seed:          seed,
		STuples:       60,
		RefreshPeriod: time.Minute,
		Queries:       4,
		QueryEvery:    time.Minute,
		RecallFloor:   0.9,
		StatsInterval: time.Minute,
		PublishFlood:  1200,
		FloodQuota:    4 << 10,
		VerifyReplay:  true,
	}
}

// DefaultRange is the pinned reference scenario with the Prefix Hash
// Tree in play: the same faults as Default, plus an index over S.num2
// whose range queries replace part of the scan mix. CI smokes it
// separately so index regressions fail loudly rather than diluting the
// base scenario's trace.
func DefaultRange(seed int64) Config {
	cfg := Default(seed)
	cfg.RangeQueries = true
	return cfg
}

// queryOutcome records one executed query's results.
type queryOutcome struct {
	spec QuerySpec
	id   uint64
	keys map[string]bool
	err  error
}

// scenarioResult is one full simulated run.
type scenarioResult struct {
	queries    []queryOutcome
	stats      simnet.Stats
	channel    core.QueryStats
	invariants []Invariant

	// Flood-scenario accounting: periodic per-node occupancy probes of
	// the flood namespace, and the storage/backpressure counters summed
	// across the nodes alive at the end of the run.
	budgetProbes     int
	budgetViolations int
	budgetPeak       int64
	floodEvicted     int64
	floodDropped     int64
	floodThrottled   int64
	floodDelayed     int64
}

// Run executes the scenario: oracle run, faulted run, recall
// comparison, and (with VerifyReplay) a determinism replay. The
// returned Report carries every invariant verdict.
func Run(cfg Config) *Report {
	cfg = cfg.Norm()
	// Validate the fault windows (BuildSchedule panics on overlapping
	// same-type windows) before spending the oracle run.
	BuildSchedule(cfg)
	oracle := runScenario(cfg, true)
	faulted := runScenario(cfg, false)

	rep := &Report{Cfg: cfg, Stats: faulted.stats, Channel: faulted.channel, Invariants: faulted.invariants}

	var matched, total int
	for i, q := range faulted.queries {
		recall := 1.0
		if q.spec.Recallable() && i < len(oracle.queries) {
			want := oracle.queries[i].keys
			if len(want) > 0 {
				m := 0
				for k := range q.keys {
					if want[k] {
						m++
					}
				}
				matched += m
				total += len(want)
				recall = float64(m) / float64(len(want))
			}
		}
		rep.PerQueryRecall = append(rep.PerQueryRecall, recall)
	}
	rep.Recall = 1.0
	if total > 0 {
		rep.Recall = float64(matched) / float64(total)
	}
	rep.Invariants = append(rep.Invariants, Invariant{
		Name:   "recall-floor",
		Pass:   rep.Recall >= cfg.RecallFloor,
		Detail: fmt.Sprintf("%.1f%% of %d oracle results (floor %.1f%%)", 100*rep.Recall, total, 100*cfg.RecallFloor),
	})

	if cfg.PublishFlood > 0 && len(oracle.queries) == len(faulted.queries) && len(faulted.queries) > 0 {
		// The flood scan is the last query of both runs. The bounded run
		// may only be missing oracle results it evicted or dropped (plus
		// a small slack for items still mid-throttle-retry at scan time):
		// quotas forget by eviction, never silently.
		oracleF := oracle.queries[len(oracle.queries)-1].keys
		faultF := faulted.queries[len(faulted.queries)-1].keys
		matched := 0
		for k := range faultF {
			if oracleF[k] {
				matched++
			}
		}
		missing := int64(len(oracleF) - matched)
		slack := int64(len(oracleF) / 20)
		if slack < 5 {
			slack = 5
		}
		rep.Flood = &FloodReport{
			Published:  cfg.PublishFlood,
			OracleLive: len(oracleF),
			Matched:    matched,
			Evicted:    faulted.floodEvicted,
			Dropped:    faulted.floodDropped,
			Throttled:  faulted.floodThrottled,
			Delayed:    faulted.floodDelayed,
			PeakBytes:  faulted.budgetPeak,
			Quota:      cfg.FloodQuota,
		}
		rep.Invariants = append(rep.Invariants, Invariant{
			Name: "flood-recall-vs-evicted",
			Pass: missing <= faulted.floodEvicted+faulted.floodDropped+slack,
			Detail: fmt.Sprintf("%d of %d oracle flood results missing; %d evicted + %d dropped + %d slack allowed",
				missing, len(oracleF), faulted.floodEvicted, faulted.floodDropped, slack),
		})
	}

	rep.TraceHash = traceHash(faulted.stats, faulted.queries)
	if cfg.VerifyReplay {
		replay := runScenario(cfg, false)
		h := traceHash(replay.stats, replay.queries)
		rep.Invariants = append(rep.Invariants, Invariant{
			Name:   "replay-deterministic",
			Pass:   h == rep.TraceHash,
			Detail: fmt.Sprintf("trace %016x vs replay %016x", rep.TraceHash, h),
		})
	}
	return rep
}

// runScenario executes one simulated run of the scenario; faultless
// disables every fault (the oracle).
func runScenario(cfg Config, faultless bool) *scenarioResult {
	opts := pier.DefaultOptions()
	opts.DHT = cfg.DHT
	opts.CANConfig.Maintenance = true
	opts.ChordConfig.Maintenance = true
	// Tuned like the Figure 6 runs: dissemination must survive
	// not-yet-detected failures, and lookups time out inside the 15 s
	// failure-detection window instead of stalling queries.
	opts.ProviderConfig.ActiveExpiry = true
	opts.ProviderConfig.RobustMulticast = true
	opts.ProviderConfig.PutRetries = 3
	opts.ProviderConfig.PutRetryDelay = 3 * time.Second
	opts.CANConfig.LookupTimeout = 8 * time.Second
	opts.ProviderConfig.GetTimeout = 10 * time.Second
	// Result channel: pin the batching/credit geometry (rather than
	// inheriting engine defaults) so pinned-seed traces don't shift if
	// defaults move. The credit window is deliberately tiny — the
	// workload spreads each query's results over all nodes, so only a
	// window smaller than a typical per-sender share makes senders
	// actually exhaust it; replenishment grants then flow through the
	// loss/partition schedules, lost grants exercise the executor's
	// stall-refresh path, and the queries-terminate invariant doubles
	// as the channel's no-deadlock check.
	opts.EngineConfig.ResultBatch = 16
	opts.EngineConfig.ResultFlushInterval = 250 * time.Millisecond
	opts.EngineConfig.ResultCredit = 6
	opts.EngineConfig.CreditRefresh = 4 * time.Second
	if cfg.TraceQueries {
		// Pin the tracing geometry like the channel's, and retain one
		// trace per generated query for the end-of-run invariant.
		opts.EngineConfig.TraceBuf = 128
		opts.EngineConfig.TraceRetain = cfg.Queries + 1
	}
	if cfg.PublishFlood > 0 && !faultless {
		// Only the faulted run is bounded: the oracle's unbounded stores
		// define what a node with enough memory would have answered, so
		// the recall gap is exactly the cost of the quota. Backoffs are
		// deterministic (no jitter), keeping the replay hash stable.
		opts.ProviderConfig.Quota = storage.BoundedConfig{Quotas: map[string]int64{FloodNS: cfg.FloodQuota}}
		opts.ProviderConfig.ThrottleRetries = 2
		opts.ProviderConfig.ThrottleDelay = 2 * time.Second
	}
	if cfg.StatsInterval > 0 {
		opts.Stats.Interval = cfg.StatsInterval
	}
	if cfg.RangeQueries {
		opts.Index.Interval = cfg.indexInterval()
	}
	sn := pier.NewSimNetwork(cfg.Nodes, topology.NewFullMesh(), cfg.Seed, opts)
	if !faultless {
		sn.SetLoss(cfg.BaseLoss)
	}

	// The driver (node 0) stands in for the paper's data wrappers: it
	// loads every tuple and renews each on the refresh period with a
	// per-tuple phase, restoring items lost to failed storage nodes.
	tables := workload.Generate(workload.Config{STuples: cfg.STuples, Seed: cfg.Seed + 3, PadBytes: 64})
	lifetime := 2 * cfg.RefreshPeriod
	type pub struct {
		ns, rid string
		iid     int64
		t       *core.Tuple
	}
	var pubs []pub
	for i, r := range tables.R {
		pubs = append(pubs, pub{"R", core.ValueString(r.Vals[workload.RPkey]), int64(i), r})
	}
	for i, s := range tables.S {
		pubs = append(pubs, pub{"S", core.ValueString(s.Vals[workload.SPkey]), int64(i + len(tables.R)), s})
	}
	for _, p := range pubs {
		sn.Load(p.ns, p.rid, p.iid, p.t, lifetime)
	}
	driver := sn.Net.Node(0)
	dnode := sn.Nodes[0]
	if cfg.RangeQueries {
		// The driver creates the index before the warmup; every node
		// backfills its local S tuples and the warmup's maintenance
		// ticks settle the trie. The definition is renewed by the
		// driver's index agent while it runs.
		err := dnode.Indexes().Create(index.Def{
			Name: RangeIndexName, Table: "S", Col: "num2", ColIdx: workload.SNum2,
		}, 3*cfg.indexInterval())
		if err != nil {
			panic(err)
		}
	}
	res := &scenarioResult{}
	teardown := false
	var renewStops []func()
	for i, p := range pubs {
		p := p
		phase := time.Duration(float64(cfg.RefreshPeriod) * float64(i) / float64(len(pubs)))
		driver.After(phase, func() {
			if teardown {
				return
			}
			dnode.Renew(p.ns, p.rid, p.iid, p.t, lifetime)
			renewStops = append(renewStops, env.Every(driver, cfg.RefreshPeriod, func() {
				dnode.Renew(p.ns, p.rid, p.iid, p.t, lifetime)
			}))
		})
	}

	if cfg.PublishFlood > 0 {
		// The flood: padded tuples into a handful of hot keys, spread
		// over the first half of the active phase, never renewed. The
		// lifetime outlives the final flood scan but not the teardown
		// tail, so soft-state-expires still closes the run.
		floodLifetime := cfg.Duration() + 2*cfg.RefreshPeriod
		spread := cfg.Duration() / 2
		for i := 0; i < cfg.PublishFlood; i++ {
			i := i
			at := cfg.Warmup + time.Duration(float64(spread)*float64(i)/float64(cfg.PublishFlood))
			driver.After(at, func() {
				if teardown {
					return
				}
				t := &core.Tuple{Rel: FloodNS, Vals: []core.Value{int64(i)}, Pad: 200}
				dnode.Publish(FloodNS, fmt.Sprintf("f%d", i%floodHotKeys), int64(1<<20+i), t, floodLifetime)
			})
		}
		if !faultless {
			// Budget probes: every live node's flood-namespace occupancy
			// must stay within the quota at every sample, not just at the
			// end — eviction must keep up with the flood, not lag it.
			renewStops = append(renewStops, env.Every(driver, 15*time.Second, func() {
				for i, n := range sn.Nodes {
					if !sn.Alive(i) {
						continue
					}
					res.budgetProbes++
					got := n.Provider().Store().Usage().ByNamespace[FloodNS]
					if got > res.budgetPeak {
						res.budgetPeak = got
					}
					if got > cfg.FloodQuota {
						res.budgetViolations++
					}
				}
			}))
		}
	}

	// Fault schedule: victims and partition membership are drawn from a
	// dedicated RNG at execution time — execution order is
	// deterministic, so the draws are too.
	if !faultless {
		crng := rand.New(rand.NewSource(cfg.Seed ^ 0x11c7a05))
		for _, ev := range BuildSchedule(cfg) {
			ev := ev
			driver.After(cfg.Warmup+ev.At, func() {
				if !teardown {
					execEvent(sn, cfg, ev, crng)
				}
			})
		}
	}

	sn.RunFor(cfg.Warmup)

	for _, spec := range GenerateQueriesMix(cfg.Queries, cfg.Seed, cfg.RangeQueries) {
		spec := spec
		out := queryOutcome{spec: spec, keys: map[string]bool{}}
		plan := spec.Plan(cfg.STuples, cfg.QueryEvery)
		if cfg.TraceQueries {
			plan.Trace = true
		}
		id, err := dnode.Query(plan, func(t *core.Tuple, w int) { out.keys[spec.Key(t, w)] = true })
		out.id, out.err = id, err
		if err == nil && spec.CancelEarly {
			sn.RunFor(cfg.QueryEvery / 2)
			dnode.Cancel(id)
			sn.RunFor(cfg.QueryEvery - cfg.QueryEvery/2)
		} else {
			sn.RunFor(cfg.QueryEvery)
		}
		res.queries = append(res.queries, out)
	}

	if cfg.PublishFlood > 0 {
		// The flood scan: a select-all over the flood namespace, run by
		// both the oracle and the bounded run as their final query. Its
		// keys feed the flood-recall-vs-evicted comparison and fold into
		// the replay fingerprint like every other query's.
		out := queryOutcome{spec: QuerySpec{Kind: QFlood}, keys: map[string]bool{}}
		plan := &core.Plan{
			Tables: []core.TableRef{{NS: FloodNS, RIDCol: 0}},
			Output: []core.Expr{&core.Col{Idx: 0}},
			TTL:    cfg.QueryEvery,
		}
		if cfg.TraceQueries {
			plan.Trace = true
		}
		id, err := dnode.Query(plan, func(t *core.Tuple, w int) { out.keys[out.spec.Key(t, w)] = true })
		out.id, out.err = id, err
		sn.RunFor(cfg.QueryEvery)
		res.queries = append(res.queries, out)
	}

	// The oracle exists only to provide per-query reference results,
	// all collected by now; skip its settle/teardown tail (a third of
	// the total simulation work) — its invariants are never read.
	if faultless {
		res.stats = sn.Net.Stats()
		return res
	}

	// Active phase over: lift remaining faults and let failure
	// detection and takeovers settle.
	sn.Heal()
	sn.SetLoss(0)
	sn.RunFor(45 * time.Second)

	var catalogInv *Invariant
	if cfg.StatsInterval > 0 {
		catalogInv = checkCatalog(sn, len(tables.R))
	}

	// Teardown: stop the producers (renewals) and the catalog loops.
	// Everything still stored anywhere is soft state that must now
	// expire on its own — including items handed off by graceful
	// leaves and state belonging to long-gone queries.
	teardown = true
	for _, stop := range renewStops {
		stop()
	}
	for i, n := range sn.Nodes {
		if sn.Alive(i) {
			n.Stats().Stop()
			n.Indexes().Stop()
		}
	}
	tail := 2 * cfg.RefreshPeriod
	if t := 3 * cfg.StatsInterval; t > tail {
		tail = t
	}
	if cfg.RangeQueries {
		// Index entries die with their tuples (2×refresh); the interior
		// markers above them were last renewed just before the stop and
		// take up to their full lifetime on top.
		if t := 2*cfg.RefreshPeriod + 3*cfg.indexInterval(); t > tail {
			tail = t
		}
	}
	if cfg.QueryEvery > tail {
		tail = cfg.QueryEvery
	}
	sn.RunFor(tail + time.Minute)

	res.stats = sn.Net.Stats()
	for i, n := range sn.Nodes {
		if sn.Alive(i) {
			qs := n.QueryStats()
			res.channel.ResultBatches += qs.ResultBatches
			res.channel.ResultTuples += qs.ResultTuples
			res.channel.CreditGrants += qs.CreditGrants
			res.channel.CreditStalls += qs.CreditStalls
			res.channel.BloomFallbacks += qs.BloomFallbacks
			if cfg.PublishFlood > 0 {
				ss := n.StorageStats()
				res.floodEvicted += ss.EvictedByNS[FloodNS]
				res.floodDropped += ss.PutsDropped
				res.floodThrottled += ss.PutsThrottled
				res.floodDelayed += ss.PutsDelayed
			}
		}
	}
	res.invariants = buildInvariants(sn, res, catalogInv)
	if cfg.PublishFlood > 0 {
		res.invariants = append(res.invariants,
			Invariant{
				Name: "storage-within-budget",
				Pass: res.budgetProbes > 0 && res.budgetViolations == 0,
				Detail: fmt.Sprintf("%d probes, %d over budget, peak %d of %d bytes",
					res.budgetProbes, res.budgetViolations, res.budgetPeak, cfg.FloodQuota),
			},
			Invariant{
				Name: "flood-backpressure-engaged",
				Pass: res.floodThrottled > 0 && res.floodDelayed > 0,
				Detail: fmt.Sprintf("%d puts throttled, %d delayed, %d dropped, %d evicted",
					res.floodThrottled, res.floodDelayed, res.floodDropped, res.floodEvicted),
			},
		)
	}
	if cfg.TraceQueries {
		res.invariants = append(res.invariants, checkTraces(sn, res))
	}
	return res
}

// checkTraces asserts every accepted traced query left a finished,
// non-empty retained trace on the driver once its collector closed —
// cancel, TTL expiry, and churn included.
func checkTraces(sn *pier.SimNetwork, res *scenarioResult) Invariant {
	missing, empty, unfinished, spans := 0, 0, 0, 0
	for _, q := range res.queries {
		if q.err != nil {
			continue
		}
		tr, ok := sn.Nodes[0].Trace(q.id)
		if !ok {
			missing++
			continue
		}
		if len(tr.Spans) == 0 {
			empty++
		}
		if tr.Finished == 0 {
			unfinished++
		}
		spans += len(tr.Spans)
	}
	return Invariant{
		Name: "traced-queries-leave-traces",
		Pass: missing == 0 && empty == 0 && unfinished == 0,
		Detail: fmt.Sprintf("%d spans across %d queries (%d missing, %d empty, %d unfinished)",
			spans, len(res.queries), missing, empty, unfinished),
	}
}

// execEvent applies one fault event to the running network.
func execEvent(sn *pier.SimNetwork, cfg Config, ev Event, rng *rand.Rand) {
	switch ev.Kind {
	case EvCrash:
		if v := pickLive(sn, rng); v > 0 {
			sn.Restart(v, 0)
		}
	case EvLeave:
		if v := pickLive(sn, rng); v > 0 {
			sn.Leave(v)
			sn.Join(0)
		}
	case EvPartitionStart:
		lives := liveNonDriver(sn)
		rng.Shuffle(len(lives), func(i, j int) { lives[i], lives[j] = lives[j], lives[i] })
		k := int(ev.Frac * float64(len(lives)))
		if k < 1 {
			k = 1
		}
		if k > len(lives) {
			k = len(lives)
		}
		sn.Partition(lives[:k])
	case EvPartitionEnd:
		sn.Heal()
	case EvLossStart:
		sn.SetLoss(ev.Prob)
	case EvLossEnd:
		sn.SetLoss(cfg.BaseLoss)
	}
}

// pickLive draws a random live non-driver node index, or -1.
func pickLive(sn *pier.SimNetwork, rng *rand.Rand) int {
	for tries := 0; tries < 64; tries++ {
		v := 1 + rng.Intn(len(sn.Nodes)-1)
		if sn.Alive(v) {
			return v
		}
	}
	return -1
}

// liveNonDriver lists the live node indices except the driver.
func liveNonDriver(sn *pier.SimNetwork) []int {
	var out []int
	for i := 1; i < len(sn.Nodes); i++ {
		if sn.Alive(i) {
			out = append(out, i)
		}
	}
	return out
}

// checkCatalog asserts the statistics catalog re-converged after the
// churn: a fresh fetch of R's table statistics answers, with a
// cardinality within a generous band of the loaded relation (churn
// loses tuples between renews; the band tolerates that).
func checkCatalog(sn *pier.SimNetwork, rCount int) *Invariant {
	var got opt.TableStats
	var ok, done bool
	sn.Nodes[0].Stats().Fetch("R", func(ts opt.TableStats, k bool) { got, ok, done = ts, k, true })
	sn.RunUntil(30*time.Second, func() bool { return done })
	pass := done && ok && got.Tuples >= float64(rCount)/5 && got.Tuples <= float64(rCount)*5
	return &Invariant{
		Name:   "catalog-reconverges",
		Pass:   pass,
		Detail: fmt.Sprintf("R estimate %.0f vs loaded %d", got.Tuples, rCount),
	}
}

// buildInvariants evaluates the end-of-run checkers.
func buildInvariants(sn *pier.SimNetwork, res *scenarioResult, catalogInv *Invariant) []Invariant {
	var invs []Invariant

	accepted := 0
	for _, q := range res.queries {
		if q.err == nil {
			accepted++
		}
	}
	invs = append(invs, Invariant{
		Name:   "queries-accepted",
		Pass:   accepted == len(res.queries),
		Detail: fmt.Sprintf("%d/%d plans accepted", accepted, len(res.queries)),
	})

	// Termination: every TTL has long passed; no executor may survive
	// anywhere, and the driver must hold no open collectors.
	execs := 0
	for i, n := range sn.Nodes {
		if sn.Alive(i) {
			execs += n.Engine().ActiveExecs()
		}
	}
	invs = append(invs, Invariant{
		Name:   "queries-terminate",
		Pass:   execs == 0 && sn.Nodes[0].Engine().OpenCollectors() == 0,
		Detail: fmt.Sprintf("%d live executors, %d open collectors", execs, sn.Nodes[0].Engine().OpenCollectors()),
	})

	// Soft state: with producers stopped and lifetimes elapsed, every
	// live store must be empty.
	items := 0
	for i, n := range sn.Nodes {
		if sn.Alive(i) {
			items += n.Provider().Store().TotalLen()
		}
	}
	invs = append(invs, Invariant{
		Name:   "soft-state-expires",
		Pass:   items == 0,
		Detail: fmt.Sprintf("%d items still stored on live nodes", items),
	})

	stats := sn.Net.Totals()
	invs = append(invs, Invariant{
		Name:   "no-delivery-to-dead",
		Pass:   stats.DeliveredToDead == 0,
		Detail: fmt.Sprintf("%d deliveries dispatched to dead nodes", stats.DeliveredToDead),
	})

	if catalogInv != nil {
		invs = append(invs, *catalogInv)
	}
	return invs
}
