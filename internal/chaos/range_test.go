package chaos

// The index-under-churn acceptance scenario (and the split/merge
// round-trip test riding the chaos schedules): the pinned-seed fault
// schedule of the base scenario, plus a PHT index over S.num2 whose
// range queries join the workload mix. Recall is measured against the
// fault-free oracle exactly like every other query kind, and the
// soft-state invariant additionally proves the whole trie — entries,
// interior markers, definitions — expired once its producers stopped.

import (
	"os"
	"testing"
)

func TestChaosRangePinnedSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run chaos scenario is slow")
	}
	cfg := DefaultRange(1)
	rep := Run(cfg)
	rep.Print(os.Stderr)
	for _, iv := range rep.Failed() {
		t.Errorf("invariant %s failed: %s", iv.Name, iv.Detail)
	}

	// The mix must actually contain range queries, and each must have
	// been compared against the oracle. (rep.Cfg is the normalized
	// config — Default leaves Queries to Norm's default.)
	specs := GenerateQueriesMix(rep.Cfg.Queries, rep.Cfg.Seed, true)
	ranges := 0
	for i, spec := range specs {
		if spec.Kind != QRange {
			continue
		}
		ranges++
		if !spec.Recallable() {
			t.Errorf("range query %d not recallable", i)
		}
		if i < len(rep.PerQueryRecall) && rep.PerQueryRecall[i] < cfg.RecallFloor/2 {
			t.Errorf("range query %d recall %.2f collapsed (floor %.2f)",
				i, rep.PerQueryRecall[i], cfg.RecallFloor)
		}
	}
	if ranges == 0 {
		t.Fatalf("generated mix of %d queries contains no range queries", rep.Cfg.Queries)
	}
}

func TestGenerateQueriesMixRangeFlag(t *testing.T) {
	base := GenerateQueries(16, 8)
	mixed := GenerateQueriesMix(16, 8, true)
	for i := range base {
		if base[i].Kind == QRange {
			t.Errorf("base mix contains a range query at %d", i)
		}
	}
	found := false
	for i := range mixed {
		if mixed[i].Kind == QRange {
			found = true
		} else if mixed[i] != base[i] {
			t.Errorf("range flag perturbed non-range query %d: %+v vs %+v", i, mixed[i], base[i])
		}
	}
	if !found {
		t.Errorf("range flag produced no range queries")
	}
}
