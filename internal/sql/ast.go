package sql

// AST node types for the supported SELECT subset.

// Node is any expression node.
type Node interface{ nodeString() string }

// NumLit is an integer or float literal.
type NumLit struct {
	Int     int64
	Float   float64
	IsFloat bool
	Neg     bool
}

func (n *NumLit) nodeString() string { return "num" }

// StrLit is a string literal.
type StrLit struct{ S string }

func (n *StrLit) nodeString() string { return "str" }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ B bool }

func (n *BoolLit) nodeString() string { return "bool" }

// NullLit is NULL.
type NullLit struct{}

func (n *NullLit) nodeString() string { return "null" }

// ColRef is a possibly-qualified column reference (table.col or col).
type ColRef struct{ Table, Col string }

func (n *ColRef) nodeString() string { return "col" }

// BinOp is a binary operator: comparison (= != < <= > >=), arithmetic
// (+ - * / %), or logical (AND OR).
type BinOp struct {
	Op   string
	L, R Node
}

func (n *BinOp) nodeString() string { return "binop" }

// UnOp is NOT or unary minus.
type UnOp struct {
	Op string
	E  Node
}

func (n *UnOp) nodeString() string { return "unop" }

// FuncCall is f(args) or an aggregate; Star marks count(*).
type FuncCall struct {
	Name string
	Args []Node
	Star bool
}

func (n *FuncCall) nodeString() string { return "call" }

// SelectItem is one projection in the SELECT list.
type SelectItem struct {
	Star  bool
	E     Node
	Alias string
}

// TableItem is one FROM entry.
type TableItem struct {
	Name  string
	Alias string
}

// Stmt is a parsed single-block SELECT.
type Stmt struct {
	Select   []SelectItem
	From     []TableItem
	Where    Node
	GroupBy  []*ColRef
	Having   Node
	Strategy string // optional USING STRATEGY '<name>' extension
}

// CreateIndexStmt is a parsed CREATE INDEX name ON table (col)
// statement — the DDL front end of the Prefix Hash Tree range index.
type CreateIndexStmt struct {
	Name  string
	Table string
	Col   string
}

// ExplainStmt is a parsed EXPLAIN TRACE <select> statement: run the
// inner SELECT with distributed tracing forced on and answer with the
// assembled trace tree instead of (or alongside) the result rows.
type ExplainStmt struct {
	// Select is the traced inner statement.
	Select *Stmt
}
