package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SELECT statement.
func Parse(src string) (*Stmt, error) {
	st, err := ParseStatement(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*Stmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement")
	}
	return sel, nil
}

// ParseStatement parses one statement of any supported kind, returning
// *Stmt for SELECT, *CreateIndexStmt for CREATE INDEX, or *ExplainStmt
// for EXPLAIN TRACE <select>.
func ParseStatement(src string) (any, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var st any
	switch t := p.peek(); {
	case t.kind == tokKeyword && t.text == "CREATE":
		st, err = p.parseCreateIndex()
	case t.kind == tokKeyword && t.text == "EXPLAIN":
		st, err = p.parseExplain()
	default:
		st, err = p.parseSelect()
	}
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input starting at %q", p.peek().text)
	}
	return st, nil
}

// parseExplain parses EXPLAIN TRACE <select>. Plain EXPLAIN (without
// TRACE) is rejected: there is no static plan printer, only the traced
// execution surface.
func (p *parser) parseExplain() (*ExplainStmt, error) {
	if err := p.expectKeyword("EXPLAIN"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TRACE"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &ExplainStmt{Select: sel}, nil
}

// parseCreateIndex parses CREATE INDEX name ON table (col).
func (p *parser) parseCreateIndex() (*CreateIndexStmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	st := &CreateIndexStmt{}
	var err error
	if st.Name, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	if st.Table, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if !p.acceptSymbol("(") {
		return nil, p.errf("expected ( after table name")
	}
	if st.Col, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if p.acceptSymbol(",") {
		return nil, p.errf("PHT indexes cover a single column")
	}
	if !p.acceptSymbol(")") {
		return nil, p.errf("expected ) after column name")
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: "+format, args...)
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectIdent() (string, error) {
	if t := p.peek(); t.kind == tokIdent {
		p.i++
		return t.text, nil
	}
	return "", p.errf("expected identifier, found %q", p.peek().text)
}

func (p *parser) parseSelect() (*Stmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &Stmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Select = append(st.Select, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ti := TableItem{Name: name, Alias: name}
		if p.acceptKeyword("AS") {
			if ti.Alias, err = p.expectIdent(); err != nil {
				return nil, err
			}
		} else if p.peek().kind == tokIdent {
			ti.Alias = p.next().text
		}
		st.From = append(st.From, ti)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if len(st.From) > 2 {
		return nil, p.errf("at most two tables are supported (the paper's joins are binary)")
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			cr, ok := e.(*ColRef)
			if !ok {
				return nil, p.errf("GROUP BY supports column references only")
			}
			st.GroupBy = append(st.GroupBy, cr)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.acceptKeyword("USING") {
		if err := p.expectKeyword("STRATEGY"); err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokString && t.kind != tokIdent {
			return nil, p.errf("USING STRATEGY expects a strategy name")
		}
		st.Strategy = strings.ToLower(t.text)
	}
	return st, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseOr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{E: e}
	if p.acceptKeyword("AS") {
		if item.Alias, err = p.expectIdent(); err != nil {
			return SelectItem{}, err
		}
	}
	return item, nil
}

// Expression grammar: OR > AND > NOT > comparison > additive >
// multiplicative > unary > primary.

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "NOT", E: e}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]bool{"=": true, "!=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseCmp() (Node, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokSymbol && cmpOps[t.text] {
		p.i++
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		op := t.text
		if op == "<>" {
			op = "!="
		}
		return &BinOp{Op: op, L: l, R: r}, nil
	}
	// x [NOT] IN (e1, e2, ...) desugars to a chain of equalities; the
	// planner then treats it like any other disjunction.
	negated := false
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" && p.i+1 < len(p.toks) &&
		p.toks[p.i+1].kind == tokKeyword && p.toks[p.i+1].text == "IN" {
		p.i++
		negated = true
	}
	if p.acceptKeyword("IN") {
		e, err := p.parseInList(l)
		if err != nil {
			return nil, err
		}
		if negated {
			e = &UnOp{Op: "NOT", E: e}
		}
		return e, nil
	}
	return l, nil
}

// parseInList parses the parenthesized list of an IN predicate and
// lowers it to OR-ed equalities. An empty list is a hard error — SQL
// does not allow it, and silently treating it as FALSE hides bugs in
// query generators.
func (p *parser) parseInList(l Node) (Node, error) {
	if !p.acceptSymbol("(") {
		return nil, p.errf("expected ( after IN")
	}
	if p.acceptSymbol(")") {
		return nil, p.errf("IN list must not be empty")
	}
	var out Node
	for {
		item, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		eq := &BinOp{Op: "=", L: l, R: item}
		if out == nil {
			out = eq
		} else {
			out = &BinOp{Op: "OR", L: out, R: eq}
		}
		if p.acceptSymbol(")") {
			return out, nil
		}
		if !p.acceptSymbol(",") {
			return nil, p.errf("expected , or ) in IN list")
		}
	}
}

func (p *parser) parseAdd() (Node, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.i++
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: t.text, L: l, R: r}
	}
}

func (p *parser) parseMul() (Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/" && t.text != "%") {
			return l, nil
		}
		p.i++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: t.text, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Node, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if n, ok := e.(*NumLit); ok {
			n.Neg = !n.Neg
			return n, nil
		}
		return &UnOp{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &NumLit{Float: f, IsFloat: true}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &NumLit{Int: n}, nil
	case tokString:
		p.i++
		return &StrLit{S: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.i++
			return &BoolLit{B: true}, nil
		case "FALSE":
			p.i++
			return &BoolLit{B: false}, nil
		case "NULL":
			p.i++
			return &NullLit{}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	case tokSymbol:
		if t.text == "(" {
			p.i++
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.acceptSymbol(")") {
				return nil, p.errf("missing closing parenthesis")
			}
			return e, nil
		}
		return nil, p.errf("unexpected symbol %q in expression", t.text)
	case tokIdent:
		p.i++
		name := t.text
		// Function call?
		if p.acceptSymbol("(") {
			fc := &FuncCall{Name: strings.ToLower(name)}
			if p.acceptSymbol("*") {
				fc.Star = true
				if !p.acceptSymbol(")") {
					return nil, p.errf("expected ) after *")
				}
				return fc, nil
			}
			if p.acceptSymbol(")") {
				return fc, nil
			}
			for {
				arg, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, arg)
				if p.acceptSymbol(")") {
					return fc, nil
				}
				if !p.acceptSymbol(",") {
					return nil, p.errf("expected , or ) in argument list")
				}
			}
		}
		// Qualified column reference?
		if p.acceptSymbol(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Col: col}, nil
		}
		return &ColRef{Col: name}, nil
	default:
		return nil, p.errf("unexpected end of input")
	}
}
