// Package sql implements a small SQL front end for PIER: a lexer, a
// recursive-descent parser for single-block SELECT statements over one
// or two tables, and a naive planner that lowers the statement to a
// core.Plan. The paper defers "declarative query parsing and
// optimization" to future work (§3.3, §7); this package provides the
// parsing layer that would sit above the existing query processor,
// enough to express all of §2.1's intrusion-detection queries and the
// §5.1 workload query.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // reserved word, upper-cased
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"TRUE": true, "FALSE": true, "NULL": true, "USING": true, "STRATEGY": true,
	"IN": true, "CREATE": true, "INDEX": true, "ON": true,
	"EXPLAIN": true, "TRACE": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// SQL line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return
		}
		l.pos++
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

func (l *lexer) emit(k tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	if keywords[strings.ToUpper(word)] {
		l.emit(tokKeyword, strings.ToUpper(word), start)
		return
	}
	l.emit(tokIdent, word, start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, sb.String(), start)
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at offset %d", start)
}

var twoCharSymbols = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true}

func (l *lexer) lexSymbol() error {
	start := l.pos
	if l.pos+1 < len(l.src) && twoCharSymbols[l.src[l.pos:l.pos+2]] {
		l.emit(tokSymbol, l.src[l.pos:l.pos+2], start)
		l.pos += 2
		return nil
	}
	switch c := l.src[l.pos]; c {
	case ',', '(', ')', '=', '<', '>', '*', '+', '-', '/', '%', '.':
		l.emit(tokSymbol, string(c), start)
		l.pos++
		return nil
	default:
		return fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
	}
}
