package sql

import (
	"fmt"
	"strings"

	"pier/internal/core"
	"pier/internal/wire"
)

// Table describes a relation to the planner: its column names, the
// primary-key column (which PIER uses as the base resourceID, §3.2.3),
// and any Prefix Hash Tree indexes declared over its columns.
type Table struct {
	Name    string
	Cols    []string
	Key     string
	Indexes []Index
}

// Index declares one PHT range index over a table column; the planner
// rewrites sargable predicates on Col into an IndexRangeScan over the
// index named Name.
type Index struct {
	Name string
	Col  string
}

// Catalog maps table names to schemas. The paper envisions these as the
// de-facto standard schemas of widely deployed software (§2.2d); here
// the application registers them.
type Catalog map[string]Table

// Col returns the index of a column, or -1.
func (t Table) Col(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Plan parses src and lowers it to an executable core.Plan. Both plain
// SELECT and EXPLAIN TRACE <select> are accepted; the latter lowers the
// inner SELECT with the plan's Trace flag forced on.
func Plan(src string, cat Catalog) (*core.Plan, error) {
	st, err := ParseStatement(src)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *Stmt:
		return ToPlan(s, cat)
	case *ExplainStmt:
		p, err := ToPlan(s.Select, cat)
		if err != nil {
			return nil, err
		}
		p.Trace = true
		return p, nil
	default:
		return nil, fmt.Errorf("sql: expected a SELECT statement")
	}
}

// ToPlan lowers a parsed statement against the catalog.
func ToPlan(st *Stmt, cat Catalog) (*core.Plan, error) {
	pl := &planner{st: st, cat: cat}
	return pl.lower()
}

type planner struct {
	st  *Stmt
	cat Catalog

	tables  []Table  // resolved FROM tables
	aliases []string // FROM aliases, same order
	offsets []int    // column offset of each table in the concatenated row
}

func (p *planner) lower() (*core.Plan, error) {
	if len(p.st.From) == 0 {
		return nil, fmt.Errorf("sql: no FROM tables")
	}
	off := 0
	for _, ti := range p.st.From {
		tb, ok := p.cat[ti.Name]
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", ti.Name)
		}
		p.tables = append(p.tables, tb)
		p.aliases = append(p.aliases, ti.Alias)
		p.offsets = append(p.offsets, off)
		off += len(tb.Cols)
	}

	plan := &core.Plan{}
	for i, tb := range p.tables {
		tr := core.TableRef{NS: tb.Name, RIDCol: -1}
		if k := tb.Col(tb.Key); k >= 0 {
			tr.RIDCol = k
		}
		plan.Tables = append(plan.Tables, tr)
		_ = i
	}

	// WHERE: split conjuncts into per-table filters, equi-join pairs,
	// and cross-table residue (evaluated post-join, like the workload's
	// f(R.num3, S.num3) predicate).
	var post []core.Expr
	for _, c := range conjuncts(p.st.Where) {
		refs, err := p.tablesReferenced(c)
		if err != nil {
			return nil, err
		}
		switch {
		case len(p.tables) == 2 && refs == 3:
			if l, r, ok := p.asJoinPair(c); ok {
				plan.Tables[0].JoinCols = append(plan.Tables[0].JoinCols, l)
				plan.Tables[1].JoinCols = append(plan.Tables[1].JoinCols, r)
				continue
			}
			e, err := p.toExpr(c, p.concatResolver())
			if err != nil {
				return nil, err
			}
			post = append(post, e)
		case refs == 2 && len(p.tables) == 2:
			e, err := p.toExpr(c, p.localResolver(1))
			if err != nil {
				return nil, err
			}
			plan.Tables[1].Filter = andExpr(plan.Tables[1].Filter, e)
		default: // refs == 1 or unqualified single-table
			e, err := p.toExpr(c, p.localResolver(0))
			if err != nil {
				return nil, err
			}
			plan.Tables[0].Filter = andExpr(plan.Tables[0].Filter, e)
		}
	}
	plan.PostFilter = andAll(post)
	p.attachIndexScan(plan)

	if err := p.lowerProjection(plan); err != nil {
		return nil, err
	}
	if p.st.Strategy != "" {
		s, err := strategyByName(p.st.Strategy)
		if err != nil {
			return nil, err
		}
		plan.Strategy = s
	} else if len(plan.Tables) == 2 {
		// No USING STRATEGY clause: mark the join so the initiating
		// node's statistics catalog may substitute the cost-based choice
		// (§7 "Catalogs and Query Optimization"). The default strategy
		// stands wherever no catalog answers.
		plan.AutoStrategy = true
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// lowerProjection handles the SELECT list, GROUP BY, and HAVING.
func (p *planner) lowerProjection(plan *core.Plan) error {
	aggs, err := p.collectAggregates()
	if err != nil {
		return err
	}
	if len(aggs) == 0 {
		if p.st.Having != nil || len(p.st.GroupBy) > 0 {
			return fmt.Errorf("sql: GROUP BY/HAVING require aggregates in SELECT")
		}
		if len(p.st.Select) == 1 && p.st.Select[0].Star {
			return nil // SELECT *: emit rows unchanged
		}
		for _, item := range p.st.Select {
			if item.Star {
				return fmt.Errorf("sql: * cannot be mixed with expressions")
			}
			e, err := p.toExpr(item.E, p.concatResolver())
			if err != nil {
				return err
			}
			plan.Output = append(plan.Output, e)
		}
		return nil
	}

	// Aggregation query: resolve GROUP BY on the pre-aggregation row.
	res := p.concatResolver()
	for _, g := range p.st.GroupBy {
		idx, err := res(g)
		if err != nil {
			return err
		}
		plan.GroupBy = append(plan.GroupBy, idx)
	}
	for _, a := range aggs {
		plan.Aggs = append(plan.Aggs, a.spec)
	}
	// SELECT and HAVING see groupCols ++ aggResults; aliases defined in
	// SELECT are visible in HAVING (the paper's "HAVING cnt > 10").
	aliasDefs := map[string]Node{}
	for _, item := range p.st.Select {
		if item.Alias != "" {
			aliasDefs[item.Alias] = item.E
		}
	}
	for _, item := range p.st.Select {
		if item.Star {
			return fmt.Errorf("sql: * is not valid with aggregates")
		}
		e, err := p.toAggExpr(item.E, aggs, nil)
		if err != nil {
			return err
		}
		plan.Output = append(plan.Output, e)
	}
	if p.st.Having != nil {
		e, err := p.toAggExpr(p.st.Having, aggs, aliasDefs)
		if err != nil {
			return err
		}
		plan.Having = e
	}
	return nil
}

type aggRef struct {
	call *FuncCall
	spec core.Aggregate
}

var aggKinds = map[string]core.AggKind{
	"count": core.Count, "sum": core.Sum, "avg": core.Avg, "min": core.Min, "max": core.Max,
}

// collectAggregates finds aggregate calls in SELECT and HAVING,
// deduplicated by (kind, column).
func (p *planner) collectAggregates() ([]aggRef, error) {
	var out []aggRef
	var collect func(n Node) error
	collect = func(n Node) error {
		switch n := n.(type) {
		case *FuncCall:
			kind, isAgg := aggKinds[n.Name]
			if !isAgg {
				for _, a := range n.Args {
					if err := collect(a); err != nil {
						return err
					}
				}
				return nil
			}
			col := -1
			if !n.Star {
				if len(n.Args) != 1 {
					return fmt.Errorf("sql: %s takes one column argument", n.Name)
				}
				cr, ok := n.Args[0].(*ColRef)
				if !ok {
					return fmt.Errorf("sql: %s argument must be a column", n.Name)
				}
				idx, err := p.concatResolver()(cr)
				if err != nil {
					return err
				}
				col = idx
			} else if kind != core.Count {
				return fmt.Errorf("sql: only count(*) may use *")
			}
			for _, a := range out {
				if a.spec.Kind == kind && a.spec.Col == col {
					return nil
				}
			}
			out = append(out, aggRef{call: n, spec: core.Aggregate{Kind: kind, Col: col}})
			return nil
		case *BinOp:
			if err := collect(n.L); err != nil {
				return err
			}
			return collect(n.R)
		case *UnOp:
			return collect(n.E)
		default:
			return nil
		}
	}
	for _, item := range p.st.Select {
		if item.Star {
			continue
		}
		if err := collect(item.E); err != nil {
			return nil, err
		}
	}
	if p.st.Having != nil {
		if err := collect(p.st.Having); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// toAggExpr rewrites an expression over the aggregation output row:
// group columns map to their position, aggregate calls to their slot,
// and aliases expand to their definitions.
func (p *planner) toAggExpr(n Node, aggs []aggRef, aliases map[string]Node) (core.Expr, error) {
	switch n := n.(type) {
	case *FuncCall:
		if kind, isAgg := aggKinds[n.Name]; isAgg {
			col := -1
			if !n.Star {
				cr, _ := n.Args[0].(*ColRef)
				idx, err := p.concatResolver()(cr)
				if err != nil {
					return nil, err
				}
				col = idx
			}
			_ = kind
			for j, a := range aggs {
				argCol := a.spec.Col
				if a.spec.Kind == aggKinds[n.Name] && argCol == col {
					return &core.Col{Idx: len(p.st.GroupBy) + j}, nil
				}
			}
			return nil, fmt.Errorf("sql: aggregate %s not collected", n.Name)
		}
		args := make([]core.Expr, len(n.Args))
		for i, a := range n.Args {
			e, err := p.toAggExpr(a, aggs, aliases)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		return &core.Call{Name: n.Name, Args: args}, nil
	case *ColRef:
		// Alias of a SELECT item?
		if n.Table == "" && aliases != nil {
			if def, ok := aliases[n.Col]; ok {
				return p.toAggExpr(def, aggs, nil)
			}
		}
		idx, err := p.concatResolver()(n)
		if err != nil {
			return nil, err
		}
		for k, g := range p.st.GroupBy {
			gidx, gerr := p.concatResolver()(g)
			if gerr == nil && gidx == idx {
				return &core.Col{Idx: k}, nil
			}
		}
		return nil, fmt.Errorf("sql: column %s is neither grouped nor aggregated", n.Col)
	case *BinOp:
		l, err := p.toAggExpr(n.L, aggs, aliases)
		if err != nil {
			return nil, err
		}
		r, err := p.toAggExpr(n.R, aggs, aliases)
		if err != nil {
			return nil, err
		}
		return binToCore(n.Op, l, r)
	case *UnOp:
		e, err := p.toAggExpr(n.E, aggs, aliases)
		if err != nil {
			return nil, err
		}
		return unToCore(n.Op, e)
	default:
		return p.toExpr(n, func(*ColRef) (int, error) {
			return 0, fmt.Errorf("sql: unexpected column in aggregate context")
		})
	}
}

// attachIndexScan rewrites the sargable part of a single-table WHERE
// clause into an IndexRangeScan: conjuncts of the shape col ⊙ literal
// (either orientation) on an indexed column tighten an encoded-key
// interval, and the tightest non-trivial interval is attached to the
// plan with AutoAccess set, so the initiating node's statistics catalog
// can still fall back to the full scan when the range is too broad.
// The table's Filter is left intact as the exact residual predicate —
// the order-preserving encoding is (deliberately) lossy, so the index
// only prunes, never decides.
func (p *planner) attachIndexScan(plan *core.Plan) {
	if len(p.tables) != 1 || len(p.tables[0].Indexes) == 0 {
		return
	}
	tb := p.tables[0]
	type interval struct {
		lo, hi  uint64
		bounded bool
	}
	byCol := map[int]*interval{}
	for _, c := range conjuncts(p.st.Where) {
		ci, op, v, ok := p.sargable(c)
		if !ok {
			continue
		}
		iv := byCol[ci]
		if iv == nil {
			iv = &interval{lo: 0, hi: ^uint64(0)}
			byCol[ci] = iv
		}
		k := wire.OrderedKey(v)
		// The encoding is non-strictly monotone, so strict bounds stay
		// inclusive here (values sharing the boundary's encoding must
		// survive pruning); the residual Filter applies the strictness.
		switch op {
		case core.EQ:
			if k > iv.lo {
				iv.lo = k
			}
			if k < iv.hi {
				iv.hi = k
			}
		case core.LT, core.LE:
			if k < iv.hi {
				iv.hi = k
			}
		case core.GT, core.GE:
			if k > iv.lo {
				iv.lo = k
			}
		default: // NE prunes nothing
			continue
		}
		iv.bounded = true
	}
	for _, idx := range tb.Indexes {
		ci := tb.Col(idx.Col)
		iv := byCol[ci]
		if ci < 0 || iv == nil || !iv.bounded {
			continue
		}
		plan.Tables[0].IndexScan = &core.IndexRangeScan{Index: idx.Name, Lo: iv.lo, Hi: iv.hi}
		plan.AutoAccess = true
		return
	}
}

// sargable recognizes a conjunct of the shape col ⊙ literal or
// literal ⊙ col over the single FROM table, normalizing all six
// comparison operators symmetrically (5 < x is x > 5, and so on) —
// never by desugaring some into others. It returns the column index
// and the operator as seen with the column on the left.
func (p *planner) sargable(n Node) (col int, op core.CmpOp, v core.Value, ok bool) {
	b, isBin := n.(*BinOp)
	if !isBin {
		return 0, 0, nil, false
	}
	cmpOp, isCmp := cmpOpByName[b.Op]
	if !isCmp {
		return 0, 0, nil, false
	}
	cr, crOK := b.L.(*ColRef)
	lit, litOK := literalValue(b.R)
	if !crOK || !litOK {
		// Flipped orientation: literal ⊙ col.
		cr, crOK = b.R.(*ColRef)
		lit, litOK = literalValue(b.L)
		if !crOK || !litOK {
			return 0, 0, nil, false
		}
		cmpOp = flipCmp(cmpOp)
	}
	ti, ci, err := p.resolveCol(cr)
	if err != nil || ti != 0 {
		return 0, 0, nil, false
	}
	return ci, cmpOp, lit, true
}

// cmpOpByName maps every SQL comparison to its first-class core.Cmp
// operator — all six, with no asymmetric desugaring.
var cmpOpByName = map[string]core.CmpOp{
	"=": core.EQ, "!=": core.NE, "<": core.LT, "<=": core.LE, ">": core.GT, ">=": core.GE,
}

// flipCmp mirrors an operator across its operands (literal ⊙ col →
// col ⊙' literal).
func flipCmp(op core.CmpOp) core.CmpOp {
	switch op {
	case core.LT:
		return core.GT
	case core.LE:
		return core.GE
	case core.GT:
		return core.LT
	case core.GE:
		return core.LE
	default: // EQ and NE are symmetric
		return op
	}
}

// literalValue extracts the core.Value of a literal AST node.
func literalValue(n Node) (core.Value, bool) {
	switch n := n.(type) {
	case *NumLit:
		if n.IsFloat {
			v := n.Float
			if n.Neg {
				v = -v
			}
			return v, true
		}
		v := n.Int
		if n.Neg {
			v = -v
		}
		return v, true
	case *StrLit:
		return n.S, true
	case *BoolLit:
		return n.B, true
	case *NullLit:
		return nil, true
	default:
		return nil, false
	}
}

// conjuncts flattens a WHERE tree over AND.
func conjuncts(n Node) []Node {
	if n == nil {
		return nil
	}
	if b, ok := n.(*BinOp); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []Node{n}
}

// tablesReferenced returns a bitmask of FROM tables referenced by n
// (bit 0 = first table).
func (p *planner) tablesReferenced(n Node) (int, error) {
	switch n := n.(type) {
	case *ColRef:
		ti, _, err := p.resolveCol(n)
		if err != nil {
			return 0, err
		}
		return 1 << ti, nil
	case *BinOp:
		l, err := p.tablesReferenced(n.L)
		if err != nil {
			return 0, err
		}
		r, err := p.tablesReferenced(n.R)
		if err != nil {
			return 0, err
		}
		return l | r, nil
	case *UnOp:
		return p.tablesReferenced(n.E)
	case *FuncCall:
		mask := 0
		for _, a := range n.Args {
			m, err := p.tablesReferenced(a)
			if err != nil {
				return 0, err
			}
			mask |= m
		}
		return mask, nil
	default:
		return 0, nil
	}
}

// asJoinPair recognizes t0.col = t1.col conjuncts.
func (p *planner) asJoinPair(n Node) (left, right int, ok bool) {
	b, isBin := n.(*BinOp)
	if !isBin || b.Op != "=" {
		return 0, 0, false
	}
	lc, lok := b.L.(*ColRef)
	rc, rok := b.R.(*ColRef)
	if !lok || !rok {
		return 0, 0, false
	}
	lt, li, lerr := p.resolveCol(lc)
	rt, ri, rerr := p.resolveCol(rc)
	if lerr != nil || rerr != nil || lt == rt {
		return 0, 0, false
	}
	if lt == 1 {
		lt, li, ri = rt, ri, li
	}
	_ = lt
	return li, ri, true
}

// resolveCol finds (table index, column index) for a reference.
func (p *planner) resolveCol(c *ColRef) (int, int, error) {
	if c.Table != "" {
		for i, a := range p.aliases {
			if a == c.Table || p.tables[i].Name == c.Table {
				if k := p.tables[i].Col(c.Col); k >= 0 {
					return i, k, nil
				}
				return 0, 0, fmt.Errorf("sql: table %s has no column %s", c.Table, c.Col)
			}
		}
		return 0, 0, fmt.Errorf("sql: unknown table alias %q", c.Table)
	}
	found, ti, ci := 0, 0, 0
	for i, tb := range p.tables {
		if k := tb.Col(c.Col); k >= 0 {
			found++
			ti, ci = i, k
		}
	}
	switch found {
	case 1:
		return ti, ci, nil
	case 0:
		return 0, 0, fmt.Errorf("sql: unknown column %q", c.Col)
	default:
		return 0, 0, fmt.Errorf("sql: ambiguous column %q", c.Col)
	}
}

type colResolver func(*ColRef) (int, error)

// localResolver resolves references as indices into one table's row.
func (p *planner) localResolver(table int) colResolver {
	return func(c *ColRef) (int, error) {
		ti, ci, err := p.resolveCol(c)
		if err != nil {
			return 0, err
		}
		if ti != table {
			return 0, fmt.Errorf("sql: column %s does not belong to table %s", c.Col, p.tables[table].Name)
		}
		return ci, nil
	}
}

// concatResolver resolves references as indices into the concatenated
// (joined) row.
func (p *planner) concatResolver() colResolver {
	return func(c *ColRef) (int, error) {
		ti, ci, err := p.resolveCol(c)
		if err != nil {
			return 0, err
		}
		return p.offsets[ti] + ci, nil
	}
}

// toExpr lowers an AST node to a core.Expr with the given column
// resolver.
func (p *planner) toExpr(n Node, res colResolver) (core.Expr, error) {
	switch n := n.(type) {
	case *NumLit, *StrLit, *BoolLit, *NullLit:
		v, _ := literalValue(n)
		return &core.Const{V: v}, nil
	case *ColRef:
		idx, err := res(n)
		if err != nil {
			return nil, err
		}
		return &core.Col{Idx: idx}, nil
	case *BinOp:
		l, err := p.toExpr(n.L, res)
		if err != nil {
			return nil, err
		}
		r, err := p.toExpr(n.R, res)
		if err != nil {
			return nil, err
		}
		return binToCore(n.Op, l, r)
	case *UnOp:
		e, err := p.toExpr(n.E, res)
		if err != nil {
			return nil, err
		}
		return unToCore(n.Op, e)
	case *FuncCall:
		if _, isAgg := aggKinds[n.Name]; isAgg {
			return nil, fmt.Errorf("sql: aggregate %s not allowed here", n.Name)
		}
		args := make([]core.Expr, len(n.Args))
		for i, a := range n.Args {
			e, err := p.toExpr(a, res)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		return &core.Call{Name: n.Name, Args: args}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported expression")
	}
}

func binToCore(op string, l, r core.Expr) (core.Expr, error) {
	if cmpOp, ok := cmpOpByName[op]; ok {
		return &core.Cmp{Op: cmpOp, L: l, R: r}, nil
	}
	switch op {
	case "AND":
		return &core.And{L: l, R: r}, nil
	case "OR":
		return &core.Or{L: l, R: r}, nil
	case "+":
		return &core.Arith{Op: core.Add, L: l, R: r}, nil
	case "-":
		return &core.Arith{Op: core.Sub, L: l, R: r}, nil
	case "*":
		return &core.Arith{Op: core.Mul, L: l, R: r}, nil
	case "/":
		return &core.Arith{Op: core.Div, L: l, R: r}, nil
	case "%":
		return &core.Arith{Op: core.Mod, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported operator %q", op)
	}
}

func unToCore(op string, e core.Expr) (core.Expr, error) {
	switch op {
	case "NOT":
		return &core.Not{E: e}, nil
	case "-":
		return &core.Arith{Op: core.Sub, L: &core.Const{V: int64(0)}, R: e}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported unary operator %q", op)
	}
}

func andExpr(a, b core.Expr) core.Expr {
	if a == nil {
		return b
	}
	return &core.And{L: a, R: b}
}

func andAll(es []core.Expr) core.Expr {
	var out core.Expr
	for _, e := range es {
		out = andExpr(out, e)
	}
	return out
}

func strategyByName(name string) (core.Strategy, error) {
	switch strings.ReplaceAll(strings.ReplaceAll(name, " ", ""), "-", "") {
	case "symmetrichash", "symhash":
		return core.SymmetricHash, nil
	case "fetchmatches", "fetch":
		return core.FetchMatches, nil
	case "symmetricsemijoin", "semijoin":
		return core.SymmetricSemiJoin, nil
	case "bloom", "bloomfilter", "bloomjoin":
		return core.BloomJoin, nil
	default:
		return 0, fmt.Errorf("sql: unknown join strategy %q", name)
	}
}
