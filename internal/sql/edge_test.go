package sql

import (
	"strings"
	"testing"

	"pier/internal/core"
)

// TestPlannerEdgeCases holds the front end to its error contract: every
// malformed statement must produce a graceful error mentioning the
// problem — never a panic, never a silently wrong plan.
func TestPlannerEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantErr string // substring of the expected error
	}{
		{"empty IN list", `SELECT pkey FROM S WHERE num2 IN ()`, "IN list must not be empty"},
		{"empty NOT IN list", `SELECT pkey FROM S WHERE num2 NOT IN ()`, "IN list must not be empty"},
		{"IN missing paren", `SELECT pkey FROM S WHERE num2 IN 1, 2`, "expected ( after IN"},
		{"IN unterminated list", `SELECT pkey FROM S WHERE num2 IN (1, 2`, "expected , or )"},
		{"NOT without IN", `SELECT pkey FROM S WHERE num2 NOT 3`, "trailing input"},
		{"duplicate USING STRATEGY", `SELECT R.pkey FROM R, S WHERE R.num1 = S.pkey USING STRATEGY bloom USING STRATEGY fetch`, "trailing input"},
		{"unknown strategy", `SELECT R.pkey FROM R, S WHERE R.num1 = S.pkey USING STRATEGY quantum`, "unknown join strategy"},
		{"USING without STRATEGY", `SELECT pkey FROM S USING bloom`, "expected STRATEGY"},
		{"aggregate over missing column", `SELECT sum(nosuch) FROM S`, "unknown column"},
		{"aggregate over wrong table's column", `SELECT sum(R.num9) FROM R`, "no column"},
		{"group by missing column", `SELECT count(*) FROM S GROUP BY nosuch`, "unknown column"},
		{"having on ungrouped column", `SELECT count(*) FROM S HAVING num2 > 1`, "neither grouped nor aggregated"},
		{"ungrouped select column", `SELECT num2, count(*) FROM S GROUP BY num3`, "neither grouped nor aggregated"},
		{"aggregate of expression", `SELECT sum(num2 + 1) FROM S`, "must be a column"},
		{"aggregate with two args", `SELECT sum(num2, num3) FROM S`, "one column argument"},
		{"star aggregate not count", `SELECT min(*) FROM S`, "only count(*)"},
		{"group by without aggregates", `SELECT pkey FROM S GROUP BY pkey`, "require aggregates"},
		{"star mixed with expressions", `SELECT *, pkey FROM S`, "cannot be mixed"},
		{"three tables", `SELECT 1 FROM R, S, robots`, "at most two tables"},
		{"unknown table", `SELECT x FROM nosuch`, "unknown table"},
		{"ambiguous column", `SELECT num2 FROM R, S WHERE R.num1 = S.pkey`, "ambiguous"},
		{"unknown table alias", `SELECT z.pkey FROM S`, "unknown table alias"},
		{"empty statement", ``, "expected SELECT"},
		{"bare select", `SELECT`, ""},
		{"no from", `SELECT 1`, "expected FROM"},
		{"trailing garbage", `SELECT pkey FROM S banana extra`, "trailing input"},
		{"unterminated string", `SELECT 'oops FROM S`, "unterminated string"},
		{"aggregate in where", `SELECT pkey FROM S WHERE count(pkey) > 1`, "not allowed here"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panicked on %q: %v", tc.src, r)
				}
			}()
			p, err := Plan(tc.src, testCat)
			if err == nil {
				t.Fatalf("accepted %q: %+v", tc.src, p)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestInListLowering verifies the IN desugaring: the predicate must
// behave as the OR of equalities over the listed values.
func TestInListLowering(t *testing.T) {
	p, err := Plan(`SELECT pkey FROM S WHERE num2 IN (1, 3, 5)`, testCat)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Tables[0].Filter
	if f == nil {
		t.Fatal("IN predicate produced no filter")
	}
	for _, tc := range []struct {
		num2 int64
		want bool
	}{{1, true}, {3, true}, {5, true}, {2, false}, {0, false}} {
		row := []core.Value{int64(9), tc.num2, int64(0)}
		if got := core.Truthy(f.Eval(row)); got != tc.want {
			t.Errorf("num2=%d: filter=%v, want %v", tc.num2, got, tc.want)
		}
	}

	notP, err := Plan(`SELECT pkey FROM S WHERE num2 NOT IN (1, 3)`, testCat)
	if err != nil {
		t.Fatal(err)
	}
	nf := notP.Tables[0].Filter
	for _, tc := range []struct {
		num2 int64
		want bool
	}{{1, false}, {3, false}, {2, true}} {
		row := []core.Value{int64(9), tc.num2, int64(0)}
		if got := core.Truthy(nf.Eval(row)); got != tc.want {
			t.Errorf("NOT IN num2=%d: filter=%v, want %v", tc.num2, got, tc.want)
		}
	}
}

// TestInListOnJoinQuery ensures IN composes with a join: it lands in
// the right table's local filter.
func TestInListOnJoinQuery(t *testing.T) {
	p, err := Plan(`SELECT R.pkey, S.pkey FROM R, S WHERE R.num1 = S.pkey AND S.num2 IN (1, 2)`, testCat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tables[1].Filter == nil {
		t.Fatal("S-side IN predicate not pushed to S's filter")
	}
	if p.Tables[0].Filter != nil {
		t.Fatal("IN predicate leaked into R's filter")
	}
}
