package sql

// Table tests for the comparison normalization: all six operators
// lower to first-class core.Cmp ops (no asymmetric desugaring), in
// both operand orientations, and the sargable-predicate rewrite
// extracts the same six symmetrically when an index covers the column.

import (
	"fmt"
	"testing"

	"pier/internal/core"
	"pier/internal/wire"
)

var cmpCat = Catalog{
	"T": {Name: "T", Cols: []string{"pkey", "num"}, Key: "pkey",
		Indexes: []Index{{Name: "t_num", Col: "num"}}},
}

// filterCmp digs the single Cmp out of a planned table filter.
func filterCmp(t *testing.T, src string) *core.Cmp {
	t.Helper()
	p, err := Plan(src, cmpCat)
	if err != nil {
		t.Fatalf("Plan(%q): %v", src, err)
	}
	c, ok := p.Tables[0].Filter.(*core.Cmp)
	if !ok {
		t.Fatalf("Plan(%q): filter is %T, want *core.Cmp", src, p.Tables[0].Filter)
	}
	return c
}

func TestAllSixComparisonsLowerToFirstClassCmp(t *testing.T) {
	cases := []struct {
		op   string
		want core.CmpOp
	}{
		{"=", core.EQ}, {"!=", core.NE}, {"<>", core.NE},
		{"<", core.LT}, {"<=", core.LE}, {">", core.GT}, {">=", core.GE},
	}
	for _, tc := range cases {
		c := filterCmp(t, fmt.Sprintf("SELECT pkey FROM T WHERE num %s 7", tc.op))
		if c.Op != tc.want {
			t.Errorf("num %s 7: lowered to %v, want %v", tc.op, c.Op, tc.want)
		}
		if _, isCol := c.L.(*core.Col); !isCol {
			t.Errorf("num %s 7: left operand is %T, want column", tc.op, c.L)
		}
	}
}

func TestFlippedComparisonsStayFirstClass(t *testing.T) {
	// 7 ⊙ num keeps the literal on the left in the filter (no
	// rewriting of the expression tree), but the sargable extractor
	// must still normalize the operator.
	cases := []struct {
		op   string
		want core.CmpOp // as stored, literal on the left
	}{
		{"=", core.EQ}, {"!=", core.NE},
		{"<", core.LT}, {"<=", core.LE}, {">", core.GT}, {">=", core.GE},
	}
	for _, tc := range cases {
		c := filterCmp(t, fmt.Sprintf("SELECT pkey FROM T WHERE 7 %s num", tc.op))
		if c.Op != tc.want {
			t.Errorf("7 %s num: lowered to %v, want %v", tc.op, c.Op, tc.want)
		}
	}
}

func TestSargableExtractionBothOrientations(t *testing.T) {
	k := wire.OrderedKey(int64(7))
	cases := []struct {
		src    string
		lo, hi uint64
	}{
		{"num = 7", k, k},
		{"num < 7", 0, k},
		{"num <= 7", 0, k},
		{"num > 7", k, ^uint64(0)},
		{"num >= 7", k, ^uint64(0)},
		// Flipped orientation normalizes to the same intervals.
		{"7 = num", k, k},
		{"7 > num", 0, k},  // 7 > num ⇔ num < 7
		{"7 >= num", 0, k}, // ⇔ num <= 7
		{"7 < num", k, ^uint64(0)},
		{"7 <= num", k, ^uint64(0)},
		// BETWEEN shape: two conjuncts tighten both sides.
		{"num >= 7 AND num <= 7", k, k},
	}
	for _, tc := range cases {
		p, err := Plan("SELECT pkey FROM T WHERE "+tc.src, cmpCat)
		if err != nil {
			t.Fatalf("Plan(%q): %v", tc.src, err)
		}
		is := p.Tables[0].IndexScan
		if is == nil {
			t.Errorf("%s: no index scan attached", tc.src)
			continue
		}
		if is.Index != "t_num" || is.Lo != tc.lo || is.Hi != tc.hi {
			t.Errorf("%s: got [%x, %x] on %s, want [%x, %x] on t_num",
				tc.src, is.Lo, is.Hi, is.Index, tc.lo, tc.hi)
		}
		if !p.AutoAccess {
			t.Errorf("%s: AutoAccess not set", tc.src)
		}
		if p.Tables[0].Filter == nil {
			t.Errorf("%s: residual filter was dropped", tc.src)
		}
	}
}

func TestNotSargable(t *testing.T) {
	for _, src := range []string{
		"num != 7",             // NE prunes nothing
		"pkey < 7",             // no index on pkey
		"num + 1 < 7",          // not a bare column
		"num < pkey",           // no literal side
		"num < 7 OR num > 900", // disjunction is not a conjunct
	} {
		p, err := Plan("SELECT pkey FROM T WHERE "+src, cmpCat)
		if err != nil {
			t.Fatalf("Plan(%q): %v", src, err)
		}
		if p.Tables[0].IndexScan != nil {
			t.Errorf("%s: unexpected index scan %v", src, p.Tables[0].IndexScan)
		}
	}
}

func TestJoinPlansGetNoIndexScan(t *testing.T) {
	cat := Catalog{
		"T": cmpCat["T"],
		"U": {Name: "U", Cols: []string{"pkey", "ref"}, Key: "pkey"},
	}
	p, err := Plan("SELECT T.pkey FROM T, U WHERE T.pkey = U.ref AND T.num < 7", cat)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	for i, tr := range p.Tables {
		if tr.IndexScan != nil {
			t.Errorf("table %d of a join carries an index scan", i)
		}
	}
}
