package sql

import (
	"strings"
	"testing"

	"pier/internal/core"
)

var testCat = Catalog{
	"R":            {Name: "R", Cols: []string{"pkey", "num1", "num2", "num3"}, Key: "pkey"},
	"S":            {Name: "S", Cols: []string{"pkey", "num2", "num3"}, Key: "pkey"},
	"intrusions":   {Name: "intrusions", Cols: []string{"fingerprint", "address"}, Key: "fingerprint"},
	"reputation":   {Name: "reputation", Cols: []string{"address", "weight"}, Key: "address"},
	"spamGateways": {Name: "spamGateways", Cols: []string{"source", "smtpGWDomain"}, Key: "source"},
	"robots":       {Name: "robots", Cols: []string{"clientDomain"}, Key: "clientDomain"},
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("SELECT a.b, 'it''s', 3.5 >= x -- comment\nFROM t")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", ",", "3.5", ">=", "x", "FROM", "t", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	_ = kinds
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("SELECT 'oops"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestParseWorkloadQuery(t *testing.T) {
	st, err := Parse(`
		SELECT R.pkey, S.pkey
		FROM R, S
		WHERE R.num1 = S.pkey AND R.num2 > 49 AND S.num2 > 49
		  AND f(R.num3, S.num3) > 49`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.From) != 2 || len(st.Select) != 2 {
		t.Fatalf("parsed %d tables, %d select items", len(st.From), len(st.Select))
	}
	if len(conjuncts(st.Where)) != 4 {
		t.Fatalf("conjuncts = %d, want 4", len(conjuncts(st.Where)))
	}
}

// TestParseExplainTrace: EXPLAIN TRACE wraps a SELECT; Plan lowers it
// with the Trace flag forced on, and a plain SELECT stays untraced.
func TestParseExplainTrace(t *testing.T) {
	st, err := ParseStatement("EXPLAIN TRACE SELECT R.pkey FROM R WHERE R.num2 > 49")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(*ExplainStmt)
	if !ok {
		t.Fatalf("parsed %T, want *ExplainStmt", st)
	}
	if len(ex.Select.From) != 1 || ex.Select.From[0].Name != "R" {
		t.Fatalf("inner select: %+v", ex.Select)
	}

	p, err := Plan("EXPLAIN TRACE SELECT R.pkey FROM R WHERE R.num2 > 49", testCat)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Trace {
		t.Fatal("EXPLAIN TRACE plan not marked traced")
	}
	plain, err := Plan("SELECT R.pkey FROM R WHERE R.num2 > 49", testCat)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace {
		t.Fatal("plain SELECT plan marked traced")
	}

	for _, bad := range []string{
		"EXPLAIN SELECT R.pkey FROM R", // plain EXPLAIN: no static printer
		"EXPLAIN TRACE",
		"EXPLAIN TRACE CREATE INDEX r1 ON R (num1)",
		"EXPLAIN TRACE SELECT R.pkey FROM R WHERE",
	} {
		if _, err := ParseStatement(bad); err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error", bad)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT x",
		"SELECT x FROM",
		"SELECT x FROM a, b, c",
		"SELECT x FROM t WHERE",
		"SELECT x FROM t GROUP x",
		"SELECT x FROM t WHERE (a = 1",
		"SELECT f(x FROM t",
		"SELECT x FROM t extra garbage",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestPlanWorkloadQuery(t *testing.T) {
	p, err := Plan(`
		SELECT R.pkey, S.pkey
		FROM R, S
		WHERE R.num1 = S.pkey AND R.num2 > 49 AND S.num2 > 49
		  AND f(R.num3, S.num3) > 49
		USING STRATEGY 'symmetric semi-join'`, testCat)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tables) != 2 {
		t.Fatal("not a join plan")
	}
	if got := p.Tables[0].JoinCols; len(got) != 1 || got[0] != 1 {
		t.Fatalf("R join cols = %v, want [1] (num1)", got)
	}
	if got := p.Tables[1].JoinCols; len(got) != 1 || got[0] != 0 {
		t.Fatalf("S join cols = %v, want [0] (pkey)", got)
	}
	if p.Tables[0].Filter == nil || p.Tables[1].Filter == nil {
		t.Fatal("per-table filters not pushed down")
	}
	if p.PostFilter == nil {
		t.Fatal("cross-table f() predicate must remain post-join")
	}
	if p.Strategy != core.SymmetricSemiJoin {
		t.Fatalf("strategy = %v", p.Strategy)
	}
	if p.Tables[0].RIDCol != 0 || p.Tables[1].RIDCol != 0 {
		t.Fatalf("RID cols = %d,%d, want 0,0", p.Tables[0].RIDCol, p.Tables[1].RIDCol)
	}
	// Filters evaluate against local rows.
	rRow := []core.Value{int64(1), int64(2), int64(60), int64(3)}
	if !core.Truthy(p.Tables[0].Filter.Eval(rRow)) {
		t.Fatal("R filter rejected num2=60")
	}
	rRow[2] = int64(10)
	if core.Truthy(p.Tables[0].Filter.Eval(rRow)) {
		t.Fatal("R filter accepted num2=10")
	}
}

func TestPlanAggregateWithHavingAlias(t *testing.T) {
	// §2.1: SELECT I.fingerprint, count(*) AS cnt FROM intrusions I
	//       GROUP BY I.fingerprint HAVING cnt > 10
	p, err := Plan(`
		SELECT I.fingerprint, count(*) AS cnt
		FROM intrusions AS I
		GROUP BY I.fingerprint
		HAVING cnt > 10`, testCat)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.GroupBy) != 1 || p.GroupBy[0] != 0 {
		t.Fatalf("GroupBy = %v", p.GroupBy)
	}
	if len(p.Aggs) != 1 || p.Aggs[0].Kind != core.Count || p.Aggs[0].Col != -1 {
		t.Fatalf("Aggs = %v", p.Aggs)
	}
	// Having row = [fingerprint, count]: passes for count=11.
	if !core.Truthy(p.Having.Eval([]core.Value{"fp", int64(11)})) {
		t.Fatal("HAVING rejected cnt=11")
	}
	if core.Truthy(p.Having.Eval([]core.Value{"fp", int64(10)})) {
		t.Fatal("HAVING accepted cnt=10")
	}
}

func TestPlanWeightedReputationQuery(t *testing.T) {
	// §2.1's third query: join + group by + computed output.
	p, err := Plan(`
		SELECT I.fingerprint, count(*) * sum(R.weight) AS wcnt
		FROM intrusions AS I, reputation AS R
		WHERE R.address = I.address
		GROUP BY I.fingerprint
		HAVING wcnt > 10`, testCat)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tables) != 2 || len(p.Aggs) != 2 {
		t.Fatalf("tables=%d aggs=%v", len(p.Tables), p.Aggs)
	}
	// Output row over [fp, count, sum]: wcnt = count*sum.
	out := p.Output[1].Eval([]core.Value{"fp", int64(4), int64(7)})
	if out != int64(28) {
		t.Fatalf("wcnt = %v, want 28", out)
	}
}

func TestPlanSimpleJoinDomains(t *testing.T) {
	// §2.1's first query.
	p, err := Plan(`
		SELECT S.source
		FROM spamGateways AS S, robots AS R
		WHERE S.smtpGWDomain = R.clientDomain`, testCat)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tables[0].JoinCols) != 1 {
		t.Fatal("join column not recognized")
	}
	if len(p.Output) != 1 {
		t.Fatalf("output = %v", p.Output)
	}
}

func TestPlanSelectStar(t *testing.T) {
	p, err := Plan("SELECT * FROM intrusions WHERE fingerprint = 'x'", testCat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Output != nil {
		t.Fatal("SELECT * should emit rows unchanged")
	}
	if p.Tables[0].Filter == nil {
		t.Fatal("filter lost")
	}
}

func TestPlanErrors(t *testing.T) {
	bad := []string{
		"SELECT x FROM nosuch",
		"SELECT nosuchcol FROM intrusions",
		"SELECT address FROM intrusions, reputation",               // ambiguous
		"SELECT fingerprint FROM intrusions GROUP BY address",      // non-grouped output... needs agg first
		"SELECT count(*) FROM intrusions HAVING fingerprint = 'x'", // ungrouped col in HAVING
		"SELECT sum(1+2) FROM intrusions",                          // agg of non-column
		"SELECT fingerprint FROM intrusions USING STRATEGY 'nope'",
		"SELECT sum(*) FROM intrusions",
	}
	for _, src := range bad {
		if _, err := Plan(src, testCat); err == nil {
			t.Errorf("Plan(%q) succeeded, want error", src)
		}
	}
}

func TestPlanUnqualifiedColumnsResolveUniquely(t *testing.T) {
	p, err := Plan("SELECT fingerprint FROM intrusions WHERE address = '1.2.3.4'", testCat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tables[0].Filter == nil || len(p.Output) != 1 {
		t.Fatal("unqualified resolution failed")
	}
}

func TestStrategyNames(t *testing.T) {
	cases := map[string]core.Strategy{
		"symmetric hash": core.SymmetricHash,
		"fetch matches":  core.FetchMatches,
		"semi-join":      core.SymmetricSemiJoin,
		"bloom":          core.BloomJoin,
	}
	for name, want := range cases {
		got, err := strategyByName(name)
		if err != nil || got != want {
			t.Errorf("strategyByName(%q) = %v, %v", name, got, err)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	st, err := Parse("SELECT a FROM intrusions WHERE 1 + 2 * 3 = 7 AND NOT 1 > 2 OR fingerprint = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	top, ok := st.Where.(*BinOp)
	if !ok || top.Op != "OR" {
		t.Fatalf("top-level operator should be OR, got %T", st.Where)
	}
	left, ok := top.L.(*BinOp)
	if !ok || left.Op != "AND" {
		t.Fatalf("left of OR should be AND, got %v", top.L)
	}
	eq, ok := left.L.(*BinOp)
	if !ok || eq.Op != "=" {
		t.Fatalf("arith comparison lost: %v", left.L)
	}
	add, ok := eq.L.(*BinOp)
	if !ok || add.Op != "+" {
		t.Fatalf("+ should bind looser than *: %v", eq.L)
	}
	if mul, ok := add.R.(*BinOp); !ok || mul.Op != "*" {
		t.Fatalf("* should bind tighter: %v", add.R)
	}
}

func TestColHelper(t *testing.T) {
	tb := testCat["R"]
	if tb.Col("num2") != 2 || tb.Col("nope") != -1 {
		t.Fatal("Table.Col broken")
	}
}

func TestPlanStringsAndNegativeNumbers(t *testing.T) {
	p, err := Plan("SELECT fingerprint FROM intrusions WHERE address != 'x' AND 0 > -5", testCat)
	if err != nil {
		t.Fatal(err)
	}
	if !core.Truthy(p.Tables[0].Filter.Eval([]core.Value{"fp", "y"})) {
		t.Fatal("filter should pass address=y")
	}
}

func TestUnsupportedMultiwayJoinRejected(t *testing.T) {
	_, err := Parse("SELECT a FROM x, y, z")
	if err == nil || !strings.Contains(err.Error(), "two tables") {
		t.Fatalf("err = %v", err)
	}
}

func TestPlanMarksAutoStrategy(t *testing.T) {
	// A join with no USING STRATEGY is the optimizer's to decide.
	p, err := Plan(`SELECT R.pkey FROM R, S WHERE R.num1 = S.pkey`, testCat)
	if err != nil {
		t.Fatal(err)
	}
	if !p.AutoStrategy {
		t.Fatal("join without USING STRATEGY must be marked AutoStrategy")
	}
	// An explicit clause pins the choice.
	p, err = Plan(`SELECT R.pkey FROM R, S WHERE R.num1 = S.pkey USING STRATEGY 'bloom'`, testCat)
	if err != nil {
		t.Fatal(err)
	}
	if p.AutoStrategy || p.Strategy != core.BloomJoin {
		t.Fatalf("USING STRATEGY must pin: auto=%v strategy=%v", p.AutoStrategy, p.Strategy)
	}
	// Single-table plans have nothing to choose.
	p, err = Plan(`SELECT * FROM intrusions`, testCat)
	if err != nil {
		t.Fatal(err)
	}
	if p.AutoStrategy {
		t.Fatal("single-table plan marked AutoStrategy")
	}
}
