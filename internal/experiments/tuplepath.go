package experiments

// The tuple-path microbenchmark: the result-frame hot path measured
// both as a codec loop and end to end. The codec half compares the
// pre-pooling discipline (every frame Marshal-ed into a fresh buffer,
// Unmarshal-ed by a fresh un-interned decoder, the shell left for the
// GC) against the shipping discipline (frames appended to a reused
// scratch buffer, decoded by a persistent interned decoder into pooled
// shells that are recycled) in the same process, so the speedup and
// allocation ratio are free of cross-run noise. The loopback half
// drives the full stack — emit, batched flush, encode, TCP, decode,
// dispatch shard, collector callback — through a 2-node real
// deployment and reports end-to-end tuples/sec.
//
// Allocation counts are deterministic for the pinned frame shape and
// are gated by -baseline; tuple rates are wall-clock and recorded for
// trajectory only.

import (
	"fmt"
	"sync"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/env"
	"pier/internal/workload"
)

// TuplePathConfig parameterizes the tuple-path measurement.
type TuplePathConfig struct {
	TuplesPerFrame int
	Frames         int // codec-loop sample size per discipline
	ScanTuples     int // |S| for the loopback TCP scan
	Seed           int64
}

// DefaultTuplePath returns the scaled-down (or full-scale) defaults.
func DefaultTuplePath(full bool) TuplePathConfig {
	cfg := TuplePathConfig{TuplesPerFrame: 32, Frames: 4000, ScanTuples: 4000, Seed: 31}
	if full {
		cfg.Frames, cfg.ScanTuples = 40000, 20000
	}
	return cfg
}

// TuplePath runs both codec disciplines and the loopback scan, and
// renders the comparison plus machine-readable records.
func TuplePath(cfg TuplePathConfig) (*Table, []BenchRecord) {
	baseline, err := core.MeasureTuplePath(cfg.TuplesPerFrame, cfg.Frames, false)
	if err != nil {
		panic(err)
	}
	pooled, err := core.MeasureTuplePath(cfg.TuplesPerFrame, cfg.Frames, true)
	if err != nil {
		panic(err)
	}
	received, expected, last, tps := loopbackScan(cfg)

	allocRatio := 0.0
	if t := pooled.EncodeAllocs + pooled.DecodeAllocs; t > 0 {
		allocRatio = (baseline.EncodeAllocs + baseline.DecodeAllocs) / t
	}
	decSpeedup := 0.0
	if pooled.DecodeTuplesPerSec > 0 && baseline.DecodeTuplesPerSec > 0 {
		decSpeedup = pooled.DecodeTuplesPerSec / baseline.DecodeTuplesPerSec
	}
	tbl := &Table{
		Title: fmt.Sprintf("Tuple path: codec disciplines (%d-tuple frames) and loopback TCP scan (|S|=%d)",
			cfg.TuplesPerFrame, cfg.ScanTuples),
		Note: fmt.Sprintf("allocs per frame round-trip: %.1fx fewer pooled; decode speedup %.1fx (wall-clock, informational)",
			allocRatio, decSpeedup),
		Headers: []string{"path", "frame B", "enc allocs/frame", "dec allocs/frame", "enc Mtup/s", "dec Mtup/s"},
	}
	var records []BenchRecord
	for _, c := range []core.TuplePathCost{baseline, pooled} {
		mode := "marshal-per-frame"
		if c.Pooled {
			mode = "pooled+interned"
		}
		tbl.Rows = append(tbl.Rows, []string{
			mode, fmt.Sprint(c.FrameBytes),
			fmt.Sprintf("%.1f", c.EncodeAllocs), fmt.Sprintf("%.1f", c.DecodeAllocs),
			fmt.Sprintf("%.2f", c.EncodeTuplesPerSec/1e6), fmt.Sprintf("%.2f", c.DecodeTuplesPerSec/1e6),
		})
		records = append(records,
			BenchRecord{
				Scenario: "tuplepath", Workload: "codec-encode", Strategy: mode,
				AllocsPerOp: c.EncodeAllocs, TuplesPerSec: c.EncodeTuplesPerSec,
			},
			BenchRecord{
				Scenario: "tuplepath", Workload: "codec-decode", Strategy: mode,
				AllocsPerOp: c.DecodeAllocs, TuplesPerSec: c.DecodeTuplesPerSec,
			})
	}

	tbl.Rows = append(tbl.Rows, []string{
		"loopback tcp scan", "-", "-", "-", "-",
		fmt.Sprintf("%.3f", tps/1e6),
	})
	rec := BenchRecord{
		Scenario: "tuplepath", Workload: "loopback-scan", Strategy: "tcp",
		Nodes: 2, Results: received, Expected: expected,
		TimeToLastSec: last.Seconds(), TuplesPerSec: tps,
	}
	if s := rec.TimeToLastSec; s > 0 {
		rec.ResultsPerSec = float64(received) / s
	}
	records = append(records, rec)
	return tbl, records
}

// loopbackScan deploys two real TCP nodes on loopback, loads S across
// them, and streams a 50%-selective scan back to the initiator.
func loopbackScan(cfg TuplePathConfig) (received, expected int, last time.Duration, tps float64) {
	opts := pier.DefaultOptions()
	first, err := pier.StartNode("127.0.0.1:0", env.NilAddr, cfg.Seed, opts)
	if err != nil {
		panic(err)
	}
	second, err := pier.StartNode("127.0.0.1:0", first.Addr(), cfg.Seed+1, opts)
	if err != nil {
		panic(err)
	}
	nodes := []*pier.RealNode{first, second}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	if !second.WaitReady(15 * time.Second) {
		panic("tuplepath: second node failed to join")
	}

	// Puts are asynchronous fire-and-forget sends, and the transport
	// drops frames beyond the per-peer outbox like a congested
	// datagram network would — so load in chunks, letting the store
	// absorb each one before issuing the next, and wait for the whole
	// load before querying.
	tables := workload.Generate(workload.Config{STuples: cfg.ScanTuples, Seed: cfg.Seed + 9, PadBytes: 64})
	loadDeadline := time.Now().Add(30 * time.Second)
	const chunk = 256
	for off := 0; off < len(tables.S); off += chunk {
		end := off + chunk
		if end > len(tables.S) {
			end = len(tables.S)
		}
		for i, s := range tables.S[off:end] {
			nodes[(off+i)%2].Publish("S", core.ValueString(s.Vals[workload.SPkey]), int64(off+i), s, 10*time.Minute)
		}
		for time.Now().Before(loadDeadline) {
			stored := 0
			for _, nd := range nodes {
				nd.Do(func() { stored += nd.Provider().Store().TotalLen() })
			}
			if stored >= end {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	_, c2, _ := workload.Constants(0.5, 0.5, 0.5)
	for _, s := range tables.S {
		if v, ok := s.Vals[workload.SNum2].(int64); ok && v > c2 {
			expected++
		}
	}
	plan := &core.Plan{
		Tables: []core.TableRef{{
			NS:     "S",
			Filter: &core.Cmp{Op: core.GT, L: &core.Col{Idx: workload.SNum2}, R: &core.Const{V: c2}},
			RIDCol: workload.SPkey,
		}},
		Output: []core.Expr{&core.Col{Idx: workload.SPkey}, &core.Col{Idx: workload.SNum2}},
		TTL:    10 * time.Minute,
	}

	var mu sync.Mutex
	start := time.Now()
	id, err := nodes[0].Query(plan, func(*core.Tuple, int) {
		mu.Lock()
		received++
		last = time.Since(start)
		mu.Unlock()
	})
	if err != nil {
		panic(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		cnt := received
		mu.Unlock()
		if cnt >= expected {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	nodes[0].Cancel(id)
	mu.Lock()
	defer mu.Unlock()
	if last > 0 {
		tps = float64(received) / last.Seconds()
	}
	return received, expected, last, tps
}
