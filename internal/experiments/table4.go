package experiments

import (
	"fmt"
	"math"
	"time"

	"pier/internal/core"
	"pier/internal/topology"
)

// Table4Config drives §5.5.1: the four join strategies with infinite
// bandwidth, measuring the average time to the last result tuple.
type Table4Config struct {
	Nodes   int
	STuples int
	Runs    int // independent simulations averaged (paper averages runs)
	Seed    int64
}

// DefaultTable4 returns the scaled default (paper: n = 1024).
func DefaultTable4(full bool) Table4Config {
	cfg := Table4Config{Nodes: 256, STuples: 256, Runs: 2, Seed: 11}
	if full {
		cfg.Nodes, cfg.STuples, cfg.Runs = 1024, 1024, 3
	}
	return cfg
}

// Table4 reproduces "Average time to receive the last result tuple" for
// the four strategies under propagation delay only, and appends the
// paper's closed-form model evaluated at this network size.
func Table4(cfg Table4Config) *Table {
	strategies := []core.Strategy{core.SymmetricHash, core.FetchMatches, core.SymmetricSemiJoin, core.BloomJoin}
	t := &Table{
		Title:   fmt.Sprintf("Table 4: avg time to last result tuple, infinite bandwidth, n=%d", cfg.Nodes),
		Note:    "paper (n=1024): sym-hash 3.73s, fetch-matches 3.78s, semi-join 4.47s, bloom 6.85s",
		Headers: []string{"strategy", "measured (s)", "analytic model (s)"},
	}
	for _, s := range strategies {
		var sum time.Duration
		for run := 0; run < cfg.Runs; run++ {
			res := RunJoin(JoinConfig{
				Nodes:    cfg.Nodes,
				Topo:     topology.NewFullMeshInfinite(),
				Seed:     cfg.Seed + int64(run)*101,
				Strategy: s,
				STuples:  cfg.STuples,
				// With unlimited bandwidth the pad only affects transfer
				// volume, not timing; keep it small to speed simulation.
				PadBytes:  64,
				BloomWait: 4 * time.Second,
			})
			sum += res.TimeToLast
		}
		measured := sum / time.Duration(cfg.Runs)
		t.Rows = append(t.Rows, []string{s.String(), secs(measured), secs(analyticJoinTime(s, cfg.Nodes, 4*time.Second))})
	}
	return t
}

// analyticJoinTime evaluates the paper's §5.5.1 closed-form costs with
// d=4 CAN (lookup ≈ n^(1/4) hops), 100 ms per hop, and a measured-style
// multicast time. The paper's terms per strategy:
//
//	symmetric hash:  multicast + lookup + put + result
//	fetch matches:   multicast + lookup + 3 direct
//	semi-join:       multicast + 2 lookups + 4 direct
//	bloom:           2 multicasts + 2 lookups + 3 direct
func analyticJoinTime(s core.Strategy, n int, bloomWait time.Duration) time.Duration {
	const hop = 100 * time.Millisecond
	lookup := time.Duration(math.Pow(float64(n), 0.25) * float64(hop))
	multicast := multicastEstimate(n)
	direct := hop
	switch s {
	case core.SymmetricHash:
		return multicast + lookup + 2*direct
	case core.FetchMatches:
		return multicast + lookup + 3*direct
	case core.SymmetricSemiJoin:
		return multicast + 2*lookup + 4*direct
	default: // Bloom
		return multicast + bloomWait + multicastEstimate(n) + 2*lookup + 3*direct
	}
}

// multicastEstimate approximates flooding depth over a d=4 CAN: roughly
// the overlay diameter, ~(d/4)·n^(1/d) hops with some spread.
func multicastEstimate(n int) time.Duration {
	const hop = 100 * time.Millisecond
	depth := math.Pow(float64(n), 0.25) * 1.5
	return time.Duration(depth * float64(hop))
}
