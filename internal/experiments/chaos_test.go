package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestChurnMatrixSmoke runs a tiny matrix end to end: recall must be
// measured everywhere, invariants must hold, and the fault-free column
// must beat the heavily churned one.
func TestChurnMatrixSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is slow")
	}
	cfg := ChurnMatrixConfig{
		Nodes:          32,
		STuples:        50,
		Queries:        2,
		QueryEvery:     45 * time.Second,
		RefreshPeriods: []time.Duration{45 * time.Second},
		ChurnRates:     []float64{0, 8},
		GracefulFrac:   0.3,
		BaseLoss:       0.01,
		Seed:           11,
	}
	tbl := ChurnMatrix(cfg)
	if len(tbl.Rows) != 2 || len(tbl.Rows[0]) != 2 {
		t.Fatalf("matrix shape wrong: %+v", tbl.Rows)
	}
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			if strings.HasSuffix(cell, "*") {
				t.Errorf("invariant violation in cell %q (row %s)", cell, row[0])
			}
		}
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscanf(s, "%f", &v); err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	calm, churned := parse(tbl.Rows[0][1]), parse(tbl.Rows[1][1])
	if calm < churned-5 { // churn should not *improve* recall
		t.Errorf("recall under churn (%v) exceeds calm recall (%v)", churned, calm)
	}
	if calm < 50 {
		t.Errorf("calm recall implausibly low: %v", calm)
	}
}
