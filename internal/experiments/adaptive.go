package experiments

// The adaptive-planner experiment: does the self-maintaining statistics
// catalog plus the §7 cost model actually pick good plans? Three join
// workloads are constructed so that a different strategy wins each —
// Fetch Matches when the inner table is hashed on the join attribute,
// symmetric hash for a many-to-many join of small tuples, and the Bloom
// rewrite when few tuples have join partners. Each workload runs once
// per fixed feasible strategy and once with AutoStrategy over a warmed
// catalog; the adaptive run must land on (or beat) the best fixed
// strategy without being told anything.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/opt"
	"pier/internal/topology"
	"pier/internal/workload"
)

// AdaptiveConfig parameterizes the adaptive-vs-fixed comparison.
type AdaptiveConfig struct {
	Nodes   int
	STuples int // |S|; |R| = 10 × |S|
	Seed    int64
	Limit   time.Duration
	// StatsInterval is the catalog refresh period of the adaptive runs.
	StatsInterval time.Duration
}

// DefaultAdaptive returns the scaled-down (or paper-scale) defaults.
func DefaultAdaptive(full bool) AdaptiveConfig {
	cfg := AdaptiveConfig{Nodes: 32, STuples: 150, Seed: 23,
		Limit: 4 * time.Hour, StatsInterval: 30 * time.Second}
	if full {
		cfg.Nodes, cfg.STuples = 128, 600
	}
	return cfg
}

// AdaptiveWorkload is one operating point: a generator for both
// relations, the query plan over them (strategy left at the default),
// and the exact expected result count.
type AdaptiveWorkload struct {
	Key   string
	Label string
	Build func(cfg AdaptiveConfig) (R, S []*core.Tuple, plan *core.Plan, expected int)
}

// AdaptiveRun is one measured (workload, strategy) cell.
type AdaptiveRun struct {
	Strategy   core.Strategy
	Adaptive   bool
	Received   int
	Expected   int
	TimeToLast time.Duration
	TrafficMB  float64
	StrategyMB float64
}

// BenchRecord is the machine-readable form of one benchmark run,
// emitted by pier-bench -json so per-PR perf trajectories can be
// tracked from BENCH_*.json files.
type BenchRecord struct {
	Scenario      string  `json:"scenario"`
	Workload      string  `json:"workload"`
	Strategy      string  `json:"strategy"`
	Adaptive      bool    `json:"adaptive"`
	Nodes         int     `json:"nodes"`
	Results       int     `json:"results"`
	Expected      int     `json:"expected"`
	TrafficBytes  int64   `json:"traffic_bytes"`
	StrategyBytes int64   `json:"strategy_bytes"`
	TimeToLastSec float64 `json:"time_to_last_sec"`
	ResultsPerSec float64 `json:"results_per_sec"`
	// NodesContacted is the range scenario's comparison metric: trie
	// nodes visited by an index traversal, or the multicast reach of a
	// full scan. Zero for scenarios that do not measure it.
	NodesContacted int `json:"nodes_contacted,omitempty"`
	// ResultFrames and ResultTuples are the incast scenario's
	// comparison metric: resultMsg frames shipped toward the initiator
	// and the tuples they carried. Zero for scenarios that do not
	// measure them.
	ResultFrames int64 `json:"result_frames,omitempty"`
	ResultTuples int64 `json:"result_tuples,omitempty"`
	// AllocsPerOp is the tuplepath scenario's gate metric: heap
	// allocations per result frame through one codec discipline,
	// deterministic for a pinned frame shape (measured with GOMAXPROCS
	// pinned, like testing.AllocsPerRun). Zero for scenarios that do
	// not measure it.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// TuplesPerSec is the wall-clock tuple rate of the measured path
	// (codec loop or loopback TCP scan). Like ResultsPerSec it tracks
	// host load as much as code, so it is recorded for the per-PR
	// trajectory but never gated.
	TuplesPerSec float64 `json:"tuples_per_sec,omitempty"`
	// SimEventsPerSec is the simscale scenario's simulator event
	// throughput. Wall-clock: recorded for the per-PR trajectory, never
	// gated.
	SimEventsPerSec float64 `json:"sim_events_per_sec,omitempty"`
	// BytesPerSimNode is the simscale scenario's measured heap cost per
	// simulated node (GC-settled ReadMemStats delta over the node
	// count). Allocation volume for a pinned build is deterministic
	// enough to gate against the committed baseline.
	BytesPerSimNode int64 `json:"bytes_per_simulated_node,omitempty"`
}

// WriteBenchJSON writes records as an indented JSON array (empty array,
// not null, when no scenario produced records).
func WriteBenchJSON(w io.Writer, records []BenchRecord) error {
	if records == nil {
		records = []BenchRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// AdaptiveWorkloads returns the three operating points.
func AdaptiveWorkloads() []AdaptiveWorkload {
	return []AdaptiveWorkload{
		{
			Key:   "uniform",
			Label: "uniform pkey join (inner hashed on join attr)",
			Build: buildUniform,
		},
		{
			Key:   "skewed",
			Label: "skewed many-to-many join, small tuples",
			Build: buildSkewed,
		},
		{
			Key:   "selective",
			Label: "sparse-match join (Bloom-favoring)",
			Build: buildSelective,
		},
	}
}

// buildUniform is the paper's §5.1 workload: R joins S on S's primary
// key, 50% selections, ~1 KB result tuples. Fetch Matches is feasible
// and moves no R bytes at all, so it should dominate.
func buildUniform(cfg AdaptiveConfig) ([]*core.Tuple, []*core.Tuple, *core.Plan, int) {
	tables := workload.Generate(workload.Config{STuples: cfg.STuples, Seed: cfg.Seed + 1})
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	plan := workload.JoinPlan(core.SymmetricHash, c1, c2, c3)
	plan.BloomBits = bloomBitsFor(2 * cfg.STuples)
	return tables.R, tables.S, plan, len(tables.ReferenceJoin(c1, c2, c3))
}

// skewedKey draws a join key from a skewed domain: 80% of tuples land
// in the first 20 values of [0, 100).
func skewedKey(rng *rand.Rand) int64 {
	if rng.Float64() < 0.8 {
		return int64(rng.Intn(20))
	}
	return int64(20 + rng.Intn(80))
}

// buildSkewed joins two pad-free relations many-to-many on a skewed
// non-key column, with weak (90%) selections. Fetch Matches is
// infeasible (the inner table is not hashed on the join attribute);
// with small tuples and plentiful matches, rehashing everything once
// (symmetric hash) beats both rewrites: the semi-join's per-pair
// fetches cost more than the tuples they save, and Bloom filters have
// almost nothing to prune.
func buildSkewed(cfg AdaptiveConfig) ([]*core.Tuple, []*core.Tuple, *core.Plan, int) {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	nR, nS := 10*cfg.STuples, cfg.STuples
	R := make([]*core.Tuple, nR)
	for i := range R {
		R[i] = &core.Tuple{Rel: "R", Vals: []core.Value{
			int64(i), skewedKey(rng), int64(rng.Intn(workload.NumRange)),
		}}
	}
	S := make([]*core.Tuple, nS)
	for i := range S {
		S[i] = &core.Tuple{Rel: "S", Vals: []core.Value{
			int64(i), skewedKey(rng), int64(rng.Intn(workload.NumRange)),
		}}
	}
	c, _, _ := workload.Constants(0.9, 0.9, 0.5)
	plan := joinOnCol1(c)
	plan.BloomBits = bloomBitsFor(2 * cfg.STuples)
	return R, S, plan, countJoinOnCol1(R, S, c)
}

// buildSelective joins on a sparse tag column: the domain is 50×|S|
// wide, so only ~2% of R tuples have a partner. R carries the ~1 KB
// pad, making its rehash the dominant cost — exactly what the Bloom
// rewrite prunes. Fetch Matches is again infeasible (non-key join).
func buildSelective(cfg AdaptiveConfig) ([]*core.Tuple, []*core.Tuple, *core.Plan, int) {
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	nR, nS := 10*cfg.STuples, cfg.STuples
	domain := 50 * cfg.STuples
	R := make([]*core.Tuple, nR)
	for i := range R {
		R[i] = &core.Tuple{Rel: "R", Vals: []core.Value{
			int64(i), int64(rng.Intn(domain)), int64(rng.Intn(workload.NumRange)),
		}, Pad: 1024 - 60}
	}
	S := make([]*core.Tuple, nS)
	for i := range S {
		S[i] = &core.Tuple{Rel: "S", Vals: []core.Value{
			int64(i), int64(rng.Intn(domain)), int64(rng.Intn(workload.NumRange)),
		}}
	}
	c, _, _ := workload.Constants(0.5, 0.5, 0.5)
	plan := joinOnCol1(c)
	plan.BloomBits = bloomBitsFor(2 * cfg.STuples)
	return R, S, plan, countJoinOnCol1(R, S, c)
}

// joinOnCol1 builds the shared plan shape of the custom workloads:
// equi-join on column 1, `num2 > c` selections on column 2 of both
// sides, emitting both primary keys.
func joinOnCol1(c int64) *core.Plan {
	filter := func() core.Expr {
		return &core.Cmp{Op: core.GT, L: &core.Col{Idx: 2}, R: &core.Const{V: c}}
	}
	return &core.Plan{
		Tables: []core.TableRef{
			{NS: "R", Filter: filter(), JoinCols: []int{1}, RIDCol: 0},
			{NS: "S", Filter: filter(), JoinCols: []int{1}, RIDCol: 0},
		},
		Output: []core.Expr{&core.Col{Idx: 0}, &core.Col{Idx: 3}},
	}
}

// countJoinOnCol1 computes the exact expected result count.
func countJoinOnCol1(R, S []*core.Tuple, c int64) int {
	byKey := map[int64]int{}
	for _, s := range S {
		if s.Vals[2].(int64) > c {
			byKey[s.Vals[1].(int64)]++
		}
	}
	n := 0
	for _, r := range R {
		if r.Vals[2].(int64) > c {
			n += byKey[r.Vals[1].(int64)]
		}
	}
	return n
}

// feasibleStrategies lists the fixed strategies that can correctly
// execute the plan (Fetch Matches needs the inner table hashed on the
// join attribute).
func feasibleStrategies(plan *core.Plan) []core.Strategy {
	out := []core.Strategy{core.SymmetricHash}
	t1 := plan.Tables[1]
	if len(t1.JoinCols) == 1 && t1.JoinCols[0] == t1.RIDCol && t1.RIDCol >= 0 {
		out = append(out, core.FetchMatches)
	}
	out = append(out, core.SymmetricSemiJoin, core.BloomJoin)
	return out
}

// RunAdaptiveCase measures one (workload, strategy) cell. With adaptive
// set, the catalog maintenance loop runs during a warm-up phase, the
// initiator pre-fetches both tables' statistics, and the query is
// submitted with AutoStrategy so the node's catalog picks the strategy;
// the loop is then stopped and traffic counters reset, so the measured
// bytes are the chosen strategy's own (stats maintenance excluded, like
// result delivery is in Figure 4).
func RunAdaptiveCase(cfg AdaptiveConfig, w AdaptiveWorkload, fixed core.Strategy, adaptive bool) AdaptiveRun {
	opts := pier.DefaultOptions()
	if adaptive {
		opts.Stats.Interval = cfg.StatsInterval
	}
	sn := pier.NewSimNetwork(cfg.Nodes, topology.NewFullMesh(), cfg.Seed, opts)
	R, S, plan, expected := w.Build(cfg)
	for i, r := range R {
		sn.Load("R", core.ValueString(r.Vals[0]), int64(i), r, 0)
	}
	for i, s := range S {
		sn.Load("S", core.ValueString(s.Vals[0]), int64(i), s, 0)
	}
	plan.TTL = cfg.Limit

	if adaptive {
		plan.AutoStrategy = true
		// One refresh tick publishes every node's summaries; then warm
		// the initiator's cache explicitly and freeze the catalog so the
		// measurement contains only query traffic.
		sn.RunFor(cfg.StatsInterval + 10*time.Second)
		fetched := 0
		sn.Nodes[0].Stats().Fetch("R", func(opt.TableStats, bool) { fetched++ })
		sn.Nodes[0].Stats().Fetch("S", func(opt.TableStats, bool) { fetched++ })
		sn.RunUntil(time.Minute, func() bool { return fetched == 2 })
		for _, nd := range sn.Nodes {
			nd.Stats().Stop()
		}
	} else {
		plan.Strategy = fixed
	}

	sn.Net.ResetStats()
	start := sn.Net.Now()
	var arrivals []time.Duration
	resultBytes := 0
	id, err := sn.Nodes[0].Query(plan, func(t *core.Tuple, _ int) {
		arrivals = append(arrivals, sn.Net.Now().Sub(start))
		resultBytes += t.WireSize() + 44
	})
	if err != nil {
		panic(err)
	}
	defer sn.Nodes[0].Cancel(id)
	sn.RunUntil(cfg.Limit, func() bool { return len(arrivals) >= expected })
	sn.Net.Drain()

	res := AdaptiveRun{
		Strategy: plan.Strategy, // the catalog's pick, for adaptive runs
		Adaptive: adaptive,
		Received: len(arrivals),
		Expected: expected,
	}
	if len(arrivals) > 0 {
		res.TimeToLast = arrivals[len(arrivals)-1]
	}
	stats := sn.Net.Totals()
	res.TrafficMB = float64(stats.Bytes) / 1e6
	res.StrategyMB = float64(stats.Bytes-int64(resultBytes)) / 1e6
	return res
}

// AdaptiveResult bundles one workload's comparison.
type AdaptiveResult struct {
	Workload AdaptiveWorkload
	Fixed    []AdaptiveRun
	Adaptive AdaptiveRun
}

// BestFixed returns the lowest strategy-traffic fixed run with full
// recall.
func (r AdaptiveResult) BestFixed() (AdaptiveRun, bool) {
	best, ok := AdaptiveRun{}, false
	for _, run := range r.Fixed {
		if run.Received != run.Expected {
			continue
		}
		if !ok || run.StrategyMB < best.StrategyMB {
			best, ok = run, true
		}
	}
	return best, ok
}

// Adaptive runs the full comparison and renders both the printable
// table and the machine-readable records.
func Adaptive(cfg AdaptiveConfig) ([]AdaptiveResult, *Table, []BenchRecord) {
	var results []AdaptiveResult
	for _, w := range AdaptiveWorkloads() {
		_, _, plan, _ := w.Build(cfg)
		res := AdaptiveResult{Workload: w}
		for _, s := range feasibleStrategies(plan) {
			res.Fixed = append(res.Fixed, RunAdaptiveCase(cfg, w, s, false))
		}
		res.Adaptive = RunAdaptiveCase(cfg, w, 0, true)
		results = append(results, res)
	}

	tbl := &Table{
		Title: "Adaptive planner vs fixed strategies",
		Note: fmt.Sprintf("n=%d, |S|=%d, |R|=%d; strategy MB excludes result delivery",
			cfg.Nodes, cfg.STuples, 10*cfg.STuples),
		Headers: []string{"workload", "strategy", "recall", "strategy MB", "to last (s)"},
	}
	var records []BenchRecord
	row := func(w AdaptiveWorkload, run AdaptiveRun) {
		name := run.Strategy.String()
		if run.Adaptive {
			name = "auto → " + name
		}
		tbl.Rows = append(tbl.Rows, []string{
			w.Key, name,
			fmt.Sprintf("%d/%d", run.Received, run.Expected),
			fmt.Sprintf("%.3f", run.StrategyMB),
			secs(run.TimeToLast),
		})
		rec := BenchRecord{
			Scenario:      "adaptive",
			Workload:      w.Key,
			Strategy:      run.Strategy.String(),
			Adaptive:      run.Adaptive,
			Nodes:         cfg.Nodes,
			Results:       run.Received,
			Expected:      run.Expected,
			TrafficBytes:  int64(run.TrafficMB * 1e6),
			StrategyBytes: int64(run.StrategyMB * 1e6),
			TimeToLastSec: run.TimeToLast.Seconds(),
		}
		if s := run.TimeToLast.Seconds(); s > 0 {
			rec.ResultsPerSec = float64(run.Received) / s
		}
		records = append(records, rec)
	}
	for _, res := range results {
		for _, run := range res.Fixed {
			row(res.Workload, run)
		}
		row(res.Workload, res.Adaptive)
	}
	return results, tbl, records
}
