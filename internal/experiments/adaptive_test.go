package experiments

import (
	"testing"

	"pier/internal/core"
)

// TestAdaptivePlannerMatchesOrBeatsBestFixed is the acceptance check
// for the statistics catalog: with no USING STRATEGY and a warmed
// catalog, the automatic choice must match or beat the best fixed
// strategy (by strategy traffic, the Figure 4 metric) on at least two
// of the three bench workloads — and must never lose results.
func TestAdaptivePlannerMatchesOrBeatsBestFixed(t *testing.T) {
	results, tbl, records := Adaptive(DefaultAdaptive(false))
	if len(records) == 0 {
		t.Fatal("no bench records emitted")
	}
	wins := 0
	chosen := map[core.Strategy]bool{}
	for _, res := range results {
		a := res.Adaptive
		if a.Received != a.Expected {
			t.Errorf("%s: adaptive run recall %d/%d", res.Workload.Key, a.Received, a.Expected)
			continue
		}
		chosen[a.Strategy] = true
		best, ok := res.BestFixed()
		if !ok {
			t.Errorf("%s: no fixed strategy achieved full recall", res.Workload.Key)
			continue
		}
		t.Logf("%s: adaptive chose %v (%.3f MB); best fixed %v (%.3f MB)",
			res.Workload.Key, a.Strategy, a.StrategyMB, best.Strategy, best.StrategyMB)
		if a.StrategyMB <= best.StrategyMB*1.05 {
			wins++
		}
	}
	if wins < 2 {
		tbl.Print(testWriter{t})
		t.Fatalf("adaptive matched or beat the best fixed strategy on %d/3 workloads, want >= 2", wins)
	}
	if len(chosen) < 2 {
		t.Fatalf("adaptive picked the same strategy everywhere (%v); workloads should separate", chosen)
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(p))
	return len(p), nil
}
