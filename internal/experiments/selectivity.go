package experiments

import (
	"fmt"
	"time"

	"pier/internal/core"
	"pier/internal/topology"
)

// SelectivityConfig drives Figures 4 and 5: sweep the selectivity of the
// predicate on S and measure, per join strategy, the aggregate network
// traffic (Figure 4) and the time to the last result tuple under
// 10 Mbps inbound links (Figure 5).
type SelectivityConfig struct {
	Nodes         int
	STuples       int
	Selectivities []float64
	Seed          int64
}

// DefaultSelectivity returns the scaled default (paper: n=1024,
// |R|+|S| ≈ 1 GB).
func DefaultSelectivity(full bool) SelectivityConfig {
	cfg := SelectivityConfig{
		Nodes:         128,
		STuples:       400,
		Selectivities: []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0},
		Seed:          21,
	}
	if full {
		cfg.Nodes = 1024
		cfg.STuples = 4000
		cfg.Selectivities = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	return cfg
}

var selStrategies = []core.Strategy{core.SymmetricHash, core.FetchMatches, core.SymmetricSemiJoin, core.BloomJoin}

// Selectivity runs the sweep once and renders both figures from the same
// measurements.
func Selectivity(cfg SelectivityConfig) (fig4, fig5 *Table) {
	fig4 = &Table{
		Title:   fmt.Sprintf("Figure 4: aggregate network traffic (MB) vs selectivity of predicate on S (n=%d)", cfg.Nodes),
		Note:    "expected shape: sym-hash highest & growing, fetch-matches flat, semi-join linear, bloom approaches sym-hash as selectivity rises",
		Headers: []string{"selectivity"},
	}
	fig5 = &Table{
		Title:   fmt.Sprintf("Figure 5: time to last result tuple (s) vs selectivity of predicate on S (n=%d, 10Mbps inbound)", cfg.Nodes),
		Headers: []string{"selectivity"},
	}
	for _, s := range selStrategies {
		fig4.Headers = append(fig4.Headers, s.String())
		fig5.Headers = append(fig5.Headers, s.String())
	}
	for _, sel := range cfg.Selectivities {
		row4 := []string{fmt.Sprintf("%.0f%%", sel*100)}
		row5 := []string{fmt.Sprintf("%.0f%%", sel*100)}
		for _, s := range selStrategies {
			res := RunJoin(JoinConfig{
				Nodes:     cfg.Nodes,
				Topo:      topology.NewFullMesh(),
				Seed:      cfg.Seed,
				Strategy:  s,
				STuples:   cfg.STuples,
				SelS:      sel,
				BloomWait: 4 * time.Second,
				Limit:     8 * time.Hour,
			})
			row4 = append(row4, fmt.Sprintf("%.1f", res.StrategyMB))
			row5 = append(row5, secs(res.TimeToLast))
		}
		fig4.Rows = append(fig4.Rows, row4)
		fig5.Rows = append(fig5.Rows, row5)
	}
	return fig4, fig5
}
