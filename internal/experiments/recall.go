package experiments

import (
	"fmt"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/env"
	"pier/internal/topology"
	"pier/internal/workload"
)

// RecallConfig drives Figure 6: node failures lose the soft state stored
// at them; periodic refresh (renew) restores it; average recall is
// measured as a function of the failure rate for several refresh
// periods.
type RecallConfig struct {
	Nodes          int
	STuples        int
	RefreshPeriods []time.Duration
	// FailureRates are in failures/minute, at the configured Nodes. The
	// paper plots 0..250 failures/min at 4096 nodes; rates here should
	// be read as a fraction of the network failing per minute.
	FailureRates []float64
	Warmup       time.Duration
	Queries      int
	QueryEvery   time.Duration
	Seed         int64
}

// DefaultRecall returns the scaled default (paper: n=4096, 15 s failure
// detection).
func DefaultRecall(full bool) RecallConfig {
	cfg := RecallConfig{
		Nodes:          96,
		STuples:        150,
		RefreshPeriods: []time.Duration{30 * time.Second, 60 * time.Second, 150 * time.Second},
		FailureRates:   []float64{0, 3, 6},
		Warmup:         30 * time.Second,
		Queries:        4,
		QueryEvery:     45 * time.Second,
		Seed:           5,
	}
	if full {
		cfg.Nodes = 4096
		cfg.STuples = 2000
		cfg.RefreshPeriods = []time.Duration{30 * time.Second, 60 * time.Second, 150 * time.Second, 225 * time.Second}
		cfg.FailureRates = []float64{0, 60, 120, 240}
	}
	return cfg
}

// Recall runs the churn matrix and reports average recall percentages.
func Recall(cfg RecallConfig) *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 6: average recall (%%) vs failure rate, n=%d, 15s failure detection", cfg.Nodes),
		Note:  "rows: failures/min; columns: tuple refresh period (expected: recall falls with failure rate, rises with faster refresh)",
	}
	t.Headers = []string{"failures/min"}
	for _, rp := range cfg.RefreshPeriods {
		t.Headers = append(t.Headers, fmt.Sprintf("%ds refresh", int(rp.Seconds())))
	}
	for _, rate := range cfg.FailureRates {
		row := []string{fmt.Sprintf("%.0f", rate)}
		for _, rp := range cfg.RefreshPeriods {
			rec := recallRun(cfg, rp, rate)
			row = append(row, fmt.Sprintf("%.1f", rec*100))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func recallRun(cfg RecallConfig, refresh time.Duration, failPerMin float64) float64 {
	opts := pier.DefaultOptions()
	opts.CANConfig.Maintenance = true
	opts.ProviderConfig.ActiveExpiry = true
	// Under churn, query dissemination must survive not-yet-detected
	// failures: full flooding's redundancy stands in for the reliable
	// multicast the paper assumes. Lookup timeouts and put retries are
	// tuned to the 15 s failure-detection window.
	opts.ProviderConfig.RobustMulticast = true
	opts.ProviderConfig.PutRetries = 3
	opts.ProviderConfig.PutRetryDelay = 3 * time.Second
	opts.CANConfig.LookupTimeout = 8 * time.Second
	sn := pier.NewSimNetwork(cfg.Nodes, topology.NewFullMesh(), cfg.Seed, opts)

	tables := workload.Generate(workload.Config{STuples: cfg.STuples, Seed: cfg.Seed + 3, PadBytes: 64})
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	expected := tables.ReferenceJoin(c1, c2, c3)
	if len(expected) == 0 {
		return 1
	}

	// The publisher node stands in for the paper's data wrappers: it
	// loads every tuple and renews each one on the refresh period (with
	// per-tuple phase), restoring items lost to storage-node failures.
	// It is never killed (wrappers outlive DHT nodes, §3.2.3).
	const publisher = 0
	lifetime := 2 * refresh
	type pub struct {
		ns, rid string
		iid     int64
		t       *core.Tuple
	}
	var pubs []pub
	for i, r := range tables.R {
		pubs = append(pubs, pub{"R", core.ValueString(r.Vals[workload.RPkey]), int64(i), r})
	}
	for i, s := range tables.S {
		pubs = append(pubs, pub{"S", core.ValueString(s.Vals[workload.SPkey]), int64(i + len(tables.R)), s})
	}
	for _, p := range pubs {
		sn.Load(p.ns, p.rid, p.iid, p.t, lifetime)
	}
	pubEnv := sn.Net.Node(publisher)
	pnode := sn.Nodes[publisher]
	for i, p := range pubs {
		p := p
		phase := time.Duration(float64(refresh) * float64(i) / float64(len(pubs)))
		pubEnv.After(phase, func() {
			pnode.Renew(p.ns, p.rid, p.iid, p.t, lifetime)
			env.Every(pubEnv, refresh, func() {
				pnode.Renew(p.ns, p.rid, p.iid, p.t, lifetime)
			})
		})
	}

	// Failure process: kill a random live non-publisher node at the
	// configured rate; a replacement joins through the publisher so the
	// population stays constant (§5.6 fails nodes at a constant rate).
	if failPerMin > 0 {
		interval := time.Duration(float64(time.Minute) / failPerMin)
		rng := pubEnv.Rand()
		var killOne func()
		killOne = func() {
			for tries := 0; tries < 32; tries++ {
				victim := 1 + rng.Intn(sn.Net.Len()-1)
				if sn.Alive(victim) {
					sn.Kill(victim)
					break
				}
			}
			sn.AddNode(publisher)
			pubEnv.After(interval, killOne)
		}
		pubEnv.After(interval, killOne)
	}

	sn.RunFor(cfg.Warmup)

	// Measurement: run the workload query periodically; recall is the
	// fraction of reference results received.
	totalRecall := 0.0
	for q := 0; q < cfg.Queries; q++ {
		plan := workload.JoinPlan(core.SymmetricHash, c1, c2, c3)
		plan.TTL = cfg.QueryEvery
		got := make(map[[2]int64]bool)
		id, err := pnode.Query(plan, func(t *core.Tuple, _ int) {
			got[[2]int64{t.Vals[0].(int64), t.Vals[1].(int64)}] = true
		})
		if err != nil {
			panic(err)
		}
		sn.RunFor(cfg.QueryEvery)
		pnode.Cancel(id)
		totalRecall += float64(len(got)) / float64(len(expected))
	}
	return totalRecall / float64(cfg.Queries)
}
