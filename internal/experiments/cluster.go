package experiments

import (
	"fmt"
	"sync"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/env"
	"pier/internal/workload"
)

// ClusterConfig drives Figure 8: the prototype deployed (not simulated)
// on a cluster, network size 2..64, load scaled with the number of
// nodes, measuring the time to the 30th result tuple.
//
// The paper used 64 shared PCs on a 1 Gbps switch; here the nodes are
// real TCP processes multiplexed over loopback — the same code path
// through net.Conn, gob framing, and per-node event loops.
type ClusterConfig struct {
	Sizes    []int
	SPerNode int
	Kth      int
	Seed     int64
}

// DefaultCluster returns the scaled default.
func DefaultCluster(full bool) ClusterConfig {
	cfg := ClusterConfig{Sizes: []int{2, 4, 8, 16}, SPerNode: 8, Kth: 30, Seed: 77}
	if full {
		cfg.Sizes = []int{2, 4, 8, 16, 32, 64}
	}
	return cfg
}

// Cluster runs the deployment sweep and reports wall-clock times.
func Cluster(cfg ClusterConfig) *Table {
	t := &Table{
		Title:   "Figure 8: real deployment over loopback TCP — time to 30th result tuple",
		Note:    "paper: flat as size and load scale together on a 1 Gbps cluster",
		Headers: []string{"nodes", "time to 30th (s)", "results", "expected"},
	}
	for _, n := range cfg.Sizes {
		kth, got, want := clusterRun(n, cfg)
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprintf("%.3f", kth.Seconds()), fmt.Sprint(got), fmt.Sprint(want)})
	}
	return t
}

func clusterRun(n int, cfg ClusterConfig) (kth time.Duration, got, want int) {
	opts := pier.DefaultOptions()
	nodes := make([]*pier.RealNode, 0, n)
	first, err := pier.StartNode("127.0.0.1:0", env.NilAddr, cfg.Seed, opts)
	if err != nil {
		panic(err)
	}
	nodes = append(nodes, first)
	for i := 1; i < n; i++ {
		nd, err := pier.StartNode("127.0.0.1:0", first.Addr(), cfg.Seed+int64(i), opts)
		if err != nil {
			panic(err)
		}
		if !nd.WaitReady(15 * time.Second) {
			panic(fmt.Sprintf("cluster node %d failed to join", i))
		}
		nodes = append(nodes, nd)
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	tables := workload.Generate(workload.Config{STuples: cfg.SPerNode * n, Seed: cfg.Seed + 9, PadBytes: 964})
	for i, r := range tables.R {
		nodes[i%n].Publish("R", core.ValueString(r.Vals[workload.RPkey]), int64(i), r, 10*time.Minute)
	}
	for i, s := range tables.S {
		nodes[i%n].Publish("S", core.ValueString(s.Vals[workload.SPkey]), int64(i), s, 10*time.Minute)
	}
	// Puts are asynchronous (lookup + direct send); wait until the whole
	// load is stored so the query's snapshot covers it, as in the
	// paper's setup ("after ... tables R and S are loaded", §5.2).
	total := len(tables.R) + len(tables.S)
	loadDeadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(loadDeadline) {
		stored := 0
		for _, nd := range nodes {
			nd.Do(func() { stored += nd.Provider().Store().TotalLen() })
		}
		if stored >= total {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	expected := tables.ReferenceJoin(c1, c2, c3)
	want = len(expected)
	k := cfg.Kth
	if k > want {
		k = want
	}

	var mu sync.Mutex
	var arrivals []time.Duration
	start := time.Now()
	plan := workload.JoinPlan(core.SymmetricHash, c1, c2, c3)
	id, err := nodes[0].Query(plan, func(*core.Tuple, int) {
		mu.Lock()
		arrivals = append(arrivals, time.Since(start))
		mu.Unlock()
	})
	if err != nil {
		panic(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		cnt := len(arrivals)
		mu.Unlock()
		if cnt >= want {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	nodes[0].Cancel(id)
	mu.Lock()
	defer mu.Unlock()
	got = len(arrivals)
	if k > 0 && got >= k {
		kth = arrivals[k-1]
	} else if got > 0 {
		kth = arrivals[got-1]
	}
	return kth, got, want
}
