package experiments

import (
	"sort"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/opt"
	"pier/internal/topology"
)

// TestOptimizerOrderingMatchesMeasurement cross-validates the §7
// cost model: the optimizer's predicted traffic ordering over the four
// strategies must match what the simulator measures at the same
// operating point.
func TestOptimizerOrderingMatchesMeasurement(t *testing.T) {
	const (
		nodes   = 64
		sTuples = 300
		selS    = 0.3
	)
	// Measure.
	measured := map[core.Strategy]float64{}
	for _, s := range selStrategies {
		res := RunJoin(JoinConfig{
			Nodes:    nodes,
			Topo:     topology.NewFullMesh(),
			Seed:     41,
			Strategy: s,
			STuples:  sTuples,
			SelS:     selS,
		})
		if res.Received != res.Expected {
			t.Fatalf("%v: recall %d/%d", s, res.Received, res.Expected)
		}
		measured[s] = res.StrategyMB
	}
	// Predict with the same parameters.
	ests := opt.Estimates(opt.JoinStats{
		Left: opt.TableStats{
			Tuples: 10 * sTuples, TupleBytes: 1024, Selectivity: 0.5,
			DistinctJoinKeys: 2 * sTuples,
		},
		Right: opt.TableStats{
			Tuples: sTuples, TupleBytes: 40, Selectivity: selS,
			HashedOnJoinAttr: true, DistinctJoinKeys: sTuples,
		},
		MatchFraction: 0.9,
	}, opt.NetStats{
		Nodes:      nodes,
		HopLatency: 100 * time.Millisecond,
		BloomBits:  float64(bloomBitsFor(2 * sTuples)),
		BloomWait:  5 * time.Second,
	})
	predicted := map[core.Strategy]float64{}
	for _, e := range ests {
		predicted[e.Strategy] = e.TrafficBytes
	}

	order := func(m map[core.Strategy]float64) []core.Strategy {
		ss := append([]core.Strategy(nil), selStrategies...)
		sort.Slice(ss, func(a, b int) bool { return m[ss[a]] < m[ss[b]] })
		return ss
	}
	mo, po := order(measured), order(predicted)
	for i := range mo {
		if mo[i] != po[i] {
			t.Fatalf("orderings differ at rank %d: measured %v vs predicted %v\nmeasured=%v\npredicted(MB)=%v",
				i, mo, po, measured, scale(predicted))
		}
	}
}

func scale(m map[core.Strategy]float64) map[core.Strategy]float64 {
	out := map[core.Strategy]float64{}
	for k, v := range m {
		out[k] = v / 1e6
	}
	return out
}
