package experiments

import (
	"fmt"

	"pier/internal/chaos"
)

// FloodScenario runs the pinned-seed publish-flood scenario: a hot
// namespace flooded far past a per-node byte quota, with the unbounded
// oracle run defining what a node with enough memory would answer. The
// report carries the quota, backpressure, and forgetting invariants;
// the record feeds the -baseline gate with two deterministic metrics —
// Results (flood results the bounded run kept; may not shrink) and
// TrafficBytes (the faulted run's total simulated traffic; may not
// grow).
func FloodScenario(seed int64, full bool) (*chaos.Report, BenchRecord) {
	cfg := chaos.DefaultFlood(seed)
	if full {
		cfg.Nodes = 128
		cfg.PublishFlood = 3000
	}
	rep := chaos.Run(cfg)
	rec := BenchRecord{
		Scenario:     "flood",
		Workload:     fmt.Sprintf("publish=%d quota=%d", cfg.PublishFlood, cfg.FloodQuota),
		Strategy:     "bounded",
		Nodes:        cfg.Nodes,
		TrafficBytes: rep.Stats.Bytes,
	}
	if rep.Flood != nil {
		rec.Results = rep.Flood.Matched
		rec.Expected = rep.Flood.OracleLive
	}
	return rep, rec
}
