// Package experiments contains the harnesses that regenerate every table
// and figure of the paper's evaluation (§5). Each harness returns the
// same rows/series the paper plots; bench_test.go and cmd/pier-bench
// print them. Sizes default to a scaled-down configuration (documented
// in EXPERIMENTS.md) so the suite runs in minutes; Full restores paper
// scale.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/topology"
	"pier/internal/workload"
)

// JoinConfig parameterizes one simulated run of the §5.1 workload query.
type JoinConfig struct {
	Nodes        int
	Topo         topology.Topology
	Seed         int64
	Strategy     core.Strategy
	STuples      int     // |S|; |R| = 10 × |S|
	PadBytes     int     // R.pad size
	SelR, SelS   float64 // selection selectivities (paper default 0.5)
	SelF         float64 // post-join predicate selectivity
	ComputeNodes int     // 0 = all nodes participate in the join
	KthTuple     int     // the K in "time to K-th tuple" (paper: 30)
	Limit        time.Duration
	DHT          pier.DHTKind
	BloomWait    time.Duration
}

// Norm fills defaults.
func (c JoinConfig) Norm() JoinConfig {
	if c.Topo == nil {
		c.Topo = topology.NewFullMesh()
	}
	if c.SelR == 0 {
		c.SelR = 0.5
	}
	if c.SelS == 0 {
		c.SelS = 0.5
	}
	if c.SelF == 0 {
		c.SelF = 0.5
	}
	if c.PadBytes == 0 {
		c.PadBytes = 1024 - 60
	}
	if c.KthTuple == 0 {
		c.KthTuple = 30
	}
	if c.Limit == 0 {
		c.Limit = 4 * time.Hour
	}
	if c.BloomWait == 0 {
		c.BloomWait = 5 * time.Second
	}
	return c
}

// JoinResult is one measured run.
type JoinResult struct {
	Cfg        JoinConfig
	Expected   int
	Received   int
	TimeToKth  time.Duration // paper's "time to 30th result tuple"
	TimeToLast time.Duration
	TrafficMB  float64 // total aggregate network traffic
	// StrategyMB excludes result delivery to the initiator — the join
	// strategy's own bandwidth cost, Figure 4's comparison metric (the
	// result stream is identical across strategies).
	StrategyMB float64
	MaxInMB    float64 // maximum inbound traffic at any node
	AvgHops    float64 // average CAN lookup path length
}

// RunJoin loads the workload, runs the query from node 0, and measures
// the paper's metrics.
func RunJoin(cfg JoinConfig) JoinResult {
	cfg = cfg.Norm()
	opts := pier.DefaultOptions()
	opts.DHT = cfg.DHT
	sn := pier.NewSimNetwork(cfg.Nodes, cfg.Topo, cfg.Seed, opts)

	tables := workload.Generate(workload.Config{STuples: cfg.STuples, Seed: cfg.Seed + 1, PadBytes: cfg.PadBytes})
	for i, r := range tables.R {
		sn.Load("R", core.ValueString(r.Vals[workload.RPkey]), int64(i), r, 0)
	}
	for i, s := range tables.S {
		sn.Load("S", core.ValueString(s.Vals[workload.SPkey]), int64(i), s, 0)
	}

	c1, c2, c3 := workload.Constants(cfg.SelR, cfg.SelS, cfg.SelF)
	expected := tables.ReferenceJoin(c1, c2, c3)

	plan := workload.JoinPlan(cfg.Strategy, c1, c2, c3)
	plan.ComputeNodes = cfg.ComputeNodes
	plan.BloomWait = cfg.BloomWait
	plan.TTL = cfg.Limit
	// Size Bloom filters for the scaled data (the paper's "small
	// temporary namespace"): ~10 bits per distinct join key. R's join
	// column draws from S's key domain plus ~10% misses, so both tables
	// have ≈ 2×|S| distinct keys.
	plan.BloomBits = bloomBitsFor(2 * cfg.STuples)

	sn.Net.ResetStats()
	start := sn.Net.Now()
	var arrivals []time.Duration
	resultBytes := 0
	id, err := sn.Nodes[0].Query(plan, func(t *core.Tuple, _ int) {
		arrivals = append(arrivals, sn.Net.Now().Sub(start))
		resultBytes += t.WireSize() + 44 // per-result message overhead
	})
	if err != nil {
		panic(err)
	}
	defer sn.Nodes[0].Cancel(id)
	want := len(expected)
	sn.RunUntil(cfg.Limit, func() bool { return len(arrivals) >= want })
	// Let in-flight strategy traffic (rehashes of non-matching tuples,
	// stragglers) finish so Figure 4's byte counts are complete. All
	// remaining events are bounded: maintenance is off in these runs.
	sn.Net.Drain()

	res := JoinResult{Cfg: cfg, Expected: want, Received: len(arrivals)}
	if k := cfg.KthTuple; len(arrivals) >= k {
		res.TimeToKth = arrivals[k-1]
	} else if len(arrivals) > 0 {
		res.TimeToKth = arrivals[len(arrivals)-1]
	}
	if len(arrivals) > 0 {
		res.TimeToLast = arrivals[len(arrivals)-1]
	}
	stats := sn.Net.Totals()
	res.TrafficMB = float64(stats.Bytes) / 1e6
	res.StrategyMB = float64(stats.Bytes-int64(resultBytes)) / 1e6
	res.MaxInMB = float64(sn.Net.MaxInbound()) / 1e6
	res.AvgHops = avgCANHops(sn)
	return res
}

// bloomBitsFor sizes a filter at ~10 bits per expected key (≈1% false
// positives with 4 hashes), rounded up to a power of two, within
// [2^10, 2^16] (the upper bound is the paper-scale default).
func bloomBitsFor(keys int) int {
	bits := 1024
	for bits < 10*keys && bits < 1<<16 {
		bits <<= 1
	}
	return bits
}

func avgCANHops(sn *pier.SimNetwork) float64 {
	var hops, count int64
	for _, n := range sn.Nodes {
		if r, ok := n.Router().(interface {
			LookupStats() (count, hops int64)
		}); ok {
			c, h := r.LookupStats()
			count += c
			hops += h
		}
	}
	if count == 0 {
		return 0
	}
	return float64(hops) / float64(count)
}

// Table is a printable result table shared by benches and pier-bench.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	for _, r := range t.Rows {
		line(r)
	}
}

func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }
