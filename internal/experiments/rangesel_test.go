package experiments

// Acceptance tests for the range scenario: at ≤1% selectivity the
// index-backed scan must contact fewer nodes than the full scan (and
// return everything), and the access-path chooser must pick the full
// scan once the range covers half the table.

import (
	"testing"

	"pier/internal/opt"
)

func TestRangeSelectivityIndexBeatsScanWhenSelective(t *testing.T) {
	cfg := RangeSelConfig{
		Nodes:         48,
		Tuples:        1200,
		Selectivities: []float64{0.01, 0.5},
		Seed:          41,
	}
	runs, _, records := RangeSelectivity(cfg)

	byKey := map[[2]bool]map[float64]RangeSelRun{}
	for _, r := range runs {
		k := [2]bool{r.Index, true}
		if byKey[k] == nil {
			byKey[k] = map[float64]RangeSelRun{}
		}
		byKey[k][r.Selectivity] = r
	}
	idx, scan := byKey[[2]bool{true, true}], byKey[[2]bool{false, true}]

	// Acceptance: at ≤1% selectivity the index contacts fewer nodes.
	lo := idx[0.01]
	if lo.NodesContacted >= scan[0.01].NodesContacted {
		t.Errorf("at 1%% selectivity the index contacted %d nodes, full scan %d — no win",
			lo.NodesContacted, scan[0.01].NodesContacted)
	}
	// Both paths must return the complete result at every operating
	// point (the index is an access path, not an approximation).
	for _, r := range runs {
		if r.Received != r.Expected {
			t.Errorf("sel=%.3f index=%v: received %d of %d results",
				r.Selectivity, r.Index, r.Received, r.Expected)
		}
	}
	if len(records) != len(runs) {
		t.Errorf("got %d bench records for %d runs", len(records), len(runs))
	}

	// Acceptance: the optimizer picks the full scan at high selectivity
	// for this deployment's parameters...
	ts := opt.TableStats{Tuples: float64(cfg.Tuples), Selectivity: 0.5}
	net := opt.NetStats{Nodes: cfg.Nodes}
	if useIndex, iEst, fEst := opt.ChooseScan(ts, net, 16); useIndex {
		t.Errorf("ChooseScan picked the index at 50%% selectivity (index %.0f msgs, full %.0f)",
			iEst.Messages, fEst.Messages)
	}
	// ...and the index at 1%.
	ts.Selectivity = 0.01
	if useIndex, iEst, fEst := opt.ChooseScan(ts, net, 16); !useIndex {
		t.Errorf("ChooseScan picked the full scan at 1%% selectivity (index %.0f msgs, full %.0f)",
			iEst.Messages, fEst.Messages)
	}
}
