package experiments

import (
	"testing"

	"pier/internal/core"
)

// TestTuplePathPooledAllocRatio pins the PR's acceptance criterion in
// its in-process form: the pooled+interned codec discipline must cost
// at least 5x fewer heap allocations per frame round-trip
// (encode+decode) than the Marshal-per-frame discipline it replaced.
// Allocation counts are deterministic for the pinned frame shape, so
// this is gate-stable.
func TestTuplePathPooledAllocRatio(t *testing.T) {
	baseline, err := core.MeasureTuplePath(32, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := core.MeasureTuplePath(32, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	base := baseline.EncodeAllocs + baseline.DecodeAllocs
	opt := pooled.EncodeAllocs + pooled.DecodeAllocs
	if opt <= 0 {
		t.Fatalf("pooled path reported %.1f allocs/frame; measurement broken", opt)
	}
	if base < 5*opt {
		t.Fatalf("pooled path allocs/frame %.1f vs baseline %.1f: ratio %.1fx, want >= 5x",
			opt, base, base/opt)
	}
}

// TestTuplePathLoopbackScan runs the 2-node loopback TCP scan at a
// small scale and requires full recall: every published tuple passing
// the filter must reach the initiator through the pooled, sharded
// result path.
func TestTuplePathLoopbackScan(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP deployment")
	}
	cfg := TuplePathConfig{TuplesPerFrame: 32, Frames: 8, ScanTuples: 400, Seed: 31}
	received, expected, _, _ := loopbackScan(cfg)
	if expected == 0 {
		t.Fatal("scan workload produced no expected results")
	}
	if received < expected {
		t.Fatalf("loopback scan delivered %d/%d tuples", received, expected)
	}
}
