package experiments

// The initiator-incast experiment: PIER's push-based dataflow ships
// operator output "as quickly as possible" (§3.3), and taken literally
// — one unicast resultMsg per tuple — any selective scan across n
// nodes becomes an n-way per-tuple incast at the query initiator. The
// result channel batches output into frames (by size and by a short
// timer) under a per-sender credit window; this sweep runs the same
// high-cardinality query both ways and compares result frames per
// query, the metric the channel exists to shrink. The paper has no
// figure for this (its hierarchical combine trees, §4.1, dodge the
// convergence pathology only for aggregates); the expected shape is a
// frames-per-query drop of roughly min(ResultBatch, tuples-per-node)
// with recall unchanged.

import (
	"fmt"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/topology"
	"pier/internal/workload"
)

// IncastConfig parameterizes the per-tuple vs batched comparison.
type IncastConfig struct {
	Nodes   int
	STuples int // |S|: the scanned relation (R is not loaded)
	Seed    int64
	// Sel is the scan selectivity; at 0.5 over STuples tuples the
	// query's result cardinality is high enough that delivery, not
	// dissemination, dominates.
	Sel float64
	// Batch, Credit, and FlushInterval shape the batched run's result
	// channel (the baseline run forces per-tuple delivery with flow
	// control off).
	Batch         int
	Credit        int
	FlushInterval time.Duration
}

// Norm fills defaults.
func (c IncastConfig) Norm() IncastConfig {
	if c.Nodes == 0 {
		c.Nodes = 64
	}
	if c.STuples == 0 {
		c.STuples = 2000
	}
	if c.Sel == 0 {
		c.Sel = 0.5
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.Credit == 0 {
		c.Credit = 128
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 200 * time.Millisecond
	}
	return c
}

// DefaultIncast returns the scaled-down (or full-scale) defaults. The
// 64-node default is the acceptance configuration: batching must cut
// result frames per query by at least 5x with recall unchanged.
func DefaultIncast(full bool) IncastConfig {
	cfg := IncastConfig{Nodes: 64, STuples: 2000, Seed: 47}
	if full {
		cfg.Nodes, cfg.STuples = 256, 8000
	}
	return cfg.Norm()
}

// IncastRun is one measured delivery mode.
type IncastRun struct {
	Batched  bool
	Frames   uint64 // result frames shipped toward the initiator
	Tuples   uint64 // tuples those frames carried
	Grants   uint64 // creditMsgs the collector issued
	Stalls   uint64 // executor credit stalls
	Received int
	Expected int
	// InitiatorInMB is the initiator's total inbound traffic — the
	// incast link the channel protects.
	InitiatorInMB float64
	TimeToLast    time.Duration
}

// Incast runs the sweep — per-tuple baseline first, then the batched
// channel — and renders the comparison plus machine-readable records.
func Incast(cfg IncastConfig) ([]IncastRun, *Table, []BenchRecord) {
	cfg = cfg.Norm()
	baseline := runIncast(cfg, false)
	batched := runIncast(cfg, true)
	runs := []IncastRun{baseline, batched}

	ratio := 0.0
	if batched.Frames > 0 {
		ratio = float64(baseline.Frames) / float64(batched.Frames)
	}
	tbl := &Table{
		Title: fmt.Sprintf("Initiator incast: per-tuple vs batched+credit result delivery (n=%d, |S|=%d, sel=%.0f%%)",
			cfg.Nodes, cfg.STuples, cfg.Sel*100),
		Note: fmt.Sprintf("result frames per query: %d -> %d (%.1fx reduction); recall must be unchanged",
			baseline.Frames, batched.Frames, ratio),
		Headers: []string{"mode", "frames", "tuples", "tuples/frame", "grants", "stalls", "recv", "expected", "init in MB", "t(s)"},
	}
	var records []BenchRecord
	for _, r := range runs {
		mode := "per-tuple"
		if r.Batched {
			mode = "batched"
		}
		perFrame := 0.0
		if r.Frames > 0 {
			perFrame = float64(r.Tuples) / float64(r.Frames)
		}
		tbl.Rows = append(tbl.Rows, []string{
			mode,
			fmt.Sprint(r.Frames), fmt.Sprint(r.Tuples), fmt.Sprintf("%.1f", perFrame),
			fmt.Sprint(r.Grants), fmt.Sprint(r.Stalls),
			fmt.Sprint(r.Received), fmt.Sprint(r.Expected),
			fmt.Sprintf("%.2f", r.InitiatorInMB), secs(r.TimeToLast),
		})
		rec := BenchRecord{
			Scenario:      "incast",
			Workload:      fmt.Sprintf("scan sel=%.2f", cfg.Sel),
			Strategy:      mode,
			Nodes:         cfg.Nodes,
			Results:       r.Received,
			Expected:      r.Expected,
			TrafficBytes:  int64(r.InitiatorInMB * 1e6),
			TimeToLastSec: r.TimeToLast.Seconds(),
			ResultFrames:  int64(r.Frames),
			ResultTuples:  int64(r.Tuples),
		}
		if s := rec.TimeToLastSec; s > 0 {
			rec.ResultsPerSec = float64(r.Received) / s
		}
		records = append(records, rec)
	}
	return runs, tbl, records
}

// runIncast measures one delivery mode on a fresh deployment of the
// same seed.
func runIncast(cfg IncastConfig, batched bool) IncastRun {
	opts := pier.DefaultOptions()
	if batched {
		opts.EngineConfig.ResultBatch = cfg.Batch
		opts.EngineConfig.ResultCredit = cfg.Credit
		opts.EngineConfig.ResultFlushInterval = cfg.FlushInterval
	} else {
		// The pre-channel baseline: one frame per tuple, no flow
		// control.
		opts.EngineConfig.ResultBatch = 1
		opts.EngineConfig.ResultCredit = -1
	}
	sn := pier.NewSimNetwork(cfg.Nodes, topology.NewFullMesh(), cfg.Seed, opts)

	tables := workload.Generate(workload.Config{STuples: cfg.STuples, Seed: cfg.Seed + 1, PadBytes: 64})
	for i, s := range tables.S {
		sn.Load("S", core.ValueString(s.Vals[workload.SPkey]), int64(i), s, 0)
	}
	_, c2, _ := workload.Constants(0.5, cfg.Sel, 0.5)
	expected := 0
	for _, s := range tables.S {
		if v, ok := s.Vals[workload.SNum2].(int64); ok && v > c2 {
			expected++
		}
	}

	plan := &core.Plan{
		Tables: []core.TableRef{{
			NS:     "S",
			Filter: &core.Cmp{Op: core.GT, L: &core.Col{Idx: workload.SNum2}, R: &core.Const{V: c2}},
			RIDCol: workload.SPkey,
		}},
		Output: []core.Expr{&core.Col{Idx: workload.SPkey}, &core.Col{Idx: workload.SNum2}},
		TTL:    10 * time.Minute,
	}

	sn.Net.ResetStats()
	start := sn.Net.Now()
	received := 0
	var last time.Duration
	id, err := sn.Nodes[0].Query(plan, func(*core.Tuple, int) {
		received++
		last = sn.Net.Now().Sub(start)
	})
	if err != nil {
		panic(err)
	}
	sn.RunUntil(5*time.Minute, func() bool { return received >= expected })
	// Let trailing flush timers and replenishment grants settle before
	// snapshotting counters.
	sn.RunFor(2*cfg.FlushInterval + time.Second)
	sn.Nodes[0].Cancel(id)

	run := IncastRun{Batched: batched, Received: received, Expected: expected, TimeToLast: last}
	for _, n := range sn.Nodes {
		qs := n.QueryStats()
		run.Frames += qs.ResultBatches
		run.Tuples += qs.ResultTuples
		run.Grants += qs.CreditGrants
		run.Stalls += qs.CreditStalls
	}
	run.InitiatorInMB = float64(sn.Net.InboundOf(0)) / 1e6
	return run
}
