package experiments

import "testing"

// TestIncastBatchingReducesResultFrames is the acceptance gate of the
// result channel: at 64 nodes, the batched channel must cut result
// frames per high-cardinality query by at least 5x against the
// per-tuple baseline, with recall unchanged on both sides.
func TestIncastBatchingReducesResultFrames(t *testing.T) {
	cfg := DefaultIncast(false)
	runs, tbl, records := Incast(cfg)
	t.Log(tbl.Title + " — " + tbl.Note)
	baseline, batched := runs[0], runs[1]

	if baseline.Received != baseline.Expected {
		t.Fatalf("baseline recall changed: %d/%d", baseline.Received, baseline.Expected)
	}
	if batched.Received != batched.Expected {
		t.Fatalf("batched recall changed: %d/%d", batched.Received, batched.Expected)
	}
	if baseline.Expected == 0 {
		t.Fatal("degenerate workload: no expected results")
	}
	// The baseline ships one frame per tuple by construction.
	if baseline.Frames != baseline.Tuples {
		t.Fatalf("baseline not per-tuple: %d frames for %d tuples", baseline.Frames, baseline.Tuples)
	}
	if batched.Frames == 0 || baseline.Frames < 5*batched.Frames {
		t.Fatalf("frame reduction below 5x: baseline %d vs batched %d", baseline.Frames, batched.Frames)
	}
	// Both modes shipped every result exactly once (lossless network).
	if batched.Tuples != baseline.Tuples {
		t.Fatalf("batched shipped %d tuples, baseline %d", batched.Tuples, baseline.Tuples)
	}
	for _, rec := range records {
		if rec.Scenario != "incast" || rec.ResultFrames == 0 {
			t.Fatalf("malformed bench record: %+v", rec)
		}
	}
}
