package experiments

// The range-selectivity experiment: does the Prefix Hash Tree index
// (internal/index) actually beat the multicast full scan, and where is
// the crossover? For each selectivity the same range query runs twice —
// once through the index traversal, once as the classic full scan — and
// both are measured in nodes contacted, bytes, and time to the last
// result. The paper has no figure for this (it concedes range lookups
// as an open problem in §4.3); the expected shape is the classic
// access-path picture: the index wins by orders of magnitude at high
// selectivity and loses to the flat multicast cost once the range
// covers a large fraction of the table.

import (
	"fmt"
	"math/rand"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/topology"
)

// rangeDomain is the indexed value domain [0, rangeDomain).
const rangeDomain = 1_000_000

// RangeSelConfig parameterizes the sweep.
type RangeSelConfig struct {
	Nodes         int
	Tuples        int
	Selectivities []float64
	Seed          int64
}

// DefaultRangeSel returns the scaled-down (or full-scale) defaults.
func DefaultRangeSel(full bool) RangeSelConfig {
	cfg := RangeSelConfig{
		Nodes:         64,
		Tuples:        2000,
		Selectivities: []float64{0.001, 0.01, 0.05, 0.2, 0.5},
		Seed:          41,
	}
	if full {
		cfg.Nodes, cfg.Tuples = 256, 20000
	}
	return cfg
}

// rangeSchema is the experiment's table: an integer primary key and a
// uniformly distributed indexed attribute.
var rangeSchema = pier.SQLTable{
	Name: "T", Cols: []string{"pkey", "num"}, Key: "pkey",
	Indexes: []pier.SQLIndex{{Name: "t_num", Col: "num"}},
}

// RangeSelRun is one measured (selectivity, access path) cell.
type RangeSelRun struct {
	Selectivity float64
	Index       bool
	// NodesContacted is trie nodes visited (index) or the multicast
	// reach (full scan).
	NodesContacted int
	Received       int
	Expected       int
	TrafficMB      float64
	TimeToLast     time.Duration
}

// RangeSelectivity runs the sweep and renders the comparison table plus
// machine-readable records.
func RangeSelectivity(cfg RangeSelConfig) ([]RangeSelRun, *Table, []BenchRecord) {
	sn, vals := buildRangeDeployment(cfg)

	tbl := &Table{
		Title: fmt.Sprintf("Range selectivity: PHT index scan vs multicast full scan (n=%d, |T|=%d)",
			cfg.Nodes, cfg.Tuples),
		Note:    "expected shape: index contacts O(matching leaves) nodes — far under n at high selectivity, crossing over as the range widens",
		Headers: []string{"selectivity", "idx nodes", "scan nodes", "idx MB", "scan MB", "idx t(s)", "scan t(s)", "idx recv", "scan recv", "expected"},
	}
	var runs []RangeSelRun
	var records []BenchRecord
	for _, sel := range cfg.Selectivities {
		cut := int64(sel * rangeDomain)
		expected := 0
		for _, v := range vals {
			if v < cut {
				expected++
			}
		}
		idxRun := runRangeQuery(sn, cfg, cut, sel, expected, true)
		scanRun := runRangeQuery(sn, cfg, cut, sel, expected, false)
		runs = append(runs, idxRun, scanRun)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.1f%%", sel*100),
			fmt.Sprint(idxRun.NodesContacted), fmt.Sprint(scanRun.NodesContacted),
			fmt.Sprintf("%.2f", idxRun.TrafficMB), fmt.Sprintf("%.2f", scanRun.TrafficMB),
			secs(idxRun.TimeToLast), secs(scanRun.TimeToLast),
			fmt.Sprint(idxRun.Received), fmt.Sprint(scanRun.Received),
			fmt.Sprint(expected),
		})
		for _, r := range []RangeSelRun{idxRun, scanRun} {
			strategy := "full-scan"
			if r.Index {
				strategy = "index-scan"
			}
			rec := BenchRecord{
				Scenario:       "range",
				Workload:       fmt.Sprintf("sel=%.3f", sel),
				Strategy:       strategy,
				Nodes:          cfg.Nodes,
				Results:        r.Received,
				Expected:       r.Expected,
				TrafficBytes:   int64(r.TrafficMB * 1e6),
				TimeToLastSec:  r.TimeToLast.Seconds(),
				NodesContacted: r.NodesContacted,
			}
			if s := rec.TimeToLastSec; s > 0 {
				rec.ResultsPerSec = float64(r.Received) / s
			}
			records = append(records, rec)
		}
	}
	return runs, tbl, records
}

// buildRangeDeployment loads and indexes the table, returning the
// settled network and the generated attribute values.
func buildRangeDeployment(cfg RangeSelConfig) (*pier.SimNetwork, []int64) {
	opts := pier.DefaultOptions()
	opts.Index.Interval = 10 * time.Second
	sn := pier.NewSimNetwork(cfg.Nodes, topology.NewFullMesh(), cfg.Seed, opts)

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	vals := make([]int64, cfg.Tuples)
	for i := range vals {
		vals[i] = rng.Int63n(rangeDomain)
		t := &core.Tuple{Rel: "T", Vals: []core.Value{int64(i), vals[i]}}
		sn.Load("T", fmt.Sprint(i), int64(i), t, 0)
	}
	sn.Nodes[0].RegisterTable(rangeSchema, time.Hour)
	if err := sn.Nodes[0].CreateIndex(rangeSchema, "t_num", "num", time.Hour); err != nil {
		panic(err)
	}
	// Let the backfilled trie descend its prefix chain and split below
	// the leaf threshold (one level per maintenance tick).
	sn.RunFor(5 * time.Minute)
	return sn, vals
}

// runRangeQuery measures one access path for num < cut.
func runRangeQuery(sn *pier.SimNetwork, cfg RangeSelConfig, cut int64, sel float64, expected int, useIndex bool) RangeSelRun {
	plan, err := pier.ParseSQL(fmt.Sprintf("SELECT pkey, num FROM T WHERE num < %d", cut),
		pier.Catalog{"T": rangeSchema})
	if err != nil {
		panic(err)
	}
	plan.AutoAccess = false // the sweep forces each path explicitly
	if !useIndex {
		plan.Tables[0].IndexScan = nil
	}
	plan.TTL = 20 * time.Minute

	sn.Net.ResetStats()
	start := sn.Net.Now()
	received := 0
	var last time.Duration
	node := sn.Nodes[0]
	id, err := node.Query(plan, func(*core.Tuple, int) {
		received++
		last = sn.Net.Now().Sub(start)
	})
	if err != nil {
		panic(err)
	}
	sn.RunUntil(10*time.Minute, func() bool { return received >= expected })
	run := RangeSelRun{
		Selectivity: sel,
		Index:       useIndex,
		Received:    received,
		Expected:    expected,
		TrafficMB:   float64(sn.Net.Totals().Bytes) / 1e6,
		TimeToLast:  last,
	}
	if useIndex {
		run.NodesContacted, _ = node.Engine().IndexContacts(id)
	} else {
		// A full scan multicasts the plan to the whole overlay.
		run.NodesContacted = cfg.Nodes
	}
	node.Cancel(id)
	return run
}
