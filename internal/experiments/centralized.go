package experiments

import (
	"fmt"
	"time"

	"pier/internal/core"
	"pier/internal/topology"
)

// CentralizedConfig drives the §5.3 argument: distributing a join over k
// computation nodes divides each node's inbound load by roughly k; a
// single "warehouse" node needs an expensively fat inbound pipe for the
// same response time.
type CentralizedConfig struct {
	Nodes    int
	STuples  int
	Computes []int
	Seed     int64
}

// DefaultCentralized returns the scaled default (paper: n=1024,
// 0.5 GB database, selectivity 50% → T ≈ 0.25 GB to the computation
// nodes).
func DefaultCentralized(full bool) CentralizedConfig {
	cfg := CentralizedConfig{Nodes: 128, STuples: 300, Computes: []int{1, 4, 16, 0}, Seed: 31}
	if full {
		cfg.Nodes, cfg.STuples = 1024, 3000
	}
	return cfg
}

// CentralizedVsDistributed measures the max inbound traffic and the time
// to the last result as the number of computation nodes varies, plus the
// paper's analytic per-node transfer T/k + T/n.
func CentralizedVsDistributed(cfg CentralizedConfig) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Section 5.3: centralized vs distributed query processing (n=%d)", cfg.Nodes),
		Note:    "analytic per-computation-node inbound ≈ T(1/k - 1/n); time grows as computation concentrates",
		Headers: []string{"computation nodes", "max inbound (MB)", "analytic inbound (MB)", "time to last (s)", "traffic (MB)"},
	}
	for _, k := range cfg.Computes {
		res := RunJoin(JoinConfig{
			Nodes:        cfg.Nodes,
			Topo:         topology.NewFullMesh(),
			Seed:         cfg.Seed,
			Strategy:     core.SymmetricHash,
			STuples:      cfg.STuples,
			ComputeNodes: k,
			Limit:        12 * time.Hour,
		})
		// T = bytes that pass the selections on R and S (≈ half of each
		// table at 50% selectivity, tuples ≈ 1 KB).
		T := float64(cfg.STuples*11) * 0.5 * 1024 / 1e6
		kk := k
		if kk == 0 {
			kk = cfg.Nodes
		}
		analytic := T * (1/float64(kk) - 1/float64(cfg.Nodes))
		if analytic < 0 {
			analytic = 0
		}
		label := fmt.Sprint(k)
		if k == 0 {
			label = fmt.Sprintf("N=%d", cfg.Nodes)
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.1f", res.MaxInMB),
			fmt.Sprintf("%.1f", analytic),
			secs(res.TimeToLast),
			fmt.Sprintf("%.1f", res.TrafficMB),
		})
	}
	return t
}
