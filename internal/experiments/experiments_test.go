package experiments

import (
	"strings"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/topology"
)

func TestRunJoinBasics(t *testing.T) {
	res := RunJoin(JoinConfig{Nodes: 32, Seed: 3, Strategy: core.SymmetricHash, STuples: 60})
	if res.Received != res.Expected {
		t.Fatalf("recall %d/%d on a healthy network", res.Received, res.Expected)
	}
	if res.TimeToLast <= 0 || res.TimeToKth <= 0 {
		t.Fatalf("times not measured: %+v", res)
	}
	if res.TimeToKth > res.TimeToLast {
		t.Fatal("30th tuple after last tuple")
	}
	if res.TrafficMB <= 0 || res.MaxInMB <= 0 {
		t.Fatal("traffic not accounted")
	}
}

func TestFewerComputationNodesConcentrateTraffic(t *testing.T) {
	// §5.4: with few computation nodes the bottleneck moves to their
	// inbound links. Verify concentration: max inbound with 1
	// computation node far exceeds the N-node case.
	// 256 S-tuples: enough data that inbound-link congestion at the
	// single computation node dominates placement noise for any seed.
	one := RunJoin(JoinConfig{Nodes: 64, Seed: 5, Strategy: core.SymmetricHash, STuples: 256, ComputeNodes: 1})
	all := RunJoin(JoinConfig{Nodes: 64, Seed: 5, Strategy: core.SymmetricHash, STuples: 256})
	if one.Received != one.Expected || all.Received != all.Expected {
		t.Fatalf("recall loss: one=%d/%d all=%d/%d", one.Received, one.Expected, all.Received, all.Expected)
	}
	if one.MaxInMB < 2*all.MaxInMB {
		t.Fatalf("1 computation node max inbound %.2fMB not >> N-node %.2fMB", one.MaxInMB, all.MaxInMB)
	}
	if one.TimeToLast <= all.TimeToLast {
		t.Fatalf("congested single computation node should be slower: %v vs %v", one.TimeToLast, all.TimeToLast)
	}
}

func TestFigure4Shape(t *testing.T) {
	// The Figure-4 orderings at 50% selectivity: symmetric hash moves
	// the most bytes; the semi-join rewrite moves fewer; Bloom fewer
	// than symmetric hash.
	// Data must dominate Bloom-filter size for the Figure-4 ordering to
	// show, as at paper scale (1 GB tables vs ~8 KB filters).
	cfg := JoinConfig{Nodes: 32, Seed: 9, STuples: 600}
	traffic := map[core.Strategy]float64{}
	for _, s := range []core.Strategy{core.SymmetricHash, core.SymmetricSemiJoin, core.BloomJoin} {
		c := cfg
		c.Strategy = s
		res := RunJoin(c)
		if res.Received != res.Expected {
			t.Fatalf("%v recall %d/%d", s, res.Received, res.Expected)
		}
		traffic[s] = res.StrategyMB
	}
	if traffic[core.SymmetricSemiJoin] >= traffic[core.SymmetricHash] {
		t.Fatalf("semi-join traffic %.2f should undercut symmetric hash %.2f",
			traffic[core.SymmetricSemiJoin], traffic[core.SymmetricHash])
	}
	if traffic[core.BloomJoin] >= traffic[core.SymmetricHash] {
		t.Fatalf("bloom traffic %.2f should undercut symmetric hash %.2f at 50%% selectivity",
			traffic[core.BloomJoin], traffic[core.SymmetricHash])
	}
}

func TestFetchMatchesTrafficFlatAcrossSelectivity(t *testing.T) {
	// Figure 4: Fetch Matches "uses a constant amount of network
	// resources" regardless of the selectivity on S.
	lo := RunJoin(JoinConfig{Nodes: 32, Seed: 11, Strategy: core.FetchMatches, STuples: 100, SelS: 0.1})
	hi := RunJoin(JoinConfig{Nodes: 32, Seed: 11, Strategy: core.FetchMatches, STuples: 100, SelS: 1.0})
	ratio := hi.StrategyMB / lo.StrategyMB
	if ratio > 1.3 {
		t.Fatalf("fetch-matches strategy traffic should be ~flat in S selectivity; got lo=%.2f hi=%.2f", lo.StrategyMB, hi.StrategyMB)
	}
}

func TestRecallDropsWithFailuresAndRecoversWithRefresh(t *testing.T) {
	if testing.Short() {
		t.Skip("churn run")
	}
	cfg := DefaultRecall(false)
	cfg.Nodes = 48
	cfg.STuples = 80
	cfg.Queries = 2
	healthy := recallRun(cfg, 60*time.Second, 0)
	if healthy < 0.99 {
		t.Fatalf("recall without failures = %.3f, want ~1", healthy)
	}
	churn := recallRun(cfg, 60*time.Second, 8)
	if churn > healthy+1e-9 {
		t.Fatalf("churn recall %.3f should not exceed healthy %.3f", churn, healthy)
	}
	if churn < 0.5 {
		t.Fatalf("churn recall %.3f collapsed; soft-state refresh is not repairing losses", churn)
	}
}

func TestTransitStubSlowerThanFullMesh(t *testing.T) {
	// §5.7: same trends, larger absolute values (avg delay 170ms vs
	// 100ms).
	fm := RunJoin(JoinConfig{Nodes: 64, Seed: 13, Strategy: core.SymmetricHash, STuples: 64, Topo: topology.NewFullMesh()})
	ts := RunJoin(JoinConfig{Nodes: 64, Seed: 13, Strategy: core.SymmetricHash, STuples: 64, Topo: topology.NewTransitStub(13)})
	if fm.Received != fm.Expected || ts.Received != ts.Expected {
		t.Fatal("recall loss")
	}
	if ts.TimeToKth <= fm.TimeToKth/2 {
		t.Fatalf("transit-stub %.2fs implausibly fast vs full mesh %.2fs",
			ts.TimeToKth.Seconds(), fm.TimeToKth.Seconds())
	}
}

func TestTablesRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Note:    "a note",
		Headers: []string{"col", "wider-col"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	var sb strings.Builder
	tab.Print(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "a note", "col", "wider-col", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
