package experiments

import (
	"fmt"
	"math"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/dht"
	"pier/internal/dht/can"
	"pier/internal/env"
	"pier/internal/simnet"
	"pier/internal/topology"
)

// CANDims measures average lookup path length against the CAN paper's
// (d/4)·n^(1/d) model for several dimensionalities — the design choice
// §3.1.1 and §5.4 discuss ("this growth can be reduced ... by setting
// d = log n or using a different DHT design").
func CANDims(nodes int, dims []int, lookups int, seed int64) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Ablation: CAN dimensionality vs lookup hops (n=%d)", nodes),
		Headers: []string{"d", "measured avg hops", "(d/4)·n^(1/d) model", "avg lookup latency (s)"},
	}
	for _, d := range dims {
		hops, latency := canLookupStats(nodes, d, lookups, seed)
		model := float64(d) / 4 * math.Pow(float64(nodes), 1/float64(d))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(d),
			fmt.Sprintf("%.2f", hops),
			fmt.Sprintf("%.2f", model),
			fmt.Sprintf("%.2f", latency.Seconds()),
		})
	}
	return t
}

func canLookupStats(nodes, dims, lookups int, seed int64) (avgHops float64, avgLatency time.Duration) {
	nw := simnet.New(topology.NewFullMeshInfinite(), seed)
	cfg := can.DefaultConfig()
	cfg.Dims = dims
	routers := make([]*can.Router, nodes)
	envs := make([]*simnet.NodeEnv, nodes)
	for i := range routers {
		e := nw.AddNode()
		r := can.New(e, cfg)
		e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) { r.HandleMessage(from, m) }))
		routers[i] = r
		envs[i] = e
	}
	can.Bootstrap(routers, seed)

	var total time.Duration
	done := 0
	start := nw.Now()
	for i := 0; i < lookups; i++ {
		src := i % nodes
		key := dht.KeyOf("ablation", fmt.Sprint(i))
		iCopy := i
		envs[src].Post(func() {
			_ = iCopy
			routers[src].Lookup(key, func(env.Addr) {
				total += nw.Now().Sub(start)
				done++
			})
		})
	}
	nw.RunFor(30 * time.Minute)
	var hops, count int64
	for _, r := range routers {
		c, h := r.LookupStats()
		count += c
		hops += h
	}
	if count == 0 || done == 0 {
		return 0, 0
	}
	// total accumulated from a common start: latencies are per-lookup
	// completions; approximate the mean via hop count × link latency.
	return float64(hops) / float64(count), time.Duration(float64(hops) / float64(count) * float64(100*time.Millisecond))
}

// ChordVsCAN runs the workload join over both DHTs — the paper's §3.2
// validation ("we also deployed PIER over ... Chord, which required a
// fairly minimal integration effort").
func ChordVsCAN(nodes, sTuples int, seed int64) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Ablation: CAN vs Chord under the workload join (n=%d)", nodes),
		Headers: []string{"dht", "time to 30th (s)", "time to last (s)", "recall", "avg lookup hops"},
	}
	for _, kind := range []pier.DHTKind{pier.CAN, pier.Chord} {
		res := RunJoin(JoinConfig{
			Nodes:    nodes,
			Topo:     topology.NewFullMesh(),
			Seed:     seed,
			Strategy: core.SymmetricHash,
			STuples:  sTuples,
			DHT:      kind,
		})
		name := "CAN(d=4)"
		if kind == pier.Chord {
			name = "Chord"
		}
		recall := float64(res.Received) / float64(res.Expected)
		t.Rows = append(t.Rows, []string{
			name, secs(res.TimeToKth), secs(res.TimeToLast),
			fmt.Sprintf("%.3f", recall), fmt.Sprintf("%.2f", res.AvgHops),
		})
	}
	return t
}

// HierarchicalAgg compares flat DHT aggregation against the two-level
// hierarchy of §7 ("Hierarchical aggregation and DHTs"): one global
// COUNT/SUM over rows spread across n nodes, measuring the hottest
// node's inbound bytes (the root collector).
func HierarchicalAgg(nodes, rows int, fanouts []int, seed int64) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Ablation: flat vs hierarchical aggregation (n=%d, one global group)", nodes),
		Note:    "fanout 0 = the paper's flat parallel-database scheme; >0 = two-level tree (§7)",
		Headers: []string{"fanout", "max node inbound (KB)", "total traffic (KB)", "time to result (s)"},
	}
	for _, f := range fanouts {
		maxIn, total, dur := hierAggRun(nodes, rows, f, seed)
		label := fmt.Sprint(f)
		if f == 0 {
			label = "flat"
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.1f", maxIn/1024),
			fmt.Sprintf("%.1f", total/1024),
			fmt.Sprintf("%.2f", dur.Seconds()),
		})
	}
	return t
}

func hierAggRun(nodes, rows, fanout int, seed int64) (maxIn, total float64, dur time.Duration) {
	sn := pier.NewSimNetwork(nodes, topology.NewFullMesh(), seed, pier.DefaultOptions())
	for i := 0; i < rows; i++ {
		sn.Load("m", fmt.Sprint(i), int64(i), &core.Tuple{Rel: "m", Vals: []core.Value{"g", int64(1)}}, 0)
	}
	sn.Net.ResetStats()
	plan := &core.Plan{
		Tables:    []core.TableRef{{NS: "m"}},
		GroupBy:   []int{0},
		Aggs:      []core.Aggregate{{Kind: core.Count, Col: -1}, {Kind: core.Sum, Col: 1}},
		AggWait:   10 * time.Second,
		AggFanout: fanout,
	}
	start := sn.Net.Now()
	var done time.Time
	id, err := sn.Nodes[0].Query(plan, func(*core.Tuple, int) { done = sn.Net.Now() })
	if err != nil {
		panic(err)
	}
	defer sn.Nodes[0].Cancel(id)
	sn.RunFor(time.Minute)
	return float64(sn.Net.MaxInbound()), float64(sn.Net.Totals().Bytes), done.Sub(start)
}

// StrategyTraffic compares the four strategies' traffic and latency at
// one operating point — a compact summary for the README.
func StrategyTraffic(nodes, sTuples int, seed int64) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Join strategies at 50%% selectivity (n=%d, 10Mbps)", nodes),
		Headers: []string{"strategy", "traffic (MB)", "time to last (s)", "recall"},
	}
	for _, s := range selStrategies {
		res := RunJoin(JoinConfig{
			Nodes:    nodes,
			Topo:     topology.NewFullMesh(),
			Seed:     seed,
			Strategy: s,
			STuples:  sTuples,
		})
		t.Rows = append(t.Rows, []string{
			s.String(),
			fmt.Sprintf("%.1f", res.TrafficMB),
			secs(res.TimeToLast),
			fmt.Sprintf("%.3f", float64(res.Received)/float64(res.Expected)),
		})
	}
	return t
}
