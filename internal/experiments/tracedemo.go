package experiments

// The trace demo: one traced distributed join, end to end, printing
// the assembled span tree — the same artifact EXPLAIN TRACE returns
// over SQL and GET /api/queries/{id}/trace returns over REST. It
// exists so `pier-bench -trace` gives a zero-setup look at what query
// tracing records: multicast fan-out, per-node executor and scan
// spans, rehash/Bloom phases, and result-flush latencies, all on the
// deployment's virtual clock.

import (
	"fmt"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/topology"
	"pier/internal/workload"
)

// TraceDemo runs the §5.1 workload join EXPLAIN TRACE'd over a
// simulated deployment (64 nodes; 256 with full) and returns a
// human-readable report: recall plus the rendered span tree.
func TraceDemo(seed int64, full bool) (string, error) {
	nodes, sTuples := 64, 60
	if full {
		nodes, sTuples = 256, 200
	}
	sn := pier.NewSimNetwork(nodes, topology.NewFullMeshInfinite(), seed, pier.DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: sTuples, Seed: seed + 1})
	for i, r := range tables.R {
		sn.Load("R", core.ValueString(r.Vals[workload.RPkey]), int64(i), r, 0)
	}
	for i, s := range tables.S {
		sn.Load("S", core.ValueString(s.Vals[workload.SPkey]), int64(i), s, 0)
	}
	cat := pier.Catalog{
		"R": {Name: "R", Cols: []string{"pkey", "num1", "num2", "num3"}, Key: "pkey"},
		"S": {Name: "S", Cols: []string{"pkey", "num2", "num3"}, Key: "pkey"},
	}
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	want := tables.ReferenceJoin(c1, c2, c3)

	src := fmt.Sprintf(`EXPLAIN TRACE
		SELECT R.pkey, S.pkey
		FROM R, S
		WHERE R.num1 = S.pkey AND R.num2 > %d AND S.num2 > %d
		  AND f(R.num3, S.num3) > %d`, c1, c2, c3)
	plan, err := pier.ParseSQL(src, cat)
	if err != nil {
		return "", err
	}

	received := 0
	id, err := sn.Nodes[0].Query(plan, func(*core.Tuple, int) { received++ })
	if err != nil {
		return "", err
	}
	sn.RunUntil(10*time.Minute, func() bool { return received >= len(want) })
	// Let trailing result frames — and the span buffers they piggyback —
	// land before the collector closes.
	sn.RunFor(2 * time.Second)
	sn.Nodes[0].Cancel(id)
	tr, ok := sn.Nodes[0].Trace(id)
	if !ok {
		return "", fmt.Errorf("traced query %d left no trace", id)
	}
	return fmt.Sprintf("join returned %d/%d rows across %d nodes\n\n%s",
		received, len(want), nodes, tr.RenderString()), nil
}
