package experiments

// SimScale measures the simulation core's scale budget: how many bytes
// of heap one simulated node costs — split into the simnet+env
// substrate and the full PIER overlay stack — and how many events per
// second the discrete-event core sustains while routing. This is the
// harness behind the memory-per-node budget published in EXPERIMENTS.md
// and the CI simscale-smoke gate: the bytes_per_simulated_node records
// are gated by CompareBaseline, the events/sec records are trajectory
// only (wall-clock).

import (
	"fmt"
	"runtime"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/env"
	"pier/internal/simnet"
	"pier/internal/topology"
)

// SimScaleConfig sizes the two measurement buckets.
type SimScaleConfig struct {
	// Nodes is the raw simulator population: bare simnet.Network +
	// NodeEnv with a forwarding handler, no PIER stack. This bucket is
	// the ≤10KB/node budget of the scaling work.
	Nodes int
	// OverlayNodes is the population for the full-stack bucket: a
	// bootstrapped CAN deployment with provider, engine, statistics,
	// and index agents per node, measured incrementally over the
	// substrate and exercised with one network-wide multicast scan.
	OverlayNodes int
	// Walkers and Hops shape the raw route pass: Walkers concurrent
	// random walks of Hops message hops each.
	Walkers, Hops int
	Seed          int64
}

// DefaultSimScale returns the n=100k build-and-route configuration used
// by CI; -full raises the raw population to 250k.
func DefaultSimScale(full bool) SimScaleConfig {
	cfg := SimScaleConfig{
		Nodes:        100_000,
		OverlayNodes: 100_000,
		Walkers:      20_000,
		Hops:         20,
		Seed:         1,
	}
	if full {
		cfg.Nodes = 250_000
	}
	return cfg
}

// walkMsg is the raw route pass's payload: a hop budget.
type walkMsg struct{ hops int32 }

func (walkMsg) WireSize() int { return 64 }

// heapInUse settles the collector and returns live heap bytes.
func heapInUse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// SimScale runs both buckets and returns the human table plus the
// machine-readable records.
func SimScale(cfg SimScaleConfig) (*Table, []BenchRecord) {
	tbl := &Table{
		Title: fmt.Sprintf("Simulation core at scale (raw n=%d, overlay n=%d)",
			cfg.Nodes, cfg.OverlayNodes),
		Headers: []string{"bucket", "nodes", "heap MB", "bytes/node", "events", "events/sec", "wall"},
	}
	var records []BenchRecord

	// Bucket 1: the simulator substrate. Build n nodes with a
	// forwarding handler, measure the settled heap delta, then drive
	// Walkers random walks of Hops hops and measure event throughput.
	base := heapInUse()
	nw := simnet.New(topology.NewFullMeshInfinite(), cfg.Seed)
	n := cfg.Nodes
	for i := 0; i < n; i++ {
		nd := nw.AddNode()
		nd.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
			msg := m.(walkMsg)
			if msg.hops > 0 {
				next := int(nd.Rand().Int63n(int64(n)))
				nd.Send(nw.Node(next).Addr(), walkMsg{hops: msg.hops - 1})
			}
		}))
	}
	rawBytes := int64(heapInUse() - base)
	rawPerNode := rawBytes / int64(n)

	for i := 0; i < cfg.Walkers; i++ {
		src := nw.Node((i * 104729) % n)
		hops := int32(cfg.Hops)
		src.After(time.Duration(i%1000)*time.Millisecond, func() {
			src.Send(src.Addr(), walkMsg{hops: hops})
		})
	}
	start := time.Now()
	events := nw.Drain()
	wall := time.Since(start)
	rawEPS := float64(events) / wall.Seconds()
	tbl.Rows = append(tbl.Rows, []string{
		"simnet+env", fmt.Sprint(n), fmt.Sprintf("%.1f", float64(rawBytes)/1e6),
		fmt.Sprint(rawPerNode), fmt.Sprint(events), fmt.Sprintf("%.0f", rawEPS),
		wall.Round(time.Millisecond).String(),
	})
	records = append(records, BenchRecord{
		Scenario:        "simscale",
		Workload:        "simnet",
		Nodes:           n,
		BytesPerSimNode: rawPerNode,
		SimEventsPerSec: rawEPS,
	})
	runtime.KeepAlive(nw)
	nw = nil

	// Bucket 2: the full PIER stack, measured incrementally — build a
	// bootstrapped CAN deployment, load a small table, and run one
	// network-wide multicast scan as the route pass.
	on := cfg.OverlayNodes
	base = heapInUse()
	sn := pier.NewSimNetwork(on, topology.NewFullMesh(), cfg.Seed, pier.DefaultOptions())
	overlayBytes := int64(heapInUse() - base)
	overlayPerNode := overlayBytes / int64(on)

	const rows = 200
	for i := 0; i < rows; i++ {
		sn.Load("u", fmt.Sprint(i), int64(i), &core.Tuple{Rel: "u", Vals: []core.Value{int64(i)}}, 0)
	}
	plan := &core.Plan{Tables: []core.TableRef{{NS: "u"}}, TTL: 2 * time.Minute}
	got := 0
	id, err := sn.QueryFrom(0, plan, func(*core.Tuple, int) { got++ })
	if err != nil {
		panic(fmt.Sprintf("simscale: scan rejected: %v", err))
	}
	start = time.Now()
	events = sn.Net.RunFor(90 * time.Second)
	wall = time.Since(start)
	sn.Nodes[0].Cancel(id)
	overlayEPS := float64(events) / wall.Seconds()
	tbl.Rows = append(tbl.Rows, []string{
		"pier overlay", fmt.Sprint(on), fmt.Sprintf("%.1f", float64(overlayBytes)/1e6),
		fmt.Sprint(overlayPerNode), fmt.Sprint(events), fmt.Sprintf("%.0f", overlayEPS),
		wall.Round(time.Millisecond).String(),
	})
	tbl.Note = fmt.Sprintf("overlay bytes/node are incremental over the substrate; scan returned %d/%d rows", got, rows)
	records = append(records, BenchRecord{
		Scenario:        "simscale",
		Workload:        "overlay",
		Nodes:           on,
		Results:         got,
		Expected:        rows,
		BytesPerSimNode: overlayPerNode,
		SimEventsPerSec: overlayEPS,
	})
	runtime.KeepAlive(sn)
	return tbl, records
}
