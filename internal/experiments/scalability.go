package experiments

import (
	"fmt"
	"time"

	"pier/internal/core"
	"pier/internal/topology"
)

// ScalabilityConfig drives Figures 3 and 7: grow the network and the
// load together and measure the time to the 30th result tuple.
type ScalabilityConfig struct {
	// Sizes are the network sizes to sweep (paper: 2 .. 10,000).
	Sizes []int
	// ComputeSeries are the computation-node counts; 0 means "N
	// computation nodes" (paper series: 1, 2, 8, 16, N).
	ComputeSeries []int
	// SPerNode scales the load with the network: |S| = SPerNode × n,
	// |R| = 10 × |S| (the paper loads ~0.5 MB of source data per node).
	SPerNode int
	// PadBytes overrides the R.pad size (0 keeps the paper's ~1KB
	// tuples). The n≥100k point shrinks it so the 11×SPerNode×n loaded
	// tuples fit in memory.
	PadBytes int
	// TransitStub switches to the Figure-7 topology.
	TransitStub bool
	Seed        int64
}

// DefaultScalability is the scaled-down default configuration.
func DefaultScalability(full bool) ScalabilityConfig {
	cfg := ScalabilityConfig{
		Sizes:         []int{2, 8, 32, 128, 512},
		ComputeSeries: []int{1, 2, 8, 16, 0},
		SPerNode:      2,
		Seed:          1,
	}
	if full {
		cfg.Sizes = append(cfg.Sizes, 1024, 2048, 4096, 10000)
		cfg.SPerNode = 4
	}
	return cfg
}

// XLScalability is the Figure-3 shape an order of magnitude past paper
// scale: a single n=100,000 point with the 16-computation-node and
// N-computation-node series. One S tuple per node keeps the load at
// |R|+|S| = 1.1M tuples, and the 64-byte pad keeps them memory-feasible
// — the interesting quantity at this size is the shape (does time to
// the 30th tuple stay flat as multicast and rehash fan out over 100k
// nodes), not the absolute byte volume.
func XLScalability() ScalabilityConfig {
	return ScalabilityConfig{
		Sizes:         []int{100_000},
		ComputeSeries: []int{16, 0},
		SPerNode:      1,
		PadBytes:      64,
		Seed:          1,
	}
}

// Scalability runs the sweep and returns the figure's series as a table:
// one row per network size, one column per computation-node series.
func Scalability(cfg ScalabilityConfig) *Table {
	title := "Figure 3: time to 30th result tuple vs network size (fully connected, 100ms, 10Mbps)"
	if cfg.TransitStub {
		title = "Figure 7: time to 30th result tuple vs network size (transit-stub topology)"
	}
	t := &Table{
		Title: title,
		Note:  fmt.Sprintf("load scales with network size: |S| = %d per node, |R| = 10x|S|", cfg.SPerNode),
	}
	t.Headers = []string{"nodes"}
	for _, k := range cfg.ComputeSeries {
		if k == 0 {
			t.Headers = append(t.Headers, "N comp (s)")
		} else {
			t.Headers = append(t.Headers, fmt.Sprintf("%d comp (s)", k))
		}
	}
	for _, n := range cfg.Sizes {
		row := []string{fmt.Sprint(n)}
		for _, k := range cfg.ComputeSeries {
			if k > n {
				row = append(row, "-")
				continue
			}
			var topo topology.Topology
			if cfg.TransitStub {
				topo = topology.NewTransitStub(cfg.Seed)
			} else {
				topo = topology.NewFullMesh()
			}
			res := RunJoin(JoinConfig{
				Nodes:        n,
				Topo:         topo,
				Seed:         cfg.Seed + int64(n)*13 + int64(k),
				Strategy:     core.SymmetricHash,
				STuples:      cfg.SPerNode * n,
				PadBytes:     cfg.PadBytes,
				ComputeNodes: k,
				Limit:        4 * time.Hour,
			})
			row = append(row, secs(res.TimeToKth))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
