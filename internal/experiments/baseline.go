package experiments

// Baseline comparison for the bench-smoke CI gate: a committed
// BENCH_0.json snapshot defines the performance floor, and
// `pier-bench -baseline BENCH_0.json` fails the run when a
// deterministic metric regresses past its budget. Only
// simulation-stable metrics participate — traffic bytes, result
// frames/tuples, trie nodes contacted, and result counts are exact
// replays of a pinned seed — never wall-clock rates, which track host
// load, not code.

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReadBenchJSON decodes a BENCH_*.json record array as written by
// WriteBenchJSON.
func ReadBenchJSON(r io.Reader) ([]BenchRecord, error) {
	var recs []BenchRecord
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// benchKey identifies a record for baseline matching.
func benchKey(r BenchRecord) string {
	return fmt.Sprintf("%s/%s/%s adaptive=%v n=%d", r.Scenario, r.Workload, r.Strategy, r.Adaptive, r.Nodes)
}

// CompareBaseline matches current records against baseline records by
// (scenario, workload, strategy, adaptive, nodes) and returns one line
// per regression plus the number of record pairs compared. Records
// present on only one side are ignored, so the gate keeps working when
// scenarios are added or a CI run restricts itself with -only. Cost
// metrics (traffic bytes, result frames, result tuples, nodes
// contacted, allocs per op) may not grow past 1+tol of the baseline;
// the result count (recall) may not shrink below 1-tol. Zero baseline
// values are skipped — the metric was not measured by that scenario.
// Wall-clock rates (results/sec, tuples/sec) are never gated: they
// track host load, not code.
func CompareBaseline(baseline, current []BenchRecord, tol float64) (regressions []string, compared int) {
	base := map[string]BenchRecord{}
	for _, r := range baseline {
		base[benchKey(r)] = r
	}
	for _, cur := range current {
		b, ok := base[benchKey(cur)]
		if !ok {
			continue
		}
		compared++
		check := func(metric string, baseV, curV int64) {
			if baseV <= 0 {
				return
			}
			if float64(curV) > float64(baseV)*(1+tol) {
				regressions = append(regressions, fmt.Sprintf("%s: %s %d -> %d (+%.0f%%, budget %.0f%%)",
					benchKey(cur), metric, baseV, curV, 100*(float64(curV)/float64(baseV)-1), 100*tol))
			}
		}
		check("traffic_bytes", b.TrafficBytes, cur.TrafficBytes)
		check("result_frames", b.ResultFrames, cur.ResultFrames)
		check("result_tuples", b.ResultTuples, cur.ResultTuples)
		check("nodes_contacted", int64(b.NodesContacted), int64(cur.NodesContacted))
		check("bytes_per_simulated_node", b.BytesPerSimNode, cur.BytesPerSimNode)
		if b.AllocsPerOp > 0 && cur.AllocsPerOp > b.AllocsPerOp*(1+tol) {
			regressions = append(regressions, fmt.Sprintf("%s: allocs_per_op %.1f -> %.1f (+%.0f%%, budget %.0f%%)",
				benchKey(cur), b.AllocsPerOp, cur.AllocsPerOp, 100*(cur.AllocsPerOp/b.AllocsPerOp-1), 100*tol))
		}
		if b.Results > 0 && float64(cur.Results) < float64(b.Results)*(1-tol) {
			regressions = append(regressions, fmt.Sprintf("%s: results %d -> %d (recall regression, budget %.0f%%)",
				benchKey(cur), b.Results, cur.Results, 100*tol))
		}
	}
	return regressions, compared
}
