package experiments

import (
	"fmt"
	"time"

	"pier/internal/chaos"
)

// ChurnMatrixConfig drives the chaos-harness successor of the Figure 6
// experiment: where the paper only fails nodes, the harness also
// rejoins a fresh identity per departure (constant population, like a
// real long-lived deployment), mixes graceful leaves among the
// crashes, and measures recall for the full generated query mix
// against a fault-free oracle run of the same seed.
type ChurnMatrixConfig struct {
	Nodes          int
	STuples        int
	Queries        int
	QueryEvery     time.Duration
	RefreshPeriods []time.Duration
	// ChurnRates are departures/minute (each followed by a rejoin).
	ChurnRates   []float64
	GracefulFrac float64
	BaseLoss     float64
	Seed         int64
}

// DefaultChurnMatrix returns the scaled default; full widens to the
// paper's churn range at 4096-node population shape.
func DefaultChurnMatrix(full bool) ChurnMatrixConfig {
	cfg := ChurnMatrixConfig{
		Nodes:          64,
		STuples:        80,
		Queries:        4,
		QueryEvery:     45 * time.Second,
		RefreshPeriods: []time.Duration{30 * time.Second, 60 * time.Second, 150 * time.Second},
		ChurnRates:     []float64{0, 3, 6},
		GracefulFrac:   0.3,
		BaseLoss:       0.01,
		Seed:           11,
	}
	if full {
		cfg.Nodes = 1024
		cfg.STuples = 400
		cfg.Queries = 8
		cfg.ChurnRates = []float64{0, 6, 12, 24}
		cfg.RefreshPeriods = append(cfg.RefreshPeriods, 225*time.Second)
	}
	return cfg
}

// XLChurnMatrix is one churn-matrix point at n=100,000: a single
// refresh period and churn rate, exercising the full chaos harness
// (crash + rejoin + loss, oracle and faulted runs) at three orders of
// magnitude beyond the paper's churn experiment population. The churn
// rate scales with the population — 60 departures/min is 0.06%/min of
// a 100k network.
func XLChurnMatrix(seed int64) ChurnMatrixConfig {
	return ChurnMatrixConfig{
		Nodes:          100_000,
		STuples:        300,
		Queries:        2,
		QueryEvery:     30 * time.Second,
		RefreshPeriods: []time.Duration{45 * time.Second},
		ChurnRates:     []float64{60},
		GracefulFrac:   0.3,
		BaseLoss:       0.01,
		Seed:           seed,
	}
}

// ChurnMatrix runs the recall-under-churn matrix through the chaos
// harness and reports average recall percentages, plus whether every
// scenario kept its invariants.
func ChurnMatrix(cfg ChurnMatrixConfig) *Table {
	t := &Table{
		Title: fmt.Sprintf("Chaos churn matrix: recall (%%) vs churn with rejoin, n=%d, 1%% loss", cfg.Nodes),
		Note:  "rows: departures/min (30% graceful, each followed by a rejoin); columns: refresh period; * marks an invariant violation",
	}
	t.Headers = []string{"departures/min"}
	for _, rp := range cfg.RefreshPeriods {
		t.Headers = append(t.Headers, fmt.Sprintf("%ds refresh", int(rp.Seconds())))
	}
	for _, rate := range cfg.ChurnRates {
		row := []string{fmt.Sprintf("%.0f", rate)}
		for _, rp := range cfg.RefreshPeriods {
			rep := chaos.Run(chaos.Config{
				Nodes:         cfg.Nodes,
				Seed:          cfg.Seed,
				CrashesPerMin: rate,
				GracefulFrac:  cfg.GracefulFrac,
				BaseLoss:      cfg.BaseLoss,
				STuples:       cfg.STuples,
				RefreshPeriod: rp,
				Queries:       cfg.Queries,
				QueryEvery:    cfg.QueryEvery,
				RecallFloor:   0, // the matrix reports recall; it does not gate on it
			})
			cell := fmt.Sprintf("%.1f", 100*rep.Recall)
			if !rep.AllPass() {
				cell += "*"
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ChaosScenario runs the pinned-seed reference scenario (the one CI
// smokes and the acceptance criteria name) and returns its report.
func ChaosScenario(seed int64, full bool) *chaos.Report {
	cfg := chaos.Default(seed)
	if full {
		cfg.Nodes = 256
		cfg.STuples = 200
		cfg.Queries = 16
	}
	return chaos.Run(cfg)
}

// RangeChaosScenario runs the pinned-seed scenario with the Prefix
// Hash Tree index in the workload mix: range queries traverse the trie
// under churn, partitions, and loss, and are held to the same recall,
// termination, soft-state-expiry, and replay-determinism invariants.
func RangeChaosScenario(seed int64, full bool) *chaos.Report {
	cfg := chaos.DefaultRange(seed)
	if full {
		cfg.Nodes = 256
		cfg.STuples = 200
		cfg.Queries = 16
	}
	return chaos.Run(cfg)
}
