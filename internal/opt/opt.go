// Package opt is a naive cost-based optimizer for PIER's join
// strategies — the starting point §7 sketches for the paper's future
// query-optimization work: take the classic distributed-database cost
// models (semi-joins, Bloom joins, R*-style transfer costs) and "simply
// enhance their cost models to reflect the properties of DHTs".
//
// The model prices each §4 strategy in bytes moved and in expected time
// to the last result, using DHT properties (network size, overlay hop
// latency, lookup path length, per-message overheads) plus catalog
// statistics (cardinalities, tuple widths, selectivities). It picks a
// strategy by minimizing the requested objective; tests cross-validate
// the predicted orderings against measured simulation runs.
package opt

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pier/internal/core"
)

// TableStats summarizes one input relation for costing.
type TableStats struct {
	// Tuples is the relation's cardinality.
	Tuples float64
	// TupleBytes is the average stored tuple size (including any pad).
	TupleBytes float64
	// Selectivity is the fraction passing the local predicate.
	Selectivity float64
	// HashedOnJoinAttr is true when the relation's resourceID is the
	// join attribute, the precondition for Fetch Matches (§4.1).
	HashedOnJoinAttr bool
	// DistinctJoinKeys is the number of distinct join-attribute values
	// (defaults to Tuples when zero); it sizes Bloom filters.
	DistinctJoinKeys float64
}

func (t TableStats) norm() TableStats {
	if t.Selectivity <= 0 || t.Selectivity > 1 {
		t.Selectivity = 1
	}
	if t.DistinctJoinKeys <= 0 {
		t.DistinctJoinKeys = t.Tuples
	}
	if t.TupleBytes <= 0 {
		t.TupleBytes = 64
	}
	return t
}

// NetStats summarizes the deployment for costing.
type NetStats struct {
	// Nodes is the overlay size n.
	Nodes int
	// HopLatency is the one-way delay of an overlay hop.
	HopLatency time.Duration
	// LookupHops is the average lookup path length; zero derives the
	// CAN d=4 model n^(1/4) (§5.5.1).
	LookupHops float64
	// MsgOverheadBytes is charged per DHT message (headers, keys).
	MsgOverheadBytes float64
	// BloomBits is the per-table Bloom filter size used by the Bloom
	// rewrite; zero uses 2^16 (the paper-scale default).
	BloomBits float64
	// BloomWait is the collector gather window of the Bloom rewrite.
	BloomWait time.Duration
}

func (n NetStats) norm() NetStats {
	if n.Nodes <= 0 {
		n.Nodes = 1024
	}
	if n.HopLatency <= 0 {
		n.HopLatency = 100 * time.Millisecond
	}
	if n.LookupHops <= 0 {
		n.LookupHops = math.Pow(float64(n.Nodes), 0.25)
	}
	if n.MsgOverheadBytes <= 0 {
		n.MsgOverheadBytes = 80
	}
	if n.BloomBits <= 0 {
		n.BloomBits = 1 << 16
	}
	if n.BloomWait <= 0 {
		n.BloomWait = 5 * time.Second
	}
	return n
}

// JoinStats couples the two inputs with the join's match rate.
type JoinStats struct {
	Left, Right TableStats
	// MatchFraction is the fraction of filtered left tuples with at
	// least one join partner (the workload's 90%, §5.1).
	MatchFraction float64
	// AvgMatches is the average number of right matches per matching
	// left tuple (1 for a key join).
	AvgMatches float64
}

func (j JoinStats) norm() JoinStats {
	j.Left = j.Left.norm()
	j.Right = j.Right.norm()
	if j.MatchFraction <= 0 || j.MatchFraction > 1 {
		j.MatchFraction = 1
	}
	if j.AvgMatches <= 0 {
		j.AvgMatches = 1
	}
	return j
}

// Estimate is the predicted cost of one strategy.
type Estimate struct {
	Strategy core.Strategy
	// TrafficBytes is the strategy's own bandwidth (result delivery
	// excluded — identical across strategies, the Figure 4 metric).
	TrafficBytes float64
	// Latency approximates the time to the last result under pure
	// propagation delay (the Table 4 metric).
	Latency time.Duration
	// Feasible is false when the strategy's precondition fails (Fetch
	// Matches without the inner table hashed on the join attribute).
	Feasible bool
}

// Objective selects what Choose minimizes.
type Objective int

// Objectives.
const (
	// MinTraffic minimizes bytes moved — the paper's primary concern
	// for wide-area queries ("bandwidth-reducing rewrite schemes", §4).
	MinTraffic Objective = iota
	// MinLatency minimizes the propagation-delay estimate.
	MinLatency
)

// Estimates prices all four strategies.
func Estimates(j JoinStats, net NetStats) []Estimate {
	j = j.norm()
	net = net.norm()

	lookupT := time.Duration(net.LookupHops * float64(net.HopLatency))
	lookupB := net.LookupHops * net.MsgOverheadBytes
	hop := net.HopLatency
	// Flooding multicast: ~1 copy per node, depth ~1.5 n^(1/4).
	mcastB := float64(net.Nodes) * net.MsgOverheadBytes
	mcastT := time.Duration(1.5 * math.Pow(float64(net.Nodes), 0.25) * float64(hop))

	filteredL := j.Left.Tuples * j.Left.Selectivity
	filteredR := j.Right.Tuples * j.Right.Selectivity
	pairs := filteredL * j.MatchFraction * j.AvgMatches * j.Right.Selectivity

	put := func(bytes float64) float64 { return lookupB + net.MsgOverheadBytes + bytes }
	get := func(bytes float64) float64 { return lookupB + 2*net.MsgOverheadBytes + bytes }

	var out []Estimate

	// Symmetric hash (§4.1): rehash both filtered inputs.
	out = append(out, Estimate{
		Strategy:     core.SymmetricHash,
		TrafficBytes: mcastB + filteredL*put(j.Left.TupleBytes) + filteredR*put(j.Right.TupleBytes),
		Latency:      mcastT + lookupT + 2*hop,
		Feasible:     true,
	})

	// Fetch Matches (§4.1): one get per filtered left tuple; the right
	// predicate cannot be pushed, so full right tuples come back for
	// every probe that finds data.
	out = append(out, Estimate{
		Strategy: core.FetchMatches,
		TrafficBytes: mcastB +
			filteredL*(lookupB+2*net.MsgOverheadBytes) +
			filteredL*j.MatchFraction*j.AvgMatches*j.Right.TupleBytes,
		Latency:  mcastT + lookupT + 3*hop,
		Feasible: j.Right.HashedOnJoinAttr,
	})

	// Symmetric semi-join (§4.2): rehash (rid, key) minis, then fetch
	// both base tuples per matching pair (memoized per probing site).
	miniBytes := 24.0
	out = append(out, Estimate{
		Strategy: core.SymmetricSemiJoin,
		TrafficBytes: mcastB +
			(filteredL+filteredR)*put(miniBytes) +
			pairs*get(j.Left.TupleBytes) +
			math.Min(pairs, filteredR)*get(j.Right.TupleBytes),
		Latency:  mcastT + 2*lookupT + 4*hop,
		Feasible: true,
	})

	// Bloom rewrite (§4.2): per-node filters to collectors, OR-ed
	// filters multicast back, rehash pruned by the opposite filter.
	filterBytes := net.BloomBits / 8
	fpL := bloomFP(net.BloomBits, j.Right.DistinctJoinKeys*j.Right.Selectivity)
	passL := j.MatchFraction*j.Right.Selectivity + (1-j.MatchFraction*j.Right.Selectivity)*fpL
	fpR := bloomFP(net.BloomBits, j.Left.DistinctJoinKeys*j.Left.Selectivity)
	passR := math.Min(1, j.MatchFraction+(1-j.MatchFraction)*fpR)
	out = append(out, Estimate{
		Strategy: core.BloomJoin,
		TrafficBytes: mcastB +
			2*float64(net.Nodes)*put(filterBytes) + // per-node filters to collectors
			2*(mcastB+float64(net.Nodes)*filterBytes) + // OR-ed filters multicast
			filteredL*passL*put(j.Left.TupleBytes) +
			filteredR*passR*put(j.Right.TupleBytes),
		Latency:  mcastT + net.BloomWait + mcastT + 2*lookupT + 3*hop,
		Feasible: true,
	})
	return out
}

// bloomFP is the standard false-positive estimate for k=4 hashes.
func bloomFP(bits, keys float64) float64 {
	if keys <= 0 {
		return 0
	}
	k := 4.0
	return math.Pow(1-math.Exp(-k*keys/bits), k)
}

// Choose returns the best feasible strategy under the objective and the
// full ranked estimate list.
func Choose(j JoinStats, net NetStats, obj Objective) (core.Strategy, []Estimate) {
	ests := Estimates(j, net)
	sort.SliceStable(ests, func(a, b int) bool {
		ea, eb := ests[a], ests[b]
		if ea.Feasible != eb.Feasible {
			return ea.Feasible
		}
		if obj == MinLatency {
			return ea.Latency < eb.Latency
		}
		return ea.TrafficBytes < eb.TrafficBytes
	})
	return ests[0].Strategy, ests
}

// String renders an estimate for logs and tools.
func (e Estimate) String() string {
	feas := ""
	if !e.Feasible {
		feas = " (infeasible)"
	}
	return fmt.Sprintf("%-20s %8.2f MB  %6.2fs%s",
		e.Strategy, e.TrafficBytes/1e6, e.Latency.Seconds(), feas)
}
