package opt

import (
	"testing"
	"time"

	"pier/internal/core"
)

// workloadStats mirrors the §5.1 evaluation workload at a given scale.
func workloadStats(sTuples float64, selS float64) JoinStats {
	return JoinStats{
		Left: TableStats{
			Tuples: 10 * sTuples, TupleBytes: 1024, Selectivity: 0.5,
			DistinctJoinKeys: 2 * sTuples,
		},
		Right: TableStats{
			Tuples: sTuples, TupleBytes: 40, Selectivity: selS,
			HashedOnJoinAttr: true, DistinctJoinKeys: sTuples,
		},
		MatchFraction: 0.9,
		AvgMatches:    1,
	}
}

func paperNet() NetStats {
	return NetStats{Nodes: 1024, HopLatency: 100 * time.Millisecond}
}

func byStrategy(ests []Estimate) map[core.Strategy]Estimate {
	m := map[core.Strategy]Estimate{}
	for _, e := range ests {
		m[e.Strategy] = e
	}
	return m
}

func TestLatencyOrderingMatchesTable4(t *testing.T) {
	// Table 4's ordering: sym-hash < fetch matches < semi-join < bloom.
	m := byStrategy(Estimates(workloadStats(90000, 0.5), paperNet()))
	if !(m[core.SymmetricHash].Latency <= m[core.FetchMatches].Latency) {
		t.Error("sym-hash should not be slower than fetch matches")
	}
	if !(m[core.FetchMatches].Latency < m[core.SymmetricSemiJoin].Latency) {
		t.Error("fetch matches should beat semi-join on latency")
	}
	if !(m[core.SymmetricSemiJoin].Latency < m[core.BloomJoin].Latency) {
		t.Error("semi-join should beat bloom on latency")
	}
}

func TestTrafficShapeMatchesFigure4(t *testing.T) {
	// At paper scale and low-to-moderate S selectivity, symmetric hash
	// moves the most bytes and both rewrites undercut it; the rewrites'
	// advantage shrinks linearly as selectivity rises (Figure 4). The
	// crossover past ~90% matches what the simulator measures (see
	// EXPERIMENTS.md): per-pair message overheads eventually exceed the
	// rehash savings.
	for _, sel := range []float64{0.1, 0.3, 0.5} {
		m := byStrategy(Estimates(workloadStats(90000, sel), paperNet()))
		if m[core.SymmetricHash].TrafficBytes < m[core.SymmetricSemiJoin].TrafficBytes {
			t.Errorf("sel=%.1f: semi-join (%.1fMB) above sym-hash (%.1fMB)",
				sel, m[core.SymmetricSemiJoin].TrafficBytes/1e6, m[core.SymmetricHash].TrafficBytes/1e6)
		}
		if m[core.BloomJoin].TrafficBytes > m[core.SymmetricHash].TrafficBytes {
			t.Errorf("sel=%.1f: bloom (%.1fMB) above sym-hash (%.1fMB)",
				sel, m[core.BloomJoin].TrafficBytes/1e6, m[core.SymmetricHash].TrafficBytes/1e6)
		}
	}
	// Bloom's advantage shrinks monotonically with selectivity.
	lo := byStrategy(Estimates(workloadStats(90000, 0.1), paperNet()))
	hi := byStrategy(Estimates(workloadStats(90000, 0.9), paperNet()))
	gapLo := lo[core.SymmetricHash].TrafficBytes - lo[core.BloomJoin].TrafficBytes
	gapHi := hi[core.SymmetricHash].TrafficBytes - hi[core.BloomJoin].TrafficBytes
	if gapHi >= gapLo {
		t.Error("bloom's advantage should shrink as S selectivity rises (Figure 4)")
	}
	// Semi-join grows linearly: equal increments in selectivity add
	// roughly equal traffic.
	s3 := byStrategy(Estimates(workloadStats(90000, 0.3), paperNet()))[core.SymmetricSemiJoin].TrafficBytes
	s5 := byStrategy(Estimates(workloadStats(90000, 0.5), paperNet()))[core.SymmetricSemiJoin].TrafficBytes
	s7 := byStrategy(Estimates(workloadStats(90000, 0.7), paperNet()))[core.SymmetricSemiJoin].TrafficBytes
	if d1, d2 := s5-s3, s7-s5; d1 <= 0 || d2 <= 0 || d2/d1 > 1.2 || d1/d2 > 1.2 {
		t.Errorf("semi-join not linear: increments %.1fMB vs %.1fMB", d1/1e6, d2/1e6)
	}
}

func TestFetchMatchesInfeasibleWithoutHashing(t *testing.T) {
	j := workloadStats(1000, 0.5)
	j.Right.HashedOnJoinAttr = false
	s, ests := Choose(j, paperNet(), MinLatency)
	if s == core.FetchMatches {
		t.Fatal("chose infeasible fetch matches")
	}
	for _, e := range ests {
		if e.Strategy == core.FetchMatches && e.Feasible {
			t.Fatal("fetch matches must be marked infeasible")
		}
	}
}

func TestChooseObjectives(t *testing.T) {
	j := workloadStats(90000, 0.3)
	trafficPick, _ := Choose(j, paperNet(), MinTraffic)
	latencyPick, _ := Choose(j, paperNet(), MinLatency)
	// Low selectivity on S: a bandwidth-reducing rewrite should win on
	// traffic, while symmetric hash wins on pure latency.
	if trafficPick == core.SymmetricHash {
		t.Errorf("MinTraffic picked symmetric hash at 30%% selectivity")
	}
	if latencyPick != core.SymmetricHash {
		t.Errorf("MinLatency picked %v, want symmetric hash", latencyPick)
	}
}

func TestBloomLosesAtTinyScale(t *testing.T) {
	// When filters rival the data (the scale artifact EXPERIMENTS.md
	// documents), bloom must stop being the traffic winner.
	j := workloadStats(50, 0.5) // ~500 tuples total vs 8KB filters
	pick, _ := Choose(j, paperNet(), MinTraffic)
	if pick == core.BloomJoin {
		t.Fatal("bloom chosen even though filters dwarf the data")
	}
}

func TestDefaultsFilledAndFeasible(t *testing.T) {
	_, ests := Choose(JoinStats{Left: TableStats{Tuples: 10}, Right: TableStats{Tuples: 1}}, NetStats{}, MinTraffic)
	if len(ests) != 4 {
		t.Fatalf("estimates = %d, want 4", len(ests))
	}
	for _, e := range ests {
		if e.TrafficBytes <= 0 || e.Latency <= 0 {
			t.Fatalf("degenerate estimate: %+v", e)
		}
		if e.String() == "" {
			t.Fatal("empty rendering")
		}
	}
}

func TestBloomFPBounds(t *testing.T) {
	if fp := bloomFP(1<<16, 0); fp != 0 {
		t.Fatal("no keys must mean no false positives")
	}
	if fp := bloomFP(1<<16, 1000); fp > 0.01 {
		t.Fatalf("fp %.4f too high for 64Kbit/1000 keys", fp)
	}
	if fp := bloomFP(1<<10, 1e6); fp < 0.99 {
		t.Fatalf("saturated filter should approach fp=1, got %f", fp)
	}
}

// --- edge cases ---------------------------------------------------------

func TestChooseZeroCardinalityTables(t *testing.T) {
	// An empty catalog entry (both relations at zero tuples) must not
	// produce NaN costs or an infeasible pick: every strategy's traffic
	// degenerates to its fixed overhead and Choose still returns a
	// feasible strategy.
	j := JoinStats{Left: TableStats{}, Right: TableStats{}}
	s, ests := Choose(j, paperNet(), MinTraffic)
	if len(ests) != 4 {
		t.Fatalf("estimates = %d, want 4", len(ests))
	}
	for _, e := range ests {
		if e.TrafficBytes != e.TrafficBytes || e.TrafficBytes < 0 {
			t.Fatalf("%v: traffic %v not a finite non-negative cost", e.Strategy, e.TrafficBytes)
		}
		if e.Latency < 0 {
			t.Fatalf("%v: negative latency %v", e.Strategy, e.Latency)
		}
	}
	picked := byStrategy(ests)[s]
	if !picked.Feasible {
		t.Fatalf("chose infeasible strategy %v", s)
	}
	// Fetch Matches needs the inner table hashed on the join attribute,
	// which the zero value does not claim.
	if s == core.FetchMatches {
		t.Fatalf("fetch matches chosen without its precondition")
	}
}

func TestChooseObjectivesDisagree(t *testing.T) {
	// Bloom's collector gather window is pure latency but saves rehash
	// bytes; with a long wait and highly selective matches the two
	// objectives must pick different strategies, and each pick must be
	// optimal under its own metric among feasible strategies.
	j := workloadStats(1000, 0.5)
	j.Left.HashedOnJoinAttr = false
	j.Right.HashedOnJoinAttr = false // rules fetch matches out
	j.MatchFraction = 0.02
	net := paperNet()
	net.BloomWait = 2 * time.Minute
	sTraffic, estsTraffic := Choose(j, net, MinTraffic)
	sLatency, estsLatency := Choose(j, net, MinLatency)
	if sTraffic == sLatency {
		t.Fatalf("objectives agree on %v; operating point should separate them", sTraffic)
	}
	mt := byStrategy(estsTraffic)
	ml := byStrategy(estsLatency)
	for s, e := range mt {
		if e.Feasible && e.TrafficBytes < mt[sTraffic].TrafficBytes {
			t.Errorf("MinTraffic picked %v but %v moves fewer bytes", sTraffic, s)
		}
	}
	for s, e := range ml {
		if e.Feasible && e.Latency < ml[sLatency].Latency {
			t.Errorf("MinLatency picked %v but %v finishes sooner", sLatency, s)
		}
	}
}

func TestChooseSingleNodeDeployment(t *testing.T) {
	// A one-node "network" still costs out: no strategy may be priced
	// below zero, estimates stay finite, and the pick is feasible.
	j := workloadStats(100, 0.5)
	net := NetStats{Nodes: 1, HopLatency: time.Millisecond}
	s, ests := Choose(j, net, MinLatency)
	if !byStrategy(ests)[s].Feasible {
		t.Fatalf("chose infeasible strategy %v", s)
	}
	for _, e := range ests {
		if e.TrafficBytes != e.TrafficBytes || e.TrafficBytes < 0 || e.Latency < 0 {
			t.Fatalf("%v: degenerate cost (%v bytes, %v)", e.Strategy, e.TrafficBytes, e.Latency)
		}
	}
}

func TestChooseInfeasibleRanksLast(t *testing.T) {
	// Even when fetch matches would be by far the cheapest, an unmet
	// precondition must keep it out of the pick.
	j := workloadStats(1000, 0.5)
	j.Right.HashedOnJoinAttr = false
	s, ests := Choose(j, paperNet(), MinTraffic)
	if s == core.FetchMatches {
		t.Fatal("picked fetch matches despite unmet precondition")
	}
	last := ests[len(ests)-1]
	if last.Feasible || last.Strategy != core.FetchMatches {
		t.Fatalf("infeasible strategy not ranked last: %+v", ests)
	}
}
