package opt

import (
	"testing"
	"time"
)

func scanNet() NetStats {
	return NetStats{Nodes: 1024, HopLatency: 100 * time.Millisecond}
}

// TestChooseScanPicksIndexWhenSelective pins the acceptance-criteria
// shape: at ≤1% selectivity the index path must win, at 50% the full
// scan must.
func TestChooseScanPicksIndexWhenSelective(t *testing.T) {
	table := TableStats{Tuples: 100_000, TupleBytes: 128}

	for _, sel := range []float64{0.001, 0.01} {
		table.Selectivity = sel
		useIndex, idx, full := ChooseScan(table, scanNet(), 16)
		if !useIndex {
			t.Errorf("selectivity %.3f: chose full scan (index %.0f msgs vs full %.0f)",
				sel, idx.Messages, full.Messages)
		}
	}
	for _, sel := range []float64{0.5, 1.0} {
		table.Selectivity = sel
		useIndex, idx, full := ChooseScan(table, scanNet(), 16)
		if useIndex {
			t.Errorf("selectivity %.2f: chose index scan (index %.0f msgs vs full %.0f)",
				sel, idx.Messages, full.Messages)
		}
	}
}

// TestChooseScanMonotone asserts the index cost grows with selectivity
// while the full-scan cost stays flat — the crossover exists and is
// unique.
func TestChooseScanMonotone(t *testing.T) {
	table := TableStats{Tuples: 50_000, TupleBytes: 64}
	prev := -1.0
	flat := -1.0
	for _, sel := range []float64{0.001, 0.01, 0.05, 0.2, 0.5, 1.0} {
		table.Selectivity = sel
		_, idx, full := ChooseScan(table, scanNet(), 16)
		if idx.Messages < prev {
			t.Errorf("index cost fell from %.0f to %.0f at selectivity %.3f", prev, idx.Messages, sel)
		}
		prev = idx.Messages
		if flat >= 0 && full.Messages != flat {
			t.Errorf("full-scan cost moved with selectivity: %.0f vs %.0f", full.Messages, flat)
		}
		flat = full.Messages
	}
}

// TestChooseScanTinyNetwork asserts a deployment small enough that the
// multicast is nearly free prefers the full scan even for selective
// predicates — indexes are not a universal win.
func TestChooseScanTinyNetwork(t *testing.T) {
	table := TableStats{Tuples: 100_000, Selectivity: 0.05}
	useIndex, idx, full := ChooseScan(table, NetStats{Nodes: 8, HopLatency: time.Millisecond}, 16)
	if useIndex {
		t.Errorf("8-node network: chose index (%.0f msgs) over full scan (%.0f)", idx.Messages, full.Messages)
	}
}
