package opt

import (
	"fmt"
	"math"
	"time"
)

// Access-path choice for single-table range queries: a plan whose
// sargable predicate matched a Prefix Hash Tree index can either
// traverse the index (contacting O(matching leaves) nodes from the
// initiator) or fall back to the classic full scan (multicasting the
// plan to all n nodes). Which is cheaper is a pure selectivity
// question, priced here with the same DHT-aware terms as the join
// models in this package.

// DefaultLeafCapacity is the assumed PHT leaf occupancy when the
// caller does not know the index's split threshold (index.Config's
// default).
const DefaultLeafCapacity = 16

// ScanEstimate is the predicted cost of one access path.
type ScanEstimate struct {
	// Index is true for the index-traversal path.
	Index bool
	// Messages is the number of DHT messages the path sends before any
	// result delivery (result bytes are identical across paths) — the
	// "nodes contacted" metric of the RangeSelectivity experiment.
	Messages float64
	// TrafficBytes prices those messages at the deployment's overhead.
	TrafficBytes float64
	// Latency approximates time to the last result under propagation
	// delay only.
	Latency time.Duration
}

// String renders an estimate for logs and tools.
func (e ScanEstimate) String() string {
	path := "full scan"
	if e.Index {
		path = "index scan"
	}
	return fmt.Sprintf("%-10s %8.0f msgs  %6.2fs", path, e.Messages, e.Latency.Seconds())
}

// ChooseScan decides index scan vs full scan for a single-table plan.
// t carries the table's cardinality and the predicate's selectivity
// (t.Selectivity, as sampled by the statistics catalog); leafCapacity
// is the index's split threshold (DefaultLeafCapacity when zero). It
// returns the winner by messages sent, plus both estimates.
//
// The shapes: a full scan costs one multicast copy per node — flat in
// selectivity, linear in n. An index scan costs one get (lookup hops +
// request + reply) per visited trie node, and the visited set grows
// linearly with the matching fraction: ~matching/leafCapacity leaves,
// doubled for the interior skeleton above them. At low selectivity the
// index wins by orders of magnitude; past a crossover (roughly where
// matching tuples ≈ n·leafCapacity/hops) the full scan's flat cost is
// cheaper — so "index everything" is not free, which is why the
// catalog and not the plan author makes this call.
func ChooseScan(t TableStats, net NetStats, leafCapacity int) (useIndex bool, index, full ScanEstimate) {
	t = t.norm()
	net = net.norm()
	if leafCapacity <= 0 {
		leafCapacity = DefaultLeafCapacity
	}

	matching := t.Tuples * t.Selectivity
	leaves := math.Ceil(matching / float64(leafCapacity))
	if leaves < 1 {
		leaves = 1
	}
	// Interior skeleton: ~1 interior per leaf in a balanced binary
	// trie, plus the root chain down to where keys diverge.
	visited := 2*leaves + math.Log2(float64(leafCapacity)+1)
	perGet := net.LookupHops + 2 // route the lookup, then request+reply

	index = ScanEstimate{
		Index:        true,
		Messages:     visited * perGet,
		TrafficBytes: visited * perGet * net.MsgOverheadBytes,
		// Traversal fans out level by level; depth ~ log2(leaves) gets
		// deep, each a lookup round trip.
		Latency: time.Duration((math.Log2(leaves+1) + 1) * (net.LookupHops + 1) * float64(net.HopLatency)),
	}
	full = ScanEstimate{
		Messages:     float64(net.Nodes),
		TrafficBytes: float64(net.Nodes) * net.MsgOverheadBytes,
		// Flooding multicast depth, then one result hop.
		Latency: time.Duration(1.5*math.Pow(float64(net.Nodes), 0.25)*float64(net.HopLatency)) + net.HopLatency,
	}
	return index.Messages < full.Messages, index, full
}
