package trace

import "sync"

// Histogram is a small fixed-bucket latency histogram in the
// Prometheus mold: cumulative bucket rendering is left to the
// exposition layer; this type just counts observations per bound.
// Observations and snapshots are goroutine-safe: the engine's
// dispatch shards observe flush and span latencies off the event
// loop, so the histogram serializes internally.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; counts has one extra +Inf slot
	counts []uint64
	sum    float64
	count  uint64
}

// DefaultLatencyBounds spans query latencies from sub-millisecond
// simulator hops to multi-minute TTL-bounded continuous queries.
var DefaultLatencyBounds = []float64{
	0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// NewHistogram returns a histogram over the given sorted upper bounds
// (seconds); nil picks DefaultLatencyBounds.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value (seconds).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// HistogramSnapshot is an immutable copy of a histogram's state, in
// per-bucket (not cumulative) counts. Counts has len(Bounds)+1
// entries; the last is the overflow (+Inf) bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// NamedSnapshot pairs a label value (a stage name) with a histogram
// snapshot, for labeled metric families.
type NamedSnapshot struct {
	Name string
	Hist HistogramSnapshot
}
