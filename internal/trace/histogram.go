package trace

// Histogram is a small fixed-bucket latency histogram in the
// Prometheus mold: cumulative bucket rendering is left to the
// exposition layer; this type just counts observations per bound.
// It is not goroutine-safe — engines observe from their single
// event loop and snapshot through the same loop.
type Histogram struct {
	bounds []float64 // sorted upper bounds; counts has one extra +Inf slot
	counts []uint64
	sum    float64
	count  uint64
}

// DefaultLatencyBounds spans query latencies from sub-millisecond
// simulator hops to multi-minute TTL-bounded continuous queries.
var DefaultLatencyBounds = []float64{
	0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// NewHistogram returns a histogram over the given sorted upper bounds
// (seconds); nil picks DefaultLatencyBounds.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value (seconds).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count }

// HistogramSnapshot is an immutable copy of a histogram's state, in
// per-bucket (not cumulative) counts. Counts has len(Bounds)+1
// entries; the last is the overflow (+Inf) bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// NamedSnapshot pairs a label value (a stage name) with a histogram
// snapshot, for labeled metric families.
type NamedSnapshot struct {
	Name string
	Hist HistogramSnapshot
}
