// Package trace is PIER's per-query distributed tracing layer.
//
// A traced query carries a trace flag in its dissemination multicast;
// every participating node then records span events — multicast
// arrival, executor start, scans, rehash puts, DHT gets, Bloom-join
// phases, result-batch flushes, credit stalls and grants — into a
// bounded per-executor Buffer. Buffers drain back to the query
// initiator piggybacked on the result channel's existing
// credit-windowed frames, so tracing can never cause its own incast:
// span delivery is throttled by exactly the flow control that throttles
// results. The initiator assembles the spans of all nodes into a Trace,
// ordered causally by timestamp (the deployment clock: virtual time
// under the simulator, wall time on a real deployment).
//
// Tracing is opt-in per query (EXPLAIN TRACE, the admin plane's
// trace flag, or a probabilistic sampling policy) and is deliberately
// deterministic: under the simulator a traced run records identical
// spans on every replay of the same seed, and enabling tracing does
// not perturb the RNG sequence of untraced queries.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"pier/internal/env"
)

// Stage classifies one span: which phase of distributed query
// execution the measured interval belongs to.
type Stage uint8

// Span stages, in rough causal order of a query's life.
const (
	// StageMulticast is the query-dissemination hop: the interval from
	// the initiator's multicast to the queryMsg's arrival at one node.
	StageMulticast Stage = iota
	// StageExecutor is one node's executor instantiation: operator
	// wiring and the initial scans of the chosen strategy.
	StageExecutor
	// StageScan is a single-table plan's local namespace scan.
	StageScan
	// StageRehash is a join executor's filtered rehash of one table
	// into the temporary namespace NQ.
	StageRehash
	// StageBloomCollect is the Bloom collector's OR-and-multicast of
	// one table's filters after BloomWait.
	StageBloomCollect
	// StageBloomDist is the arrival of a combined Bloom filter,
	// triggering the pruned rehash of the opposite table.
	StageBloomDist
	// StageDHTGet is one DHT lookup issued by an executor (Fetch
	// Matches probes, semi-join base-tuple fetches).
	StageDHTGet
	// StageIndexScan is a Prefix Hash Tree traversal run by the
	// initiator in place of a multicast full scan.
	StageIndexScan
	// StageResultFlush is one result-buffer flush: the interval from
	// the first tuple buffered to the frame handed to the transport.
	StageResultFlush
	// StageCreditStall is a flush stalled on an exhausted credit
	// window: the interval from the stall to the grant (or stall
	// self-refresh) that resumed it.
	StageCreditStall
	// StageCreditGrant is a flow-control grant issued by the
	// initiator's collector.
	StageCreditGrant
	// StageCollect is the initiator-side collector's whole life, from
	// query start to close; its Note totals the tuples received.
	StageCollect
	stageCount // sentinel, not a stage
)

var stageNames = [stageCount]string{
	"multicast",
	"executor",
	"scan",
	"rehash",
	"bloom_collect",
	"bloom_dist",
	"dht_get",
	"index_scan",
	"result_flush",
	"credit_stall",
	"credit_grant",
	"collect",
}

// NumStages is the number of defined span stages.
const NumStages = int(stageCount)

// Valid reports whether s is a defined stage. Spans arrive over the
// network; the wire codec rejects frames carrying invalid stages.
func (s Stage) Valid() bool { return s < stageCount }

func (s Stage) String() string {
	if !s.Valid() {
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
	return stageNames[s]
}

// StageNames lists every stage name in stage order, for metrics
// enumeration.
func StageNames() []string {
	out := make([]string, NumStages)
	copy(out, stageNames[:])
	return out
}

// Span is one recorded event of a traced query on one node.
//
// Start is the deployment clock's UnixNano at the beginning of the
// interval — an int64 rather than a time.Time so spans compare and
// encode exactly (the simulator's virtual clock round-trips
// bit-for-bit). Dur is zero for instantaneous events.
type Span struct {
	// Stage classifies the event.
	Stage Stage
	// Node is the recording node's address.
	Node env.Addr
	// Start is the interval's start on the deployment clock, in
	// nanoseconds since the epoch.
	Start int64
	// Dur is the interval's length (0 for point events).
	Dur time.Duration
	// Note carries a short human-readable detail: tuple counts, the
	// namespace scanned, the key fetched.
	Note string
	// Seq orders spans recorded by the same node at the same instant
	// (common under the simulator's virtual clock).
	Seq uint32
}

// WireSize implements env.Message.
func (s *Span) WireSize() int {
	return 2 + env.AddrSize + 10 + 10 + 5 + env.StringSize(s.Note)
}

// Buffer is a bounded span accumulator, one per traced executor.
// When full, new spans are dropped and counted — a result flood can
// never grow the buffer past its bound; the drop count travels with
// the spans so the initiator knows the trace is partial. It is
// goroutine-safe: the executor records spans from the event loop
// while a dispatch shard may be draining them into a result frame.
type Buffer struct {
	mu    sync.Mutex
	cap   int
	seq   uint32
	spans []Span
	drops uint64
}

// NewBuffer returns a buffer bounded to capacity spans (minimum 1).
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{cap: capacity}
}

// Add records a span, assigning its sequence number; full buffers
// count a drop instead.
func (b *Buffer) Add(s Span) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s.Seq = b.seq
	b.seq++
	if len(b.spans) >= b.cap {
		b.drops++
		return
	}
	b.spans = append(b.spans, s)
}

// Len returns the number of buffered spans.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.spans)
}

// Drops returns the number of spans dropped so far.
func (b *Buffer) Drops() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.drops
}

// Drain returns the buffered spans and the drop count accumulated
// since the last drain, and resets both. The returned slice is owned
// by the caller.
func (b *Buffer) Drain() ([]Span, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	spans, drops := b.spans, b.drops
	b.spans, b.drops = nil, 0
	return spans, drops
}

// Trace is the initiator-assembled view of one traced query: every
// span shipped home by participating executors plus the collector's
// own spans, in causal (timestamp) order.
type Trace struct {
	// QueryID is the query the spans belong to.
	QueryID uint64
	// Root is the initiator's address.
	Root env.Addr
	// Started and Finished bound the query on the deployment clock
	// (UnixNano); Finished is zero while the query is still live.
	Started  int64
	Finished int64
	// Spans holds every recorded span, sorted by Sort.
	Spans []Span
	// Drops counts spans lost to full buffers network-wide: nonzero
	// means the trace is a bounded sample, not the complete event log.
	Drops uint64
}

// Sort orders spans causally: by start time, then recording node,
// then per-node sequence — a total, deterministic order.
func (t *Trace) Sort() {
	sort.SliceStable(t.Spans, func(i, j int) bool {
		a, b := &t.Spans[i], &t.Spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
}

// Nodes returns the distinct recording nodes, sorted.
func (t *Trace) Nodes() []env.Addr {
	seen := map[env.Addr]bool{}
	for i := range t.Spans {
		seen[t.Spans[i].Node] = true
	}
	out := make([]env.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stages returns the distinct stages present, in stage order.
func (t *Trace) Stages() []Stage {
	var seen [stageCount]bool
	for i := range t.Spans {
		if t.Spans[i].Stage.Valid() {
			seen[t.Spans[i].Stage] = true
		}
	}
	var out []Stage
	for s := Stage(0); s < stageCount; s++ {
		if seen[s] {
			out = append(out, s)
		}
	}
	return out
}

// Render writes the trace as a text tree: a header, then one block
// per node (initiator first) with each span offset-aligned against
// the query start. The output is deterministic for a sorted trace.
func (t *Trace) Render(w io.Writer) {
	status := "live"
	if t.Finished != 0 {
		status = fmt.Sprintf("finished in %v", time.Duration(t.Finished-t.Started))
	}
	fmt.Fprintf(w, "trace query=%x root=%s spans=%d nodes=%d %s\n",
		t.QueryID, t.Root, len(t.Spans), len(t.Nodes()), status)
	if t.Drops > 0 {
		fmt.Fprintf(w, "  (%d spans dropped at full buffers; trace is partial)\n", t.Drops)
	}
	nodes := t.Nodes()
	// The initiator leads; the remaining nodes follow in address order.
	sort.SliceStable(nodes, func(i, j int) bool {
		if (nodes[i] == t.Root) != (nodes[j] == t.Root) {
			return nodes[i] == t.Root
		}
		return nodes[i] < nodes[j]
	})
	for _, node := range nodes {
		role := ""
		if node == t.Root {
			role = " (initiator)"
		}
		fmt.Fprintf(w, "└─ node %s%s\n", node, role)
		for i := range t.Spans {
			s := &t.Spans[i]
			if s.Node != node {
				continue
			}
			off := time.Duration(s.Start - t.Started)
			line := fmt.Sprintf("   ├─ +%-12v %-13s %v", off, s.Stage, s.Dur)
			if s.Note != "" {
				line += "  " + s.Note
			}
			fmt.Fprintln(w, line)
		}
	}
}

// RenderString is Render into a string.
func (t *Trace) RenderString() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
