package trace

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"pier/internal/env"
	"pier/internal/wire"
	"pier/internal/wire/wiretest"
)

func randSpan(r *rand.Rand) *Span {
	return &Span{
		Stage: Stage(r.Intn(NumStages)),
		Node:  wiretest.ShortAddr(r),
		Start: int64(r.Int31()),
		Dur:   time.Duration(r.Int31()),
		Note:  wiretest.Str(r, 16),
		Seq:   uint32(r.Intn(1 << 16)),
	}
}

// TestSpanWireRoundTrip is the codec property test for the trace span
// frame (tag 120): random spans survive decode(encode(m)) bit-exactly,
// agree with the gob fallback, and obey the WireSize relation.
func TestSpanWireRoundTrip(t *testing.T) {
	wiretest.RoundTrip(t, 1, 300, []wiretest.Gen{
		{Name: "Span", Make: func(r *rand.Rand) env.Message { return randSpan(r) }},
	})
}

// TestHostileSpansRejected: spans arrive over the network inside
// result frames; invalid stages (they index metric arrays) and
// negative durations (they corrupt histograms) must fail decode.
func TestHostileSpansRejected(t *testing.T) {
	ok, err := wire.Marshal(&Span{Stage: StageExecutor, Node: "n1", Start: 5, Dur: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), ok...)
	bad[1] = 200 // stage byte follows the tag
	if _, err := wire.Unmarshal(bad); err == nil {
		t.Error("span with invalid stage accepted")
	}
	neg, err := wire.Marshal(&Span{Stage: StageExecutor, Node: "n1", Start: 5, Dur: -time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Unmarshal(neg); err == nil {
		t.Error("span with negative duration accepted")
	}
}

// TestBufferBounded: a flood of spans cannot grow the buffer past its
// capacity; the overflow is counted and drained alongside the spans.
func TestBufferBounded(t *testing.T) {
	b := NewBuffer(8)
	for i := 0; i < 100; i++ {
		b.Add(Span{Stage: StageResultFlush, Node: "n1", Start: int64(i)})
	}
	if b.Len() != 8 {
		t.Fatalf("buffer grew to %d spans, capacity 8", b.Len())
	}
	spans, drops := b.Drain()
	if len(spans) != 8 || drops != 92 {
		t.Fatalf("Drain = %d spans, %d drops; want 8, 92", len(spans), drops)
	}
	// Sequence numbers keep counting across the drop window and drain.
	b.Add(Span{Stage: StageResultFlush, Node: "n1"})
	spans, drops = b.Drain()
	if len(spans) != 1 || drops != 0 || spans[0].Seq != 100 {
		t.Fatalf("post-drain Drain = %d spans, %d drops, seq %d; want 1, 0, 100", len(spans), drops, spans[0].Seq)
	}
}

// TestTraceSortAndSets: Sort is a total deterministic order, and the
// node/stage sets reflect the spans.
func TestTraceSortAndSets(t *testing.T) {
	tr := &Trace{
		QueryID: 7,
		Root:    "n1",
		Started: 100,
		Spans: []Span{
			{Stage: StageResultFlush, Node: "n2", Start: 300, Seq: 1},
			{Stage: StageMulticast, Node: "n2", Start: 200, Seq: 0},
			{Stage: StageCollect, Node: "n1", Start: 100, Seq: 0},
			{Stage: StageExecutor, Node: "n3", Start: 200, Seq: 0},
		},
	}
	tr.Sort()
	order := make([]string, len(tr.Spans))
	for i, s := range tr.Spans {
		order[i] = string(s.Node) + "/" + s.Stage.String()
	}
	want := []string{"n1/collect", "n2/multicast", "n3/executor", "n2/result_flush"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("sort order %v, want %v", order, want)
		}
	}
	if nodes := tr.Nodes(); len(nodes) != 3 || nodes[0] != "n1" || nodes[2] != "n3" {
		t.Fatalf("Nodes = %v", nodes)
	}
	stages := tr.Stages()
	if len(stages) != 4 || stages[0] != StageMulticast || stages[3] != StageCollect {
		t.Fatalf("Stages = %v", stages)
	}
}

// TestRenderDeterministic: rendering the same trace twice yields the
// same text, with the initiator's block first and drops called out.
func TestRenderDeterministic(t *testing.T) {
	tr := &Trace{
		QueryID:  0xab,
		Root:     "n2",
		Started:  1000,
		Finished: 5000,
		Drops:    3,
		Spans: []Span{
			{Stage: StageCollect, Node: "n2", Start: 1000, Dur: 4000},
			{Stage: StageMulticast, Node: "n1", Start: 2000, Note: "query arrived: R"},
		},
	}
	tr.Sort()
	a, b := tr.RenderString(), tr.RenderString()
	if a != b {
		t.Fatal("Render is not deterministic")
	}
	for _, want := range []string{"query=ab", "3 spans dropped", "node n2 (initiator)", "multicast"} {
		if !strings.Contains(a, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, a)
		}
	}
	iInit := strings.Index(a, "node n2")
	iOther := strings.Index(a, "node n1")
	if iInit < 0 || iOther < 0 || iInit > iOther {
		t.Errorf("initiator block does not lead:\n%s", a)
	}
}

// TestHistogram: observations land in the right buckets, and the
// snapshot satisfies the Prometheus consistency rules (bucket counts
// sum to the total, sum tracks the observations).
func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantCounts := []uint64{1, 2, 1, 1}
	var total uint64
	for i, c := range s.Counts {
		if c != wantCounts[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, wantCounts[i])
		}
		total += c
	}
	if total != s.Count || s.Count != 5 {
		t.Fatalf("count %d, bucket total %d; want 5", s.Count, total)
	}
	if s.Sum != 56.05 {
		t.Fatalf("sum = %v, want 56.05", s.Sum)
	}
	// Boundary values belong to the bucket whose bound they equal.
	h2 := NewHistogram([]float64{1})
	h2.Observe(1)
	if got := h2.Snapshot().Counts[0]; got != 1 {
		t.Fatalf("boundary observation landed in overflow (counts[0]=%d)", got)
	}
}

// TestStageNames pins the stage enum to its metric label names.
func TestStageNames(t *testing.T) {
	names := StageNames()
	if len(names) != NumStages {
		t.Fatalf("%d names for %d stages", len(names), NumStages)
	}
	for i, n := range names {
		if Stage(i).String() != n {
			t.Errorf("stage %d: String %q != name %q", i, Stage(i).String(), n)
		}
		if !Stage(i).Valid() {
			t.Errorf("stage %d (%s) not Valid", i, n)
		}
	}
	if Stage(NumStages).Valid() {
		t.Error("sentinel stage reported Valid")
	}
}
