package trace

import (
	"encoding/gob"

	"pier/internal/env"
	"pier/internal/wire"
)

// tagSpan is the wire tag owned by package trace (see the tag table
// in package wire: 120..129 are reserved for tracing).
const tagSpan byte = 120

func init() {
	gob.Register(&Span{})
	wire.Register(tagSpan, &Span{},
		func(e *wire.Encoder, m env.Message) {
			s := m.(*Span)
			e.Byte(byte(s.Stage))
			e.Addr(s.Node)
			e.Varint(s.Start)
			e.Duration(s.Dur)
			e.String(s.Note)
			e.Uvarint(uint64(s.Seq))
		},
		func(d *wire.Decoder) env.Message {
			s := &Span{
				Stage: Stage(d.Byte()),
				Node:  d.Addr(),
				Start: d.Varint(),
				Dur:   d.Duration(),
				Note:  d.String(),
			}
			seq := d.Uvarint()
			if d.Err() != nil {
				return s
			}
			// Spans arrive over the network inside result frames; a
			// crafted stage would index past the metrics stage array,
			// and a negative duration would corrupt latency histograms.
			if !s.Stage.Valid() {
				d.Fail("span stage out of range")
				return s
			}
			if s.Dur < 0 {
				d.Fail("negative span duration")
				return s
			}
			if seq > 1<<32-1 {
				d.Fail("span sequence out of range")
				return s
			}
			s.Seq = uint32(seq)
			return s
		})
}
