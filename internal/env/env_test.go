package env

import (
	"testing"
)

func TestHandlerFunc(t *testing.T) {
	called := false
	var h Handler = HandlerFunc(func(from Addr, m Message) {
		if from != "a" {
			t.Errorf("from = %v", from)
		}
		called = true
	})
	h.HandleMessage("a", nil)
	if !called {
		t.Fatal("handler not invoked")
	}
}

func TestStringSize(t *testing.T) {
	if StringSize("") != 4 {
		t.Errorf("empty string size = %d", StringSize(""))
	}
	if StringSize("abc") != 7 {
		t.Errorf("StringSize(abc) = %d", StringSize("abc"))
	}
}

func TestNilAddrIsZero(t *testing.T) {
	var a Addr
	if a != NilAddr {
		t.Fatal("zero Addr must equal NilAddr")
	}
}
