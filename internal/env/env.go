// Package env defines the runtime environment shared by simulated and real
// PIER nodes. All node logic (DHT layers, query processor) is written
// against Env, so the exact same code runs inside the discrete-event
// simulator (internal/simnet) and over real TCP sockets (internal/realnet).
// This mirrors the paper's claim that "the simulator and the implementation
// use the same code base" (§5.2).
//
// Concurrency model: each node is a single-threaded event processor. The
// transport guarantees that message handlers, timer callbacks, and Post-ed
// functions for a given node never run concurrently, so node state needs no
// locks.
package env

import (
	"cmp"
	"math/rand"
	"slices"
	"time"
)

// Addr identifies a node. In the simulator it is "sim:<index>"; over a real
// network it is a dialable "host:port" string.
type Addr string

// NilAddr is the zero Addr, used where the paper's APIs accept NULL (e.g.
// join(NULL) creates a new overlay network).
const NilAddr Addr = ""

// Message is anything that can be sent between nodes. WireSize reports the
// number of bytes the message occupies on the wire; the simulator charges
// this size against the receiver's inbound link (§5.2: congestion is
// modeled at the last hop).
type Message interface {
	WireSize() int
}

// Recycler is implemented by messages whose backing storage may be
// returned to a pool once the holder is finished with them. The real
// transport calls Recycle after serializing an outbound message (the
// pointer is never delivered anywhere on that path); the engine calls
// it after consuming an inbound message it owns. The simulator, which
// delivers pointers, never recycles — the consumer does. A message must
// be recycled at most once, by whoever held the last reference.
type Recycler interface {
	Recycle()
}

// Timer is a cancellable pending callback.
type Timer interface {
	// Stop cancels the timer. It is a no-op if the timer already fired.
	Stop()
}

// Env is the per-node runtime environment.
type Env interface {
	// Addr returns this node's own address.
	Addr() Addr

	// Now returns the current time: virtual time in the simulator, wall
	// clock time on a real network.
	Now() time.Time

	// After schedules f to run on this node's event loop after d. The
	// returned Timer may be used to cancel it.
	After(d time.Duration, f func()) Timer

	// Post schedules f to run on this node's event loop as soon as
	// possible. It is the only safe way for outside goroutines (e.g. an
	// application thread in real deployment) to touch node state.
	Post(f func())

	// Send delivers m to the node at addr asynchronously. Sends are
	// fire-and-forget: delivery is not acknowledged and messages to
	// failed nodes are silently dropped (§5.6).
	Send(to Addr, m Message)

	// Rand returns this node's deterministic random source. It must only
	// be used from the node's own event loop.
	Rand() *rand.Rand
}

// LinkStats is a snapshot of a transport's link counters. The real TCP
// transport fills every field; environments without a physical link (the
// simulator) report nothing. Operators and the statistics catalog's
// deployment probe read these through the node-level accessor instead of
// reaching into the transport. The JSON field names are part of the
// admin plane's REST contract (GET /api/status serves this struct
// verbatim inside the node snapshot).
type LinkStats struct {
	// FramesSent counts messages handed to the socket; BatchesSent
	// counts write calls (FramesSent/BatchesSent is the coalescing
	// factor of the per-peer write batching).
	FramesSent  uint64 `json:"frames_sent"`
	BatchesSent uint64 `json:"batches_sent"`
	// BytesSent counts bytes written, framing included.
	BytesSent uint64 `json:"bytes_sent"`
	// FramesRecv and BytesRecv count the inbound direction.
	FramesRecv uint64 `json:"frames_recv"`
	BytesRecv  uint64 `json:"bytes_recv"`
	// Drops counts messages discarded: full outbound queues, encoding
	// failures, and frames lost when a connection died mid-batch.
	Drops uint64 `json:"drops"`
}

// LinkStatsProvider is the optional Env refinement transports with real
// link counters implement.
type LinkStatsProvider interface {
	LinkStats() LinkStats
}

// Handler receives messages delivered to a node. A node registers exactly
// one handler with its transport before any messages flow.
type Handler interface {
	HandleMessage(from Addr, m Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from Addr, m Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from Addr, m Message) { f(from, m) }

// SortedKeys returns a map's keys in ascending order. Map iteration
// order must be deterministic wherever the loop body sends messages or
// feeds state that later sends — a seeded simulation replays only if
// every send sequence does. Callback registries (provider, flooder),
// storage scans, catalog refreshes, and partial-aggregate flushes all
// iterate through this; it lives here because env is the layer every
// node component already depends on.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

// Every schedules f to run repeatedly with period d, starting after d.
// The returned stop function cancels future runs.
func Every(e Env, d time.Duration, f func()) (stop func()) {
	stopped := false
	var t Timer
	var run func()
	run = func() {
		if stopped {
			return
		}
		f()
		if !stopped {
			t = e.After(d, run)
		}
	}
	t = e.After(d, run)
	return func() {
		stopped = true
		if t != nil {
			t.Stop()
		}
	}
}
