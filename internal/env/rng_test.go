package env

import (
	"math/rand"
	"testing"
)

// The compile-time contract: SplitMix64 is a math/rand.Source64, so
// rand.New uses the 64-bit path and Env.Rand() keeps its signature.
var _ rand.Source64 = (*SplitMix64)(nil)

// TestSplitMix64FixedVectors pins the output stream against the
// published reference vectors of Vigna's splitmix64.c for seed 0. Any
// deviation means per-node randomness — and therefore every seeded
// simulation trace — silently changed.
func TestSplitMix64FixedVectors(t *testing.T) {
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
		0xF88BB8A8724C81EC,
		0x1B39896A51A8749B,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("draw %d = %#016x, want %#016x", i, got, w)
		}
	}
}

func TestSplitMix64SourceConformance(t *testing.T) {
	// Int63 must be the top 63 bits of Uint64 and never negative.
	a, b := NewSplitMix64(12345), NewSplitMix64(12345)
	for i := 0; i < 1000; i++ {
		u := a.Uint64()
		v := b.Int63()
		if v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
		if uint64(v) != u>>1 {
			t.Fatalf("Int63 %#x is not Uint64 %#x >> 1", v, u)
		}
	}

	// Seed must restart the stream exactly.
	a.Seed(777)
	first := a.Uint64()
	a.Seed(777)
	if again := a.Uint64(); again != first {
		t.Fatalf("Seed did not reset the stream: %#x vs %#x", again, first)
	}

	// Distinct seeds must diverge immediately (the finalizer is a
	// bijection over the Weyl state, so equal first draws would mean
	// equal states).
	if NewSplitMix64(1).Uint64() == NewSplitMix64(2).Uint64() {
		t.Fatal("seeds 1 and 2 collide on the first draw")
	}
}

// TestSplitMix64BehindRand drives the generator the way the simulator
// does — wrapped in *rand.Rand — and checks two identically seeded
// instances agree across the derived-draw helpers.
func TestSplitMix64BehindRand(t *testing.T) {
	r1 := rand.New(NewSplitMix64(9))
	r2 := rand.New(NewSplitMix64(9))
	for i := 0; i < 200; i++ {
		if a, b := r1.Intn(1000), r2.Intn(1000); a != b {
			t.Fatalf("Intn diverged at draw %d: %d vs %d", i, a, b)
		}
		if a, b := r1.Float64(), r2.Float64(); a != b {
			t.Fatalf("Float64 diverged at draw %d: %v vs %v", i, a, b)
		}
	}
}
