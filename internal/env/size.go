package env

// Wire-size helpers. The simulator does not serialize messages (it passes
// pointers), so message types compute a representative on-the-wire size
// instead. The constants approximate a compact binary encoding plus a
// small per-message header, in the spirit of the paper's accounting of
// "aggregate network traffic" (Figure 4).
//
// The real transport's binary codec (pier/internal/wire) is kept
// comparable to this model: its property tests assert that a message's
// encoded form never exceeds WireSize() + HeaderSize (for addresses
// within AddrSize and int32-range integers), so simulated traffic
// accounting and real frames stay in the same regime. WireSize remains
// the charging model — it includes pad bytes and a fixed header the
// codec does not literally send.

const (
	// HeaderSize is charged once per message: source/destination
	// addresses, message kind, and framing.
	HeaderSize = 32

	// AddrSize approximates an encoded node address (IPv4 + port + tag).
	AddrSize = 8

	// KeySize is the size of a DHT key on the wire (SHA-1).
	KeySize = 20

	// IntSize is the size of an encoded integer value.
	IntSize = 8
)

// StringSize returns the encoded size of a string (length prefix + bytes).
func StringSize(s string) int { return 4 + len(s) }
