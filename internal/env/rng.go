package env

// SplitMix64 is a compact deterministic pseudo-random generator
// implementing math/rand.Source64 in 8 bytes of state (Steele, Lea &
// Flood's SplitMix64, the seeding generator recommended by Vigna for
// the xoshiro family). The simulator keeps one per node: math/rand's
// default rngSource carries a ~4.9KB lagged-Fibonacci table, which at
// 100k–1M simulated nodes is gigabytes of RNG state before the DHT
// stack even exists. Wrapping a *SplitMix64 in rand.New preserves the
// env.Env.Rand() *rand.Rand contract unchanged.
//
// The zero value is a valid generator (the seed-0 stream); use Seed to
// derive independent per-node streams. SplitMix64 is not safe for
// concurrent use, matching the simulator's single-goroutine discipline.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with Seed(seed).
func NewSplitMix64(seed int64) *SplitMix64 {
	s := &SplitMix64{}
	s.Seed(seed)
	return s
}

// Seed implements math/rand.Source. Any two distinct seeds yield
// uncorrelated streams: the output function is a bijective mix of a
// Weyl sequence, so no two seeds share a state trajectory offset by
// less than 2^64 steps.
func (s *SplitMix64) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements math/rand.Source64: one Weyl increment of the
// golden-ratio constant followed by Stafford's "variant 13" finalizer.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements math/rand.Source.
func (s *SplitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }
