package wire_test

import (
	"encoding/binary"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/dht/multicast"
	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/index"
	"pier/internal/stats"
	"pier/internal/trace"
	"pier/internal/wire"
	"pier/internal/workload"
)

// fuzzSeedMessages builds representative valid messages across the
// registered codec vocabulary: rich plans with expression trees, tuples
// with every scalar kind, nested payloads (flood envelope → item →
// tuple), statistics summaries with sketches, and aggregate state.
// Importing the message packages registers their codecs.
func fuzzSeedMessages() []env.Message {
	plan := workload.JoinPlan(core.BloomJoin, 49, 49, 49)
	plan.TTL = time.Minute
	plan.GroupBy = nil
	tuple := &core.Tuple{Rel: "R", Vals: []core.Value{int64(7), "abc", 2.5, true, nil}, Pad: 64}
	sketch := stats.NewSketch(0)
	for _, k := range []string{"a", "b", "c", "dd"} {
		sketch.Add(k)
	}
	item := &storage.Item{
		Namespace:  "R",
		ResourceID: "42",
		InstanceID: 3,
		Expires:    time.Unix(100, 0),
		Payload:    tuple,
	}
	return []env.Message{
		plan,
		tuple,
		item,
		&core.AggState{Count: 3, SumI: 12, MinV: int64(1), MaxV: int64(9), Seen: true},
		&stats.Summary{Table: "R", Nodes: 2, Tuples: 100, Bytes: 4096, Keys: sketch},
		&multicast.FloodMsg{Origin: "sim:1", Seq: 9, Hint: []uint32{1, 2, 3, 4}, Payload: item},
		&index.Entry{K: wire.OrderedKey(int64(49)), RID: "42", IID: 3, T: tuple},
		&index.Def{Name: "r_num2", Table: "R", Col: "num2", ColIdx: 2},
		&trace.Span{Stage: trace.StageResultFlush, Node: "sim:2", Start: 12345, Dur: time.Millisecond, Note: "8 tuples w0", Seq: 7},
	}
}

// FuzzDecode throws arbitrary bytes at the frame decoder. Any input may
// be rejected, but none may panic; and anything the decoder accepts
// must re-encode and decode again cleanly (the transport forwards
// decoded messages, so a decode-only-once message would wedge it).
func FuzzDecode(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		b, err := wire.Marshal(m)
		if err != nil {
			f.Fatalf("seed message %#v failed to encode: %v", m, err)
		}
		f.Add(b)
	}
	// One truncated-body seed per registered tag steers the fuzzer into
	// every codec, including ones with no exported constructor.
	for _, tag := range wire.Registered() {
		f.Add([]byte{tag})
		f.Add(append([]byte{tag}, 0x01, 0x80, 0x80, 0x01, 0xff, 0x00, 0x02))
	}
	// A hand-built putThrottleMsg frame (tag 38, provider backpressure):
	// the provider's message types are unexported, so the only way to
	// seed a fully-valid frame — item, attempt counter, retry-after —
	// is to lay out the bytes directly.
	if itemBytes, err := wire.Marshal(fuzzSeedMessages()[2]); err == nil {
		throttle := append([]byte{38}, itemBytes...)
		throttle = append(throttle, 1)                                 // attempt
		throttle = binary.AppendVarint(throttle, int64(2*time.Second)) // retry-after
		f.Add(throttle)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := wire.Unmarshal(b)
		if err != nil {
			return
		}
		if m == nil {
			return
		}
		b2, err := wire.Marshal(m)
		if err != nil {
			t.Fatalf("accepted frame re-encode failed: %v\nframe %x\nmessage %#v", err, b, m)
		}
		if _, err := wire.Unmarshal(b2); err != nil {
			t.Fatalf("re-encoded frame rejected: %v\nframe %x", err, b2)
		}
	})
}
