package wire

import "math"

// Order-preserving key encoding for the Prefix Hash Tree range index
// (internal/index). A plain DHT key is an opaque hash: equal values
// collide, nothing else is adjacent, and a range predicate degenerates
// into a full-namespace scan (the limitation PIER concedes in §4.3 of
// the paper). The PHT instead indexes *binary-comparable* keys — fixed-
// width bit strings whose lexicographic order agrees with the value
// order — so that a contiguous value range maps to a contiguous span of
// trie leaves.
//
// OrderedKey packs one scalar column value (the core.Value vocabulary:
// nil, bool, int64, float64, string) into a uint64 whose unsigned
// integer order is *non-strictly* monotone in core.CompareValues order:
//
//	CompareValues(a, b) < 0  ⇒  OrderedKey(a) <= OrderedKey(b)
//
// The encoding is deliberately lossy (62 payload bits; long strings
// truncate, distant int64s may share a float64 image), which is exactly
// what an index access path needs: every tuple in the queried value
// range is guaranteed to land inside the encoded key range, and the
// executor re-checks the exact predicate on each fetched tuple, so
// collisions cost a little precision in pruning, never a missed result.
//
// Layout (most significant first):
//
//	2 bits  type rank: 0 = nil/bool, 1 = number, 2 = string
//	62 bits rank-specific payload
//
// matching CompareValues' type order nil < bool < number < string.
const (
	// OrderedKeyBits is the width of an encoded key; Prefix Hash Tree
	// node labels are prefixes of this many bits.
	OrderedKeyBits = 64

	rankNilBool uint64 = 0
	rankNumber  uint64 = 1
	rankString  uint64 = 2
)

// OrderedMin and OrderedMax are the smallest and largest encoded keys;
// they bound one side of a half-open range predicate.
const (
	OrderedMin uint64 = 0
	OrderedMax uint64 = math.MaxUint64
)

// OrderedKey encodes a scalar value as a 64-bit binary-comparable key.
// Unknown dynamic types encode above strings (they compare last in
// CompareValues' type ranking).
func OrderedKey(v any) uint64 {
	switch v := v.(type) {
	case nil:
		return rankNilBool << 62
	case bool:
		if v {
			return rankNilBool<<62 | 2
		}
		return rankNilBool<<62 | 1
	case int64:
		return rankNumber<<62 | sortableFloat(float64(v))>>2
	case float64:
		return rankNumber<<62 | sortableFloat(v)>>2
	case string:
		return rankString<<62 | stringPrefix62(v)
	default:
		return OrderedMax
	}
}

// sortableFloat maps a float64 onto a uint64 whose unsigned order is
// the numeric order: positive floats get the sign bit set, negative
// floats are bit-flipped so that more-negative sorts lower. NaN (which
// CompareValues treats as unordered) is pinned to the top.
func sortableFloat(f float64) uint64 {
	if math.IsNaN(f) {
		return math.MaxUint64
	}
	if f == 0 {
		f = 0 // -0.0 compares equal to +0.0; encode them identically
	}
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// stringPrefix62 packs the first bytes of s big-endian into 62 bits
// (7¾ bytes), zero-padded — a non-strict monotone image of the
// lexicographic order.
func stringPrefix62(s string) uint64 {
	var b uint64
	for i := 0; i < 8; i++ {
		b <<= 8
		if i < len(s) {
			b |= uint64(s[i])
		}
	}
	return b >> 2
}
