package wire

import (
	"math"
	"strings"
	"testing"
	"time"

	"pier/internal/env"
)

// testMsg exercises every primitive the codec offers.
type testMsg struct {
	U   uint64
	I   int64
	F   float64
	W   uint64 // fixed64
	B   bool
	S   string
	T   time.Time
	D   time.Duration
	V   any
	Sub env.Message
}

func (m *testMsg) WireSize() int { return 64 }

func init() {
	Register(255, &testMsg{},
		func(e *Encoder, m env.Message) {
			t := m.(*testMsg)
			e.Uvarint(t.U)
			e.Varint(t.I)
			e.Float64(t.F)
			e.Fixed64(t.W)
			e.Bool(t.B)
			e.String(t.S)
			e.Time(t.T)
			e.Duration(t.D)
			e.Value(t.V)
			e.Message(t.Sub)
		},
		func(d *Decoder) env.Message {
			return &testMsg{
				U:   d.Uvarint(),
				I:   d.Varint(),
				F:   d.Float64(),
				W:   d.Fixed64(),
				B:   d.Bool(),
				S:   d.String(),
				T:   d.Time(),
				D:   d.Duration(),
				V:   d.Value(),
				Sub: d.Message(),
			}
		})
}

func roundTrip(t *testing.T, m env.Message) env.Message {
	t.Helper()
	b, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return got
}

func TestExtremes(t *testing.T) {
	cases := []*testMsg{
		{U: math.MaxUint64, I: math.MinInt64, F: math.Inf(-1), W: math.MaxUint64},
		{I: math.MaxInt64, F: math.SmallestNonzeroFloat64, V: int64(math.MinInt64)},
		{U: 0, I: 0, S: "", V: nil},
		{S: strings.Repeat("x", 10_000), V: "émoji 🐟", D: -time.Hour},
		{T: time.Unix(0, 1234567890), V: false, B: true},
		{T: time.Time{}, V: math.Pi, Sub: &testMsg{U: 7, V: true}},
	}
	for i, m := range cases {
		got := roundTrip(t, m)
		g := got.(*testMsg)
		if g.U != m.U || g.I != m.I || g.S != m.S || g.B != m.B || g.D != m.D {
			t.Fatalf("#%d: scalar mismatch: %+v vs %+v", i, g, m)
		}
		if g.W != m.W {
			t.Fatalf("#%d: fixed64 mismatch", i)
		}
		if math.Float64bits(g.F) != math.Float64bits(m.F) {
			t.Fatalf("#%d: float mismatch", i)
		}
		if !g.T.Equal(m.T) || g.T.IsZero() != m.T.IsZero() {
			t.Fatalf("#%d: time mismatch %v vs %v", i, g.T, m.T)
		}
		if g.V != m.V {
			t.Fatalf("#%d: value mismatch %#v vs %#v", i, g.V, m.V)
		}
		if (g.Sub == nil) != (m.Sub == nil) {
			t.Fatalf("#%d: sub mismatch", i)
		}
	}
}

func TestNilMessage(t *testing.T) {
	b, err := Marshal(nil)
	if err != nil || len(b) != 1 || b[0] != 0 {
		t.Fatalf("Marshal(nil) = %v, %v", b, err)
	}
	m, err := Unmarshal(b)
	if err != nil || m != nil {
		t.Fatalf("Unmarshal(nil frame) = %v, %v", m, err)
	}
	// A typed nil pointer also encodes as nil.
	b, err = Marshal((*testMsg)(nil))
	if err != nil || len(b) != 1 || b[0] != 0 {
		t.Fatalf("Marshal(typed nil) = %v, %v", b, err)
	}
}

func TestUnregisteredTypeFailsEncode(t *testing.T) {
	if _, err := Marshal(unregisteredMsg{}); err == nil {
		t.Fatal("Marshal(unregistered) succeeded")
	}
}

type unregisteredMsg struct{}

func (unregisteredMsg) WireSize() int { return 0 }

func TestUnknownTagFailsDecode(t *testing.T) {
	if _, err := Unmarshal([]byte{99}); err == nil {
		t.Fatal("Unmarshal(unknown tag) succeeded")
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	b, _ := Marshal(&testMsg{})
	if _, err := Unmarshal(append(b, 0xAB)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTruncationIsAnErrorNotAPanic(t *testing.T) {
	b, _ := Marshal(&testMsg{
		U: 1 << 40, I: -5, F: 2.5, W: 42, B: true, S: "hello",
		T: time.Unix(0, 99), D: time.Second, V: "world", Sub: &testMsg{},
	})
	for cut := 0; cut < len(b); cut++ {
		if _, err := Unmarshal(b[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(b))
		}
	}
}

func TestCorruptLengthDoesNotAllocate(t *testing.T) {
	// A huge string length must fail the Len guard instead of allocating.
	e := Encoder{}
	e.Byte(255)                    // testMsg tag
	e.Uvarint(0)                   // U
	e.Varint(0)                    // I
	e.Float64(0)                   // F
	e.Fixed64(0)                   // W
	e.Bool(false)                  // B
	e.Uvarint(math.MaxUint32 << 8) // corrupt string length
	if _, err := Unmarshal(e.Bytes()); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

func TestDeepNestingFailsInsteadOfOverflowing(t *testing.T) {
	// Just-legal nesting round-trips.
	m := &testMsg{}
	for i := 0; i < maxNesting-1; i++ {
		m = &testMsg{Sub: m}
	}
	roundTrip(t, m)
	// One level deeper must be a decode error, not a stack overflow.
	b, err := Marshal(&testMsg{Sub: m})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("over-deep nesting accepted")
	}
	// The hostile shape: a frame that is nothing but nested message tags.
	bomb := make([]byte, 1<<16)
	for i := range bomb {
		bomb[i] = 255 // testMsg tag, recursing into Sub forever
	}
	if _, err := Unmarshal(bomb); err == nil {
		t.Fatal("tag bomb accepted")
	}
}

func TestBadValueTag(t *testing.T) {
	d := NewDecoder([]byte{42})
	d.Value()
	if d.Err() == nil {
		t.Fatal("unknown value tag accepted")
	}
}

func TestRegisterCollisionsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	nop := func(*Encoder, env.Message) {}
	dec := func(*Decoder) env.Message { return nil }
	mustPanic("tag 0", func() { Register(0, &testMsg{}, nop, dec) })
	mustPanic("dup tag", func() { Register(255, unregisteredMsg{}, nop, dec) })
	mustPanic("dup type", func() { Register(254, &testMsg{}, nop, dec) })
}

func TestRegisteredEnumerates(t *testing.T) {
	tags := Registered()
	found := false
	for _, tag := range tags {
		if tag == 255 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Registered() = %v, missing test tag", tags)
	}
}
