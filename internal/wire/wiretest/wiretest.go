// Package wiretest holds the shared property-test harness for wire
// codecs. Each message package owns unexported message types, so it runs
// the same battery over its own generators: binary round-trips must be
// lossless, the encoding must agree with the gob fallback (gob survives
// only as this reference implementation), and the encoded size must obey
// the documented relation to WireSize().
package wiretest

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"

	"pier/internal/env"
	"pier/internal/wire"
)

// Gen builds one random message instance. To keep the size relation
// assertable (see package wire's doc), generators must draw env.Addr
// values of at most env.AddrSize-1 bytes and integer values that fit in
// int32; dedicated unit tests cover the extremes without the size bound.
type Gen struct {
	Name string
	Make func(r *rand.Rand) env.Message

	// SkipSizeCheck exempts the type from the WireSize relation (for
	// types whose WireSize deliberately undercounts, none so far).
	SkipSizeCheck bool
}

// RoundTrip asserts, for n random instances per generator:
//
//	decode(encode(m)) deep-equals m,
//	gob-decode(gob-encode(m)) deep-equals m (fallback equivalence), and
//	len(encode(m)) <= m.WireSize() + env.HeaderSize.
func RoundTrip(t *testing.T, seed int64, n int, gens []Gen) {
	t.Helper()
	for _, g := range gens {
		t.Run(g.Name, func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < n; i++ {
				m := g.Make(r)
				b, err := wire.Marshal(m)
				if err != nil {
					t.Fatalf("#%d: Marshal(%#v): %v", i, m, err)
				}
				got, err := wire.Unmarshal(b)
				if err != nil {
					t.Fatalf("#%d: Unmarshal: %v", i, err)
				}
				if !reflect.DeepEqual(got, m) {
					t.Fatalf("#%d: binary round trip\n got %#v\nwant %#v", i, got, m)
				}
				if gg := gobRoundTrip(t, m); !reflect.DeepEqual(gg, m) {
					t.Fatalf("#%d: gob fallback round trip\n got %#v\nwant %#v", i, gg, m)
				}
				if !g.SkipSizeCheck {
					if max := m.WireSize() + env.HeaderSize; len(b) > max {
						t.Fatalf("#%d: encoded %d bytes > WireSize %d + HeaderSize %d (%#v)",
							i, len(b), m.WireSize(), env.HeaderSize, m)
					}
				}
			}
		})
	}
}

// gobRoundTrip pushes the message through the gob fallback. Messages are
// wrapped in an interface-typed envelope, as the old transport framed
// them, so gob records the concrete type.
func gobRoundTrip(t *testing.T, m env.Message) env.Message {
	t.Helper()
	var buf bytes.Buffer
	env1 := struct{ M env.Message }{M: m}
	if err := gob.NewEncoder(&buf).Encode(&env1); err != nil {
		t.Fatalf("gob encode %#v: %v", m, err)
	}
	var env2 struct{ M env.Message }
	if err := gob.NewDecoder(&buf).Decode(&env2); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return env2.M
}

// Letters for random identifiers.
const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

// Str draws a random identifier of length [0, max).
func Str(r *rand.Rand, max int) string {
	n := r.Intn(max)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}

// ShortAddr draws an env.Addr that encodes within env.AddrSize bytes
// (uvarint length prefix + at most AddrSize-1 characters).
func ShortAddr(r *rand.Rand) env.Addr {
	return env.Addr(Str(r, env.AddrSize))
}

// SmallInt draws an int64 that fits in int32.
func SmallInt(r *rand.Rand) int64 { return int64(int32(r.Uint32())) }

// Value draws a random core-style scalar: nil, bool, int64 (int32
// range), float64, or string.
func Value(r *rand.Rand) any {
	switch r.Intn(5) {
	case 0:
		return nil
	case 1:
		return r.Intn(2) == 0
	case 2:
		return SmallInt(r)
	case 3:
		return r.NormFloat64()
	default:
		return Str(r, 12)
	}
}
