// Package wire is the binary wire codec for PIER's real-network
// transport. The simulator never serializes (it passes pointers and
// charges WireSize against the receiver's link); the real transport used
// to serialize with encoding/gob, whose reflection walk and per-stream
// type dictionaries dominate the cost of PIER's small soft-state
// messages (renews, miniTuples, partial aggregates). This package
// replaces gob with an explicit, registry-driven encoding:
//
//   - every message type registers a one-byte type tag plus hand-written
//     encode/decode functions (Register), mirroring the gob.Register
//     calls that already exist next to each message definition;
//   - a message on the wire is its tag followed by its body; tag 0 is a
//     nil message, so nested env.Message fields (multicast payloads,
//     stored items) encode recursively;
//   - integers are varints (zigzag for signed), floats are fixed 8-byte
//     little-endian, strings and slices carry uvarint length prefixes.
//
// # Tag space
//
// Tags are allocated centrally so independent packages cannot collide:
//
//	0        nil message
//	1..15    pier/internal/core messages (queryMsg, resultMsg, ...)
//	16..23   pier/internal/core expressions (Col, Const, ...)
//	24..31   pier/internal/core/bloom
//	32..47   pier/internal/dht/storage and /provider
//	48..63   pier/internal/dht/can
//	64..79   pier/internal/dht/chord
//	80..89   pier/internal/dht/multicast
//	90..99   package pier (catalog, ...)
//	100..109 pier/internal/stats (statistics catalog)
//	110..119 pier/internal/index (Prefix Hash Tree range indexes)
//	120..129 pier/internal/trace (query tracing spans)
//	200..255 applications and tests
//
// # Borrowed decode
//
// Decoders on the receive hot path can avoid the copy-per-string cost
// of the straightforward API. StringBytes returns a sub-slice of the
// frame buffer ("borrowed": valid only until the transport recycles the
// buffer, which realnet does as soon as the frame's decode returns);
// Detach copies a borrowed slice for anything retained past that point.
// SetIntern installs a bounded deduplication table that makes String
// (and Value's string case) allocation-free for every string already
// seen on the connection — relation names, namespaces, and addresses
// repeat on essentially every frame. Interned strings are ordinary Go
// strings (string([]byte) copies), so retaining them never aliases a
// recycled buffer.
//
// # Relation to WireSize
//
// WireSize() remains the simulator's charging model: it includes
// env.HeaderSize bytes of transport header for most messages and counts
// a tuple's Pad as real payload bytes. The binary encoding is never
// charged against links, but it is kept comparable: for any message
// whose env.Addr fields each encode in at most env.AddrSize bytes and
// whose integer values fit in int32, the encoded form (including the
// type tag) is at most WireSize() + env.HeaderSize bytes. The codec
// property tests assert exactly this relation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"time"

	"pier/internal/env"
)

// EncodeFunc appends one message body (no tag) to the encoder.
type EncodeFunc func(*Encoder, env.Message)

// DecodeFunc reads one message body (no tag) from the decoder.
type DecodeFunc func(*Decoder) env.Message

type entry struct {
	name string
	enc  EncodeFunc
	dec  DecodeFunc
}

var (
	byTag  [256]*entry
	byType = map[reflect.Type]byte{}
)

// Register installs the codec for one concrete message type, identified
// on the wire by tag. proto is a value of the concrete type (typically a
// nil-free pointer such as &miniTuple{}). Tag 0 is reserved for nil.
// Register panics on tag or type collisions — codecs are wired up in
// package init functions, exactly like gob.Register.
func Register(tag byte, proto env.Message, enc EncodeFunc, dec DecodeFunc) {
	if tag == 0 {
		panic("wire: tag 0 is reserved for nil messages")
	}
	t := reflect.TypeOf(proto)
	name := t.String()
	if e := byTag[tag]; e != nil {
		panic(fmt.Sprintf("wire: tag %d already registered to %s (adding %s)", tag, e.name, name))
	}
	if prev, ok := byType[t]; ok {
		panic(fmt.Sprintf("wire: type %s already registered with tag %d", name, prev))
	}
	byTag[tag] = &entry{name: name, enc: enc, dec: dec}
	byType[t] = tag
}

// Registered reports the tags that have codecs installed, for tests that
// want to enumerate the full message vocabulary.
func Registered() []byte {
	var tags []byte
	for tag, e := range byTag {
		if e != nil {
			tags = append(tags, byte(tag))
		}
	}
	return tags
}

// Marshal encodes a message (tag + body). A nil message encodes as the
// single byte 0.
func Marshal(m env.Message) ([]byte, error) {
	e := Encoder{}
	e.Message(m)
	return e.buf, e.err
}

// Append encodes a message onto buf, returning the extended buffer.
func Append(buf []byte, m env.Message) ([]byte, error) {
	e := Encoder{buf: buf}
	e.Message(m)
	return e.buf, e.err
}

// Unmarshal decodes one message occupying the whole of b.
func Unmarshal(b []byte) (env.Message, error) {
	d := Decoder{buf: b}
	m := d.Message()
	if d.err == nil && d.off != len(d.buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes after message", len(d.buf)-d.off)
	}
	return m, d.err
}

// Encoder appends a message's binary form to an internal buffer. Errors
// (unregistered types, unsupported values) are sticky; the first one is
// reported by Err and by Marshal.
type Encoder struct {
	buf []byte
	err error
}

// NewEncoder returns an encoder appending to buf — pass a recycled
// buffer (sliced to length 0) to avoid per-message allocations on hot
// paths.
func NewEncoder(buf []byte) Encoder { return Encoder{buf: buf} }

// Err returns the first error the encoder hit.
func (e *Encoder) Err() error { return e.err }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Fail records an encoding error (for codec implementations).
func (e *Encoder) Fail(msg string) {
	if e.err == nil {
		e.err = errors.New("wire: " + msg)
	}
}

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed (zigzag) varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends an int as a signed varint.
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// Len appends a slice/map length as an unsigned varint; Decoder.Len
// reads it back with an allocation guard.
func (e *Encoder) Len(n int) { e.Uvarint(uint64(n)) }

// Float64 appends a fixed 8-byte little-endian float.
func (e *Encoder) Float64(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// Fixed64 appends a fixed 8-byte little-endian word — used for
// high-entropy values (Bloom filter words) where varints only expand.
func (e *Encoder) Fixed64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Addr appends a node address.
func (e *Encoder) Addr(a env.Addr) { e.String(string(a)) }

// Duration appends a time.Duration as a signed varint of nanoseconds.
func (e *Encoder) Duration(d time.Duration) { e.Varint(int64(d)) }

// Time appends an instant as a zero flag plus Unix nanoseconds. The
// monotonic reading and location are not preserved; decoded times
// compare Equal to the original.
func (e *Encoder) Time(t time.Time) {
	if t.IsZero() {
		e.Bool(true)
		return
	}
	e.Bool(false)
	e.Varint(t.UnixNano())
}

// Value tags for Encoder.Value / Decoder.Value.
const (
	valNil byte = iota
	valFalse
	valTrue
	valInt
	valFloat
	valString
)

// Value appends a column value: nil, bool, int64, float64, or string —
// the scalar vocabulary of core.Value. Other dynamic types are an
// encoding error.
func (e *Encoder) Value(v any) {
	switch v := v.(type) {
	case nil:
		e.Byte(valNil)
	case bool:
		if v {
			e.Byte(valTrue)
		} else {
			e.Byte(valFalse)
		}
	case int64:
		e.Byte(valInt)
		e.Varint(v)
	case float64:
		e.Byte(valFloat)
		e.Float64(v)
	case string:
		e.Byte(valString)
		e.String(v)
	default:
		e.Fail(fmt.Sprintf("unsupported value type %T", v))
	}
}

// Message appends a message as tag + body. Nil (including typed nil
// pointers) encodes as tag 0. Unregistered types are an encoding error.
func (e *Encoder) Message(m env.Message) {
	if m == nil {
		e.Byte(0)
		return
	}
	t := reflect.TypeOf(m)
	if t.Kind() == reflect.Pointer && reflect.ValueOf(m).IsNil() {
		e.Byte(0)
		return
	}
	tag, ok := byType[t]
	if !ok {
		e.Fail("unregistered message type " + t.String())
		return
	}
	e.Byte(tag)
	byTag[tag].enc(e, m)
}

// Decoder reads a message's binary form from a buffer. Errors (malformed
// varints, truncated input, unknown tags) are sticky: after the first
// error every read returns a zero value and Err reports the cause.
type Decoder struct {
	buf    []byte
	off    int
	depth  int
	err    error
	intern *Intern
}

// maxNesting bounds recursive Message decoding: a hostile frame of
// repeated nested-message tags must fail cleanly instead of overflowing
// the goroutine stack (a fatal, process-killing error). Legitimate PIER
// messages nest a handful of levels (flood envelope → item → tuple;
// expression trees a few dozen at worst).
const maxNesting = 100

// NewDecoder returns a decoder over b (for codec tests; transports use
// Unmarshal).
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first error the decoder hit.
func (d *Decoder) Err() error { return d.err }

// Fail records a decoding error (for codec implementations).
func (d *Decoder) Fail(msg string) {
	if d.err == nil {
		d.err = errors.New("wire: " + msg)
	}
}

func (d *Decoder) remaining() int { return len(d.buf) - d.off }

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.Fail("truncated message")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.Fail("malformed uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed (zigzag) varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.Fail("malformed varint")
		return 0
	}
	d.off += n
	return v
}

// Int reads an int-sized signed varint.
func (d *Decoder) Int() int { return int(d.Varint()) }

// Float64 reads a fixed 8-byte little-endian float.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.Fail("truncated float")
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return f
}

// Fixed64 reads a fixed 8-byte little-endian word.
func (d *Decoder) Fixed64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.Fail("truncated fixed64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Len reads a slice/map length and bounds it against the remaining
// input (every element costs at least one byte), so a corrupted count
// cannot claim more elements than the sender paid bytes for. Decoders
// building containers of multi-byte elements should combine this with
// SliceCap (grow-by-append) or LenMin so a hostile count cannot amplify
// a frame into a much larger allocation.
func (d *Decoder) Len() int { return d.LenMin(1) }

// LenMin reads a length whose elements each occupy at least perElem
// encoded bytes, bounding count*perElem against the remaining input.
func (d *Decoder) LenMin(perElem int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if perElem < 1 {
		perElem = 1
	}
	if n > uint64(d.remaining()/perElem) {
		d.Fail(fmt.Sprintf("%d elements of >=%d bytes exceed remaining %d bytes", n, perElem, d.remaining()))
		return 0
	}
	return int(n)
}

// Remaining reports the undecoded bytes left — transports use it to
// reject frames with trailing garbage after a valid message.
func (d *Decoder) Remaining() int { return d.remaining() }

// SliceCap bounds the initial capacity of an n-element container built
// by a decoder: start at most here and grow by append, so a corrupted
// count fails on truncation before large memory is committed.
func SliceCap(n int) int {
	if n > 4096 {
		return 4096
	}
	return n
}

// String reads a length-prefixed string. With an intern table installed
// (SetIntern) the returned string is the table's canonical copy and the
// read allocates nothing for strings seen before on this table.
func (d *Decoder) String() string {
	n := d.Len()
	if d.err != nil || n == 0 {
		return ""
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	if d.intern != nil {
		return d.intern.Get(b)
	}
	return string(b)
}

// StringBytes reads a length-prefixed string as a borrowed sub-slice of
// the decode buffer: no copy, no allocation. The slice is valid only as
// long as the buffer itself — for realnet frames, until the frame's
// decode returns and the transport recycles the buffer. Decoders must
// Detach (or string-copy) anything retained beyond that; everything
// else in this package that returns strings already copies or interns.
func (d *Decoder) StringBytes() []byte {
	n := d.Len()
	if d.err != nil || n == 0 {
		return nil
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b
}

// Detach copies a borrowed slice (StringBytes) into a fresh allocation
// that is safe to retain after the frame buffer is recycled.
func Detach(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

// SetIntern installs a string-deduplication table consulted by String
// (and therefore Addr and Value). Transports install one per connection
// so repeated strings decode without allocating; pass nil to remove.
func (d *Decoder) SetIntern(in *Intern) { d.intern = in }

// Reset re-points the decoder at b, clearing offset, error, and nesting
// depth but keeping the intern table — the per-connection reuse path.
func (d *Decoder) Reset(b []byte) {
	d.buf = b
	d.off = 0
	d.depth = 0
	d.err = nil
}

// internMaxLen bounds the length of strings worth interning: short
// identifiers (relation names, namespaces, host:port addresses) repeat
// across frames; long payload strings rarely do and would bloat the
// table.
const internMaxLen = 128

// Intern is a bounded string-deduplication table. Lookup by []byte key
// costs no allocation (the compiler recognizes the string(b) map-index
// form), so a hit returns the canonical string for free; a miss copies
// once and remembers the copy until the table fills. An Intern is not
// goroutine-safe — use one per connection, like the Decoder it feeds.
type Intern struct {
	m map[string]string
	// vals holds the same canonical strings pre-boxed as interface
	// values: tuple columns are []any, so without this every repeated
	// string column would still pay one interface allocation per
	// decode even though the string itself was interned.
	vals map[string]any
	max  int
}

// NewIntern returns a table holding at most max entries (0 means a
// 4096-entry default). Once full it stops learning but keeps serving
// hits, so a hostile peer streaming unique strings degrades to the
// copy-per-string baseline instead of growing memory.
func NewIntern(max int) *Intern {
	if max <= 0 {
		max = 4096
	}
	return &Intern{
		m:    make(map[string]string, 64),
		vals: make(map[string]any, 64),
		max:  max,
	}
}

// Get returns the canonical string equal to b, learning it if the table
// has room and b is short enough to be a plausible identifier.
func (in *Intern) Get(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(s) <= internMaxLen && len(in.m) < in.max {
		in.m[s] = s
	}
	return s
}

// GetValue returns the canonical string equal to b boxed in an
// interface value, caching the boxed form so a repeated string column
// decodes with neither a string copy nor an interface allocation.
func (in *Intern) GetValue(b []byte) any {
	if len(b) == 0 {
		return "" // boxes without allocating (zero-length special case)
	}
	if v, ok := in.vals[string(b)]; ok {
		return v
	}
	s := in.Get(b)
	v := any(s)
	if len(s) <= internMaxLen && len(in.vals) < in.max {
		in.vals[s] = v
	}
	return v
}

// Len reports how many strings the table has learned.
func (in *Intern) Len() int { return len(in.m) }

// Addr reads a node address.
func (d *Decoder) Addr() env.Addr { return env.Addr(d.String()) }

// Duration reads a time.Duration.
func (d *Decoder) Duration() time.Duration { return time.Duration(d.Varint()) }

// Time reads an instant written by Encoder.Time.
func (d *Decoder) Time() time.Time {
	if d.Bool() {
		return time.Time{}
	}
	return time.Unix(0, d.Varint())
}

// Value reads a column value written by Encoder.Value.
func (d *Decoder) Value() any {
	switch tag := d.Byte(); tag {
	case valNil:
		return nil
	case valFalse:
		return false
	case valTrue:
		return true
	case valInt:
		return d.Varint()
	case valFloat:
		return d.Float64()
	case valString:
		if d.intern != nil {
			return d.intern.GetValue(d.StringBytes())
		}
		return d.String()
	default:
		d.Fail(fmt.Sprintf("unknown value tag %d", tag))
		return nil
	}
}

// Message reads a message written by Encoder.Message. Tag 0 yields nil.
func (d *Decoder) Message() env.Message {
	tag := d.Byte()
	if d.err != nil || tag == 0 {
		return nil
	}
	e := byTag[tag]
	if e == nil {
		d.Fail(fmt.Sprintf("unknown message tag %d", tag))
		return nil
	}
	d.depth++
	if d.depth > maxNesting {
		d.Fail(fmt.Sprintf("message nesting exceeds %d levels", maxNesting))
		return nil
	}
	m := e.dec(d)
	d.depth--
	return m
}
