package wire_test

import (
	"math"
	"math/rand"
	"testing"

	"pier/internal/core"
	"pier/internal/wire"
)

// TestOrderedKeyMonotone draws random value pairs and asserts the
// documented non-strict monotonicity against core.CompareValues.
func TestOrderedKeyMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	gen := func() any {
		switch r.Intn(6) {
		case 0:
			return nil
		case 1:
			return r.Intn(2) == 0
		case 2:
			return r.Int63n(1 << 40)
		case 3:
			return -r.Int63n(1 << 40)
		case 4:
			return (r.Float64() - 0.5) * 1e9
		default:
			n := r.Intn(12)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte('a' + r.Intn(26))
			}
			return string(b)
		}
	}
	for i := 0; i < 100000; i++ {
		a, b := gen(), gen()
		ka, kb := wire.OrderedKey(a), wire.OrderedKey(b)
		if core.CompareValues(a, b) < 0 && ka > kb {
			t.Fatalf("CompareValues(%v, %v) < 0 but OrderedKey %x > %x", a, b, ka, kb)
		}
	}
}

// TestOrderedKeyTypeOrder pins the cross-type ordering nil < bool <
// number < string that CompareValues defines.
func TestOrderedKeyTypeOrder(t *testing.T) {
	seq := []any{nil, false, true, math.Inf(-1), int64(-5), int64(0), 2.5, int64(1 << 50), math.Inf(1), "", "a", "zzzzzzzzzz"}
	for i := 1; i < len(seq); i++ {
		if wire.OrderedKey(seq[i-1]) > wire.OrderedKey(seq[i]) {
			t.Fatalf("OrderedKey(%v) = %x > OrderedKey(%v) = %x",
				seq[i-1], wire.OrderedKey(seq[i-1]), seq[i], wire.OrderedKey(seq[i]))
		}
	}
}

// TestOrderedKeyIntExact asserts small integers (the common indexed
// domain) encode strictly monotonically — no two distinct values below
// 2^52 may collide, so equality ranges stay tight.
func TestOrderedKeyIntExact(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100000; i++ {
		a := r.Int63n(1<<52) - 1<<51
		b := a + 1 + r.Int63n(1000)
		if wire.OrderedKey(a) >= wire.OrderedKey(b) {
			t.Fatalf("OrderedKey(%d) = %x !< OrderedKey(%d) = %x", a, wire.OrderedKey(a), b, wire.OrderedKey(b))
		}
	}
}

// TestOrderedKeyIntFloatCoercion asserts an int64 and the float64 with
// the same numeric value encode identically, mirroring CompareValues'
// coercion.
func TestOrderedKeyIntFloatCoercion(t *testing.T) {
	for _, n := range []int64{-1000000, -1, 0, 1, 42, 1 << 30} {
		if wire.OrderedKey(n) != wire.OrderedKey(float64(n)) {
			t.Fatalf("OrderedKey(int64 %d) = %x != OrderedKey(float64) = %x",
				n, wire.OrderedKey(n), wire.OrderedKey(float64(n)))
		}
	}
}

// TestOrderedKeyNegativeZero pins the -0.0 == +0.0 identity: the two
// compare equal, so they must share an encoding or WHERE x >= 0 via
// the index would miss tuples storing -0.0.
func TestOrderedKeyNegativeZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	if wire.OrderedKey(negZero) != wire.OrderedKey(0.0) {
		t.Fatalf("OrderedKey(-0.0) = %x != OrderedKey(+0.0) = %x",
			wire.OrderedKey(negZero), wire.OrderedKey(0.0))
	}
}
