package core
