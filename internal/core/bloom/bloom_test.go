package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegativesProperty(t *testing.T) {
	check := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := NewForCapacity(int(n)+1, 0.01)
		keys := make([]string, int(n)+1)
		for i := range keys {
			keys[i] = fmt.Sprint("k", rng.Int63())
			f.Add(keys[i])
		}
		for _, k := range keys {
			if !f.Test(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 5000
	f := NewForCapacity(n, 0.01)
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprint("member", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Test(fmt.Sprint("nonmember", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f, want <= 0.03", rate)
	}
}

func TestUnionContainsBothSides(t *testing.T) {
	a, b := New(1<<12, 4), New(1<<12, 4)
	a.Add("only-a")
	b.Add("only-b")
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Test("only-a") || !a.Test("only-b") {
		t.Fatal("union lost members")
	}
}

func TestUnionGeometryMismatch(t *testing.T) {
	a, b := New(1<<12, 4), New(1<<13, 4)
	if err := a.Union(b); err == nil {
		t.Fatal("mismatched sizes must error")
	}
	c := New(1<<12, 3)
	if err := a.Union(c); err == nil {
		t.Fatal("mismatched K must error")
	}
}

func TestUnionEqualsBulkAddProperty(t *testing.T) {
	// Property: adding keys into two filters and OR-ing equals adding
	// all keys into one filter — the §4.2 collector invariant.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		one, two, merged := New(1<<10, 3), New(1<<10, 3), New(1<<10, 3)
		for i := 0; i < 50; i++ {
			k := fmt.Sprint(rng.Int63())
			merged.Add(k)
			if i%2 == 0 {
				one.Add(k)
			} else {
				two.Add(k)
			}
		}
		if err := one.Union(two); err != nil {
			return false
		}
		for i := range one.Bits {
			if one.Bits[i] != merged.Bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(1<<10, 2)
	a.Add("x")
	b := a.Clone()
	b.Add("y")
	if a.Test("y") && !b.Test("y") {
		t.Fatal("clone aliases original")
	}
	if !b.Test("x") {
		t.Fatal("clone lost members")
	}
}

func TestEmptyFilterRejectsEverything(t *testing.T) {
	f := New(1<<10, 4)
	for i := 0; i < 100; i++ {
		if f.Test(fmt.Sprint("k", i)) {
			t.Fatal("empty filter accepted a key")
		}
	}
	if f.FillRatio() != 0 {
		t.Fatal("empty filter fill ratio != 0")
	}
}

func TestCapacitySizing(t *testing.T) {
	f := NewForCapacity(1000, 0.01)
	if len(f.Bits)*64 < 9000 {
		t.Fatalf("filter too small for capacity: %d bits", len(f.Bits)*64)
	}
	if f.K < 3 || f.K > 10 {
		t.Fatalf("k = %d out of expected range", f.K)
	}
	if f.WireSize() != 8+len(f.Bits)*8 {
		t.Fatal("wire size mismatch")
	}
}

func TestDegenerateParams(t *testing.T) {
	f := New(0, 0)
	f.Add("a")
	if !f.Test("a") {
		t.Fatal("degenerate filter must still work")
	}
	g := NewForCapacity(0, 2)
	g.Add("b")
	if !g.Test("b") {
		t.Fatal("zero-capacity filter must still work")
	}
}

func TestSaturateAcceptsEverything(t *testing.T) {
	f := New(1<<10, 4)
	f.Saturate()
	for _, k := range []string{"", "a", "zz", "never-added-key"} {
		if !f.Test(k) {
			t.Fatalf("saturated filter rejected %q", k)
		}
	}
	if r := f.FillRatio(); r != 1 {
		t.Fatalf("saturated fill ratio %v, want 1", r)
	}
}
