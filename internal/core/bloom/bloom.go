// Package bloom implements the Bloom filters used by PIER's Bloom-join
// rewrite (§4.2): each node summarizes the join keys of its local table
// fragment, the per-table filters are OR-ed at a collector, and the
// combined filter prunes the rehash of the opposite table.
package bloom

import (
	"errors"
	"hash/fnv"
	"math"
)

// Filter is a fixed-size Bloom filter with K hash functions derived by
// double hashing from one 64-bit FNV-1a digest.
type Filter struct {
	Bits []uint64
	K    int
}

// New creates a filter with at least mBits bits and k hash functions.
func New(mBits, k int) *Filter {
	if mBits < 64 {
		mBits = 64
	}
	if k < 1 {
		k = 1
	}
	return &Filter{Bits: make([]uint64, (mBits+63)/64), K: k}
}

// NewForCapacity sizes a filter for n elements at the given false
// positive rate using the standard m = -n·ln(p)/ln(2)² and
// k = (m/n)·ln(2) formulas.
func NewForCapacity(n int, fpRate float64) *Filter {
	if n < 1 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	m := int(math.Ceil(-float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

func (f *Filter) indexes(s string, fn func(bit uint64)) {
	h := fnv.New64a()
	h.Write([]byte(s))
	d := h.Sum64()
	h1 := d
	h2 := d>>33 | 1 // odd increment for double hashing
	m := uint64(len(f.Bits)) * 64
	for i := 0; i < f.K; i++ {
		fn((h1 + uint64(i)*h2) % m)
	}
}

// Add inserts a key.
func (f *Filter) Add(s string) {
	f.indexes(s, func(bit uint64) {
		f.Bits[bit/64] |= 1 << (bit % 64)
	})
}

// Test reports whether the key may be present. False positives are
// possible; false negatives are not.
func (f *Filter) Test(s string) bool {
	ok := true
	f.indexes(s, func(bit uint64) {
		if f.Bits[bit/64]&(1<<(bit%64)) == 0 {
			ok = false
		}
	})
	return ok
}

// Union ORs another filter of identical geometry into this one — the
// collector-side combine of §4.2.
func (f *Filter) Union(g *Filter) error {
	if len(f.Bits) != len(g.Bits) || f.K != g.K {
		return errors.New("bloom: mismatched filter geometry")
	}
	for i, w := range g.Bits {
		f.Bits[i] |= w
	}
	return nil
}

// Saturate sets every bit, making Test answer true for every key. The
// Bloom collector degrades to a saturated filter when a peer's filter
// cannot be combined (mismatched geometry): pruning with a filter that
// is missing that peer's keys would silently drop join rows, whereas a
// saturated filter just disables pruning.
func (f *Filter) Saturate() {
	for i := range f.Bits {
		f.Bits[i] = ^uint64(0)
	}
}

// Clone returns a deep copy.
func (f *Filter) Clone() *Filter {
	return &Filter{Bits: append([]uint64(nil), f.Bits...), K: f.K}
}

// FillRatio returns the fraction of set bits (a saturation diagnostic).
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.Bits {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	return float64(set) / float64(len(f.Bits)*64)
}

// WireSize implements env.Message sizing for filters shipped in puts and
// multicasts.
func (f *Filter) WireSize() int { return 8 + len(f.Bits)*8 }
