package core

import (
	"testing"
	"testing/quick"
)

func TestConcatKeepsOrderAndPad(t *testing.T) {
	a := &Tuple{Rel: "R", Vals: []Value{int64(1), int64(2)}, Pad: 100}
	b := &Tuple{Rel: "S", Vals: []Value{"x"}, Pad: 10}
	c := Concat(a, b)
	if len(c.Vals) != 3 || c.Vals[0] != int64(1) || c.Vals[2] != "x" {
		t.Fatalf("concat vals = %v", c.Vals)
	}
	if c.Pad != 110 {
		t.Fatalf("concat pad = %d, want 110", c.Pad)
	}
	if c.Rel != "R+S" {
		t.Fatalf("concat rel = %q", c.Rel)
	}
}

func TestProjectKeepsPad(t *testing.T) {
	a := &Tuple{Rel: "R", Vals: []Value{int64(1), int64(2), int64(3)}, Pad: 964}
	p := a.Project([]int{2, 0})
	if len(p.Vals) != 2 || p.Vals[0] != int64(3) || p.Vals[1] != int64(1) {
		t.Fatalf("project vals = %v", p.Vals)
	}
	if p.Pad != 964 {
		t.Fatal("projection must carry the pad payload (Figure 4 depends on it)")
	}
	if a.Project(nil) != a {
		t.Fatal("nil projection should be identity")
	}
}

func TestWireSizeGrowsWithPad(t *testing.T) {
	small := &Tuple{Rel: "R", Vals: []Value{int64(1)}}
	big := &Tuple{Rel: "R", Vals: []Value{int64(1)}, Pad: 964}
	if big.WireSize()-small.WireSize() != 964 {
		t.Fatalf("pad not reflected in wire size: %d vs %d", big.WireSize(), small.WireSize())
	}
}

func TestJoinKeyString(t *testing.T) {
	tu := &Tuple{Vals: []Value{int64(7), "abc", float64(1.5)}}
	if got := JoinKeyString(tu, []int{0}); got != "7" {
		t.Fatalf("single col key = %q", got)
	}
	if got := JoinKeyString(tu, []int{0, 1}); got != "7\x1fabc" {
		t.Fatalf("multi col key = %q", got)
	}
	if got := JoinKeyString(tu, nil); got != "" {
		t.Fatalf("empty col key = %q (global group)", got)
	}
}

func TestValueStringCanonical(t *testing.T) {
	if ValueString(int64(42)) != "42" || ValueString("s") != "s" || ValueString(true) != "true" {
		t.Fatal("canonical strings wrong")
	}
	if ValueString(float64(2)) != "2" {
		t.Fatalf("float string = %q", ValueString(float64(2)))
	}
}

func TestCloneIndependence(t *testing.T) {
	a := &Tuple{Rel: "R", Vals: []Value{int64(1)}, Pad: 5}
	b := a.Clone()
	b.Vals[0] = int64(9)
	if a.Vals[0] != int64(1) {
		t.Fatal("clone shares storage")
	}
}

func TestValueSizePositiveProperty(t *testing.T) {
	check := func(i int64, f float64, s string, b bool) bool {
		for _, v := range []Value{i, f, s, b, nil} {
			if ValueSize(v) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
