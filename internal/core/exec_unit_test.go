package core

import (
	"strings"
	"testing"
)

func execForPlan(p *Plan) *exec {
	_ = p.Validate()
	return &exec{plan: p}
}

func TestRehashRIDIdentityWithoutBucketing(t *testing.T) {
	ex := execForPlan(&Plan{Tables: []TableRef{{NS: "a"}}})
	if ex.rehashRID("somekey") != "somekey" {
		t.Fatal("without ComputeNodes the join key is the resourceID")
	}
}

func TestRehashRIDBucketsBounded(t *testing.T) {
	ex := execForPlan(&Plan{Tables: []TableRef{{NS: "a"}}, ComputeNodes: 7})
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		rid := ex.rehashRID(strings.Repeat("k", i%11) + "x")
		if !strings.HasPrefix(rid, "bkt") {
			t.Fatalf("bucketed rid %q", rid)
		}
		seen[rid] = true
	}
	if len(seen) > 7 {
		t.Fatalf("%d buckets for ComputeNodes=7", len(seen))
	}
	if len(seen) < 2 {
		t.Fatalf("bucketing degenerate: %d buckets", len(seen))
	}
	// Determinism.
	if ex.rehashRID("abc") != ex.rehashRID("abc") {
		t.Fatal("bucketing must be deterministic")
	}
}

func TestSameJoinKeyOnlyCheckedWhenBucketed(t *testing.T) {
	plain := execForPlan(&Plan{Tables: []TableRef{
		{NS: "a", JoinCols: []int{0}},
		{NS: "b", JoinCols: []int{0}},
	}})
	a := &sideTuple{Side: 0, T: &Tuple{Vals: []Value{int64(1)}}}
	b := &sideTuple{Side: 1, T: &Tuple{Vals: []Value{int64(2)}}}
	if !plain.sameJoinKey(a, b) {
		t.Fatal("without bucketing the rid already guarantees key equality")
	}
	bucketed := execForPlan(&Plan{Tables: []TableRef{
		{NS: "a", JoinCols: []int{0}},
		{NS: "b", JoinCols: []int{0}},
	}, ComputeNodes: 2})
	if bucketed.sameJoinKey(a, b) {
		t.Fatal("bucketed probe must reject differing keys")
	}
	b2 := &sideTuple{Side: 1, T: &Tuple{Vals: []Value{int64(1)}}}
	if !bucketed.sameJoinKey(a, b2) {
		t.Fatal("bucketed probe must accept equal keys")
	}
}

func TestRidIIDStable(t *testing.T) {
	if ridIID("x") != ridIID("x") {
		t.Fatal("ridIID not deterministic")
	}
	if ridIID("x") == ridIID("y") {
		t.Fatal("ridIID collides on trivial inputs")
	}
	if ridIID("x") < 0 {
		t.Fatal("ridIID must be non-negative (storage convention)")
	}
}

func TestQueryNSConstant(t *testing.T) {
	if QueryNS == "" {
		t.Fatal("query namespace must be non-empty")
	}
}

func TestWireSizesPositive(t *testing.T) {
	msgs := []interface{ WireSize() int }{
		&queryMsg{Plan: &Plan{Tables: []TableRef{{NS: "a"}}}},
		&resultMsg{Tuples: []*Tuple{{Rel: "r", Vals: []Value{int64(1)}}}},
		&sideTuple{T: &Tuple{Rel: "r"}},
		&miniTuple{RID: "1", Key: "2"},
		&partialAgg{Group: []Value{"g"}, States: []*AggState{{}}},
	}
	for _, m := range msgs {
		if m.WireSize() <= 0 {
			t.Fatalf("%T has non-positive wire size", m)
		}
	}
}
