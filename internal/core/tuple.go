// Package core implements the PIER query processor (§3.3, §4): a
// push-based "boxes-and-arrows" dataflow engine with selection,
// projection, distributed equi-joins (symmetric hash, Fetch Matches,
// symmetric semi-join rewrite, Bloom-filter rewrite), and DHT-based
// grouping/aggregation, all executing over the provider layer.
package core

import (
	"encoding/gob"
	"fmt"
	"strconv"
	"strings"

	"pier/internal/env"
)

// Value is a column value: int64, float64, string, bool, or nil.
type Value = any

// Tuple is a row flowing through the dataflow. Vals are the column
// values; Pad models trailing payload bytes that are carried on the wire
// but never evaluated (the workload's R.pad "is used to ensure that all
// result tuples are 1 KB in size", §5.1).
type Tuple struct {
	Rel  string // source relation tag
	Vals []Value
	Pad  int
}

// WireSize implements env.Message.
func (t *Tuple) WireSize() int {
	n := env.StringSize(t.Rel) + 2 + t.Pad
	for _, v := range t.Vals {
		n += ValueSize(v)
	}
	return n
}

// Clone returns a deep-enough copy (values are immutable scalars).
func (t *Tuple) Clone() *Tuple {
	return &Tuple{Rel: t.Rel, Vals: append([]Value(nil), t.Vals...), Pad: t.Pad}
}

// Concat returns a new tuple with t's columns followed by u's, adding
// the pads; the tag marks it as a join result.
func Concat(t, u *Tuple) *Tuple {
	vals := make([]Value, 0, len(t.Vals)+len(u.Vals))
	vals = append(vals, t.Vals...)
	vals = append(vals, u.Vals...)
	return &Tuple{Rel: t.Rel + "+" + u.Rel, Vals: vals, Pad: t.Pad + u.Pad}
}

// Project returns a tuple with only the given columns (nil keeps all).
// The pad payload rides along: projecting metadata columns does not shed
// the tuple's body, which is what makes the symmetric hash join's rehash
// expensive (Figure 4).
func (t *Tuple) Project(cols []int) *Tuple {
	if cols == nil {
		return t
	}
	vals := make([]Value, len(cols))
	for i, c := range cols {
		vals[i] = t.At(c)
	}
	return &Tuple{Rel: t.Rel, Vals: vals, Pad: t.Pad}
}

// At returns the i-th value, or nil when i is out of range. Column
// indexes reach this code from network-supplied plans, so they are
// never trusted enough to index directly on the event loop.
func (t *Tuple) At(i int) Value {
	if i < 0 || i >= len(t.Vals) {
		return nil
	}
	return t.Vals[i]
}

// String renders the tuple for logs and examples.
func (t *Tuple) String() string {
	parts := make([]string, len(t.Vals))
	for i, v := range t.Vals {
		parts[i] = ValueString(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ValueSize is the encoded size of a value on the wire.
func ValueSize(v Value) int {
	switch v := v.(type) {
	case nil:
		return 1
	case bool:
		return 2
	case int64:
		return 9
	case float64:
		return 9
	case string:
		return 1 + env.StringSize(v)
	default:
		return 16
	}
}

// ValueString renders a value canonically; resourceIDs for rehashed
// tuples are built from these (§4.1: "the values for the join attributes
// are concatenated to form the resourceID").
func ValueString(v Value) string {
	switch v := v.(type) {
	case nil:
		return "<nil>"
	case int64:
		return strconv.FormatInt(v, 10)
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	case string:
		return v
	case bool:
		return strconv.FormatBool(v)
	default:
		return fmt.Sprint(v)
	}
}

// JoinKeyString concatenates the values of cols into a resourceID.
func JoinKeyString(t *Tuple, cols []int) string {
	if len(cols) == 1 {
		return ValueString(t.At(cols[0]))
	}
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = ValueString(t.At(c))
	}
	return strings.Join(parts, "\x1f")
}

// ValuesEqual compares two values with numeric coercion between int64
// and float64.
func ValuesEqual(a, b Value) bool { return CompareValues(a, b) == 0 }

// CompareValues orders values: nil < bool < number < string, numbers
// coerced. It returns -1, 0, or 1.
func CompareValues(a, b Value) int {
	ra, rb := rank(a), rank(b)
	if ra != rb {
		return sign(ra - rb)
	}
	switch ra {
	case 0:
		return 0
	case 1:
		ab, bb := a.(bool), b.(bool)
		switch {
		case ab == bb:
			return 0
		case !ab:
			return -1
		default:
			return 1
		}
	case 2:
		af, aInt := toFloat(a)
		bf, bInt := toFloat(b)
		if aInt && bInt {
			// Compare directly: ai-bi overflows for operands straddling
			// ±2^63 (e.g. MinInt64 vs 1) and would invert the order.
			ai, bi := a.(int64), b.(int64)
			switch {
			case ai < bi:
				return -1
			case ai > bi:
				return 1
			default:
				return 0
			}
		}
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	default:
		return strings.Compare(a.(string), b.(string))
	}
}

func rank(v Value) int {
	switch v.(type) {
	case nil:
		return 0
	case bool:
		return 1
	case int64, float64:
		return 2
	default:
		return 3
	}
}

func toFloat(v Value) (f float64, isInt bool) {
	switch v := v.(type) {
	case int64:
		return float64(v), true
	case float64:
		return v, false
	default:
		return 0, false
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func init() {
	gob.Register(&Tuple{})
	// Concrete value types carried inside the Vals []any slices.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(true)
}
