package core

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"pier/internal/env"
	"pier/internal/trace"
	"pier/internal/wire"
)

// Regression: CompareValues used to compute sign64(ai-bi), whose
// subtraction overflows for operands straddling ±2^63 and inverts the
// order — MinInt64 compared greater than 1, corrupting every sort,
// min/max aggregate, and index range over such values.
func TestCompareValuesInt64Overflow(t *testing.T) {
	cases := []struct {
		a, b int64
		want int
	}{
		{math.MinInt64, 1, -1},
		{1, math.MinInt64, 1},
		{math.MaxInt64, -1, 1},
		{-1, math.MaxInt64, -1},
		{math.MinInt64, math.MaxInt64, -1},
		{math.MinInt64, math.MinInt64, 0},
		{42, 42, 0},
	}
	for _, c := range cases {
		if got := CompareValues(c.a, c.b); got != c.want {
			t.Errorf("CompareValues(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Regression: a tuple's Pad arrives over the network as a signed
// varint and flows into WireSize and the simulator's bandwidth model;
// a crafted negative pad used to decode fine and corrupt both. It must
// fail the frame — standalone and inside a result frame.
func TestNegativeTuplePadRejected(t *testing.T) {
	tup, err := wire.Marshal(&Tuple{Rel: "r"})
	if err != nil {
		t.Fatal(err)
	}
	// The final byte is Pad's varint: 0. Overwrite with zigzag(-1).
	tup[len(tup)-1] = 1
	if _, err := wire.Unmarshal(tup); err == nil {
		t.Error("standalone tuple with negative pad accepted")
	}

	frame, err := wire.Marshal(&resultMsg{ID: 1, Tuples: []*Tuple{{Rel: "r"}}})
	if err != nil {
		t.Fatal(err)
	}
	// Frame tail is [pad, spansLen, spanDrops] = [0, 0, 0].
	frame[len(frame)-3] = 1
	if _, err := wire.Unmarshal(frame); err == nil {
		t.Error("result frame with negative tuple pad accepted")
	}
}

// bigResultFrame is a representative 32-tuple result frame with
// repeated relation and string values, as a real query produces.
// Values stick to small ints (the runtime boxes [0,256) for free) and
// repeated strings (served pre-boxed from the intern table); float
// columns inherently allocate one box per decode because Value is
// []any, and are measured separately from the structural gate here.
func bigResultFrame(tb testing.TB) []byte {
	rm := &resultMsg{ID: 7, Window: 0}
	for i := 0; i < 32; i++ {
		rm.Tuples = append(rm.Tuples, &Tuple{
			Rel:  "result",
			Vals: []Value{int64(i), "host-" + string(rune('a'+i%4)), "us-west", int64(i % 7)},
			Pad:  64,
		})
	}
	b, err := wire.Marshal(rm)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// TestResultFrameDecodeAllocs gates the zero-copy decode path: one
// pooled frame shell plus the two slab blocks (tuples, values) per
// 32-tuple frame, with relation and repeated string values served
// from the decoder's intern table. The pre-slab decoder paid two
// allocations per tuple plus one per string value — over 160 for this
// frame — so the gate also pins the required ≥5x reduction.
func TestResultFrameDecodeAllocs(t *testing.T) {
	b := bigResultFrame(t)
	var dec wire.Decoder
	dec.SetIntern(wire.NewIntern(0))
	// Warm the intern table and the frame pool outside the measurement.
	dec.Reset(b)
	if m := dec.Message(); m != nil {
		m.(*resultMsg).Recycle()
	}
	allocs := testing.AllocsPerRun(200, func() {
		dec.Reset(b)
		m := dec.Message()
		if dec.Err() != nil {
			t.Fatal(dec.Err())
		}
		m.(*resultMsg).Recycle()
	})
	// Slab (tuples) + slab (values) + shell-internal growth slack.
	if allocs > 8 {
		t.Fatalf("decode of 32-tuple frame: %.1f allocs, want <= 8", allocs)
	}
}

// TestResultFrameEncodeAllocs gates the writer-side path: appending a
// frame to a reused scratch buffer (what realnet's batch writer does)
// costs at most one fixed allocation — the Encoder header escapes
// through the registry's indirect encode call — regardless of tuple
// count. The old path Marshal-ed every frame: a fresh buffer plus its
// growth copies, O(frame size) per send.
func TestResultFrameEncodeAllocs(t *testing.T) {
	b := bigResultFrame(t)
	m, err := wire.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 2*len(b))
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = wire.Append(buf[:0], m)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("encode into reused buffer: %.1f allocs, want <= 1", allocs)
	}
}

// BenchmarkResultFrameDecode measures the shipping decode path: a
// persistent interned decoder filling pooled frame shells.
func BenchmarkResultFrameDecode(b *testing.B) {
	frame := bigResultFrame(b)
	var dec wire.Decoder
	dec.SetIntern(wire.NewIntern(0))
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		dec.Reset(frame)
		m := dec.Message()
		if dec.Err() != nil {
			b.Fatal(dec.Err())
		}
		m.(*resultMsg).Recycle()
	}
}

// BenchmarkResultFrameEncode measures the shipping encode path:
// appending a frame to the batch writer's reused scratch buffer.
func BenchmarkResultFrameEncode(b *testing.B) {
	frame := bigResultFrame(b)
	m, err := wire.Unmarshal(frame)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, 2*len(frame))
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		buf, err = wire.Append(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// sinkEnv is a minimal env.Env for exercising the executor's result
// channel in isolation: Send recycles outbound frames like the real
// transport's writer, After returns an inert timer.
type sinkEnv struct {
	frames atomic.Uint64
	tuples atomic.Uint64
}

type sinkTimer struct{}

func (sinkTimer) Stop() {}

func (s *sinkEnv) Addr() env.Addr { return "sink" }
func (s *sinkEnv) Now() time.Time { return time.Unix(0, 0) }
func (s *sinkEnv) Post(f func())  { f() }
func (s *sinkEnv) Rand() *rand.Rand {
	return rand.New(rand.NewSource(1))
}
func (s *sinkEnv) After(d time.Duration, f func()) env.Timer { return sinkTimer{} }
func (s *sinkEnv) Send(to env.Addr, m env.Message) {
	if rm, ok := m.(*resultMsg); ok {
		s.frames.Add(1)
		s.tuples.Add(uint64(len(rm.Tuples)))
	}
	if rec, ok := m.(env.Recycler); ok {
		rec.Recycle()
	}
}

// flushExec builds a bare executor over sinkEnv, bypassing the full
// engine stack: flushResults only touches cfg, counters, histograms,
// and the env.
func flushExec(cfg Config) (*exec, *sinkEnv) {
	se := &sinkEnv{}
	eng := &Engine{env: se, cfg: cfg, hFlushLat: trace.NewHistogram(nil)}
	eng.dispatch = newDispatcher(eng, 1)
	ex := &exec{
		eng:       eng,
		id:        9,
		initiator: "sink",
		plan:      &Plan{},
		resLimit:  int64(cfg.ResultCredit),
	}
	return ex, se
}

// TestResultFlushAllocs gates the executor's flush path: emitting a
// full batch and flushing it must reuse the result buffer's backing
// array and a pooled frame, costing at most the flush-timer arm per
// cycle. The pre-pooling path allocated a fresh []*Tuple, a fresh
// resultMsg, and regrew resBuf from nil every flush.
func TestResultFlushAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResultCredit = -1 // no credit: flushes never stall
	ex, se := flushExec(cfg)
	tup := &Tuple{Rel: "result", Vals: []Value{int64(1), "x"}}
	// Warm: grows resBuf and the frame pool's Tuples capacity.
	for i := 0; i < cfg.ResultBatch; i++ {
		ex.emit(tup, 0)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < cfg.ResultBatch; i++ {
			ex.emit(tup, 0)
		}
	})
	// One flush-timer closure + timer stub per cycle of 32 is the
	// only tolerated cost; the frame and both slices must be reused.
	if perBatch := allocs; perBatch > 3 {
		t.Fatalf("flush cycle of %d tuples: %.1f allocs, want <= 3", cfg.ResultBatch, perBatch)
	}
	if se.frames.Load() == 0 || se.tuples.Load() == 0 {
		t.Fatal("sink saw no frames — flush path not exercised")
	}
}
