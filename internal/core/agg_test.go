package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAggStateBasics(t *testing.T) {
	var s AggState
	for _, v := range []int64{5, 1, 9} {
		s.Update(v)
	}
	if s.Final(Count) != int64(3) {
		t.Fatalf("count = %v", s.Final(Count))
	}
	if s.Final(Sum) != int64(15) {
		t.Fatalf("sum = %v", s.Final(Sum))
	}
	if s.Final(Min) != int64(1) || s.Final(Max) != int64(9) {
		t.Fatalf("min/max = %v/%v", s.Final(Min), s.Final(Max))
	}
	if s.Final(Avg) != float64(5) {
		t.Fatalf("avg = %v", s.Final(Avg))
	}
}

func TestAggStateFloatsPromoteSum(t *testing.T) {
	var s AggState
	s.Update(int64(1))
	s.Update(float64(2.5))
	if got := s.Final(Sum); got != float64(3.5) {
		t.Fatalf("mixed sum = %v", got)
	}
}

func TestAggStateEmpty(t *testing.T) {
	var s AggState
	if s.Final(Count) != int64(0) {
		t.Fatal("empty count != 0")
	}
	if s.Final(Min) != nil || s.Final(Max) != nil || s.Final(Avg) != nil {
		t.Fatal("empty min/max/avg must be nil")
	}
}

func TestCountStarIgnoresNil(t *testing.T) {
	var s AggState
	s.Update(nil)
	s.Update(nil)
	if s.Final(Count) != int64(2) {
		t.Fatalf("count(*) = %v, want 2", s.Final(Count))
	}
	if s.Final(Min) != nil {
		t.Fatal("min over nils must stay nil")
	}
}

// TestMergeEqualsSequentialProperty: merging partials from any split of
// the input equals aggregating the whole input — the invariant that
// makes PIER's distributed partial aggregation correct.
func TestMergeEqualsSequentialProperty(t *testing.T) {
	check := func(seed int64, split uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(1000) - 500)
		}
		cut := int(split) % n

		var whole AggState
		for _, v := range vals {
			whole.Update(v)
		}
		var a, b AggState
		for _, v := range vals[:cut] {
			a.Update(v)
		}
		for _, v := range vals[cut:] {
			b.Update(v)
		}
		a.Merge(&b)

		for _, k := range []AggKind{Count, Sum, Min, Max, Avg} {
			if !ValuesEqual(a.Final(k), whole.Final(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCommutativeProperty(t *testing.T) {
	check := func(xs, ys []int16) bool {
		var a1, b1, a2, b2 AggState
		for _, x := range xs {
			a1.Update(int64(x))
			a2.Update(int64(x))
		}
		for _, y := range ys {
			b1.Update(int64(y))
			b2.Update(int64(y))
		}
		a1.Merge(&b1) // a then b
		b2.Merge(&a2) // b then a
		for _, k := range []AggKind{Count, Sum, Min, Max} {
			if !ValuesEqual(a1.Final(k), b2.Final(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (&Plan{}).Validate(); err == nil {
		t.Error("empty plan must fail")
	}
	p := &Plan{Tables: []TableRef{{NS: "a"}, {NS: "b"}}}
	if err := p.Validate(); err == nil {
		t.Error("join without JoinCols must fail")
	}
	p = &Plan{Tables: []TableRef{{NS: "a", JoinCols: []int{0}, RIDCol: -1}, {NS: "b", JoinCols: []int{0}, RIDCol: 0}},
		Strategy: SymmetricSemiJoin}
	if err := p.Validate(); err == nil {
		t.Error("semi-join without RIDCol must fail")
	}
	p = &Plan{Tables: []TableRef{{NS: "a"}}, Having: &Const{V: true}}
	if err := p.Validate(); err == nil {
		t.Error("having without aggregates must fail")
	}
	p = &Plan{Tables: []TableRef{{NS: "a"}}, Continuous: true}
	if err := p.Validate(); err == nil {
		t.Error("continuous without Every must fail")
	}
	p = &Plan{Tables: []TableRef{{NS: "a"}}}
	if err := p.Validate(); err != nil {
		t.Errorf("valid single-table plan rejected: %v", err)
	}
	if p.TTL <= 0 || p.BloomBits <= 0 {
		t.Error("Validate must fill defaults")
	}
}

func TestStrategyStrings(t *testing.T) {
	names := map[Strategy]string{
		SymmetricHash:     "symmetric hash",
		FetchMatches:      "fetch matches",
		SymmetricSemiJoin: "symmetric semi-join",
		BloomJoin:         "bloom filter",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
