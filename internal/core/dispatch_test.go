package core

import (
	"sync"
	"testing"
	"time"

	"pier/internal/env"
)

// TestShardedDispatchKeepsPerQueryFIFO hammers a 4-shard engine with
// interleaved result frames for several queries from a producer
// goroutine while the race detector watches: every query's tuples
// must reach its callback in exactly the order its frames were
// enqueued, because all of a query's tasks hash to one shard and each
// shard runs its queue FIFO. (Run with -race: this test is as much a
// data-race probe of the collector locking as an ordering check.)
func TestShardedDispatchKeepsPerQueryFIFO(t *testing.T) {
	const queries = 8
	const perQuery = 500

	se := &sinkEnv{}
	eng := &Engine{
		env:        se,
		cfg:        DefaultConfig(),
		collectors: make(map[uint64]*collector),
		execs:      make(map[uint64]*exec),
	}
	eng.dispatch = newDispatcher(eng, 4)

	var mu sync.Mutex
	got := make(map[uint64][]int64)
	for q := uint64(1); q <= queries; q++ {
		qid := q
		eng.putCollector(qid, &collector{
			fn: func(tu *Tuple, w int) {
				seq := tu.Vals[0].(int64)
				mu.Lock()
				got[qid] = append(got[qid], seq)
				mu.Unlock()
			},
			plan:   &Plan{},
			counts: make(map[int]int),
			credit: make(map[env.Addr]*senderCredit),
			start:  se.Now(),
		})
	}

	// One producer, like the transport event loop: frames for all
	// queries interleaved. The shards drain concurrently.
	for i := 0; i < perQuery; i++ {
		for q := uint64(1); q <= queries; q++ {
			rm := getResultMsg()
			rm.ID = q
			rm.Window = 0
			rm.Tuples = append(rm.Tuples, &Tuple{Rel: "r", Vals: []Value{int64(i)}})
			if !eng.HandleMessage("peer-1", rm) {
				t.Fatal("resultMsg not claimed")
			}
		}
	}
	eng.Close() // drains every shard queue before returning

	for q := uint64(1); q <= queries; q++ {
		seqs := got[q]
		if len(seqs) != perQuery {
			t.Fatalf("query %d: %d tuples delivered, want %d", q, len(seqs), perQuery)
		}
		for i, s := range seqs {
			if s != int64(i) {
				t.Fatalf("query %d: tuple %d arrived out of order (seq %d)", q, i, s)
			}
		}
	}
}

// TestInlineDispatchRunsOnCaller pins the simulator's contract: with
// one shard there are no goroutines and enqueue executes the task
// before returning, so delivery order is execution order.
func TestInlineDispatchRunsOnCaller(t *testing.T) {
	se := &sinkEnv{}
	eng := &Engine{
		env:        se,
		cfg:        DefaultConfig(),
		collectors: make(map[uint64]*collector),
		execs:      make(map[uint64]*exec),
	}
	eng.dispatch = newDispatcher(eng, 1)
	if !eng.dispatch.inline() {
		t.Fatal("single-shard dispatcher not inline")
	}

	ran := false
	eng.putCollector(3, &collector{
		fn:     func(*Tuple, int) { ran = true },
		plan:   &Plan{},
		counts: make(map[int]int),
		credit: make(map[env.Addr]*senderCredit),
		start:  se.Now(),
	})
	rm := getResultMsg()
	rm.ID = 3
	rm.Tuples = append(rm.Tuples, &Tuple{Rel: "r", Vals: []Value{int64(0)}})
	eng.HandleMessage("peer-1", rm)
	if !ran {
		t.Fatal("inline dispatch did not run the callback synchronously")
	}
	eng.Close()
}

// TestDispatchCloseDrains verifies Close runs already-queued work
// before stopping and drops work enqueued after.
func TestDispatchCloseDrains(t *testing.T) {
	se := &sinkEnv{}
	eng := &Engine{
		env:        se,
		cfg:        DefaultConfig(),
		collectors: make(map[uint64]*collector),
		execs:      make(map[uint64]*exec),
	}
	eng.dispatch = newDispatcher(eng, 2)

	var mu sync.Mutex
	n := 0
	eng.putCollector(1, &collector{
		fn: func(*Tuple, int) {
			mu.Lock()
			n++
			mu.Unlock()
			time.Sleep(time.Millisecond) // keep the queue nonempty at Close
		},
		plan:   &Plan{},
		counts: make(map[int]int),
		credit: make(map[env.Addr]*senderCredit),
		start:  se.Now(),
	})
	for i := 0; i < 50; i++ {
		rm := getResultMsg()
		rm.ID = 1
		rm.Tuples = append(rm.Tuples, &Tuple{Rel: "r", Vals: []Value{int64(i)}})
		eng.HandleMessage("peer-1", rm)
	}
	eng.Close()
	mu.Lock()
	drained := n
	mu.Unlock()
	if drained != 50 {
		t.Fatalf("Close drained %d/50 queued tasks", drained)
	}
	// After Close, enqueue must drop, not hang or panic.
	rm := getResultMsg()
	rm.ID = 1
	rm.Tuples = append(rm.Tuples, &Tuple{Rel: "r", Vals: []Value{int64(99)}})
	eng.HandleMessage("peer-1", rm)
	mu.Lock()
	after := n
	mu.Unlock()
	if after != 50 {
		t.Fatalf("post-Close enqueue ran: %d", after)
	}
}
