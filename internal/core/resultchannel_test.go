package core

// Result-channel and collector-lifecycle tests. These run the real
// engine over the discrete-event simulator — the same mini-stack
// pier.buildNode assembles (CAN router, provider, engine), without the
// root package's extras — so credit flow, stall refresh, window
// clamping, and stop-flush semantics are exercised over actual
// (fault-injectable) message delivery.

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/core/bloom"
	"pier/internal/dht/can"
	"pier/internal/dht/provider"
	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/simnet"
	"pier/internal/topology"
)

type harness struct {
	net     *simnet.Network
	engines []*Engine
	provs   []*provider.Provider
	sm      *can.SpaceMap
}

func newHarness(n int, seed int64, cfg Config) *harness {
	h := &harness{net: simnet.New(topology.NewFullMesh(), seed)}
	var routers []*can.Router
	for i := 0; i < n; i++ {
		e := h.net.AddNode()
		rt := can.New(e, can.DefaultConfig())
		prov := provider.New(e, rt, provider.DefaultConfig())
		eng := New(e, prov, cfg)
		e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
			if rt.HandleMessage(from, m) {
				return
			}
			if prov.HandleMessage(from, m) {
				return
			}
			eng.HandleMessage(from, m)
		}))
		routers = append(routers, rt)
		h.engines = append(h.engines, eng)
		h.provs = append(h.provs, prov)
	}
	h.sm = can.Bootstrap(routers, seed^0x51ca90)
	return h
}

// load stores a tuple directly at the node owning (ns, rid) — like
// pier.SimNetwork.Load; an item parked anywhere else would be handed
// off to its owner once events run, racing the query's snapshot scan.
func (h *harness) load(ns, rid string, iid int64, t *Tuple) {
	h.provs[h.sm.OwnerOf(ns, rid)].StoreLocal(
		&storage.Item{Namespace: ns, ResourceID: rid, InstanceID: iid, Payload: t})
}

// ridsOwnedBy generates n distinct resourceIDs of namespace ns that
// hash to node i, so a test can park a whole relation on one chosen
// sender.
func (h *harness) ridsOwnedBy(i int, ns string, n int) []string {
	var out []string
	for c := 0; len(out) < n; c++ {
		rid := fmt.Sprintf("r%d", c)
		if h.sm.OwnerOf(ns, rid) == i {
			out = append(out, rid)
		}
	}
	return out
}

func scanPlan(ns string, ttl time.Duration) *Plan {
	return &Plan{Tables: []TableRef{{NS: ns, RIDCol: 0}}, TTL: ttl}
}

func TestLateResultAfterTTLCloseIgnored(t *testing.T) {
	h := newHarness(2, 91, DefaultConfig())
	h.load("T", "1", 1, &Tuple{Rel: "T", Vals: []Value{int64(1)}})

	got := 0
	id, err := h.engines[0].Run(scanPlan("T", 5*time.Second), func(*Tuple, int) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	h.net.RunFor(3 * time.Second)
	if got != 1 {
		t.Fatalf("got %d results before TTL", got)
	}
	// TTL passes: the collector closes.
	h.net.RunFor(10 * time.Second)
	if h.engines[0].OpenCollectors() != 0 {
		t.Fatal("collector still open after TTL")
	}
	// A straggler frame for the closed query must be consumed quietly:
	// no panic, no callback, still claimed as an engine message.
	late := &resultMsg{ID: id, Window: 0, Tuples: []*Tuple{{Rel: "T", Vals: []Value{int64(9)}}}}
	if !h.engines[0].HandleMessage("sim:1", late) {
		t.Fatal("late resultMsg not claimed by the engine")
	}
	if got != 1 {
		t.Fatalf("late frame reached the callback: got %d", got)
	}
	// Same for a late credit grant with no live executor behind it.
	if !h.engines[1].HandleMessage("sim:0", &creditMsg{ID: id, Limit: 1 << 40}) {
		t.Fatal("late creditMsg not claimed by the engine")
	}
}

func TestCancelMidStreamFlushesBufferExactlyOnce(t *testing.T) {
	// A huge batch size and a long flush interval park every scanned
	// tuple in the executor's result buffer; cancel must flush it
	// exactly once (stop is reachable twice: cancel multicast now, TTL
	// timer later).
	cfg := DefaultConfig()
	cfg.ResultBatch = 10_000
	cfg.ResultFlushInterval = time.Hour
	cfg.ResultCredit = -1
	h := newHarness(1, 92, cfg)
	const rows = 25
	for i := 0; i < rows; i++ {
		h.load("T", fmt.Sprint(i), int64(i), &Tuple{Rel: "T", Vals: []Value{int64(i)}})
	}
	id, err := h.engines[0].Run(scanPlan("T", time.Minute), func(*Tuple, int) {})
	if err != nil {
		t.Fatal(err)
	}
	h.net.RunFor(2 * time.Second)
	if qs := h.engines[0].QueryStats(); qs.ResultBatches != 0 {
		t.Fatalf("buffer flushed prematurely: %d frames", qs.ResultBatches)
	}
	h.engines[0].Cancel(id)
	h.net.RunFor(5 * time.Second)
	qs := h.engines[0].QueryStats()
	if qs.ResultBatches != 1 || qs.ResultTuples != rows {
		t.Fatalf("stop-flush: %d frames / %d tuples, want 1 / %d", qs.ResultBatches, qs.ResultTuples, rows)
	}
	// The TTL timer fires on the already-stopped exec: no second flush.
	h.net.RunFor(2 * time.Minute)
	if qs := h.engines[0].QueryStats(); qs.ResultBatches != 1 {
		t.Fatalf("result buffer flushed %d times, want exactly once", qs.ResultBatches)
	}
}

func TestCreditStallRefreshSurvivesLostGrants(t *testing.T) {
	// Node 1 holds 100 rows; every grant from the initiator (0 -> 1)
	// is lost. The sender must exhaust its bootstrap window, stall,
	// and make progress one self-refreshed window per CreditRefresh —
	// delivering everything instead of deadlocking.
	cfg := DefaultConfig()
	cfg.ResultBatch = 5
	cfg.ResultCredit = 10
	cfg.ResultFlushInterval = 100 * time.Millisecond
	cfg.CreditRefresh = 2 * time.Second
	h := newHarness(2, 93, cfg)
	const rows = 100
	for i, rid := range h.ridsOwnedBy(1, "T", rows) {
		h.load("T", rid, int64(i), &Tuple{Rel: "T", Vals: []Value{int64(i)}})
	}
	got := 0
	if _, err := h.engines[0].Run(scanPlan("T", 2*time.Minute), func(*Tuple, int) { got++ }); err != nil {
		t.Fatal(err)
	}
	// Let the query multicast cross 0->1 (loss rolls at send time),
	// then cut the grant path for the rest of the run: every further
	// creditMsg from the initiator is lost.
	h.net.RunFor(250 * time.Millisecond)
	h.net.SetLinkFault(0, 1, 1.0, 0)
	h.net.RunFor(time.Minute)

	if got != rows {
		t.Fatalf("delivered %d/%d rows with grants lost", got, rows)
	}
	qs := h.engines[1].QueryStats()
	if qs.CreditStalls == 0 {
		t.Fatal("sender never stalled despite a 10-tuple window and lost grants")
	}
	// Every window beyond the bootstrap one was opened by stall
	// refresh: ceil((rows-credit)/credit) = 9 episodes.
	if qs.CreditStalls < 5 {
		t.Fatalf("only %d stall episodes for %d rows over a %d window", qs.CreditStalls, rows, cfg.ResultCredit)
	}
}

func TestCreditGrantsReplenishWithoutTimerStalls(t *testing.T) {
	// Lossless run with a window much smaller than the result set: the
	// collector's replenishment grants must keep the sender moving and
	// every stall must resolve via a grant, not the refresh timer —
	// i.e. delivery finishes far faster than stalls × CreditRefresh.
	cfg := DefaultConfig()
	cfg.ResultBatch = 5
	cfg.ResultCredit = 10
	cfg.ResultFlushInterval = 50 * time.Millisecond
	cfg.CreditRefresh = time.Hour // a timer-resolved stall would blow the deadline below
	h := newHarness(2, 94, cfg)
	const rows = 200
	for i, rid := range h.ridsOwnedBy(1, "T", rows) {
		h.load("T", rid, int64(i), &Tuple{Rel: "T", Vals: []Value{int64(i)}})
	}
	got := 0
	if _, err := h.engines[0].Run(scanPlan("T", time.Minute), func(*Tuple, int) { got++ }); err != nil {
		t.Fatal(err)
	}
	h.net.RunFor(30 * time.Second)
	if got != rows {
		t.Fatalf("delivered %d/%d rows", got, rows)
	}
	if qs := h.engines[0].QueryStats(); qs.CreditGrants == 0 {
		t.Fatal("collector never issued a replenishment grant")
	}
	if qs := h.engines[1].QueryStats(); qs.ResultTuples != rows {
		t.Fatalf("sender shipped %d tuples, want %d", qs.ResultTuples, rows)
	}
}

func TestHostileWindowCannotCloseObserverAccounting(t *testing.T) {
	// Regression: a single resultMsg with a huge window used to jump
	// c.maxW, and reportWindows then closed every real window's
	// observer accounting permanently. The clamp drops windows beyond
	// what the plan's Every and the elapsed time allow.
	cfg := DefaultConfig()
	h := newHarness(1, 95, cfg)
	eng := h.engines[0]

	reported := map[int]int{}
	eng.SetObserver(func(_ *Plan, w, n int) { reported[w] = n })

	plan := &Plan{
		Tables:     []TableRef{{NS: "T", RIDCol: 0}},
		Continuous: true,
		Every:      10 * time.Second,
		Windows:    3,
		AggWait:    2 * time.Second,
		Aggs:       []Aggregate{{Kind: Count, Col: -1}},
		TTL:        time.Minute,
	}
	got := 0
	id, err := eng.Run(plan, func(*Tuple, int) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	h.net.RunFor(time.Second)

	// Hostile frame claiming a window far in the future.
	hostile := &resultMsg{ID: id, Window: 1 << 30, Tuples: []*Tuple{{Rel: "x", Vals: []Value{int64(0)}}}}
	if !eng.HandleMessage("sim:666", hostile) {
		t.Fatal("resultMsg not claimed")
	}
	if got != 0 {
		t.Fatal("hostile future-window tuples reached the application callback")
	}

	// Arrivals across three windows; each window's aggregate must
	// still reach the callback and the observer.
	for w := 0; w < 3; w++ {
		h.provs[0].Put("T", fmt.Sprintf("r%d", w), int64(w), &Tuple{Rel: "T", Vals: []Value{int64(w)}}, time.Minute)
		h.net.RunFor(10 * time.Second)
	}
	h.net.RunFor(2 * time.Minute) // TTL: collector closes, final windows report

	if got == 0 {
		t.Fatal("no real results delivered after the hostile frame")
	}
	for w := 0; w < 3; w++ {
		if reported[w] == 0 {
			t.Fatalf("window %d never reported to the observer (reported: %v)", w, reported)
		}
	}
}

func TestNegativeWindowRejected(t *testing.T) {
	h := newHarness(1, 96, DefaultConfig())
	got := 0
	id, err := h.engines[0].Run(scanPlan("T", time.Minute), func(*Tuple, int) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	bad := &resultMsg{ID: id, Window: -3, Tuples: []*Tuple{{Rel: "x", Vals: []Value{int64(1)}}}}
	h.engines[0].HandleMessage("sim:666", bad)
	if got != 0 {
		t.Fatal("negative-window tuples reached the application callback")
	}
}

func TestBloomMismatchFallsBackToUnprunedRehash(t *testing.T) {
	// Regression: emitBloom used to skip a peer's filter when Union
	// failed on mismatched geometry. If the hostile filter sorted
	// first it became the combine seed and every honest filter was
	// skipped — pruning away all real join keys: silently dropped
	// rows. The fix degrades the combine to a saturated filter, so the
	// join must now produce the full reference result, and count the
	// fallback.
	cfg := DefaultConfig()
	cfg.ResultFlushInterval = 50 * time.Millisecond
	h := newHarness(4, 97, cfg)

	// R rows join S rows on column 0, spread by the DHT hash.
	const keys = 12
	for i := 0; i < keys; i++ {
		h.load("R", fmt.Sprint(i), int64(i), &Tuple{Rel: "R", Vals: []Value{int64(i), "r"}})
		h.load("S", fmt.Sprint(i), int64(i), &Tuple{Rel: "S", Vals: []Value{int64(i), "s"}})
	}
	plan := &Plan{
		Tables: []TableRef{
			{NS: "R", JoinCols: []int{0}, RIDCol: 0},
			{NS: "S", JoinCols: []int{0}, RIDCol: 0},
		},
		Strategy:  BloomJoin,
		TTL:       time.Minute,
		BloomWait: 3 * time.Second,
	}
	got := 0
	id, err := h.engines[0].Run(plan, func(*Tuple, int) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	// Before the BloomWait fires, plant a hostile mis-sized bloomPut at
	// side 0's collector, with an instanceID that sorts first so the
	// pre-fix code would have seeded the combine with it.
	h.net.RunFor(time.Second)
	ns := fmt.Sprintf("q%x.bloom0", id)
	owner := h.sm.OwnerOf(ns, "or")
	h.provs[owner].StoreLocal(&storage.Item{
		Namespace: ns, ResourceID: "or", InstanceID: 0,
		Payload: &bloomPut{Side: 0, F: bloom.New(64, 2)},
	})
	h.net.RunFor(30 * time.Second)

	if got != keys {
		t.Fatalf("bloom join with hostile filter returned %d/%d rows", got, keys)
	}
	fallbacks := uint64(0)
	for _, eng := range h.engines {
		fallbacks += eng.QueryStats().BloomFallbacks
	}
	if fallbacks == 0 {
		t.Fatal("geometry mismatch not counted as a bloom fallback")
	}
}

func TestLevel1RidFormat(t *testing.T) {
	// Pins the level-1 (intermediate aggregation site) resourceID
	// format: "<window>|<group>\x1e<bucket>". combineLevel1 splits on
	// the 0x1e record separator and emitGroups skips rids containing
	// it; if the separator drifts, hierarchical aggregation silently
	// double- or zero-counts.
	cfg := DefaultConfig()
	h := newHarness(1, 98, cfg)
	eng := h.engines[0]

	plan := &Plan{
		Tables:    []TableRef{{NS: "T", RIDCol: 0}},
		GroupBy:   []int{1},
		Aggs:      []Aggregate{{Kind: Count, Col: -1}},
		AggFanout: 4,
		TTL:       time.Minute,
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	ex := newExec(eng, &queryMsg{ID: 7, Initiator: "sim:0", Plan: plan})
	ex.aggFeed(&Tuple{Rel: "T", Vals: []Value{int64(1), "g1"}}, 0)
	ex.flushPartials()
	h.net.RunFor(time.Second)

	want := fmt.Sprintf("0|g1\x1e%d", eng.nodeIID%int64(plan.AggFanout))
	found := false
	h.provs[0].Scan(ex.aggNS, func(it *storage.Item) bool {
		if it.ResourceID != want {
			t.Fatalf("level-1 rid %q, want %q", it.ResourceID, want)
		}
		found = true
		return true
	})
	if !found {
		t.Fatal("no level-1 partial stored")
	}
}

func TestOneTupleCreditWindowStillGrantDriven(t *testing.T) {
	// Degenerate window: ResultCredit=1. Every tuple exhausts the
	// window, so delivery must be carried by replenishment grants (one
	// round trip per tuple), never by the stall-refresh timer — the
	// timer here is set far beyond the run's deadline.
	cfg := DefaultConfig()
	cfg.ResultBatch = 4
	cfg.ResultCredit = 1
	cfg.ResultFlushInterval = 50 * time.Millisecond
	cfg.CreditRefresh = time.Hour
	h := newHarness(2, 99, cfg)
	const rows = 20
	for i, rid := range h.ridsOwnedBy(1, "T", rows) {
		h.load("T", rid, int64(i), &Tuple{Rel: "T", Vals: []Value{int64(i)}})
	}
	got := 0
	if _, err := h.engines[0].Run(scanPlan("T", time.Minute), func(*Tuple, int) { got++ }); err != nil {
		t.Fatal(err)
	}
	h.net.RunFor(30 * time.Second)
	if got != rows {
		t.Fatalf("delivered %d/%d rows with a 1-tuple credit window", got, rows)
	}
	if qs := h.engines[0].QueryStats(); qs.CreditGrants < rows-1 {
		t.Fatalf("only %d grants for %d one-tuple windows", qs.CreditGrants, rows)
	}
}
