package core

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pier/internal/core/bloom"
	"pier/internal/env"
	"pier/internal/trace"
	"pier/internal/wire"
	"pier/internal/wire/wiretest"
)

func randTuple(r *rand.Rand) *Tuple {
	t := &Tuple{Rel: wiretest.Str(r, 8), Pad: r.Intn(2048)}
	if n := r.Intn(6); n > 0 {
		t.Vals = make([]Value, n)
		for i := range t.Vals {
			t.Vals[i] = wiretest.Value(r)
		}
	}
	return t
}

func randFilter(r *rand.Rand) *bloom.Filter {
	f := bloom.New(64+r.Intn(512), 1+r.Intn(6))
	for i := 0; i < r.Intn(64); i++ {
		f.Add(wiretest.Str(r, 10))
	}
	return f
}

func randAggState(r *rand.Rand) *AggState {
	s := &AggState{
		Count: int64(r.Intn(1000)),
		SumI:  wiretest.SmallInt(r),
		Float: r.Intn(2) == 0,
	}
	if s.Float {
		s.SumF = r.NormFloat64()
	}
	if r.Intn(2) == 0 {
		s.Seen = true
		s.MinV = wiretest.Value(r)
		s.MaxV = wiretest.Value(r)
	}
	return s
}

func randExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		if r.Intn(2) == 0 {
			return &Col{Idx: r.Intn(16)}
		}
		return &Const{V: wiretest.Value(r)}
	}
	switch r.Intn(6) {
	case 0:
		return &Cmp{Op: CmpOp(r.Intn(6)), L: randExpr(r, depth-1), R: randExpr(r, depth-1)}
	case 1:
		return &And{L: randExpr(r, depth-1), R: randExpr(r, depth-1)}
	case 2:
		return &Or{L: randExpr(r, depth-1), R: randExpr(r, depth-1)}
	case 3:
		return &Not{E: randExpr(r, depth-1)}
	case 4:
		return &Arith{Op: ArithOp(r.Intn(5)), L: randExpr(r, depth-1), R: randExpr(r, depth-1)}
	default:
		n := r.Intn(3)
		args := make([]Expr, 0, n)
		for i := 0; i < n; i++ {
			args = append(args, randExpr(r, depth-1))
		}
		if len(args) == 0 {
			args = nil
		}
		return &Call{Name: wiretest.Str(r, 8), Args: args}
	}
}

func randPlan(r *rand.Rand) *Plan {
	p := &Plan{
		Strategy:    Strategy(r.Intn(4)),
		TTL:         time.Duration(r.Int31()),
		BloomWait:   time.Duration(r.Int31()),
		AggWait:     time.Duration(r.Int31()),
		BloomBits:   r.Intn(1 << 16),
		BloomHashes: r.Intn(8),
	}
	nt := 1 + r.Intn(2)
	p.Tables = make([]TableRef, nt)
	for i := range p.Tables {
		tr := &p.Tables[i]
		tr.NS = wiretest.Str(r, 10)
		if r.Intn(2) == 0 {
			tr.Filter = randExpr(r, 2)
		}
		tr.RIDCol = r.Intn(8) - 1
		if r.Intn(3) == 0 {
			lo := r.Uint64()
			tr.IndexScan = &IndexRangeScan{Index: wiretest.Str(r, 8), Lo: lo, Hi: lo + uint64(r.Int63())}
		}
		if n := r.Intn(4); n > 0 {
			tr.Project = make([]int, n)
			tr.JoinCols = make([]int, n)
			for j := 0; j < n; j++ {
				tr.Project[j] = r.Intn(8)
				tr.JoinCols[j] = r.Intn(8)
			}
		}
	}
	if r.Intn(2) == 0 {
		p.PostFilter = randExpr(r, 2)
	}
	if n := r.Intn(3); n > 0 {
		p.GroupBy = make([]int, n)
		p.Aggs = make([]Aggregate, n)
		for i := 0; i < n; i++ {
			p.GroupBy[i] = r.Intn(8)
			p.Aggs[i] = Aggregate{Kind: AggKind(r.Intn(5)), Col: r.Intn(8) - 1}
		}
		if r.Intn(2) == 0 {
			p.Having = randExpr(r, 1)
		}
	}
	if n := r.Intn(3); n > 0 {
		p.Output = make([]Expr, n)
		for i := range p.Output {
			p.Output[i] = randExpr(r, 1)
		}
	}
	p.ComputeNodes = r.Intn(64)
	p.AggFanout = r.Intn(8)
	p.AutoStrategy = r.Intn(2) == 0
	p.AutoAccess = r.Intn(2) == 0
	p.Trace = r.Intn(2) == 0
	if r.Intn(4) == 0 {
		p.Continuous = true
		p.Every = time.Duration(1 + r.Int31())
		p.Windows = r.Intn(10)
	}
	return p
}

// TestWireRoundTrip is the codec property test for every message type
// the query processor registers: random instances survive
// decode(encode(m)) bit-exactly, agree with the gob fallback, and obey
// the documented size relation to WireSize().
func TestWireRoundTrip(t *testing.T) {
	wiretest.RoundTrip(t, 1, 200, []wiretest.Gen{
		{Name: "queryMsg", Make: func(r *rand.Rand) env.Message {
			return &queryMsg{ID: r.Uint64(), Initiator: wiretest.ShortAddr(r), Trace: r.Intn(2) == 0, Plan: randPlan(r)}
		}},
		{Name: "resultMsg", Make: func(r *rand.Rand) env.Message {
			m := &resultMsg{ID: r.Uint64(), Window: r.Intn(100)}
			if n := r.Intn(5); n > 0 {
				m.Tuples = make([]*Tuple, n)
				for i := range m.Tuples {
					m.Tuples[i] = randTuple(r)
				}
			}
			if n := r.Intn(4); n > 0 {
				m.Spans = make([]trace.Span, n)
				for i := range m.Spans {
					m.Spans[i] = trace.Span{
						Stage: trace.Stage(r.Intn(trace.NumStages)),
						Node:  wiretest.ShortAddr(r),
						Start: int64(r.Int31()),
						Dur:   time.Duration(r.Int31()),
						Note:  wiretest.Str(r, 12),
						Seq:   uint32(r.Intn(1 << 10)),
					}
				}
				m.SpanDrops = uint64(r.Intn(16))
			}
			return m
		}},
		{Name: "sideTuple", Make: func(r *rand.Rand) env.Message {
			return &sideTuple{Side: r.Intn(2), T: randTuple(r)}
		}},
		{Name: "miniTuple", Make: func(r *rand.Rand) env.Message {
			return &miniTuple{Side: r.Intn(2), RID: wiretest.Str(r, 16), Key: wiretest.Str(r, 16)}
		}},
		{Name: "bloomPut", Make: func(r *rand.Rand) env.Message {
			return &bloomPut{Side: r.Intn(2), F: randFilter(r)}
		}},
		{Name: "bloomDist", Make: func(r *rand.Rand) env.Message {
			return &bloomDist{ID: r.Uint64(), Side: r.Intn(2), F: randFilter(r)}
		}},
		{Name: "partialAgg", Make: func(r *rand.Rand) env.Message {
			m := &partialAgg{Window: r.Intn(100)}
			if n := r.Intn(3); n > 0 {
				m.Group = make([]Value, n)
				for i := range m.Group {
					m.Group[i] = wiretest.Value(r)
				}
			}
			if n := r.Intn(4); n > 0 {
				m.States = make([]*AggState, n)
				for i := range m.States {
					m.States[i] = randAggState(r)
				}
			}
			return m
		}},
		{Name: "cancelMsg", Make: func(r *rand.Rand) env.Message {
			return &cancelMsg{ID: r.Uint64()}
		}},
		{Name: "creditMsg", Make: func(r *rand.Rand) env.Message {
			return &creditMsg{ID: r.Uint64(), Limit: int64(r.Uint64() >> 1)}
		}},
		{Name: "Tuple", Make: func(r *rand.Rand) env.Message { return randTuple(r) }},
		{Name: "Plan", Make: func(r *rand.Rand) env.Message { return randPlan(r) }},
		{Name: "AggState", Make: func(r *rand.Rand) env.Message { return randAggState(r) }},
		{Name: "Filter", Make: func(r *rand.Rand) env.Message { return randFilter(r) }},
		{Name: "Expr", Make: func(r *rand.Rand) env.Message { return randExpr(r, 3) }},
	})
}

// TestWireExtremeValues covers the int64/float64 extremes the bounded
// property generators avoid (no size relation is asserted — WireSize
// models int64 values as 9 bytes while a full-range zigzag varint plus
// tag can take 11).
func TestWireExtremeValues(t *testing.T) {
	msgs := []env.Message{
		&Tuple{Rel: "r", Vals: []Value{int64(math.MinInt64), int64(math.MaxInt64), math.Inf(1), "", nil}},
		&AggState{Count: math.MaxInt64, SumI: math.MinInt64, SumF: math.Inf(-1), Seen: true, MinV: int64(math.MinInt64), MaxV: int64(math.MaxInt64)},
		&miniTuple{Side: 1, RID: "", Key: ""},
		&queryMsg{ID: math.MaxUint64, Initiator: "203.0.113.7:65535", Trace: true, Plan: &Plan{}},
		&resultMsg{ID: 1, SpanDrops: math.MaxUint64, Spans: []trace.Span{
			{Stage: trace.StageCollect, Node: "n", Start: math.MinInt64, Dur: math.MaxInt64, Seq: math.MaxUint32},
		}},
	}
	for i, m := range msgs {
		b, err := wire.Marshal(m)
		if err != nil {
			t.Fatalf("#%d: Marshal: %v", i, err)
		}
		got, err := wire.Unmarshal(b)
		if err != nil {
			t.Fatalf("#%d: Unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("#%d: round trip\n got %#v\nwant %#v", i, got, m)
		}
	}
}

// TestHostileFieldValuesRejected: values a correct sender can never
// produce but whose acceptance would panic or wedge the executor —
// join sides outside {0, 1} (used to index plan.Tables), Bloom filters
// with a zero-length bit array (divide by zero in Test/Add) or an
// absurd hash count (CPU wedge) — must fail the frame at decode.
func TestHostileFieldValuesRejected(t *testing.T) {
	reject := func(name string, m env.Message, fix func(b []byte) []byte) {
		b, err := wire.Marshal(m)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", name, err)
		}
		if fix != nil {
			b = fix(b)
		}
		if _, err := wire.Unmarshal(b); err == nil {
			t.Errorf("%s: hostile frame accepted", name)
		}
	}
	reject("sideTuple side=7", nil, func([]byte) []byte {
		b, _ := wire.Marshal(&sideTuple{Side: 0, T: &Tuple{Rel: "r"}})
		b[1] = 14 // zigzag(7) overwrites the side varint
		return b
	})
	reject("miniTuple side=-1", nil, func([]byte) []byte {
		b, _ := wire.Marshal(&miniTuple{Side: 0})
		b[1] = 1 // zigzag(-1)
		return b
	})
	reject("bloom filter K=0", &bloomPut{Side: 0, F: &bloom.Filter{K: 0, Bits: []uint64{1}}}, nil)
	reject("bloom filter K=2^60", &bloomPut{Side: 0, F: &bloom.Filter{K: 1 << 60, Bits: []uint64{1}}}, nil)
	reject("bloom filter empty bits", &bloomDist{ID: 1, Side: 1, F: &bloom.Filter{K: 4}}, nil)
	reject("creditMsg negative limit", &creditMsg{ID: 1, Limit: -5}, nil)
}

// TestNilRequiredFieldsRejected: tag 0 in handler-dereferenced
// positions (query plans, rehash tuples, filters, expression children)
// must fail decode instead of producing a message that nil-derefs on
// the event loop.
func TestNilRequiredFieldsRejected(t *testing.T) {
	cases := map[string][]byte{
		"queryMsg nil plan":   {tagQueryMsg, 1, 1, 'a', 0, 0},
		"sideTuple nil tuple": {tagSideTuple, 0, 0},
		"bloomPut nil filter": {tagBloomPut, 0, 0},
		"not nil child":       {tagExprNot, 0},
		"cmp nil right":       {tagExprCmp, 0, tagExprCol, 2, 0},
	}
	for name, b := range cases {
		if _, err := wire.Unmarshal(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestNestingBombFailsCleanly decodes a frame that is nothing but
// nested NOT-expression tags: each byte recurses Decoder.Message, so
// without wire's depth limit this overflows the stack and kills the
// process instead of dropping the connection.
func TestNestingBombFailsCleanly(t *testing.T) {
	bomb := make([]byte, 1<<20)
	for i := range bomb {
		bomb[i] = 21 // tagExprNot: decode recurses immediately
	}
	if _, err := wire.Unmarshal(bomb); err == nil {
		t.Fatal("nesting bomb accepted")
	}
}

// BenchmarkWireCodec measures encode+decode of representative PIER
// messages, binary codec vs the gob baseline. Gob pays its per-stream
// type dictionary on every frame here, exactly as the pre-batching
// transport did (one encoder per peer, but the dominant cost is the
// reflection walk per message).
func BenchmarkWireCodec(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	msgs := map[string]env.Message{
		"miniTuple":  &miniTuple{Side: 1, RID: "resource-4711", Key: "join-key-42"},
		"sideTuple":  &sideTuple{Side: 0, T: &Tuple{Rel: "R", Vals: []Value{int64(42), "payload", 3.14}, Pad: 1024}},
		"partialAgg": &partialAgg{Window: 3, Group: []Value{"group-a"}, States: []*AggState{randAggState(r)}},
		"queryMsg":   &queryMsg{ID: 99, Initiator: "203.0.113.7:4711", Plan: randPlan(r)},
	}
	for name, m := range msgs {
		b.Run(name+"/binary", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf, err := wire.Marshal(m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := wire.Unmarshal(buf); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(buf)))
			}
		})
		b.Run(name+"/gob", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				envelope := struct{ M env.Message }{M: m}
				if err := gob.NewEncoder(&buf).Encode(&envelope); err != nil {
					b.Fatal(err)
				}
				var out struct{ M env.Message }
				if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(buf.Len()))
			}
		})
	}
}
