package core

// The tuple-path measurement hook: the experiments package (and
// pier-bench) compare the result-frame codec disciplines through
// exported API without reaching into the engine's unexported message
// types. Two disciplines are measured over the same frame:
//
//   - baseline: the pre-pooling path — every frame Marshal-ed into a
//     fresh buffer and Unmarshal-ed by a fresh decoder with no intern
//     table, the decoded shell left for the GC.
//   - pooled: the shipping path — frames appended to a reused scratch
//     buffer (what realnet's batch writer does) and decoded by a
//     persistent interned decoder into pooled shells that are recycled
//     after use.
//
// Allocation counts per frame are deterministic for a pinned frame
// shape, so they can gate in CI; tuple rates are wall-clock and are
// reported for trajectory only.

import (
	"fmt"
	"runtime"
	"time"

	"pier/internal/wire"
)

// TuplePathCost is one measured codec discipline of the result-frame
// hot path.
type TuplePathCost struct {
	Pooled         bool // pooled+interned shipping path, vs per-frame Marshal/Unmarshal
	TuplesPerFrame int
	FrameBytes     int // encoded size of the measured frame
	// EncodeAllocs and DecodeAllocs are heap allocations per frame,
	// measured like testing.AllocsPerRun (GOMAXPROCS pinned to 1).
	EncodeAllocs float64
	DecodeAllocs float64
	// EncodeTuplesPerSec and DecodeTuplesPerSec are wall-clock rates:
	// they track host load as well as code, so they are informational.
	EncodeTuplesPerSec float64
	DecodeTuplesPerSec float64
}

// benchFrame builds the measured result frame: small-int and
// repeated-string columns exercise exactly the paths the pooled
// discipline optimizes (slab decode, string interning, pre-boxed
// values). Float and large-int columns pay one inherent interface-box
// allocation in both disciplines — Value is []any — so including them
// would dilute the comparison without distinguishing the disciplines.
func benchFrame(tuplesPerFrame int) *resultMsg {
	hosts := []string{"host-a", "host-b", "host-c", "host-d"}
	rm := &resultMsg{ID: 7}
	for i := 0; i < tuplesPerFrame; i++ {
		rm.Tuples = append(rm.Tuples, &Tuple{
			Rel:  "result",
			Vals: []Value{int64(i % 97), hosts[i%len(hosts)], "us-west", int64(i % 7)},
			Pad:  64,
		})
	}
	return rm
}

// MeasureTuplePath measures one codec discipline over a frame of
// tuplesPerFrame tuples, timing throughput over the given number of
// frame round-trips.
func MeasureTuplePath(tuplesPerFrame, frames int, pooled bool) (TuplePathCost, error) {
	rm := benchFrame(tuplesPerFrame)
	b, err := wire.Marshal(rm)
	if err != nil {
		return TuplePathCost{}, err
	}
	c := TuplePathCost{Pooled: pooled, TuplesPerFrame: tuplesPerFrame, FrameBytes: len(b)}

	var encode, decode func() error
	if pooled {
		scratch := make([]byte, 0, 2*len(b))
		encode = func() error {
			var err error
			scratch, err = wire.Append(scratch[:0], rm)
			return err
		}
		var dec wire.Decoder
		dec.SetIntern(wire.NewIntern(0))
		decode = func() error {
			dec.Reset(b)
			m := dec.Message()
			if err := dec.Err(); err != nil {
				return err
			}
			m.(*resultMsg).Recycle()
			return nil
		}
	} else {
		encode = func() error {
			_, err := wire.Marshal(rm)
			return err
		}
		decode = func() error {
			_, err := wire.Unmarshal(b)
			return err
		}
	}

	if c.EncodeAllocs, c.EncodeTuplesPerSec, err = measureOp(encode, tuplesPerFrame, frames); err != nil {
		return c, fmt.Errorf("encode: %w", err)
	}
	if c.DecodeAllocs, c.DecodeTuplesPerSec, err = measureOp(decode, tuplesPerFrame, frames); err != nil {
		return c, fmt.Errorf("decode: %w", err)
	}
	return c, nil
}

// measureOp warms f (validating it), counts its steady-state
// allocations per call, then times frames calls for the wall-clock
// tuple rate.
func measureOp(f func() error, tuplesPerFrame, frames int) (allocs, perSec float64, err error) {
	if err = f(); err != nil {
		return 0, 0, err
	}
	allocs = allocsPerRun(100, func() { _ = f() })
	start := time.Now()
	for i := 0; i < frames; i++ {
		_ = f()
	}
	if el := time.Since(start); el > 0 {
		perSec = float64(frames*tuplesPerFrame) / el.Seconds()
	}
	return allocs, perSec, nil
}

// allocsPerRun mirrors testing.AllocsPerRun without pulling the
// testing package into a non-test build: GOMAXPROCS is pinned to 1 for
// the duration so concurrent goroutines cannot pollute the malloc
// counter, and the average over runs smooths amortized growth (pool
// refills, map rehashes) into the steady-state figure.
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm outside the measurement
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	before := ms.Mallocs
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&ms)
	return float64(ms.Mallocs-before) / float64(runs)
}
