package core

// Binary wire codecs for the query processor's message vocabulary,
// mirroring the gob.Register calls in messages.go, tuple.go, expr.go,
// plan.go, and agg.go. Gob remains only as the fallback reference the
// codec tests compare against; the real transport encodes with these.

import (
	"pier/internal/core/bloom"
	"pier/internal/env"
	"pier/internal/trace"
	"pier/internal/wire"
)

// Wire tags owned by package core (see the tag table in package wire).
const (
	tagQueryMsg byte = 1 + iota
	tagResultMsg
	tagSideTuple
	tagMiniTuple
	tagBloomPut
	tagBloomDist
	tagPartialAgg
	tagTuple
	tagPlan
	tagAggState
	tagCancelMsg
	tagIndexScan
	tagCreditMsg
)

const (
	tagExprCol byte = 16 + iota
	tagExprConst
	tagExprCmp
	tagExprAnd
	tagExprOr
	tagExprNot
	tagExprArith
	tagExprCall
)

const tagBloomFilter byte = 24

func init() {
	wire.Register(tagQueryMsg, &queryMsg{},
		func(e *wire.Encoder, m env.Message) {
			q := m.(*queryMsg)
			e.Uvarint(q.ID)
			e.Addr(q.Initiator)
			e.Bool(q.Trace)
			e.Message(q.Plan)
		},
		func(d *wire.Decoder) env.Message {
			q := &queryMsg{ID: d.Uvarint(), Initiator: d.Addr(), Trace: d.Bool()}
			q.Plan = planField(d)
			return q
		})

	wire.Register(tagResultMsg, &resultMsg{},
		func(e *wire.Encoder, m env.Message) {
			r := m.(*resultMsg)
			e.Uvarint(r.ID)
			e.Int(r.Window)
			e.Len(len(r.Tuples))
			for _, t := range r.Tuples {
				e.Message(t)
			}
			e.Len(len(r.Spans))
			for i := range r.Spans {
				e.Message(&r.Spans[i])
			}
			e.Uvarint(r.SpanDrops)
		},
		func(d *wire.Decoder) env.Message {
			r := getResultMsg()
			r.ID = d.Uvarint()
			r.Window = d.Int()
			if n := d.Len(); n > 0 {
				// Slab decode: one []Tuple block and one shared []Value
				// block per frame instead of two allocations per tuple.
				// Pointers into the slab are taken only after it is fully
				// built — append may move it while it grows.
				slab := make([]Tuple, 0, wire.SliceCap(n))
				vals := make([]Value, 0, wire.SliceCap(4*n))
				for i := 0; i < n && d.Err() == nil; i++ {
					var t Tuple
					vals = decodeTupleInto(d, &t, vals)
					slab = append(slab, t)
				}
				for i := range slab {
					r.Tuples = append(r.Tuples, &slab[i])
				}
			}
			if n := d.Len(); n > 0 {
				r.Spans = make([]trace.Span, 0, wire.SliceCap(n))
				for i := 0; i < n && d.Err() == nil; i++ {
					if s := spanField(d); s != nil {
						r.Spans = append(r.Spans, *s)
					}
				}
			}
			r.SpanDrops = d.Uvarint()
			return r
		})

	wire.Register(tagSideTuple, &sideTuple{},
		func(e *wire.Encoder, m env.Message) {
			s := m.(*sideTuple)
			e.Int(s.Side)
			e.Message(s.T)
		},
		func(d *wire.Decoder) env.Message {
			return &sideTuple{Side: sideField(d), T: tupleField(d)}
		})

	wire.Register(tagMiniTuple, &miniTuple{},
		func(e *wire.Encoder, m env.Message) {
			t := m.(*miniTuple)
			e.Int(t.Side)
			e.String(t.RID)
			e.String(t.Key)
		},
		func(d *wire.Decoder) env.Message {
			return &miniTuple{Side: sideField(d), RID: d.String(), Key: d.String()}
		})

	wire.Register(tagBloomPut, &bloomPut{},
		func(e *wire.Encoder, m env.Message) {
			b := m.(*bloomPut)
			e.Int(b.Side)
			e.Message(b.F)
		},
		func(d *wire.Decoder) env.Message {
			return &bloomPut{Side: sideField(d), F: filterField(d)}
		})

	wire.Register(tagBloomDist, &bloomDist{},
		func(e *wire.Encoder, m env.Message) {
			b := m.(*bloomDist)
			e.Uvarint(b.ID)
			e.Int(b.Side)
			e.Message(b.F)
		},
		func(d *wire.Decoder) env.Message {
			return &bloomDist{ID: d.Uvarint(), Side: sideField(d), F: filterField(d)}
		})

	wire.Register(tagPartialAgg, &partialAgg{},
		func(e *wire.Encoder, m env.Message) {
			p := m.(*partialAgg)
			e.Int(p.Window)
			e.Len(len(p.Group))
			for _, v := range p.Group {
				e.Value(v)
			}
			e.Len(len(p.States))
			for _, s := range p.States {
				encodeAggState(e, s)
			}
		},
		func(d *wire.Decoder) env.Message {
			p := &partialAgg{Window: d.Int()}
			if n := d.Len(); n > 0 {
				p.Group = make([]Value, 0, wire.SliceCap(n))
				for i := 0; i < n && d.Err() == nil; i++ {
					p.Group = append(p.Group, d.Value())
				}
			}
			if n := d.Len(); n > 0 {
				p.States = make([]*AggState, 0, wire.SliceCap(n))
				for i := 0; i < n && d.Err() == nil; i++ {
					p.States = append(p.States, decodeAggState(d))
				}
			}
			return p
		})

	wire.Register(tagTuple, &Tuple{},
		func(e *wire.Encoder, m env.Message) {
			t := m.(*Tuple)
			e.String(t.Rel)
			e.Len(len(t.Vals))
			for _, v := range t.Vals {
				e.Value(v)
			}
			e.Int(t.Pad)
		},
		func(d *wire.Decoder) env.Message {
			t := &Tuple{Rel: d.String()}
			if n := d.Len(); n > 0 {
				t.Vals = make([]Value, 0, wire.SliceCap(n))
				for i := 0; i < n && d.Err() == nil; i++ {
					t.Vals = append(t.Vals, d.Value())
				}
			}
			t.Pad = d.Int()
			// Pad is a payload byte count; a crafted negative one yields a
			// negative WireSize and corrupts pad accounting through Concat.
			if d.Err() == nil && t.Pad < 0 {
				d.Fail("negative tuple pad")
			}
			return t
		})

	wire.Register(tagPlan, &Plan{}, encodePlan, decodePlan)

	wire.Register(tagIndexScan, &IndexRangeScan{},
		func(e *wire.Encoder, m env.Message) {
			s := m.(*IndexRangeScan)
			e.String(s.Index)
			// Encoded keys are high-entropy: fixed words beat varints.
			e.Fixed64(s.Lo)
			e.Fixed64(s.Hi)
		},
		func(d *wire.Decoder) env.Message {
			return &IndexRangeScan{Index: d.String(), Lo: d.Fixed64(), Hi: d.Fixed64()}
		})

	wire.Register(tagCancelMsg, &cancelMsg{},
		func(e *wire.Encoder, m env.Message) { e.Uvarint(m.(*cancelMsg).ID) },
		func(d *wire.Decoder) env.Message { return &cancelMsg{ID: d.Uvarint()} })

	wire.Register(tagCreditMsg, &creditMsg{},
		func(e *wire.Encoder, m env.Message) {
			c := m.(*creditMsg)
			e.Uvarint(c.ID)
			e.Varint(c.Limit)
		},
		func(d *wire.Decoder) env.Message {
			c := &creditMsg{ID: d.Uvarint(), Limit: d.Varint()}
			// Limits are cumulative tuple counts; a negative one can only
			// be crafted. It would be ignored by onCredit anyway, but
			// reject the frame so hostile grants never reach the engine.
			if d.Err() == nil && c.Limit < 0 {
				d.Fail("negative credit limit")
			}
			return c
		})

	wire.Register(tagAggState, &AggState{},
		func(e *wire.Encoder, m env.Message) { encodeAggState(e, m.(*AggState)) },
		func(d *wire.Decoder) env.Message { return decodeAggState(d) })

	wire.Register(tagBloomFilter, &bloom.Filter{},
		func(e *wire.Encoder, m env.Message) {
			f := m.(*bloom.Filter)
			e.Int(f.K)
			e.Len(len(f.Bits))
			for _, w := range f.Bits {
				e.Fixed64(w)
			}
		},
		func(d *wire.Decoder) env.Message {
			f := &bloom.Filter{K: d.Int()}
			// Validated plans keep K within [1, 64] (Plan.Validate clamps
			// BloomHashes) and bloom.New never allocates an empty bit
			// array; a frame claiming otherwise would divide by zero (or
			// spin for 2^60 hashes) inside Test/Add on the event loop.
			if d.Err() == nil && (f.K < 1 || f.K > 64) {
				d.Fail("bloom filter hash count out of range")
				return f
			}
			// Fixed 8-byte words: LenMin bounds the allocation exactly.
			if n := d.LenMin(8); n > 0 {
				f.Bits = make([]uint64, n)
				for i := range f.Bits {
					f.Bits[i] = d.Fixed64()
				}
			}
			if len(f.Bits) == 0 && d.Err() == nil {
				d.Fail("empty bloom filter")
			}
			return f
		})

	registerExprCodecs()
}

func encodeAggState(e *wire.Encoder, s *AggState) {
	e.Varint(s.Count)
	e.Varint(s.SumI)
	e.Float64(s.SumF)
	e.Bool(s.Float)
	e.Value(s.MinV)
	e.Value(s.MaxV)
	e.Bool(s.Seen)
}

func decodeAggState(d *wire.Decoder) *AggState {
	return &AggState{
		Count: d.Varint(),
		SumI:  d.Varint(),
		SumF:  d.Float64(),
		Float: d.Bool(),
		MinV:  d.Value(),
		MaxV:  d.Value(),
		Seen:  d.Bool(),
	}
}

func encodePlan(e *wire.Encoder, m env.Message) {
	p := m.(*Plan)
	e.Len(len(p.Tables))
	for _, tr := range p.Tables {
		e.String(tr.NS)
		e.Message(tr.Filter)
		encodeInts(e, tr.Project)
		encodeInts(e, tr.JoinCols)
		e.Int(tr.RIDCol)
		e.Message(tr.IndexScan)
	}
	e.Int(int(p.Strategy))
	e.Message(p.PostFilter)
	encodeInts(e, p.GroupBy)
	e.Len(len(p.Aggs))
	for _, a := range p.Aggs {
		e.Int(int(a.Kind))
		e.Int(a.Col)
	}
	e.Message(p.Having)
	e.Len(len(p.Output))
	for _, x := range p.Output {
		e.Message(x)
	}
	e.Duration(p.TTL)
	e.Duration(p.BloomWait)
	e.Duration(p.AggWait)
	e.Int(p.BloomBits)
	e.Int(p.BloomHashes)
	e.Int(p.ComputeNodes)
	e.Int(p.AggFanout)
	e.Bool(p.Continuous)
	e.Duration(p.Every)
	e.Int(p.Windows)
	e.Bool(p.AutoStrategy)
	e.Bool(p.AutoAccess)
	e.Bool(p.Trace)
}

func decodePlan(d *wire.Decoder) env.Message {
	p := &Plan{}
	if n := d.Len(); n > 0 {
		p.Tables = make([]TableRef, 0, wire.SliceCap(n))
		for i := 0; i < n && d.Err() == nil; i++ {
			tr := TableRef{NS: d.String()}
			tr.Filter = exprField(d)
			tr.Project = decodeInts(d)
			tr.JoinCols = decodeInts(d)
			tr.RIDCol = d.Int()
			tr.IndexScan = indexScanField(d)
			p.Tables = append(p.Tables, tr)
		}
	}
	p.Strategy = Strategy(d.Int())
	p.PostFilter = exprField(d)
	p.GroupBy = decodeInts(d)
	if n := d.Len(); n > 0 {
		p.Aggs = make([]Aggregate, 0, wire.SliceCap(n))
		for i := 0; i < n && d.Err() == nil; i++ {
			p.Aggs = append(p.Aggs, Aggregate{Kind: AggKind(d.Int()), Col: d.Int()})
		}
	}
	p.Having = exprField(d)
	if n := d.Len(); n > 0 {
		p.Output = make([]Expr, 0, wire.SliceCap(n))
		for i := 0; i < n && d.Err() == nil; i++ {
			p.Output = append(p.Output, exprReq(d))
		}
	}
	p.TTL = d.Duration()
	p.BloomWait = d.Duration()
	p.AggWait = d.Duration()
	p.BloomBits = d.Int()
	p.BloomHashes = d.Int()
	p.ComputeNodes = d.Int()
	p.AggFanout = d.Int()
	p.Continuous = d.Bool()
	p.Every = d.Duration()
	p.Windows = d.Int()
	p.AutoStrategy = d.Bool()
	p.AutoAccess = d.Bool()
	p.Trace = d.Bool()
	return p
}

func registerExprCodecs() {
	wire.Register(tagExprCol, &Col{},
		func(e *wire.Encoder, m env.Message) { e.Int(m.(*Col).Idx) },
		func(d *wire.Decoder) env.Message { return &Col{Idx: d.Int()} })

	wire.Register(tagExprConst, &Const{},
		func(e *wire.Encoder, m env.Message) { e.Value(m.(*Const).V) },
		func(d *wire.Decoder) env.Message { return &Const{V: d.Value()} })

	wire.Register(tagExprCmp, &Cmp{},
		func(e *wire.Encoder, m env.Message) {
			c := m.(*Cmp)
			e.Int(int(c.Op))
			e.Message(c.L)
			e.Message(c.R)
		},
		func(d *wire.Decoder) env.Message {
			return &Cmp{Op: CmpOp(d.Int()), L: exprReq(d), R: exprReq(d)}
		})

	wire.Register(tagExprAnd, &And{},
		func(e *wire.Encoder, m env.Message) {
			a := m.(*And)
			e.Message(a.L)
			e.Message(a.R)
		},
		func(d *wire.Decoder) env.Message {
			return &And{L: exprReq(d), R: exprReq(d)}
		})

	wire.Register(tagExprOr, &Or{},
		func(e *wire.Encoder, m env.Message) {
			o := m.(*Or)
			e.Message(o.L)
			e.Message(o.R)
		},
		func(d *wire.Decoder) env.Message {
			return &Or{L: exprReq(d), R: exprReq(d)}
		})

	wire.Register(tagExprNot, &Not{},
		func(e *wire.Encoder, m env.Message) { e.Message(m.(*Not).E) },
		func(d *wire.Decoder) env.Message { return &Not{E: exprReq(d)} })

	wire.Register(tagExprArith, &Arith{},
		func(e *wire.Encoder, m env.Message) {
			a := m.(*Arith)
			e.Int(int(a.Op))
			e.Message(a.L)
			e.Message(a.R)
		},
		func(d *wire.Decoder) env.Message {
			return &Arith{Op: ArithOp(d.Int()), L: exprReq(d), R: exprReq(d)}
		})

	wire.Register(tagExprCall, &Call{},
		func(e *wire.Encoder, m env.Message) {
			c := m.(*Call)
			e.String(c.Name)
			e.Len(len(c.Args))
			for _, a := range c.Args {
				e.Message(a)
			}
		},
		func(d *wire.Decoder) env.Message {
			c := &Call{Name: d.String()}
			if n := d.Len(); n > 0 {
				c.Args = make([]Expr, 0, wire.SliceCap(n))
				for i := 0; i < n && d.Err() == nil; i++ {
					c.Args = append(c.Args, exprReq(d))
				}
			}
			return c
		})
}

func encodeInts(e *wire.Encoder, xs []int) {
	e.Len(len(xs))
	for _, x := range xs {
		e.Int(x)
	}
}

func decodeInts(d *wire.Decoder) []int {
	n := d.Len()
	if n == 0 {
		return nil
	}
	xs := make([]int, 0, wire.SliceCap(n))
	for i := 0; i < n && d.Err() == nil; i++ {
		xs = append(xs, d.Int())
	}
	return xs
}

// sideField reads a join-side index, rejecting frames whose side is not
// 0 or 1 — executor code indexes plan.Tables (and fixed-size arrays)
// with it.
func sideField(d *wire.Decoder) int {
	s := d.Int()
	if d.Err() == nil && (s < 0 || s > 1) {
		d.Fail("join side out of range")
	}
	return s
}

// exprField decodes a nested expression written with Encoder.Message;
// nil stays nil (optional filters: TableRef.Filter, PostFilter, Having).
func exprField(d *wire.Decoder) Expr {
	m := d.Message()
	if m == nil {
		return nil
	}
	x, ok := m.(Expr)
	if !ok {
		d.Fail("message is not an expression")
		return nil
	}
	return x
}

// exprReq is exprField for positions the evaluator dereferences
// unconditionally (operator children, output expressions): a crafted
// nil must fail the frame, not crash Eval on the event loop.
func exprReq(d *wire.Decoder) Expr {
	x := exprField(d)
	if x == nil && d.Err() == nil {
		d.Fail("missing required expression")
	}
	return x
}

// decodeTupleInto decodes one nested tuple (written with
// Encoder.Message, as inside a resultMsg) into t, appending its column
// values to the shared slab vals and returning the extended slab.
// t.Vals is a capacity-trimmed sub-slice of the slab, so a later append
// that grows the slab cannot clobber an earlier tuple's columns.
func decodeTupleInto(d *wire.Decoder, t *Tuple, vals []Value) []Value {
	if tag := d.Byte(); tag != tagTuple {
		if d.Err() == nil {
			if tag == 0 {
				d.Fail("missing required tuple")
			} else {
				d.Fail("message is not a tuple")
			}
		}
		return vals
	}
	t.Rel = d.String()
	if n := d.Len(); n > 0 {
		start := len(vals)
		for i := 0; i < n && d.Err() == nil; i++ {
			vals = append(vals, d.Value())
		}
		t.Vals = vals[start:len(vals):len(vals)]
	}
	t.Pad = d.Int()
	if d.Err() == nil && t.Pad < 0 {
		d.Fail("negative tuple pad")
	}
	return vals
}

func tupleField(d *wire.Decoder) *Tuple {
	m := d.Message()
	if m == nil {
		if d.Err() == nil {
			d.Fail("missing required tuple")
		}
		return nil
	}
	t, ok := m.(*Tuple)
	if !ok {
		d.Fail("message is not a tuple")
		return nil
	}
	return t
}

func filterField(d *wire.Decoder) *bloom.Filter {
	m := d.Message()
	if m == nil {
		if d.Err() == nil {
			d.Fail("missing required bloom filter")
		}
		return nil
	}
	f, ok := m.(*bloom.Filter)
	if !ok {
		d.Fail("message is not a bloom filter")
		return nil
	}
	return f
}

// spanField decodes a nested trace span written with Encoder.Message.
// The span codec (package trace) already rejects invalid stages and
// negative durations; here only the type is checked.
func spanField(d *wire.Decoder) *trace.Span {
	m := d.Message()
	if m == nil {
		if d.Err() == nil {
			d.Fail("missing required trace span")
		}
		return nil
	}
	s, ok := m.(*trace.Span)
	if !ok {
		d.Fail("message is not a trace span")
		return nil
	}
	return s
}

// indexScanField decodes an optional nested IndexRangeScan (nil stays
// nil — most tables have no index access path).
func indexScanField(d *wire.Decoder) *IndexRangeScan {
	m := d.Message()
	if m == nil {
		return nil
	}
	s, ok := m.(*IndexRangeScan)
	if !ok {
		d.Fail("message is not an index scan")
		return nil
	}
	return s
}

func planField(d *wire.Decoder) *Plan {
	m := d.Message()
	if m == nil {
		if d.Err() == nil {
			d.Fail("missing required plan")
		}
		return nil
	}
	p, ok := m.(*Plan)
	if !ok {
		d.Fail("message is not a plan")
		return nil
	}
	return p
}
