package core

import "encoding/gob"

// AggState is the mergeable partial state of one aggregate on one node.
// PIER computes aggregates the parallel-database way (§7 "Hierarchical
// aggregation"): each node folds its local rows into an AggState, puts
// the partial into the query's aggregation namespace keyed by group, and
// the owner of the group key merges partials from all nodes.
type AggState struct {
	Count int64
	SumI  int64
	SumF  float64
	Float bool
	MinV  Value
	MaxV  Value
	Seen  bool
}

// Update folds one value into the state. COUNT(*) updates pass nil.
func (s *AggState) Update(v Value) {
	s.Count++
	switch x := v.(type) {
	case int64:
		s.SumI += x
	case float64:
		s.Float = true
		s.SumF += x
	}
	if v == nil {
		return
	}
	if !s.Seen {
		s.MinV, s.MaxV, s.Seen = v, v, true
		return
	}
	if CompareValues(v, s.MinV) < 0 {
		s.MinV = v
	}
	if CompareValues(v, s.MaxV) > 0 {
		s.MaxV = v
	}
}

// Merge folds another partial state into this one.
func (s *AggState) Merge(o *AggState) {
	s.Count += o.Count
	s.SumI += o.SumI
	s.SumF += o.SumF
	s.Float = s.Float || o.Float
	if o.Seen {
		if !s.Seen {
			s.MinV, s.MaxV, s.Seen = o.MinV, o.MaxV, true
		} else {
			if CompareValues(o.MinV, s.MinV) < 0 {
				s.MinV = o.MinV
			}
			if CompareValues(o.MaxV, s.MaxV) > 0 {
				s.MaxV = o.MaxV
			}
		}
	}
}

// Final produces the aggregate's value for the given kind.
func (s *AggState) Final(kind AggKind) Value {
	switch kind {
	case Count:
		return s.Count
	case Sum:
		if s.Float {
			return s.SumF + float64(s.SumI)
		}
		return s.SumI
	case Avg:
		if s.Count == 0 {
			return nil
		}
		return (s.SumF + float64(s.SumI)) / float64(s.Count)
	case Min:
		if !s.Seen {
			return nil
		}
		return s.MinV
	default:
		if !s.Seen {
			return nil
		}
		return s.MaxV
	}
}

// WireSize sizes the state for partial-aggregate puts.
func (s *AggState) WireSize() int {
	return 26 + ValueSize(s.MinV) + ValueSize(s.MaxV)
}

func init() { gob.Register(&AggState{}) }
