package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"pier/internal/core/bloom"
	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/trace"
)

// exec is the per-node instantiation of one query's dataflow. Operators
// push tuples onward as soon as they are produced (§3.3: "operators
// produce results as quickly as possible (push)"); the network queues
// between rehash and probe hide latency.
type exec struct {
	eng       *Engine
	id        uint64
	initiator env.Addr
	plan      *Plan
	nq        string // temporary rehash namespace ("a new unique DHT namespace NQ", §4.1)
	aggNS     string
	startAt   time.Time

	unsubs  []func()
	timers  []env.Timer
	stopped bool

	bloomRecv [2]bool

	// fetchCache memoizes semi-join base-tuple fetches per (side, rid):
	// an S tuple matched by several R projections is fetched once per
	// probing node, not once per pair.
	fetchCache [2]map[string]*fetchEntry

	partials  map[string]*partialGroup
	dirty     map[string]bool
	flushStop func()

	// Result channel state: output tuples accumulate in resBuf and are
	// shipped to the initiator in batched frames (by size and by a
	// short timer) under a credit window, instead of one unicast frame
	// per tuple — the per-tuple incast melts the initiator's link once
	// n nodes answer a selective query at once.
	//
	// resMu guards all of it: operators emit on the event loop while
	// credit grants arrive on the query's dispatch shard and resume
	// the flush from there. With inline dispatch (the simulator) the
	// lock is uncontended and free of ordering effects.
	resMu    sync.Mutex
	resBuf   []resultItem
	resSent  int64     // result tuples shipped so far
	resLimit int64     // cumulative credit limit (flow control off: unused)
	resFlush env.Timer // pending size/interval flush
	resStall env.Timer // pending credit stall-refresh

	// spans is the traced query's bounded span buffer (nil when the
	// query is untraced); it drains into outbound result frames.
	spans *trace.Buffer
	// resFirstBuf is when the oldest tuple of the current buffer
	// generation was buffered, anchoring the flush-latency histogram
	// and the result_flush span (zero when the buffer is empty).
	resFirstBuf time.Time
	// stallStart anchors the credit_stall span (zero outside stalls).
	stallStart time.Time
}

// resultItem is one buffered output tuple; the window rides along so a
// stalled buffer can span a window boundary (frames still carry one
// window each — flushes cut at the first window change).
type resultItem struct {
	w int
	t *Tuple
}

type fetchEntry struct {
	done    bool
	tuples  []*Tuple
	waiters []func([]*Tuple)
}

type partialGroup struct {
	window int
	group  []Value
	states []*AggState
}

func newExec(eng *Engine, m *queryMsg) *exec {
	var spans *trace.Buffer
	if m.Trace {
		spans = trace.NewBuffer(eng.cfg.TraceBuf)
	}
	return &exec{
		spans:     spans,
		eng:       eng,
		id:        m.ID,
		initiator: m.Initiator,
		plan:      m.Plan,
		nq:        fmt.Sprintf("q%x", m.ID),
		aggNS:     fmt.Sprintf("q%x.agg", m.ID),
		startAt:   eng.env.Now(),
		partials:  make(map[string]*partialGroup),
		dirty:     make(map[string]bool),
		// The bootstrap credit window is implicit: the initiator's
		// ledger assumes every sender starts with one ResultCredit
		// window, so no registration round-trip is needed before the
		// first results flow.
		resLimit: int64(eng.cfg.ResultCredit),
	}
}

func (ex *exec) bloomNS(side int) string { return fmt.Sprintf("q%x.bloom%d", ex.id, side) }

// span records one event into the traced query's bounded span buffer;
// untraced queries make it a no-op. Callers building a note string
// should guard the formatting with ex.spans != nil.
func (ex *exec) span(st trace.Stage, start time.Time, dur time.Duration, note string) {
	if ex.spans == nil {
		return
	}
	ex.spans.Add(trace.Span{
		Stage: st,
		Node:  ex.eng.env.Addr(),
		Start: start.UnixNano(),
		Dur:   dur,
		Note:  note,
	})
}

func (ex *exec) start() {
	p := ex.plan
	if ex.spans != nil {
		// The multicast span marks the query's arrival at this node —
		// the end of the dissemination hop.
		var tables []string
		for _, tr := range p.Tables {
			tables = append(tables, tr.NS)
		}
		ex.span(trace.StageMulticast, ex.startAt, 0, "query arrived: "+strings.Join(tables, ","))
	}
	t0 := ex.eng.env.Now()
	if len(p.Aggs) > 0 {
		ex.scheduleAggEmit()
	}
	if len(p.Tables) == 1 {
		ex.startSingle()
	} else {
		switch p.Strategy {
		case SymmetricHash:
			ex.registerPairProbe()
			ex.rehashScan(0, nil)
			ex.rehashScan(1, nil)
		case FetchMatches:
			ex.startFetchMatches()
		case SymmetricSemiJoin:
			ex.registerMiniProbe()
			ex.miniScan(0)
			ex.miniScan(1)
		case BloomJoin:
			ex.registerPairProbe()
			ex.startBloom()
		}
	}
	if ex.spans != nil {
		note := "single-table"
		if len(p.Tables) == 2 {
			note = p.Strategy.String()
		}
		ex.span(trace.StageExecutor, t0, ex.eng.env.Now().Sub(t0), note)
	}
}

// stop tears the executor down. It is idempotent — the cancel
// multicast and the TTL timer can both reach a live exec — and the
// stop-flush of the result buffer therefore runs exactly once.
func (ex *exec) stop() {
	if ex.stopped {
		return
	}
	ex.stopped = true
	for _, u := range ex.unsubs {
		u()
	}
	for _, t := range ex.timers {
		t.Stop()
	}
	if ex.flushStop != nil {
		ex.flushStop()
	}
	// Stop-flush: the executor is going away (cancel or TTL), so any
	// tuple still buffered would be lost; ship the remainder even past
	// the credit window. The burst is bounded by the buffer contents,
	// and a cancelled or expired query's collector is usually already
	// closed — the frames then drop at the initiator.
	ex.resMu.Lock()
	if ex.resFlush != nil {
		ex.resFlush.Stop()
		ex.resFlush = nil
	}
	if ex.resStall != nil {
		ex.resStall.Stop()
		ex.resStall = nil
	}
	ex.flushResultsLocked(true)
	ex.resMu.Unlock()
	// Spans recorded since the last result frame (or by an executor
	// that produced no results at all) would die with the exec; ship
	// them in one final zero-tuple frame. Best effort — a cancelled
	// query's collector is often already closed.
	if ex.spans != nil && (ex.spans.Len() > 0 || ex.spans.Drops() > 0) {
		spans, drops := ex.spans.Drain()
		rm := getResultMsg()
		rm.ID = ex.id
		rm.Window = ex.window()
		rm.Spans, rm.SpanDrops = spans, drops
		ex.eng.env.Send(ex.initiator, rm)
	}
}

// timer schedules f, suppressed after stop.
func (ex *exec) timer(d time.Duration, f func()) {
	t := ex.eng.env.After(d, func() {
		if !ex.stopped {
			f()
		}
	})
	ex.timers = append(ex.timers, t)
}

func (ex *exec) pass(e Expr, row []Value) bool { return e == nil || Truthy(e.Eval(row)) }

func (ex *exec) window() int {
	if !ex.plan.Continuous {
		return 0
	}
	return int(ex.eng.env.Now().Sub(ex.startAt) / ex.plan.Every)
}

// joined handles one concatenated row produced by any join strategy.
func (ex *exec) joined(row *Tuple) {
	if !ex.pass(ex.plan.PostFilter, row.Vals) {
		return
	}
	if len(ex.plan.Aggs) > 0 {
		ex.aggFeed(row, ex.window())
		return
	}
	ex.emitRow(row, ex.window())
}

// emitRow applies the output expressions and hands the tuple to the
// result channel for delivery to the query initiator.
func (ex *exec) emitRow(row *Tuple, window int) {
	out := row
	if len(ex.plan.Output) > 0 {
		vals := make([]Value, len(ex.plan.Output))
		for i, e := range ex.plan.Output {
			vals[i] = e.Eval(row.Vals)
		}
		out = &Tuple{Rel: "result", Vals: vals, Pad: row.Pad}
	}
	ex.emit(out, window)
}

// emit routes one output tuple into the per-initiator result buffer.
// With batching and flow control both disabled the tuple ships
// immediately in its own frame (the per-tuple baseline the incast
// experiment measures against).
func (ex *exec) emit(t *Tuple, window int) {
	cfg := &ex.eng.cfg
	if cfg.ResultBatch <= 1 && cfg.ResultCredit <= 0 {
		ex.eng.qstats.resultBatches.Add(1)
		ex.eng.qstats.resultTuples.Add(1)
		rm := getResultMsg()
		rm.ID = ex.id
		rm.Window = window
		rm.Tuples = append(rm.Tuples, t)
		ex.eng.env.Send(ex.initiator, rm)
		return
	}
	ex.resMu.Lock()
	if len(ex.resBuf) == 0 {
		ex.resFirstBuf = ex.eng.env.Now()
	}
	ex.resBuf = append(ex.resBuf, resultItem{w: window, t: t})
	if len(ex.resBuf) >= cfg.ResultBatch {
		ex.flushResultsLocked(false)
		ex.resMu.Unlock()
		return
	}
	if ex.resFlush == nil {
		ex.resFlush = ex.eng.env.After(cfg.ResultFlushInterval, func() {
			ex.resMu.Lock()
			ex.resFlush = nil
			if !ex.stopped {
				ex.flushResultsLocked(false)
			}
			ex.resMu.Unlock()
		})
	}
	ex.resMu.Unlock()
}

// flushResults is flushResultsLocked for callers not holding resMu.
func (ex *exec) flushResults(force bool) {
	ex.resMu.Lock()
	ex.flushResultsLocked(force)
	ex.resMu.Unlock()
}

// flushResultsLocked ships buffered result tuples to the initiator in
// frames of at most ResultBatch tuples, one window per frame, stopping
// when the credit window is exhausted (unless force — the stop-flush).
// Frames come from the shared pool and their Tuples slices reuse
// recycled capacity; the buffer keeps its backing array across flush
// cycles so a steady result stream stops allocating once warm.
func (ex *exec) flushResultsLocked(force bool) {
	if ex.resFlush != nil {
		ex.resFlush.Stop()
		ex.resFlush = nil
	}
	credit := int64(ex.eng.cfg.ResultCredit)
	start := 0
	for start < len(ex.resBuf) {
		n := len(ex.resBuf) - start
		if n > ex.eng.cfg.ResultBatch {
			n = ex.eng.cfg.ResultBatch
		}
		if credit > 0 && !force {
			avail := ex.resLimit - ex.resSent
			if avail <= 0 {
				ex.compactResBuf(start)
				ex.stallResultsLocked()
				return
			}
			if int64(n) > avail {
				n = int(avail)
			}
		}
		// Frames carry one window each: cut at the first window change.
		w := ex.resBuf[start].w
		k := 1
		for k < n && ex.resBuf[start+k].w == w {
			k++
		}
		rm := getResultMsg()
		rm.ID = ex.id
		rm.Window = w
		for i := 0; i < k; i++ {
			rm.Tuples = append(rm.Tuples, ex.resBuf[start+i].t)
		}
		start += k
		ex.resSent += int64(k)
		ex.eng.qstats.resultBatches.Add(1)
		ex.eng.qstats.resultTuples.Add(uint64(k))
		if !ex.resFirstBuf.IsZero() {
			// One observation per flush episode: oldest buffered tuple
			// to first frame on the wire.
			lat := ex.eng.env.Now().Sub(ex.resFirstBuf)
			ex.eng.flushLatHist().Observe(lat.Seconds())
			if ex.spans != nil {
				ex.span(trace.StageResultFlush, ex.resFirstBuf, lat, fmt.Sprintf("%d tuples w%d", k, w))
			}
			ex.resFirstBuf = time.Time{}
		}
		if ex.spans != nil && (ex.spans.Len() > 0 || ex.spans.Drops() > 0) {
			// Piggyback the drained span buffer on the result frame:
			// span delivery inherits the channel's batching and credit
			// window, so tracing cannot cause its own incast.
			rm.Spans, rm.SpanDrops = ex.spans.Drain()
		}
		ex.eng.env.Send(ex.initiator, rm)
	}
	ex.compactResBuf(start)
	if ex.resStall != nil {
		ex.resStall.Stop()
		ex.resStall = nil
	}
}

// compactResBuf drops the first n (shipped) items, keeping the rest
// and the backing array for the next burst. Vacated slots are cleared
// so shipped tuples are not pinned, and an array grown by one giant
// burst is released rather than retained forever.
func (ex *exec) compactResBuf(n int) {
	m := copy(ex.resBuf, ex.resBuf[n:])
	clear(ex.resBuf[m:])
	if m == 0 && cap(ex.resBuf) > 4096 {
		ex.resBuf = nil
		return
	}
	ex.resBuf = ex.resBuf[:m]
}

// stallResultsLocked arms the credit stall-refresh: if no grant
// arrives within CreditRefresh — the grant was lost, the in-flight
// frames were, or the initiator is gone — the executor re-opens one
// window on its own and retries. Under sustained loss the channel
// degrades to one window per refresh period per sender instead of
// deadlocking; the chaos harness's termination invariant leans on
// this. The caller holds resMu.
func (ex *exec) stallResultsLocked() {
	if ex.resStall != nil {
		return
	}
	ex.eng.qstats.creditStalls.Add(1)
	ex.stallStart = ex.eng.env.Now()
	ex.resStall = ex.eng.env.After(ex.eng.cfg.CreditRefresh, func() {
		ex.resMu.Lock()
		ex.resStall = nil
		if !ex.stopped {
			ex.endStallLocked("self-refresh")
			ex.resLimit = ex.resSent + int64(ex.eng.cfg.ResultCredit)
			ex.flushResultsLocked(false)
		}
		ex.resMu.Unlock()
	})
}

// endStallLocked closes the current credit-stall episode with a span
// recording how long the flush waited before how it resumed.
func (ex *exec) endStallLocked(how string) {
	if ex.stallStart.IsZero() {
		return
	}
	ex.span(trace.StageCreditStall, ex.stallStart, ex.eng.env.Now().Sub(ex.stallStart), how)
	ex.stallStart = time.Time{}
}

// onCredit applies a collector grant. Limits are cumulative, so stale
// or reordered grants (and anything below a stall self-refresh) are
// simply ignored. It runs on the query's dispatch shard, concurrent
// with the event loop's emits.
func (ex *exec) onCredit(limit int64) {
	ex.resMu.Lock()
	defer ex.resMu.Unlock()
	if limit <= ex.resLimit {
		return
	}
	ex.resLimit = limit
	if ex.resStall != nil {
		// We were stalled on this credit; resume immediately.
		ex.resStall.Stop()
		ex.resStall = nil
		ex.endStallLocked("grant")
		ex.flushResultsLocked(false)
	}
}

// --- single-table plans -------------------------------------------------

func (ex *exec) startSingle() {
	tbl := ex.plan.Tables[0]
	t0 := ex.eng.env.Now()
	matched := 0
	process := func(t *Tuple) {
		matched++
		if !ex.pass(tbl.Filter, t.Vals) {
			return
		}
		proj := t.Project(tbl.Project)
		if len(ex.plan.Aggs) > 0 {
			ex.aggFeed(proj, ex.window())
			return
		}
		if ex.pass(ex.plan.PostFilter, proj.Vals) {
			ex.emitRow(proj, ex.window())
		}
	}
	if ex.plan.Continuous {
		// Continuous query: consume the stream of arrivals (§7).
		unsub := ex.eng.prov.OnNewData(tbl.NS, func(it *storage.Item) {
			if t, ok := it.Payload.(*Tuple); ok {
				process(t)
			}
		})
		ex.unsubs = append(ex.unsubs, unsub)
		return
	}
	// One-shot: local snapshot at query arrival (dilated-reachable
	// snapshot semantics, §3.3.1).
	ex.eng.prov.Scan(tbl.NS, func(it *storage.Item) bool {
		if t, ok := it.Payload.(*Tuple); ok {
			process(t)
		}
		return true
	})
	if ex.spans != nil {
		ex.span(trace.StageScan, t0, ex.eng.env.Now().Sub(t0), fmt.Sprintf("%s: %d scanned", tbl.NS, matched))
	}
	if len(ex.plan.Aggs) > 0 {
		ex.flushPartials()
	}
}

// --- symmetric hash join (§4.1) -----------------------------------------

// rehashScan filters, projects, and rehashes one table into NQ, keyed by
// the concatenated join attribute values. A non-nil Bloom filter prunes
// the rehash (§4.2).
func (ex *exec) rehashScan(side int, f *bloom.Filter) {
	tbl := ex.plan.Tables[side]
	t0 := ex.eng.env.Now()
	puts := 0
	ex.eng.prov.Scan(tbl.NS, func(it *storage.Item) bool {
		t, ok := it.Payload.(*Tuple)
		if !ok {
			return true
		}
		if !ex.pass(tbl.Filter, t.Vals) {
			return true
		}
		proj := t.Project(tbl.Project)
		key := JoinKeyString(proj, tbl.JoinCols)
		if f != nil && !f.Test(key) {
			return true
		}
		puts++
		ex.eng.prov.Put(ex.nq, ex.rehashRID(key), ex.eng.env.Rand().Int63(), &sideTuple{Side: side, T: proj}, ex.plan.TTL)
		return true
	})
	if ex.spans != nil {
		ex.span(trace.StageRehash, t0, ex.eng.env.Now().Sub(t0), fmt.Sprintf("%s: %d puts", tbl.NS, puts))
	}
}

// rehashRID maps a join key to its NQ resourceID. With ComputeNodes set,
// keys collapse into that many buckets so the join runs at (about) that
// many computation nodes; the probe then re-checks key equality.
func (ex *exec) rehashRID(key string) string {
	k := ex.plan.ComputeNodes
	if k <= 0 {
		return key
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return fmt.Sprintf("bkt%d", h%uint32(k))
}

// sameJoinKey re-checks key equality for bucketed rehash namespaces.
func (ex *exec) sameJoinKey(a, b *sideTuple) bool {
	if ex.plan.ComputeNodes <= 0 {
		return true
	}
	ka := JoinKeyString(a.T, ex.plan.Tables[a.Side].JoinCols)
	kb := JoinKeyString(b.T, ex.plan.Tables[b.Side].JoinCols)
	return ka == kb
}

// registerPairProbe probes NQ on every arrival: the new tuple joins with
// all previously stored tuples of the opposite table, so every matching
// pair is produced exactly once ("interleaving building and probing of
// hash tables on each input relation", §4.1).
//
// Rehashed tuples from nodes that received the query multicast early can
// land here before this node's own copy of the query arrives; a catch-up
// pass pairs those pre-existing items among themselves.
func (ex *exec) registerPairProbe() {
	pairSide := func(st *sideTuple, other *storage.Item) {
		ot, ok := other.Payload.(*sideTuple)
		if !ok || ot.Side == st.Side || !ex.sameJoinKey(st, ot) {
			return
		}
		if st.Side == 0 {
			ex.joined(Concat(st.T, ot.T))
		} else {
			ex.joined(Concat(ot.T, st.T))
		}
	}
	unsub := ex.eng.prov.OnNewData(ex.nq, func(it *storage.Item) {
		st, ok := it.Payload.(*sideTuple)
		if !ok {
			return
		}
		// This get is expected to stay local (§4.1).
		ex.eng.prov.Get(ex.nq, it.ResourceID, func(items []*storage.Item) {
			for _, other := range items {
				if other != it {
					pairSide(st, other)
				}
			}
		})
	})
	ex.unsubs = append(ex.unsubs, unsub)
	ex.catchupPairs(func(a, b *storage.Item) {
		if st, ok := a.Payload.(*sideTuple); ok {
			pairSide(st, b)
		}
	})
}

// catchupPairs pairs every unordered pair of items already sitting in NQ
// when the query instantiates, exactly once. New arrivals pair against
// all stored items (including these) through the newData probe, so no
// pair is produced twice.
func (ex *exec) catchupPairs(pair func(a, b *storage.Item)) {
	var pre []*storage.Item
	ex.eng.prov.Scan(ex.nq, func(it *storage.Item) bool {
		pre = append(pre, it)
		return true
	})
	if len(pre) < 2 {
		return
	}
	sort.Slice(pre, func(i, j int) bool {
		if pre[i].ResourceID != pre[j].ResourceID {
			return pre[i].ResourceID < pre[j].ResourceID
		}
		return pre[i].InstanceID < pre[j].InstanceID
	})
	for i := 1; i < len(pre); i++ {
		for j := 0; j < i; j++ {
			if pre[i].ResourceID == pre[j].ResourceID {
				pair(pre[i], pre[j])
			}
		}
	}
}

// --- Fetch Matches (§4.1) -----------------------------------------------

// startFetchMatches scans the outer table and issues one DHT get per
// tuple against the inner table, which must already be hashed on the
// join attribute. Selections on the inner table cannot be pushed into
// the DHT, so they run after the fetch, at this node.
func (ex *exec) startFetchMatches() {
	t0, t1 := ex.plan.Tables[0], ex.plan.Tables[1]
	ex.eng.prov.Scan(t0.NS, func(it *storage.Item) bool {
		t, ok := it.Payload.(*Tuple)
		if !ok {
			return true
		}
		if !ex.pass(t0.Filter, t.Vals) {
			return true
		}
		proj0 := t.Project(t0.Project)
		key := JoinKeyString(proj0, t0.JoinCols)
		issued := ex.eng.env.Now()
		ex.eng.prov.Get(t1.NS, key, func(items []*storage.Item) {
			if ex.stopped {
				return
			}
			if ex.spans != nil {
				ex.span(trace.StageDHTGet, issued, ex.eng.env.Now().Sub(issued),
					fmt.Sprintf("%s/%s: %d items", t1.NS, key, len(items)))
			}
			for _, sit := range items {
				s, ok := sit.Payload.(*Tuple)
				if !ok {
					continue
				}
				if !ex.pass(t1.Filter, s.Vals) {
					continue
				}
				ex.joined(Concat(proj0, s.Project(t1.Project)))
			}
		})
		return true
	})
}

// --- symmetric semi-join rewrite (§4.2) ----------------------------------

// miniScan rehashes only (resourceID, join key) projections.
func (ex *exec) miniScan(side int) {
	tbl := ex.plan.Tables[side]
	ex.eng.prov.Scan(tbl.NS, func(it *storage.Item) bool {
		t, ok := it.Payload.(*Tuple)
		if !ok {
			return true
		}
		if !ex.pass(tbl.Filter, t.Vals) {
			return true
		}
		proj := t.Project(tbl.Project)
		key := JoinKeyString(proj, tbl.JoinCols)
		mini := &miniTuple{Side: side, RID: ValueString(proj.At(tbl.RIDCol)), Key: key}
		ex.eng.prov.Put(ex.nq, ex.rehashRID(key), ex.eng.env.Rand().Int63(), mini, ex.plan.TTL)
		return true
	})
}

// registerMiniProbe joins the projections, then fetches the matching
// base tuples of both tables in parallel ("we issue the two joins'
// fetches in parallel since we know both fetches will succeed", §4.2).
func (ex *exec) registerMiniProbe() {
	pairMini := func(mt *miniTuple, other *storage.Item) {
		om, ok := other.Payload.(*miniTuple)
		if !ok || om.Side == mt.Side || om.Key != mt.Key {
			return
		}
		if mt.Side == 0 {
			ex.pairFetch(mt, om)
		} else {
			ex.pairFetch(om, mt)
		}
	}
	unsub := ex.eng.prov.OnNewData(ex.nq, func(it *storage.Item) {
		mt, ok := it.Payload.(*miniTuple)
		if !ok {
			return
		}
		ex.eng.prov.Get(ex.nq, it.ResourceID, func(items []*storage.Item) {
			for _, other := range items {
				if other != it {
					pairMini(mt, other)
				}
			}
		})
	})
	ex.unsubs = append(ex.unsubs, unsub)
	ex.catchupPairs(func(a, b *storage.Item) {
		if mt, ok := a.Payload.(*miniTuple); ok {
			pairMini(mt, b)
		}
	})
}

func (ex *exec) pairFetch(m0, m1 *miniTuple) {
	var rs, ss []*Tuple
	pending := 2
	finish := func() {
		pending--
		if pending != 0 || ex.stopped {
			return
		}
		// Cross product recreates the appropriate number of duplicates.
		for _, r := range rs {
			for _, s := range ss {
				ex.joined(Concat(r, s))
			}
		}
	}
	ex.fetchSide(0, m0.RID, &rs, finish)
	ex.fetchSide(1, m1.RID, &ss, finish)
}

func (ex *exec) fetchSide(side int, rid string, out *[]*Tuple, done func()) {
	if ex.fetchCache[side] == nil {
		ex.fetchCache[side] = make(map[string]*fetchEntry)
	}
	deliver := func(tuples []*Tuple) {
		*out = append(*out, tuples...)
		done()
	}
	fe, ok := ex.fetchCache[side][rid]
	if ok {
		if fe.done {
			deliver(fe.tuples)
		} else {
			fe.waiters = append(fe.waiters, deliver)
		}
		return
	}
	fe = &fetchEntry{}
	ex.fetchCache[side][rid] = fe
	tbl := ex.plan.Tables[side]
	issued := ex.eng.env.Now()
	ex.eng.prov.Get(tbl.NS, rid, func(items []*storage.Item) {
		if ex.spans != nil && !ex.stopped {
			ex.span(trace.StageDHTGet, issued, ex.eng.env.Now().Sub(issued),
				fmt.Sprintf("%s/%s: %d items", tbl.NS, rid, len(items)))
		}
		for _, it := range items {
			t, ok := it.Payload.(*Tuple)
			if !ok {
				continue
			}
			if !ex.pass(tbl.Filter, t.Vals) {
				continue
			}
			fe.tuples = append(fe.tuples, t.Project(tbl.Project))
		}
		fe.done = true
		deliver(fe.tuples)
		for _, w := range fe.waiters {
			w(fe.tuples)
		}
		fe.waiters = nil
	})
}

// --- Bloom join rewrite (§4.2) -------------------------------------------

func (ex *exec) startBloom() {
	p := ex.plan
	for side := range p.Tables {
		side := side
		// Collector role: after BloomWait, whoever stores the filters of
		// this table ORs and multicasts them. Scheduling on every node
		// is harmless — only the collector holds items.
		ex.timer(p.BloomWait, func() { ex.emitBloom(side) })

		tbl := p.Tables[side]
		f := bloom.New(p.BloomBits, p.BloomHashes)
		count := 0
		ex.eng.prov.Scan(tbl.NS, func(it *storage.Item) bool {
			t, ok := it.Payload.(*Tuple)
			if !ok {
				return true
			}
			if !ex.pass(tbl.Filter, t.Vals) {
				return true
			}
			proj := t.Project(tbl.Project)
			f.Add(JoinKeyString(proj, tbl.JoinCols))
			count++
			return true
		})
		if count > 0 {
			ex.eng.prov.Put(ex.bloomNS(side), "or", ex.eng.nodeIID, &bloomPut{Side: side, F: f}, p.TTL)
		}
	}
}

// emitBloom runs at the collector: OR all received filters for one table
// and multicast the combination.
//
// The combine starts from an empty filter of the plan's dimensions, so
// every honest peer (which built its filter from the same plan) ORs in
// cleanly regardless of scan order. A filter whose geometry does not
// match cannot be combined — and silently skipping it would prune that
// peer's join keys out of the opposite table's rehash: silently
// dropped join rows. On any mismatch the collector degrades to a
// saturated (accept-all) filter instead: the rehash runs unpruned —
// correct, merely unoptimized — and the event is counted in
// QueryStats.BloomFallbacks.
func (ex *exec) emitBloom(side int) {
	p := ex.plan
	comb := bloom.New(p.BloomBits, p.BloomHashes)
	seen, mismatch := false, false
	ex.eng.prov.Scan(ex.bloomNS(side), func(it *storage.Item) bool {
		bp, ok := it.Payload.(*bloomPut)
		if !ok || bp.Side != side {
			return true
		}
		seen = true
		if err := comb.Union(bp.F); err != nil {
			mismatch = true
		}
		return true
	})
	if !seen {
		return
	}
	if mismatch {
		ex.eng.qstats.bloomFallbacks.Add(1)
		comb = bloom.New(p.BloomBits, p.BloomHashes)
		comb.Saturate()
	}
	if ex.spans != nil {
		note := fmt.Sprintf("side %d combined", side)
		if mismatch {
			note += " (geometry mismatch, saturated)"
		}
		ex.span(trace.StageBloomCollect, ex.eng.env.Now(), 0, note)
	}
	ex.eng.prov.Multicast(QueryNS, &bloomDist{ID: ex.id, Side: side, F: comb})
}

// onBloomDist reacts to the OR-ed filter of table `side` by rehashing
// the opposite table, pruned by the filter.
func (ex *exec) onBloomDist(m *bloomDist) {
	if ex.plan.Strategy != BloomJoin || m.Side < 0 || m.Side > 1 || ex.bloomRecv[m.Side] {
		return
	}
	ex.bloomRecv[m.Side] = true
	if ex.spans != nil {
		ex.span(trace.StageBloomDist, ex.eng.env.Now(), 0, fmt.Sprintf("filter for side %d arrived", m.Side))
	}
	ex.rehashScan(1-m.Side, m.F)
}

// --- grouping and aggregation ---------------------------------------------

func (ex *exec) aggFeed(row *Tuple, w int) {
	p := ex.plan
	gkey := JoinKeyString(row, p.GroupBy)
	key := fmt.Sprintf("%d|%s", w, gkey)
	pg, ok := ex.partials[key]
	if !ok {
		group := make([]Value, len(p.GroupBy))
		for i, c := range p.GroupBy {
			group[i] = row.At(c)
		}
		states := make([]*AggState, len(p.Aggs))
		for i := range states {
			states[i] = &AggState{}
		}
		pg = &partialGroup{window: w, group: group, states: states}
		ex.partials[key] = pg
	}
	for i, a := range p.Aggs {
		// At returns nil for COUNT(*)'s -1 and for hostile indexes alike.
		pg.states[i].Update(row.At(a.Col))
	}
	ex.dirty[key] = true
	// Joins and streams keep feeding groups; flush periodically.
	if len(p.Tables) == 2 || p.Continuous {
		ex.ensureFlusher()
	}
}

func (ex *exec) ensureFlusher() {
	if ex.flushStop != nil {
		return
	}
	ex.flushStop = env.Every(ex.eng.env, ex.eng.cfg.AggFlushInterval, ex.flushPartials)
}

// stateLifetime bounds the query's temporary DHT state. One-shot
// state is put once and must survive to the TTL; continuous-query
// partials are renewed by every flush, so they only need to outlive
// the window that consumes them — cancelling the query stops the
// renewals and the state dies within this bound instead of at the TTL.
func (ex *exec) stateLifetime() time.Duration {
	p := ex.plan
	if !p.Continuous {
		return p.TTL
	}
	lt := 2 * (p.Every + p.AggWait)
	if lt > p.TTL {
		lt = p.TTL
	}
	return lt
}

// flushPartials re-puts every dirty group's partial state. The stable
// per-node instanceID makes the put a replace, so repeated flushes of a
// monotonically growing state are idempotent at the collector.
func (ex *exec) flushPartials() {
	for _, key := range env.SortedKeys(ex.dirty) {
		pg := ex.partials[key]
		states := make([]*AggState, len(pg.states))
		for i, s := range pg.states {
			c := *s
			states[i] = &c
		}
		rid := key
		if f := ex.plan.AggFanout; f > 0 {
			// Level-1 site: this node's partials combine at one of f
			// intermediate sites for the group.
			rid = fmt.Sprintf("%s\x1e%d", key, ex.eng.nodeIID%int64(f))
		}
		ex.eng.prov.Put(ex.aggNS, rid, ex.eng.nodeIID,
			&partialAgg{Window: pg.window, Group: pg.group, States: states}, ex.stateLifetime())
		delete(ex.dirty, key)
	}
}

// combineLevel1 runs at intermediate aggregation sites: merge the
// partials of each "<group>\x1e<bucket>" rid stored here (the 0x1e
// record separator keeps bucket suffixes unambiguous — group keys can
// contain any printable byte) and forward one combined partial to the
// group root. TestLevel1RidFormat pins the separator so codec and
// storage assumptions cannot drift apart silently.
func (ex *exec) combineLevel1(w int) {
	type comb struct {
		base   string
		window int
		group  []Value
		states []*AggState
	}
	combined := map[string]*comb{}
	ex.eng.prov.Scan(ex.aggNS, func(it *storage.Item) bool {
		pa, ok := it.Payload.(*partialAgg)
		if !ok || pa.Window != w {
			return true
		}
		hash := strings.LastIndexByte(it.ResourceID, 0x1e)
		if hash < 0 {
			return true // root-level partial, not ours to combine
		}
		c, ok := combined[it.ResourceID]
		if !ok {
			// Size by the plan's aggregate list, not the stored partial:
			// partials arrive via DHT puts, so their shape is untrusted.
			states := make([]*AggState, len(ex.plan.Aggs))
			for i := range states {
				states[i] = &AggState{}
			}
			c = &comb{base: it.ResourceID[:hash], window: pa.Window, group: pa.Group, states: states}
			combined[it.ResourceID] = c
		}
		for i, s := range pa.States {
			if i >= len(c.states) || s == nil {
				break
			}
			c.states[i].Merge(s)
		}
		return true
	})
	for _, rid := range env.SortedKeys(combined) {
		c := combined[rid]
		// Stable per-bucket iid so distinct intermediate sites (and
		// re-combines) never collide at the root.
		ex.eng.prov.Put(ex.aggNS, c.base, ridIID(rid),
			&partialAgg{Window: c.window, Group: c.group, States: c.states}, ex.stateLifetime())
	}
}

// ridIID derives a stable instanceID from a resourceID.
func ridIID(rid string) int64 {
	h := fnv.New64a()
	h.Write([]byte(rid))
	return int64(h.Sum64() >> 1)
}

func (ex *exec) scheduleAggEmit() {
	p := ex.plan
	if !p.Continuous {
		if p.AggFanout > 0 {
			ex.timer(p.AggWait/2, func() { ex.combineLevel1(0) })
		}
		ex.timer(p.AggWait, func() { ex.emitGroups(0) })
		return
	}
	max := p.Windows
	if max <= 0 {
		max = int(p.TTL / p.Every)
	}
	for w := 0; w < max; w++ {
		w := w
		if p.AggFanout > 0 {
			ex.timer(time.Duration(w+1)*p.Every+p.AggWait/2, func() { ex.combineLevel1(w) })
		}
		ex.timer(time.Duration(w+1)*p.Every+p.AggWait, func() { ex.emitGroups(w) })
	}
}

// emitGroups runs at group collectors: merge the partials of window w
// stored locally, apply HAVING and the output expressions, and ship the
// groups to the initiator.
func (ex *exec) emitGroups(w int) {
	type combined struct {
		group  []Value
		states []*AggState
	}
	groups := make(map[string]*combined)
	order := []string{}
	ex.eng.prov.Scan(ex.aggNS, func(it *storage.Item) bool {
		pa, ok := it.Payload.(*partialAgg)
		if !ok || pa.Window != w {
			return true
		}
		if ex.plan.AggFanout > 0 && strings.ContainsRune(it.ResourceID, 0x1e) {
			return true // level-1 partial: combined by combineLevel1
		}
		cg, ok := groups[it.ResourceID]
		if !ok {
			// Size by the plan's aggregate list, not the stored partial:
			// partials arrive via DHT puts, so their shape is untrusted.
			states := make([]*AggState, len(ex.plan.Aggs))
			for i := range states {
				states[i] = &AggState{}
			}
			cg = &combined{group: pa.Group, states: states}
			groups[it.ResourceID] = cg
			order = append(order, it.ResourceID)
		}
		for i, s := range pa.States {
			if i >= len(cg.states) || s == nil {
				break
			}
			cg.states[i].Merge(s)
		}
		return true
	})
	if len(groups) == 0 {
		return
	}
	var out []*Tuple
	for _, rid := range order {
		cg := groups[rid]
		row := make([]Value, 0, len(cg.group)+len(cg.states))
		row = append(row, cg.group...)
		for i, s := range cg.states {
			row = append(row, s.Final(ex.plan.Aggs[i].Kind))
		}
		if ex.plan.Having != nil && !Truthy(ex.plan.Having.Eval(row)) {
			continue
		}
		t := &Tuple{Rel: "group", Vals: row}
		if len(ex.plan.Output) > 0 {
			vals := make([]Value, len(ex.plan.Output))
			for i, e := range ex.plan.Output {
				vals[i] = e.Eval(row)
			}
			t = &Tuple{Rel: "group", Vals: vals}
		}
		out = append(out, t)
	}
	// The window's groups are complete: feed them through the result
	// channel and flush now rather than waiting out the interval (a
	// credit-stalled remainder stays buffered and retries).
	for _, t := range out {
		ex.emit(t, w)
	}
	ex.flushResults(false)
}
