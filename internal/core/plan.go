package core

import (
	"encoding/gob"
	"time"

	"pier/internal/env"
)

// Strategy selects one of the paper's four distributed equi-join
// implementations (§4).
type Strategy int

// Join strategies.
const (
	// SymmetricHash rehashes both tables into a temporary namespace and
	// probes on newData — the paper's most general algorithm (§4.1).
	SymmetricHash Strategy = iota
	// FetchMatches scans the outer table and issues a DHT get per tuple
	// against the inner table, which must already be hashed on the join
	// attribute (§4.1).
	FetchMatches
	// SymmetricSemiJoin symmetric-hash-joins (resourceID, join key)
	// projections of both tables, then fetches the matching base tuples
	// in parallel (§4.2).
	SymmetricSemiJoin
	// BloomJoin publishes per-node Bloom filters of each table to
	// per-table collectors, ORs them, multicasts the combined filters,
	// and rehashes only matching tuples (§4.2).
	BloomJoin
)

func (s Strategy) String() string {
	switch s {
	case SymmetricHash:
		return "symmetric hash"
	case FetchMatches:
		return "fetch matches"
	case SymmetricSemiJoin:
		return "symmetric semi-join"
	case BloomJoin:
		return "bloom filter"
	default:
		return "unknown"
	}
}

// TableRef names one input relation and its per-table operators.
type TableRef struct {
	// NS is the namespace (relation) in the DHT.
	NS string
	// Filter is the local selection predicate over the base row; nil
	// accepts everything.
	Filter Expr
	// Project lists the base columns kept when the tuple is rehashed
	// ("copied with only the relevant columns remaining", §4.1). nil
	// keeps all columns. Join and output column indices refer to the
	// projected row.
	Project []int
	// JoinCols are the equi-join key columns, as indices into the
	// projected row.
	JoinCols []int
	// RIDCol is the projected column holding the tuple's base
	// resourceID (its primary key), needed by the semi-join rewrite to
	// fetch base tuples back. -1 when unused.
	RIDCol int
	// IndexScan, when set on a single-table plan, names a Prefix Hash
	// Tree index covering a sargable prefix of Filter: the initiator
	// traverses the index over the encoded range instead of
	// multicasting a full scan. Filter stays intact as the exact
	// residual predicate.
	IndexScan *IndexRangeScan
}

// AggKind is an aggregate function.
type AggKind int

// Aggregate kinds.
const (
	Count AggKind = iota
	Sum
	Avg
	Min
	Max
)

func (k AggKind) String() string {
	return [...]string{"count", "sum", "avg", "min", "max"}[k]
}

// Aggregate is one aggregate over the pre-aggregation row.
type Aggregate struct {
	Kind AggKind
	// Col indexes the pre-aggregation row; -1 means COUNT(*).
	Col int
}

// Plan is a serializable query plan — the "query instructions" that the
// multicast distributes to all nodes (§5.5.1). Plans use column indices
// throughout; the SQL front end (internal/sql) resolves names.
type Plan struct {
	// Tables has one entry for a scan/aggregation query, two for a join.
	Tables []TableRef
	// Strategy picks the join algorithm when len(Tables) == 2.
	Strategy Strategy
	// PostFilter runs over the concatenated projected row — predicates
	// referencing both tables, like the workload's
	// f(R.num3, S.num3) > constant3, "must [be] evaluate[d] after the
	// equi-join" (§5.1).
	PostFilter Expr
	// GroupBy lists grouping columns (pre-aggregation row indices). With
	// no Aggs the plan is a plain select/join.
	GroupBy []int
	// Aggs are the aggregates computed per group.
	Aggs []Aggregate
	// Having filters groups; it sees groupCols ++ aggResults.
	Having Expr
	// Output computes the emitted row. For non-aggregate plans it sees
	// the concatenated projected row; for aggregates, groupCols ++
	// aggResults. nil emits the row unchanged.
	Output []Expr

	// TTL bounds the lifetime of the query's temporary DHT state.
	TTL time.Duration
	// BloomWait is how long Bloom collectors gather filters before
	// multicasting the OR.
	BloomWait time.Duration
	// AggWait is how long group collectors gather partial aggregates
	// before emitting results.
	AggWait time.Duration
	// BloomBits and BloomHashes fix the Bloom filter geometry for the
	// BloomJoin strategy; all nodes must agree so filters can be OR-ed.
	BloomBits   int
	BloomHashes int

	// ComputeNodes constrains the join namespace NQ to (about) this many
	// computation nodes by bucketing rehash keys, reproducing §5.4's
	// "when the number of computation nodes is kept small by
	// constraining the join namespace". Zero uses the full network (one
	// bucket per join key).
	ComputeNodes int

	// AggFanout superimposes a two-level aggregation hierarchy on the
	// DHT (§7 "Hierarchical aggregation and DHTs"): per-node partials
	// first combine at AggFanout intermediate sites per group, which
	// forward one combined partial to the group's root. Zero keeps the
	// flat parallel-database scheme. The hierarchy cuts the root's
	// inbound load from O(n) partials to O(AggFanout).
	AggFanout int

	// Continuous turns the plan into a windowed continuous query over
	// arriving data (§7 "Continuous queries over streams"): sources
	// aggregate arrivals into tumbling windows of length Every, and
	// collectors emit one result set per window.
	Continuous bool
	// Every is the window length for continuous queries.
	Every time.Duration
	// Windows stops a continuous query after that many windows
	// (0 = run until the query's TTL).
	Windows int

	// AutoStrategy marks a join plan whose Strategy was defaulted, not
	// requested (SQL without a USING STRATEGY clause). The initiating
	// node's statistics catalog may then replace Strategy with the
	// cost-based choice before the query is disseminated; without a
	// warmed catalog the default stands.
	AutoStrategy bool

	// AutoAccess marks a plan whose IndexScan was attached by the SQL
	// planner rather than forced by the caller. The initiating node's
	// statistics catalog may then drop the index in favor of a full
	// scan when the estimated selectivity is too high for the index to
	// pay off; a cold catalog keeps the index (the user created it for
	// a reason).
	AutoAccess bool

	// Trace requests distributed tracing for this query: the
	// initiator's sampling decision propagates in the query multicast
	// and every executor records span events (see internal/trace).
	// EXPLAIN TRACE and the admin plane's trace flag set it; the
	// engine's TraceSample policy may also sample untraced plans in.
	Trace bool
}

// Validate performs basic sanity checks and fills defaults.
func (p *Plan) Validate() error {
	if len(p.Tables) < 1 || len(p.Tables) > 2 {
		return errPlan("plan must reference one or two tables")
	}
	if len(p.Tables) == 2 {
		if len(p.Tables[0].JoinCols) == 0 || len(p.Tables[0].JoinCols) != len(p.Tables[1].JoinCols) {
			return errPlan("join requires equal, non-empty JoinCols on both tables")
		}
		if p.Strategy == SymmetricSemiJoin && (p.Tables[0].RIDCol < 0 || p.Tables[1].RIDCol < 0) {
			return errPlan("semi-join rewrite requires RIDCol on both tables")
		}
	}
	if len(p.Aggs) == 0 && (p.Having != nil || len(p.GroupBy) > 0) {
		return errPlan("GroupBy/Having require aggregates")
	}
	if p.TTL <= 0 {
		p.TTL = 10 * time.Minute
	}
	if p.BloomWait <= 0 {
		p.BloomWait = 5 * time.Second
	}
	if p.AggWait <= 0 {
		p.AggWait = 10 * time.Second
	}
	if p.BloomBits <= 0 {
		p.BloomBits = 1 << 16
	}
	if p.BloomHashes <= 0 {
		p.BloomHashes = 4
	}
	// The wire codec rejects filters with more hashes (no honest filter
	// needs them); clamp here so a legal plan can never produce frames
	// its receivers drop.
	if p.BloomHashes > 64 {
		p.BloomHashes = 64
	}
	if p.Continuous {
		if p.Every <= 0 {
			return errPlan("continuous query requires Every > 0")
		}
		if len(p.Tables) != 1 {
			return errPlan("continuous queries support a single table")
		}
	}
	return nil
}

type errPlan string

func (e errPlan) Error() string { return "pier: invalid plan: " + string(e) }

// WireSize estimates the plan's encoded size for the query multicast.
func (p *Plan) WireSize() int {
	n := 65
	for _, tr := range p.Tables {
		n += env.StringSize(tr.NS) + 4*(len(tr.Project)+len(tr.JoinCols)) + 8
		if tr.Filter != nil {
			n += tr.Filter.WireSize()
		}
		if tr.IndexScan != nil {
			n += tr.IndexScan.WireSize()
		}
	}
	if p.PostFilter != nil {
		n += p.PostFilter.WireSize()
	}
	if p.Having != nil {
		n += p.Having.WireSize()
	}
	for _, e := range p.Output {
		n += e.WireSize()
	}
	n += 4 * (len(p.GroupBy) + 2*len(p.Aggs))
	return n
}

func init() { gob.Register(&Plan{}) }
