package core

import (
	"encoding/gob"
	"sync"

	"pier/internal/core/bloom"
	"pier/internal/env"
	"pier/internal/trace"
)

// queryMsg is the multicast payload that disseminates a query to every
// node (§3.2.3: "To run a query, PIER attempts to contact the nodes that
// hold data in a particular namespace" via multicast). Trace is the
// initiator's effective sampling decision: when set, every executor
// records trace spans for this query.
type queryMsg struct {
	ID        uint64
	Initiator env.Addr
	Trace     bool
	Plan      *Plan
}

// WireSize implements env.Message.
func (m *queryMsg) WireSize() int { return 9 + env.AddrSize + m.Plan.WireSize() }

// resultMsg delivers output tuples directly to the query initiator.
// For traced queries the executor's drained span buffer (and the count
// of spans dropped at its bound) piggybacks on the frame, so span
// delivery rides the same credit-windowed channel as the results it
// describes.
type resultMsg struct {
	ID        uint64
	Window    int
	Tuples    []*Tuple
	Spans     []trace.Span
	SpanDrops uint64
}

// WireSize implements env.Message.
func (m *resultMsg) WireSize() int {
	n := env.HeaderSize + 12
	for _, t := range m.Tuples {
		n += t.WireSize()
	}
	for i := range m.Spans {
		n += 1 + m.Spans[i].WireSize()
	}
	if m.SpanDrops > 0 || len(m.Spans) > 0 {
		n += 5
	}
	return n
}

// resultMsgPool recycles result frames — the highest-volume message in
// the system. Executors take frames from it in flushResults and the
// binary codec decodes inbound frames into pooled shells; see Recycle
// for who returns them.
var resultMsgPool = sync.Pool{New: func() any { return new(resultMsg) }}

// getResultMsg returns an empty frame, reusing a recycled shell (and
// its Tuples capacity) when one is available.
func getResultMsg() *resultMsg { return resultMsgPool.Get().(*resultMsg) }

// Recycle implements env.Recycler: it clears the frame and returns it
// to the pool. On the outbound path realnet's writer recycles after
// encoding (the pointer goes no further); on the loopback and inbound
// paths the engine recycles after onResult consumed the frame. Only the
// frame shell and its []*Tuple slice are pooled — the tuples themselves
// may be retained by application callbacks or the DHT store and are
// left to the garbage collector.
func (m *resultMsg) Recycle() {
	for i := range m.Tuples {
		m.Tuples[i] = nil
	}
	tuples := m.Tuples[:0]
	if cap(tuples) > 4096 {
		tuples = nil // one giant frame must not pin its slice forever
	}
	*m = resultMsg{Tuples: tuples}
	resultMsgPool.Put(m)
}

// sideTuple is the rehash payload of the symmetric hash and Bloom joins:
// a filtered, projected tuple tagged with its source table ("all copies
// are tagged with their source table name", §4.1).
type sideTuple struct {
	Side int
	T    *Tuple
}

// WireSize implements env.Message.
func (m *sideTuple) WireSize() int { return 1 + m.T.WireSize() }

// miniTuple is the semi-join rewrite's projection: just the base
// resourceID and the join key (§4.2).
type miniTuple struct {
	Side int
	RID  string
	Key  string
}

// WireSize implements env.Message.
func (m *miniTuple) WireSize() int {
	return 1 + env.StringSize(m.RID) + env.StringSize(m.Key)
}

// bloomPut carries one node's local Bloom filter to the per-table
// collector namespace.
type bloomPut struct {
	Side int
	F    *bloom.Filter
}

// WireSize implements env.Message.
func (m *bloomPut) WireSize() int { return 1 + m.F.WireSize() }

// bloomDist is the multicast payload redistributing the OR-ed filter of
// one table to the nodes holding the opposite table.
type bloomDist struct {
	ID   uint64
	Side int
	F    *bloom.Filter
}

// WireSize implements env.Message.
func (m *bloomDist) WireSize() int { return 9 + m.F.WireSize() }

// cancelMsg is the multicast payload that tears a query down before its
// TTL: every node stops the query's executor — window timers, partial-
// aggregate flushers, and newData subscriptions — so a cancelled
// continuous query stops renewing its soft state immediately instead of
// lingering until the TTL ages it out.
type cancelMsg struct {
	ID uint64
}

// WireSize implements env.Message. Like queryMsg, it rides inside the
// multicast envelope, which already charges the transport header.
func (m *cancelMsg) WireSize() int { return 8 }

// creditMsg is the result channel's flow-control grant, sent from the
// query initiator to one executor. Limit is absolute and cumulative —
// "you may have shipped up to Limit result tuples in total" — so a
// lost or reordered grant only leaves the sender with a stale (lower)
// limit, never with permanently destroyed credit; the next grant, or
// the sender's stall-refresh timer, restores progress.
type creditMsg struct {
	ID    uint64
	Limit int64
}

// WireSize implements env.Message.
func (m *creditMsg) WireSize() int { return env.HeaderSize + 16 }

// partialAgg is one node's partial aggregation state for one group (and
// window, for continuous queries), put into the aggregation namespace.
type partialAgg struct {
	Window int
	Group  []Value
	States []*AggState
}

// WireSize implements env.Message.
func (m *partialAgg) WireSize() int {
	n := 4
	for _, v := range m.Group {
		n += ValueSize(v)
	}
	for _, s := range m.States {
		n += s.WireSize()
	}
	return n
}

func init() {
	gob.Register(&queryMsg{})
	gob.Register(&resultMsg{})
	gob.Register(&sideTuple{})
	gob.Register(&miniTuple{})
	gob.Register(&bloomPut{})
	gob.Register(&bloomDist{})
	gob.Register(&cancelMsg{})
	gob.Register(&creditMsg{})
	gob.Register(&partialAgg{})
	gob.Register(&bloom.Filter{})
}
