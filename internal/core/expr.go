package core

import (
	"encoding/gob"
	"fmt"

	"pier/internal/env"
)

// Expr is a scalar expression evaluated against a row of values. Plans
// carry expressions across the network, so every implementation is a
// concrete, gob-registered type with a wire size.
type Expr interface {
	Eval(row []Value) Value
	WireSize() int
	String() string
}

// Col references a column by index.
type Col struct{ Idx int }

// Eval implements Expr. Plans arrive over the network and Validate
// cannot know row widths, so the index is untrusted: out-of-range
// references evaluate to nil instead of panicking the event loop.
func (c *Col) Eval(row []Value) Value {
	if c.Idx < 0 || c.Idx >= len(row) {
		return nil
	}
	return row[c.Idx]
}

// WireSize implements Expr.
func (c *Col) WireSize() int { return 3 }

func (c *Col) String() string { return fmt.Sprintf("$%d", c.Idx) }

// Const is a literal value.
type Const struct{ V Value }

// Eval implements Expr.
func (c *Const) Eval([]Value) Value { return c.V }

// WireSize implements Expr.
func (c *Const) WireSize() int { return 1 + ValueSize(c.V) }

func (c *Const) String() string { return ValueString(c.V) }

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[op]
}

// Cmp compares two sub-expressions with numeric coercion.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c *Cmp) Eval(row []Value) Value {
	d := CompareValues(c.L.Eval(row), c.R.Eval(row))
	switch c.Op {
	case EQ:
		return d == 0
	case NE:
		return d != 0
	case LT:
		return d < 0
	case LE:
		return d <= 0
	case GT:
		return d > 0
	default:
		return d >= 0
	}
}

// WireSize implements Expr.
func (c *Cmp) WireSize() int { return 2 + c.L.WireSize() + c.R.WireSize() }

func (c *Cmp) String() string { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }

// And is logical conjunction.
type And struct{ L, R Expr }

// Eval implements Expr.
func (a *And) Eval(row []Value) Value { return Truthy(a.L.Eval(row)) && Truthy(a.R.Eval(row)) }

// WireSize implements Expr.
func (a *And) WireSize() int { return 1 + a.L.WireSize() + a.R.WireSize() }

func (a *And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is logical disjunction.
type Or struct{ L, R Expr }

// Eval implements Expr.
func (o *Or) Eval(row []Value) Value { return Truthy(o.L.Eval(row)) || Truthy(o.R.Eval(row)) }

// WireSize implements Expr.
func (o *Or) WireSize() int { return 1 + o.L.WireSize() + o.R.WireSize() }

func (o *Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is logical negation.
type Not struct{ E Expr }

// Eval implements Expr.
func (n *Not) Eval(row []Value) Value { return !Truthy(n.E.Eval(row)) }

// WireSize implements Expr.
func (n *Not) WireSize() int { return 1 + n.E.WireSize() }

func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// ArithOp is an arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

func (op ArithOp) String() string { return [...]string{"+", "-", "*", "/", "%"}[op] }

// Arith applies an arithmetic operator with int/float coercion.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (a *Arith) Eval(row []Value) Value {
	l, r := a.L.Eval(row), a.R.Eval(row)
	li, lok := l.(int64)
	ri, rok := r.(int64)
	if lok && rok {
		switch a.Op {
		case Add:
			return li + ri
		case Sub:
			return li - ri
		case Mul:
			return li * ri
		case Div:
			if ri == 0 {
				return nil
			}
			return li / ri
		default:
			if ri == 0 {
				return nil
			}
			return li % ri
		}
	}
	lf, _ := toFloat(l)
	rf, _ := toFloat(r)
	switch a.Op {
	case Add:
		return lf + rf
	case Sub:
		return lf - rf
	case Mul:
		return lf * rf
	case Div:
		if rf == 0 {
			return nil
		}
		return lf / rf
	default:
		if rf == 0 {
			return nil
		}
		return float64(int64(lf) % int64(rf))
	}
}

// WireSize implements Expr.
func (a *Arith) WireSize() int { return 2 + a.L.WireSize() + a.R.WireSize() }

func (a *Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// Call invokes a registered scalar function by name — the mechanism
// behind the workload's f(R.num3, S.num3) predicate (§5.1), which must
// be evaluated after the equi-join because it references both tables.
type Call struct {
	Name string
	Args []Expr
}

// Eval implements Expr. Unknown functions evaluate to nil.
func (c *Call) Eval(row []Value) Value {
	fn, ok := funcs[c.Name]
	if !ok {
		return nil
	}
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.Eval(row)
	}
	return fn(args)
}

// WireSize implements Expr.
func (c *Call) WireSize() int {
	n := env.StringSize(c.Name) + 1
	for _, a := range c.Args {
		n += a.WireSize()
	}
	return n
}

func (c *Call) String() string {
	s := c.Name + "("
	for i, a := range c.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

// funcs is the registry of scalar functions available to Call. All nodes
// of a deployment must register the same functions (they are part of the
// "grassroots software" shipped to every participant, §2.2).
var funcs = map[string]func([]Value) Value{}

// RegisterFunc installs a scalar function usable in query plans.
func RegisterFunc(name string, fn func(args []Value) Value) { funcs[name] = fn }

// Truthy converts a value to a boolean: false for nil, false, zero
// numbers, and empty strings.
func Truthy(v Value) bool {
	switch v := v.(type) {
	case nil:
		return false
	case bool:
		return v
	case int64:
		return v != 0
	case float64:
		return v != 0
	case string:
		return v != ""
	default:
		return true
	}
}

func init() {
	gob.Register(&Col{})
	gob.Register(&Const{})
	gob.Register(&Cmp{})
	gob.Register(&And{})
	gob.Register(&Or{})
	gob.Register(&Not{})
	gob.Register(&Arith{})
	gob.Register(&Call{})
}
