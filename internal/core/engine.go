package core

import (
	"crypto/sha1"
	"encoding/binary"
	"time"

	"pier/internal/dht/provider"
	"pier/internal/env"
)

// QueryNS is the namespace query-dissemination multicasts are tagged
// with.
const QueryNS = "pier.query"

// Config controls one engine instance.
type Config struct {
	// AggFlushInterval is how often dirty partial aggregates are
	// re-put while a join or stream keeps feeding them.
	AggFlushInterval time.Duration
}

// DefaultConfig returns the engine defaults.
func DefaultConfig() Config {
	return Config{AggFlushInterval: time.Second}
}

// ResultFunc receives one output tuple at the query initiator. window is
// 0 for one-shot queries and the window index for continuous ones.
type ResultFunc func(t *Tuple, window int)

// Engine is the per-node PIER query processor. One instance runs on
// every participating node; any node can initiate queries.
type Engine struct {
	env  env.Env
	prov *provider.Provider
	cfg  Config

	execs      map[uint64]*exec
	collectors map[uint64]ResultFunc
	nodeIID    int64
}

// New creates the engine and hooks it into the provider's multicast
// delivery. The caller routes non-DHT messages through HandleMessage.
func New(e env.Env, prov *provider.Provider, cfg Config) *Engine {
	if cfg.AggFlushInterval <= 0 {
		cfg.AggFlushInterval = time.Second
	}
	h := sha1.Sum([]byte(e.Addr()))
	eng := &Engine{
		env:        e,
		prov:       prov,
		cfg:        cfg,
		execs:      make(map[uint64]*exec),
		collectors: make(map[uint64]ResultFunc),
		nodeIID:    int64(binary.BigEndian.Uint64(h[:8]) >> 1),
	}
	prov.OnMulticast(eng.onMulticast)
	return eng
}

// Provider returns the provider the engine runs over.
func (eng *Engine) Provider() *provider.Provider { return eng.prov }

// Run validates the plan, registers the result collector, and multicasts
// the query instructions to all nodes. It returns the query id.
func (eng *Engine) Run(p *Plan, onResult ResultFunc) (uint64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	id := eng.env.Rand().Uint64()
	eng.collectors[id] = onResult
	eng.prov.Multicast(QueryNS, &queryMsg{ID: id, Initiator: eng.env.Addr(), Plan: p})
	return id, nil
}

// Cancel stops delivering results for a query to this initiator.
// Distributed query state simply ages out with its soft-state TTL.
func (eng *Engine) Cancel(id uint64) { delete(eng.collectors, id) }

// HandleMessage consumes engine messages (results), returning false for
// anything else.
func (eng *Engine) HandleMessage(from env.Addr, m env.Message) bool {
	rm, ok := m.(*resultMsg)
	if !ok {
		return false
	}
	if fn, ok := eng.collectors[rm.ID]; ok {
		for _, t := range rm.Tuples {
			fn(t, rm.Window)
		}
	}
	return true
}

func (eng *Engine) onMulticast(origin env.Addr, ns string, payload env.Message) {
	if ns != QueryNS {
		return
	}
	switch m := payload.(type) {
	case *queryMsg:
		if _, running := eng.execs[m.ID]; running {
			return
		}
		ex := newExec(eng, m)
		eng.execs[m.ID] = ex
		ex.start()
		eng.env.After(m.Plan.TTL, func() {
			ex.stop()
			delete(eng.execs, m.ID)
		})
	case *bloomDist:
		if ex, ok := eng.execs[m.ID]; ok {
			ex.onBloomDist(m)
		}
	}
}
