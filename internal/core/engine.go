package core

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pier/internal/dht/provider"
	"pier/internal/env"
	"pier/internal/trace"
)

// QueryNS is the namespace query-dissemination multicasts are tagged
// with.
const QueryNS = "pier.query"

// Config controls one engine instance.
//
// The result-channel fields (ResultBatch, ResultFlushInterval,
// ResultCredit, CreditRefresh) shape how executors deliver result
// tuples back to the query initiator; like the Bloom filter geometry,
// they should be configured identically on every node of a deployment
// (a mixed deployment stays correct but flow-controls suboptimally).
type Config struct {
	// AggFlushInterval is how often dirty partial aggregates are
	// re-put while a join or stream keeps feeding them.
	AggFlushInterval time.Duration

	// ResultBatch is the executor-side result buffer's size trigger:
	// once this many output tuples accumulate for the initiator they
	// are flushed as one resultMsg frame. 0 picks the default (32);
	// 1 ships one frame per tuple (the pre-batching behavior when
	// credit is also disabled).
	ResultBatch int
	// ResultFlushInterval bounds how long a buffered result tuple may
	// wait for the size trigger before a timer flushes the buffer
	// anyway. 0 picks the default (200ms).
	ResultFlushInterval time.Duration
	// ResultCredit is the per-sender credit window in tuples: an
	// executor may have at most this many result tuples in flight
	// (sent but not yet granted away by the initiator), so n senders
	// converging on one initiator are collectively bounded instead of
	// melting its inbound link. 0 picks the default (128); negative
	// disables flow control entirely.
	ResultCredit int
	// CreditRefresh is the executor's stall-refresh period: when a
	// sender has buffered results but an exhausted credit window and
	// no grant arrives within this time (grant lost, initiator
	// unreachable, frames dropped by churn), it re-opens one window on
	// its own so the channel throttles under loss instead of
	// deadlocking. 0 picks the default (5s).
	CreditRefresh time.Duration

	// DispatchShards is how many per-query-keyed worker shards the
	// engine spreads result and credit message processing across. All
	// messages of one query run on one shard in FIFO order; different
	// queries drain concurrently. 0 or 1 processes everything inline
	// on the transport event loop — the simulator's mode, since its
	// determinism contract requires execution order to equal delivery
	// order. Real nodes default to GOMAXPROCS (see pier.StartNode).
	DispatchShards int

	// TraceSample is the probability that a query whose plan did not
	// request tracing gets traced anyway (0 disables sampling; plans
	// with Trace set are always traced). The sampling draw consumes
	// the engine's RNG only when TraceSample > 0, so enabling the
	// tracing subsystem without sampling perturbs nothing.
	TraceSample float64
	// TraceBuf bounds each traced executor's span buffer: once full,
	// further spans are dropped and counted, so a result flood can
	// never grow tracing state without bound. 0 picks the default
	// (256).
	TraceBuf int
	// TraceRetain is how many finished traces an initiator retains
	// for retrieval (EXPLAIN TRACE, the admin trace endpoint) after
	// their queries close. 0 picks the default (16).
	TraceRetain int
}

// DefaultConfig returns the engine defaults.
func DefaultConfig() Config {
	return Config{
		AggFlushInterval:    time.Second,
		ResultBatch:         32,
		ResultFlushInterval: 200 * time.Millisecond,
		ResultCredit:        128,
		CreditRefresh:       5 * time.Second,
	}
}

// QueryStats counts engine-level result-channel and robustness events,
// in the style of env.LinkStats: monotone uint64 counters, snapshotted
// through Engine.QueryStats. Sender-side counters (batches, tuples,
// stalls) increment on the node running the executor; collector-side
// counters (grants) on the query initiator.
type QueryStats struct {
	// ResultBatches counts result frames shipped to initiators;
	// ResultTuples counts the tuples they carried.
	// ResultTuples/ResultBatches is the result channel's coalescing
	// factor (per-tuple delivery pins it at 1).
	ResultBatches uint64
	ResultTuples  uint64
	// CreditGrants counts creditMsg grants issued by collectors on
	// this node.
	CreditGrants uint64
	// CreditStalls counts executor stall episodes: a flush found
	// buffered results but an exhausted credit window.
	CreditStalls uint64
	// BloomFallbacks counts Bloom-join filter combines degraded to a
	// saturated (accept-all) filter because a peer's filter arrived
	// with mismatched geometry and could not be OR-ed.
	BloomFallbacks uint64
	// TraceSpans counts spans absorbed by collectors on this node;
	// TraceSpanDrops counts spans reported lost to full buffers
	// (executor-side or collector-side).
	TraceSpans     uint64
	TraceSpanDrops uint64
}

// queryCounters is the engine's live counter set behind QueryStats.
// The fields are atomics because dispatch shards increment them off
// the event loop; Engine.QueryStats snapshots them into the plain
// exported struct.
type queryCounters struct {
	resultBatches  atomic.Uint64
	resultTuples   atomic.Uint64
	creditGrants   atomic.Uint64
	creditStalls   atomic.Uint64
	bloomFallbacks atomic.Uint64
	traceSpans     atomic.Uint64
	traceSpanDrops atomic.Uint64
}

// ResultFunc receives one output tuple at the query initiator. window is
// 0 for one-shot queries and the window index for continuous ones.
type ResultFunc func(t *Tuple, window int)

// Observer receives the observed result cardinality of one query window
// at the initiator, after the window closes (next window's first result,
// cancel, or the query's TTL). The statistics catalog registers one to
// correct stale selectivity estimates with measured outcomes.
type Observer func(p *Plan, window, count int)

// collector is the initiator-side state of one running query: the
// application callback plus the per-window result counts the observer
// is fed from. Counts are kept per window because resultMsgs from
// different nodes interleave — a late window-w straggler can arrive
// after window w+1 opened.
type collector struct {
	// mu guards the mutable fields (counts, maxW, closed, credit,
	// tuples, and the span accumulator): the query's dispatch shard
	// mutates them as frames arrive while the event loop closes,
	// cancels, or reads the collector. fn, plan, start, local, and
	// traced are set before the collector is published and never
	// change; contacted is written and read on the event loop only.
	mu sync.Mutex

	fn     ResultFunc
	plan   *Plan
	counts map[int]int
	maxW   int
	// start anchors the window clamp: a resultMsg may never advance
	// window accounting beyond what the plan's Every and the time
	// elapsed since the query was initiated allow (a single crafted
	// window would otherwise permanently close every real window's
	// observer accounting).
	start time.Time
	// credit tracks, per sender, how many result tuples the
	// application callback has drained and the cumulative limit last
	// granted; replenishment grants flow from here.
	credit map[env.Addr]*senderCredit
	// closed is the lowest window not yet reported to the observer;
	// stragglers below it still reach the application callback but are
	// no longer counted, keeping the observer exactly-once per window.
	closed int
	ttl    env.Timer
	// contacted is the trie-node count of a completed index traversal
	// (index-scan queries only; see Engine.IndexContacts).
	contacted int
	// local marks a query executed entirely on the initiator (index
	// access path): nothing was multicast, so Cancel has nothing to
	// tear down remotely.
	local bool
	// traced marks a query whose executors record trace spans; the
	// collector accumulates them (bounded) as result frames arrive.
	traced    bool
	spans     []trace.Span
	spanDrops uint64
	spanSeq   uint32
	// tuples totals the result tuples delivered, for the collect
	// span's note.
	tuples uint64
}

// collectorSpanCap bounds the spans one collector accumulates: with n
// executors each bounded by TraceBuf, the initiator must still bound
// its own memory against a large or hostile deployment.
const collectorSpanCap = 4096

// senderCredit is the collector's per-sender flow-control ledger.
type senderCredit struct {
	// received counts tuples delivered (and drained through the
	// application callback) from this sender.
	received int64
	// granted is the cumulative limit last issued to the sender.
	granted int64
}

// allowedWindow is the highest window index a result may legitimately
// carry right now: 0 for one-shot plans, and for continuous plans the
// window currently open at the initiator plus one of grace (executor
// clocks start at query arrival, slightly after the collector's, and
// real deployments skew a little).
func (c *collector) allowedWindow(now time.Time) int {
	if !c.plan.Continuous {
		return 0
	}
	return int(now.Sub(c.start)/c.plan.Every) + 1
}

// Engine is the per-node PIER query processor. One instance runs on
// every participating node; any node can initiate queries.
type Engine struct {
	env  env.Env
	prov *provider.Provider
	cfg  Config

	// mu guards the execs and collectors maps: dispatch shards look
	// queries up while the event loop registers and removes them.
	// Entries' own state has finer-grained locks (collector.mu,
	// exec.resMu); everything outside the result channel still runs
	// exclusively on the event loop.
	mu sync.Mutex

	execs      map[uint64]*exec
	collectors map[uint64]*collector
	dispatch   *dispatcher
	obs        Observer
	ranger     IndexRanger
	nodeIID    int64
	qstats     queryCounters

	// cancelled remembers recently cancelled query ids (bounded FIFO):
	// the cancel and query multicasts are independent best-effort
	// floods, so a node can see the cancel first — or see the query
	// again via a slower flood path — and must not start a cancelled
	// executor that would then live to its TTL.
	cancelled   map[uint64]bool
	cancelOrder []uint64

	// traces retains assembled traces of finished queries initiated
	// here (bounded FIFO of cfg.TraceRetain).
	traces     map[uint64]*trace.Trace
	traceOrder []uint64

	// Latency histograms, observed for every query (tracing not
	// required): end-to-end query duration at collector close, result
	// flush latency at the executors, and per-stage span durations as
	// traced spans reach collectors. All are allocated lazily behind
	// histMu — a simulated node that never runs a query pays nothing
	// for them (the full set is ~2.5KB, the single largest fixed cost
	// per node at 100k-node scale).
	histMu    sync.Mutex
	hQueryDur *trace.Histogram
	hFlushLat *trace.Histogram
	hSpanDur  []*trace.Histogram
}

// cancelMemo bounds the remembered cancelled-id set.
const cancelMemo = 128

// New creates the engine and hooks it into the provider's multicast
// delivery. The caller routes non-DHT messages through HandleMessage.
func New(e env.Env, prov *provider.Provider, cfg Config) *Engine {
	if cfg.AggFlushInterval <= 0 {
		cfg.AggFlushInterval = time.Second
	}
	if cfg.ResultBatch == 0 {
		cfg.ResultBatch = 32
	}
	if cfg.ResultBatch < 1 {
		cfg.ResultBatch = 1
	}
	if cfg.ResultFlushInterval <= 0 {
		cfg.ResultFlushInterval = 200 * time.Millisecond
	}
	if cfg.ResultCredit == 0 {
		cfg.ResultCredit = 128
	}
	if cfg.ResultCredit < 0 {
		cfg.ResultCredit = 0 // negative: flow control explicitly off
	}
	if cfg.CreditRefresh <= 0 {
		cfg.CreditRefresh = 5 * time.Second
	}
	if cfg.DispatchShards < 1 {
		cfg.DispatchShards = 1
	}
	if cfg.TraceBuf <= 0 {
		cfg.TraceBuf = 256
	}
	if cfg.TraceRetain <= 0 {
		cfg.TraceRetain = 16
	}
	h := sha1.Sum([]byte(e.Addr()))
	// The maps (execs, collectors, cancelled, traces) and the latency
	// histograms are all allocated lazily at first insert/observe: on
	// most simulated nodes most of them stay nil forever, and nil maps
	// are free to read from.
	eng := &Engine{
		env:     e,
		prov:    prov,
		cfg:     cfg,
		nodeIID: int64(binary.BigEndian.Uint64(h[:8]) >> 1),
	}
	eng.dispatch = newDispatcher(eng, cfg.DispatchShards)
	prov.OnMulticast(eng.onMulticast)
	return eng
}

// Close stops the dispatch shards, running whatever work is still
// queued first. Single-shard (inline) engines have no goroutines and
// Close is a no-op for them, so simulator nodes need not call it.
func (eng *Engine) Close() { eng.dispatch.close() }

// Provider returns the provider the engine runs over.
func (eng *Engine) Provider() *provider.Provider { return eng.prov }

// QueryStats snapshots the engine's result-channel counters.
func (eng *Engine) QueryStats() QueryStats {
	return QueryStats{
		ResultBatches:  eng.qstats.resultBatches.Load(),
		ResultTuples:   eng.qstats.resultTuples.Load(),
		CreditGrants:   eng.qstats.creditGrants.Load(),
		CreditStalls:   eng.qstats.creditStalls.Load(),
		BloomFallbacks: eng.qstats.bloomFallbacks.Load(),
		TraceSpans:     eng.qstats.traceSpans.Load(),
		TraceSpanDrops: eng.qstats.traceSpanDrops.Load(),
	}
}

// SetObserver registers the cardinality-feedback sink for queries
// initiated on this node (nil disables).
func (eng *Engine) SetObserver(fn Observer) { eng.obs = fn }

// Run validates the plan, registers the result collector, and multicasts
// the query instructions to all nodes. It returns the query id.
func (eng *Engine) Run(p *Plan, onResult ResultFunc) (uint64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	id := eng.env.Rand().Uint64()
	// Sampling policy: an explicit Plan.Trace always traces; otherwise
	// TraceSample decides probabilistically. The RNG is only consumed
	// when sampling is actually configured, so deployments that never
	// enable it keep their exact deterministic schedules.
	traced := p.Trace
	if !traced && eng.cfg.TraceSample > 0 {
		traced = eng.env.Rand().Float64() < eng.cfg.TraceSample
	}
	c := &collector{
		fn:     onResult,
		plan:   p,
		counts: make(map[int]int),
		start:  eng.env.Now(),
		credit: make(map[env.Addr]*senderCredit),
		traced: traced,
	}
	eng.putCollector(id, c)
	// The distributed execution dies at the TTL; drop the collector (and
	// report the final window) with it.
	c.ttl = eng.env.After(p.TTL, func() { eng.closeCollector(id) })
	if eng.indexRunnable(p) {
		// Index access path: traverse the PHT from here instead of
		// multicasting the plan to every node (§4.3's missing range
		// lookup, closed by internal/index).
		c.local = true
		eng.runIndexQuery(id, p)
		return id, nil
	}
	eng.prov.Multicast(QueryNS, &queryMsg{ID: id, Initiator: eng.env.Addr(), Trace: traced, Plan: p})
	return id, nil
}

// Cancel stops a query started on this node: the collector goes
// immediately, and a cancel multicast tears the query's executors down
// network-wide — window timers stop and soft state stops being renewed,
// so the query dies now instead of at its TTL. It reports whether a
// live collector for id existed here (false lets the admin plane answer
// 404 instead of silently acking an unknown id).
func (eng *Engine) Cancel(id uint64) bool {
	eng.mu.Lock()
	c, ok := eng.collectors[id]
	eng.mu.Unlock()
	if !ok {
		return false
	}
	local := c.local
	eng.closeCollector(id)
	if !local {
		// Initiator-side index queries never multicast, so there are
		// no remote executors to tear down.
		eng.prov.Multicast(QueryNS, &cancelMsg{ID: id})
	}
	return true
}

// putCollector registers a query's collector, allocating the map on
// first use.
func (eng *Engine) putCollector(id uint64, c *collector) {
	eng.mu.Lock()
	if eng.collectors == nil {
		eng.collectors = make(map[uint64]*collector)
	}
	eng.collectors[id] = c
	eng.mu.Unlock()
}

// closeCollector reports every still-open window to the observer,
// observes the query's end-to-end duration, retains the assembled
// trace (traced queries), and forgets the query.
func (eng *Engine) closeCollector(id uint64) {
	eng.mu.Lock()
	c, ok := eng.collectors[id]
	if ok {
		delete(eng.collectors, id)
	}
	eng.mu.Unlock()
	if !ok {
		return
	}
	c.ttl.Stop()
	now := eng.env.Now()
	c.mu.Lock()
	reports := c.gatherWindowsLocked(c.maxW + 1)
	c.mu.Unlock()
	eng.deliverReports(c.plan, reports)
	eng.queryDurHist().Observe(now.Sub(c.start).Seconds())
	if c.traced {
		c.mu.Lock()
		eng.recordCollectorSpanLocked(c, trace.Span{
			Stage: trace.StageCollect,
			Start: c.start.UnixNano(),
			Dur:   now.Sub(c.start),
			Note:  fmt.Sprintf("%d tuples from %d senders", c.tuples, len(c.credit)),
		})
		tr := eng.assembleTraceLocked(id, c, now.UnixNano())
		c.mu.Unlock()
		eng.retainTrace(id, tr)
	}
}

// assembleTraceLocked builds the causally ordered trace of a traced
// query from the collector's accumulated spans. The caller holds c.mu.
func (eng *Engine) assembleTraceLocked(id uint64, c *collector, finished int64) *trace.Trace {
	tr := &trace.Trace{
		QueryID:  id,
		Root:     eng.env.Addr(),
		Started:  c.start.UnixNano(),
		Finished: finished,
		Spans:    append([]trace.Span(nil), c.spans...),
		Drops:    c.spanDrops,
	}
	tr.Sort()
	return tr
}

// retainTrace keeps a finished trace retrievable, evicting the oldest
// past the TraceRetain bound.
func (eng *Engine) retainTrace(id uint64, tr *trace.Trace) {
	if eng.traces == nil {
		eng.traces = make(map[uint64]*trace.Trace)
	}
	if _, ok := eng.traces[id]; !ok {
		eng.traceOrder = append(eng.traceOrder, id)
		if len(eng.traceOrder) > eng.cfg.TraceRetain {
			delete(eng.traces, eng.traceOrder[0])
			eng.traceOrder = eng.traceOrder[1:]
		}
	}
	eng.traces[id] = tr
}

// Trace returns the trace of a traced query initiated on this node:
// the partial trace of a still-live query (Finished zero), or the
// retained trace of a finished one. ok is false for unknown ids and
// for queries that were not traced.
func (eng *Engine) Trace(id uint64) (*trace.Trace, bool) {
	eng.mu.Lock()
	c, live := eng.collectors[id]
	eng.mu.Unlock()
	if live {
		if !c.traced {
			return nil, false
		}
		c.mu.Lock()
		tr := eng.assembleTraceLocked(id, c, 0)
		c.mu.Unlock()
		return tr, true
	}
	if tr, ok := eng.traces[id]; ok {
		return tr, true
	}
	return nil, false
}

// recordCollectorSpan records one initiator-side span into the
// collector's bounded accumulator and its stage histogram.
func (eng *Engine) recordCollectorSpan(c *collector, s trace.Span) {
	c.mu.Lock()
	eng.recordCollectorSpanLocked(c, s)
	c.mu.Unlock()
}

// recordCollectorSpanLocked is recordCollectorSpan with c.mu held.
func (eng *Engine) recordCollectorSpanLocked(c *collector, s trace.Span) {
	s.Node = eng.env.Addr()
	s.Seq = c.spanSeq
	c.spanSeq++
	eng.spanDurHist(s.Stage).Observe(s.Dur.Seconds())
	eng.qstats.traceSpans.Add(1)
	if len(c.spans) >= collectorSpanCap {
		c.spanDrops++
		eng.qstats.traceSpanDrops.Add(1)
		return
	}
	c.spans = append(c.spans, s)
}

// absorbSpansLocked folds one result frame's piggybacked spans into
// the collector, bounded by collectorSpanCap, and observes their
// stage histograms. The caller holds c.mu.
func (eng *Engine) absorbSpansLocked(c *collector, spans []trace.Span, drops uint64) {
	c.spanDrops += drops
	eng.qstats.traceSpanDrops.Add(drops)
	for _, s := range spans {
		if !s.Stage.Valid() || s.Dur < 0 {
			continue // simulator paths skip the wire codec's validation
		}
		eng.spanDurHist(s.Stage).Observe(s.Dur.Seconds())
		eng.qstats.traceSpans.Add(1)
		if len(c.spans) >= collectorSpanCap {
			c.spanDrops++
			eng.qstats.traceSpanDrops.Add(1)
			continue
		}
		c.spans = append(c.spans, s)
	}
}

// queryDurHist returns the end-to-end query duration histogram,
// allocating it on first use.
func (eng *Engine) queryDurHist() *trace.Histogram {
	eng.histMu.Lock()
	if eng.hQueryDur == nil {
		eng.hQueryDur = trace.NewHistogram(nil)
	}
	h := eng.hQueryDur
	eng.histMu.Unlock()
	return h
}

// flushLatHist returns the result flush latency histogram, allocating
// it on first use. Dispatch shards and the event loop both observe it.
func (eng *Engine) flushLatHist() *trace.Histogram {
	eng.histMu.Lock()
	if eng.hFlushLat == nil {
		eng.hFlushLat = trace.NewHistogram(nil)
	}
	h := eng.hFlushLat
	eng.histMu.Unlock()
	return h
}

// spanDurHist returns the duration histogram of one trace stage,
// allocating the slice and the stage's histogram on first use.
func (eng *Engine) spanDurHist(stage trace.Stage) *trace.Histogram {
	eng.histMu.Lock()
	if eng.hSpanDur == nil {
		eng.hSpanDur = make([]*trace.Histogram, trace.NumStages)
	}
	h := eng.hSpanDur[stage]
	if h == nil {
		h = trace.NewHistogram(nil)
		eng.hSpanDur[stage] = h
	}
	eng.histMu.Unlock()
	return h
}

// QueryDurations snapshots the end-to-end query duration histogram
// (observed at collector close for every query initiated here).
func (eng *Engine) QueryDurations() trace.HistogramSnapshot {
	eng.histMu.Lock()
	h := eng.hQueryDur
	eng.histMu.Unlock()
	if h == nil {
		return trace.NewHistogram(nil).Snapshot()
	}
	return h.Snapshot()
}

// FlushLatencies snapshots the result flush latency histogram
// (observed at this node's executors: first tuple buffered to frame
// shipped).
func (eng *Engine) FlushLatencies() trace.HistogramSnapshot {
	eng.histMu.Lock()
	h := eng.hFlushLat
	eng.histMu.Unlock()
	if h == nil {
		return trace.NewHistogram(nil).Snapshot()
	}
	return h.Snapshot()
}

// SpanDurations snapshots the per-stage span duration histograms, in
// stage order (observed as traced spans reach this node's collectors).
// Stages never observed render as empty histograms, so the /metrics
// export always carries the full stage set.
func (eng *Engine) SpanDurations() []trace.NamedSnapshot {
	names := trace.StageNames()
	hists := make([]*trace.Histogram, len(names))
	eng.histMu.Lock()
	copy(hists, eng.hSpanDur)
	eng.histMu.Unlock()
	out := make([]trace.NamedSnapshot, len(names))
	for i, name := range names {
		if hists[i] == nil {
			out[i] = trace.NamedSnapshot{Name: name, Hist: trace.NewHistogram(nil).Snapshot()}
			continue
		}
		out[i] = trace.NamedSnapshot{Name: name, Hist: hists[i].Snapshot()}
	}
	return out
}

// windowReport is one closed window's observed cardinality, queued
// for the observer.
type windowReport struct {
	w, n int
}

// gatherWindowsLocked closes every counted window below the given
// bound, exactly once each, and returns their cardinalities in window
// order for delivery to the observer. The caller holds c.mu.
func (c *collector) gatherWindowsLocked(before int) []windowReport {
	if before > c.closed {
		c.closed = before
	}
	var ws []int
	for w := range c.counts {
		if w < before {
			ws = append(ws, w)
		}
	}
	sort.Ints(ws)
	var out []windowReport
	for _, w := range ws {
		n := c.counts[w]
		delete(c.counts, w)
		if n > 0 {
			out = append(out, windowReport{w: w, n: n})
		}
	}
	return out
}

// deliverReports feeds gathered window cardinalities to the observer.
// The statistics catalog behind the observer is event-loop-confined,
// so sharded dispatch Posts the reports back to the loop; inline
// dispatch calls straight through, preserving the simulator's exact
// pre-sharding execution order.
func (eng *Engine) deliverReports(p *Plan, reports []windowReport) {
	if eng.obs == nil || len(reports) == 0 {
		return
	}
	if eng.dispatch.inline() {
		for _, r := range reports {
			eng.obs(p, r.w, r.n)
		}
		return
	}
	eng.env.Post(func() {
		for _, r := range reports {
			eng.obs(p, r.w, r.n)
		}
	})
}

// ActiveExecs returns the number of query executors currently running
// on this node. The chaos harness's termination invariant asserts it
// reaches zero once every query's TTL has passed.
func (eng *Engine) ActiveExecs() int {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	return len(eng.execs)
}

// OpenCollectors returns the number of queries initiated on this node
// whose collectors are still registered (not yet cancelled or expired).
func (eng *Engine) OpenCollectors() int {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	return len(eng.collectors)
}

// QueryInfo describes one query alive on this node, as surfaced by the
// admin plane (GET /api/queries) and the daemon shell.
type QueryInfo struct {
	// ID is the query id (Cancel's argument).
	ID uint64
	// Initiator is true when this node runs the query's collector —
	// the only role Cancel can tear down network-wide from here.
	Initiator bool
	// Executor is true when this node runs one of the query's
	// executors (every participating node does, the initiator
	// included).
	Executor bool
	// Tables names the plan's input relations.
	Tables []string
	// Continuous marks a windowed continuous query.
	Continuous bool
	// Started is when this node first saw the query (collector
	// registration or executor start, whichever exists).
	Started time.Time
}

// LiveQueries lists the queries currently alive on this node — one
// entry per id, merging the collector and executor roles — sorted by
// id for deterministic output.
func (eng *Engine) LiveQueries() []QueryInfo {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	infos := make(map[uint64]*QueryInfo)
	at := func(id uint64) *QueryInfo {
		qi := infos[id]
		if qi == nil {
			qi = &QueryInfo{ID: id}
			infos[id] = qi
		}
		return qi
	}
	for id, c := range eng.collectors {
		qi := at(id)
		qi.Initiator = true
		qi.Continuous = c.plan.Continuous
		qi.Started = c.start
		for _, tr := range c.plan.Tables {
			qi.Tables = append(qi.Tables, tr.NS)
		}
	}
	for id, ex := range eng.execs {
		qi := at(id)
		qi.Executor = true
		qi.Continuous = ex.plan.Continuous
		if qi.Started.IsZero() {
			qi.Started = ex.startAt
			for _, tr := range ex.plan.Tables {
				qi.Tables = append(qi.Tables, tr.NS)
			}
		}
	}
	out := make([]QueryInfo, 0, len(infos))
	for _, id := range env.SortedKeys(infos) {
		out = append(out, *infos[id])
	}
	return out
}

// HandleMessage consumes engine messages (results at the initiator,
// credit grants at executors), returning false for anything else. The
// two result-channel messages are not processed here but handed to the
// query's dispatch shard; with one shard that is an inline call and
// this behaves exactly as it reads.
func (eng *Engine) HandleMessage(from env.Addr, m env.Message) bool {
	switch msg := m.(type) {
	case *resultMsg:
		eng.dispatch.enqueue(task{from: from, rm: msg})
		return true
	case *creditMsg:
		eng.dispatch.enqueue(task{from: from, cm: msg})
		return true
	}
	return false
}

// onResult is the initiator side of the result channel: count the
// window, drain the tuples into the application callback, and
// replenish the sender's credit. It runs on the query's dispatch
// shard; the application callback is invoked outside the collector
// lock (per-shard FIFO already serializes it per query) so a callback
// that re-enters the engine cannot deadlock.
func (eng *Engine) onResult(from env.Addr, rm *resultMsg) {
	eng.mu.Lock()
	c, ok := eng.collectors[rm.ID]
	eng.mu.Unlock()
	if !ok {
		return
	}
	now := eng.env.Now()
	c.mu.Lock()
	// The window index arrived over the network. Clamp it to what the
	// plan's Every and the elapsed time allow: a crafted (or buggy)
	// huge window would otherwise jump c.maxW, and gatherWindows would
	// permanently close every real window's observer accounting — and
	// skew the stats catalog's cardinality feedback.
	if rm.Window < 0 || rm.Window > c.allowedWindow(now) {
		c.mu.Unlock()
		return
	}
	if rm.Window >= c.closed {
		c.counts[rm.Window] += len(rm.Tuples)
	}
	var reports []windowReport
	if rm.Window > c.maxW {
		c.maxW = rm.Window
		// Windows more than one behind the watermark are closed;
		// the one-window grace absorbs cross-node stragglers.
		reports = c.gatherWindowsLocked(c.maxW - 1)
	}
	c.tuples += uint64(len(rm.Tuples))
	if c.traced && (len(rm.Spans) > 0 || rm.SpanDrops > 0) {
		eng.absorbSpansLocked(c, rm.Spans, rm.SpanDrops)
	}
	c.mu.Unlock()
	eng.deliverReports(c.plan, reports)
	for _, t := range rm.Tuples {
		c.fn(t, rm.Window)
	}
	eng.replenishCredit(c, rm.ID, from, len(rm.Tuples))
}

// replenishCredit advances one sender's cumulative delivery limit as
// the application callback drains its frames. The first frame from a
// sender registers it in the collector's ledger (its bootstrap window
// is implicit — senders start with ResultCredit of their own); a grant
// is issued whenever the sender's remaining headroom has fallen below
// half a window, so the steady-state costs one small reverse frame per
// ~half window of results, not one per batch.
func (eng *Engine) replenishCredit(c *collector, id uint64, from env.Addr, n int) {
	w := int64(eng.cfg.ResultCredit)
	if w <= 0 || c.local {
		return
	}
	c.mu.Lock()
	sc := c.credit[from]
	if sc == nil {
		sc = &senderCredit{granted: w}
		c.credit[from] = sc
	}
	sc.received += int64(n)
	// <= rather than <: with a 1-tuple window w/2 is 0, and headroom
	// can never drop below it — strictly-less would then never grant
	// and the sender would trickle one tuple per CreditRefresh.
	grant := int64(0)
	if sc.granted-sc.received <= w/2 {
		sc.granted = sc.received + w
		grant = sc.granted
	}
	c.mu.Unlock()
	if grant > 0 {
		eng.qstats.creditGrants.Add(1)
		eng.env.Send(from, &creditMsg{ID: id, Limit: grant})
		if c.traced {
			eng.recordCollectorSpan(c, trace.Span{
				Stage: trace.StageCreditGrant,
				Start: eng.env.Now().UnixNano(),
				Note:  fmt.Sprintf("%s limit=%d", from, grant),
			})
		}
	}
}

func (eng *Engine) onMulticast(origin env.Addr, ns string, payload env.Message) {
	if ns != QueryNS {
		return
	}
	switch m := payload.(type) {
	case *queryMsg:
		eng.mu.Lock()
		_, running := eng.execs[m.ID]
		eng.mu.Unlock()
		if running {
			return
		}
		if eng.cancelled[m.ID] {
			return
		}
		// The plan arrived over the network; a crafted or corrupt one
		// (no tables, mismatched join columns) must be dropped here,
		// not panic the executor on the event loop.
		if m.Plan == nil || m.Plan.Validate() != nil {
			return
		}
		ex := newExec(eng, m)
		eng.mu.Lock()
		if eng.execs == nil {
			eng.execs = make(map[uint64]*exec)
		}
		eng.execs[m.ID] = ex
		eng.mu.Unlock()
		ex.start()
		eng.env.After(m.Plan.TTL, func() {
			ex.stop()
			eng.mu.Lock()
			delete(eng.execs, m.ID)
			eng.mu.Unlock()
		})
	case *bloomDist:
		eng.mu.Lock()
		ex := eng.execs[m.ID]
		eng.mu.Unlock()
		if ex != nil {
			ex.onBloomDist(m)
		}
	case *cancelMsg:
		eng.rememberCancelled(m.ID)
		// The TTL timer scheduled at query arrival will fire later and
		// find the exec gone; exec.stop is idempotent either way.
		eng.mu.Lock()
		ex := eng.execs[m.ID]
		eng.mu.Unlock()
		if ex != nil {
			ex.stop()
			eng.mu.Lock()
			delete(eng.execs, m.ID)
			eng.mu.Unlock()
		}
	}
}

// rememberCancelled records a cancelled query id so a late or re-flooded
// queryMsg cannot restart it, evicting the oldest past the memo bound.
func (eng *Engine) rememberCancelled(id uint64) {
	if eng.cancelled[id] {
		return
	}
	if eng.cancelled == nil {
		eng.cancelled = make(map[uint64]bool)
	}
	eng.cancelled[id] = true
	eng.cancelOrder = append(eng.cancelOrder, id)
	if len(eng.cancelOrder) > cancelMemo {
		delete(eng.cancelled, eng.cancelOrder[0])
		eng.cancelOrder = eng.cancelOrder[1:]
	}
}
