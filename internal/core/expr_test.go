package core

import (
	"testing"
	"testing/quick"
)

func row(vs ...Value) []Value { return vs }

func TestColAndConst(t *testing.T) {
	e := &Col{Idx: 1}
	if got := e.Eval(row(int64(1), "x")); got != "x" {
		t.Fatalf("Col = %v", got)
	}
	c := &Const{V: int64(9)}
	if got := c.Eval(nil); got != int64(9) {
		t.Fatalf("Const = %v", got)
	}
}

func TestCmpOperators(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r Value
		want bool
	}{
		{EQ, int64(3), int64(3), true},
		{EQ, int64(3), float64(3), true}, // numeric coercion
		{NE, "a", "b", true},
		{LT, int64(2), int64(3), true},
		{LE, int64(3), int64(3), true},
		{GT, float64(3.5), int64(3), true},
		{GE, int64(2), int64(3), false},
		{LT, "abc", "abd", true},
	}
	for _, c := range cases {
		e := &Cmp{Op: c.op, L: &Const{V: c.l}, R: &Const{V: c.r}}
		if got := e.Eval(nil); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestLogicalOps(t *testing.T) {
	tr, fa := &Const{V: true}, &Const{V: false}
	if (&And{tr, fa}).Eval(nil) != false {
		t.Error("true AND false")
	}
	if (&Or{tr, fa}).Eval(nil) != true {
		t.Error("true OR false")
	}
	if (&Not{tr}).Eval(nil) != false {
		t.Error("NOT true")
	}
}

func TestArithIntAndFloat(t *testing.T) {
	cases := []struct {
		op   ArithOp
		l, r Value
		want Value
	}{
		{Add, int64(2), int64(3), int64(5)},
		{Sub, int64(2), int64(3), int64(-1)},
		{Mul, int64(4), int64(3), int64(12)},
		{Div, int64(7), int64(2), int64(3)},
		{Mod, int64(7), int64(4), int64(3)},
		{Add, float64(1.5), int64(1), float64(2.5)},
		{Div, float64(7), float64(2), float64(3.5)},
	}
	for _, c := range cases {
		e := &Arith{Op: c.op, L: &Const{V: c.l}, R: &Const{V: c.r}}
		if got := e.Eval(nil); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestDivByZeroIsNil(t *testing.T) {
	if got := (&Arith{Op: Div, L: &Const{V: int64(1)}, R: &Const{V: int64(0)}}).Eval(nil); got != nil {
		t.Fatalf("1/0 = %v, want nil", got)
	}
	if got := (&Arith{Op: Mod, L: &Const{V: int64(1)}, R: &Const{V: int64(0)}}).Eval(nil); got != nil {
		t.Fatalf("1%%0 = %v, want nil", got)
	}
}

func TestCallRegisteredFunction(t *testing.T) {
	RegisterFunc("twice", func(args []Value) Value {
		x, _ := args[0].(int64)
		return 2 * x
	})
	e := &Call{Name: "twice", Args: []Expr{&Col{Idx: 0}}}
	if got := e.Eval(row(int64(21))); got != int64(42) {
		t.Fatalf("twice(21) = %v", got)
	}
	unknown := &Call{Name: "no-such-fn"}
	if got := unknown.Eval(nil); got != nil {
		t.Fatalf("unknown fn = %v, want nil", got)
	}
}

func TestTruthy(t *testing.T) {
	for _, v := range []Value{nil, false, int64(0), float64(0), ""} {
		if Truthy(v) {
			t.Errorf("Truthy(%v) = true", v)
		}
	}
	for _, v := range []Value{true, int64(1), float64(-1), "x"} {
		if !Truthy(v) {
			t.Errorf("Truthy(%v) = false", v)
		}
	}
}

func TestCompareValuesTotalOrderProperty(t *testing.T) {
	gen := func(seed int64) Value {
		switch seed % 4 {
		case 0:
			return seed / 4
		case 1:
			return float64(seed) / 8
		case 2:
			return ValueString(seed % 100)
		default:
			return seed%2 == 0
		}
	}
	check := func(a, b, c int64) bool {
		x, y, z := gen(a), gen(b), gen(c)
		// Antisymmetry.
		if CompareValues(x, y) != -CompareValues(y, x) {
			return false
		}
		// Transitivity of <=.
		if CompareValues(x, y) <= 0 && CompareValues(y, z) <= 0 && CompareValues(x, z) > 0 {
			return false
		}
		return CompareValues(x, x) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExprStringAndWireSize(t *testing.T) {
	e := &And{
		L: &Cmp{Op: GT, L: &Col{Idx: 2}, R: &Const{V: int64(50)}},
		R: &Call{Name: "f", Args: []Expr{&Col{Idx: 3}}},
	}
	if e.String() == "" || e.WireSize() <= 0 {
		t.Fatal("expressions must render and have a size")
	}
}
