package core

import (
	"sync"

	"pier/internal/env"
)

// Per-query dispatch sharding.
//
// The result channel is the engine's hot path: on a busy initiator
// every executor in the network funnels result frames at one node, and
// processing them all on the single transport event loop serializes
// result drainage behind DHT maintenance, timers, and every other
// query. The dispatcher routes the two result-channel messages —
// resultMsg at the collector, creditMsg at the executor — onto a small
// pool of worker shards keyed by query id, so different queries drain
// on different cores while each single query keeps strict FIFO order
// (all of a query's messages hash to the same shard, and a shard runs
// its queue in arrival order).
//
// With one shard the dispatcher runs every task inline on the caller:
// no goroutines, no queues, byte-for-byte the execution order of the
// unsharded engine. The simulator relies on this — its determinism
// contract (same seed, same schedule) only holds when delivery order
// equals execution order — so sim nodes keep DispatchShards at 1 and
// only real nodes fan out.
//
// Everything a task touches off the event loop is synchronized for it:
// the engine's exec/collector maps (Engine.mu), each collector's
// mutable state (collector.mu), each executor's result-channel state
// (exec.resMu), the query counters (atomics), and the trace histograms
// and span buffers (internal locks). Observer callbacks still run on
// the event loop — sharded dispatch Posts them back — because the
// statistics catalog they feed is event-loop-confined.

// task is one unit of sharded work: exactly one of rm and cm is set.
// Tasks are passed by value through the shard queues so enqueueing
// does not allocate.
type task struct {
	from env.Addr
	rm   *resultMsg
	cm   *creditMsg
}

// qid returns the query id the task is keyed by; all tasks of one
// query run on the same shard.
func (t task) qid() uint64 {
	if t.rm != nil {
		return t.rm.ID
	}
	return t.cm.ID
}

// run executes one task. Inbound result frames are owned by the
// engine on every delivery path — decoded from the wire, loopback
// self-send, or simulator pointer delivery — so after onResult has
// consumed one it goes back to the frame pool here.
func (eng *Engine) runTask(t task) {
	switch {
	case t.rm != nil:
		eng.onResult(t.from, t.rm)
		t.rm.Recycle()
	case t.cm != nil:
		// Grants for queries whose executor already stopped (TTL,
		// cancel) are simply stale; drop them.
		eng.mu.Lock()
		ex := eng.execs[t.cm.ID]
		eng.mu.Unlock()
		if ex != nil {
			ex.onCredit(t.cm.Limit)
		}
	}
}

// dispatcher fans engine tasks out across per-query-keyed worker
// shards. A nil shard slice means inline mode (see the package
// comment above).
type dispatcher struct {
	eng    *Engine
	shards []*shardQueue
	wg     sync.WaitGroup
}

// shardQueue is one worker's unbounded FIFO. Unbounded is deliberate:
// the event loop must never block enqueueing (a full bounded queue
// here, with the shard blocked Post-ing observer work back to the
// loop, would deadlock the node), and the queue's real bound is the
// credit window — every sender may have at most ResultCredit tuples
// in flight per query, so the backlog is capped by flow control, not
// by the channel.
type shardQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []task
	done bool
}

// newDispatcher starts n worker shards when n > 1; n <= 1 selects
// inline mode with no goroutines at all.
func newDispatcher(eng *Engine, n int) *dispatcher {
	d := &dispatcher{eng: eng}
	if n <= 1 {
		return d
	}
	d.shards = make([]*shardQueue, n)
	for i := range d.shards {
		s := &shardQueue{}
		s.cond = sync.NewCond(&s.mu)
		d.shards[i] = s
		d.wg.Add(1)
		go d.work(s)
	}
	return d
}

// inline reports whether tasks execute synchronously on the caller.
func (d *dispatcher) inline() bool { return len(d.shards) == 0 }

// enqueue hands a task to its query's shard, or runs it inline in
// single-shard mode. Enqueueing after close drops the task (the node
// is shutting down; the result channel is fire-and-forget anyway).
func (d *dispatcher) enqueue(t task) {
	if d.inline() {
		d.eng.runTask(t)
		return
	}
	s := d.shards[t.qid()%uint64(len(d.shards))]
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.q = append(s.q, t)
	s.mu.Unlock()
	s.cond.Signal()
}

// work is one shard's run loop: swap the queue out under the lock,
// run the batch outside it. The swapped-in slice is the previous
// batch's, so steady-state dispatch does not allocate.
func (d *dispatcher) work(s *shardQueue) {
	defer d.wg.Done()
	var batch []task
	for {
		s.mu.Lock()
		for len(s.q) == 0 && !s.done {
			s.cond.Wait()
		}
		if len(s.q) == 0 {
			s.mu.Unlock()
			return
		}
		batch, s.q = s.q, batch[:0]
		s.mu.Unlock()
		for i := range batch {
			d.eng.runTask(batch[i])
			batch[i] = task{} // drop message refs promptly
		}
	}
}

// close drains and stops the shards: queued tasks still run, new ones
// are dropped, and close returns once every worker has exited.
func (d *dispatcher) close() {
	for _, s := range d.shards {
		s.mu.Lock()
		s.done = true
		s.mu.Unlock()
		s.cond.Broadcast()
	}
	d.wg.Wait()
}
