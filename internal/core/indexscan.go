package core

import (
	"encoding/gob"
	"fmt"
	"strconv"

	"pier/internal/env"
	"pier/internal/trace"
)

// IndexRangeScan is the index access path of a single-table plan: scan
// the named Prefix Hash Tree index (internal/index) over the inclusive
// encoded-key range [Lo, Hi] instead of multicasting the query to every
// node for a full namespace scan.
//
// Lo and Hi are order-preserving encoded keys (wire.OrderedKey). The
// encoding is non-strictly monotone, so the range over-approximates the
// value predicate; the table's Filter is always re-checked on every
// fetched tuple, making the index purely an access-path optimization —
// it can change what the query costs, never what it returns.
type IndexRangeScan struct {
	// Index names the PHT index to traverse.
	Index string
	// Lo and Hi are the inclusive encoded-key bounds (0 and MaxUint64
	// leave the corresponding side unbounded).
	Lo, Hi uint64
}

func (s *IndexRangeScan) String() string {
	return fmt.Sprintf("index %s [%016x, %016x]", s.Index, s.Lo, s.Hi)
}

// WireSize implements env.Message so the spec can ride inside plans.
func (s *IndexRangeScan) WireSize() int { return env.StringSize(s.Index) + 20 }

// IndexRanger is the engine's hook into the PHT index subsystem
// (implemented by index.Manager; core cannot import it). RangeScan
// traverses the named index over [lo, hi], invoking each for every
// entry found — possibly more than once per base tuple while the trie
// rebalances, so callers deduplicate by (rid, iid) — and done with the
// number of trie nodes contacted once the traversal completes.
type IndexRanger interface {
	RangeScan(index string, lo, hi uint64, each func(rid string, iid int64, t *Tuple), done func(contacted int))
}

// SetIndexRanger installs the index subsystem used to execute
// IndexRangeScan plans initiated on this node (nil disables the fast
// path; such plans then fall back to multicast full scans).
func (eng *Engine) SetIndexRanger(r IndexRanger) { eng.ranger = r }

// indexRunnable reports whether a validated plan initiated here can
// execute through the index access path: a one-shot single-table plan
// with an index range attached.
func (eng *Engine) indexRunnable(p *Plan) bool {
	return eng.ranger != nil && len(p.Tables) == 1 && !p.Continuous && p.Tables[0].IndexScan != nil
}

// runIndexQuery executes a single-table plan entirely from the
// initiator: traverse the PHT, re-check the residual filter on each
// fetched tuple, and feed the results (or locally combined aggregates)
// straight into this node's own collector. No query multicast is sent
// and no remote executor is instantiated — the whole point of the
// index: the query contacts O(matching leaves) nodes instead of all n.
func (eng *Engine) runIndexQuery(id uint64, p *Plan) {
	tbl := p.Tables[0]
	is := tbl.IndexScan
	t0 := eng.env.Now()
	seen := make(map[string]bool)
	groups := make(map[string]*partialGroup)
	var order []string
	deliver := func(ts []*Tuple) {
		if len(ts) > 0 {
			eng.HandleMessage(eng.env.Addr(), &resultMsg{ID: id, Window: 0, Tuples: ts})
		}
	}
	eng.ranger.RangeScan(is.Index, is.Lo, is.Hi,
		func(rid string, iid int64, t *Tuple) {
			// The trie may hold an entry at two nodes mid-rebalance.
			key := rid + "\x00" + strconv.FormatInt(iid, 10)
			if seen[key] || t == nil {
				return
			}
			seen[key] = true
			// The index range over-approximates; the untouched Filter is
			// the exact predicate.
			if tbl.Filter != nil && !Truthy(tbl.Filter.Eval(t.Vals)) {
				return
			}
			proj := t.Project(tbl.Project)
			if len(p.Aggs) > 0 {
				gkey := JoinKeyString(proj, p.GroupBy)
				pg, ok := groups[gkey]
				if !ok {
					group := make([]Value, len(p.GroupBy))
					for i, c := range p.GroupBy {
						group[i] = proj.At(c)
					}
					states := make([]*AggState, len(p.Aggs))
					for i := range states {
						states[i] = &AggState{}
					}
					pg = &partialGroup{group: group, states: states}
					groups[gkey] = pg
					order = append(order, gkey)
				}
				for i, a := range p.Aggs {
					pg.states[i].Update(proj.At(a.Col))
				}
				return
			}
			if p.PostFilter != nil && !Truthy(p.PostFilter.Eval(proj.Vals)) {
				return
			}
			out := proj
			if len(p.Output) > 0 {
				vals := make([]Value, len(p.Output))
				for i, e := range p.Output {
					vals[i] = e.Eval(proj.Vals)
				}
				out = &Tuple{Rel: "result", Vals: vals, Pad: proj.Pad}
			}
			deliver([]*Tuple{out})
		},
		func(contacted int) {
			eng.mu.Lock()
			c, ok := eng.collectors[id]
			eng.mu.Unlock()
			if ok {
				c.contacted = contacted
				if c.traced {
					eng.recordCollectorSpan(c, trace.Span{
						Stage: trace.StageIndexScan,
						Start: t0.UnixNano(),
						Dur:   eng.env.Now().Sub(t0),
						Note:  fmt.Sprintf("%s: %d trie nodes", is.Index, contacted),
					})
				}
			}
			if len(p.Aggs) == 0 {
				return
			}
			// Traversal complete: finalize the locally combined groups.
			var out []*Tuple
			for _, gkey := range order {
				pg := groups[gkey]
				row := make([]Value, 0, len(pg.group)+len(pg.states))
				row = append(row, pg.group...)
				for i, s := range pg.states {
					row = append(row, s.Final(p.Aggs[i].Kind))
				}
				if p.Having != nil && !Truthy(p.Having.Eval(row)) {
					continue
				}
				t := &Tuple{Rel: "group", Vals: row}
				if len(p.Output) > 0 {
					vals := make([]Value, len(p.Output))
					for i, e := range p.Output {
						vals[i] = e.Eval(row)
					}
					t = &Tuple{Rel: "group", Vals: vals}
				}
				out = append(out, t)
			}
			deliver(out)
		})
}

// IndexContacts reports how many trie nodes the index traversal of a
// still-open query initiated here contacted (0 until the traversal
// finishes; ok is false for unknown or already-closed queries).
// Experiment harnesses compare this against the overlay size a full
// scan multicasts to.
func (eng *Engine) IndexContacts(id uint64) (int, bool) {
	eng.mu.Lock()
	c, ok := eng.collectors[id]
	eng.mu.Unlock()
	if !ok {
		return 0, false
	}
	return c.contacted, true
}

func init() { gob.Register(&IndexRangeScan{}) }
