package index

// Binary wire codecs (and the gob fallback registrations) for the index
// subsystem's three payload types — entries and markers stored in trie
// nodes, definitions stored in DefNS and multicast as announces.

import (
	"encoding/gob"

	"pier/internal/core"
	"pier/internal/env"
	"pier/internal/wire"
)

// Wire tags owned by package index (see the tag table in package wire).
const (
	tagEntry  byte = 110
	tagMarker byte = 111
	tagDef    byte = 112
)

func init() {
	gob.Register(&Entry{})
	gob.Register(&Marker{})
	gob.Register(&Def{})

	wire.Register(tagEntry, &Entry{},
		func(e *wire.Encoder, m env.Message) {
			en := m.(*Entry)
			// Encoded keys are high-entropy: a fixed word beats a varint.
			e.Fixed64(en.K)
			e.String(en.RID)
			e.Varint(en.IID)
			e.Message(en.T)
		},
		func(d *wire.Decoder) env.Message {
			en := &Entry{K: d.Fixed64(), RID: d.String(), IID: d.Varint()}
			m := d.Message()
			if m == nil {
				if d.Err() == nil {
					d.Fail("index entry without tuple")
				}
				return en
			}
			t, ok := m.(*core.Tuple)
			if !ok {
				d.Fail("index entry payload is not a tuple")
				return en
			}
			en.T = t
			return en
		})

	wire.Register(tagMarker, &Marker{},
		func(e *wire.Encoder, m env.Message) {},
		func(d *wire.Decoder) env.Message { return &Marker{} })

	wire.Register(tagDef, &Def{},
		func(e *wire.Encoder, m env.Message) {
			def := m.(*Def)
			e.String(def.Name)
			e.String(def.Table)
			e.String(def.Col)
			e.Int(def.ColIdx)
		},
		func(d *wire.Decoder) env.Message {
			def := &Def{Name: d.String(), Table: d.String(), Col: d.String(), ColIdx: d.Int()}
			// Hostile definitions must fail at the frame, not poison a
			// publisher's def cache: Validate is cheap and total.
			if d.Err() == nil && def.Validate() != nil {
				d.Fail("invalid index definition")
			}
			return def
		})
}
