package index

import (
	"math/rand"
	"testing"

	"pier/internal/core"
	"pier/internal/env"
	"pier/internal/wire"
	"pier/internal/wire/wiretest"
)

func randTuple(r *rand.Rand) *core.Tuple {
	t := &core.Tuple{Rel: wiretest.Str(r, 6), Pad: r.Intn(64)}
	for i, n := 0, r.Intn(5); i < n; i++ {
		switch r.Intn(4) {
		case 0:
			t.Vals = append(t.Vals, int64(r.Int31()))
		case 1:
			t.Vals = append(t.Vals, r.Float64())
		case 2:
			t.Vals = append(t.Vals, wiretest.Str(r, 8))
		default:
			t.Vals = append(t.Vals, nil)
		}
	}
	return t
}

func TestWireRoundTrip(t *testing.T) {
	wiretest.RoundTrip(t, 31, 300, []wiretest.Gen{
		{Name: "Entry", Make: func(r *rand.Rand) env.Message {
			return &Entry{K: r.Uint64(), RID: wiretest.Str(r, 10), IID: int64(r.Int31()), T: randTuple(r)}
		}},
		{Name: "Marker", Make: func(r *rand.Rand) env.Message { return &Marker{} }},
		{Name: "Def", Make: func(r *rand.Rand) env.Message {
			return &Def{
				Name:   "ix" + wiretest.Str(r, 6),
				Table:  "t" + wiretest.Str(r, 6),
				Col:    "c" + wiretest.Str(r, 6),
				ColIdx: r.Intn(16),
			}
		}},
	})
}

// TestHostileDefRejected asserts frames carrying definitions no honest
// creator can produce fail at decode instead of poisoning def caches.
func TestHostileDefRejected(t *testing.T) {
	for _, bad := range []*Def{
		{Name: "", Table: "t", Col: "c"},
		{Name: "a|b", Table: "t", Col: "c"},
		{Name: "x", Table: "t", Col: "c", ColIdx: -1},
	} {
		b, err := wire.Marshal(bad)
		if err != nil {
			continue // encoder may legitimately refuse; decode path below needs bytes
		}
		if _, err := wire.Unmarshal(b); err == nil {
			t.Fatalf("hostile def %+v decoded cleanly", bad)
		}
	}
}

// TestEntryWithoutTupleRejected asserts the executor can rely on every
// decoded entry carrying a tuple.
func TestEntryWithoutTupleRejected(t *testing.T) {
	b, err := wire.Marshal(&Entry{K: 1, RID: "r"})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if _, err := wire.Unmarshal(b); err == nil {
		t.Fatalf("entry without tuple decoded cleanly")
	}
}
