package index

import (
	"pier/internal/core"
	"pier/internal/dht/storage"
)

// RangeScan traverses one index over the inclusive encoded-key range
// [lo, hi]: starting at the trie root, every node whose prefix
// interval intersects the range is fetched with a single-key get;
// entries inside the range stream into each, and interior markers fan
// the walk out to their intersecting children. done receives the
// number of trie nodes contacted once every outstanding get resolved.
//
// The walk is chaos-safe by construction: a missing interior marker
// prunes its subtree for this scan only (the maintenance tick restores
// it within one period), an unreachable owner contributes an empty get
// after the provider timeout, and entries encountered twice while the
// trie rebalances are the caller's to deduplicate by (rid, iid) —
// core's index executor does. RangeScan implements core.IndexRanger.
func (m *Manager) RangeScan(name string, lo, hi uint64, each func(rid string, iid int64, t *core.Tuple), done func(contacted int)) {
	m.scans++
	if hi < lo || name == "" {
		done(0)
		return
	}
	visited := 0
	pending := 0
	finished := false
	finish := func() {
		if !finished && pending == 0 {
			finished = true
			done(visited)
		}
	}
	max := m.cfg.maxDepth()
	var visit func(bits string)
	visit = func(bits string) {
		visited++
		m.visits++
		m.prov.Get(NS, name+"|"+bits, func(items []*storage.Item) {
			pending--
			marker := false
			for _, it := range items {
				switch p := it.Payload.(type) {
				case *Marker:
					marker = true
				case *Entry:
					if p.K >= lo && p.K <= hi {
						each(p.RID, p.IID, p.T)
					}
				}
			}
			var children []string
			if marker {
				m.sawMarker(name + "|" + bits)
				if len(bits) < max {
					for _, b := range []string{"0", "1"} {
						child := bits + b
						clo, chi := prefixRange(child)
						if clo <= hi && chi >= lo {
							children = append(children, child)
						}
					}
				}
			}
			// Account for the children before issuing their gets: a
			// local get runs its callback synchronously, and the last
			// one to resolve — wherever it is in the recursion — must
			// be the one that fires done.
			pending += len(children)
			for _, child := range children {
				visit(child)
			}
			finish()
		})
	}
	pending = 1
	visit("")
}
