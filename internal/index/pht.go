package index

// The trie maintenance tick. Every rule here is local-plus-one-get and
// idempotent, so the trie converges under churn no matter which subset
// of nodes ran their tick: overflowing leaves split, entries stranded
// under interior markers (by stale publishers or in-flight splits) sink
// one level per tick, underflowing leaves with empty siblings merge
// back into their parent, and the marker chain above every leaf is
// re-put each tick so lost interior nodes re-materialize.

import (
	"time"

	"pier/internal/dht/storage"
	"pier/internal/env"
)

// tombstoneLifetime is the effectively-zero lifetime used to replace a
// marker that should disappear (merges); the replacing put wins over
// the old item and expires immediately.
const tombstoneLifetime = time.Nanosecond

// Tick runs one maintenance pass over the locally stored trie nodes:
// renew created definitions, split and heal, then merge. Tests and the
// experiment harnesses call it directly to settle a freshly built
// index without waiting for the loop.
func (m *Manager) Tick() {
	for _, name := range env.SortedKeys(m.created) {
		def := m.created[name]
		m.prov.Put(DefNS, def.Table, defIID(def.Name), &def, m.createdLife[name])
	}
	m.refreshDefs()

	type group struct {
		entries []*storage.Item
		marker  bool
	}
	groups := map[string]*group{}
	m.prov.Scan(NS, func(it *storage.Item) bool {
		g := groups[it.ResourceID]
		if g == nil {
			g = &group{}
			groups[it.ResourceID] = g
		}
		switch it.Payload.(type) {
		case *Marker:
			g.marker = true
		case *Entry:
			g.entries = append(g.entries, it)
		}
		return true
	})

	renewed := map[string]bool{}
	for _, rid := range env.SortedKeys(groups) {
		g := groups[rid]
		name, bits, ok := parseRID(rid)
		if !ok {
			continue
		}
		depth := len(bits)
		switch {
		case g.marker && len(g.entries) > 0:
			// Entries under an interior node: a publisher wrote to a
			// since-split prefix, or a split relocated around them.
			// Sink them one level toward their leaves.
			m.pushDown(rid, g.entries, depth)
		case g.marker:
			// Bare interior node. Its renewal is the duty of the leaf
			// owners below it; an interior node nothing renews is an
			// orphan and ages out — that is the merge-by-expiry path.
		case len(g.entries) > m.cfg.splitThreshold() && depth < m.cfg.maxDepth():
			// Overflowing leaf: become interior, push the entries down.
			m.prov.Put(NS, rid, markerIID, &Marker{}, m.cfg.markerLifetime())
			m.sawMarker(rid)
			m.pushDown(rid, g.entries, depth)
			m.renewChain(name, bits, renewed)
		default:
			m.renewChain(name, bits, renewed)
			if depth > 0 && len(g.entries) <= m.cfg.mergeThreshold() {
				m.tryMerge(name, bits, g.entries)
			}
		}
	}
}

// pushDown relocates entries from an interior (or splitting) trie node
// one level down, routed by the next bit of each entry's key, keeping
// each item's remaining lifetime.
func (m *Manager) pushDown(rid string, entries []*storage.Item, depth int) {
	now := m.env.Now()
	for _, it := range entries {
		e, ok := it.Payload.(*Entry)
		if !ok {
			continue
		}
		lt, live := remaining(it, now)
		if !live {
			continue
		}
		m.prov.Store().Remove(it.Namespace, it.ResourceID, it.InstanceID)
		child := rid
		if bitAt(e.K, depth) == 1 {
			child += "1"
		} else {
			child += "0"
		}
		m.prov.Put(NS, child, it.InstanceID, e, lt)
	}
}

// renewChain re-puts the interior markers on every proper prefix of a
// leaf that holds entries here, deduplicated per tick. This is what
// keeps the trie's skeleton alive — and what heals it: a marker lost
// with a crashed node is back one tick after any descendant leaf's
// owner runs.
func (m *Manager) renewChain(name, bits string, renewed map[string]bool) {
	for i := 0; i < len(bits); i++ {
		rid := name + "|" + bits[:i]
		if renewed[rid] {
			continue
		}
		renewed[rid] = true
		m.prov.Put(NS, rid, markerIID, &Marker{}, m.cfg.markerLifetime())
	}
}

// tryMerge collapses an underflowing leaf into its parent when the
// sibling subtree is empty: relocate the entries up and tombstone the
// parent's interior marker. If the sibling probe raced a concurrent
// writer (or timed out), the survivors' chain renewal re-splits the
// parent on a later tick — the rules are individually safe, so the
// worst case is an extra relocation, never loss.
func (m *Manager) tryMerge(name, bits string, entries []*storage.Item) {
	sibling := name + "|" + bits[:len(bits)-1]
	if bits[len(bits)-1] == '0' {
		sibling += "1"
	} else {
		sibling += "0"
	}
	m.prov.Get(NS, sibling, func(items []*storage.Item) {
		if len(items) > 0 {
			return // occupied sibling: the split is still justified
		}
		parent := name + "|" + bits[:len(bits)-1]
		now := m.env.Now()
		for _, it := range entries {
			e, ok := it.Payload.(*Entry)
			if !ok {
				continue
			}
			lt, live := remaining(it, now)
			if !live {
				continue
			}
			m.prov.Store().Remove(it.Namespace, it.ResourceID, it.InstanceID)
			m.prov.Put(NS, parent, it.InstanceID, e, lt)
		}
		m.prov.Put(NS, parent, markerIID, &Marker{}, tombstoneLifetime)
		delete(m.markerSeen, parent)
	})
}

// remaining converts an item's absolute expiry back into a lifetime
// for re-putting it elsewhere (0 = immortal; live is false for items
// that expired under us mid-tick).
func remaining(it *storage.Item, now time.Time) (lifetime time.Duration, live bool) {
	if it.Expires.IsZero() {
		return 0, true
	}
	d := it.Expires.Sub(now)
	if d <= 0 {
		return 0, false
	}
	return d, true
}
