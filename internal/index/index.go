// Package index implements a Prefix Hash Tree (PHT): a trie-structured
// range index maintained as soft state over the DHT's ordinary
// put/renew machinery. PIER concedes (§4.3, §8 of the paper) that a
// plain DHT supports only exact-match lookups, leaving every range
// predicate to run as a full-namespace scan disseminated to all n
// nodes; the PHT — the data structure the Berkeley group later built
// for exactly this gap — closes it without touching the DHT itself.
//
// # Structure
//
// An index maps an order-preserving 64-bit encoding of one attribute
// (wire.OrderedKey) onto a binary trie. Each trie node is labelled by a
// bit-string prefix and lives at the DHT key of
//
//	(pier.index, "<indexname>|<prefix>")
//
// so the trie is spread uniformly over the overlay. A *leaf* holds the
// index entries — (key, base rid, a copy of the base tuple) — whose
// encoded keys start with its prefix; an *interior* node holds a
// Marker item recording that the prefix has been split. Because a
// contiguous key range maps to a contiguous span of leaves, a range
// query visits O(matching leaves) DHT keys instead of all n nodes.
//
// # Soft state, splits, and merges
//
// Everything is an ordinary storage item with a lifetime:
//
//   - entries are published (and re-published on every base-tuple
//     renew) by the data's publisher, with the base tuple's lifetime —
//     an unrefreshed entry ages out exactly like its tuple;
//   - markers are renewed by the maintenance tick of every node that
//     stores entries somewhere below them (each leaf owner re-puts its
//     ancestor chain), so interior structure stays alive exactly as
//     long as data justifies it and re-materializes within one tick if
//     a marker is lost to a crash;
//   - when a leaf overflows SplitThreshold, its owner puts a marker at
//     the leaf's own prefix and relocates each entry one level down by
//     its next key bit; when a leaf underflows MergeThreshold and its
//     sibling subtree is empty, its owner relocates the entries to the
//     parent and tombstones the parent's marker (a zero-lifetime
//     re-put), shrinking the trie again.
//
// No operation requires more than local state plus single-key gets, so
// every transition is safe under churn: a missed relocation, a stale
// publisher writing to a since-split leaf, or a lost marker is healed
// by the next maintenance tick, and range traversal tolerates the
// intermediate states (it re-checks bounds per entry and callers
// deduplicate by entry identity).
package index

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"pier/internal/core"
	"pier/internal/dht/provider"
	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/wire"
)

// NS is the reserved DHT namespace holding every index's trie nodes
// (entries and markers).
const NS = "pier.index"

// DefNS is the reserved DHT namespace holding index definitions, keyed
// by table name so a publisher discovers all indexes of a table with
// one get.
const DefNS = "pier.index.def"

// AnnounceNS tags the multicast that disseminates a new index
// definition to every live node (late joiners fall back to DefNS).
const AnnounceNS = "pier.index"

// markerIID is the fixed instanceID of a trie node's interior marker,
// so renewals and tombstones replace rather than accumulate.
const markerIID = 1

// Def describes one index: a name (unique across the deployment), the
// table it covers, and the indexed column.
type Def struct {
	// Name identifies the index; trie-node resourceIDs are
	// "<Name>|<prefix>", so names must not contain '|'.
	Name string
	// Table is the indexed relation's namespace.
	Table string
	// Col is the indexed column's name (for planners and humans).
	Col string
	// ColIdx is the indexed column's position in the base tuple.
	ColIdx int
}

// WireSize implements env.Message (definitions ride in DHT puts and the
// announce multicast).
func (d *Def) WireSize() int {
	return env.StringSize(d.Name) + env.StringSize(d.Table) + env.StringSize(d.Col) + 3
}

// Validate rejects definitions the resourceID scheme cannot represent.
func (d *Def) Validate() error {
	if d.Name == "" || d.Table == "" || d.Col == "" {
		return fmt.Errorf("index: definition needs name, table, and column")
	}
	if strings.ContainsAny(d.Name, "|") {
		return fmt.Errorf("index: name %q must not contain '|'", d.Name)
	}
	if d.ColIdx < 0 {
		return fmt.Errorf("index: negative column position")
	}
	return nil
}

// Entry is one index entry stored at a trie leaf: the encoded key, the
// identity of the base tuple, and an index-organized copy of the tuple
// itself, so a range traversal returns rows without a second fetch
// round per match.
type Entry struct {
	// K is the order-preserving encoded key (wire.OrderedKey of the
	// indexed column).
	K uint64
	// RID and IID identify the base tuple; readers deduplicate on them
	// while the trie rebalances.
	RID string
	IID int64
	// T is the copied base tuple.
	T *core.Tuple
}

// WireSize implements env.Message.
func (e *Entry) WireSize() int {
	n := env.StringSize(e.RID) + 18
	if e.T != nil {
		n += e.T.WireSize()
	}
	return n
}

// Marker records that a trie node has been split; its presence (under
// instanceID markerIID) makes the node interior.
type Marker struct{}

// WireSize implements env.Message.
func (m *Marker) WireSize() int { return 1 }

// Config controls one node's index agent.
type Config struct {
	// Interval is the maintenance period: how often the node splits
	// overflowing local leaves, merges underflowing ones, relocates
	// misplaced entries, and renews the marker chains above its leaves.
	// Zero disables the loop (explicit Tick calls still work).
	Interval time.Duration

	// SplitThreshold is the leaf occupancy beyond which the owner
	// splits (default 16).
	SplitThreshold int

	// MergeThreshold is the leaf occupancy at or below which the owner
	// tries to merge with an empty sibling (default 4).
	MergeThreshold int

	// MaxDepth bounds trie depth — leaves at MaxDepth never split, so
	// heavily duplicated keys degrade into one fat leaf instead of an
	// unbounded chain (default 24, of the 64 encoded key bits).
	MaxDepth int

	// MarkerLifetime bounds interior markers between renewals; zero
	// defaults to 3×Interval (or 3 minutes when the loop is off) so a
	// subtree survives two missed ticks.
	MarkerLifetime time.Duration

	// CacheTTL bounds the publisher-side marker cache that lets inserts
	// skip re-probing known-interior prefixes; zero defaults to
	// Interval (or 30 seconds when the loop is off).
	CacheTTL time.Duration
}

// Enabled reports whether the maintenance loop should run.
func (c Config) Enabled() bool { return c.Interval > 0 }

func (c Config) splitThreshold() int {
	if c.SplitThreshold > 0 {
		return c.SplitThreshold
	}
	return 16
}

func (c Config) mergeThreshold() int {
	if c.MergeThreshold > 0 {
		return c.MergeThreshold
	}
	return 4
}

func (c Config) maxDepth() int {
	if c.MaxDepth > 0 && c.MaxDepth <= wire.OrderedKeyBits {
		return c.MaxDepth
	}
	return 24
}

func (c Config) markerLifetime() time.Duration {
	if c.MarkerLifetime > 0 {
		return c.MarkerLifetime
	}
	if c.Interval > 0 {
		return 3 * c.Interval
	}
	return 3 * time.Minute
}

func (c Config) cacheTTL() time.Duration {
	if c.CacheTTL > 0 {
		return c.CacheTTL
	}
	if c.Interval > 0 {
		return c.Interval
	}
	return 30 * time.Second
}

// Manager is one node's index agent: definition registry (announce
// listener, DHT fetch-through, creator-side renewal), publisher-side
// entry insertion, the trie maintenance tick, and the range-scan reader
// the query engine calls through core.IndexRanger. Like all node state
// it runs on the node's single-threaded event loop.
type Manager struct {
	env  env.Env
	prov *provider.Provider
	cfg  Config

	stop func()

	// defs caches index definitions by table; lastFetch implements the
	// fetch-through (and negative cache) for tables this node publishes
	// into without having seen an announce. defMisses counts
	// consecutive maintenance-tick refreshes that found a cached
	// definition gone from DefNS — the cache's own aging, so an index
	// whose creator died stops being maintained here too.
	defs      map[string][]Def
	lastFetch map[string]time.Time
	fetching  map[string]bool
	defMisses map[string]int

	// created holds the definitions this node created, re-published
	// every tick with their original lifetime.
	created     map[string]Def
	createdLife map[string]time.Duration

	// markerSeen caches trie prefixes recently observed interior, so an
	// insert walk descends through them without a probe per level.
	markerSeen map[string]time.Time

	scans  int64
	visits int64
}

// New builds an index agent over the node's provider and subscribes it
// to definition announces. Call Start to run the maintenance loop.
func New(e env.Env, prov *provider.Provider, cfg Config) *Manager {
	// All seven bookkeeping maps stay nil until first insert: a node
	// that neither creates nor hears about an index pays nothing.
	m := &Manager{env: e, prov: prov, cfg: cfg}
	prov.OnMulticast(func(origin env.Addr, ns string, payload env.Message) {
		if ns != AnnounceNS {
			return
		}
		if d, ok := payload.(*Def); ok && d.Validate() == nil {
			m.register(*d, true)
		}
	})
	return m
}

// Config returns the agent's configuration.
func (m *Manager) Config() Config { return m.cfg }

// Start launches the periodic maintenance loop; a no-op when disabled
// or already running.
func (m *Manager) Start() {
	if !m.cfg.Enabled() || m.stop != nil {
		return
	}
	m.stop = env.Every(m.env, m.cfg.Interval, m.Tick)
}

// Stop halts the maintenance loop (entries and markers age out on
// their own). Safe to call repeatedly.
func (m *Manager) Stop() {
	if m.stop != nil {
		m.stop()
		m.stop = nil
	}
}

// Running reports whether the maintenance loop is active.
func (m *Manager) Running() bool { return m.stop != nil }

// Stats reports cumulative reader-side counters: range scans started
// and trie nodes visited across them. Experiment harnesses diff them
// around a query to count the nodes an index scan contacted.
func (m *Manager) Stats() (scans, visits int64) { return m.scans, m.visits }

// Create announces a new index deployment-wide: the definition is
// stored in the DHT (under DefNS, renewed by this node's tick for
// lifetime at a time) and multicast to every live node, whose agents
// backfill entries for local base tuples and index every subsequent
// publish. Create returns once the puts are issued; the trie then
// builds and balances asynchronously over the next maintenance ticks.
func (m *Manager) Create(def Def, lifetime time.Duration) error {
	if err := def.Validate(); err != nil {
		return err
	}
	// Names identify tries: a second definition under an existing name
	// but a different shape would make planners attach ranges encoded
	// from one column to a trie keyed on another, silently pruning
	// matching rows. Refuse what this node can see is a conflict
	// (registration elsewhere is first-wins, so a racing remote
	// conflict degrades to this same answer).
	for _, tbl := range env.SortedKeys(m.defs) {
		for _, d := range m.defs[tbl] {
			if d.Name == def.Name && d != def {
				return fmt.Errorf("index: name %q already in use for %s(%s)", def.Name, d.Table, d.Col)
			}
		}
	}
	if lifetime <= 0 {
		lifetime = time.Hour
	}
	if m.created == nil {
		m.created = make(map[string]Def)
		m.createdLife = make(map[string]time.Duration)
	}
	m.created[def.Name] = def
	m.createdLife[def.Name] = lifetime
	d := def
	m.prov.Put(DefNS, def.Table, defIID(def.Name), &d, lifetime)
	m.prov.Multicast(AnnounceNS, &d)
	return nil
}

// Defs returns the cached index definitions covering a table.
func (m *Manager) Defs(table string) []Def { return m.defs[table] }

// AllDefs returns every index definition this node's agent currently
// knows (announced, fetched, or created here), sorted by table then
// name — the admin plane's GET /api/indexes listing.
func (m *Manager) AllDefs() []Def {
	var out []Def
	for _, table := range env.SortedKeys(m.defs) {
		defs := append([]Def(nil), m.defs[table]...)
		sort.Slice(defs, func(i, j int) bool { return defs[i].Name < defs[j].Name })
		out = append(out, defs...)
	}
	return out
}

// register adds a definition to the cache; backfill additionally
// inserts entries for every base tuple of the table already stored
// locally (with the tuple's remaining lifetime), which is what turns
// CREATE INDEX on existing data into a distributed, per-node local
// scan.
func (m *Manager) register(def Def, backfill bool) {
	m.setLastFetch(def.Table)
	for _, d := range m.defs[def.Table] {
		if d.Name == def.Name {
			return
		}
	}
	if m.defs == nil {
		m.defs = make(map[string][]Def)
	}
	m.defs[def.Table] = append(m.defs[def.Table], def)
	if !backfill {
		return
	}
	now := m.env.Now()
	type pending struct {
		rid      string
		iid      int64
		t        *core.Tuple
		lifetime time.Duration
	}
	var todo []pending
	m.prov.Scan(def.Table, func(it *storage.Item) bool {
		t, ok := it.Payload.(*core.Tuple)
		if !ok {
			return true
		}
		var lt time.Duration
		if !it.Expires.IsZero() {
			lt = it.Expires.Sub(now)
		}
		todo = append(todo, pending{rid: it.ResourceID, iid: it.InstanceID, t: t, lifetime: lt})
		return true
	})
	for _, p := range todo {
		m.Insert(def, p.rid, p.iid, p.t, p.lifetime)
	}
}

// OnPublish indexes one published (or renewed) base tuple under every
// index of its table. A table with no cached definitions triggers an
// async DefNS fetch, so a late-joining publisher starts indexing from
// its next renew onward.
func (m *Manager) OnPublish(table, rid string, iid int64, t *core.Tuple, lifetime time.Duration) {
	defs, known := m.defs[table]
	if !known {
		m.fetchDefs(table)
		return
	}
	for _, def := range defs {
		m.Insert(def, rid, iid, t, lifetime)
	}
}

// defMissLimit is how many consecutive tick refreshes must find a
// cached definition missing from DefNS before the cache drops it (one
// unreachable owner or lost reply must not kill a live index).
const defMissLimit = 2

// refreshDefs re-validates the cached definitions of every table
// against DefNS, dropping any that stayed gone for defMissLimit
// consecutive refreshes. This is the cache's expiry: once a dead
// creator's DefNS item ages out, every node stops re-inserting entries
// and renewing marker chains for the orphaned trie, and it dissolves
// like any other unrefreshed soft state.
func (m *Manager) refreshDefs() {
	for _, table := range env.SortedKeys(m.defs) {
		table := table
		if m.fetching[table] {
			continue
		}
		m.setFetching(table)
		m.prov.Get(DefNS, table, func(items []*storage.Item) {
			delete(m.fetching, table)
			m.setLastFetch(table)
			found := map[string]bool{}
			for _, it := range items {
				if d, ok := it.Payload.(*Def); ok {
					found[d.Name] = true
				}
			}
			kept := m.defs[table][:0]
			for _, d := range m.defs[table] {
				if found[d.Name] || m.created[d.Name] == d {
					delete(m.defMisses, d.Name)
					kept = append(kept, d)
					continue
				}
				if m.bumpDefMiss(d.Name); m.defMisses[d.Name] < defMissLimit {
					kept = append(kept, d)
					continue
				}
				delete(m.defMisses, d.Name)
			}
			if len(kept) == 0 {
				delete(m.defs, table)
				return
			}
			m.defs[table] = kept
		})
	}
}

// fetchDefs resolves a table's index definitions from the DHT, with an
// in-flight guard and a negative cache one CacheTTL long.
func (m *Manager) fetchDefs(table string) {
	if m.fetching[table] {
		return
	}
	if at, ok := m.lastFetch[table]; ok && m.env.Now().Sub(at) < m.cfg.cacheTTL() {
		return
	}
	m.setFetching(table)
	m.prov.Get(DefNS, table, func(items []*storage.Item) {
		delete(m.fetching, table)
		m.setLastFetch(table)
		for _, it := range items {
			if d, ok := it.Payload.(*Def); ok && d.Validate() == nil {
				m.register(*d, true)
			}
		}
	})
}

// Insert places one index entry at the trie leaf currently covering
// its key: descend from the root through interior markers (skipping
// levels the marker cache has seen recently), then put the entry at
// the first prefix without one. A concurrent split can leave the entry
// one level too high; the leaf owner's next tick relocates it.
func (m *Manager) Insert(def Def, rid string, iid int64, t *core.Tuple, lifetime time.Duration) {
	k := wire.OrderedKey(t.At(def.ColIdx))
	m.place(def.Name, k, &Entry{K: k, RID: rid, IID: iid, T: t}, lifetime, 0)
}

func (m *Manager) place(name string, k uint64, e *Entry, lifetime time.Duration, depth int) {
	max := m.cfg.maxDepth()
	for depth < max && m.markerFresh(nodeRID(name, k, depth)) {
		depth++
	}
	rid := nodeRID(name, k, depth)
	if depth >= max {
		m.putEntry(rid, e, lifetime)
		return
	}
	m.prov.Get(NS, rid, func(items []*storage.Item) {
		if hasMarker(items) {
			m.sawMarker(rid)
			m.place(name, k, e, lifetime, depth+1)
			return
		}
		m.putEntry(rid, e, lifetime)
	})
}

func (m *Manager) putEntry(rid string, e *Entry, lifetime time.Duration) {
	m.prov.Put(NS, rid, entryIID(e), e, lifetime)
}

func (m *Manager) markerFresh(rid string) bool {
	at, ok := m.markerSeen[rid]
	return ok && m.env.Now().Sub(at) < m.cfg.cacheTTL()
}

func (m *Manager) sawMarker(rid string) {
	if m.markerSeen == nil {
		m.markerSeen = make(map[string]time.Time)
	}
	m.markerSeen[rid] = m.env.Now()
}

// setFetching, setLastFetch, and bumpDefMiss are the lazy-allocating
// insert paths of the corresponding bookkeeping maps.
func (m *Manager) setFetching(table string) {
	if m.fetching == nil {
		m.fetching = make(map[string]bool)
	}
	m.fetching[table] = true
}

func (m *Manager) setLastFetch(table string) {
	if m.lastFetch == nil {
		m.lastFetch = make(map[string]time.Time)
	}
	m.lastFetch[table] = m.env.Now()
}

func (m *Manager) bumpDefMiss(name string) {
	if m.defMisses == nil {
		m.defMisses = make(map[string]int)
	}
	m.defMisses[name]++
}

// --- naming helpers -----------------------------------------------------

// nodeRID is the resourceID of the trie node at the given depth along
// key k's path.
func nodeRID(name string, k uint64, depth int) string {
	var sb strings.Builder
	sb.Grow(len(name) + 1 + depth)
	sb.WriteString(name)
	sb.WriteByte('|')
	for i := 0; i < depth; i++ {
		sb.WriteByte('0' + byte(bitAt(k, i)))
	}
	return sb.String()
}

// parseRID splits a trie-node resourceID back into index name and
// prefix bits.
func parseRID(rid string) (name, bits string, ok bool) {
	i := strings.IndexByte(rid, '|')
	if i < 0 {
		return "", "", false
	}
	name, bits = rid[:i], rid[i+1:]
	for j := 0; j < len(bits); j++ {
		if bits[j] != '0' && bits[j] != '1' {
			return "", "", false
		}
	}
	return name, bits, true
}

// bitAt returns bit i (0 = most significant) of an encoded key.
func bitAt(k uint64, i int) int { return int(k >> (63 - i) & 1) }

// prefixRange returns the inclusive encoded-key interval a prefix
// covers.
func prefixRange(bits string) (lo, hi uint64) {
	hi = ^uint64(0)
	for i := 0; i < len(bits); i++ {
		if bits[i] == '1' {
			lo |= 1 << (63 - i)
		} else {
			hi &^= 1 << (63 - i)
		}
	}
	return lo, hi
}

// entryIID derives the stable storage instanceID of an entry from the
// base tuple's identity, so a publisher's renew replaces the previous
// entry instead of accumulating next to it.
func entryIID(e *Entry) int64 {
	h := fnv.New64a()
	h.Write([]byte(e.RID))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(e.IID) >> (8 * i))
	}
	h.Write(b[:])
	return int64(h.Sum64() >> 1)
}

// defIID derives the stable storage instanceID of a definition from
// the index name (definitions of one table share the table's rid).
func defIID(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() >> 1)
}

func hasMarker(items []*storage.Item) bool {
	for _, it := range items {
		if _, ok := it.Payload.(*Marker); ok {
			return true
		}
	}
	return false
}
