package index_test

// End-to-end tests of the Prefix Hash Tree over a simulated deployment:
// CREATE INDEX on loaded data backfills and splits into a trie, range
// queries via the engine's index path return exactly the reference
// results while contacting a fraction of the overlay, and expiring the
// bulk of the data shrinks the trie back (merge + orphan expiry).

import (
	"fmt"
	"testing"
	"time"

	"pier"
	"pier/internal/core"
	"pier/internal/dht/storage"
	"pier/internal/index"
	"pier/internal/topology"
)

const (
	testNodes  = 24
	testTuples = 300
)

var testSchema = pier.SQLTable{
	Name: "T", Cols: []string{"pkey", "num"}, Key: "pkey",
	Indexes: []pier.SQLIndex{{Name: "t_num", Col: "num"}},
}

// buildIndexed returns a simulated deployment with table T loaded
// (lifetime 0 = immortal), indexed on num, and the trie settled.
func buildIndexed(t *testing.T, lifetime time.Duration) *pier.SimNetwork {
	t.Helper()
	opts := pier.DefaultOptions()
	opts.Index.Interval = 10 * time.Second
	sn := pier.NewSimNetwork(testNodes, topology.NewFullMesh(), 5, opts)
	for i := 0; i < testTuples; i++ {
		tp := &pier.Tuple{Rel: "T", Vals: []pier.Value{int64(i), num(i)}}
		sn.Load("T", fmt.Sprint(i), int64(i), tp, lifetime)
	}
	sn.Nodes[0].RegisterTable(testSchema, time.Hour)
	if err := sn.Nodes[0].CreateIndex(testSchema, "t_num", "num", time.Hour); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	// Backfill then enough ticks for the trie to descend the shared
	// prefix chain and split below the leaf threshold.
	sn.RunFor(4 * time.Minute)
	return sn
}

// num spreads the indexed values deterministically over [0, 1e6).
func num(i int) int64 { return int64(i*7919) % 1_000_000 }

// countIndexItems tallies entries and markers across all live stores.
func countIndexItems(sn *pier.SimNetwork) (entries, markers int) {
	for i, n := range sn.Nodes {
		if !sn.Alive(i) {
			continue
		}
		n.Provider().Scan(index.NS, func(it *storage.Item) bool {
			switch it.Payload.(type) {
			case *index.Entry:
				entries++
			case *index.Marker:
				markers++
			}
			return true
		})
	}
	return entries, markers
}

// rangeQuery runs num < hi through the SQL planner (which attaches the
// index scan) and returns the received pkeys plus the trie nodes the
// traversal contacted.
func rangeQuery(t *testing.T, sn *pier.SimNetwork, hi int64, forceIndex bool) (got map[int64]bool, contacted int) {
	t.Helper()
	src := fmt.Sprintf("SELECT pkey FROM T WHERE num < %d", hi)
	plan, err := pier.ParseSQL(src, pier.Catalog{"T": testSchema})
	if err != nil {
		t.Fatalf("ParseSQL: %v", err)
	}
	if plan.Tables[0].IndexScan == nil {
		t.Fatalf("planner did not attach an index scan to %q", src)
	}
	if forceIndex {
		plan.AutoAccess = false // bypass the catalog's access choice
	}
	plan.TTL = 5 * time.Minute
	got = map[int64]bool{}
	id, err := sn.Nodes[0].Query(plan, func(tp *core.Tuple, _ int) {
		got[tp.Vals[0].(int64)] = true
	})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	sn.RunFor(2 * time.Minute)
	contacted, _ = sn.Nodes[0].Engine().IndexContacts(id)
	sn.Nodes[0].Cancel(id)
	return got, contacted
}

func expectRange(hi int64) map[int64]bool {
	want := map[int64]bool{}
	for i := 0; i < testTuples; i++ {
		if num(i) < hi {
			want[int64(i)] = true
		}
	}
	return want
}

func TestIndexBuildsAndAnswersRangeQueries(t *testing.T) {
	sn := buildIndexed(t, 0)

	entries, markers := countIndexItems(sn)
	if entries < testTuples {
		t.Fatalf("backfill incomplete: %d entries for %d tuples", entries, testTuples)
	}
	if markers == 0 {
		t.Fatalf("no interior markers: the trie never split")
	}

	for _, hi := range []int64{50_000, 400_000, 999_999} {
		got, contacted := rangeQuery(t, sn, hi, true)
		want := expectRange(hi)
		if len(got) != len(want) {
			t.Fatalf("num < %d: got %d rows, want %d", hi, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("num < %d: missing pkey %d", hi, k)
			}
		}
		if contacted == 0 {
			t.Fatalf("num < %d: traversal reported no contacted trie nodes", hi)
		}
	}

	// Selective ranges must touch a small corner of the trie.
	_, contacted := rangeQuery(t, sn, 50_000, true)
	if _, markers := countIndexItems(sn); contacted >= markers {
		t.Fatalf("selective range contacted %d trie nodes of %d markers — no pruning", contacted, markers)
	}
}

// TestCreateIndexNameConflictRejected pins the re-CREATE semantics: an
// identical re-run is an idempotent refresh, but reusing a name for a
// different column must fail — the trie stays keyed on the first
// column, so accepting the second would let planners prune by the
// wrong encoding.
func TestCreateIndexNameConflictRejected(t *testing.T) {
	opts := pier.DefaultOptions()
	sn := pier.NewSimNetwork(4, topology.NewFullMesh(), 9, opts)
	cat := pier.Catalog{"T": {Name: "T", Cols: []string{"pkey", "num"}, Key: "pkey"}}
	node := sn.Nodes[0]

	if err := node.Exec("CREATE INDEX t_ix ON T (num)", cat); err != nil {
		t.Fatalf("first CREATE INDEX: %v", err)
	}
	sn.RunFor(time.Second) // deliver the announce
	if err := node.Exec("CREATE INDEX t_ix ON T (num)", cat); err != nil {
		t.Fatalf("idempotent re-run rejected: %v", err)
	}
	if got := len(cat["T"].Indexes); got != 1 {
		t.Fatalf("re-run duplicated the declaration: %d entries", got)
	}
	if err := node.Exec("CREATE INDEX t_ix ON T (pkey)", cat); err == nil {
		t.Fatalf("conflicting CREATE INDEX over another column accepted")
	}
	if err := node.Indexes().Create(index.Def{Name: "t_ix", Table: "T", Col: "pkey", ColIdx: 0}, 0); err == nil {
		t.Fatalf("Manager.Create accepted a known-conflicting definition")
	}
}

// TestDefCacheAgesOutWithDeadCreator pins the cache side of the
// soft-state promise: when an index's creator dies and its DefNS item
// expires, every node's cached definition must age out too — otherwise
// the orphaned trie would be re-fed and its marker chains renewed
// forever.
func TestDefCacheAgesOutWithDeadCreator(t *testing.T) {
	opts := pier.DefaultOptions()
	opts.Index.Interval = 10 * time.Second
	sn := pier.NewSimNetwork(8, topology.NewFullMesh(), 13, opts)
	schema := pier.SQLTable{Name: "T", Cols: []string{"pkey", "num"}, Key: "pkey"}
	if err := sn.Nodes[0].CreateIndex(schema, "t_num", "num", 30*time.Second); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	sn.RunFor(15 * time.Second)
	if len(sn.Nodes[3].Indexes().Defs("T")) == 0 {
		t.Fatalf("announce did not reach node 3")
	}

	sn.Crash(0) // the creator stops renewing the definition
	sn.RunFor(2 * time.Minute)
	for i := 1; i < len(sn.Nodes); i++ {
		if !sn.Alive(i) {
			continue
		}
		if defs := sn.Nodes[i].Indexes().Defs("T"); len(defs) != 0 {
			t.Fatalf("node %d still caches %v after the definition expired", i, defs)
		}
	}
}

func TestIndexShrinksWhenDataExpires(t *testing.T) {
	// Long enough to survive buildIndexed's settle; short enough that
	// unrenewed tuples age out within the renewal phases below.
	lifetime := 10 * time.Minute
	sn := buildIndexed(t, lifetime)
	_, grownMarkers := countIndexItems(sn)
	if grownMarkers == 0 {
		t.Fatalf("no interior markers after load")
	}

	// Keep renewing only the 20 smallest pkeys; everything else — base
	// tuples and index entries alike — ages out, and the trie must
	// merge/expire back toward a small tree.
	keep := 20
	for phase := 0; phase < 14; phase++ {
		for i := 0; i < keep; i++ {
			tp := &pier.Tuple{Rel: "T", Vals: []pier.Value{int64(i), num(i)}}
			sn.Nodes[0].Renew("T", fmt.Sprint(i), int64(i), tp, lifetime)
		}
		sn.RunFor(time.Minute)
	}

	entries, markers := countIndexItems(sn)
	if entries > 2*keep {
		t.Fatalf("%d entries still indexed; want about %d", entries, keep)
	}
	if markers >= grownMarkers/2 {
		t.Fatalf("trie did not shrink: %d markers now vs %d grown", markers, grownMarkers)
	}

	// The survivors must still be exactly rangeable.
	got, _ := rangeQuery(t, sn, 1_000_000, true)
	for i := 0; i < keep; i++ {
		if !got[int64(i)] {
			t.Fatalf("surviving pkey %d missing from range query (got %d rows)", i, len(got))
		}
	}
}
