// Package dht defines the key space and the routing-layer API shared by
// the DHT implementations (CAN in internal/dht/can, Chord in
// internal/dht/chord), mirroring the paper's factoring of DHT
// functionality into a routing layer, a storage manager, and a provider
// (§3.2).
package dht

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// Key identifies an object in the DHT. Per §3.2.3, the key is computed by
// hashing the object's namespace and resourceID; items sharing both map
// to the same node.
type Key [20]byte

// KeyOf returns the DHT key for (namespace, resourceID).
func KeyOf(namespace, resourceID string) Key {
	h := sha1.New()
	h.Write([]byte(namespace))
	h.Write([]byte{0}) // unambiguous separator
	h.Write([]byte(resourceID))
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// Point maps the key into a d-dimensional CAN coordinate, using one
// derived hash per dimension (§3.1.1 footnote: "we typically use d
// separate hash functions, one for each CAN dimension").
func (k Key) Point(dims int) []uint32 {
	p := make([]uint32, dims)
	for i := range p {
		h := sha1.Sum(append(k[:], byte(i)))
		p[i] = binary.BigEndian.Uint32(h[:4])
	}
	return p
}

// Ring maps the key onto Chord's 64-bit identifier circle.
func (k Key) Ring() uint64 { return binary.BigEndian.Uint64(k[:8]) }

// String returns a short hex form for logs.
func (k Key) String() string { return fmt.Sprintf("%x", k[:6]) }
