package provider

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/dht"
	"pier/internal/dht/can"
	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/simnet"
	"pier/internal/topology"
)

type payload struct{ N int }

func (p *payload) WireSize() int { return 64 }

type testNet struct {
	nw    *simnet.Network
	envs  []*simnet.NodeEnv
	cans  []*can.Router
	provs []*Provider
	sm    *can.SpaceMap
}

func newTestNet(t *testing.T, n int, pcfg Config) *testNet {
	t.Helper()
	tn := &testNet{nw: simnet.New(topology.NewFullMeshInfinite(), 11)}
	for i := 0; i < n; i++ {
		e := tn.nw.AddNode()
		r := can.New(e, can.DefaultConfig())
		p := New(e, r, pcfg)
		e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
			if r.HandleMessage(from, m) {
				return
			}
			p.HandleMessage(from, m)
		}))
		tn.envs = append(tn.envs, e)
		tn.cans = append(tn.cans, r)
		tn.provs = append(tn.provs, p)
	}
	tn.sm = can.Bootstrap(tn.cans, 23)
	return tn
}

func TestPutGetRoundTrip(t *testing.T) {
	tn := newTestNet(t, 16, DefaultConfig())
	tn.envs[3].Post(func() {
		tn.provs[3].Put("rel", "key1", 1, &payload{N: 42}, time.Hour)
	})
	tn.nw.RunFor(time.Minute)

	// The item must be stored exactly at the responsible node.
	owner := tn.sm.OwnerOf("rel", "key1")
	if got := tn.provs[owner].Store().Len("rel"); got != 1 {
		t.Fatalf("owner stores %d items, want 1", got)
	}
	for i, p := range tn.provs {
		if i != owner && p.Store().Len("rel") != 0 {
			t.Fatalf("non-owner %d stores items", i)
		}
	}

	var got []*storage.Item
	tn.envs[7].Post(func() {
		tn.provs[7].Get("rel", "key1", func(items []*storage.Item) { got = items })
	})
	tn.nw.RunFor(time.Minute)
	if len(got) != 1 || got[0].Payload.(*payload).N != 42 {
		t.Fatalf("get returned %v", got)
	}
}

func TestGetIsKeyBasedAndMayReturnMultiple(t *testing.T) {
	tn := newTestNet(t, 8, DefaultConfig())
	tn.envs[0].Post(func() {
		tn.provs[0].Put("rel", "k", 1, &payload{N: 1}, time.Hour)
		tn.provs[0].Put("rel", "k", 2, &payload{N: 2}, time.Hour)
	})
	tn.nw.RunFor(time.Minute)
	var got []*storage.Item
	tn.envs[1].Post(func() {
		tn.provs[1].Get("rel", "k", func(items []*storage.Item) { got = items })
	})
	tn.nw.RunFor(time.Minute)
	if len(got) != 2 {
		t.Fatalf("get returned %d items, want 2 (instanceIDs separate same-key items)", len(got))
	}
}

func TestLocalGetSynchronous(t *testing.T) {
	tn := newTestNet(t, 4, DefaultConfig())
	// Find a key owned by node 2 and put from node 2.
	rid := ""
	for i := 0; ; i++ {
		cand := fmt.Sprint("x", i)
		if tn.sm.OwnerOf("ns", cand) == 2 {
			rid = cand
			break
		}
	}
	done := false
	tn.envs[2].Post(func() {
		tn.provs[2].Put("ns", rid, 1, &payload{N: 9}, time.Hour)
		tn.provs[2].Get("ns", rid, func(items []*storage.Item) {
			done = len(items) == 1
		})
		if !done {
			t.Error("local get must complete synchronously")
		}
	})
	tn.nw.RunFor(time.Second)
	if !done {
		t.Fatal("local get failed")
	}
}

func TestGetMissingKeyReturnsEmpty(t *testing.T) {
	tn := newTestNet(t, 8, DefaultConfig())
	called := false
	var got []*storage.Item
	tn.envs[0].Post(func() {
		tn.provs[0].Get("none", "nothing", func(items []*storage.Item) {
			called, got = true, items
		})
	})
	tn.nw.RunFor(time.Minute)
	if !called || len(got) != 0 {
		t.Fatalf("called=%v items=%v", called, got)
	}
}

func TestSoftStateExpiryAndRenew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ActiveExpiry = true
	tn := newTestNet(t, 8, cfg)
	tn.envs[0].Post(func() {
		tn.provs[0].Put("rel", "dies", 1, &payload{N: 1}, 30*time.Second)
		tn.provs[0].Put("rel", "lives", 1, &payload{N: 2}, 30*time.Second)
	})
	tn.nw.RunFor(20 * time.Second)
	// Renew only "lives".
	tn.envs[0].Post(func() {
		tn.provs[0].Renew("rel", "lives", 1, &payload{N: 2}, 30*time.Second)
	})
	tn.nw.RunFor(25 * time.Second) // t=45s: "dies" expired, "lives" renewed to t=65s

	var dead, live []*storage.Item
	tn.envs[1].Post(func() {
		tn.provs[1].Get("rel", "dies", func(items []*storage.Item) { dead = items })
		tn.provs[1].Get("rel", "lives", func(items []*storage.Item) { live = items })
	})
	tn.nw.RunFor(time.Minute)
	if len(dead) != 0 {
		t.Fatalf("unrenewed item survived: %v", dead)
	}
	if len(live) != 1 {
		t.Fatalf("renewed item lost: %v", live)
	}
}

func TestNewDataCallback(t *testing.T) {
	tn := newTestNet(t, 8, DefaultConfig())
	owner := tn.sm.OwnerOf("rel", "kk")
	var got []*storage.Item
	tn.envs[owner].Post(func() {
		tn.provs[owner].OnNewData("rel", func(it *storage.Item) { got = append(got, it) })
	})
	tn.envs[3].Post(func() {
		tn.provs[3].Put("rel", "kk", 7, &payload{N: 5}, time.Hour)
	})
	tn.nw.RunFor(time.Minute)
	if len(got) != 1 || got[0].InstanceID != 7 {
		t.Fatalf("newData callback got %v", got)
	}
}

func TestNewDataUnsubscribe(t *testing.T) {
	tn := newTestNet(t, 4, DefaultConfig())
	count := 0
	var unsub func()
	tn.envs[0].Post(func() {
		unsub = tn.provs[0].OnNewData("rel", func(*storage.Item) { count++ })
	})
	tn.nw.RunFor(time.Second)
	tn.envs[0].Post(func() {
		tn.provs[0].StoreLocal(&storage.Item{Namespace: "rel", ResourceID: "a", InstanceID: 1, Payload: &payload{}})
		unsub()
		tn.provs[0].StoreLocal(&storage.Item{Namespace: "rel", ResourceID: "b", InstanceID: 2, Payload: &payload{}})
	})
	tn.nw.RunFor(time.Second)
	if count != 1 {
		t.Fatalf("callback fired %d times, want 1", count)
	}
}

func TestMulticastReachesAllNodesOnce(t *testing.T) {
	tn := newTestNet(t, 32, DefaultConfig())
	counts := make([]int, 32)
	for i := range tn.provs {
		i := i
		tn.envs[i].Post(func() {
			tn.provs[i].OnMulticast(func(origin env.Addr, ns string, m env.Message) {
				if ns == "q" {
					counts[i]++
				}
			})
		})
	}
	tn.nw.RunFor(time.Second)
	tn.envs[5].Post(func() {
		tn.provs[5].Multicast("q", &payload{N: 1})
	})
	tn.nw.RunFor(5 * time.Minute)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("node %d delivered %d times, want exactly 1", i, c)
		}
	}
}

func TestMulticastSkipsFailedNodesButReachesRest(t *testing.T) {
	tn := newTestNet(t, 32, DefaultConfig())
	counts := make([]int, 32)
	for i := range tn.provs {
		i := i
		tn.envs[i].Post(func() {
			tn.provs[i].OnMulticast(func(origin env.Addr, ns string, m env.Message) { counts[i]++ })
		})
	}
	tn.nw.Kill(9)
	tn.envs[0].Post(func() { tn.provs[0].Multicast("q", &payload{}) })
	tn.nw.RunFor(5 * time.Minute)
	reached := 0
	for i, c := range counts {
		if i == 9 {
			if c != 0 {
				t.Fatal("dead node received multicast")
			}
			continue
		}
		if c >= 1 {
			reached++
		}
	}
	// Flooding routes around a single failure in a well-connected CAN.
	if reached < 30 {
		t.Fatalf("multicast reached %d/31 live nodes", reached)
	}
}

func TestHandoffAfterJoinMovesItems(t *testing.T) {
	// Build a 2-node network by protocol so the second join splits the
	// first node's zone; items in the transferred half must move.
	nw := simnet.New(topology.NewFullMeshInfinite(), 3)
	var envs []*simnet.NodeEnv
	var cans []*can.Router
	var provs []*Provider
	for i := 0; i < 2; i++ {
		e := nw.AddNode()
		r := can.New(e, can.DefaultConfig())
		p := New(e, r, DefaultConfig())
		e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
			if r.HandleMessage(from, m) {
				return
			}
			p.HandleMessage(from, m)
		}))
		envs = append(envs, e)
		cans = append(cans, r)
		provs = append(provs, p)
	}
	cans[0].Join(env.NilAddr)
	// Load 200 items on node 0 (owner of everything).
	envs[0].Post(func() {
		for i := 0; i < 200; i++ {
			provs[0].Put("rel", fmt.Sprint("k", i), 1, &payload{N: i}, time.Hour)
		}
	})
	nw.RunFor(time.Second)
	landmark := envs[0].Addr()
	envs[1].Post(func() { cans[1].Join(landmark) })
	nw.RunFor(time.Minute)

	moved := provs[1].Store().Len("rel")
	kept := provs[0].Store().Len("rel")
	if moved+kept != 200 {
		t.Fatalf("items lost in handoff: %d + %d != 200", moved, kept)
	}
	if moved == 0 {
		t.Fatal("no items moved to the new node")
	}
	// Every item must now reside at its responsible node.
	bad := 0
	for i, p := range provs {
		i := i
		p.Store().Scan("rel", func(it *storage.Item) bool {
			if !cans[i].Owns(dht.KeyOf(it.Namespace, it.ResourceID)) {
				bad++
			}
			return true
		})
	}
	if bad != 0 {
		t.Fatalf("%d items stored at non-owners after handoff", bad)
	}
}

func TestGetAfterRemapChasesOwner(t *testing.T) {
	// Get issued against a stale owner must still return the items via
	// one forwarding hop (§4.1's "additional round trip").
	tn := newTestNet(t, 8, DefaultConfig())
	owner := tn.sm.OwnerOf("rel", "k")
	tn.envs[owner].Post(func() {
		tn.provs[owner].Put("rel", "k", 1, &payload{N: 1}, time.Hour)
	})
	tn.nw.RunFor(time.Second)
	// Simulate a stale lookup by sending the getMsg to the wrong node.
	wrong := (owner + 1) % 8
	var got []*storage.Item
	done := false
	tn.envs[3].Post(func() {
		p := tn.provs[3]
		p.nonce++
		n := p.nonce
		p.putPendingGet(n, &pendingGet{
			cb:    func(items []*storage.Item) { got, done = items, true },
			timer: tn.envs[3].After(time.Minute, func() {}),
		})
		tn.envs[3].Send(tn.envs[wrong].Addr(), &getMsg{NS: "rel", RID: "k", Nonce: n, Origin: tn.envs[3].Addr()})
	})
	tn.nw.RunFor(2 * time.Minute)
	if !done || len(got) != 1 {
		t.Fatalf("forwarded get failed: done=%v items=%v", done, got)
	}
}
