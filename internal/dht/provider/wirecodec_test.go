package provider

import (
	"encoding/gob"
	"math/rand"
	"testing"
	"time"

	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/wire"
	"pier/internal/wire/wiretest"
)

// provPayload stands in for application payloads; their codecs are
// tested in their owning packages.
type provPayload struct{ N int64 }

func (p *provPayload) WireSize() int { return 8 }

func init() {
	gob.Register(&provPayload{})
	wire.Register(203, &provPayload{},
		func(e *wire.Encoder, m env.Message) { e.Varint(m.(*provPayload).N) },
		func(d *wire.Decoder) env.Message { return &provPayload{N: d.Varint()} })
}

func randItem(r *rand.Rand) *storage.Item {
	it := &storage.Item{
		Namespace:  wiretest.Str(r, 10),
		ResourceID: wiretest.Str(r, 10),
		InstanceID: wiretest.SmallInt(r),
		Payload:    &provPayload{N: wiretest.SmallInt(r)},
	}
	if r.Intn(2) == 0 {
		it.Expires = time.Unix(int64(r.Int31()), 0)
	}
	return it
}

func randItems(r *rand.Rand) []*storage.Item {
	n := r.Intn(5)
	if n == 0 {
		return nil
	}
	items := make([]*storage.Item, n)
	for i := range items {
		items[i] = randItem(r)
	}
	return items
}

// TestNilRequiredFieldsRejected: a crafted frame carrying tag 0 where a
// handler-dereferenced field belongs must fail decode (the handler runs
// on the event loop with no recover — a nil would kill the node).
func TestNilRequiredFieldsRejected(t *testing.T) {
	cases := map[string][]byte{
		"putMsg nil item":       {tagPutMsg, 0},
		"transferMsg nil item":  {tagTransferMsg, 1, 0},
		"getReply nil item":     {tagGetReply, 9, 1, 0},
		"nsPayload nil payload": {tagNSPayload, 2, 'n', 's', 0},
	}
	for name, b := range cases {
		if _, err := wire.Unmarshal(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	wiretest.RoundTrip(t, 5, 300, []wiretest.Gen{
		{Name: "putMsg", Make: func(r *rand.Rand) env.Message {
			return &putMsg{Item: randItem(r)}
		}},
		{Name: "getMsg", Make: func(r *rand.Rand) env.Message {
			return &getMsg{
				NS:        wiretest.Str(r, 10),
				RID:       wiretest.Str(r, 10),
				Nonce:     r.Uint64(),
				Origin:    wiretest.ShortAddr(r),
				Forwarded: r.Intn(2) == 0,
			}
		}},
		{Name: "getReply", Make: func(r *rand.Rand) env.Message {
			return &getReply{Nonce: r.Uint64(), Items: randItems(r)}
		}},
		{Name: "transferMsg", Make: func(r *rand.Rand) env.Message {
			return &transferMsg{Items: randItems(r)}
		}},
		{Name: "nsPayload", Make: func(r *rand.Rand) env.Message {
			return &nsPayload{NS: wiretest.Str(r, 10), Payload: &provPayload{N: wiretest.SmallInt(r)}}
		}},
	})
}
