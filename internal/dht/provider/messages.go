package provider

import (
	"encoding/gob"
	"time"

	"pier/internal/dht/storage"
	"pier/internal/env"
)

// putMsg carries one item directly to the owner found by a lookup.
// Attempt counts how many times this put has bounced off a throttling
// owner; past the provider's bounce bound the owner admits it.
type putMsg struct {
	Item    *storage.Item
	Attempt uint8
}

func (m *putMsg) WireSize() int { return env.HeaderSize + m.Item.WireSize() + 1 }

// maxRetryAfter caps the backoff an owner may impose on a publisher —
// a clamp against hostile or buggy frames, mirroring the decoder's
// Attempt bound.
const maxRetryAfter = 30 * time.Second

// putThrottleMsg is the owner's backpressure answer to a put into an
// over-quota namespace: the item is returned to the publisher with a
// retry deadline instead of being stored. Like the result channel's
// creditMsg it is loss-tolerant — a lost throttle just means the
// publisher's next renew tries again, and a lost retry means the item
// expires at the owner it never reached (soft state absorbs both).
type putThrottleMsg struct {
	Item       *storage.Item
	Attempt    uint8
	RetryAfter time.Duration
}

func (m *putThrottleMsg) WireSize() int {
	return env.HeaderSize + m.Item.WireSize() + 1 + 8
}

// getMsg asks the owner for all items under (NS, RID).
type getMsg struct {
	NS, RID   string
	Nonce     uint64
	Origin    env.Addr
	Forwarded bool
}

func (m *getMsg) WireSize() int {
	return env.HeaderSize + env.StringSize(m.NS) + env.StringSize(m.RID) + 8 + env.AddrSize + 1
}

// getReply answers a getMsg directly to the origin.
type getReply struct {
	Nonce uint64
	Items []*storage.Item
}

func (m *getReply) WireSize() int {
	n := env.HeaderSize + 8
	for _, it := range m.Items {
		n += it.WireSize()
	}
	return n
}

// transferMsg hands items to their new owner after a location-map
// change.
type transferMsg struct {
	Items []*storage.Item
}

func (m *transferMsg) WireSize() int {
	n := env.HeaderSize
	for _, it := range m.Items {
		n += it.WireSize()
	}
	return n
}

// nsPayload tags a multicast payload with its namespace.
type nsPayload struct {
	NS      string
	Payload env.Message
}

func (m *nsPayload) WireSize() int { return env.StringSize(m.NS) + m.Payload.WireSize() }

func init() {
	gob.Register(&putMsg{})
	gob.Register(&putThrottleMsg{})
	gob.Register(&getMsg{})
	gob.Register(&getReply{})
	gob.Register(&transferMsg{})
	gob.Register(&nsPayload{})
	gob.Register(&storage.Item{})
}
