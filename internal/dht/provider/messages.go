package provider

import (
	"encoding/gob"

	"pier/internal/dht/storage"
	"pier/internal/env"
)

// putMsg carries one item directly to the owner found by a lookup.
type putMsg struct {
	Item *storage.Item
}

func (m *putMsg) WireSize() int { return env.HeaderSize + m.Item.WireSize() }

// getMsg asks the owner for all items under (NS, RID).
type getMsg struct {
	NS, RID   string
	Nonce     uint64
	Origin    env.Addr
	Forwarded bool
}

func (m *getMsg) WireSize() int {
	return env.HeaderSize + env.StringSize(m.NS) + env.StringSize(m.RID) + 8 + env.AddrSize + 1
}

// getReply answers a getMsg directly to the origin.
type getReply struct {
	Nonce uint64
	Items []*storage.Item
}

func (m *getReply) WireSize() int {
	n := env.HeaderSize + 8
	for _, it := range m.Items {
		n += it.WireSize()
	}
	return n
}

// transferMsg hands items to their new owner after a location-map
// change.
type transferMsg struct {
	Items []*storage.Item
}

func (m *transferMsg) WireSize() int {
	n := env.HeaderSize
	for _, it := range m.Items {
		n += it.WireSize()
	}
	return n
}

// nsPayload tags a multicast payload with its namespace.
type nsPayload struct {
	NS      string
	Payload env.Message
}

func (m *nsPayload) WireSize() int { return env.StringSize(m.NS) + m.Payload.WireSize() }

func init() {
	gob.Register(&putMsg{})
	gob.Register(&getMsg{})
	gob.Register(&getReply{})
	gob.Register(&transferMsg{})
	gob.Register(&nsPayload{})
	gob.Register(&storage.Item{})
}
