package provider

// Binary wire codecs for the provider's put/get/transfer protocol,
// mirroring the gob.Register calls in messages.go.

import (
	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/wire"
)

const (
	tagPutMsg byte = 33 + iota
	tagGetMsg
	tagGetReply
	tagTransferMsg
	tagNSPayload
	tagPutThrottleMsg
)

// maxPutAttempt bounds the Attempt counter a frame may carry; anything
// larger is a hostile or corrupt frame (providers bounce at most a
// handful of times).
const maxPutAttempt = 64

func init() {
	wire.Register(tagPutMsg, &putMsg{},
		func(e *wire.Encoder, m env.Message) {
			p := m.(*putMsg)
			e.Message(p.Item)
			e.Uvarint(uint64(p.Attempt))
		},
		func(d *wire.Decoder) env.Message {
			return &putMsg{Item: requiredItem(d), Attempt: putAttempt(d)}
		})

	wire.Register(tagPutThrottleMsg, &putThrottleMsg{},
		func(e *wire.Encoder, m env.Message) {
			t := m.(*putThrottleMsg)
			e.Message(t.Item)
			e.Uvarint(uint64(t.Attempt))
			e.Duration(t.RetryAfter)
		},
		func(d *wire.Decoder) env.Message {
			t := &putThrottleMsg{
				Item:       requiredItem(d),
				Attempt:    putAttempt(d),
				RetryAfter: d.Duration(),
			}
			if t.RetryAfter < 0 && d.Err() == nil {
				d.Fail("negative throttle retry-after")
			}
			return t
		})

	wire.Register(tagGetMsg, &getMsg{},
		func(e *wire.Encoder, m env.Message) {
			g := m.(*getMsg)
			e.String(g.NS)
			e.String(g.RID)
			e.Uvarint(g.Nonce)
			e.Addr(g.Origin)
			e.Bool(g.Forwarded)
		},
		func(d *wire.Decoder) env.Message {
			return &getMsg{
				NS:        d.String(),
				RID:       d.String(),
				Nonce:     d.Uvarint(),
				Origin:    d.Addr(),
				Forwarded: d.Bool(),
			}
		})

	wire.Register(tagGetReply, &getReply{},
		func(e *wire.Encoder, m env.Message) {
			g := m.(*getReply)
			e.Uvarint(g.Nonce)
			e.Len(len(g.Items))
			for _, it := range g.Items {
				e.Message(it)
			}
		},
		func(d *wire.Decoder) env.Message {
			g := &getReply{Nonce: d.Uvarint()}
			if n := d.Len(); n > 0 {
				g.Items = make([]*storage.Item, 0, wire.SliceCap(n))
				for i := 0; i < n && d.Err() == nil; i++ {
					g.Items = append(g.Items, requiredItem(d))
				}
			}
			return g
		})

	wire.Register(tagTransferMsg, &transferMsg{},
		func(e *wire.Encoder, m env.Message) {
			t := m.(*transferMsg)
			e.Len(len(t.Items))
			for _, it := range t.Items {
				e.Message(it)
			}
		},
		func(d *wire.Decoder) env.Message {
			t := &transferMsg{}
			if n := d.Len(); n > 0 {
				t.Items = make([]*storage.Item, 0, wire.SliceCap(n))
				for i := 0; i < n && d.Err() == nil; i++ {
					t.Items = append(t.Items, requiredItem(d))
				}
			}
			return t
		})

	wire.Register(tagNSPayload, &nsPayload{},
		func(e *wire.Encoder, m env.Message) {
			p := m.(*nsPayload)
			e.String(p.NS)
			e.Message(p.Payload)
		},
		func(d *wire.Decoder) env.Message {
			p := &nsPayload{NS: d.String(), Payload: d.Message()}
			if p.Payload == nil && d.Err() == nil {
				d.Fail("missing required multicast payload")
			}
			return p
		})
}

// putAttempt decodes and bounds the bounce counter shared by putMsg
// and putThrottleMsg.
func putAttempt(d *wire.Decoder) uint8 {
	n := d.Uvarint()
	if n >= maxPutAttempt {
		d.Fail("put attempt counter out of range")
		return 0
	}
	return uint8(n)
}

// requiredItem rejects frames whose handlers would nil-deref a missing
// item (StoreLocal and transfer both dereference unconditionally).
func requiredItem(d *wire.Decoder) *storage.Item {
	it := storage.ItemField(d)
	if it == nil && d.Err() == nil {
		d.Fail("missing required storage item")
	}
	return it
}
