package provider

// Binary wire codecs for the provider's put/get/transfer protocol,
// mirroring the gob.Register calls in messages.go.

import (
	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/wire"
)

const (
	tagPutMsg byte = 33 + iota
	tagGetMsg
	tagGetReply
	tagTransferMsg
	tagNSPayload
)

func init() {
	wire.Register(tagPutMsg, &putMsg{},
		func(e *wire.Encoder, m env.Message) {
			e.Message(m.(*putMsg).Item)
		},
		func(d *wire.Decoder) env.Message {
			return &putMsg{Item: requiredItem(d)}
		})

	wire.Register(tagGetMsg, &getMsg{},
		func(e *wire.Encoder, m env.Message) {
			g := m.(*getMsg)
			e.String(g.NS)
			e.String(g.RID)
			e.Uvarint(g.Nonce)
			e.Addr(g.Origin)
			e.Bool(g.Forwarded)
		},
		func(d *wire.Decoder) env.Message {
			return &getMsg{
				NS:        d.String(),
				RID:       d.String(),
				Nonce:     d.Uvarint(),
				Origin:    d.Addr(),
				Forwarded: d.Bool(),
			}
		})

	wire.Register(tagGetReply, &getReply{},
		func(e *wire.Encoder, m env.Message) {
			g := m.(*getReply)
			e.Uvarint(g.Nonce)
			e.Len(len(g.Items))
			for _, it := range g.Items {
				e.Message(it)
			}
		},
		func(d *wire.Decoder) env.Message {
			g := &getReply{Nonce: d.Uvarint()}
			if n := d.Len(); n > 0 {
				g.Items = make([]*storage.Item, 0, wire.SliceCap(n))
				for i := 0; i < n && d.Err() == nil; i++ {
					g.Items = append(g.Items, requiredItem(d))
				}
			}
			return g
		})

	wire.Register(tagTransferMsg, &transferMsg{},
		func(e *wire.Encoder, m env.Message) {
			t := m.(*transferMsg)
			e.Len(len(t.Items))
			for _, it := range t.Items {
				e.Message(it)
			}
		},
		func(d *wire.Decoder) env.Message {
			t := &transferMsg{}
			if n := d.Len(); n > 0 {
				t.Items = make([]*storage.Item, 0, wire.SliceCap(n))
				for i := 0; i < n && d.Err() == nil; i++ {
					t.Items = append(t.Items, requiredItem(d))
				}
			}
			return t
		})

	wire.Register(tagNSPayload, &nsPayload{},
		func(e *wire.Encoder, m env.Message) {
			p := m.(*nsPayload)
			e.String(p.NS)
			e.Message(p.Payload)
		},
		func(d *wire.Decoder) env.Message {
			p := &nsPayload{NS: d.String(), Payload: d.Message()}
			if p.Payload == nil && d.Err() == nil {
				d.Fail("missing required multicast payload")
			}
			return p
		})
}

// requiredItem rejects frames whose handlers would nil-deref a missing
// item (StoreLocal and transfer both dereference unconditionally).
func requiredItem(d *wire.Decoder) *storage.Item {
	it := storage.ItemField(d)
	if it == nil && d.Err() == nil {
		d.Fail("missing required storage item")
	}
	return it
}
