package provider

// Tests for put-path admission control: the putThrottleMsg codec
// (round-trip and hostile frames) and the backpressure behavior —
// owners bounce puts into over-quota namespaces, publishers honor the
// deadline with bounded deterministic backoff, and the final attempt
// always admits.

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"time"

	"pier/internal/dht/storage"
	"pier/internal/env"
	"pier/internal/wire"
	"pier/internal/wire/wiretest"
)

func TestPutThrottleWireRoundTrip(t *testing.T) {
	wiretest.RoundTrip(t, 5, 300, []wiretest.Gen{
		{Name: "putThrottleMsg", Make: func(r *rand.Rand) env.Message {
			return &putThrottleMsg{
				Item:       randItem(r),
				Attempt:    uint8(r.Intn(maxPutAttempt)),
				RetryAfter: time.Duration(r.Intn(int(maxRetryAfter))),
			}
		}},
		{Name: "putMsg with attempt", Make: func(r *rand.Rand) env.Message {
			return &putMsg{Item: randItem(r), Attempt: uint8(r.Intn(maxPutAttempt))}
		}},
	})
}

// TestPutThrottleHostileFramesRejected: frames that would nil-deref,
// carry an absurd bounce counter, or announce a negative deadline must
// fail decode before reaching a handler.
func TestPutThrottleHostileFramesRejected(t *testing.T) {
	item, err := wire.Marshal(&storage.Item{Namespace: "n", ResourceID: "r", InstanceID: 1})
	if err != nil {
		t.Fatal(err)
	}
	frame := func(tag byte, tail ...byte) []byte {
		return append(append([]byte{tag}, item...), tail...)
	}
	overAttempt := binary.AppendUvarint(nil, maxPutAttempt)
	negDur := binary.AppendVarint(nil, -1)
	cases := map[string][]byte{
		"throttle nil item":        {tagPutThrottleMsg, 0},
		"throttle attempt too big": frame(tagPutThrottleMsg, append(overAttempt, 0)...),
		"throttle negative delay":  frame(tagPutThrottleMsg, append([]byte{1}, negDur...)...),
		"put attempt too big":      frame(tagPutMsg, overAttempt...),
	}
	for name, b := range cases {
		if _, err := wire.Unmarshal(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The same frames with in-range values must decode, or the cases
	// above prove nothing.
	okDur := binary.AppendVarint(nil, int64(time.Second))
	if _, err := wire.Unmarshal(frame(tagPutThrottleMsg, append([]byte{1}, okDur...)...)); err != nil {
		t.Fatalf("valid throttle frame rejected: %v", err)
	}
	if _, err := wire.Unmarshal(frame(tagPutMsg, 1)); err != nil {
		t.Fatalf("valid put frame rejected: %v", err)
	}
}

// throttleTestQuota fits two of this suite's 64-byte-payload items
// under namespace "hot" with a single-character resourceID.
func throttleTestQuota() int64 {
	it := &storage.Item{Namespace: "hot", ResourceID: "k", InstanceID: 0, Payload: &payload{}}
	return 2 * int64(it.WireSize())
}

func TestOverQuotaPutsAreThrottledThenAdmitted(t *testing.T) {
	pcfg := DefaultConfig()
	pcfg.Quota = storage.BoundedConfig{Quotas: map[string]int64{"hot": throttleTestQuota()}}
	pcfg.ThrottleDelay = time.Second
	tn := newTestNet(t, 8, pcfg)

	owner := tn.sm.OwnerOf("hot", "k")
	pub := (owner + 1) % len(tn.provs)
	tn.envs[pub].Post(func() {
		for i := int64(0); i < 8; i++ {
			tn.provs[pub].Put("hot", "k", i, &payload{N: int(i)}, time.Hour)
		}
	})
	tn.nw.RunFor(2 * time.Minute)

	if got := tn.provs[owner].StorageStats().PutsThrottled; got == 0 {
		t.Fatal("owner never throttled an over-quota put")
	}
	if got := tn.provs[pub].StorageStats().PutsDelayed; got == 0 {
		t.Fatal("publisher never honored a throttle")
	}
	// Bounced puts are admitted on their final attempt; the quota is
	// then enforced by eviction, so the namespace holds items but
	// stays within budget.
	if got := tn.provs[owner].Store().Usage().ByNamespace["hot"]; got > throttleTestQuota() {
		t.Fatalf("owner usage %d exceeds quota %d", got, throttleTestQuota())
	}
	if tn.provs[owner].Store().Len("hot") == 0 {
		t.Fatal("no item survived admission; final attempt must store")
	}
	st := tn.provs[owner].Store().Stats()
	if st.ItemsEvicted+st.PutsDropped == 0 {
		t.Fatal("admission without eviction cannot hold the quota")
	}
}

func TestLocalPutsSelfThrottle(t *testing.T) {
	pcfg := DefaultConfig()
	pcfg.Quota = storage.BoundedConfig{Quotas: map[string]int64{"hot": throttleTestQuota()}}
	pcfg.ThrottleDelay = time.Second
	tn := newTestNet(t, 1, pcfg) // single node owns everything
	tn.envs[0].Post(func() {
		for i := int64(0); i < 8; i++ {
			tn.provs[0].Put("hot", "k", i, &payload{N: int(i)}, time.Hour)
		}
	})
	tn.nw.RunFor(time.Minute)
	ss := tn.provs[0].StorageStats()
	if ss.PutsDelayed == 0 {
		t.Fatal("local puts bypassed the self-throttle")
	}
	if got := tn.provs[0].Store().Usage().ByNamespace["hot"]; got > throttleTestQuota() {
		t.Fatalf("usage %d exceeds quota %d", got, throttleTestQuota())
	}
	if tn.provs[0].Store().Len("hot") == 0 {
		t.Fatal("self-throttled puts never admitted")
	}
}

func TestThrottleDeterministic(t *testing.T) {
	run := func() (int64, int64, int) {
		pcfg := DefaultConfig()
		pcfg.Quota = storage.BoundedConfig{Quotas: map[string]int64{"hot": throttleTestQuota()}}
		pcfg.ThrottleDelay = time.Second
		tn := newTestNet(t, 8, pcfg)
		owner := tn.sm.OwnerOf("hot", "k")
		pub := (owner + 1) % len(tn.provs)
		tn.envs[pub].Post(func() {
			for i := int64(0); i < 8; i++ {
				tn.provs[pub].Put("hot", "k", i, &payload{N: int(i)}, time.Hour)
			}
		})
		tn.nw.RunFor(2 * time.Minute)
		return tn.provs[owner].StorageStats().PutsThrottled,
			tn.provs[pub].StorageStats().PutsDelayed,
			tn.provs[owner].Store().Len("hot")
	}
	t1, d1, l1 := run()
	t2, d2, l2 := run()
	if t1 != t2 || d1 != d2 || l1 != l2 {
		t.Fatalf("throttle schedule not deterministic: (%d,%d,%d) vs (%d,%d,%d)", t1, d1, l1, t2, d2, l2)
	}
}
