// Package provider implements the paper's provider layer (§3.2.3,
// Table 3): it ties the routing layer and the storage manager together
// and exposes the interface applications (and PIER's query processor)
// program against:
//
//	get(namespace, resourceID) -> item
//	put(namespace, resourceID, instanceID, item, lifetime)
//	renew(namespace, resourceID, instanceID, item, lifetime) -> bool
//	multicast(namespace, resourceID, item)
//	lscan(namespace) -> iterator
//	newData(namespace) -> item
package provider

import (
	"time"

	"pier/internal/dht"
	"pier/internal/dht/multicast"
	"pier/internal/dht/storage"
	"pier/internal/env"
)

// Config controls one provider instance.
type Config struct {
	// GetTimeout bounds how long a get waits for the owner's reply
	// before delivering an empty result (soft-state best effort).
	GetTimeout time.Duration

	// ActiveExpiry enables event-driven deletion of items at their
	// lifetime. When off, expired items are filtered lazily on access —
	// useful for static experiments that must quiesce.
	ActiveExpiry bool

	// HandoffDelay batches item handoffs after a location-map change.
	HandoffDelay time.Duration

	// RobustMulticast disables directed-flood pruning in favor of full
	// neighbor flooding. Directed flooding delivers ~one copy per node
	// but loses the subtree behind a not-yet-detected failed node;
	// churn-heavy deployments (Figure 6) trade bandwidth for coverage.
	RobustMulticast bool

	// PutRetries is how many times a put is retried when its lookup
	// cannot resolve an owner (e.g. the route crossed a failed,
	// not-yet-recovered zone). Soft state tolerates the remaining
	// losses; retries just shorten the outage window.
	PutRetries int

	// PutRetryDelay spaces the retries.
	PutRetryDelay time.Duration

	// Quota bounds the local store with per-namespace byte quotas and
	// eviction. The zero value keeps the unbounded in-memory manager.
	Quota storage.BoundedConfig

	// Store injects a pre-built storage backend (e.g. the disk-spill
	// tier, whose construction can fail and so happens before New).
	// When set it wins over Quota.
	Store storage.Store

	// ThrottleRetries bounds how many times a put may bounce off an
	// over-quota owner before it is stored anyway (the final attempt
	// always admits — eviction, not refusal, enforces the budget, so
	// renews keep soft state alive under sustained pressure).
	// 0 means 2.
	ThrottleRetries int

	// ThrottleDelay is the base backoff a throttled publisher waits
	// before resending; attempt k waits (k+1)×ThrottleDelay. The
	// backoff is deterministic (no jitter) so seeded simulations
	// replay bit-for-bit. 0 means 2s.
	ThrottleDelay time.Duration
}

// DefaultConfig returns sensible defaults.
func DefaultConfig() Config {
	return Config{
		GetTimeout:   30 * time.Second,
		HandoffDelay: 100 * time.Millisecond,
	}
}

// Provider is the per-node provider layer.
type Provider struct {
	env      env.Env
	rt       dht.Router
	store    storage.Store
	pressure storage.PressureReporter // non-nil when the store reports it
	flood    *multicast.Flooder
	cfg      Config

	nonce       uint64
	pendingGets map[uint64]*pendingGet

	newData   map[string]map[int]func(*storage.Item)
	nextSubID int

	onMcast map[int]func(origin env.Addr, ns string, payload env.Message)

	expiryTimer   env.Timer
	expiryAt      time.Time
	handoffQueued bool

	putsThrottled  int64
	putsDelayed    int64
	throttledUntil map[string]time.Time
}

type pendingGet struct {
	cb    func([]*storage.Item)
	timer env.Timer
}

// New wires a provider over the node's router. The caller routes
// incoming messages through HandleMessage.
func New(e env.Env, rt dht.Router, cfg Config) *Provider {
	if cfg.GetTimeout <= 0 {
		cfg.GetTimeout = 30 * time.Second
	}
	if cfg.HandoffDelay <= 0 {
		cfg.HandoffDelay = 100 * time.Millisecond
	}
	if cfg.ThrottleRetries <= 0 {
		cfg.ThrottleRetries = 2
	}
	if cfg.ThrottleDelay <= 0 {
		cfg.ThrottleDelay = 2 * time.Second
	}
	st := cfg.Store
	if st == nil {
		if cfg.Quota.Enabled() {
			st = storage.NewBounded(e.Now, cfg.Quota)
		} else {
			st = storage.New(e.Now)
		}
	}
	// The subscription and bookkeeping maps are allocated lazily at
	// first insert; they are usually empty on an idle node and nil maps
	// read as empty.
	p := &Provider{
		env:   e,
		rt:    rt,
		store: st,
		flood: multicast.New(e, rt),
		cfg:   cfg,
	}
	p.pressure, _ = st.(storage.PressureReporter)
	p.flood.SetRobust(cfg.RobustMulticast)
	p.flood.OnDeliver(p.deliverMulticast)
	rt.OnLocationMapChange(p.scheduleHandoff)
	return p
}

// Store returns the underlying storage backend (read-mostly access for
// tests and stats).
func (p *Provider) Store() storage.Store { return p.store }

// StorageStats are the provider's soft-state pressure counters: the
// store's eviction/spill totals plus the put-path throttle counts.
type StorageStats struct {
	storage.Stats
	// PutsThrottled counts puts this node answered with a throttle
	// message instead of storing (owner side).
	PutsThrottled int64
	// PutsDelayed counts puts this node deferred after receiving a
	// throttle, or self-throttled on a local store (publisher side).
	PutsDelayed int64
}

// StorageStats reports the node's storage pressure counters.
func (p *Provider) StorageStats() StorageStats {
	return StorageStats{
		Stats:         p.store.Stats(),
		PutsThrottled: p.putsThrottled,
		PutsDelayed:   p.putsDelayed,
	}
}

// Router returns the underlying routing layer.
func (p *Provider) Router() dht.Router { return p.rt }

// Env returns the node environment.
func (p *Provider) Env() env.Env { return p.env }

// Put stores (namespace, resourceID, instanceID) -> item in the DHT for
// lifetime. Like most DHT operations it is a lookup followed by a direct
// communication (§5.5.1 footnote 6); if the key maps locally no message
// is sent.
func (p *Provider) Put(ns, rid string, iid int64, payload env.Message, lifetime time.Duration) {
	it := &storage.Item{
		Namespace:  ns,
		ResourceID: rid,
		InstanceID: iid,
		Payload:    payload,
	}
	if lifetime > 0 {
		it.Expires = p.env.Now().Add(lifetime)
	}
	p.putItem(it, p.cfg.PutRetries, 0)
}

func (p *Provider) putItem(it *storage.Item, retries int, attempt uint8) {
	// A namespace recently throttled by its owner defers fresh puts
	// until the announced deadline, so one publisher doesn't hammer an
	// over-quota owner with every new tuple.
	if attempt == 0 {
		if until, ok := p.throttledUntil[it.Namespace]; ok {
			if wait := until.Sub(p.env.Now()); wait > 0 {
				p.putsDelayed++
				p.env.After(wait, func() { p.putItem(it, retries, 1) })
				return
			}
			delete(p.throttledUntil, it.Namespace)
		}
	}
	k := it.Key()
	if p.rt.Owns(k) {
		// Local stores self-throttle with the same bounded backoff a
		// remote owner would impose, then admit unconditionally.
		if attempt < p.maxBounces() && p.pressure != nil && p.pressure.OverHighWater(it.Namespace) {
			p.putsDelayed++
			p.env.After(p.throttleBackoff(attempt), func() { p.putItem(it, retries, attempt+1) })
			return
		}
		p.StoreLocal(it)
		return
	}
	p.rt.Lookup(k, func(owner env.Addr) {
		if owner == env.NilAddr {
			// The route crossed an unrecovered failure. Retry a few
			// times; past that, the producer's next renew restores the
			// item (soft state, §3.2.3).
			if retries > 0 {
				delay := p.cfg.PutRetryDelay
				if delay <= 0 {
					delay = 2 * time.Second
				}
				p.env.After(delay, func() { p.putItem(it, retries-1, attempt) })
			}
			return
		}
		p.env.Send(owner, &putMsg{Item: it, Attempt: attempt})
	})
}

// maxBounces is how many times a put may be throttled before it is
// admitted regardless of pressure.
func (p *Provider) maxBounces() uint8 {
	r := p.cfg.ThrottleRetries
	if r > 60 {
		r = 60 // putMsg.Attempt caps at the codec's validation bound
	}
	return uint8(r)
}

// throttleBackoff spaces throttle retries: deterministic linear
// backoff, no jitter, so seeded simulations replay exactly.
func (p *Provider) throttleBackoff(attempt uint8) time.Duration {
	return time.Duration(attempt+1) * p.cfg.ThrottleDelay
}

// Renew re-puts the item with a fresh lifetime, keeping it live
// (§3.2.3). It returns true; failures surface only as eventual expiry,
// matching soft-state semantics.
func (p *Provider) Renew(ns, rid string, iid int64, payload env.Message, lifetime time.Duration) bool {
	p.Put(ns, rid, iid, payload, lifetime)
	return true
}

// Get fetches the items stored under (namespace, resourceID). If the key
// maps locally the callback runs synchronously (§3.2.1 footnote 3);
// otherwise cb receives the owner's reply, or nil after GetTimeout.
func (p *Provider) Get(ns, rid string, cb func(items []*storage.Item)) {
	k := dht.KeyOf(ns, rid)
	if p.rt.Owns(k) {
		cb(p.store.Retrieve(ns, rid))
		return
	}
	p.rt.Lookup(k, func(owner env.Addr) {
		if owner == env.NilAddr {
			cb(nil)
			return
		}
		p.nonce++
		n := p.nonce
		pg := &pendingGet{cb: cb}
		pg.timer = p.env.After(p.cfg.GetTimeout, func() {
			if _, ok := p.pendingGets[n]; ok {
				delete(p.pendingGets, n)
				cb(nil)
			}
		})
		p.putPendingGet(n, pg)
		p.env.Send(owner, &getMsg{NS: ns, RID: rid, Nonce: n, Origin: p.env.Addr()})
	})
}

// putPendingGet registers an outstanding get, allocating the map on
// first use.
func (p *Provider) putPendingGet(n uint64, pg *pendingGet) {
	if p.pendingGets == nil {
		p.pendingGets = make(map[uint64]*pendingGet)
	}
	p.pendingGets[n] = pg
}

// Multicast delivers payload to every node in the overlay, tagged with a
// namespace; PIER uses it to ship query plans to the nodes serving a
// relation (§3.2.3).
func (p *Provider) Multicast(ns string, payload env.Message) {
	p.flood.Multicast(&nsPayload{NS: ns, Payload: payload})
}

// OnMulticast registers a handler for incoming multicasts (including
// this node's own). It returns an unsubscribe function.
func (p *Provider) OnMulticast(fn func(origin env.Addr, ns string, payload env.Message)) (unsubscribe func()) {
	id := p.nextSubID
	p.nextSubID++
	if p.onMcast == nil {
		p.onMcast = make(map[int]func(env.Addr, string, env.Message))
	}
	p.onMcast[id] = fn
	return func() { delete(p.onMcast, id) }
}

func (p *Provider) deliverMulticast(origin env.Addr, payload env.Message) {
	np, ok := payload.(*nsPayload)
	if !ok {
		return
	}
	for _, id := range env.SortedKeys(p.onMcast) {
		if fn, ok := p.onMcast[id]; ok {
			fn(origin, np.NS, np.Payload)
		}
	}
}

// Scan iterates the live items of a namespace stored locally — the
// provider's lscan. Run on every node in parallel it scans a relation.
func (p *Provider) Scan(ns string, f func(*storage.Item) bool) {
	p.store.Scan(ns, f)
}

// OnNewData registers a callback invoked whenever a new item arrives in
// the namespace on this node (§3.2.3). It returns an unsubscribe
// function.
func (p *Provider) OnNewData(ns string, fn func(*storage.Item)) (unsubscribe func()) {
	id := p.nextSubID
	p.nextSubID++
	subs, ok := p.newData[ns]
	if !ok {
		if p.newData == nil {
			p.newData = make(map[string]map[int]func(*storage.Item))
		}
		subs = make(map[int]func(*storage.Item))
		p.newData[ns] = subs
	}
	subs[id] = fn
	return func() {
		delete(subs, id)
		if len(subs) == 0 {
			delete(p.newData, ns)
		}
	}
}

// StoreLocal inserts an item into the local store directly, firing
// newData callbacks. The simulation harness also uses it to bulk-load
// tables (the paper measures only after tables are loaded, §5.2).
func (p *Provider) StoreLocal(it *storage.Item) {
	p.store.Store(it)
	p.scheduleExpiry()
	subs := p.newData[it.Namespace]
	for _, id := range env.SortedKeys(subs) {
		if fn, ok := subs[id]; ok {
			fn(it)
		}
	}
}

// Leave departs the overlay gracefully: stored items transfer to the
// peer inheriting this node's key space before the routing state is
// torn down, so a clean shutdown loses no soft state.
func (p *Provider) Leave() {
	var items []*storage.Item
	p.store.ScanAll(func(it *storage.Item) bool {
		items = append(items, it)
		return true
	})
	heir := p.rt.Leave()
	if heir == env.NilAddr || len(items) == 0 {
		return
	}
	// Batch to bound message count; the heir re-handoffs anything that
	// belongs elsewhere via its own location-map change.
	const batch = 64
	for start := 0; start < len(items); start += batch {
		end := start + batch
		if end > len(items) {
			end = len(items)
		}
		p.env.Send(heir, &transferMsg{Items: items[start:end]})
	}
}

// HandleMessage consumes provider and multicast messages, returning
// false for anything else.
func (p *Provider) HandleMessage(from env.Addr, m env.Message) bool {
	if p.flood.HandleMessage(from, m) {
		return true
	}
	switch msg := m.(type) {
	case *putMsg:
		p.onPut(from, msg)
	case *putThrottleMsg:
		p.onThrottle(msg)
	case *getMsg:
		p.onGet(msg)
	case *getReply:
		if pg, ok := p.pendingGets[msg.Nonce]; ok {
			delete(p.pendingGets, msg.Nonce)
			pg.timer.Stop()
			pg.cb(msg.Items)
		}
	case *transferMsg:
		for _, it := range msg.Items {
			p.StoreLocal(it)
		}
	default:
		return false
	}
	return true
}

// onPut admits an incoming put, or bounces it back with a throttle
// when the target namespace is past its high-water mark. A put that
// has already bounced maxBounces times is always admitted: the quota
// is enforced by eviction, not refusal, so renews keep soft state
// alive under sustained pressure.
func (p *Provider) onPut(from env.Addr, m *putMsg) {
	ns := m.Item.Namespace
	if m.Attempt < p.maxBounces() && p.pressure != nil && p.pressure.OverHighWater(ns) {
		p.putsThrottled++
		p.env.Send(from, &putThrottleMsg{
			Item:       m.Item,
			Attempt:    m.Attempt + 1,
			RetryAfter: p.throttleBackoff(m.Attempt),
		})
		return
	}
	p.StoreLocal(m.Item)
}

// onThrottle honors an owner's backpressure signal: remember the
// namespace's retry deadline (fresh puts defer to it) and reschedule
// the bounced item.
func (p *Provider) onThrottle(m *putThrottleMsg) {
	ra := m.RetryAfter
	if ra > maxRetryAfter {
		ra = maxRetryAfter // clamp hostile/buggy senders
	}
	until := p.env.Now().Add(ra)
	if cur, ok := p.throttledUntil[m.Item.Namespace]; !ok || until.After(cur) {
		if p.throttledUntil == nil {
			p.throttledUntil = make(map[string]time.Time)
		}
		p.throttledUntil[m.Item.Namespace] = until
	}
	p.putsDelayed++
	p.env.After(ra, func() { p.putItem(m.Item, p.cfg.PutRetries, m.Attempt) })
}

func (p *Provider) onGet(m *getMsg) {
	k := dht.KeyOf(m.NS, m.RID)
	if !p.rt.Owns(k) && !m.Forwarded {
		// The key space was remapped between the caller's lookup and the
		// get: chase the current owner once, at the cost of an extra
		// round trip (§4.1).
		p.rt.Lookup(k, func(owner env.Addr) {
			if owner == env.NilAddr || owner == p.env.Addr() {
				p.env.Send(m.Origin, &getReply{Nonce: m.Nonce, Items: p.store.Retrieve(m.NS, m.RID)})
				return
			}
			fwd := *m
			fwd.Forwarded = true
			p.env.Send(owner, &fwd)
		})
		return
	}
	p.env.Send(m.Origin, &getReply{Nonce: m.Nonce, Items: p.store.Retrieve(m.NS, m.RID)})
}

// scheduleExpiry keeps one timer armed for the earliest pending expiry.
func (p *Provider) scheduleExpiry() {
	if !p.cfg.ActiveExpiry {
		return
	}
	next, ok := p.store.NextExpiry()
	if !ok {
		return
	}
	if p.expiryTimer != nil && !p.expiryAt.IsZero() && !next.Before(p.expiryAt) {
		return
	}
	if p.expiryTimer != nil {
		p.expiryTimer.Stop()
	}
	p.expiryAt = next
	d := next.Sub(p.env.Now())
	p.expiryTimer = p.env.After(d, func() {
		p.expiryTimer = nil
		p.expiryAt = time.Time{}
		p.store.SweepExpired()
		p.scheduleExpiry()
	})
}

// scheduleHandoff transfers items this node no longer owns after the
// location map changed (zone split or takeover).
func (p *Provider) scheduleHandoff() {
	if p.handoffQueued {
		return
	}
	p.handoffQueued = true
	p.env.After(p.cfg.HandoffDelay, func() {
		p.handoffQueued = false
		if !p.rt.Ready() {
			return
		}
		var moving []*storage.Item
		p.store.ScanAll(func(it *storage.Item) bool {
			if !p.rt.Owns(it.Key()) {
				moving = append(moving, it)
			}
			return true
		})
		for _, it := range moving {
			it := it
			p.store.Remove(it.Namespace, it.ResourceID, it.InstanceID)
			p.rt.Lookup(it.Key(), func(owner env.Addr) {
				if owner == env.NilAddr {
					return // lost; soft state will restore it on renew
				}
				if owner == p.env.Addr() {
					p.StoreLocal(it)
					return
				}
				p.env.Send(owner, &transferMsg{Items: []*storage.Item{it}})
			})
		}
	})
}
