package dht

import "pier/internal/env"

// Router is the paper's routing-layer API (Table 1):
//
//	lookup(key) -> ipaddr
//	join(landmark)
//	leave()
//	locationMapChange()
//
// plus the two introspection calls the upper layers need: Owns (is this
// node currently responsible for key?) and Neighbors (the overlay links,
// used by the flooding multicast).
type Router interface {
	// Lookup asynchronously resolves the node currently responsible for
	// k and invokes cb with its address. If the key maps locally the
	// callback runs synchronously (§3.2.1 footnote 3). cb may be invoked
	// with env.NilAddr if the lookup cannot complete (e.g. routed into a
	// failed node and timed out).
	Lookup(k Key, cb func(owner env.Addr))

	// Join attaches to the overlay network reachable via landmark, or
	// creates a new single-node network if landmark is env.NilAddr.
	Join(landmark env.Addr)

	// Leave departs gracefully, handing the node's key-space
	// responsibility to a peer, whose address is returned (env.NilAddr
	// if there is none). The provider transfers stored items to that
	// peer before the routing state is torn down.
	Leave() env.Addr

	// OnLocationMapChange registers a callback invoked whenever the set
	// of keys mapped to this node changes (zone split, takeover).
	OnLocationMapChange(func())

	// Owns reports whether this node is currently responsible for k.
	Owns(k Key) bool

	// Neighbors returns the current overlay neighbors.
	Neighbors() []env.Addr

	// Ready reports whether the node has joined and owns some portion of
	// the key space.
	Ready() bool

	// HandleMessage gives the router a chance to consume an incoming
	// message. It returns false if the message is not a routing message.
	HandleMessage(from env.Addr, m env.Message) bool
}

// MulticastRouter is an optional Router refinement that prunes flood
// forwarding using overlay geometry, in the spirit of directed flooding
// over CAN (the paper's content-based multicast [18] builds on CAN
// multicast). Routers that do not implement it get plain neighbor
// flooding with duplicate suppression.
type MulticastRouter interface {
	// MulticastHint returns an opaque geometric hint stored in flood
	// messages originated here (CAN: the origin zone's center point).
	MulticastHint() []uint32

	// MulticastForward returns the neighbors to forward a flood message
	// to. from is the neighbor the message arrived over (env.NilAddr at
	// the origin); hint is the originator's MulticastHint.
	MulticastForward(from env.Addr, hint []uint32) []env.Addr
}
