package storage

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"pier/internal/env"
)

type payload struct{ size int }

func (p payload) WireSize() int { return p.size }

type clock struct{ t time.Time }

func (c *clock) now() time.Time { return c.t }

func newTestManager() (*Manager, *clock) {
	c := &clock{t: time.Unix(0, 0)}
	return New(c.now), c
}

func item(ns, rid string, iid int64, exp time.Time) *Item {
	return &Item{Namespace: ns, ResourceID: rid, InstanceID: iid, Payload: payload{10}, Expires: exp}
}

func TestStoreRetrieveRemove(t *testing.T) {
	m, c := newTestManager()
	exp := c.t.Add(time.Hour)
	m.Store(item("r", "k1", 1, exp))
	m.Store(item("r", "k1", 2, exp))
	m.Store(item("r", "k2", 1, exp))

	got := m.Retrieve("r", "k1")
	if len(got) != 2 {
		t.Fatalf("Retrieve returned %d items, want 2", len(got))
	}
	if got[0].InstanceID != 1 || got[1].InstanceID != 2 {
		t.Fatalf("unexpected order %v", got)
	}
	if !m.Remove("r", "k1", 1) {
		t.Fatal("Remove returned false for existing item")
	}
	if m.Remove("r", "k1", 1) {
		t.Fatal("Remove returned true for missing item")
	}
	if len(m.Retrieve("r", "k1")) != 1 {
		t.Fatal("item not removed")
	}
	if m.TotalLen() != 2 {
		t.Fatalf("TotalLen = %d, want 2", m.TotalLen())
	}
}

func TestStoreReplacesSameIdentity(t *testing.T) {
	m, c := newTestManager()
	m.Store(item("r", "k", 1, c.t.Add(time.Minute)))
	m.Store(item("r", "k", 1, c.t.Add(2*time.Minute)))
	if m.TotalLen() != 1 {
		t.Fatalf("TotalLen = %d, want 1 after replace", m.TotalLen())
	}
	got := m.Retrieve("r", "k")
	if len(got) != 1 || !got[0].Expires.Equal(c.t.Add(2*time.Minute)) {
		t.Fatalf("replace did not extend lifetime: %+v", got)
	}
}

func TestExpiryLazyOnRetrieve(t *testing.T) {
	m, c := newTestManager()
	m.Store(item("r", "k", 1, c.t.Add(time.Minute)))
	c.t = c.t.Add(2 * time.Minute)
	if got := m.Retrieve("r", "k"); len(got) != 0 {
		t.Fatalf("expired item returned: %v", got)
	}
}

func TestSweepExpiredAndRenewSkipsStaleEntries(t *testing.T) {
	m, c := newTestManager()
	m.Store(item("r", "a", 1, c.t.Add(time.Minute)))
	m.Store(item("r", "b", 1, c.t.Add(3*time.Minute)))
	// Renew "a" before it expires.
	m.Store(item("r", "a", 1, c.t.Add(5*time.Minute)))

	c.t = c.t.Add(2 * time.Minute)
	removed := m.SweepExpired()
	if len(removed) != 0 {
		t.Fatalf("sweep removed %v; renewed item must survive", removed)
	}
	c.t = c.t.Add(2 * time.Minute) // t = 4min: "b" expired, "a" lives to 5min
	removed = m.SweepExpired()
	if len(removed) != 1 || removed[0].ResourceID != "b" {
		t.Fatalf("sweep removed %v, want just b", removed)
	}
	if len(m.Retrieve("r", "a")) != 1 {
		t.Fatal("renewed item lost")
	}
}

func TestNamespaceLifecycle(t *testing.T) {
	m, c := newTestManager()
	if n := m.Namespaces(); len(n) != 0 {
		t.Fatalf("namespaces = %v, want none", n)
	}
	m.Store(item("intrusions", "f1", 1, c.t.Add(time.Minute)))
	if n := m.Namespaces(); len(n) != 1 || n[0] != "intrusions" {
		t.Fatalf("namespaces = %v", n)
	}
	// Implicit destruction when the last item goes (§3.2.3).
	c.t = c.t.Add(2 * time.Minute)
	m.SweepExpired()
	if n := m.Namespaces(); len(n) != 0 {
		t.Fatalf("namespace not destroyed after last expiry: %v", n)
	}
}

func TestScanVisitsOnlyLiveItemsOfNamespace(t *testing.T) {
	m, c := newTestManager()
	m.Store(item("r", "a", 1, c.t.Add(time.Minute)))
	m.Store(item("r", "b", 1, c.t.Add(time.Hour)))
	m.Store(item("s", "c", 1, c.t.Add(time.Hour)))
	c.t = c.t.Add(30 * time.Minute)
	var seen []string
	m.Scan("r", func(it *Item) bool {
		seen = append(seen, it.ResourceID)
		return true
	})
	if len(seen) != 1 || seen[0] != "b" {
		t.Fatalf("scan saw %v, want [b]", seen)
	}
}

func TestScanEarlyStop(t *testing.T) {
	m, c := newTestManager()
	for i := 0; i < 10; i++ {
		m.Store(item("r", fmt.Sprint(i), 1, c.t.Add(time.Hour)))
	}
	n := 0
	m.Scan("r", func(*Item) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("scan visited %d items after early stop, want 3", n)
	}
}

func TestNextExpiry(t *testing.T) {
	m, c := newTestManager()
	if _, ok := m.NextExpiry(); ok {
		t.Fatal("empty manager reported a next expiry")
	}
	m.Store(item("r", "a", 1, c.t.Add(2*time.Minute)))
	m.Store(item("r", "b", 1, c.t.Add(1*time.Minute)))
	at, ok := m.NextExpiry()
	if !ok || !at.Equal(c.t.Add(time.Minute)) {
		t.Fatalf("NextExpiry = %v,%v", at, ok)
	}
	// Renewing b invalidates its heap entry.
	m.Store(item("r", "b", 1, c.t.Add(10*time.Minute)))
	at, ok = m.NextExpiry()
	if !ok || !at.Equal(c.t.Add(2*time.Minute)) {
		t.Fatalf("NextExpiry after renew = %v,%v, want a's 2min", at, ok)
	}
}

func TestZeroExpiryMeansImmortal(t *testing.T) {
	m, c := newTestManager()
	m.Store(&Item{Namespace: "r", ResourceID: "a", InstanceID: 1, Payload: payload{1}})
	c.t = c.t.Add(1000 * time.Hour)
	if len(m.Retrieve("r", "a")) != 1 {
		t.Fatal("zero-expiry item vanished")
	}
	if got := m.SweepExpired(); len(got) != 0 {
		t.Fatalf("sweep removed immortal item: %v", got)
	}
}

func TestItemKeyMatchesNamingScheme(t *testing.T) {
	a := item("ns", "rid", 1, time.Time{})
	b := item("ns", "rid", 2, time.Time{})
	c := item("ns", "other", 1, time.Time{})
	if a.Key() != b.Key() {
		t.Fatal("items with same namespace+resourceID must share a key")
	}
	if a.Key() == c.Key() {
		t.Fatal("different resourceIDs must hash differently")
	}
}

func TestWireSize(t *testing.T) {
	it := &Item{Namespace: "ns", ResourceID: "rid", InstanceID: 1, Payload: payload{100}}
	want := env.StringSize("ns") + env.StringSize("rid") + 16 + 100
	if it.WireSize() != want {
		t.Fatalf("WireSize = %d, want %d", it.WireSize(), want)
	}
}

func TestStoreRetrieveProperty(t *testing.T) {
	// Property: after any sequence of stores and removes, Retrieve
	// returns exactly the surviving identities.
	check := func(ops []struct {
		RID    uint8
		IID    uint8
		Remove bool
	}) bool {
		m, c := newTestManager()
		ref := map[[2]int]bool{}
		for _, op := range ops {
			rid, iid := int(op.RID%8), int64(op.IID%4)
			key := [2]int{rid, int(iid)}
			if op.Remove {
				got := m.Remove("t", fmt.Sprint(rid), iid)
				if got != ref[key] {
					return false
				}
				delete(ref, key)
			} else {
				m.Store(item("t", fmt.Sprint(rid), iid, c.t.Add(time.Hour)))
				ref[key] = true
			}
		}
		total := 0
		for rid := 0; rid < 8; rid++ {
			got := m.Retrieve("t", fmt.Sprint(rid))
			for _, it := range got {
				if !ref[[2]int{rid, int(it.InstanceID)}] {
					return false
				}
			}
			total += len(got)
		}
		return total == len(ref) && m.TotalLen() == len(ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
