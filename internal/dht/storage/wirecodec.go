package storage

// Binary wire codec for Item, which rides inside the provider's put,
// get-reply, and transfer messages. The nested payload is any registered
// message type, encoded recursively.

import (
	"pier/internal/env"
	"pier/internal/wire"
)

const tagItem byte = 32

func init() {
	wire.Register(tagItem, &Item{},
		func(e *wire.Encoder, m env.Message) {
			it := m.(*Item)
			e.String(it.Namespace)
			e.String(it.ResourceID)
			e.Varint(it.InstanceID)
			e.Time(it.Expires)
			e.Message(it.Payload)
		},
		func(d *wire.Decoder) env.Message {
			return &Item{
				Namespace:  d.String(),
				ResourceID: d.String(),
				InstanceID: d.Varint(),
				Expires:    d.Time(),
				Payload:    d.Message(),
			}
		})
}

// ItemField decodes a nested *Item written with Encoder.Message (for the
// provider's codecs); nil stays nil.
func ItemField(d *wire.Decoder) *Item {
	m := d.Message()
	if m == nil {
		return nil
	}
	it, ok := m.(*Item)
	if !ok {
		d.Fail("message is not a storage item")
		return nil
	}
	return it
}
