package storage

import (
	"encoding/gob"
	"math/rand"
	"testing"
	"time"

	"pier/internal/env"
	"pier/internal/wire"
	"pier/internal/wire/wiretest"
)

// itemPayload stands in for the application payloads (tuples, filters,
// partial aggregates) that ride inside items; those codecs are tested in
// their owning packages.
type itemPayload struct{ S string }

func (p *itemPayload) WireSize() int { return env.StringSize(p.S) }

func init() {
	// The transport-facing registrations normally live in the provider
	// package; this test binary does not link it.
	gob.Register(&Item{})
	gob.Register(&itemPayload{})
	wire.Register(202, &itemPayload{},
		func(e *wire.Encoder, m env.Message) { e.String(m.(*itemPayload).S) },
		func(d *wire.Decoder) env.Message { return &itemPayload{S: d.String()} })
}

func randItem(r *rand.Rand) *Item {
	it := &Item{
		Namespace:  wiretest.Str(r, 12),
		ResourceID: wiretest.Str(r, 12),
		InstanceID: wiretest.SmallInt(r),
	}
	if r.Intn(4) > 0 {
		it.Expires = time.Unix(0, int64(r.Int31())*1000)
	}
	if r.Intn(4) > 0 {
		it.Payload = &itemPayload{S: wiretest.Str(r, 20)}
	}
	return it
}

func TestWireRoundTrip(t *testing.T) {
	wiretest.RoundTrip(t, 3, 300, []wiretest.Gen{
		{Name: "Item", Make: func(r *rand.Rand) env.Message { return randItem(r) }},
	})
}
